// Figures 7.9 / 7.10 — Discard versus Throttle: the pattern of persisted
// record ids.
//
// Paper setup: the same over-capacity workload under Discard and under
// Throttle; afterwards, plot 1 for each record id that was persisted and
// 0 otherwise. Paper result: Discard shows long CONTIGUOUS gaps (whole
// backlogged stretches dropped, "periods of discontinuity"), while
// Throttle shows a uniformly THINNED pattern (random sampling), which is
// friendlier to analyses needing temporal coverage (§7.4).
#include "bench/bench_util.h"

using namespace asterix;        // NOLINT
using namespace asterix::bench;  // NOLINT

namespace {

constexpr int64_t kServiceUs = 1200;  // per-record service time

/// Runs the burst workload under `policy`; returns the per-bucket
/// persisted fraction over the record-id (seq) axis.
struct IdPattern {
  std::vector<double> density;  // fraction persisted per bucket
  int64_t sent = 0;
  int64_t persisted = 0;
  int64_t longest_gap = 0;  // longest run of consecutive missing ids
};

IdPattern RunPolicy(const std::string& policy) {
  InstanceOptions options;
  options.num_nodes = 3;
  AsterixInstance db(options);
  CHECK_OK(db.Start());
  CHECK_OK(db.CreatePolicy("D", "Discard", {{"memory.budget", "192KB"}}));
  CHECK_OK(db.CreatePolicy("T", "Throttle", {{"memory.budget", "192KB"}}));

  gen::TweetGenServer source(0,
                             gen::Pattern::Burst(150, 1600, 1500, 2));
  feeds::ExternalSourceRegistry::Instance().RegisterChannel(
      "ids:1", &source.channel());
  CHECK_OK(db.CreateDataset(TweetsDataset("Sink")));
  CHECK_OK(db.InstallUdf(std::make_shared<feeds::JavaUdf>(
      "lib", "expensive",
      [](const adm::Value& t) -> std::optional<adm::Value> {
        common::SleepMicros(kServiceUs);
        return t;
      })));
  feeds::FeedDef feed;
  feed.name = "F";
  feed.adaptor_alias = "TweetGenAdaptor";
  feed.adaptor_config = {{"sockets", "ids:1"}};
  feed.udf = "lib#expensive";
  CHECK_OK(db.CreateFeed(feed));
  CHECK_OK(db.ConnectFeed("F", "Sink", policy, {.compute_count = 1}));

  source.Start();
  source.Join();
  common::SleepMillis(2500);

  IdPattern pattern;
  pattern.sent = source.tweets_sent();
  std::vector<bool> present(static_cast<size_t>(pattern.sent), false);
  CHECK_OK(db.ScanDataset("Sink", [&](const adm::Value& record) {
    int64_t seq = record.GetField("seq")->AsInt64();
    if (seq >= 0 && seq < pattern.sent) {
      present[static_cast<size_t>(seq)] = true;
    }
  }));
  pattern.persisted = db.CountDataset("Sink").value();
  // Density per bucket and longest contiguous gap.
  constexpr int kBuckets = 40;
  int64_t per_bucket = std::max<int64_t>(1, pattern.sent / kBuckets);
  int64_t gap = 0;
  for (int64_t i = 0; i < pattern.sent; ++i) {
    if (present[static_cast<size_t>(i)]) {
      gap = 0;
    } else {
      ++gap;
      pattern.longest_gap = std::max(pattern.longest_gap, gap);
    }
  }
  for (int64_t start = 0; start + per_bucket <= pattern.sent;
       start += per_bucket) {
    int64_t hits = 0;
    for (int64_t i = start; i < start + per_bucket; ++i) {
      if (present[static_cast<size_t>(i)]) ++hits;
    }
    pattern.density.push_back(static_cast<double>(hits) / per_bucket);
  }
  feeds::ExternalSourceRegistry::Instance().UnregisterChannel("ids:1");
  return pattern;
}

void PrintPattern(const std::string& label, const IdPattern& pattern) {
  std::printf("\n%s\n", label.c_str());
  std::printf("  record-id axis (each cell = persisted fraction of one "
              "bucket):\n  |");
  for (double d : pattern.density) {
    const char* cell = d > 0.95 ? "#" : d > 0.6 ? "+" : d > 0.2 ? "." : " ";
    std::printf("%s", cell);
  }
  std::printf("|\n  sent=%lld persisted=%lld (%.0f%%), longest "
              "contiguous gap=%lld records\n",
              static_cast<long long>(pattern.sent),
              static_cast<long long>(pattern.persisted),
              100.0 * pattern.persisted / pattern.sent,
              static_cast<long long>(pattern.longest_gap));
}

}  // namespace

int main() {
  Banner("Figures 7.9/7.10",
         "persisted record-id patterns: Discard vs Throttle");
  IdPattern discard = RunPolicy("D");
  IdPattern throttle = RunPolicy("T");
  PrintPattern("Figure 7.9 — Discard policy", discard);
  PrintPattern("Figure 7.10 — Throttle policy", throttle);
  std::printf(
      "\nshape check (paper): Discard's missing ids are CONTIGUOUS "
      "stretches (large longest-gap; empty cells), Throttle's are "
      "uniformly spread (small longest-gap; every cell partially "
      "filled).\n");
  return 0;
}
