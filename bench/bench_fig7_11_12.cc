// Figures 7.11 / 7.12 — Comparison with the 'glued' Storm + MongoDB
// assembly.
//
// Paper setup: the same bursty tweet workload is pushed through a Storm
// topology (spout -> parse -> hashtag UDF -> mongo-insert bolt) writing
// into MongoDB, once with DURABLE writes (Figure 7.11) and once with
// NON-DURABLE writes (Figure 7.12); AsterixDB runs the equivalent native
// feed. Paper result: with durable writes the glued system's throughput
// is far below AsterixDB's (per-document journaling in the driver path);
// non-durable writes close the gap but acknowledge data that a crash
// would lose — AsterixDB's WAL-based record-level durability does not
// have that window.
#include <thread>

#include "baseline/glue.h"
#include "bench/bench_util.h"

using namespace asterix;        // NOLINT
using namespace asterix::bench;  // NOLINT

namespace {

constexpr int64_t kLowTps = 300;
constexpr int64_t kHighTps = 2500;
constexpr int64_t kIntervalMs = 1500;
constexpr int kCycles = 2;

gen::Pattern Workload() {
  return gen::Pattern::Burst(kLowTps, kHighTps, kIntervalMs, kCycles);
}

struct GlueOutput {
  std::vector<int64_t> stored_timeline;
  int64_t sent = 0;
  int64_t stored = 0;
  int64_t journaled = 0;
  int64_t lost_on_crash = 0;
};

GlueOutput RunGlued(baseline::WriteConcern concern) {
  gen::TweetGenServer source(0, Workload());
  baseline::MongoServer mongo("/tmp/asterix_bench_mongo_" +
                              std::to_string(common::NowMicros()));
  CHECK_OK(mongo.CreateCollection("tweets", concern));
  baseline::MongoCollection* collection = mongo.GetCollection("tweets");

  feeds::IntervalCounter timeline(500);
  baseline::storm::LocalCluster cluster;
  baseline::storm::TopologyDef topology;
  topology.name = "glue";
  gen::Channel* channel = &source.channel();
  topology.spout = [channel](int) {
    return std::make_unique<baseline::ChannelSpout>(channel);
  };
  topology.bolts.push_back(
      {"parse",
       [](int) { return std::make_unique<baseline::ParseBolt>(); }, 2,
       baseline::storm::Grouping::kShuffle, nullptr});
  auto udf = feeds::AqlUdf::ExtractHashtags("tags");
  topology.bolts.push_back(
      {"tags",
       [udf](int) { return std::make_unique<baseline::UdfBolt>(udf); },
       2, baseline::storm::Grouping::kShuffle, nullptr});
  topology.bolts.push_back(
      {"mongo",
       [collection, &timeline](int) {
         return std::make_unique<baseline::MongoInsertBolt>(
             collection, [&timeline](int64_t) { timeline.Add(1); });
       },
       2, baseline::storm::Grouping::kFields,
       [](const adm::Value& v) {
         const adm::Value* id = v.GetField("id");
         return id != nullptr ? id->AsString() : std::string();
       }});
  CHECK_OK(cluster.Submit(std::move(topology)));

  // Track the worst journal lag during the run: documents acknowledged
  // to the client but not yet on disk (the non-durable loss window).
  std::atomic<bool> watching{true};
  std::atomic<int64_t> peak_lag{0};
  std::thread lag_watcher([&] {
    while (watching.load()) {
      int64_t lag = collection->Count() - collection->JournaledCount();
      int64_t prev = peak_lag.load();
      while (lag > prev && !peak_lag.compare_exchange_weak(prev, lag)) {
      }
      common::SleepMillis(20);
    }
  });

  source.Start();
  source.Join();
  cluster.WaitUntilDrained(60000);
  cluster.Shutdown();
  watching.store(false);
  lag_watcher.join();

  GlueOutput out;
  out.sent = source.tweets_sent();
  out.stored = collection->Count();
  out.journaled = collection->JournaledCount();
  out.stored_timeline = timeline.Series();
  out.lost_on_crash = peak_lag.load();
  return out;
}

struct NativeOutput {
  std::vector<int64_t> stored_timeline;
  int64_t sent = 0;
  int64_t stored = 0;
};

NativeOutput RunAsterix() {
  AsterixInstance db(InstanceOptions{.num_nodes = 3});
  CHECK_OK(db.Start());
  gen::TweetGenServer source(0, Workload());
  feeds::ExternalSourceRegistry::Instance().RegisterChannel(
      "cmp:1", &source.channel());
  CHECK_OK(db.CreateDataset(TweetsDataset("Tweets")));
  CHECK_OK(db.InstallUdf(feeds::AqlUdf::ExtractHashtags("tags")));
  feeds::FeedDef feed;
  feed.name = "F";
  feed.adaptor_alias = "TweetGenAdaptor";
  feed.adaptor_config = {{"sockets", "cmp:1"}};
  feed.udf = "tags";
  CHECK_OK(db.CreateFeed(feed));
  CHECK_OK(db.ConnectFeed("F", "Tweets", "Basic"));
  auto metrics = db.FeedMetrics("F", "Tweets");

  source.Start();
  source.Join();
  WaitFor(
      [&] {
        return db.CountDataset("Tweets").value() >= source.tweets_sent();
      },
      30000);

  NativeOutput out;
  out.sent = source.tweets_sent();
  out.stored = db.CountDataset("Tweets").value();
  auto fine = metrics->store_timeline.Series();
  for (size_t i = 0; i < fine.size(); i += 2) {
    out.stored_timeline.push_back(
        fine[i] + (i + 1 < fine.size() ? fine[i + 1] : 0));
  }
  feeds::ExternalSourceRegistry::Instance().UnregisterChannel("cmp:1");
  return out;
}

}  // namespace

int main() {
  Banner("Figures 7.11/7.12", "Storm+MongoDB (glued) vs native feeds");

  GlueOutput durable = RunGlued(baseline::WriteConcern::kDurable);
  PrintTimeline(
      "Figure 7.11 — Storm+MongoDB, DURABLE write: instantaneous "
      "throughput",
      durable.stored_timeline, 500);
  std::printf("  sent=%lld stored=%lld journaled=%lld\n",
              static_cast<long long>(durable.sent),
              static_cast<long long>(durable.stored),
              static_cast<long long>(durable.journaled));

  GlueOutput fast = RunGlued(baseline::WriteConcern::kNonDurable);
  PrintTimeline(
      "Figure 7.12 — Storm+MongoDB, NON-DURABLE write: instantaneous "
      "throughput",
      fast.stored_timeline, 500);
  std::printf("  sent=%lld stored=%lld journaled-at-end=%lld; a crash "
              "mid-run would have lost up to %lld ACKNOWLEDGED "
              "documents (peak journal lag)\n",
              static_cast<long long>(fast.sent),
              static_cast<long long>(fast.stored),
              static_cast<long long>(fast.journaled),
              static_cast<long long>(fast.lost_on_crash));

  NativeOutput native = RunAsterix();
  PrintTimeline("AsterixDB native feed (same workload, WAL-durable)",
                native.stored_timeline, 500);
  std::printf("  sent=%lld stored=%lld\n",
              static_cast<long long>(native.sent),
              static_cast<long long>(native.stored));

  std::printf(
      "\nshape check (paper): the durable glued configuration trails the "
      "native feed (per-document journal in the driver path and the "
      "ack-per-tuple overhead); the non-durable one narrows the gap but "
      "leaves a data-loss window that the native WAL path does not.\n");
  return 0;
}
