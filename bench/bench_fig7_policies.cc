// Figures 7.2 / 7.3 / 7.4 / 7.5 / 7.6 / 7.7 — ingestion policies under a
// bursty arrival pattern.
//
// Paper setup: TweetGen alternates between a rate the pipeline can absorb
// and one far beyond its capacity (Figure 7.2/7.8); a computationally
// expensive UDF caps capacity. Each built-in policy runs the identical
// workload; the figures plot instantaneous ingestion throughput:
//   Basic    (7.3): keeps pace until the memory budget is exhausted,
//                   then the feed terminates (throughput -> 0);
//   Spill    (7.4): absorbs bursts to disk, persisting at capacity and
//                   catching up between bursts — no loss;
//   Discard  (7.5): clamps at capacity, dropping whole bursts;
//   Throttle (7.6): clamps at capacity by sampling the excess;
//   Elastic  (7.7): after sustained congestion, scales the compute stage
//                   out and throughput steps UP to meet the burst rate.
#include "bench/bench_util.h"

using namespace asterix;        // NOLINT
using namespace asterix::bench;  // NOLINT

namespace {

constexpr int64_t kLowTps = 150;
constexpr int64_t kHighTps = 1600;
constexpr int64_t kIntervalMs = 1500;
constexpr int kCycles = 3;
constexpr int64_t kServiceUs = 1200;  // capacity ~800 rec/s per instance

struct RunOutput {
  std::vector<int64_t> arrival;
  std::vector<int64_t> stored;
  int64_t sent = 0;
  int64_t persisted = 0;
  feeds::SubscriberStats queue;
  std::string outcome;
  int final_width = 0;
  // Same run observed through the metrics registry (Snapshot() path).
  int64_t reg_collected = 0;
  int64_t reg_stored = 0;
};

RunOutput RunPolicy(const std::string& policy) {
  InstanceOptions options;
  options.num_nodes = 4;
  AsterixInstance db(options);
  CHECK_OK(db.Start());
  CHECK_OK(db.CreatePolicy("B", "Basic", {{"memory.budget", "512KB"}}));
  CHECK_OK(db.CreatePolicy("S", "Spill", {{"memory.budget", "256KB"}}));
  CHECK_OK(db.CreatePolicy("D", "Discard", {{"memory.budget", "256KB"}}));
  CHECK_OK(db.CreatePolicy("T", "Throttle", {{"memory.budget", "256KB"}}));
  CHECK_OK(db.CreatePolicy("E", "Elastic", {{"memory.budget", "256KB"}}));

  gen::TweetGenServer source(
      0, gen::Pattern::Burst(kLowTps, kHighTps, kIntervalMs, kCycles));
  feeds::ExternalSourceRegistry::Instance().RegisterChannel(
      "pol:1", &source.channel());

  CHECK_OK(db.CreateDataset(TweetsDataset("Sink")));
  CHECK_OK(db.InstallUdf(std::make_shared<feeds::JavaUdf>(
      "lib", "expensive",
      [](const adm::Value& tweet) -> std::optional<adm::Value> {
        common::SleepMicros(kServiceUs);
        return tweet;
      })));

  feeds::FeedDef feed;
  feed.name = "BurstFeed";
  feed.adaptor_alias = "TweetGenAdaptor";
  feed.adaptor_config = {{"sockets", "pol:1"}};
  feed.udf = "lib#expensive";
  CHECK_OK(db.CreateFeed(feed));
  CHECK_OK(db.ConnectFeed("BurstFeed", "Sink", policy, {.compute_count = 1}));

  auto metrics = db.FeedMetrics("BurstFeed", "Sink");
  // Arrival-rate recorder (Figure 7.2/7.8): sample the source counter.
  std::vector<int64_t> arrival;
  std::atomic<bool> sampling{true};
  std::thread sampler([&] {
    int64_t prev = 0;
    while (sampling.load()) {
      common::SleepMillis(500);
      int64_t now = source.tweets_sent();
      arrival.push_back(now - prev);
      prev = now;
    }
  });

  source.Start();
  source.Join();
  common::SleepMillis(3000);  // post-burst catch-up window
  sampling.store(false);
  sampler.join();

  RunOutput out;
  out.arrival = arrival;
  out.sent = source.tweets_sent();
  out.persisted = db.CountDataset("Sink").value();
  // Re-bin 250ms store bins into the same 500ms bins as arrival.
  auto fine = metrics->store_timeline.Series();
  for (size_t i = 0; i < fine.size(); i += 2) {
    out.stored.push_back(fine[i] +
                         (i + 1 < fine.size() ? fine[i + 1] : 0));
  }
  for (const auto& queue : metrics->IntakeQueues()) {
    out.queue = queue->stats();
  }
  auto health = db.feed_manager().Health("BurstFeed", "Sink");
  out.outcome =
      health == feeds::CentralFeedManager::ConnectionHealth::kFailed
          ? "feed TERMINATED (budget exhausted)"
          : "feed alive";
  auto conn = db.feed_manager().GetConnection("BurstFeed", "Sink");
  if (conn.ok()) out.final_width = conn->compute_width;
  // Snapshot while the connection's metric providers are still alive
  // (they unregister when the ConnectionMetrics dies with the instance).
  common::MetricsSnapshot snap = AsterixInstance::SnapshotMetrics();
  out.reg_collected = snap.CounterValue("feed_records_collected_total",
                                        {{"connection", "BurstFeed->Sink"}});
  out.reg_stored = snap.CounterValue("feed_records_stored_total",
                                     {{"connection", "BurstFeed->Sink"}});
  feeds::ExternalSourceRegistry::Instance().UnregisterChannel("pol:1");
  return out;
}

}  // namespace

int main() {
  Banner("Figures 7.2-7.7", "built-in ingestion policies under bursts");

  bool printed_arrival = false;
  const char* figure[] = {"Figure 7.3", "Figure 7.4", "Figure 7.5",
                          "Figure 7.6", "Figure 7.7"};
  const char* policies[] = {"B", "S", "D", "T", "E"};
  const char* names[] = {"Basic", "Spill", "Discard", "Throttle",
                         "Elastic"};
  for (int i = 0; i < 5; ++i) {
    RunOutput out = RunPolicy(policies[i]);
    if (!printed_arrival) {
      PrintTimeline("Figure 7.2 — rate of arrival of data", out.arrival,
                    500);
      printed_arrival = true;
    }
    PrintTimeline(std::string(figure[i]) + " — " + names[i] +
                      " policy: instantaneous ingestion throughput",
                  out.stored, 500);
    std::printf(
        "  sent=%lld persisted=%lld discarded=%lld sampled-away=%lld "
        "spilled-frames=%lld final-compute-width=%d  [%s]\n",
        static_cast<long long>(out.sent),
        static_cast<long long>(out.persisted),
        static_cast<long long>(out.queue.records_discarded),
        static_cast<long long>(out.queue.records_throttled_away),
        static_cast<long long>(out.queue.frames_spilled),
        out.final_width, out.outcome.c_str());
    std::printf(
        "  registry: feed_records_collected_total=%lld "
        "feed_records_stored_total=%lld {connection=\"BurstFeed->Sink\"}\n",
        static_cast<long long>(out.reg_collected),
        static_cast<long long>(out.reg_stored));
  }
  std::printf(
      "\nshape check (paper): Basic dies mid-burst; Spill persists "
      "everything (catching up between bursts); Discard and Throttle "
      "clamp near capacity and lose records (dropped vs sampled); "
      "Elastic steps its throughput up after scaling out.\n");
  return 0;
}
