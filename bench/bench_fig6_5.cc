// Figures 6.4 / 6.5 — Instantaneous ingestion throughput with interim
// hardware failures.
//
// Paper setup: a cascade of TweetGenFeed (primary, raw tweets) and
// ProcessedTweetGenFeed (secondary, hashtag Java UDF), fed by two
// TweetGen instances at 5000 tps each, connected with the FaultTolerant
// policy. Node C (a compute node of the secondary) fails at t=70s; nodes
// A (an intake node) and D (a compute node) fail together at t=140s.
// Paper result: each failure shows as a dip in the affected feed's
// instantaneous throughput with recovery within 2-4 seconds, and the
// primary feed is NOT disturbed by the secondary's compute-node loss
// (fault isolation). This harness time-scales 10x: a 21s run with kills
// at t=7s and t=14s.
#include "bench/bench_util.h"

using namespace asterix;        // NOLINT
using namespace asterix::bench;  // NOLINT

namespace {
std::vector<int64_t> Rebin(const std::vector<int64_t>& fine, int group) {
  std::vector<int64_t> coarse;
  for (size_t i = 0; i < fine.size(); i += group) {
    int64_t sum = 0;
    for (size_t j = i; j < std::min(fine.size(), i + group); ++j) {
      sum += fine[j];
    }
    coarse.push_back(sum);
  }
  return coarse;
}
}  // namespace

int main() {
  Banner("Figure 6.5",
         "instantaneous throughput under interim hardware failures");

  InstanceOptions options;
  options.num_nodes = 8;  // A..H
  // Slow the failure detector to the paper's timebase (heartbeat
  // timeouts of seconds) so the recovery dip is visible in the bins.
  options.heartbeat_timeout_ms = 1200;
  AsterixInstance db(options);
  CHECK_OK(db.Start());

  gen::TweetGenServer gen_one(0, gen::Pattern::Constant(3500, 21000));
  gen::TweetGenServer gen_two(1, gen::Pattern::Constant(3500, 21000));
  feeds::ExternalSourceRegistry::Instance().RegisterChannel(
      "tg:1", &gen_one.channel());
  feeds::ExternalSourceRegistry::Instance().RegisterChannel(
      "tg:2", &gen_two.channel());

  CHECK_OK(db.CreateDataset(TweetsDataset("Tweets", {"G"})));
  CHECK_OK(db.CreateDataset(TweetsDataset("ProcessedTweets", {"H"})));
  CHECK_OK(db.InstallUdf(feeds::AqlUdf::ExtractHashtags("addHashTags")));

  feeds::FeedDef primary;
  primary.name = "TweetGenFeed";
  primary.adaptor_alias = "TweetGenAdaptor";
  primary.adaptor_config = {{"sockets", "tg:1, tg:2"}};
  CHECK_OK(db.CreateFeed(primary));
  feeds::FeedDef secondary;
  secondary.name = "ProcessedTweetGenFeed";
  secondary.is_primary = false;
  secondary.parent_feed = "TweetGenFeed";
  secondary.udf = "addHashTags";
  CHECK_OK(db.CreateFeed(secondary));

  // As in the paper, the secondary is connected BEFORE its parent; the
  // parent then reuses the head section the secondary built.
  feeds::ConnectOptions copts;
  copts.compute_locations = {"C", "D"};  // pin compute for the script
  CHECK_OK(db.ConnectFeed("ProcessedTweetGenFeed", "ProcessedTweets",
                          "FaultTolerant", copts));
  CHECK_OK(db.ConnectFeed("TweetGenFeed", "Tweets", "FaultTolerant"));

  auto raw_conn = db.feed_manager().GetConnection("TweetGenFeed", "Tweets");
  std::printf("intake nodes: %s %s; secondary compute: C D; stores: G H\n",
              raw_conn->intake_locations[0].c_str(),
              raw_conn->intake_locations.size() > 1
                  ? raw_conn->intake_locations[1].c_str()
                  : "-");

  auto raw = db.FeedMetrics("TweetGenFeed", "Tweets");
  auto processed =
      db.FeedMetrics("ProcessedTweetGenFeed", "ProcessedTweets");

  gen_one.Start();
  gen_two.Start();

  common::SleepMillis(7000);
  std::printf("t=7s : killing node C (compute, secondary feed)\n");
  db.KillNode("C");

  common::SleepMillis(7000);
  std::printf("t=14s: killing node A (intake) and node D (compute)\n");
  db.KillNode("A");
  db.KillNode("D");

  gen_one.Join();
  gen_two.Join();
  common::SleepMillis(1500);  // let the tail of the stream drain

  int64_t sent = gen_one.tweets_sent() + gen_two.tweets_sent();
  // 500ms bins (the underlying recorder uses 250ms bins).
  std::vector<std::string> marks(46);
  marks[14] = "<- node C fails";
  marks[28] = "<- nodes A and D fail";
  PrintTimeline("TweetGenFeed (primary)",
                Rebin(raw->store_timeline.Series(), 2), 500, marks);
  PrintTimeline("ProcessedTweetGenFeed (secondary)",
                Rebin(processed->store_timeline.Series(), 2), 500,
                marks);

  std::printf("\nsource sent: %lld;  raw persisted: %lld;  processed "
              "persisted: %lld\n",
              static_cast<long long>(sent),
              static_cast<long long>(db.CountDataset("Tweets").value()),
              static_cast<long long>(
                  db.CountDataset("ProcessedTweets").value()));
  std::printf(
      "shape check (paper): the t=7s failure dips ONLY the secondary "
      "feed (fault isolation); the t=14s double failure dips both; each "
      "recovery completes within a few bins (2-4s in the paper's "
      "timebase).\n");
  return 0;
}
