// Figures 5.14 / 5.15 / 5.16 — Scalability of the ingestion facility.
//
// Paper setup: 6 parallel TweetGen instances whose aggregate rate far
// exceeds single-node ingestion capacity; a hashtag-extracting Java UDF
// at the compute stage; the Discard policy sheds what the cluster cannot
// absorb. Cluster size varies 1..10; the metric is records successfully
// persisted (and indexed) in a fixed window. Paper result: the persisted
// count grows (near-)linearly with the cluster size until the offered
// load is fully absorbed.
#include "bench/bench_util.h"

#include "common/strings.h"

using namespace asterix;        // NOLINT
using namespace asterix::bench;  // NOLINT

namespace {

constexpr int kSources = 6;
constexpr int64_t kPerSourceRate = 4000;  // aggregate 24k tps >> capacity
constexpr int64_t kWindowMs = 5000;

int64_t RunAtClusterSize(int nodes) {
  InstanceOptions options;
  options.num_nodes = nodes;
  AsterixInstance db(options);
  CHECK_OK(db.Start());
  CHECK_OK(db.CreatePolicy("TightDiscard", "Discard", {{"memory.budget", "1MB"}}));

  std::vector<std::unique_ptr<gen::TweetGenServer>> sources;
  std::vector<std::string> addresses;
  for (int s = 0; s < kSources; ++s) {
    sources.push_back(std::make_unique<gen::TweetGenServer>(
        s, gen::Pattern::Constant(kPerSourceRate, kWindowMs)));
    std::string address = "10.1.0." + std::to_string(s + 1) + ":9000";
    feeds::ExternalSourceRegistry::Instance().RegisterChannel(
        address, &sources.back()->channel());
    addresses.push_back(address);
  }

  // Dataset partitioned across every node (the default nodegroup).
  CHECK_OK(db.CreateDataset(TweetsDataset("ProcessedTweets")));
  // The paper's addFeatures: a Java UDF collecting hashtags, made
  // moderately expensive so compute is the bottleneck.
  CHECK_OK(db.InstallUdf(std::make_shared<feeds::JavaUdf>(
      "lib", "addFeatures",
      [](const adm::Value& tweet) -> std::optional<adm::Value> {
        common::SleepMicros(600);  // 600us service time per record
        adm::Value out = tweet;
        adm::ListVec topics;
        for (const std::string& token : common::SplitAndTrim(
                 tweet.GetField("message_text")->AsString(), ' ')) {
          if (common::StartsWith(token, "#")) {
            topics.push_back(adm::Value::String(token));
          }
        }
        out.SetField("topics", adm::Value::List(std::move(topics)));
        return out;
      })));

  feeds::FeedDef feed;
  feed.name = "TweetGenFeed";
  feed.adaptor_alias = "TweetGenAdaptor";
  feed.adaptor_config = {{"sockets", common::Join(addresses, ",")}};
  feed.udf = "lib#addFeatures";
  CHECK_OK(db.CreateFeed(feed));
  // Intake parallelism stays fixed at 6 (the TweetGen count); compute
  // and store parallelism track the cluster size (Figure 5.15).
  CHECK_OK(db.ConnectFeed("TweetGenFeed", "ProcessedTweets",
                          "TightDiscard", {.compute_count = nodes}));

  for (auto& source : sources) source->Start();
  for (auto& source : sources) source->Join();
  common::SleepMillis(400);  // settle in-flight frames

  int64_t persisted = db.CountDataset("ProcessedTweets").value();
  for (const std::string& address : addresses) {
    feeds::ExternalSourceRegistry::Instance().UnregisterChannel(address);
  }
  return persisted;
}

}  // namespace

int main() {
  Banner("Figures 5.14/5.16",
         "records ingested (persisted+indexed) vs cluster size");
  std::printf("\n%8s %12s %10s %12s\n", "nodes", "persisted", "speedup",
              "per-node");
  std::vector<int> sizes = {1, 2, 4, 6, 8, 10};
  int64_t base = 0;
  std::vector<int64_t> results;
  for (int nodes : sizes) {
    int64_t persisted = RunAtClusterSize(nodes);
    results.push_back(persisted);
    if (nodes == 1) base = persisted;
    std::printf("%8d %12lld %9.2fx %12lld\n", nodes,
                static_cast<long long>(persisted),
                static_cast<double>(persisted) / base,
                static_cast<long long>(persisted / nodes));
  }
  std::printf(
      "\nshape check (paper): near-linear scale-up — persisted records "
      "grow with added nodes while the per-node rate stays roughly "
      "flat (Figure 5.16), because the offered load (6 sources x %lld "
      "tps) exceeds cluster capacity throughout.\n",
      static_cast<long long>(kPerSourceRate));
  return 0;
}
