// Sustained LSM ingest throughput vs. hash partition count — the storage
// side of the paper's "partitioned parallelism" claim (Chapter 7). W
// concurrent writers insert pre-generated records into a
// PartitionedLsmIndex configured with small memtables so flush/merge work
// dominates, exactly the regime where a single global-lock LSM stalls.
// Two effects are measured:
//   1. partitioning: each partition holds 1/P of the data, so the total
//      merge work drops ~P-fold (merges re-read the whole partition), and
//      writers stop contending on one mutex;
//   2. async maintenance: Insert never blocks on a flush or merge (the
//      sync row reproduces the pre-optimization write path for contrast;
//      its insert_stall_ms shows the stop-the-world compactions).
// Reported records/s include draining the maintenance backlog, so deferred
// work cannot inflate the figure. Results go to BENCH_ingest.json.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "adm/value.h"
#include "bench/bench_util.h"
#include "common/clock.h"
#include "storage/key.h"
#include "storage/lsm_index.h"

namespace asterix {
namespace bench {
namespace {

using adm::Value;
using storage::LsmOptions;
using storage::LsmStats;
using storage::PartitionedLsmIndex;

constexpr size_t kMemtableBytes = 16 << 10;
constexpr size_t kMaxRuns = 4;
constexpr int kWriterThreads = 4;

struct RunResult {
  size_t partitions = 0;
  bool async = true;
  double insert_secs = 0;   // all Insert calls returned
  double total_secs = 0;    // ... and the maintenance backlog drained
  double records_per_sec = 0;
  LsmStats stats;
};

RunResult RunOnce(size_t partitions, bool async,
                  const std::vector<std::string>& keys,
                  const std::string& payload) {
  LsmOptions options;
  options.memtable_bytes_limit = kMemtableBytes;
  options.max_runs = kMaxRuns;
  options.partitions = partitions;
  options.async_maintenance = async;
  PartitionedLsmIndex index(options);

  const size_t n = keys.size();
  common::Stopwatch watch;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriterThreads; ++t) {
    writers.emplace_back([&, t] {
      for (size_t i = static_cast<size_t>(t); i < n; i += kWriterThreads) {
        CHECK_OK(index.Insert(keys[i], Value::String(payload)));
      }
    });
  }
  for (auto& w : writers) w.join();
  double insert_secs = watch.ElapsedSeconds();
  index.Drain();
  double total_secs = watch.ElapsedSeconds();

  RunResult result;
  result.partitions = partitions;
  result.async = async;
  result.insert_secs = insert_secs;
  result.total_secs = total_secs;
  result.records_per_sec = static_cast<double>(n) / total_secs;
  result.stats = index.stats();
  return result;
}

int Main(int argc, char** argv) {
  size_t records = 80000;
  if (argc > 1) records = static_cast<size_t>(std::atoll(argv[1]));

  Banner("BENCH ingest", "partitioned LSM write path: records/s vs. "
                         "partition count (incl. maintenance drain)");
  std::printf("records=%zu writers=%d memtable=%zuB max_runs=%zu "
              "hw_concurrency=%u\n",
              records, kWriterThreads, kMemtableBytes, kMaxRuns,
              std::thread::hardware_concurrency());

  std::vector<std::string> keys;
  keys.reserve(records);
  for (size_t i = 0; i < records; ++i) {
    keys.push_back(
        storage::EncodeKey(Value::Int64(static_cast<int64_t>(i))).value());
  }
  std::string payload(64, 'x');

  // Warm-up pass so allocator state does not favor the first config.
  RunOnce(1, true, keys, payload);

  std::vector<RunResult> results;
  results.push_back(RunOnce(1, false, keys, payload));  // sync baseline
  for (size_t partitions : {1, 2, 4, 8}) {
    results.push_back(RunOnce(partitions, true, keys, payload));
  }

  std::printf("\n%-6s %-5s %12s %12s %14s %8s %7s %10s\n", "parts", "mode",
              "insert_s", "total_s", "records/s", "flushes", "merges",
              "stall_ms");
  double rate_1p = 0, rate_4p = 0;
  for (const RunResult& r : results) {
    std::printf("%-6zu %-5s %12.3f %12.3f %14.0f %8lld %7lld %10lld\n",
                r.partitions, r.async ? "async" : "sync", r.insert_secs,
                r.total_secs, r.records_per_sec,
                static_cast<long long>(r.stats.flushes),
                static_cast<long long>(r.stats.merges),
                static_cast<long long>(r.stats.insert_stall_ms));
    if (r.async && r.partitions == 1) rate_1p = r.records_per_sec;
    if (r.async && r.partitions == 4) rate_4p = r.records_per_sec;
  }
  double speedup = rate_1p > 0 ? rate_4p / rate_1p : 0;
  std::printf("\nspeedup 4 partitions vs 1: %.2fx\n", speedup);

  // Registry view of the same work: flush/merge latency distributions
  // accumulated across every configuration above (Snapshot() is the
  // supported read path; LsmStats counters stay for per-run attribution).
  common::MetricsSnapshot snap = AsterixInstance::SnapshotMetrics();
  std::printf("\nstorage maintenance latency (process-wide registry):\n");
  PrintHistogramSummary(snap, "lsm_flush_duration_us");
  PrintHistogramSummary(snap, "lsm_merge_duration_us");
  std::printf("  lsm_flushes_total=%lld lsm_merges_total=%lld "
              "lsm_flush_backlog=%lld\n",
              static_cast<long long>(snap.CounterValue("lsm_flushes_total")),
              static_cast<long long>(snap.CounterValue("lsm_merges_total")),
              static_cast<long long>(snap.GaugeValue("lsm_flush_backlog")));

  std::FILE* out = std::fopen("BENCH_ingest.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_ingest.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"ingest_throughput\",\n"
               "  \"records\": %zu,\n  \"writer_threads\": %d,\n"
               "  \"memtable_bytes_limit\": %zu,\n  \"max_runs\": %zu,\n"
               "  \"hardware_concurrency\": %u,\n  \"results\": [\n",
               records, kWriterThreads, kMemtableBytes, kMaxRuns,
               std::thread::hardware_concurrency());
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::fprintf(
        out,
        "    {\"partitions\": %zu, \"mode\": \"%s\", "
        "\"insert_secs\": %.6f, \"total_secs\": %.6f, "
        "\"records_per_sec\": %.1f, \"flushes\": %lld, \"merges\": %lld, "
        "\"insert_stall_ms\": %lld}%s\n",
        r.partitions, r.async ? "async" : "sync", r.insert_secs,
        r.total_secs, r.records_per_sec,
        static_cast<long long>(r.stats.flushes),
        static_cast<long long>(r.stats.merges),
        static_cast<long long>(r.stats.insert_stall_ms),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"speedup_4p_vs_1p\": %.3f\n}\n", speedup);
  std::fclose(out);
  std::printf("wrote BENCH_ingest.json\n");

  if (!WriteMetricsExport("BENCH_ingest_metrics.prom") ||
      !WriteMetricsManifest("BENCH_ingest_metrics.manifest")) {
    std::fprintf(stderr, "cannot write metrics export/manifest\n");
    return 1;
  }
  std::printf("wrote BENCH_ingest_metrics.prom + .manifest\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace asterix

int main(int argc, char** argv) { return asterix::bench::Main(argc, argv); }
