// Sustained LSM ingest throughput vs. hash partition count — the storage
// side of the paper's "partitioned parallelism" claim (Chapter 7). W
// concurrent writers insert pre-generated records into a
// PartitionedLsmIndex configured with small memtables so flush/merge work
// dominates, exactly the regime where a single global-lock LSM stalls.
// Two effects are measured:
//   1. partitioning: each partition holds 1/P of the data, so the total
//      merge work drops ~P-fold (merges re-read the whole partition), and
//      writers stop contending on one mutex;
//   2. async maintenance: Insert never blocks on a flush or merge (the
//      sync row reproduces the pre-optimization write path for contrast;
//      its insert_stall_ms shows the stop-the-world compactions).
// Reported records/s include draining the maintenance backlog, so deferred
// work cannot inflate the figure. Results go to BENCH_ingest.json.
//
// A second section measures the hot frame path's allocation cost: records
// pumped appender -> subscriber queue -> batched drain, with and without
// a FramePool, under the operator-new interposer (this TU defines it; see
// tests/testing_util.h). The pooled row's bytes-allocated-per-record is
// the memory-architecture headline and lands in BENCH_ingest.json as
// `frame_path` + `frame_alloc_reduction`.
#define ASTERIX_ALLOC_INTERPOSER 1

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "adm/value.h"
#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/mem_governor.h"
#include "feeds/policy.h"
#include "feeds/subscriber.h"
#include "hyracks/frame.h"
#include "hyracks/frame_pool.h"
#include "storage/key.h"
#include "storage/lsm_index.h"
#include "tests/testing_util.h"

namespace asterix {
namespace bench {
namespace {

using adm::Value;
using storage::LsmOptions;
using storage::LsmStats;
using storage::PartitionedLsmIndex;

constexpr size_t kMemtableBytes = 16 << 10;
constexpr size_t kMaxRuns = 4;
constexpr int kWriterThreads = 4;

struct RunResult {
  size_t partitions = 0;
  bool async = true;
  double insert_secs = 0;   // all Insert calls returned
  double total_secs = 0;    // ... and the maintenance backlog drained
  double records_per_sec = 0;
  LsmStats stats;
};

RunResult RunOnce(size_t partitions, bool async,
                  const std::vector<std::string>& keys,
                  const std::string& payload) {
  LsmOptions options;
  options.memtable_bytes_limit = kMemtableBytes;
  options.max_runs = kMaxRuns;
  options.partitions = partitions;
  options.async_maintenance = async;
  PartitionedLsmIndex index(options);

  const size_t n = keys.size();
  common::Stopwatch watch;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriterThreads; ++t) {
    writers.emplace_back([&, t] {
      for (size_t i = static_cast<size_t>(t); i < n; i += kWriterThreads) {
        CHECK_OK(index.Insert(keys[i], Value::String(payload)));
      }
    });
  }
  for (auto& w : writers) w.join();
  double insert_secs = watch.ElapsedSeconds();
  index.Drain();
  double total_secs = watch.ElapsedSeconds();

  RunResult result;
  result.partitions = partitions;
  result.async = async;
  result.insert_secs = insert_secs;
  result.total_secs = total_secs;
  result.records_per_sec = static_cast<double>(n) / total_secs;
  result.stats = index.stats();
  return result;
}

struct FramePathResult {
  bool pooled = false;
  double records_per_sec = 0;
  double allocs_per_record = 0;
  double bytes_per_record = 0;
  int64_t block_hits = 0;
  int64_t vector_hits = 0;
};

// One producer==consumer thread pumps Int64 records through
// appender -> subscriber ring -> batched drain (the steady-state frame
// path), counting this thread's heap traffic with the interposer. The
// unpooled row rebuilds every frame and record vector from the heap; the
// pooled row recycles both, so its warm cost is the zero-allocation
// claim tests/mem_test.cc asserts exactly.
FramePathResult RunFramePath(bool pooled, size_t records) {
  common::MemGovernor governor(nullptr);
  hyracks::FramePool pool(governor.RegisterPool("frame_path", 256 << 20));

  feeds::SubscriberOptions options;
  options.mode = feeds::ExcessMode::kBlock;
  options.name = pooled ? "bench_pooled" : "bench_unpooled";
  options.memory_budget_bytes = 256 << 20;
  options.memory_pool = governor.RegisterPool("queue", 256 << 20);
  options.spill_pool = governor.RegisterPool("spill", 256 << 20);
  feeds::SubscriberQueue queue(options);

  struct QueueWriter : hyracks::IFrameWriter {
    feeds::SubscriberQueue* queue = nullptr;
    common::Status NextFrame(const hyracks::FramePtr& frame) override {
      queue->Deliver(frame, nullptr);
      return common::Status::OK();
    }
  };
  QueueWriter writer;
  writer.queue = &queue;

  constexpr size_t kRecordsPerFrame = 128;
  hyracks::FrameAppender appender(&writer, kRecordsPerFrame, 1 << 20,
                                  pooled ? &pool : nullptr);

  std::vector<hyracks::FramePtr> drained;
  auto pump_frame = [&](size_t base) {
    for (size_t r = 0; r < kRecordsPerFrame; ++r) {
      CHECK_OK(appender.Append(
          adm::Value::Int64(static_cast<int64_t>(base + r))));
    }
    drained.clear();
    (void)queue.NextBatchInto(&drained, /*timeout_ms=*/1000);
  };

  // Warm-up: learn block sizes, grow vectors to capacity, fill free
  // lists — both modes get it so neither pays cold-start costs.
  for (size_t i = 0; i < 64; ++i) pump_frame(i * kRecordsPerFrame);
  drained.clear();

  const size_t frames = records / kRecordsPerFrame;
  asterix::testing::AllocScope scope;
  common::Stopwatch watch;
  for (size_t i = 0; i < frames; ++i) pump_frame(i * kRecordsPerFrame);
  double secs = watch.ElapsedSeconds();

  FramePathResult result;
  result.pooled = pooled;
  const double n = static_cast<double>(frames * kRecordsPerFrame);
  result.records_per_sec = n / secs;
  result.allocs_per_record = static_cast<double>(scope.count()) / n;
  result.bytes_per_record = static_cast<double>(scope.bytes()) / n;
  result.block_hits = pool.block_hits();
  result.vector_hits = pool.vector_hits();
  return result;
}

int Main(int argc, char** argv) {
  size_t records = 80000;
  if (argc > 1) records = static_cast<size_t>(std::atoll(argv[1]));

  Banner("BENCH ingest", "partitioned LSM write path: records/s vs. "
                         "partition count (incl. maintenance drain)");
  std::printf("records=%zu writers=%d memtable=%zuB max_runs=%zu "
              "hw_concurrency=%u\n",
              records, kWriterThreads, kMemtableBytes, kMaxRuns,
              std::thread::hardware_concurrency());

  std::vector<std::string> keys;
  keys.reserve(records);
  for (size_t i = 0; i < records; ++i) {
    keys.push_back(
        storage::EncodeKey(Value::Int64(static_cast<int64_t>(i))).value());
  }
  std::string payload(64, 'x');

  // Warm-up pass so allocator state does not favor the first config.
  RunOnce(1, true, keys, payload);

  std::vector<RunResult> results;
  results.push_back(RunOnce(1, false, keys, payload));  // sync baseline
  for (size_t partitions : {1, 2, 4, 8}) {
    results.push_back(RunOnce(partitions, true, keys, payload));
  }

  std::printf("\n%-6s %-5s %12s %12s %14s %8s %7s %10s\n", "parts", "mode",
              "insert_s", "total_s", "records/s", "flushes", "merges",
              "stall_ms");
  double rate_1p = 0, rate_4p = 0;
  for (const RunResult& r : results) {
    std::printf("%-6zu %-5s %12.3f %12.3f %14.0f %8lld %7lld %10lld\n",
                r.partitions, r.async ? "async" : "sync", r.insert_secs,
                r.total_secs, r.records_per_sec,
                static_cast<long long>(r.stats.flushes),
                static_cast<long long>(r.stats.merges),
                static_cast<long long>(r.stats.insert_stall_ms));
    if (r.async && r.partitions == 1) rate_1p = r.records_per_sec;
    if (r.async && r.partitions == 4) rate_4p = r.records_per_sec;
  }
  double speedup = rate_1p > 0 ? rate_4p / rate_1p : 0;
  std::printf("\nspeedup 4 partitions vs 1: %.2fx\n", speedup);

  // --- frame-path allocation cost (pooled vs unpooled) ------------------
  const size_t frame_records = records;
  const bool interposed = asterix::testing::AllocInterposerActive();
  FramePathResult unpooled;
  FramePathResult pooled_fp;
  if (interposed) {
    RunFramePath(false, frame_records);  // warm-up (allocator state)
    unpooled = RunFramePath(false, frame_records);
    pooled_fp = RunFramePath(true, frame_records);
    std::printf("\nframe path (appender -> subscriber ring -> drain), "
                "%zu records:\n", frame_records);
    std::printf("%-10s %14s %16s %16s\n", "mode", "records/s",
                "allocs/record", "bytes/record");
    for (const FramePathResult* r : {&unpooled, &pooled_fp}) {
      std::printf("%-10s %14.0f %16.4f %16.1f\n",
                  r->pooled ? "pooled" : "unpooled", r->records_per_sec,
                  r->allocs_per_record, r->bytes_per_record);
    }
    double reduction = pooled_fp.bytes_per_record > 0
                           ? unpooled.bytes_per_record /
                                 pooled_fp.bytes_per_record
                           : 0;
    if (reduction > 0) {
      std::printf("bytes-allocated-per-record reduction: %.1fx\n",
                  reduction);
    } else {
      std::printf("bytes-allocated-per-record reduction: inf "
                  "(pooled steady state allocates nothing)\n");
    }
  } else {
    std::printf("\nframe path: alloc interposer inactive (sanitizer "
                "build); skipping\n");
  }

  // Registry view of the same work: flush/merge latency distributions
  // accumulated across every configuration above (Snapshot() is the
  // supported read path; LsmStats counters stay for per-run attribution).
  common::MetricsSnapshot snap = AsterixInstance::SnapshotMetrics();
  std::printf("\nstorage maintenance latency (process-wide registry):\n");
  PrintHistogramSummary(snap, "lsm_flush_duration_us");
  PrintHistogramSummary(snap, "lsm_merge_duration_us");
  std::printf("  lsm_flushes_total=%lld lsm_merges_total=%lld "
              "lsm_flush_backlog=%lld\n",
              static_cast<long long>(snap.CounterValue("lsm_flushes_total")),
              static_cast<long long>(snap.CounterValue("lsm_merges_total")),
              static_cast<long long>(snap.GaugeValue("lsm_flush_backlog")));

  std::FILE* out = std::fopen("BENCH_ingest.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_ingest.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"ingest_throughput\",\n"
               "  \"records\": %zu,\n  \"writer_threads\": %d,\n"
               "  \"memtable_bytes_limit\": %zu,\n  \"max_runs\": %zu,\n"
               "  \"hardware_concurrency\": %u,\n  \"results\": [\n",
               records, kWriterThreads, kMemtableBytes, kMaxRuns,
               std::thread::hardware_concurrency());
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::fprintf(
        out,
        "    {\"partitions\": %zu, \"mode\": \"%s\", "
        "\"insert_secs\": %.6f, \"total_secs\": %.6f, "
        "\"records_per_sec\": %.1f, \"flushes\": %lld, \"merges\": %lld, "
        "\"insert_stall_ms\": %lld}%s\n",
        r.partitions, r.async ? "async" : "sync", r.insert_secs,
        r.total_secs, r.records_per_sec,
        static_cast<long long>(r.stats.flushes),
        static_cast<long long>(r.stats.merges),
        static_cast<long long>(r.stats.insert_stall_ms),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"speedup_4p_vs_1p\": %.3f,\n", speedup);
  if (interposed) {
    std::fprintf(
        out,
        "  \"frame_path\": [\n"
        "    {\"mode\": \"unpooled\", \"records_per_sec\": %.1f, "
        "\"allocs_per_record\": %.4f, \"bytes_per_record\": %.1f},\n"
        "    {\"mode\": \"pooled\", \"records_per_sec\": %.1f, "
        "\"allocs_per_record\": %.4f, \"bytes_per_record\": %.1f}\n"
        "  ],\n",
        unpooled.records_per_sec, unpooled.allocs_per_record,
        unpooled.bytes_per_record, pooled_fp.records_per_sec,
        pooled_fp.allocs_per_record, pooled_fp.bytes_per_record);
    // JSON has no infinity: a zero-allocation pooled run reports the
    // unpooled figure itself as the reduction floor.
    double reduction =
        pooled_fp.bytes_per_record > 0
            ? unpooled.bytes_per_record / pooled_fp.bytes_per_record
            : unpooled.bytes_per_record;
    std::fprintf(out, "  \"frame_alloc_reduction\": %.1f\n}\n", reduction);
  } else {
    std::fprintf(out, "  \"frame_path\": [],\n"
                      "  \"frame_alloc_reduction\": 0\n}\n");
  }
  std::fclose(out);
  std::printf("wrote BENCH_ingest.json\n");

  if (!WriteMetricsExport("BENCH_ingest_metrics.prom") ||
      !WriteMetricsManifest("BENCH_ingest_metrics.manifest")) {
    std::fprintf(stderr, "cannot write metrics export/manifest\n");
    return 1;
  }
  std::printf("wrote BENCH_ingest_metrics.prom + .manifest\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace asterix

int main(int argc, char** argv) { return asterix::bench::Main(argc, argv); }
