// Table 5.1 — Batch inserts versus data ingestion.
//
// Paper setup: a pre-populated Users dataset; 8.1M additional records put
// in either via repeated insert statements (batch sizes 1 and 20) or via
// a file-based data feed. Paper result (avg ms/record):
//   batch=1: 73.75    batch=20: 6.2    feed: 0.03
// i.e. the feed beats batch-20 by two orders of magnitude because it pays
// the statement-compilation/job-scheduling overhead once instead of per
// batch. This harness reproduces the same three rows (scaled down in
// volume; our "compilation" is job construction + task scheduling, which
// is far cheaper than AsterixDB's AQL compiler — shapes, not absolutes).
#include <fstream>

#include "bench/bench_util.h"

using namespace asterix;        // NOLINT
using namespace asterix::bench;  // NOLINT

namespace {

std::vector<adm::Value> MakeUsers(int n, int start) {
  std::vector<adm::Value> records;
  common::Rng rng(start + 11);
  for (int i = start; i < start + n; ++i) {
    records.push_back(adm::Value::Record({
        {"id", adm::Value::String("u" + std::to_string(i))},
        {"alias", adm::Value::String("user" + std::to_string(i))},
        {"friends", adm::Value::Int64(rng.Uniform(0, 5000))},
        {"employment", adm::Value::String(rng.AlphaString(24))},
    }));
  }
  return records;
}

double RunBatchInsert(int batch_size, int total_records) {
  AsterixInstance db(InstanceOptions{.num_nodes = 3});
  CHECK_OK(db.Start());
  CHECK_OK(db.CreateDataset(TweetsDataset("Users")));
  // Pre-populate (the paper pre-loads 590M records; we scale down — the
  // overhead under measurement is per-statement, not per-existing-byte).
  CHECK_OK(db.InsertBatch("Users", MakeUsers(5000, 1000000)));

  common::Stopwatch watch;
  for (int done = 0; done < total_records; done += batch_size) {
    // Each iteration = one insert statement: construct, compile into a
    // job, schedule, execute, clean up.
    CHECK_OK(db.InsertBatch("Users", MakeUsers(batch_size, done)));
  }
  return static_cast<double>(watch.ElapsedMicros()) / 1000.0 /
         total_records;
}

double RunFeedIngest(int total_records) {
  AsterixInstance db(InstanceOptions{.num_nodes = 3});
  CHECK_OK(db.Start());
  CHECK_OK(db.CreateDataset(TweetsDataset("Users")));
  CHECK_OK(db.InsertBatch("Users", MakeUsers(5000, 1000000)));

  // The paper's file_based_feed: records pre-generated on disk, ingested
  // through a feed pipeline set up once.
  std::string path = "/tmp/asterix_bench_users.adm";
  {
    std::ofstream out(path);
    for (const adm::Value& record : MakeUsers(total_records, 0)) {
      out << record.ToAdmString() << "\n";
    }
  }
  feeds::FeedDef feed;
  feed.name = "UsersOnDisk";
  feed.adaptor_alias = "file_based_feed";
  feed.adaptor_config = {{"path", path}, {"type_name", "UserType"},
                         {"format", "adm"}};
  CHECK_OK(db.CreateFeed(feed));

  common::Stopwatch watch;
  CHECK_OK(db.ConnectFeed("UsersOnDisk", "Users", "Basic"));
  WaitFor(
      [&] {
        return db.CountDataset("Users").value() >= 5000 + total_records;
      },
      120000);
  double ms_per_record =
      static_cast<double>(watch.ElapsedMicros()) / 1000.0 / total_records;
  CHECK_OK(db.DisconnectFeed("UsersOnDisk", "Users"));
  std::remove(path.c_str());
  return ms_per_record;
}

}  // namespace

int main() {
  Banner("Table 5.1", "execution time per record: batch inserts vs feed");

  constexpr int kBatch1Records = 2000;   // batch=1 is slow; keep it short
  constexpr int kBatch20Records = 20000;
  constexpr int kFeedRecords = 100000;

  double batch1 = RunBatchInsert(1, kBatch1Records);
  double batch20 = RunBatchInsert(20, kBatch20Records);
  double feed = RunFeedIngest(kFeedRecords);

  std::printf("\n%-34s %18s %18s\n", "Method", "avg ms/record",
              "paper (ms/record)");
  std::printf("%-34s %18.4f %18s\n", "Batch Insert (batch size = 1)",
              batch1, "73.75");
  std::printf("%-34s %18.4f %18s\n", "Batch Insert (batch size = 20)",
              batch20, "6.2");
  std::printf("%-34s %18.4f %18s\n", "Data Feed", feed, "0.03");
  std::printf(
      "\nshape check: batch1/batch20 = %.1fx (paper 11.9x), "
      "batch20/feed = %.1fx (paper 206x)\n",
      batch1 / batch20, batch20 / feed);
  return 0;
}
