// metrics-smoke: CI gate for the observability layer. Runs the ingest
// bench briefly, then validates its metrics export:
//   1. every line of BENCH_ingest_metrics.prom is well-formed Prometheus
//      text exposition (`# TYPE name kind` or `name[{labels}] value`);
//   2. histogram series are internally consistent (cumulative
//      non-decreasing buckets, an le="+Inf" bucket equal to _count, a
//      _sum sample);
//   3. every metric in BENCH_ingest_metrics.manifest (the registry's own
//      List()) appears in the exposition — Export() may not silently drop
//      a registered metric.
// Exit 0 on success; prints the first violation and exits 1 otherwise.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

int Fail(const std::string& why) {
  std::fprintf(stderr, "metrics-smoke FAIL: %s\n", why.c_str());
  return 1;
}

bool IsMetricNameChar(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
      c == ':') {
    return true;
  }
  return !first && c >= '0' && c <= '9';
}

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    if (!IsMetricNameChar(name[i], i == 0)) return false;
  }
  return true;
}

bool ValidValue(const std::string& v) {
  if (v == "+Inf" || v == "-Inf" || v == "NaN") return true;
  if (v.empty()) return false;
  char* end = nullptr;
  std::strtod(v.c_str(), &end);
  return end != nullptr && *end == '\0';
}

/// One parsed sample line.
struct Sample {
  std::string name;
  std::string labels;  // raw `{...}` block or ""
  std::string value;
};

/// Parses `name[{labels}] value`; returns false on malformed input.
bool ParseSample(const std::string& line, Sample* out) {
  size_t i = 0;
  while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
  out->name = line.substr(0, i);
  if (!ValidMetricName(out->name)) return false;
  out->labels.clear();
  if (i < line.size() && line[i] == '{') {
    // Scan to the matching close brace, honoring quoted label values
    // (which may contain escaped quotes and backslashes).
    size_t start = i;
    bool in_quotes = false;
    for (++i; i < line.size(); ++i) {
      char c = line[i];
      if (in_quotes) {
        if (c == '\\') {
          ++i;  // skip the escaped character
        } else if (c == '"') {
          in_quotes = false;
        }
      } else if (c == '"') {
        in_quotes = true;
      } else if (c == '}') {
        break;
      }
    }
    if (i >= line.size() || line[i] != '}') return false;
    out->labels = line.substr(start, i - start + 1);
    ++i;
  }
  if (i >= line.size() || line[i] != ' ') return false;
  out->value = line.substr(i + 1);
  return ValidValue(out->value);
}

/// Extracts the value of label `key` from a raw `{...}` block; returns
/// false when absent. Also appends every other label (raw `k="v"` text)
/// to `rest` — used to group histogram buckets into series.
bool SplitLabel(const std::string& block, const std::string& key,
                std::string* value, std::string* rest) {
  bool found = false;
  rest->clear();
  if (block.size() < 2) return false;
  size_t i = 1;  // past '{'
  while (i < block.size() - 1) {
    size_t eq = block.find('=', i);
    if (eq == std::string::npos || block[eq + 1] != '"') return false;
    std::string k = block.substr(i, eq - i);
    size_t j = eq + 2;
    std::string v;
    bool closed = false;
    for (; j < block.size(); ++j) {
      char c = block[j];
      if (c == '\\' && j + 1 < block.size()) {
        v += block[++j];
      } else if (c == '"') {
        closed = true;
        break;
      } else {
        v += c;
      }
    }
    if (!closed) return false;
    if (k == key) {
      *value = v;
      found = true;
    } else {
      if (!rest->empty()) *rest += ",";
      *rest += block.substr(i, j + 1 - i);
    }
    i = j + 1;
    if (i < block.size() && block[i] == ',') ++i;
  }
  return found;
}

bool HasSuffix(const std::string& s, const std::string& suffix,
               std::string* base) {
  if (s.size() <= suffix.size() ||
      s.compare(s.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  *base = s.substr(0, s.size() - suffix.size());
  return true;
}

struct HistogramSeries {
  std::vector<std::pair<std::string, double>> buckets;  // (le, cumulative)
  bool has_sum = false;
  bool has_count = false;
  double count = 0;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Fail("usage: metrics_smoke <bench_ingest_throughput> [records]");
  }
  std::string records = argc > 2 ? argv[2] : "12000";
  std::string cmd = std::string("\"") + argv[1] + "\" " + records +
                    " > metrics_smoke_bench.log 2>&1";
  int rc = std::system(cmd.c_str());
  if (rc != 0) {
    return Fail("bench exited with status " + std::to_string(rc) +
                " (see metrics_smoke_bench.log)");
  }

  std::ifstream prom("BENCH_ingest_metrics.prom");
  if (!prom) return Fail("bench did not write BENCH_ingest_metrics.prom");

  std::map<std::string, std::string> type_of;  // base name -> kind
  std::set<std::string> sample_keys;           // "name{labels}" raw
  std::map<std::string, HistogramSeries> series;  // "base{rest}" -> series
  std::string line;
  int lineno = 0;
  while (std::getline(prom, line)) {
    ++lineno;
    std::string where = "line " + std::to_string(lineno) + ": " + line;
    if (line.empty()) return Fail("blank line — " + where);
    if (line[0] == '#') {
      std::istringstream ss(line);
      std::string hash, keyword, name, kind, extra;
      ss >> hash >> keyword >> name >> kind;
      if (hash != "#" || keyword != "TYPE" || !ValidMetricName(name) ||
          (kind != "counter" && kind != "gauge" && kind != "histogram") ||
          (ss >> extra)) {
        return Fail("malformed # TYPE — " + where);
      }
      if (type_of.count(name) != 0) {
        return Fail("duplicate # TYPE for " + name + " — " + where);
      }
      type_of[name] = kind;
      continue;
    }
    Sample s;
    if (!ParseSample(line, &s)) return Fail("malformed sample — " + where);
    if (sample_keys.count(s.name + s.labels) != 0) {
      return Fail("duplicate sample " + s.name + s.labels + " — " + where);
    }
    sample_keys.insert(s.name + s.labels);

    // Every sample must belong to a declared metric: either its own TYPE
    // line, or (for _bucket/_sum/_count) a declared histogram base.
    std::string base;
    if (HasSuffix(s.name, "_bucket", &base) &&
        type_of.count(base) != 0 && type_of[base] == "histogram") {
      std::string le, rest;
      if (!SplitLabel(s.labels, "le", &le, &rest)) {
        return Fail("histogram bucket without le label — " + where);
      }
      if (le != "+Inf" && !ValidValue(le)) {
        return Fail("bad le value — " + where);
      }
      HistogramSeries& hs = series[base + "{" + rest + "}"];
      double v = std::strtod(s.value.c_str(), nullptr);
      if (!hs.buckets.empty() && v < hs.buckets.back().second) {
        return Fail("bucket counts not cumulative — " + where);
      }
      hs.buckets.emplace_back(le, v);
    } else if (HasSuffix(s.name, "_sum", &base) &&
               type_of.count(base) != 0 && type_of[base] == "histogram") {
      std::string le, rest;
      SplitLabel(s.labels.empty() ? "{}" : s.labels, "le", &le, &rest);
      series[base + "{" + rest + "}"].has_sum = true;
    } else if (HasSuffix(s.name, "_count", &base) &&
               type_of.count(base) != 0 && type_of[base] == "histogram") {
      std::string le, rest;
      SplitLabel(s.labels.empty() ? "{}" : s.labels, "le", &le, &rest);
      HistogramSeries& hs = series[base + "{" + rest + "}"];
      hs.has_count = true;
      hs.count = std::strtod(s.value.c_str(), nullptr);
    } else if (type_of.count(s.name) != 0 &&
               type_of[s.name] != "histogram") {
      // plain counter/gauge sample — fine
    } else {
      return Fail("sample without matching # TYPE — " + where);
    }
  }
  if (sample_keys.empty()) return Fail("empty exposition");

  for (const auto& [key, hs] : series) {
    if (!hs.has_sum) return Fail("histogram missing _sum: " + key);
    if (!hs.has_count) return Fail("histogram missing _count: " + key);
    if (hs.buckets.empty() || hs.buckets.back().first != "+Inf") {
      return Fail("histogram missing le=\"+Inf\" bucket: " + key);
    }
    if (hs.buckets.back().second != hs.count) {
      return Fail("+Inf bucket != _count: " + key);
    }
  }

  // Cross-check: every registered metric (the registry's own List(),
  // written as the manifest) must appear in the exposition.
  std::ifstream manifest("BENCH_ingest_metrics.manifest");
  if (!manifest) {
    return Fail("bench did not write BENCH_ingest_metrics.manifest");
  }
  int checked = 0;
  while (std::getline(manifest, line)) {
    if (line.empty()) continue;
    size_t t1 = line.find('\t');
    size_t t2 = t1 == std::string::npos ? t1 : line.find('\t', t1 + 1);
    if (t2 == std::string::npos) {
      return Fail("malformed manifest line: " + line);
    }
    std::string kind = line.substr(0, t1);
    std::string name = line.substr(t1 + 1, t2 - t1 - 1);
    std::string labels = line.substr(t2 + 1);
    std::string want = kind == "histogram" ? name + "_count" + labels
                                           : name + labels;
    if (sample_keys.count(want) == 0) {
      return Fail("registered metric missing from export: " + kind + " " +
                  name + labels + " (expected sample " + want + ")");
    }
    ++checked;
  }
  if (checked == 0) return Fail("empty manifest");

  std::printf("metrics-smoke OK: %zu samples, %zu histogram series, "
              "%d registered metrics all exported\n",
              sample_keys.size(), series.size(), checked);
  return 0;
}
