// Ablation microbenchmarks (google-benchmark) for the design choices
// DESIGN.md calls out:
//   1. feed joint short-circuit vs shared mode (Data Bucket overhead),
//   2. frame size (records per frame) on the joint delivery path,
//   3. ack grouping window (messages saved by grouping, §5.6),
//   4. the storage write path (LSM insert, WAL append),
//   5. ADM parse/serialize (the intake translation step).
#include <benchmark/benchmark.h>

#include "adm/parser.h"
#include "feeds/ack.h"
#include "feeds/joint.h"
#include "gen/tweetgen.h"
#include "storage/key.h"
#include "storage/lsm_index.h"
#include "storage/wal.h"

namespace asterix {
namespace {

using adm::Value;
using hyracks::FramePtr;
using hyracks::MakeFrame;

FramePtr SampleFrame(int records) {
  gen::TweetFactory factory(0);
  std::vector<Value> batch;
  for (int i = 0; i < records; ++i) batch.push_back(factory.NextTweet());
  return MakeFrame(std::move(batch));
}

/// Ablation 1: joint delivery with N subscribers (1 = short-circuit,
/// no Data Bucket; >1 = shared mode with refcounted buckets).
void BM_JointDelivery(benchmark::State& state) {
  int subscribers = static_cast<int>(state.range(0));
  feeds::FeedJoint joint("bench");
  std::vector<std::shared_ptr<feeds::SubscriberQueue>> queues;
  feeds::SubscriberOptions options;
  options.memory_budget_bytes = 1LL << 40;  // never throttle here
  for (int s = 0; s < subscribers; ++s) {
    queues.push_back(joint.Subscribe(options));
  }
  FramePtr frame = SampleFrame(64);
  for (auto _ : state) {
    CHECK_OK(joint.NextFrame(frame));
    for (auto& queue : queues) {
      benchmark::DoNotOptimize(queue->Next(0));
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
  state.SetLabel(subscribers == 1 ? "short-circuit" : "shared/buckets");
}
BENCHMARK(BM_JointDelivery)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Ablation 2: frame size — batching granularity of the delivery path.
void BM_FrameSize(benchmark::State& state) {
  int records_per_frame = static_cast<int>(state.range(0));
  feeds::FeedJoint joint("bench");
  feeds::SubscriberOptions options;
  options.memory_budget_bytes = 1LL << 40;
  auto queue = joint.Subscribe(options);
  FramePtr frame = SampleFrame(records_per_frame);
  for (auto _ : state) {
    CHECK_OK(joint.NextFrame(frame));
    benchmark::DoNotOptimize(queue->Next(0));
  }
  state.SetItemsProcessed(state.iterations() * records_per_frame);
}
BENCHMARK(BM_FrameSize)->Arg(1)->Arg(8)->Arg(64)->Arg(256)->Arg(1024);

/// Ablation 3: ack grouping — messages published per 10k acks as the
/// grouping window varies (0ms = ungrouped).
void BM_AckGrouping(benchmark::State& state) {
  int64_t window_ms = state.range(0);
  for (auto _ : state) {
    auto bus = std::make_shared<feeds::AckBus>();
    int64_t received = 0;
    bus->Register("c", 0, [&](const std::vector<int64_t>& tids) {
      received += static_cast<int64_t>(tids.size());
    });
    feeds::AckCollector collector(bus, "c", window_ms);
    for (int i = 0; i < 10000; ++i) {
      collector.OnPersisted(feeds::MakeTrackingId(0, i));
    }
    collector.Flush();
    benchmark::DoNotOptimize(received);
    state.counters["msgs_per_10k_acks"] = static_cast<double>(
        bus->messages_published());
  }
}
BENCHMARK(BM_AckGrouping)->Arg(0)->Arg(10)->Arg(100);

/// Substrate: LSM insert path (memtable + periodic flush/merge).
void BM_LsmInsert(benchmark::State& state) {
  storage::LsmIndex index;
  gen::TweetFactory factory(0);
  int64_t i = 0;
  for (auto _ : state) {
    Value tweet = factory.NextTweet();
    auto key = storage::EncodeKey(Value::Int64(i++)).value();
    benchmark::DoNotOptimize(index.Insert(key, std::move(tweet)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LsmInsert);

/// Substrate: WAL append (non-durable buffering).
void BM_WalAppend(benchmark::State& state) {
  storage::Wal wal("/tmp/asterix_bench.wal");
  CHECK_OK(wal.Open());
  gen::TweetFactory factory(0);
  std::string payload = factory.NextTweetText();
  for (auto _ : state) {
    benchmark::DoNotOptimize(wal.Append(payload));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(payload.size()));
  std::remove("/tmp/asterix_bench.wal");
}
BENCHMARK(BM_WalAppend);

/// Intake translation: parse one serialized tweet into ADM.
void BM_AdmParse(benchmark::State& state) {
  gen::TweetFactory factory(0);
  std::string text = factory.NextTweetText();
  for (auto _ : state) {
    benchmark::DoNotOptimize(adm::ParseAdm(text));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_AdmParse);

/// Serialization: the inverse path (spills, WAL payloads, channels).
void BM_AdmSerialize(benchmark::State& state) {
  gen::TweetFactory factory(0);
  Value tweet = factory.NextTweet();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tweet.ToAdmString());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdmSerialize);

}  // namespace
}  // namespace asterix

BENCHMARK_MAIN();
