// Microbenchmark for the data-plane queues: BlockingQueue (mutex+condvar)
// vs MpmcQueue (lock-free ring) vs OverwriteQueue (lossy newest-wins),
// across 1/2/4/8 producers and push batch sizes 1/16/64, one consumer
// draining with the batched pop API. Throughput is items transferred per
// second of wall time. Results go to BENCH_queue.json.
//
// Protocol notes:
//  - Producers TryPush in a loop and, on a full queue, fall back to the
//    blocking Push — the same shape as the task pump's writers.
//  - OverwriteQueue producers never block (displacement); its "items/s"
//    counts *delivered* items (pushed - dropped), so a slow consumer
//    shows up as a lower delivered rate, not a fake-high push rate.
//  - Single-core hosts: this measures hand-off efficiency (fewer
//    syscalls/parks per item), not parallel scaling; the relative
//    ordering is what the acceptance gate checks.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/blocking_queue.h"
#include "common/clock.h"
#include "common/mpmc_queue.h"

namespace asterix {
namespace bench {
namespace {

constexpr size_t kCapacity = 1024;
constexpr int64_t kItemsPerProducer = 200000;

struct RunResult {
  std::string queue;
  int producers = 0;
  int batch = 0;
  int64_t delivered = 0;
  int64_t dropped = 0;
  double seconds = 0;
  double items_per_sec() const {
    return seconds > 0 ? static_cast<double>(delivered) / seconds : 0;
  }
};

// ---- per-queue producer/consumer adapters ------------------------------

struct BlockingAdapter {
  static constexpr const char* kName = "BlockingQueue";
  common::BlockingQueue<int64_t> q{kCapacity};
  void ProducerPush(int64_t* items, int n) {
    for (int i = 0; i < n; ++i) (void)q.Push(items[i]);
  }
  int64_t ConsumerDrainAll() {
    int64_t n = 0;
    for (;;) {
      std::vector<int64_t> batch = q.PopAll();
      if (batch.empty()) return n;  // closed and drained
      n += static_cast<int64_t>(batch.size());
    }
  }
  void Close() { q.Close(); }
  int64_t dropped() const { return 0; }
};

struct MpmcAdapter {
  static constexpr const char* kName = "MpmcQueue";
  common::MpmcQueue<int64_t> q{kCapacity};
  void ProducerPush(int64_t* items, int n) {
    // Batched fast path, blocking fallback for the unpushed suffix.
    size_t pushed = q.TryPushN(items, static_cast<size_t>(n));
    for (size_t i = pushed; i < static_cast<size_t>(n); ++i) {
      (void)q.Push(items[i]);
    }
  }
  int64_t ConsumerDrainAll() {
    int64_t n = 0;
    for (;;) {
      std::vector<int64_t> batch = q.PopAll();
      if (batch.empty()) return n;
      n += static_cast<int64_t>(batch.size());
    }
  }
  void Close() { q.Close(); }
  int64_t dropped() const { return 0; }
};

struct OverwriteAdapter {
  static constexpr const char* kName = "OverwriteQueue";
  common::OverwriteQueue<int64_t> q{kCapacity};
  void ProducerPush(int64_t* items, int n) {
    for (int i = 0; i < n; ++i) (void)q.Push(items[i]);
  }
  int64_t ConsumerDrainAll() {
    int64_t n = 0;
    for (;;) {
      std::vector<int64_t> drained = q.TryPopAll();
      n += static_cast<int64_t>(drained.size());
      if (drained.empty()) {
        if (q.closed()) return n + static_cast<int64_t>(q.TryPopAll().size());
        common::SleepMicros(50);
      }
    }
  }
  void Close() { q.Close(); }
  int64_t dropped() const { return q.dropped(); }
};

template <typename Adapter>
RunResult RunOne(int producers, int batch) {
  Adapter adapter;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(producers) + 1);
  common::Stopwatch watch;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&adapter, batch, p] {
      std::vector<int64_t> buf(static_cast<size_t>(batch));
      int64_t next = p * kItemsPerProducer;
      int64_t remaining = kItemsPerProducer;
      while (remaining > 0) {
        int n = static_cast<int>(
            std::min<int64_t>(batch, remaining));
        for (int i = 0; i < n; ++i) buf[static_cast<size_t>(i)] = next++;
        adapter.ProducerPush(buf.data(), n);
        remaining -= n;
      }
    });
  }
  int64_t consumed = 0;
  std::thread consumer(
      [&adapter, &consumed] { consumed = adapter.ConsumerDrainAll(); });
  for (auto& t : threads) t.join();
  adapter.Close();
  consumer.join();

  RunResult r;
  r.queue = Adapter::kName;
  r.producers = producers;
  r.batch = batch;
  r.dropped = adapter.dropped();
  r.delivered = consumed;
  r.seconds = static_cast<double>(watch.ElapsedMicros()) / 1e6;
  return r;
}

}  // namespace
}  // namespace bench
}  // namespace asterix

int main() {
  using asterix::bench::RunOne;
  using asterix::bench::RunResult;

  asterix::bench::Banner("BENCH queue",
                         "lock-free data plane vs mutexed baseline");
  std::vector<RunResult> results;
  const int kProducerCounts[] = {1, 2, 4, 8};
  const int kBatches[] = {1, 16, 64};
  for (int producers : kProducerCounts) {
    for (int batch : kBatches) {
      results.push_back(
          RunOne<asterix::bench::BlockingAdapter>(producers, batch));
      results.push_back(
          RunOne<asterix::bench::MpmcAdapter>(producers, batch));
      results.push_back(
          RunOne<asterix::bench::OverwriteAdapter>(producers, batch));
    }
  }

  std::printf("\n%-16s %9s %6s %12s %10s %12s\n", "queue", "producers",
              "batch", "delivered", "dropped", "items/s");
  for (const RunResult& r : results) {
    std::printf("%-16s %9d %6d %12lld %10lld %12.0f\n", r.queue.c_str(),
                r.producers, r.batch, static_cast<long long>(r.delivered),
                static_cast<long long>(r.dropped), r.items_per_sec());
  }

  // The acceptance gate this bench exists for: at 4 producers the
  // lock-free ring must beat the mutexed queue by >= 2x (best batch).
  double best_blocking = 0, best_mpmc = 0;
  for (const RunResult& r : results) {
    if (r.producers != 4) continue;
    if (r.queue == "BlockingQueue") {
      best_blocking = std::max(best_blocking, r.items_per_sec());
    } else if (r.queue == "MpmcQueue") {
      best_mpmc = std::max(best_mpmc, r.items_per_sec());
    }
  }
  double speedup = best_blocking > 0 ? best_mpmc / best_blocking : 0;
  std::printf("\n4-producer best-batch speedup (MpmcQueue/BlockingQueue): "
              "%.2fx\n", speedup);

  std::FILE* out = std::fopen("BENCH_queue.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_queue.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"queue\",\n  \"runs\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::fprintf(out,
                 "    {\"queue\": \"%s\", \"producers\": %d, \"batch\": %d,"
                 " \"delivered\": %lld, \"dropped\": %lld,"
                 " \"seconds\": %.6f, \"items_per_sec\": %.0f}%s\n",
                 r.queue.c_str(), r.producers, r.batch,
                 static_cast<long long>(r.delivered),
                 static_cast<long long>(r.dropped), r.seconds,
                 r.items_per_sec(), i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n  \"speedup_4p_mpmc_over_blocking\": %.2f\n}\n",
               speedup);
  std::fclose(out);
  std::printf("wrote BENCH_queue.json\n");
  return 0;
}
