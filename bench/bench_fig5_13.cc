// Table 5.2 + Figure 5.13 — Fetch Once, Compute Many: cascade versus
// independent network.
//
// Paper setup: Feed_A applies f1(); Feed_B applies f2(f1()) = f3(). In a
// CASCADE network Feed_B derives from Feed_A, sharing the fetch and the
// f1() computation; in an INDEPENDENT network each feed has its own
// connection to the source and repeats f1(). The combined f3() cost is
// held at 50 units while the f1()/f3() split — %OVERLAP — varies over
// {20, 40, 60, 80}. TweetGen outruns the CPU-bound cluster (Discard
// policy), so "records persisted in the window" measures effective
// capacity. Paper result: the cascade persists more for BOTH feeds at
// every %OVERLAP, and the gap widens with %OVERLAP.
#include "bench/bench_util.h"

using namespace asterix;        // NOLINT
using namespace asterix::bench;  // NOLINT

namespace {

constexpr int64_t kTotalCost = 50;   // f3() cost in units
constexpr int64_t kUnitUs = 20;      // one unit = 20us of simulated CPU
constexpr int64_t kWindowMs = 4000;  // generation window
constexpr int64_t kRateTps = 6000;   // demand exceeds the CPU budget
constexpr int kNodes = 4;            // also the SimulatedCpu core count

struct RunResult {
  int64_t persisted_a = 0;
  int64_t persisted_b = 0;
};

RunResult RunCascade(int64_t f1_cost, int64_t f2_cost) {
  AsterixInstance db(InstanceOptions{.num_nodes = kNodes});
  CHECK_OK(db.Start());
  CHECK_OK(db.CreatePolicy("TightDiscard", "Discard", {{"memory.budget", "512KB"}}));
  gen::TweetGenServer source(0, gen::Pattern::Constant(kRateTps, kWindowMs));
  feeds::ExternalSourceRegistry::Instance().RegisterChannel(
      "casc:1", &source.channel());

  // The contended resource: the cluster's aggregate CPU (see DESIGN.md —
  // modelled as a token bucket because the harness host is single-core).
  gen::SimulatedCpu cpu(kNodes);
  CHECK_OK(db.CreateDataset(TweetsDataset("D1")));
  CHECK_OK(db.CreateDataset(TweetsDataset("D2")));
  CHECK_OK(db.InstallUdf(CpuUdf("lib", "f1", &cpu, f1_cost * kUnitUs)));
  CHECK_OK(db.InstallUdf(CpuUdf("lib", "f2", &cpu, f2_cost * kUnitUs)));

  feeds::FeedDef raw;
  raw.name = "Raw";
  raw.adaptor_alias = "TweetGenAdaptor";
  raw.adaptor_config = {{"sockets", "casc:1"}};
  CHECK_OK(db.CreateFeed(raw));
  feeds::FeedDef feed_a;
  feed_a.name = "FeedA";
  feed_a.is_primary = false;
  feed_a.parent_feed = "Raw";
  feed_a.udf = "lib#f1";
  CHECK_OK(db.CreateFeed(feed_a));
  feeds::FeedDef feed_b;
  feed_b.name = "FeedB";
  feed_b.is_primary = false;
  feed_b.parent_feed = "FeedA";
  feed_b.udf = "lib#f2";
  CHECK_OK(db.CreateFeed(feed_b));

  // Cascade: Feed_B taps Feed_A's compute joint — f1() runs once.
  CHECK_OK(db.ConnectFeed("FeedA", "D1", "TightDiscard"));
  CHECK_OK(db.ConnectFeed("FeedB", "D2", "TightDiscard"));

  source.Start();
  source.Join();
  common::SleepMillis(300);  // settle

  RunResult result;
  result.persisted_a = db.CountDataset("D1").value();
  result.persisted_b = db.CountDataset("D2").value();
  feeds::ExternalSourceRegistry::Instance().UnregisterChannel("casc:1");
  return result;
}

RunResult RunIndependent(int64_t f1_cost, int64_t f2_cost) {
  AsterixInstance db(InstanceOptions{.num_nodes = kNodes});
  CHECK_OK(db.Start());
  CHECK_OK(db.CreatePolicy("TightDiscard", "Discard", {{"memory.budget", "512KB"}}));
  gen::SimulatedCpu cpu(kNodes);
  // Two independent connections to the external source: the source
  // disseminates the data twice (two TweetGen endpoints, same pattern).
  gen::TweetGenServer source_a(0, gen::Pattern::Constant(kRateTps, kWindowMs));
  gen::TweetGenServer source_b(0, gen::Pattern::Constant(kRateTps, kWindowMs));
  feeds::ExternalSourceRegistry::Instance().RegisterChannel(
      "ind:a", &source_a.channel());
  feeds::ExternalSourceRegistry::Instance().RegisterChannel(
      "ind:b", &source_b.channel());

  CHECK_OK(db.CreateDataset(TweetsDataset("D1")));
  CHECK_OK(db.CreateDataset(TweetsDataset("D2")));
  CHECK_OK(db.InstallUdf(CpuUdf("lib", "f1", &cpu, f1_cost * kUnitUs)));
  // f3 = f2 ∘ f1 executed as one black box on the independent path.
  CHECK_OK(db.InstallUdf(CpuUdf("lib", "f3", &cpu, (f1_cost + f2_cost) * kUnitUs)));

  feeds::FeedDef feed_a;
  feed_a.name = "FeedA";
  feed_a.adaptor_alias = "TweetGenAdaptor";
  feed_a.adaptor_config = {{"sockets", "ind:a"}};
  feed_a.udf = "lib#f1";
  CHECK_OK(db.CreateFeed(feed_a));
  feeds::FeedDef feed_b;
  feed_b.name = "FeedB";
  feed_b.adaptor_alias = "TweetGenAdaptor";
  feed_b.adaptor_config = {{"sockets", "ind:b"}};
  feed_b.udf = "lib#f3";
  CHECK_OK(db.CreateFeed(feed_b));

  CHECK_OK(db.ConnectFeed("FeedA", "D1", "TightDiscard"));
  CHECK_OK(db.ConnectFeed("FeedB", "D2", "TightDiscard"));

  source_a.Start();
  source_b.Start();
  source_a.Join();
  source_b.Join();
  common::SleepMillis(300);

  RunResult result;
  result.persisted_a = db.CountDataset("D1").value();
  result.persisted_b = db.CountDataset("D2").value();
  feeds::ExternalSourceRegistry::Instance().UnregisterChannel("ind:a");
  feeds::ExternalSourceRegistry::Instance().UnregisterChannel("ind:b");
  return result;
}

}  // namespace

int main() {
  Banner("Table 5.2 + Figure 5.13",
         "cascade vs independent network across %OVERLAP");

  std::printf("\nTable 5.2 — function cost split (units; f3 = 50):\n");
  std::printf("  %6s %6s %6s %10s\n", "f1()", "f2()", "f3()", "%OVERLAP");
  struct Split {
    int64_t f1, f2;
  };
  std::vector<Split> splits = {{10, 40}, {20, 30}, {30, 20}, {40, 10}};
  for (const Split& s : splits) {
    std::printf("  %6lld %6lld %6lld %9lld%%\n",
                static_cast<long long>(s.f1),
                static_cast<long long>(s.f2),
                static_cast<long long>(s.f1 + s.f2),
                static_cast<long long>(100 * s.f1 / kTotalCost));
  }

  std::printf("\nFigure 5.13 — records persisted in a %llds window:\n",
              static_cast<long long>(kWindowMs / 1000));
  std::printf("  %%OVERLAP | cascade FeedA  indep FeedA | cascade FeedB  "
              "indep FeedB\n");
  for (const Split& s : splits) {
    RunResult cascade = RunCascade(s.f1, s.f2);
    RunResult indep = RunIndependent(s.f1, s.f2);
    std::printf("  %7lld%% | %13lld %12lld | %13lld %12lld\n",
                static_cast<long long>(100 * s.f1 / kTotalCost),
                static_cast<long long>(cascade.persisted_a),
                static_cast<long long>(indep.persisted_a),
                static_cast<long long>(cascade.persisted_b),
                static_cast<long long>(indep.persisted_b));
  }
  std::printf(
      "\nshape check (paper): cascade >= independent for both feeds at "
      "every %%OVERLAP, gap widening as %%OVERLAP grows.\n");
  return 0;
}
