// Shared helpers for the experiment harness. Each bench binary
// regenerates one table or figure of the dissertation's evaluation,
// printing the same rows/series the paper reports (time-scaled: the
// workload *shapes* are preserved, absolute numbers are not comparable to
// the authors' 2014 testbed).
#ifndef ASTERIX_BENCH_BENCH_UTIL_H_
#define ASTERIX_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "asterix/asterix.h"
#include "common/clock.h"
#include "feeds/udf.h"
#include "gen/simcpu.h"
#include "gen/tweetgen.h"

namespace asterix {
namespace bench {

inline void Banner(const std::string& id, const std::string& what) {
  std::printf("\n==========================================================\n");
  std::printf("%s — %s\n", id.c_str(), what.c_str());
  std::printf("==========================================================\n");
}

inline storage::DatasetDef TweetsDataset(
    const std::string& name, std::vector<std::string> nodegroup = {}) {
  storage::DatasetDef def;
  def.name = name;
  def.datatype = "Tweet";
  def.primary_key_field = "id";
  def.nodegroup = std::move(nodegroup);
  return def;
}

/// Prints a per-bin timeline ("instantaneous throughput") with an ASCII
/// bar so the figure's shape is visible in the console.
inline void PrintTimeline(const std::string& label,
                          const std::vector<int64_t>& bins,
                          int64_t bin_width_ms,
                          const std::vector<std::string>& marks = {}) {
  std::printf("\n%s (records per %lldms bin)\n", label.c_str(),
              static_cast<long long>(bin_width_ms));
  int64_t peak = 1;
  for (int64_t v : bins) peak = std::max(peak, v);
  for (size_t i = 0; i < bins.size(); ++i) {
    int width = static_cast<int>(50 * bins[i] / peak);
    std::string bar(width, '#');
    std::string mark = i < marks.size() ? marks[i] : "";
    std::printf("  t=%6lldms %8lld |%-50s| %s\n",
                static_cast<long long>(i * bin_width_ms),
                static_cast<long long>(bins[i]), bar.c_str(),
                mark.c_str());
  }
}

/// Waits until `predicate` holds or the timeout elapses.
template <typename Predicate>
bool WaitFor(Predicate predicate, int64_t timeout_ms) {
  common::Stopwatch watch;
  while (watch.ElapsedMillis() < timeout_ms) {
    if (predicate()) return true;
    common::SleepMillis(20);
  }
  return predicate();
}

/// A synthetic "Java" UDF with a fixed per-record service time. The
/// dissertation's synthetic UDFs busy-spin; on this (often single-core)
/// harness host a busy spin cannot exhibit partitioned parallelism, so
/// cost is modelled as a clocked delay instead: one compute instance
/// still processes serially at 1/cost records/sec, and adding instances
/// adds genuine capacity. See DESIGN.md (substitutions).
inline std::shared_ptr<feeds::Udf> ServiceUdf(const std::string& library,
                                              const std::string& name,
                                              int64_t service_us) {
  return std::make_shared<feeds::JavaUdf>(
      library, name,
      [service_us](const adm::Value& record) -> std::optional<adm::Value> {
        common::SleepMicros(service_us);
        return record;
      });
}

/// A synthetic UDF consuming `cost_us` of a shared SimulatedCpu — used by
/// the experiments whose effect is CPU *contention* (Figure 5.13).
inline std::shared_ptr<feeds::Udf> CpuUdf(const std::string& library,
                                          const std::string& name,
                                          gen::SimulatedCpu* cpu,
                                          int64_t cost_us) {
  return std::make_shared<feeds::JavaUdf>(
      library, name,
      [cpu, cost_us](const adm::Value& record) -> std::optional<adm::Value> {
        cpu->Consume(cost_us);
        return record;
      });
}

}  // namespace bench
}  // namespace asterix

#endif  // ASTERIX_BENCH_BENCH_UTIL_H_
