// Shared helpers for the experiment harness. Each bench binary
// regenerates one table or figure of the dissertation's evaluation,
// printing the same rows/series the paper reports (time-scaled: the
// workload *shapes* are preserved, absolute numbers are not comparable to
// the authors' 2014 testbed).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "asterix/asterix.h"
#include "common/clock.h"
#include "common/observability.h"
#include "feeds/udf.h"
#include "gen/simcpu.h"
#include "gen/tweetgen.h"

namespace asterix {
namespace bench {

inline void Banner(const std::string& id, const std::string& what) {
  std::printf("\n==========================================================\n");
  std::printf("%s — %s\n", id.c_str(), what.c_str());
  std::printf("==========================================================\n");
}

inline storage::DatasetDef TweetsDataset(
    const std::string& name, std::vector<std::string> nodegroup = {}) {
  storage::DatasetDef def;
  def.name = name;
  def.datatype = "Tweet";
  def.primary_key_field = "id";
  def.nodegroup = std::move(nodegroup);
  return def;
}

/// Prints a per-bin timeline ("instantaneous throughput") with an ASCII
/// bar so the figure's shape is visible in the console.
inline void PrintTimeline(const std::string& label,
                          const std::vector<int64_t>& bins,
                          int64_t bin_width_ms,
                          const std::vector<std::string>& marks = {}) {
  std::printf("\n%s (records per %lldms bin)\n", label.c_str(),
              static_cast<long long>(bin_width_ms));
  int64_t peak = 1;
  for (int64_t v : bins) peak = std::max(peak, v);
  for (size_t i = 0; i < bins.size(); ++i) {
    int width = static_cast<int>(50 * bins[i] / peak);
    std::string bar(width, '#');
    std::string mark = i < marks.size() ? marks[i] : "";
    std::printf("  t=%6lldms %8lld |%-50s| %s\n",
                static_cast<long long>(i * bin_width_ms),
                static_cast<long long>(bins[i]), bar.c_str(),
                mark.c_str());
  }
}

/// Prints one histogram's p50/p95/p99/max/mean from a registry snapshot
/// (skips silently when the histogram was never recorded).
inline void PrintHistogramSummary(const common::MetricsSnapshot& snap,
                                  const std::string& name,
                                  const common::MetricLabels& labels = {}) {
  const common::HistogramSnapshot* h = snap.Histogram(name, labels);
  if (h == nullptr || h->count == 0) return;
  std::printf("  %-32s n=%-8lld p50=%-8lld p95=%-8lld p99=%-8lld "
              "max=%-8lld mean=%.1f (us)\n",
              common::MetricsSnapshot::Key(name, labels).c_str(),
              static_cast<long long>(h->count),
              static_cast<long long>(h->Quantile(0.50)),
              static_cast<long long>(h->Quantile(0.95)),
              static_cast<long long>(h->Quantile(0.99)),
              static_cast<long long>(h->max), h->Mean());
}

/// Writes the process-wide registry's Prometheus exposition to `path`.
inline bool WriteMetricsExport(const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  std::string text = common::MetricsRegistry::Default().Export();
  std::fwrite(text.data(), 1, text.size(), out);
  std::fclose(out);
  return true;
}

/// Writes one `kind<TAB>name<TAB>labels` line per registered metric — the
/// manifest the metrics-smoke harness cross-checks against the exposition.
inline bool WriteMetricsManifest(const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  for (const common::MetricInfo& m :
       common::MetricsRegistry::Default().List()) {
    std::fprintf(out, "%s\t%s\t%s\n", m.kind.c_str(), m.name.c_str(),
                 m.labels.c_str());
  }
  std::fclose(out);
  return true;
}

/// Waits until `predicate` holds or the timeout elapses.
template <typename Predicate>
bool WaitFor(Predicate predicate, int64_t timeout_ms) {
  common::Stopwatch watch;
  while (watch.ElapsedMillis() < timeout_ms) {
    if (predicate()) return true;
    common::SleepMillis(20);
  }
  return predicate();
}

/// A synthetic "Java" UDF with a fixed per-record service time. The
/// dissertation's synthetic UDFs busy-spin; on this (often single-core)
/// harness host a busy spin cannot exhibit partitioned parallelism, so
/// cost is modelled as a clocked delay instead: one compute instance
/// still processes serially at 1/cost records/sec, and adding instances
/// adds genuine capacity. See DESIGN.md (substitutions).
inline std::shared_ptr<feeds::Udf> ServiceUdf(const std::string& library,
                                              const std::string& name,
                                              int64_t service_us) {
  return std::make_shared<feeds::JavaUdf>(
      library, name,
      [service_us](const adm::Value& record) -> std::optional<adm::Value> {
        common::SleepMicros(service_us);
        return record;
      });
}

/// A synthetic UDF consuming `cost_us` of a shared SimulatedCpu — used by
/// the experiments whose effect is CPU *contention* (Figure 5.13).
inline std::shared_ptr<feeds::Udf> CpuUdf(const std::string& library,
                                          const std::string& name,
                                          gen::SimulatedCpu* cpu,
                                          int64_t cost_us) {
  return std::make_shared<feeds::JavaUdf>(
      library, name,
      [cpu, cost_us](const adm::Value& record) -> std::optional<adm::Value> {
        cpu->Consume(cost_us);
        return record;
      });
}

}  // namespace bench
}  // namespace asterix

