file(REMOVE_RECURSE
  "CMakeFiles/ax_asterix.dir/aql.cc.o"
  "CMakeFiles/ax_asterix.dir/aql.cc.o.d"
  "CMakeFiles/ax_asterix.dir/asterix.cc.o"
  "CMakeFiles/ax_asterix.dir/asterix.cc.o.d"
  "libax_asterix.a"
  "libax_asterix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ax_asterix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
