file(REMOVE_RECURSE
  "libax_asterix.a"
)
