# Empty compiler generated dependencies file for ax_asterix.
# This may be replaced when dependencies are built.
