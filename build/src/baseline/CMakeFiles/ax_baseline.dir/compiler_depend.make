# Empty compiler generated dependencies file for ax_baseline.
# This may be replaced when dependencies are built.
