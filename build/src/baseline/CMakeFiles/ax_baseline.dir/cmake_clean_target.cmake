file(REMOVE_RECURSE
  "libax_baseline.a"
)
