file(REMOVE_RECURSE
  "CMakeFiles/ax_baseline.dir/mongo.cc.o"
  "CMakeFiles/ax_baseline.dir/mongo.cc.o.d"
  "CMakeFiles/ax_baseline.dir/storm.cc.o"
  "CMakeFiles/ax_baseline.dir/storm.cc.o.d"
  "libax_baseline.a"
  "libax_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ax_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
