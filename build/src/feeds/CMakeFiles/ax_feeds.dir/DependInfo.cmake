
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/feeds/adaptor.cc" "src/feeds/CMakeFiles/ax_feeds.dir/adaptor.cc.o" "gcc" "src/feeds/CMakeFiles/ax_feeds.dir/adaptor.cc.o.d"
  "/root/repo/src/feeds/catalog.cc" "src/feeds/CMakeFiles/ax_feeds.dir/catalog.cc.o" "gcc" "src/feeds/CMakeFiles/ax_feeds.dir/catalog.cc.o.d"
  "/root/repo/src/feeds/central.cc" "src/feeds/CMakeFiles/ax_feeds.dir/central.cc.o" "gcc" "src/feeds/CMakeFiles/ax_feeds.dir/central.cc.o.d"
  "/root/repo/src/feeds/feed_manager.cc" "src/feeds/CMakeFiles/ax_feeds.dir/feed_manager.cc.o" "gcc" "src/feeds/CMakeFiles/ax_feeds.dir/feed_manager.cc.o.d"
  "/root/repo/src/feeds/joint.cc" "src/feeds/CMakeFiles/ax_feeds.dir/joint.cc.o" "gcc" "src/feeds/CMakeFiles/ax_feeds.dir/joint.cc.o.d"
  "/root/repo/src/feeds/meta.cc" "src/feeds/CMakeFiles/ax_feeds.dir/meta.cc.o" "gcc" "src/feeds/CMakeFiles/ax_feeds.dir/meta.cc.o.d"
  "/root/repo/src/feeds/operators.cc" "src/feeds/CMakeFiles/ax_feeds.dir/operators.cc.o" "gcc" "src/feeds/CMakeFiles/ax_feeds.dir/operators.cc.o.d"
  "/root/repo/src/feeds/policy.cc" "src/feeds/CMakeFiles/ax_feeds.dir/policy.cc.o" "gcc" "src/feeds/CMakeFiles/ax_feeds.dir/policy.cc.o.d"
  "/root/repo/src/feeds/subscriber.cc" "src/feeds/CMakeFiles/ax_feeds.dir/subscriber.cc.o" "gcc" "src/feeds/CMakeFiles/ax_feeds.dir/subscriber.cc.o.d"
  "/root/repo/src/feeds/udf.cc" "src/feeds/CMakeFiles/ax_feeds.dir/udf.cc.o" "gcc" "src/feeds/CMakeFiles/ax_feeds.dir/udf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hyracks/CMakeFiles/ax_hyracks.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/ax_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ax_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/adm/CMakeFiles/ax_adm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ax_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
