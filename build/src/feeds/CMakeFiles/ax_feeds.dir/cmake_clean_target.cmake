file(REMOVE_RECURSE
  "libax_feeds.a"
)
