# Empty compiler generated dependencies file for ax_feeds.
# This may be replaced when dependencies are built.
