file(REMOVE_RECURSE
  "CMakeFiles/ax_feeds.dir/adaptor.cc.o"
  "CMakeFiles/ax_feeds.dir/adaptor.cc.o.d"
  "CMakeFiles/ax_feeds.dir/catalog.cc.o"
  "CMakeFiles/ax_feeds.dir/catalog.cc.o.d"
  "CMakeFiles/ax_feeds.dir/central.cc.o"
  "CMakeFiles/ax_feeds.dir/central.cc.o.d"
  "CMakeFiles/ax_feeds.dir/feed_manager.cc.o"
  "CMakeFiles/ax_feeds.dir/feed_manager.cc.o.d"
  "CMakeFiles/ax_feeds.dir/joint.cc.o"
  "CMakeFiles/ax_feeds.dir/joint.cc.o.d"
  "CMakeFiles/ax_feeds.dir/meta.cc.o"
  "CMakeFiles/ax_feeds.dir/meta.cc.o.d"
  "CMakeFiles/ax_feeds.dir/operators.cc.o"
  "CMakeFiles/ax_feeds.dir/operators.cc.o.d"
  "CMakeFiles/ax_feeds.dir/policy.cc.o"
  "CMakeFiles/ax_feeds.dir/policy.cc.o.d"
  "CMakeFiles/ax_feeds.dir/subscriber.cc.o"
  "CMakeFiles/ax_feeds.dir/subscriber.cc.o.d"
  "CMakeFiles/ax_feeds.dir/udf.cc.o"
  "CMakeFiles/ax_feeds.dir/udf.cc.o.d"
  "libax_feeds.a"
  "libax_feeds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ax_feeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
