
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/dataset.cc" "src/storage/CMakeFiles/ax_storage.dir/dataset.cc.o" "gcc" "src/storage/CMakeFiles/ax_storage.dir/dataset.cc.o.d"
  "/root/repo/src/storage/key.cc" "src/storage/CMakeFiles/ax_storage.dir/key.cc.o" "gcc" "src/storage/CMakeFiles/ax_storage.dir/key.cc.o.d"
  "/root/repo/src/storage/lsm_index.cc" "src/storage/CMakeFiles/ax_storage.dir/lsm_index.cc.o" "gcc" "src/storage/CMakeFiles/ax_storage.dir/lsm_index.cc.o.d"
  "/root/repo/src/storage/secondary_index.cc" "src/storage/CMakeFiles/ax_storage.dir/secondary_index.cc.o" "gcc" "src/storage/CMakeFiles/ax_storage.dir/secondary_index.cc.o.d"
  "/root/repo/src/storage/wal.cc" "src/storage/CMakeFiles/ax_storage.dir/wal.cc.o" "gcc" "src/storage/CMakeFiles/ax_storage.dir/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/adm/CMakeFiles/ax_adm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ax_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
