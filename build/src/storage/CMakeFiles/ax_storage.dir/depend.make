# Empty dependencies file for ax_storage.
# This may be replaced when dependencies are built.
