file(REMOVE_RECURSE
  "CMakeFiles/ax_storage.dir/dataset.cc.o"
  "CMakeFiles/ax_storage.dir/dataset.cc.o.d"
  "CMakeFiles/ax_storage.dir/key.cc.o"
  "CMakeFiles/ax_storage.dir/key.cc.o.d"
  "CMakeFiles/ax_storage.dir/lsm_index.cc.o"
  "CMakeFiles/ax_storage.dir/lsm_index.cc.o.d"
  "CMakeFiles/ax_storage.dir/secondary_index.cc.o"
  "CMakeFiles/ax_storage.dir/secondary_index.cc.o.d"
  "CMakeFiles/ax_storage.dir/wal.cc.o"
  "CMakeFiles/ax_storage.dir/wal.cc.o.d"
  "libax_storage.a"
  "libax_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ax_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
