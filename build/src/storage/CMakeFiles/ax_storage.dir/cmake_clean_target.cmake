file(REMOVE_RECURSE
  "libax_storage.a"
)
