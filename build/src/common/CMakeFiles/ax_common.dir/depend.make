# Empty dependencies file for ax_common.
# This may be replaced when dependencies are built.
