file(REMOVE_RECURSE
  "CMakeFiles/ax_common.dir/logging.cc.o"
  "CMakeFiles/ax_common.dir/logging.cc.o.d"
  "CMakeFiles/ax_common.dir/status.cc.o"
  "CMakeFiles/ax_common.dir/status.cc.o.d"
  "CMakeFiles/ax_common.dir/strings.cc.o"
  "CMakeFiles/ax_common.dir/strings.cc.o.d"
  "libax_common.a"
  "libax_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ax_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
