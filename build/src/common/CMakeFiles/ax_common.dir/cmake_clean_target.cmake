file(REMOVE_RECURSE
  "libax_common.a"
)
