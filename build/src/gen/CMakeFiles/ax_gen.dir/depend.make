# Empty dependencies file for ax_gen.
# This may be replaced when dependencies are built.
