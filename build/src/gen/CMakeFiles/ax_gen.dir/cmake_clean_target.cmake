file(REMOVE_RECURSE
  "libax_gen.a"
)
