
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/pattern.cc" "src/gen/CMakeFiles/ax_gen.dir/pattern.cc.o" "gcc" "src/gen/CMakeFiles/ax_gen.dir/pattern.cc.o.d"
  "/root/repo/src/gen/tweetgen.cc" "src/gen/CMakeFiles/ax_gen.dir/tweetgen.cc.o" "gcc" "src/gen/CMakeFiles/ax_gen.dir/tweetgen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/adm/CMakeFiles/ax_adm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ax_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
