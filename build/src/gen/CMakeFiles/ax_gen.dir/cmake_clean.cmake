file(REMOVE_RECURSE
  "CMakeFiles/ax_gen.dir/pattern.cc.o"
  "CMakeFiles/ax_gen.dir/pattern.cc.o.d"
  "CMakeFiles/ax_gen.dir/tweetgen.cc.o"
  "CMakeFiles/ax_gen.dir/tweetgen.cc.o.d"
  "libax_gen.a"
  "libax_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ax_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
