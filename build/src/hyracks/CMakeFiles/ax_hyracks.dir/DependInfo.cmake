
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hyracks/cluster.cc" "src/hyracks/CMakeFiles/ax_hyracks.dir/cluster.cc.o" "gcc" "src/hyracks/CMakeFiles/ax_hyracks.dir/cluster.cc.o.d"
  "/root/repo/src/hyracks/node.cc" "src/hyracks/CMakeFiles/ax_hyracks.dir/node.cc.o" "gcc" "src/hyracks/CMakeFiles/ax_hyracks.dir/node.cc.o.d"
  "/root/repo/src/hyracks/task.cc" "src/hyracks/CMakeFiles/ax_hyracks.dir/task.cc.o" "gcc" "src/hyracks/CMakeFiles/ax_hyracks.dir/task.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/ax_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/adm/CMakeFiles/ax_adm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ax_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
