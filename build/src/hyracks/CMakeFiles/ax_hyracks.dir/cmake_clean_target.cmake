file(REMOVE_RECURSE
  "libax_hyracks.a"
)
