file(REMOVE_RECURSE
  "CMakeFiles/ax_hyracks.dir/cluster.cc.o"
  "CMakeFiles/ax_hyracks.dir/cluster.cc.o.d"
  "CMakeFiles/ax_hyracks.dir/node.cc.o"
  "CMakeFiles/ax_hyracks.dir/node.cc.o.d"
  "CMakeFiles/ax_hyracks.dir/task.cc.o"
  "CMakeFiles/ax_hyracks.dir/task.cc.o.d"
  "libax_hyracks.a"
  "libax_hyracks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ax_hyracks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
