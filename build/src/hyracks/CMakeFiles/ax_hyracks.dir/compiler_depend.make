# Empty compiler generated dependencies file for ax_hyracks.
# This may be replaced when dependencies are built.
