file(REMOVE_RECURSE
  "CMakeFiles/ax_adm.dir/datatype.cc.o"
  "CMakeFiles/ax_adm.dir/datatype.cc.o.d"
  "CMakeFiles/ax_adm.dir/parser.cc.o"
  "CMakeFiles/ax_adm.dir/parser.cc.o.d"
  "CMakeFiles/ax_adm.dir/value.cc.o"
  "CMakeFiles/ax_adm.dir/value.cc.o.d"
  "libax_adm.a"
  "libax_adm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ax_adm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
