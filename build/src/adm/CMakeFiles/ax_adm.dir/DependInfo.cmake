
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adm/datatype.cc" "src/adm/CMakeFiles/ax_adm.dir/datatype.cc.o" "gcc" "src/adm/CMakeFiles/ax_adm.dir/datatype.cc.o.d"
  "/root/repo/src/adm/parser.cc" "src/adm/CMakeFiles/ax_adm.dir/parser.cc.o" "gcc" "src/adm/CMakeFiles/ax_adm.dir/parser.cc.o.d"
  "/root/repo/src/adm/value.cc" "src/adm/CMakeFiles/ax_adm.dir/value.cc.o" "gcc" "src/adm/CMakeFiles/ax_adm.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ax_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
