# Empty compiler generated dependencies file for ax_adm.
# This may be replaced when dependencies are built.
