file(REMOVE_RECURSE
  "libax_adm.a"
)
