file(REMOVE_RECURSE
  "CMakeFiles/aql_test.dir/aql_test.cc.o"
  "CMakeFiles/aql_test.dir/aql_test.cc.o.d"
  "aql_test"
  "aql_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
