file(REMOVE_RECURSE
  "CMakeFiles/hyracks_test.dir/hyracks_test.cc.o"
  "CMakeFiles/hyracks_test.dir/hyracks_test.cc.o.d"
  "hyracks_test"
  "hyracks_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyracks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
