file(REMOVE_RECURSE
  "CMakeFiles/adm_test.dir/adm_test.cc.o"
  "CMakeFiles/adm_test.dir/adm_test.cc.o.d"
  "adm_test"
  "adm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
