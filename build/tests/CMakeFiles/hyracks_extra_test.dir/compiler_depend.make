# Empty compiler generated dependencies file for hyracks_extra_test.
# This may be replaced when dependencies are built.
