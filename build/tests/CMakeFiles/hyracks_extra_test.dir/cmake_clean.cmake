file(REMOVE_RECURSE
  "CMakeFiles/hyracks_extra_test.dir/hyracks_extra_test.cc.o"
  "CMakeFiles/hyracks_extra_test.dir/hyracks_extra_test.cc.o.d"
  "hyracks_extra_test"
  "hyracks_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyracks_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
