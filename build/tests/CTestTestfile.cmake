# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;10;ax_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(adm_test "/root/repo/build/tests/adm_test")
set_tests_properties(adm_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;11;ax_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(storage_test "/root/repo/build/tests/storage_test")
set_tests_properties(storage_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;ax_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(hyracks_test "/root/repo/build/tests/hyracks_test")
set_tests_properties(hyracks_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;13;ax_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;14;ax_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(fault_tolerance_test "/root/repo/build/tests/fault_tolerance_test")
set_tests_properties(fault_tolerance_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;15;ax_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(feeds_test "/root/repo/build/tests/feeds_test")
set_tests_properties(feeds_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;16;ax_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(baseline_test "/root/repo/build/tests/baseline_test")
set_tests_properties(baseline_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;17;ax_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(meta_test "/root/repo/build/tests/meta_test")
set_tests_properties(meta_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;18;ax_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(lifecycle_test "/root/repo/build/tests/lifecycle_test")
set_tests_properties(lifecycle_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;19;ax_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;20;ax_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(hyracks_extra_test "/root/repo/build/tests/hyracks_extra_test")
set_tests_properties(hyracks_extra_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;21;ax_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(aql_test "/root/repo/build/tests/aql_test")
set_tests_properties(aql_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;22;ax_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(edge_case_test "/root/repo/build/tests/edge_case_test")
set_tests_properties(edge_case_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;23;ax_add_test;/root/repo/tests/CMakeLists.txt;0;")
