# Empty compiler generated dependencies file for policy_showcase.
# This may be replaced when dependencies are built.
