file(REMOVE_RECURSE
  "CMakeFiles/policy_showcase.dir/policy_showcase.cpp.o"
  "CMakeFiles/policy_showcase.dir/policy_showcase.cpp.o.d"
  "policy_showcase"
  "policy_showcase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_showcase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
