
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/cascade_network.cpp" "examples/CMakeFiles/cascade_network.dir/cascade_network.cpp.o" "gcc" "examples/CMakeFiles/cascade_network.dir/cascade_network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asterix/CMakeFiles/ax_asterix.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ax_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/feeds/CMakeFiles/ax_feeds.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/ax_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/hyracks/CMakeFiles/ax_hyracks.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ax_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/adm/CMakeFiles/ax_adm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ax_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
