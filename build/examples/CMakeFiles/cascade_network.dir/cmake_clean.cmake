file(REMOVE_RECURSE
  "CMakeFiles/cascade_network.dir/cascade_network.cpp.o"
  "CMakeFiles/cascade_network.dir/cascade_network.cpp.o.d"
  "cascade_network"
  "cascade_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cascade_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
