# Empty compiler generated dependencies file for cascade_network.
# This may be replaced when dependencies are built.
