file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_16.dir/bench_fig5_16.cc.o"
  "CMakeFiles/bench_fig5_16.dir/bench_fig5_16.cc.o.d"
  "bench_fig5_16"
  "bench_fig5_16.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_16.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
