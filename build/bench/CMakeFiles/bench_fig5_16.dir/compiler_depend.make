# Empty compiler generated dependencies file for bench_fig5_16.
# This may be replaced when dependencies are built.
