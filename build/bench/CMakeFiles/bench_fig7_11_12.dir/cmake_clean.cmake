file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_11_12.dir/bench_fig7_11_12.cc.o"
  "CMakeFiles/bench_fig7_11_12.dir/bench_fig7_11_12.cc.o.d"
  "bench_fig7_11_12"
  "bench_fig7_11_12.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_11_12.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
