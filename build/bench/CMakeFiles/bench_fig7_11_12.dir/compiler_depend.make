# Empty compiler generated dependencies file for bench_fig7_11_12.
# This may be replaced when dependencies are built.
