# Empty dependencies file for bench_fig5_13.
# This may be replaced when dependencies are built.
