#!/usr/bin/env python3
"""Project invariant linter (runs as ctest `lint_invariants`).

Checks, each with a stable ID used in failure output:

  FP-UNIQUE   every failpoint site name is declared in exactly one file
              (a file may instrument one name at several code paths, e.g.
              both adaptor kinds' fetch seams)
  FP-NAMING   failpoint site names follow <layer>.<component>.<verb>,
              all lowercase snake segments
  FP-README   the set of site names in code matches the README's
              "Failpoint sites" table exactly
  METRIC-NAME metric names handed to GetCounter/GetGauge/GetHistogram/
              RegisterProvider are subsystem_snake_case: a known
              subsystem prefix, then lowercase [a-z0-9_] segments
  PRAGMA-ONCE every header under src/, tests/, bench/ starts its include
              guard with #pragma once
  RAW-SLEEP   no naked std::this_thread::sleep_for outside the allowlist
              (common/clock.h wraps it; tests use testing_util helpers)
  RAW-MUTEX   src/ never declares std::mutex / std::shared_mutex /
              std::condition_variable outside common/thread_annotations.h
              and the deadlock detector (which cannot instrument itself),
              so every lock is an annotated common::Mutex
  LOCK-RANK   every common::Mutex/SharedMutex construction in src/ names
              a LockRank in its brace initializer, or carries a
              `LOCK-RANK:` comment naming where the rank is injected
              (constructor-parameterised locks like BlockingQueue's)
  RANK-README the README "Lock ranking" table lists exactly the ranks in
              src/common/lock_rank.h, with matching numeric values (same
              mechanism as the failpoint-site table)
  RANK-EXEMPT the lock-free data plane (src/common/mpmc_queue.h) is
              rank-exempt by design — the README "Data plane" section
              must exist and document the exemption, so the rank table's
              completeness claim stays honest
  SPIN-PARK   no raw atomic spin loops outside src/common/mpmc_queue.h:
              std::this_thread::yield and empty-body `while (x.load())`
              busy-waits are banned in src/ — waiters must park on a
              CondVar or the queues' EventCount, not burn a core
  MEM-POOL    every MemPool TryReserve/TryLease call site in src/ must
              consume the returned Status (assign it, test it, or return
              it) — the admission verdict is the whole point of asking
  MEM-README  the README "Memory governance" pool table lists exactly
              the standard pools RegisterPool'd by MemGovernor::Default
              in mem_governor.cc, with matching default capacities

Retired here, now owned by the AST-grade analyzer (tools/analyze, ctest
`analyze_src`/`analyze_fixtures`): MEM-ORDER (token-accurate relaxed-
ordering justifications, including the common::Atomic kRelaxed shim) and
GUARDED-BY (field coverage after a mutex member) — the regex versions
could not see token boundaries or class structure.

Exit status 0 iff no findings. Run directly:  python3 tools/lint/check_invariants.py
"""

import argparse
import re
import sys
from pathlib import Path

FAILPOINT_MACROS = re.compile(
    r'ASTERIX_FAILPOINT(?:_HIT|_THROW|_TRIGGERED)?\s*\(\s*"([^"]+)"')
FAILPOINT_NAME = re.compile(r"^[a-z][a-z0-9_]*\.[a-z][a-z0-9_]*\.[a-z][a-z0-9_]*$")

METRIC_CALLS = re.compile(
    r'(?:GetCounter|GetGauge|GetHistogram|RegisterProvider)\s*\(\s*"([^"]+)"')
METRIC_PREFIXES = ("feed_", "lsm_", "wal_", "hyracks_", "storage_", "common_")
METRIC_NAME = re.compile(r"^[a-z][a-z0-9]*(_[a-z0-9]+)+$")

SLEEP_ALLOWLIST = {"src/common/clock.h"}

RAW_SYNC = re.compile(r"std::(mutex|shared_mutex|condition_variable\w*)\b")

# The runtime lock-order checker must use a raw std::mutex internally:
# instrumenting its own lock would recurse. Same for the model checker's
# engine, whose scheduler is the thing the wrappers park on.
RAW_SYNC_ALLOWLIST = {"thread_annotations.h", "deadlock_detector.h",
                      "deadlock_detector.cc", "model_check.h",
                      "model_check.cc"}

# A Mutex/SharedMutex member or global declaration, with an optional TSA
# ordering attribute and an optional brace initializer (which may span
# lines — [^}] matches newlines inside a character class).
MUTEX_DECL = re.compile(
    r"(?:mutable\s+)?(?:common::)?\b(?:Shared)?Mutex\s+(\w+)\s*"
    r"(?:ACQUIRED_(?:BEFORE|AFTER)\([^)]*\)\s*)?(\{[^}]*\})?\s*;")

LOCK_RANK_ENTRY = re.compile(r"^\s*k(\w+)\s*=\s*(\d+),")

# The one place raw spin loops are legitimate: the lock-free queues, whose
# bounded spins always fall back to EventCount parking — plus the model
# build's SpinWaitWhile shim, which routes the same spin to the checker.
# model_check.cc: HookYield's passthrough build IS the yield primitive
# other code parks through; the checker runtime cannot park on itself.
SPIN_ALLOWLIST = {
    "src/common/mpmc_queue.h",
    "src/common/atomic_shim.h",
    "src/common/model_check.cc",
}

def find_repo_root(start: Path) -> Path:
    p = start.resolve()
    while p != p.parent:
        if (p / "CMakeLists.txt").exists() and (p / "src").is_dir():
            return p
        p = p.parent
    raise SystemExit("cannot locate repo root (no CMakeLists.txt + src/)")


class Linter:
    def __init__(self, root: Path):
        self.root = root
        self.findings = []

    def fail(self, check: str, where: str, message: str):
        self.findings.append(f"[{check}] {where}: {message}")

    def rel(self, path: Path) -> str:
        return str(path.relative_to(self.root))

    # --- failpoints --------------------------------------------------------
    def check_failpoints(self):
        sites = {}  # name -> set of files
        for path in sorted((self.root / "src").rglob("*")):
            if path.suffix not in (".h", ".cc"):
                continue
            if path.name == "failpoint.h":
                continue
            text = path.read_text()
            for name in FAILPOINT_MACROS.findall(text):
                sites.setdefault(name, set()).add(self.rel(path))
        for name, files in sorted(sites.items()):
            if not FAILPOINT_NAME.match(name):
                self.fail("FP-NAMING", sorted(files)[0],
                          f"site '{name}' is not <layer>.<component>.<verb>")
            if len(files) > 1:
                self.fail("FP-UNIQUE", ", ".join(sorted(files)),
                          f"site '{name}' is declared in more than one file")

        readme = self.root / "README.md"
        table = set()
        in_table = False
        for line in readme.read_text().splitlines():
            if line.strip().startswith("| Site") and "`" not in line:
                in_table = True
                continue
            if in_table:
                m = re.match(r"\|\s*`([^`]+)`\s*\|", line)
                if m:
                    table.add(m.group(1))
                elif line.strip().startswith("|---") or line.strip().startswith("| ---"):
                    continue
                else:
                    in_table = False
        code = set(sites)
        for name in sorted(code - table):
            self.fail("FP-README", "README.md",
                      f"site '{name}' is in code but missing from the "
                      "README failpoint table")
        for name in sorted(table - code):
            self.fail("FP-README", "README.md",
                      f"site '{name}' is in the README failpoint table but "
                      "not in code")

    # --- metrics -----------------------------------------------------------
    def check_metric_names(self):
        for path in sorted((self.root / "src").rglob("*")):
            if path.suffix not in (".h", ".cc"):
                continue
            for name in METRIC_CALLS.findall(path.read_text()):
                if not METRIC_NAME.match(name):
                    self.fail("METRIC-NAME", self.rel(path),
                              f"metric '{name}' is not snake_case")
                elif not name.startswith(METRIC_PREFIXES):
                    self.fail("METRIC-NAME", self.rel(path),
                              f"metric '{name}' lacks a known subsystem "
                              f"prefix {METRIC_PREFIXES}")

    # --- headers -----------------------------------------------------------
    def check_pragma_once(self):
        for sub in ("src", "tests", "bench"):
            for path in sorted((self.root / sub).rglob("*.h")):
                text = path.read_text()
                if "#pragma once" not in text.split("\n\n")[0] \
                        and "#pragma once" not in text[:2000]:
                    self.fail("PRAGMA-ONCE", self.rel(path),
                              "header lacks #pragma once")

    # --- sleeps ------------------------------------------------------------
    def check_sleeps(self):
        for sub in ("src", "tests", "bench", "examples"):
            root = self.root / sub
            if not root.is_dir():
                continue
            for path in sorted(root.rglob("*")):
                if path.suffix not in (".h", ".cc"):
                    continue
                rel = self.rel(path)
                if rel in SLEEP_ALLOWLIST or path.name == "testing_util.h":
                    continue
                for i, line in enumerate(path.read_text().splitlines(), 1):
                    if "sleep_for" in line:
                        self.fail("RAW-SLEEP", f"{rel}:{i}",
                                  "naked sleep_for (use common::SleepMillis/"
                                  "SleepMicros or testing_util helpers)")

    # --- raw synchronization primitives ------------------------------------
    def check_raw_mutexes(self):
        for path in sorted((self.root / "src").rglob("*")):
            if path.suffix not in (".h", ".cc"):
                continue
            if path.name in RAW_SYNC_ALLOWLIST:
                continue
            for i, line in enumerate(path.read_text().splitlines(), 1):
                m = RAW_SYNC.search(line)
                if m:
                    self.fail("RAW-MUTEX", f"{self.rel(path)}:{i}",
                              f"raw std::{m.group(1)} (use the annotated "
                              "common:: wrappers)")

    # --- spin loops ---------------------------------------------------------
    def check_spin_park(self):
        """Raw busy-wait loops are confined to the lock-free queue header
        (whose spins are bounded and fall back to EventCount parking).
        Heuristics: any std::this_thread::yield — the signature of a
        spin-wait — and any empty-body `while (<atomic>.load...)`."""
        empty_spin = re.compile(r"while\s*\([^)]*\.load\([^)]*\)[^)]*\)\s*"
                                r"(?:;|\{\s*\})\s*$")
        for path in sorted((self.root / "src").rglob("*")):
            if path.suffix not in (".h", ".cc"):
                continue
            if self.rel(path) in SPIN_ALLOWLIST:
                continue
            for i, line in enumerate(path.read_text().splitlines(), 1):
                code = re.sub(r"//.*", "", line)
                if "std::this_thread::yield" in code:
                    self.fail("SPIN-PARK", f"{self.rel(path)}:{i}",
                              "raw spin loop (yield busy-wait): park on a "
                              "CondVar or common::EventCount instead — spin "
                              "loops live only in common/mpmc_queue.h")
                elif empty_spin.search(code.strip()):
                    self.fail("SPIN-PARK", f"{self.rel(path)}:{i}",
                              "empty-body atomic busy-wait: park on a "
                              "CondVar or common::EventCount instead")

        # The rank exemption the spin allowlist leans on must be documented:
        # README "Data plane" section names the header and says rank-exempt.
        readme = (self.root / "README.md").read_text()
        m = re.search(r"^## Data plane$(.*?)(?=^## )", readme,
                      re.MULTILINE | re.DOTALL)
        if not m:
            self.fail("RANK-EXEMPT", "README.md",
                      "no '## Data plane' section documenting the lock-free "
                      "queues' rank exemption")
        else:
            section = m.group(1)
            if "rank-exempt" not in section or \
                    "src/common/mpmc_queue.h" not in section:
                self.fail("RANK-EXEMPT", "README.md",
                          "the 'Data plane' section must name "
                          "src/common/mpmc_queue.h and the word "
                          "'rank-exempt' (keep the exemption documented)")

    # --- lock ranks ---------------------------------------------------------
    def check_lock_ranks(self):
        """Every Mutex/SharedMutex construction in src/ must name its
        LockRank inline, or carry a `LOCK-RANK:` comment pointing at the
        constructor that injects it."""
        for path in sorted((self.root / "src").rglob("*")):
            if path.suffix not in (".h", ".cc"):
                continue
            if path.name in ("thread_annotations.h", "lock_rank.h",
                             "deadlock_detector.h", "deadlock_detector.cc"):
                continue
            text = path.read_text()
            for m in MUTEX_DECL.finditer(text):
                init = m.group(2) or ""
                if "LockRank" in init:
                    continue
                line_no = text.count("\n", 0, m.start()) + 1
                decl_line = text.splitlines()[line_no - 1]
                if "LOCK-RANK:" in decl_line:
                    continue  # rank injected via constructor parameter
                self.fail(
                    "LOCK-RANK", f"{self.rel(path)}:{line_no}",
                    f"mutex '{m.group(1)}' constructed without a LockRank "
                    "(brace-initialize with common::LockRank::k..., or add "
                    "a `LOCK-RANK:` comment naming the injecting ctor)")

        # README rank table <-> enum lockstep.
        enum = {}
        for line in (self.root / "src/common/lock_rank.h").read_text() \
                .splitlines():
            m = LOCK_RANK_ENTRY.match(line)
            if m:
                enum["k" + m.group(1)] = int(m.group(2))
        table = {}
        in_table = False
        for line in (self.root / "README.md").read_text().splitlines():
            if line.strip().startswith("| Rank") and "`" not in line:
                in_table = True
                continue
            if in_table:
                m = re.match(r"\|\s*`(k\w+)`\s*\|\s*(\d+)\s*\|", line)
                if m:
                    table[m.group(1)] = int(m.group(2))
                elif line.strip().startswith("|--") or \
                        line.strip().startswith("| --"):
                    continue
                else:
                    in_table = False
        for name in sorted(set(enum) - set(table)):
            self.fail("RANK-README", "README.md",
                      f"rank '{name}' is in lock_rank.h but missing from "
                      "the README rank table")
        for name in sorted(set(table) - set(enum)):
            self.fail("RANK-README", "README.md",
                      f"rank '{name}' is in the README rank table but not "
                      "in lock_rank.h")
        for name in sorted(set(enum) & set(table)):
            if enum[name] != table[name]:
                self.fail("RANK-README", "README.md",
                          f"rank '{name}' is {enum[name]} in lock_rank.h "
                          f"but {table[name]} in the README table")

    # --- memory pools --------------------------------------------------------
    def check_mem_pools(self):
        """MEM-POOL: a `TryReserve`/`TryLease` whose Status is discarded is
        a budget leak waiting to happen — the reservation may have been
        *refused* and the caller proceeds as if admitted. Heuristic: the
        enclosing statement must contain an `=`, an `if`, a `return`, a
        `.ok(` test, or a CHECK macro. MEM-README: pool table lockstep,
        same mechanism as the failpoint and rank tables."""
        call = re.compile(r"\b(?:TryReserve|TryLease)\s*\(")
        for path in sorted((self.root / "src").rglob("*")):
            if path.suffix not in (".h", ".cc"):
                continue
            if path.name in ("mem_governor.h", "mem_governor.cc"):
                continue  # the implementation itself (decls + internals)
            code = re.sub(r"//[^\n]*", "", path.read_text())
            for m in call.finditer(code):
                start = max(code.rfind(c, 0, m.start()) for c in ";{}") + 1
                end = code.find(";", m.end())
                stmt = code[start:end if end != -1 else len(code)]
                if not re.search(r"=|\bif\b|\breturn\b|\.ok\s*\(|CHECK",
                                 stmt):
                    line_no = code.count("\n", 0, m.start()) + 1
                    self.fail(
                        "MEM-POOL", f"{self.rel(path)}:{line_no}",
                        "TryReserve/TryLease verdict discarded — assign "
                        "the Status, branch on it, or return it (a refused "
                        "reservation must not be treated as admitted)")

        # README pool table <-> MemGovernor::Default() RegisterPool lockstep.
        header = (self.root / "src/common/mem_governor.h").read_text()
        source = (self.root / "src/common/mem_governor.cc").read_text()
        pool_names = dict(re.findall(
            r'(k\w+Pool)\s*=\s*"([a-z0-9_]+)"', header))
        byte_consts = {
            name: int(num) << int(shift)
            for name, num, shift in re.findall(
                r"constexpr int64_t\s+(kDefault\w+Bytes)\s*=\s*"
                r"(\d+)LL\s*<<\s*(\d+)\s*;", source)}

        def human(b):
            return (f"{b >> 30} GiB" if b >= (1 << 30) and b % (1 << 30) == 0
                    else f"{b >> 20} MiB")

        registered = {}  # pool name -> "256 MiB"
        for const, byte_const in re.findall(
                r"RegisterPool\(\s*(k\w+Pool)\s*,\s*(kDefault\w+Bytes)\s*\)",
                source):
            if const in pool_names and byte_const in byte_consts:
                registered[pool_names[const]] = human(byte_consts[byte_const])

        table = {}
        in_section = in_table = False
        for line in (self.root / "README.md").read_text().splitlines():
            if line.startswith("## "):
                in_section = line.strip() == "## Memory governance"
                in_table = False
                continue
            if not in_section:
                continue
            if line.strip().startswith("| Pool") and "`" not in line:
                in_table = True
                continue
            if in_table:
                m = re.match(r"\|\s*`([^`]+)`\s*\|\s*([^|]+?)\s*\|", line)
                if m:
                    table[m.group(1)] = m.group(2)
                elif not line.strip().startswith("|--") and \
                        not line.strip().startswith("| --"):
                    in_table = False
        if not registered:
            self.fail("MEM-README", "src/common/mem_governor.cc",
                      "could not parse the Default() RegisterPool calls "
                      "(did the literal form change? update this check)")
        for name in sorted(set(registered) - set(table)):
            self.fail("MEM-README", "README.md",
                      f"pool '{name}' is registered in mem_governor.cc but "
                      "missing from the README pool table")
        for name in sorted(set(table) - set(registered)):
            self.fail("MEM-README", "README.md",
                      f"pool '{name}' is in the README pool table but not "
                      "registered by MemGovernor::Default()")
        for name in sorted(set(registered) & set(table)):
            if registered[name] != table[name]:
                self.fail("MEM-README", "README.md",
                          f"pool '{name}' default capacity is "
                          f"{registered[name]} in mem_governor.cc but "
                          f"'{table[name]}' in the README table")

    # MEM-ORDER and GUARDED-BY used to live here as regex heuristics.
    # Both moved to the AST-grade analyzer (tools/analyze/checks.py),
    # which sees token boundaries, the common::Atomic kRelaxed shim, and
    # real class structure; ctest runs it as analyze_src.


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo", type=Path,
                        default=Path(__file__).resolve().parents[2])
    args = parser.parse_args()
    root = find_repo_root(args.repo)

    linter = Linter(root)
    linter.check_failpoints()
    linter.check_metric_names()
    linter.check_pragma_once()
    linter.check_sleeps()
    linter.check_raw_mutexes()
    linter.check_spin_park()
    linter.check_mem_pools()
    linter.check_lock_ranks()

    if linter.findings:
        print(f"check_invariants: {len(linter.findings)} finding(s)")
        for f in linter.findings:
            print("  " + f)
        return 1
    print("check_invariants: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
