#!/usr/bin/env python3
"""Self-test for the analyzer: run every fixture and require an exact
match between findings and `EXPECT[CHECK]` markers.

Marker grammar (inside any comment in a fixture):
  EXPECT[CHECK-ID]        a CHECK-ID finding is required on this line
  EXPECT[CHECK-ID]@+N     ... on the line N below the marker
  ANALYZE-HOT-ROOT: Q     pass Q to analyze.py as --hot-root

`*_bad.*` fixtures must produce exactly their marked findings (exit 1);
`*_ok.*` fixtures must be clean (exit 0). The test therefore pins both
directions: every seeded violation is detected at the right file:line,
and the checks stay quiet on conforming code. Fixtures run under
whichever frontend analyze.py selects, so a frontend regression shows
up here rather than as silent acceptance.

Exit status: 0 all fixtures pass, 1 otherwise.
"""

import re
import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
FIXTURES = HERE / "fixtures"

EXPECT_RE = re.compile(r"EXPECT\[([A-Z-]+)\](?:@\+(\d+))?")
HOT_ROOT_RE = re.compile(r"ANALYZE-HOT-ROOT:\s*(\S+)")
FINDING_RE = re.compile(r"^([A-Z-]+)\s+(\S+?):(\d+)\s")


def read_directives(path):
    expected, hot_roots = [], []
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        for m in EXPECT_RE.finditer(line):
            expected.append((m.group(1), lineno + int(m.group(2) or 0)))
        m = HOT_ROOT_RE.search(line)
        if m:
            hot_roots.append(m.group(1))
    return sorted(expected), hot_roots


def parse_findings(stdout, fixture_name):
    got = []
    for line in stdout.splitlines():
        m = FINDING_RE.match(line)
        if m and Path(m.group(2)).name == fixture_name:
            got.append((m.group(1), int(m.group(3))))
    return sorted(got)


def run_fixture(path, frontend):
    expected, hot_roots = read_directives(path)
    cmd = [sys.executable, str(HERE / "analyze.py"), str(path),
           "--frontend", frontend]
    for root in hot_roots:
        cmd += ["--hot-root", root]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    got = parse_findings(proc.stdout, path.name)

    errors = []
    is_bad = "_bad" in path.stem
    want_exit = 1 if is_bad else 0
    if proc.returncode != want_exit:
        errors.append(f"exit {proc.returncode}, expected {want_exit}")
    if proc.returncode >= 2 or "Traceback" in proc.stderr:
        errors.append(f"analyzer error: {proc.stderr.strip()}")
    for miss in [e for e in expected if e not in got]:
        errors.append(f"missed seeded violation {miss[0]} at line {miss[1]}")
    for extra in [g for g in got if g not in expected]:
        errors.append(f"unexpected finding {extra[0]} at line {extra[1]}")
    return errors, proc


def main():
    frontend = sys.argv[1] if len(sys.argv) > 1 else "auto"
    fixtures = sorted(FIXTURES.glob("*.h"))
    if not fixtures:
        print(f"no fixtures under {FIXTURES}", file=sys.stderr)
        return 1
    failed = 0
    for path in fixtures:
        errors, proc = run_fixture(path, frontend)
        status = "PASS" if not errors else "FAIL"
        print(f"[{status}] {path.name}")
        if errors:
            failed += 1
            for e in errors:
                print(f"    {e}")
            if proc.stdout.strip():
                print("    --- analyzer output ---")
                for line in proc.stdout.splitlines():
                    print(f"    {line}")
    print(f"fixtures: {len(fixtures) - failed}/{len(fixtures)} passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
