// Seeded-violation fixture for the AST-grade MEM-ORDER check: relaxed
// atomics without a `relaxed:` justification comment.
#pragma once

#include <atomic>

class Stats {
 public:
  void Bump() {
    hits_.fetch_add(1, std::memory_order_relaxed);  // EXPECT[MEM-ORDER]
  }

  long Read() const {
    return hits_.load(std::memory_order_relaxed);  // EXPECT[MEM-ORDER]
  }

 private:
  std::atomic<long> hits_{0};
};
