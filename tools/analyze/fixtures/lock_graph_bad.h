// Seeded-violation fixture for the static lock-graph check.
//
// run_fixture_tests.py runs the analyzer on this file alone and asserts
// an exact match between the findings and the EXPECT markers: a marker
// names the finding expected on its own line (`@+N` = N lines below
// the marker). Any missed marker or extra finding fails the test.
#pragma once

#include <cstdint>

enum class LockRank : uint16_t {
  kInner = 10,
  kMid = 15,
  kOuter = 20,
};

class RankCycle {
 public:
  void InOrder() {
    MutexLock outer(outer_);
    MutexLock inner(inner_);  // strictly descending: fine
  }

  void Inverted() {
    MutexLock inner(inner_);
    MutexLock outer(outer_);  // EXPECT[LOCK-GRAPH] rank order violation
  }

  void Reentrant() {
    MutexLock a(outer_);
    MutexLock b(outer_);  // EXPECT[LOCK-GRAPH] self-deadlock, non-reentrant
  }

  // The inversion below surfaces through call-graph propagation; the
  // edge's example site is the acquisition inside the callee.
  void AcquireOuter() {
    MutexLock lock(outer_);  // EXPECT[LOCK-GRAPH] inversion via caller
  }

  void InvertedThroughCall() {
    MutexLock mid(mid_);
    AcquireOuter();
  }

 private:
  Mutex inner_{LockRank::kInner};
  Mutex mid_{LockRank::kMid};
  Mutex outer_{LockRank::kOuter};
};

// EXPECT[GUARDED-BY]@+4: naked field declared after the mutex.
class LeakyState {
 private:
  Mutex state_mutex_{LockRank::kInner};
  int unguarded_counter_ = 0;
};
