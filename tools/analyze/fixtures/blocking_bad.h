// Seeded-violation fixture for the blocking-under-lock check: a direct
// blocking op under a mutex, and one reached through a callee.
#pragma once

#include <cstdint>

enum class LockRank : uint16_t {
  kQueue = 10,
};

class Blocky {
 public:
  void SleepUnderLock() {
    MutexLock lock(mutex_);
    SleepMillis(50);  // EXPECT[BLOCK-LOCK] direct blocking op under lock
  }

  void HelperThatBlocks() {
    SleepMillis(5);  // no lock held here: clean on its own
  }

  void TransitiveBlock() {
    MutexLock lock(mutex_);
    HelperThatBlocks();  // EXPECT[BLOCK-LOCK] blocks through the callee
  }

 private:
  Mutex mutex_{LockRank::kQueue};
};
