// Negative fixture for the AST-grade MEM-ORDER check: every relaxed
// use carries a `relaxed:` justification (same line or the contiguous
// comment block above).
#pragma once

#include <atomic>

class Counters {
 public:
  void Bump() {
    // relaxed: monotonic stats counter, read only by the metrics
    // exporter; no ordering with surrounding writes is needed.
    hits_.fetch_add(1, std::memory_order_relaxed);
  }

  long Read() const {
    return hits_.load(std::memory_order_relaxed);  // relaxed: stats-only
  }

 private:
  std::atomic<long> hits_{0};
};
