// Negative fixture for the static lock-graph check: correct nesting,
// sequential (non-nested) acquisitions, and every GUARDED-BY opt-out.
// The analyzer must report nothing here.
#pragma once

#include <atomic>
#include <cstdint>

enum class LockRank : uint16_t {
  kLow = 10,
  kHigh = 20,
};

class Ordered {
 public:
  void Nested() {
    MutexLock high(high_mutex_);
    MutexLock low(low_mutex_);  // strictly descending
  }

  void Sequential() {
    {
      MutexLock low(low_mutex_);
      staged_ = 1;
    }
    // The guard above died with its scope: no edge low -> high.
    MutexLock high(high_mutex_);
    published_ = staged_;
  }

 private:
  Mutex high_mutex_{LockRank::kHigh};
  Mutex low_mutex_{LockRank::kLow};
  int staged_ GUARDED_BY(low_mutex_) = 0;
  int published_ GUARDED_BY(high_mutex_) = 0;
  std::atomic<int> peeks_{0};
  // Single-writer: mutated only on the owner thread before publication.
  int scratch_ = 0;
};
