// Negative fixture for the hot-path allocation check: a justified
// warmup allocation (`// hot-ok:`) and alloc-free steady-state work.
// ANALYZE-HOT-ROOT: ColdPump::Pump
#pragma once

class ColdPump {
 public:
  void Pump() {
    // hot-ok: one-time warmup branch, taken only while scratch_ is
    // still null; steady state reuses the buffer.
    if (scratch_ == nullptr) scratch_ = new char[4096];
    Consume(scratch_);
  }

  void Consume(char* data) {
    last_ = data;
  }

 private:
  char* scratch_ = nullptr;
  char* last_ = nullptr;
};
