// Negative fixture for the blocking-under-lock check: the condvar
// wait-protocol exemption (the wait releases the mutex it is passed)
// and blocking ops outside any critical section.
#pragma once

#include <chrono>
#include <cstdint>

enum class LockRank : uint16_t {
  kQueue = 10,
};

class WaitProtocol {
 public:
  void WaitForWork() {
    MutexLock lock(mutex_);
    // The wait atomically releases mutex_ while parked, so holding it
    // here is the protocol, not a stall.
    cv_.WaitFor(mutex_, std::chrono::milliseconds(10));
  }

  void SleepOutsideLock() {
    {
      MutexLock lock(mutex_);
      ready_ = true;
    }
    SleepMillis(20);  // lock released above: clean
  }

 private:
  Mutex mutex_{LockRank::kQueue};
  CondVar cv_;
  bool ready_ GUARDED_BY(mutex_) = false;
};
