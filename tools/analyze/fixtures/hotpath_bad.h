// Seeded-violation fixture for the hot-path allocation check. The
// ANALYZE-HOT-ROOT directive tells run_fixture_tests.py which function
// to pass as --hot-root; everything reachable from it must be
// allocation-free unless a `// hot-ok:` comment justifies the site.
// ANALYZE-HOT-ROOT: HotPump::Pump
#pragma once

#include <string>
#include <vector>

class HotPump {
 public:
  void Pump() {
    frame_ = new char[4096];  // EXPECT[HOT-ALLOC] raw new on the hot path
    batch_.push_back(1);      // EXPECT[HOT-ALLOC] container growth
    Stamp();
  }

  void Stamp() {
    label_ = std::to_string(42);  // EXPECT[HOT-ALLOC] reached via Pump
  }

 private:
  char* frame_ = nullptr;
  std::vector<int> batch_;
  std::string label_;
};
