"""The four whole-program checks, over the ir.Program facts.

Each check returns a list of Finding. Checks never print; the driver
formats. All policy (roots, allowlists, justifications) lives in
config.py so the checks stay pure graph algorithms.
"""

import re
from dataclasses import dataclass, field

import config
from cpplex import ID, PUNCT, COMMENT

_WORD = re.compile(r"[A-Za-z_]\w*")


@dataclass
class Finding:
    check: str
    file: str
    line: int
    message: str
    path: tuple = ()

    def render(self, rel):
        out = f"{self.check:<11} {rel(self.file)}:{self.line}  {self.message}"
        if self.path:
            out += "\n" + " " * 12 + "via: " + " -> ".join(self.path)
        return out


def _last_word(expr):
    words = _WORD.findall(expr)
    return words[-1] if words else ""


def _held_at(fn, tok):
    return [a for a in fn.acquisitions if a.tok < tok <= a.end_tok]


def _call_args(fn, call):
    """Top-level argument expressions of a call site, as strings."""
    body = fn.body
    i = call.tok + 1
    if i >= len(body) or body[i].text != "(":
        return []
    depth = 0
    args = [[]]
    while i < len(body):
        t = body[i]
        if t.text == "(":
            depth += 1
            if depth > 1:
                args[-1].append(t.text)
        elif t.text == ")":
            depth -= 1
            if depth == 0:
                break
            args[-1].append(t.text)
        elif t.text == "," and depth == 1:
            args.append([])
        elif depth >= 1:
            args[-1].append(t.text)
        i += 1
    return ["".join(a) for a in args if a]


def _suffix_lookup(table, qname):
    parts = qname.split("::")
    for suffix, reason in table.items():
        if qname == suffix or qname.endswith("::" + suffix) \
                or ("::" not in suffix and suffix in parts) \
                or ("::" in suffix and qname.endswith(suffix)):
            return reason
    return None


# ==========================================================================
# Mutex identity resolution
# ==========================================================================

class MutexIndex:
    def __init__(self, program):
        self.program = program
        self.by_cls_name = {}
        self.by_name = {}
        for m in program.mutexes:
            cls_last = m.cls.rsplit("::")[-1] if m.cls else ""
            self.by_cls_name[(cls_last, m.name)] = m
            self.by_name.setdefault(m.name, []).append(m)
        self.injected_ranks = self._find_injected_ranks(program)

    def _find_injected_ranks(self, program):
        """Ranks observed at construction sites of rank-injected classes
        (BlockingQueue and friends): scan every statement mentioning the
        class name for LockRank::k* tokens."""
        injected_classes = {k.split("::")[0]
                            for k in config.CTOR_INJECTED_DEFAULTS}
        # Construction sites name the class (field/local declarations) OR
        # only the field (constructor-initializer lists) — trigger on both.
        triggers = {c: c for c in injected_classes}
        for cls_fields in program.fields.values():
            for f in cls_fields:
                for c in injected_classes:
                    if c in f.type_str:
                        triggers[f.name] = c
        found = {c: set() for c in injected_classes}
        for path, toks in program.files.items():
            code = [t for t in toks if t.kind not in (COMMENT, "pp")]
            for i, t in enumerate(code):
                if t.kind == ID and t.text in triggers:
                    cls = triggers[t.text]
                    j = i + 1
                    while j < len(code) and code[j].text != ";" \
                            and j - i <= 120:
                        if code[j].kind == ID and code[j].text == "LockRank" \
                                and j + 2 < len(code) \
                                and code[j + 1].text == "::":
                            found[cls].add(code[j + 2].text)
                        j += 1
        return found

    def resolve(self, fn, expr):
        """MutexDecl for an acquisition expression, or None."""
        words = _WORD.findall(expr)
        if not words:
            return None
        name = words[-1]
        cls_last = fn.cls.rsplit("::")[-1] if fn.cls else ""
        hit = self.by_cls_name.get((cls_last, name))
        if hit:
            return hit
        # recv->member / recv.member through a (possibly smart-pointer)
        # field of the enclosing class, e.g. `shared_->mutex` where
        # shared_ is a shared_ptr<Shared>.
        if len(words) >= 2 and fn.cls:
            ftype = self.program.field_type(fn.cls, words[-2])
            if ftype:
                m = re.search(r"(?:shared_ptr|unique_ptr)\s*<\s*([\w:]+)",
                              ftype)
                tname = (m.group(1) if m else ftype).rsplit("::")[-1]
                tname = tname.rstrip("*& ")
                hit = self.by_cls_name.get((tname, name))
                if hit:
                    return hit
        cands = self.by_name.get(name, [])
        if len(cands) == 1:
            return cands[0]
        return None

    def ranks_of(self, decl):
        """Possible rank names for a declaration (a set: injected mutexes
        are widened over every observed construction rank)."""
        key = f"{decl.cls.rsplit('::')[-1]}::{decl.name}" if decl.cls \
            else decl.name
        if decl.injected or (not decl.rank
                             and key in config.CTOR_INJECTED_DEFAULTS):
            out = set()
            default = config.CTOR_INJECTED_DEFAULTS.get(key)
            if default:
                out.add(default)
            cls = key.split("::")[0]
            out |= self.injected_ranks.get(cls, set())
            return out
        if decl.rank:
            return {decl.rank}
        return set()


# ==========================================================================
# Check 1: static lock graph (+ GUARDED-BY sub-check)
# ==========================================================================

def check_lock_graph(program, opts):
    findings = []
    mi = MutexIndex(program)
    ranks = dict(program.ranks)

    all_fns = [f for fns in program.functions.values() for f in fns]

    def decl_key(decl):
        return f"{decl.cls or decl.file}::{decl.name}"

    # --- per-function direct acquisitions, resolved --------------------
    direct = {}   # id(fn) -> [(acq, decl)]
    unresolved = []
    for fn in all_fns:
        rows = []
        for a in fn.acquisitions:
            decl = mi.resolve(fn, a.mutex_expr)
            if decl is None:
                unresolved.append((fn, a))
                continue
            rows.append((a, decl))
        direct[id(fn)] = rows

    # --- transitive acquisition summaries (fixed point) ----------------
    # summary: id(fn) -> {decl_key: (rank_name, decl, path_tuple, file, line)}
    summary = {id(fn): {} for fn in all_fns}
    for fn in all_fns:
        s = summary[id(fn)]
        for a, decl in direct[id(fn)]:
            for rname in mi.ranks_of(decl):
                s.setdefault((decl_key(decl), rname),
                             (decl, (fn.qname,), fn.file, a.line))
    changed = True
    while changed:
        changed = False
        for fn in all_fns:
            s = summary[id(fn)]
            for c in fn.calls:
                if c.deferred:
                    continue
                for g in program.resolve(fn, c, confident_only=True):
                    if g is fn:
                        continue
                    for key, (decl, path, file, line) in \
                            list(summary[id(g)].items()):
                        if key not in s:
                            s[key] = (decl, (fn.qname,) + path, file, line)
                            changed = True

    # --- edges ---------------------------------------------------------
    # edge key: (outer_rank, inner_rank); value: example site
    edges = {}

    def add_edge(outer_rname, inner_rname, file, line, path):
        edges.setdefault((outer_rname, inner_rname),
                         {"file": file, "line": line, "path": path})

    for fn in all_fns:
        rows = direct[id(fn)]
        for a, decl in rows:
            held = _held_at(fn, a.tok)
            for b in held:
                bdecl = mi.resolve(fn, b.mutex_expr)
                if bdecl is None or b is a:
                    continue
                if bdecl is decl:
                    if b.mutex_expr == a.mutex_expr:
                        findings.append(Finding(
                            "LOCK-GRAPH", fn.file, a.line,
                            f"self-deadlock: {fn.qname} re-acquires "
                            f"'{a.mutex_expr}' already held at line "
                            f"{b.line} (common::Mutex is non-reentrant)"))
                        continue
                for brank in mi.ranks_of(bdecl):
                    for arank in mi.ranks_of(decl):
                        add_edge(brank, arank, fn.file, a.line, (fn.qname,))
        for c in fn.calls:
            held = _held_at(fn, c.tok)
            if not held or c.deferred:
                continue
            for g in program.resolve(fn, c, confident_only=True):
                if g is fn:
                    continue
                for (key, rname), (decl, path, file, line) in \
                        summary[id(g)].items():
                    for b in held:
                        bdecl = mi.resolve(fn, b.mutex_expr)
                        if bdecl is None:
                            continue
                        if decl_key(bdecl) == key \
                                and b.mutex_expr == bdecl.name:
                            findings.append(Finding(
                                "LOCK-GRAPH", fn.file, c.line,
                                f"self-deadlock through calls: {fn.qname} "
                                f"holds '{b.mutex_expr}' and the call to "
                                f"{c.name}() re-acquires it",
                                path=(fn.qname,) + path))
                            continue
                        for brank in mi.ranks_of(bdecl):
                            add_edge(brank, rname, file, line,
                                     (fn.qname,) + path)

    # --- verify edges against the rank order ---------------------------
    for (outer, inner), site in sorted(edges.items()):
        ov, iv = ranks.get(outer), ranks.get(inner)
        if ov is None or iv is None:
            findings.append(Finding(
                "LOCK-GRAPH", site["file"], site["line"],
                f"edge {outer} -> {inner}: rank not declared in "
                f"LockRank enum"))
            continue
        if iv >= ov:
            findings.append(Finding(
                "LOCK-GRAPH", site["file"], site["line"],
                f"rank order violation: acquiring {inner} ({iv}) while "
                f"holding {outer} ({ov}) — held locks must outrank new "
                f"acquisitions strictly", path=site["path"]))

    # --- README rank-table cross-check for every edge endpoint ----------
    readme = opts.get("readme_ranks")
    if readme is not None:
        used = {r for e in edges for r in e}
        for r in sorted(used):
            if r not in readme:
                findings.append(Finding(
                    "LOCK-GRAPH", opts.get("readme_path", "README.md"), 1,
                    f"rank {r} appears in the acquisition graph but not "
                    f"in the README rank table"))
            elif r in ranks and readme[r] != ranks[r]:
                findings.append(Finding(
                    "LOCK-GRAPH", opts.get("readme_path", "README.md"), 1,
                    f"rank {r}: README table value {readme[r]} != enum "
                    f"value {ranks[r]}"))

    # --- ranks declared but never acquired ------------------------------
    if opts.get("unused_ranks", True):
        acquired = set()
        for fn in all_fns:
            for a, decl in direct[id(fn)]:
                acquired |= mi.ranks_of(decl)
        for rname in sorted(ranks):
            if rname in acquired \
                    or rname in config.UNACQUIRED_RANK_ALLOWLIST:
                continue
            findings.append(Finding(
                "LOCK-GRAPH-UNUSED", opts.get("rank_file", ""), 1,
                f"rank {rname} ({ranks[rname]}) is declared but no "
                f"acquisition of it was found in the analyzed sources"))

    # --- expected-edge lockstep -----------------------------------------
    expected = opts.get("expected_edges")
    if expected is not None:
        found_pairs = set(edges)
        for pair in sorted(found_pairs - expected):
            site = edges[pair]
            findings.append(Finding(
                "LOCK-GRAPH-EDGES", site["file"], site["line"],
                f"unexplained edge {pair[0]} -> {pair[1]}: not listed in "
                f"expected_lock_edges.txt (add it with a reason, or fix "
                f"the nesting)", path=site["path"]))
        for pair in sorted(expected - found_pairs):
            findings.append(Finding(
                "LOCK-GRAPH-EDGES", opts.get("edges_path", ""), 1,
                f"stale expectation {pair[0]} -> {pair[1]}: listed in "
                f"expected_lock_edges.txt but no longer found"))

    findings.extend(_check_guarded_by(program, opts))

    stats = {
        "functions": len(all_fns),
        "acquisitions": sum(len(v) for v in direct.values()),
        "unresolved_acquisitions": [
            {"function": fn.qname, "expr": a.mutex_expr, "file": fn.file,
             "line": a.line} for fn, a in unresolved],
        "edges": sorted([f"{o} -> {i}" for o, i in edges]),
        "edge_sites": {f"{o} -> {i}": {
            "file": edges[(o, i)]["file"], "line": edges[(o, i)]["line"],
            "path": list(edges[(o, i)]["path"])} for o, i in edges},
    }
    return findings, stats


def _check_guarded_by(program, opts):
    """Fields declared after a mutex member in a header class body must be
    GUARDED_BY-annotated, inherently synchronized, const, or carry a
    declaration comment (the documented single-writer opt-out)."""
    findings = []
    for m in program.mutexes:
        if not m.cls or not m.file.endswith(".h"):
            continue
        if m.file.endswith("thread_annotations.h"):
            continue
        if "mutex" not in m.name.lower():
            continue
        for f in program.fields.get(m.cls, []):
            if f.file != m.file or f.line <= m.line:
                continue
            t = f.type_str.replace("mutable ", "").strip()
            if (f.guarded_by or f.has_comment
                    or t.startswith("const ") or t.startswith("const<")
                    or "static" in f.type_str or "constexpr" in f.type_str
                    or t.startswith(config.SELF_SYNC_TYPES)
                    or "atomic" in t):
                continue
            findings.append(Finding(
                "GUARDED-BY", f.file, f.line,
                f"field '{f.name}' of {f.cls} is declared after mutex "
                f"'{m.name}' without GUARDED_BY, a self-synchronizing "
                f"type, const, or an explanatory comment"))
    return findings


# ==========================================================================
# Check 2: blocking-under-lock
# ==========================================================================

def check_blocking(program, opts):
    findings = []
    mi = MutexIndex(program)
    all_fns = [f for fns in program.functions.values() for f in fns]

    def cv_waited_mutex(fn, call):
        """For a condvar Wait/WaitFor, the mutex expression it releases
        (first argument), else None."""
        if call.name not in ("Wait", "WaitFor", "WaitUntil"):
            return None
        if not call.is_member:
            return None
        ftype = program.field_type(fn.cls, call.receiver) if fn.cls else None
        if ftype is not None and "CondVar" not in ftype:
            return None  # typed receiver that is not a condvar (EventCount)
        args = _call_args(fn, call)
        if ftype is None and not args:
            return None
        return _last_word(args[0]) if args else None

    # Direct blocking events per function: (call, kind) where kind is
    # "op" or ("cv", waited_mutex_name)
    def direct_blocking(fn):
        out = []
        for c in fn.calls:
            if c.name not in config.BLOCKING_OPS or c.deferred:
                continue
            waited = cv_waited_mutex(fn, c)
            out.append((c, waited))
        return out

    # Transitive: does fn block at all (any blocking op on any path)?
    # summary: id(fn) -> (op_name, file, line, path) | None
    blocks = {}
    for fn in all_fns:
        if _suffix_lookup(config.BLOCKING_ALLOWLIST, fn.qname):
            blocks[id(fn)] = None
            continue
        db = direct_blocking(fn)
        blocks[id(fn)] = (db[0][0].name, fn.file, db[0][0].line,
                          (fn.qname,)) if db else None
    changed = True
    while changed:
        changed = False
        for fn in all_fns:
            if blocks[id(fn)] is not None:
                continue
            if _suffix_lookup(config.BLOCKING_ALLOWLIST, fn.qname):
                continue
            for c in fn.calls:
                if c.deferred:
                    continue
                for g in program.resolve(fn, c, confident_only=True):
                    if g is fn or blocks[id(g)] is None:
                        continue
                    op, file, line, path = blocks[id(g)]
                    blocks[id(fn)] = (op, file, line, (fn.qname,) + path)
                    changed = True
                    break
                if blocks[id(fn)] is not None:
                    break

    for fn in all_fns:
        allow = _suffix_lookup(config.BLOCKING_ALLOWLIST, fn.qname)
        for c, waited in direct_blocking(fn):
            held = _held_at(fn, c.tok)
            if not held:
                continue
            # wait-protocol exemption: the condvar releases its mutex
            offenders = []
            for b in held:
                if waited is not None and _last_word(b.mutex_expr) == waited:
                    continue
                offenders.append(b)
            if not offenders:
                continue
            if allow:
                continue
            names = ", ".join(f"'{b.mutex_expr}' (line {b.line})"
                              for b in offenders)
            findings.append(Finding(
                "BLOCK-LOCK", fn.file, c.line,
                f"{fn.qname} calls blocking op {c.name}() while holding "
                f"{names}; move the wait outside the critical section or "
                f"allowlist the site with a documented protocol"))
        if allow:
            continue
        for c in fn.calls:
            held = _held_at(fn, c.tok)
            if not held or c.deferred:
                continue
            for g in program.resolve(fn, c, confident_only=True):
                if g is fn or blocks[id(g)] is None:
                    continue
                op, file, line, path = blocks[id(g)]
                names = ", ".join(f"'{b.mutex_expr}'" for b in held)
                findings.append(Finding(
                    "BLOCK-LOCK", fn.file, c.line,
                    f"{fn.qname} holds {names} across a call to "
                    f"{c.name}(), which can block in {op}() at "
                    f"{file}:{line}", path=(fn.qname,) + path))
                break
    return findings, {}


# ==========================================================================
# Check 3: hot-path allocation
# ==========================================================================

def check_hot_alloc(program, opts):
    findings = []
    roots = opts.get("hot_roots", config.HOT_ROOTS)
    all_fns = [f for fns in program.functions.values() for f in fns]

    def pruned(qname):
        return _suffix_lookup(config.HOT_PRUNE, qname) if \
            opts.get("allowlists", True) else None

    def file_allowed(path):
        if not opts.get("allowlists", True):
            return False
        rel = opts["rel"](path)
        return rel in config.HOT_FILE_ALLOWLIST

    # BFS over confident edges from the roots.
    root_fns = []
    for fn in all_fns:
        if any(fn.qname == r or fn.qname.endswith("::" + r)
               or (r.split("::")[-1] == fn.qname.split("::")[-1]
                   and fn.cls.rsplit("::")[-1] == r.split("::")[0])
               for r in roots):
            root_fns.append(fn)
    missing = [r for r in roots
               if not any(fn.qname == r or fn.qname.endswith("::" + r)
                          or (r.split("::")[-1] == fn.qname.split("::")[-1]
                              and fn.cls.rsplit("::")[-1] == r.split("::")[0])
                          for fn in all_fns)]
    for r in missing:
        findings.append(Finding(
            "HOT-ALLOC", opts.get("rank_file", ""), 1,
            f"hot-path root '{r}' not found in the analyzed sources — "
            f"update config.HOT_ROOTS to track the rename"))

    seen = {}
    queue = [(fn, (fn.qname,)) for fn in root_fns]
    while queue:
        fn, path = queue.pop(0)
        if id(fn) in seen:
            continue
        seen[id(fn)] = path
        for c in fn.calls:
            if c.deferred or pruned(c.name):
                continue
            for g in program.resolve(fn, c, confident_only=True):
                if id(g) in seen:
                    continue
                if pruned(g.qname) or file_allowed(g.file):
                    continue
                queue.append((g, path + (g.qname,)))

    comment_cache = {}

    def hot_ok(file, line):
        if not opts.get("allowlists", True) and \
                not opts.get("hot_ok_comments", True):
            return False
        if file not in comment_cache:
            import ir
            comment_cache[file] = (
                ir.comment_lines(program, file),
                opts["read_lines"](file))
        comments, lines = comment_cache[file]
        if any("hot-ok:" in c for c in comments.get(line, [])):
            return True
        for j in range(line - 1, max(0, line - 1 - 8), -1):
            if j - 1 < len(lines) and not lines[j - 1].strip():
                break
            if any("hot-ok:" in c for c in comments.get(j, [])):
                return True
        return False

    reached = [f for f in all_fns if id(f) in seen]
    for fn in sorted(reached, key=lambda f: (f.file, f.line)):
        path = seen[id(fn)]
        if file_allowed(fn.file):
            continue
        for ne in fn.news:
            if hot_ok(fn.file, ne.line):
                continue
            findings.append(Finding(
                "HOT-ALLOC", fn.file, ne.line,
                f"`new {ne.what}` reachable from hot root "
                f"{path[0]} — allocate through FramePool/MemPool or mark "
                f"the branch `// hot-ok: <reason>`", path=path))
        for c in fn.calls:
            if c.name not in config.GROWTH_CALLS or c.deferred:
                continue
            # A growth name only counts as a container/string call when
            # it is a member call or std::-qualified; bare names can be
            # local lambdas or project functions (e.g. DeliverLocked's
            # `append` continuation).
            if not c.is_member and not c.qualifier.startswith("std"):
                continue
            if hot_ok(fn.file, c.line):
                continue
            findings.append(Finding(
                "HOT-ALLOC", fn.file, c.line,
                f"{c.name}() (potential allocation/growth) reachable "
                f"from hot root {path[0]} — pre-size, pool, or mark "
                f"`// hot-ok: <reason>`", path=path))

    stats = {"reachable": sorted(f.qname for f in all_fns
                                 if id(f) in seen)}
    return findings, stats


# ==========================================================================
# Check 4: MEM-ORDER, AST grade
# ==========================================================================

def check_mem_order(program, opts):
    findings = []
    relaxed = {"memory_order_relaxed", "kRelaxed"}
    for path, toks in sorted(program.files.items()):
        rel = opts["rel"](path)
        if opts.get("allowlists", True) \
                and rel in config.MEM_ORDER_FILE_ALLOWLIST:
            continue
        comments = {}
        for t in toks:
            if t.kind == COMMENT:
                for off in range(t.text.count("\n") + 1):
                    comments.setdefault(t.line + off, []).append(t.text)
        lines = opts["read_lines"](path)
        code = [t for t in toks if t.kind not in (COMMENT, "pp")]
        for i, t in enumerate(code):
            if t.kind != ID or t.text not in relaxed:
                continue
            if t.text == "kRelaxed" and not _is_order_context(code, i):
                continue
            if any("relaxed:" in c for c in comments.get(t.line, [])):
                continue
            justified = False
            for j in range(t.line - 1,
                           max(0, t.line - 1 - config.MEM_ORDER_LOOKBACK),
                           -1):
                if j - 1 < len(lines) and not lines[j - 1].strip():
                    break
                if any("relaxed:" in c for c in comments.get(j, [])):
                    justified = True
                    break
            if not justified:
                op = _attached_op(code, i)
                what = f"on {op}()" if op else "at this site"
                findings.append(Finding(
                    "MEM-ORDER", path, t.line,
                    f"memory_order_relaxed {what} without a `relaxed:` "
                    f"justification comment (say why no ordering is "
                    f"needed, or use a stronger order)"))
    return findings, {}


def _is_order_context(code, i):
    """kRelaxed only counts when used as a memory-order argument (it is a
    generic-enough name that other enums could use it)."""
    for j in range(max(0, i - 6), i):
        if code[j].kind == ID and code[j].text in (
                "memory_order", "Atomic", "AtomicFence", "load", "store",
                "exchange", "fetch_add", "fetch_sub", "fetch_or",
                "fetch_and", "compare_exchange_weak",
                "compare_exchange_strong"):
            return True
    return False


def _attached_op(code, i):
    """The atomic operation this memory_order argument belongs to: the
    nearest preceding callee name in the same statement."""
    depth = 0
    for j in range(i - 1, max(0, i - 80), -1):
        t = code[j]
        if t.kind == PUNCT:
            if t.text == ")":
                depth += 1
            elif t.text == "(":
                if depth == 0:
                    if j > 0 and code[j - 1].kind == ID:
                        return code[j - 1].text
                    return ""
                depth -= 1
            elif t.text in (";", "{", "}"):
                return ""
    return ""
