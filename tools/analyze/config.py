"""Analyzer policy: roots, allowlists, and the justification for every
exemption.

Every entry here is a *documented* hole in a check. The rule of the file:
no bare names — each allowlist maps a site to the one-line reason it is
sound, and the reason is printed with `analyze.py --explain`. An entry
without a defensible reason is a bug in this file, not in the check.

Scope note: the allowlists are keyed by qualified-name *suffix*
("SubscriberQueue::SpillLocked" matches feeds::SubscriberQueue::
SpillLocked) so they survive namespace refactors, and by repo-relative
path for file-level entries.
"""

# --------------------------------------------------------------------------
# Check 1 — static lock graph
# --------------------------------------------------------------------------

# Ranks that are legitimately never acquired by code under src/.
UNACQUIRED_RANK_ALLOWLIST = {
    "kTestRankLow": "deadlock_test-only seeded hierarchy (tests/, not src/)",
    "kTestRankMid": "deadlock_test-only seeded hierarchy (tests/, not src/)",
    "kTestRankHigh": "deadlock_test-only seeded hierarchy (tests/, not src/)",
    "kUnranked": "explicit opt-out value; banned in src/ by the LOCK-RANK "
                 "lint, used only by tests/examples",
}

# Mutexes whose rank is injected through a constructor parameter. The
# static graph widens them to every rank observed at a construction site
# (plus the declared default) — a sound over-approximation.
CTOR_INJECTED_DEFAULTS = {
    "BlockingQueue::mutex_": "kBlockingQueue",
}

# --------------------------------------------------------------------------
# Check 2 — blocking-under-lock
# --------------------------------------------------------------------------

# Callee names that can block the calling thread. Condvar waits get the
# wait-protocol exemption for the mutex they release; everything else is
# a finding when any lock is held.
BLOCKING_OPS = {
    "Wait", "WaitFor", "WaitUntil",            # CondVar / EventCount
    "ReserveFor",                               # MemPool parking reserve
    "PopFor", "PopAllFor", "PushFor",           # BlockingQueue timed ops
    "sleep_for", "sleep_until", "SleepMillis", "SleepMicros",
    "join",                                     # thread join
    "fopen", "fclose", "fread", "fwrite", "fseek", "ftell", "fflush",
    "fsync", "getline",
    # NB: `remove`/`rename` are deliberately absent — std::remove (the
    # erase-remove algorithm) shares the name with the libc file op, and
    # the only file-unlink site (spill teardown) is covered by its
    # enclosing allowlist entry.
}

# Functions allowed to block while holding a lock: the documented
# wait-protocol / IO-under-own-lock sites. Key: qname suffix.
BLOCKING_ALLOWLIST = {
    # The spill protocol serializes overflow entries to disk *under* the
    # subscriber mutex by design: spilling races Unsubscribe teardown, and
    # the mutex is rank 420 — nothing above it is ever held on this path
    # (the lock graph proves that). README "Spill-to-disk" documents the
    # stall-the-producer trade-off.
    "SubscriberQueue::SpillLocked":
        "documented spill protocol: file append under the subscriber's own "
        "leaf-ward mutex; producer stall is the intended backpressure",
    "SubscriberQueue::RestoreFromSpillLocked":
        "documented spill protocol: refill read under the subscriber's own "
        "mutex, paired with SpillLocked",
    "SubscriberQueue::~SubscriberQueue":
        "teardown: unlink of the spill file under the dying queue's mutex; "
        "no concurrent holders can exist past this point",
    # WAL file I/O happens under kWal (210) by design — the log's whole
    # contract is ordered durable appends, so the file handle is guarded
    # by the same mutex that orders the records.
    "Wal::Open":
        "WAL contract: file open under kWal, the mutex that orders the log",
    "Wal::Append":
        "WAL contract: ordered durable append under kWal",
    "Wal::Sync":
        "WAL contract: explicit durability barrier under kWal",
    "Wal::Replay":
        "WAL contract: recovery read under kWal excludes concurrent appends",
    "Wal::~Wal":
        "teardown: closing the log file under kWal; no appenders remain",
    # The central manager's mutex (kCentralFeedManager, 495, the outermost
    # rank) IS the reconfiguration critical section: rescale handoff and
    # graceful disconnect hold it across bounded waits on tail jobs so no
    # connect/disconnect can interleave with a half-moved pipeline. Rank
    # 495 outranks everything, so no lock-order hazard can form under it.
    "CentralFeedManager::RebuildTailLocked":
        "reconfiguration barrier: bounded (3 s) intake-handoff wait under "
        "the outermost manager lock serializes rescale by design",
    "CentralFeedManager::FullDisconnectLocked":
        "reconfiguration barrier: bounded (10 s + 2 s) tail-job drain "
        "under the outermost manager lock serializes disconnect by design",
    "CentralFeedManager::ReleaseHeadIfIdleLocked":
        "reconfiguration barrier: bounded (5 s) collect-job drain when the "
        "last connection leaves a head, under the outermost manager lock",
    "CentralFeedManager::HandleNodeFailureLocked":
        "failover barrier: dead-node recovery freezes affected tasks "
        "(Kill + queue Close + join of an exiting thread, so the join is "
        "bounded) under the outermost manager lock; serializing recovery "
        "against connect/disconnect is the design (§6.2.3)",
    # The mongo baseline reproduces Mongo 2.x's coarse write lock; the
    # simulated per-document write latency *under* that lock is the
    # baseline's entire point (EXPERIMENTS.md contrasts it with feeds).
    "MongoCollection::Insert":
        "baseline fidelity: Mongo 2.x holds its global write lock across "
        "the document write; the stall is what the experiment measures",
}

# --------------------------------------------------------------------------
# Check 3 — hot-path allocation
# --------------------------------------------------------------------------

# Reachability roots: the frame fast path (PR 5-7's zero-alloc surface).
HOT_ROOTS = [
    "Task::PumpBatch",
    "SubscriberQueue::Deliver",
    "SubscriberQueue::Next",
    "SubscriberQueue::NextBatch",
    "SubscriberQueue::NextBatchInto",
    "FeedJoint::NextFrame",
]

# Callee names treated as allocation / container growth when reached.
GROWTH_CALLS = {
    "make_shared", "make_unique", "allocate_shared",
    "push_back", "emplace_back", "emplace", "emplace_front", "push_front",
    "insert", "resize", "reserve", "append", "assign",
    "to_string", "substr", "str",
}

# Functions the traversal does not descend into (and whose call site is
# not itself a finding). These are the charged/cold boundaries of the
# fast path.
HOT_PRUNE = {
    "SubscriberQueue::SpillLocked":
        "cold overflow branch: spill-to-disk only engages past the "
        "overflow high-water mark; serialization cost is the documented "
        "backpressure trade-off",
    "SubscriberQueue::RestoreFromSpillLocked":
        "cold refill branch: only runs while a spill file exists",
    "SubscriberQueue::SampleFrame":
        "degraded-mode branch: sampling only engages when throttling or "
        "over budget; steady state bypasses it",
    "MetricsRegistry::Default":
        "leak-once singleton: the `new` runs exactly once per process",
    "Tracer::Instance":
        "leak-once singleton: the `new` runs exactly once per process",
    "FramePool": "frame recycling pool: allocation is the pool's job and "
                 "is governor-charged (MEM-POOL lint owns this boundary)",
    "MemPool": "governor pool: every byte is charged against the global "
               "budget by construction",
    "BlockAllocator": "FramePool's arena: charged bulk refill, amortized",
    "DataBucketPool::Get": "bucket pool: miss path news a governor-charged "
                           "bucket; steady state recycles",
    "GetCounter": "metrics registry: allocates once per process at static "
                  "init of the call site, never in steady state",
    "GetGauge": "metrics registry: once-per-process static init",
    "GetHistogram": "metrics registry: once-per-process static init",
    "Tracer::RecordSpan": "sampled slow path: only taken when the span "
                          "sampler fires; ring write is alloc-free",
    "LOG_MSG": "log macro: rate-limited slow path by contract",
}

# Files whose allocation behavior is proven elsewhere, or that only exist
# in non-production builds.
HOT_FILE_ALLOWLIST = {
    "src/common/mpmc_queue.h":
        "zero-alloc steady state is pinned by bench ZeroAllocSteadyState "
        "and explored by the model checker (PR 7/9)",
    "src/common/model_check.h":
        "ASTERIX_MODEL_CHECK builds only: the checker engine may allocate; "
        "production builds alias common::Atomic to std::atomic",
    "src/common/model_check.cc":
        "ASTERIX_MODEL_CHECK builds only (see model_check.h)",
}

# --------------------------------------------------------------------------
# Check 4 — MEM-ORDER (AST grade)
# --------------------------------------------------------------------------

# Files exempt from per-site relaxed justifications (carried over from the
# retired regex lint; the justification lives at file scope there).
MEM_ORDER_FILE_ALLOWLIST = {
    "src/common/mpmc_queue.h",
    "src/common/atomic_shim.h",
    "src/common/model_check.h",
    "src/common/model_check.cc",
}
MEM_ORDER_LOOKBACK = 8

# --------------------------------------------------------------------------
# GUARDED-BY (AST sub-check of the lock graph)
# --------------------------------------------------------------------------

SELF_SYNC_TYPES = (
    "std::atomic", "common::Mutex", "common::SharedMutex", "common::CondVar",
    "Mutex", "CondVar", "std::thread", "std::jthread", "MetricsRegistry",
    "common::Counter", "common::Gauge", "common::Histogram",
    "Counter", "Gauge", "Histogram", "BlockingQueue", "common::BlockingQueue",
    "MpmcQueue", "common::MpmcQueue", "OverwriteQueue",
    "common::OverwriteQueue", "EventCount", "common::EventCount",
)
