"""Whole-program IR extraction: the analyzer's shared traversal core.

Turns lexed C++ (cpplex.py) into the program facts every check consumes:

  * Function definitions with qualified names and body token ranges
  * Class regions, field declarations (type + GUARDED_BY presence), and
    Mutex/SharedMutex member declarations with their LockRank
  * Per-function events, in source order: lock acquisitions (RAII guards
    and explicit Lock/Unlock) with their held scopes, call sites with
    receiver hints, new-expressions, and memory_order argument tokens
  * A call-graph resolver (receiver-field typing > same-class > unique
    name), used by the held-set propagation and reachability passes

The extraction is frontend-pluggable: this module is the token frontend
(always available — it needs nothing beyond Python); clang_frontend.py
produces the same Program shape from libclang when python3-clang is
installed. Known over/under-approximations are documented in
DESIGN.md §6.4 — the checks are tuned so the over-approximations land
on the sound side for lock ordering and the allowlists absorb the rest.
"""

import bisect
from dataclasses import dataclass, field
from pathlib import Path

from cpplex import lex, code_tokens, ID, PUNCT, COMMENT

# Identifiers that look like calls but are declaration attributes or
# control flow, never call sites.
ATTR_MACROS = {
    "GUARDED_BY", "PT_GUARDED_BY", "REQUIRES", "REQUIRES_SHARED",
    "ACQUIRE", "ACQUIRE_SHARED", "RELEASE", "RELEASE_SHARED",
    "RELEASE_GENERIC", "TRY_ACQUIRE", "TRY_ACQUIRE_SHARED", "EXCLUDES",
    "ASSERT_CAPABILITY", "ASSERT_SHARED_CAPABILITY", "RETURN_CAPABILITY",
    "NO_THREAD_SAFETY_ANALYSIS", "CAPABILITY", "SCOPED_CAPABILITY",
    "ACQUIRED_BEFORE", "ACQUIRED_AFTER", "ASTERIX_TSA_ATTR",
    "alignas", "decltype", "noexcept", "static_assert", "__attribute__",
}
CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "throw",
    "new", "delete", "alignof", "typeid", "co_await", "co_return", "assert",
    "defined", "case",
}
GUARD_TYPES = {"MutexLock": "exclusive", "WriterMutexLock": "exclusive",
               "ReaderMutexLock": "shared"}
NON_FIELD_LEADS = {"friend", "using", "typedef", "enum", "class", "struct",
                   "union", "template", "public", "private", "protected",
                   "operator", "explicit", "virtual", "namespace"}


@dataclass
class CallSite:
    name: str           # last identifier of the callee
    receiver: str       # member/var the call hangs off ("" for free calls)
    qualifier: str      # explicit A::B qualification ("" if none)
    line: int
    tok: int            # index into the function's body token slice
    is_member: bool = False  # true for x.f() / x->f()
    deferred: bool = False   # inside a std::thread/jthread/async argument:
                             # runs on a new thread with an empty lock set


@dataclass
class Acquisition:
    mutex_expr: str     # normalized text of the mutex argument
    kind: str           # "exclusive" | "shared"
    line: int
    tok: int            # body-slice index where the guard takes effect
    end_tok: int        # body-slice index where the guard releases
    via: str            # "MutexLock" | "WriterMutexLock" | ... | "Lock()"
    is_try: bool = False


@dataclass
class AtomicOrderUse:
    order: str          # the memory_order_* identifier as written
    line: int
    op_name: str        # nearest call name the order is an argument of


@dataclass
class NewExpr:
    line: int
    what: str           # first tokens after `new` (for reports)


@dataclass
class Function:
    qname: str          # e.g. "feeds::SubscriberQueue::DeliverLocked"
    cls: str            # enclosing class qname ("" for free functions)
    file: str
    line: int
    body: list = field(default_factory=list)   # code-token slice
    calls: list = field(default_factory=list)
    acquisitions: list = field(default_factory=list)
    orders: list = field(default_factory=list)
    news: list = field(default_factory=list)

    @property
    def name(self):
        return self.qname.rsplit("::", 1)[-1]


@dataclass
class FieldDecl:
    cls: str
    name: str
    type_str: str
    line: int
    file: str
    guarded_by: str     # mutex expr inside GUARDED_BY(...) or ""
    has_comment: bool = False


@dataclass
class MutexDecl:
    cls: str            # "" => namespace scope
    name: str
    kind: str           # "Mutex" | "SharedMutex"
    rank: str           # "kSubscriberQueue" | "" (ctor-injected)
    injected: bool      # LOCK-RANK: comment present
    file: str
    line: int

    @property
    def key(self):
        return f"{self.cls or self.file}::{self.name}"


@dataclass
class Program:
    functions: dict = field(default_factory=dict)   # qname -> [Function]
    by_name: dict = field(default_factory=dict)     # last name -> [Function]
    fields: dict = field(default_factory=dict)      # cls -> [FieldDecl]
    mutexes: list = field(default_factory=list)     # [MutexDecl]
    classes: set = field(default_factory=set)       # class qnames
    ranks: dict = field(default_factory=dict)       # kName -> int
    files: dict = field(default_factory=dict)       # path -> all tokens

    def add_function(self, fn):
        self.functions.setdefault(fn.qname, []).append(fn)
        self.by_name.setdefault(fn.name, []).append(fn)

    # ---- call resolution -------------------------------------------------
    def field_type(self, cls, member):
        for f in self.fields.get(cls, []):
            if f.name == member:
                return f.type_str
        return None

    def class_of_type(self, type_str):
        """Best-effort: map a declared field type to a known class qname."""
        if not type_str:
            return None
        core = type_str
        for junk in ("const ", "mutable ", "std::shared_ptr<",
                     "std::unique_ptr<", "std::weak_ptr<"):
            core = core.replace(junk, " ")
        core = core.replace(">", " ").replace("*", " ").replace("&", " ")
        # last A::B::C-ish word, template args stripped
        best = None
        for word in core.split():
            base = word.split("<")[0].strip(":")
            if not base:
                continue
            for cls in self.classes:
                if cls == base or cls.endswith("::" + base.rsplit("::")[-1]) \
                        and base.rsplit("::")[-1] == cls.rsplit("::")[-1]:
                    best = cls
        return best

    def resolve(self, caller, call, confident_only=False):
        """Candidate Function definitions for a call site.

        Resolution ladder (documented in DESIGN.md §6.4):
          1. explicit qualifier  A::b() / A::B::b()
          2. receiver typed by a declared field of the caller's class
          3. unqualified call -> same-class method
          4. unique program-wide name match
          5. (non-confident mode) all name matches  [over-approximation]
        """
        cands = self.by_name.get(call.name, [])
        if not cands:
            return []
        if call.qualifier:
            qual = call.qualifier.rsplit("::")[-1]
            hit = [f for f in cands
                   if f.cls.rsplit("::")[-1] == qual or f.cls == qual]
            if hit:
                return hit
        if call.is_member and call.receiver and caller.cls:
            ftype = self.field_type(caller.cls, call.receiver)
            cls = self.class_of_type(ftype) if ftype else None
            if cls:
                hit = [f for f in cands
                       if f.cls.rsplit("::")[-1] == cls.rsplit("::")[-1]]
                if hit:
                    return hit
                return []  # typed receiver, no definition seen: external
        if not call.is_member and caller.cls:
            hit = [f for f in cands if f.cls == caller.cls]
            if hit:
                return hit
        named = {f.qname for f in cands}
        if len(named) == 1:
            return cands
        if confident_only:
            return []
        return cands


# --------------------------------------------------------------------------
# Structure scan
# --------------------------------------------------------------------------

def _match_brace(toks, open_idx):
    """Index of the `}` matching toks[open_idx] == `{` (or len(toks))."""
    depth = 0
    for i in range(open_idx, len(toks)):
        t = toks[i]
        if t.kind == PUNCT:
            if t.text == "{":
                depth += 1
            elif t.text == "}":
                depth -= 1
                if depth == 0:
                    return i
    return len(toks)


def _top_level_indices(head):
    """(paren+angle) depth per token of a declaration head."""
    depths = []
    pd = ad = 0
    prev = None
    for t in head:
        if t.kind == PUNCT and t.text in (")", ">", ">>"):
            if t.text == ")":
                pd = max(0, pd - 1)
            elif t.text == ">>" and ad > 0:
                # lexed as a shift token, but in a declaration head it is
                # two template closers (C++11 `>>` rule)
                ad = max(0, ad - 2)
            elif t.text == ">" and ad > 0:
                ad -= 1
        depths.append(pd + ad)
        if t.kind == PUNCT:
            if t.text == "(":
                pd += 1
            elif t.text == "<" and prev is not None and (
                    prev.kind == ID or prev.text in (">", "::")):
                ad += 1
        prev = t
    return depths


def _classify_head(head):
    """What does the `{` after `head` open?
    Returns ("ns", name) | ("class", name) | ("enum", None) |
            ("fn", qname) | ("other", None)."""
    if not head:
        return ("other", None)
    texts = [t.text for t in head]
    depths = _top_level_indices(head)

    if "namespace" in texts:
        ns = ""
        take = False
        for t in head:
            if t.text == "namespace":
                take = True
            elif take and t.kind == ID:
                ns = t.text  # inline nested a::b not used in this repo
        return ("ns", ns)

    if head[0].text == "enum" or (len(texts) > 1 and texts[0] == "typedef"
                                  and "enum" in texts):
        return ("enum", None)

    kw = [i for i, t in enumerate(head)
          if t.text in ("class", "struct", "union") and depths[i] == 0]
    if kw:
        # truncate at a top-level lone ':' (base clause)
        end = len(head)
        for i in range(kw[0] + 1, len(head)):
            if head[i].kind == PUNCT and head[i].text == ":" and depths[i] == 0:
                end = i
                break
        name = None
        for i in range(kw[0] + 1, end):
            t = head[i]
            if t.kind == ID and depths[i] == 0 and t.text != "final" \
                    and t.text not in ATTR_MACROS:
                name = t.text
        if name:
            return ("class", name)
        return ("other", None)  # anonymous struct/lambda-ish

    # Function: last top-level '(' whose preceding token names something.
    # Truncate at a ctor-initializer ':' (a top-level lone ':' after ')').
    end = len(head)
    seen_close = False
    for i, t in enumerate(head):
        if t.kind == PUNCT and t.text == ")" :
            seen_close = True
        if t.kind == PUNCT and t.text == ":" and depths[i] == 0 and seen_close:
            end = i
            break
    cand = None
    for i in range(end):
        t = head[i]
        if t.kind == PUNCT and t.text == "(" and depths[i] == 0 and i > 0:
            prev = head[i - 1]
            if prev.kind == ID and prev.text not in ATTR_MACROS \
                    and prev.text not in CONTROL_KEYWORDS:
                cand = i
            elif prev.kind == PUNCT and prev.text == ")" and i >= 3 \
                    and head[i - 3].text == "operator":
                cand = i  # operator()(...)
            elif prev.kind == PUNCT and i >= 2 \
                    and head[i - 2].text == "operator":
                cand = i  # operator<, operator==, ...
    if cand is None:
        return ("other", None)
    # assemble the (possibly qualified) declarator name
    j = cand - 1
    name = head[j].text
    if head[j].kind == PUNCT:
        # operator overload: walk back to the `operator` keyword
        sym = ""
        while j >= 0 and head[j].kind == PUNCT:
            sym = head[j].text + sym
            j -= 1
        if j >= 0 and head[j].text == "operator":
            name = "operator" + sym
        else:
            return ("other", None)
    if j >= 1 and head[j - 1].kind == PUNCT and head[j - 1].text == "~":
        name = "~" + name
        j -= 1
    parts = [name]
    while j >= 2 and head[j - 1].kind == PUNCT and head[j - 1].text == "::" \
            and head[j - 2].kind == ID:
        parts.insert(0, head[j - 2].text)
        j -= 2
    return ("fn", "::".join(parts))


def _strip_attr_calls(seg, depths=None):
    """Segment with attribute-macro calls (GUARDED_BY(...) etc.) removed.
    Returns (stripped_tokens, guards) where guards is the list of
    GUARDED_BY argument strings encountered."""
    out = []
    guards = []
    i = 0
    while i < len(seg):
        t = seg[i]
        if t.kind == ID and t.text in ATTR_MACROS and i + 1 < len(seg) \
                and seg[i + 1].text == "(":
            depth = 0
            j = i + 1
            arg = []
            while j < len(seg):
                if seg[j].text == "(":
                    depth += 1
                elif seg[j].text == ")":
                    depth -= 1
                    if depth == 0:
                        break
                elif depth >= 1:
                    arg.append(seg[j].text)
                j += 1
            if t.text == "GUARDED_BY":
                guards.append("".join(arg))
            i = j + 1
            continue
        out.append(t)
        i += 1
    return out, guards


def _parse_field_segment(seg, cls, fname, comments_by_line):
    """A `;`-terminated class/namespace-scope segment -> FieldDecl or
    MutexDecl or None."""
    if not seg:
        return None
    stripped, guards = _strip_attr_calls(seg)
    if not stripped:
        return None
    lead = stripped[0].text
    if lead in NON_FIELD_LEADS or lead == "static_assert":
        return None
    texts = [t.text for t in stripped]
    if "operator" in texts:
        return None
    # Split off any initializer: `= ...` or `{...}` / `(...)` after the name.
    depths = _top_level_indices(stripped)
    name_idx = None
    init_start = None
    for i, t in enumerate(stripped):
        if depths[i] != 0:
            continue
        if t.kind == PUNCT and t.text in ("=", "{"):
            init_start = i
            break
        if t.kind == PUNCT and t.text == "(" and i > 0 \
                and stripped[i - 1].kind == ID:
            # method prototype (or paren-init member — rare; treat as proto
            # unless the preceding type chain names a Mutex)
            init_start = i
            break
        if t.kind == ID:
            name_idx = i
    if name_idx is None or name_idx == 0:
        return None
    name = stripped[name_idx].text
    type_toks = stripped[:name_idx]
    type_str = " ".join(t.text for t in type_toks).replace(" :: ", "::") \
        .replace(" < ", "<").replace(" > ", ">").replace(" , ", ", ")
    line = stripped[name_idx].line

    base_type = type_str.replace("mutable ", "").strip()
    if base_type in ("Mutex", "common::Mutex", "SharedMutex",
                     "common::SharedMutex"):
        init = ""
        if init_start is not None:
            init = "".join(t.text for t in stripped[init_start:])
        rank = ""
        if "LockRank" in init:
            after = init.split("LockRank")[-1]
            rank = after.strip(":").split(",")[0].split(")")[0] \
                .split("}")[0].strip(": ")
        injected = any("LOCK-RANK:" in c
                       for c in comments_by_line.get(line, []))
        return MutexDecl(cls=cls, name=name,
                         kind="SharedMutex" if "Shared" in base_type
                         else "Mutex",
                         rank=rank, injected=injected, file=fname, line=line)

    if init_start is not None and stripped[init_start].text == "(" :
        return None  # method prototype
    has_comment = bool(comments_by_line.get(line)) or \
        bool(comments_by_line.get(line - 1))
    return FieldDecl(cls=cls, name=name, type_str=type_str, line=line,
                     file=fname, guarded_by=guards[0] if guards else "",
                     has_comment=has_comment)


# --------------------------------------------------------------------------
# Function-body extraction
# --------------------------------------------------------------------------

_MEMORY_ORDERS = {
    "memory_order_relaxed", "memory_order_acquire", "memory_order_release",
    "memory_order_acq_rel", "memory_order_seq_cst", "memory_order_consume",
    # common::Atomic shim aliases (atomic_shim.h re-exports the std names)
    "kRelaxed", "kAcquire", "kRelease", "kAcqRel", "kSeqCst",
}


def _receiver_of(body, i):
    """For a call at body[i] (the name token), the receiver chain info:
    (receiver_member, qualifier, is_member)."""
    qual_parts = []
    j = i - 1
    is_member = False
    receiver = ""
    if j >= 0 and body[j].kind == PUNCT and body[j].text in (".", "->"):
        is_member = True
        k = j - 1
        if k >= 0 and body[k].kind == ID:
            receiver = body[k].text
        elif k >= 0 and body[k].text == ")":
            receiver = "<expr>"
        return receiver, "", True
    while j >= 1 and body[j].kind == PUNCT and body[j].text == "::" \
            and body[j - 1].kind == ID:
        qual_parts.insert(0, body[j - 1].text)
        j -= 2
    return receiver, "::".join(qual_parts), is_member


def _extract_body(fn, body):
    """Populate fn.calls / fn.acquisitions / fn.orders / fn.news from the
    function's code-token body slice."""
    n = len(body)
    # Pre-compute matching close brace for each open brace.
    close_of = {}
    stack = []
    for i, t in enumerate(body):
        if t.kind == PUNCT:
            if t.text == "{":
                stack.append(i)
            elif t.text == "}" and stack:
                close_of[stack.pop()] = i
    open_braces = []  # indices of braces currently open at cursor

    # Argument ranges of std::thread / std::jthread / std::async
    # constructions: calls in there execute on the spawned thread, which
    # starts with an empty lock set and is off the caller's fast path.
    deferred_ranges = []
    for i, t in enumerate(body):
        if t.kind == ID and t.text in ("thread", "jthread", "async") \
                and i + 1 < n and body[i + 1].text == "(":
            depth = 0
            for j in range(i + 1, n):
                if body[j].text == "(":
                    depth += 1
                elif body[j].text == ")":
                    depth -= 1
                    if depth == 0:
                        deferred_ranges.append((i + 1, j))
                        break

    def is_deferred(idx):
        return any(lo < idx < hi for lo, hi in deferred_ranges)

    last_call_name = ""
    i = 0
    while i < n:
        t = body[i]
        if t.kind == PUNCT:
            if t.text == "{":
                open_braces.append(i)
            elif t.text == "}" and open_braces:
                open_braces.pop()
            i += 1
            continue
        if t.kind != ID:
            i += 1
            continue

        # `new` expression
        if t.text == "new":
            what = " ".join(x.text for x in body[i + 1:i + 4])
            fn.news.append(NewExpr(line=t.line, what=what))
            i += 1
            continue

        # memory_order argument
        if t.text in _MEMORY_ORDERS or (
                t.text == "memory_order" and i + 2 < n
                and body[i + 1].text == "::"):
            order = t.text
            if t.text == "memory_order":
                order = "memory_order_" + body[i + 2].text
            fn.orders.append(AtomicOrderUse(order=order, line=t.line,
                                            op_name=last_call_name))
            i += 1
            continue

        nxt = body[i + 1] if i + 1 < n else None
        is_call = nxt is not None and nxt.kind == PUNCT and nxt.text == "("

        # RAII guard declaration: [common::] MutexLock name(expr...);
        if t.text in GUARD_TYPES and nxt is not None:
            gi = i + 1
            if body[gi].kind == ID:          # variable name
                gi += 1
            if gi < n and body[gi].text == "(":
                depth = 0
                j = gi
                arg = []
                while j < n:
                    if body[j].text == "(":
                        depth += 1
                    elif body[j].text == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    elif depth >= 1:
                        arg.append(body[j].text)
                    j += 1
                end = close_of.get(open_braces[-1], n) if open_braces else n
                fn.acquisitions.append(Acquisition(
                    mutex_expr="".join(arg), kind=GUARD_TYPES[t.text],
                    line=t.line, tok=i, end_tok=end, via=t.text))
                i = j + 1
                continue

        # Explicit x.Lock() / x.LockShared() / x.TryLock()
        if is_call and t.text in ("Lock", "LockShared", "TryLock",
                                  "TryLockShared") and i >= 2 \
                and body[i - 1].text in (".", "->"):
            expr = body[i - 2].text
            kind = "shared" if "Shared" in t.text else "exclusive"
            # Held until the matching Unlock on the same expr, else fn end.
            end = n
            for j in range(i + 1, n):
                if body[j].kind == ID and body[j].text in (
                        "Unlock", "UnlockShared") and j >= 2 \
                        and body[j - 1].text in (".", "->") \
                        and body[j - 2].text == expr:
                    end = j
                    break
            fn.acquisitions.append(Acquisition(
                mutex_expr=expr, kind=kind, line=t.line, tok=i, end_tok=end,
                via="Lock()", is_try=t.text.startswith("Try")))
            last_call_name = t.text
            i += 1
            continue

        if is_call and t.text not in CONTROL_KEYWORDS \
                and t.text not in ATTR_MACROS:
            receiver, qualifier, is_member = _receiver_of(body, i)
            fn.calls.append(CallSite(name=t.text, receiver=receiver,
                                     qualifier=qualifier, line=t.line,
                                     tok=i, is_member=is_member,
                                     deferred=is_deferred(i)))
            last_call_name = t.text
        i += 1


# --------------------------------------------------------------------------
# File + program assembly
# --------------------------------------------------------------------------

def parse_file(path, program, collect_functions=True):
    text = Path(path).read_text(errors="replace")
    all_toks = lex(text)
    program.files[str(path)] = all_toks
    toks = code_tokens(all_toks)
    comments_by_line = {}
    for t in all_toks:
        if t.kind == COMMENT:
            comments_by_line.setdefault(t.line, []).append(t.text)
            for extra in range(t.text.count("\n")):
                comments_by_line.setdefault(t.line + 1 + extra,
                                            []).append(t.text)

    fname = str(path)
    n = len(toks)
    i = 0
    seg_start = 0
    # scope stack entries: (kind, name) with kind in ns|class|enum|fn|other
    scopes = []

    def ns_qname():
        return "::".join(name for kind, name in scopes if kind == "ns" and name)

    def cls_qname():
        parts = [name for kind, name in scopes if kind == "class"]
        return "::".join(parts)

    def in_body():
        return any(kind == "fn" for kind, _ in scopes)

    while i < n:
        t = toks[i]
        if t.kind == PUNCT and t.text == "{":
            head = toks[seg_start:i]
            kind, name = _classify_head(head)
            if kind == "fn" and not in_body():
                cls = cls_qname()
                qname_parts = [p for p in (cls, name) if p]
                qname = "::".join(qname_parts)
                # out-of-line member: name itself may carry Class:: quals
                if "::" in name and not cls:
                    qname = name
                fn = Function(qname=qname,
                              cls="::".join(qname.split("::")[:-1]),
                              file=fname,
                              line=head[0].line if head else t.line)
                end = _match_brace(toks, i)
                fn.body = toks[i:end + 1]
                if collect_functions:
                    _extract_body(fn, fn.body)
                    program.add_function(fn)
                i = end + 1
                seg_start = i
                continue
            if kind == "ns":
                scopes.append(("ns", name))
            elif kind == "class":
                scopes.append(("class", name))
                program.classes.add(name)
            elif kind == "enum":
                end = _match_brace(toks, i)
                if head and any(x.text == "LockRank" for x in head):
                    _parse_rank_enum(toks[i:end + 1], program)
                i = end + 1
                seg_start = i
                continue
            else:
                # Unknown head (brace-initialized variable, array init...):
                # swallow the braces into the running segment.
                end = _match_brace(toks, i)
                i = end + 1
                continue
            i += 1
            seg_start = i
            continue
        if t.kind == PUNCT and t.text == "}":
            if scopes:
                scopes.pop()
            i += 1
            seg_start = i
            continue
        if t.kind == PUNCT and t.text == ";":
            seg = toks[seg_start:i]
            if seg and not in_body():
                decl = _parse_field_segment(
                    seg, cls_qname(), fname, comments_by_line)
                if isinstance(decl, MutexDecl):
                    program.mutexes.append(decl)
                elif isinstance(decl, FieldDecl) and decl.cls:
                    program.fields.setdefault(decl.cls, []).append(decl)
            i += 1
            seg_start = i
            continue
        if t.kind == PUNCT and t.text == ":" and not in_body():
            # access specifier => reset segment
            seg = toks[seg_start:i]
            if len(seg) == 1 and seg[0].text in ("public", "private",
                                                 "protected"):
                seg_start = i + 1
        i += 1
    return program


def _parse_rank_enum(body, program):
    for i, t in enumerate(body):
        if t.kind == ID and t.text.startswith("k") and i + 2 < len(body) \
                and body[i + 1].text == "=" and body[i + 2].kind == "num":
            try:
                program.ranks[t.text] = int(body[i + 2].text.rstrip("uUlL"))
            except ValueError:
                pass


def load_program(paths):
    program = Program()
    for p in sorted(set(str(x) for x in paths)):
        parse_file(p, program)
    return program


def comment_lines(program, path):
    """line -> concatenated comment text for a file (justification checks)."""
    out = {}
    for t in program.files.get(str(path), []):
        if t.kind == COMMENT:
            for off in range(t.text.count("\n") + 1):
                out.setdefault(t.line + off, []).append(t.text)
    return out
