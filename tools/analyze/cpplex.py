"""Token-accurate C++ lexer for the whole-program analyzer.

This is the layer that makes the AST checks *token*-accurate where the
retired regex lints were line-accurate: comments, string literals, raw
strings, and character literals become first-class tokens, so a
`memory_order_relaxed` inside a string can never trip MEM-ORDER and a
`new` inside a comment can never trip HOT-ALLOC.

The lexer is deliberately preprocessor-naive: it lexes the file as
written (macros like ASTERIX_FAILPOINT or GUARDED_BY appear as ordinary
identifier + paren sequences), which is exactly what the downstream
extraction wants — the annotations ARE the facts being checked.
"""

from dataclasses import dataclass

# Token kinds.
ID = "id"            # identifiers and keywords
NUM = "num"          # numeric literals
STR = "str"          # string literal (incl. raw strings)
CHAR = "char"        # character literal
PUNCT = "punct"      # operators and punctuation
COMMENT = "comment"  # // or /* */ comment, text includes delimiters
PP = "pp"            # a whole preprocessor line (# ... to end of line)


@dataclass
class Token:
    kind: str
    text: str
    line: int  # 1-based
    col: int   # 1-based

    def __repr__(self):
        return f"{self.kind}:{self.text!r}@{self.line}"


_PUNCT3 = ("<<=", ">>=", "...", "->*", "<=>")
_PUNCT2 = ("::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
           "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
           ".*")

_ID_START = set("abcdefghijklmnopqrstuvwxyz"
                "ABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
_ID_CONT = _ID_START | set("0123456789")
_DIGITS = set("0123456789")


def lex(text):
    """Lex `text` into a list of Tokens. Never raises on malformed input:
    an unterminated literal is closed at end of file (the analyzer must
    degrade gracefully on any source it is pointed at)."""
    toks = []
    i = 0
    n = len(text)
    line = 1
    line_start = 0

    def emit(kind, start, end):
        toks.append(Token(kind, text[start:end], line_at_start,
                          start - line_start_at_start + 1))

    while i < n:
        c = text[i]
        line_at_start = line
        line_start_at_start = line_start

        if c == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if c in " \t\r\f\v":
            i += 1
            continue

        # Preprocessor line (only when '#' is the first non-ws on the line).
        if c == "#" and text[line_start:i].strip() == "":
            start = i
            while i < n:
                if text[i] == "\n":
                    if i > 0 and text[i - 1] == "\\":
                        line += 1
                        i += 1
                        line_start = i
                        continue
                    break
                i += 1
            emit(PP, start, i)
            continue

        # Comments.
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            start = i
            while i < n and text[i] != "\n":
                i += 1
            emit(COMMENT, start, i)
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            start = i
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    line += 1
                    line_start = i + 1
                i += 1
            i = min(i + 2, n)
            emit(COMMENT, start, i)
            continue

        # Raw strings: R"delim( ... )delim"
        if c == "R" and i + 1 < n and text[i + 1] == '"':
            j = i + 2
            while j < n and text[j] not in "(\n" and j - i < 20:
                j += 1
            if j < n and text[j] == "(":
                delim = text[i + 2:j]
                close = ")" + delim + '"'
                end = text.find(close, j + 1)
                if end == -1:
                    end = n
                else:
                    end += len(close)
                start = i
                line += text.count("\n", i, end)
                nl = text.rfind("\n", i, end)
                if nl != -1:
                    line_start = nl + 1
                emit(STR, start, end)
                i = end
                continue

        # String / char literals (with escapes). Prefix letters (u8, L, u, U)
        # are lexed as part of the preceding identifier; acceptable — the
        # literal itself still becomes a STR/CHAR token.
        if c in "\"'":
            quote = c
            start = i
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    i += 2
                    continue
                if text[i] == "\n":  # unterminated; bail at newline
                    break
                i += 1
            if i < n and text[i] == quote:
                i += 1
            emit(STR if quote == '"' else CHAR, start, i)
            continue

        # Identifiers / keywords.
        if c in _ID_START:
            start = i
            while i < n and text[i] in _ID_CONT:
                i += 1
            emit(ID, start, i)
            continue

        # Numbers (loose: covers hex, floats, digit separators, suffixes).
        if c in _DIGITS or (c == "." and i + 1 < n and text[i + 1] in _DIGITS):
            start = i
            i += 1
            while i < n and (text[i] in _ID_CONT or text[i] in ".'"
                             or (text[i] in "+-" and text[i - 1] in "eEpP")):
                i += 1
            emit(NUM, start, i)
            continue

        # Punctuation, longest match first.
        three = text[i:i + 3]
        if three in _PUNCT3:
            emit(PUNCT, i, i + 3)
            i += 3
            continue
        two = text[i:i + 2]
        if two in _PUNCT2:
            emit(PUNCT, i, i + 2)
            i += 2
            continue
        emit(PUNCT, i, i + 1)
        i += 1

    return toks


def code_tokens(toks):
    """Tokens with comments and preprocessor lines stripped — the stream
    the structural extraction walks. Comments remain reachable through
    the original list for justification-comment checks."""
    return [t for t in toks if t.kind not in (COMMENT, PP)]
