"""libclang frontend: builds the same ir.Program the token frontend
produces, but from real ASTs via Python `clang.cindex` over
compile_commands.json.

Pinned toolchain: python3-clang-14 with libclang-14 (the repo's
clang-tidy baseline pins the same major). Newer majors usually work —
cindex is a stable C API — but 14 is what CI validates.

This module must never be a hard dependency: load_program() returns None
when clang.cindex is unimportable, libclang cannot be located, or
compile_commands.json is absent, and analyze.py falls back to the token
frontend. Both frontends feed identical checks; the fixtures run under
whichever frontend is active, so a frontend regression shows up as a
fixture failure, not as silent acceptance.
"""

from pathlib import Path

import ir


def _index():
    try:
        from clang import cindex
    except ImportError:
        return None
    try:
        return cindex, cindex.Index.create()
    except Exception:
        # cindex importable but libclang.so missing/mismatched
        return None


def load_program(files):
    loaded = _index()
    if loaded is None:
        return None
    cindex, index = loaded

    # Without a compilation database we cannot reproduce include paths /
    # defines faithfully; parse with the repo's canonical flags.
    root = None
    for p in [Path(files[0]).resolve()] + list(Path(files[0]).resolve()
                                               .parents):
        if (p / "CMakeLists.txt").exists() and (p / "src").is_dir():
            root = p
            break
    args = ["-std=c++17", "-xc++"]
    if root:
        args += [f"-I{root}", f"-I{root}/src"]
        cc_json = root / "compile_commands.json"
        if not cc_json.exists():
            cc_json = root / "build" / "compile_commands.json"
        if cc_json.exists():
            try:
                db = cindex.CompilationDatabase.fromDirectory(
                    str(cc_json.parent))
            except Exception:
                db = None
        else:
            db = None
    else:
        db = None

    program = ir.Program()
    CK = cindex.CursorKind
    for f in files:
        f = str(f)
        file_args = list(args)
        if db is not None:
            cmds = db.getCompileCommands(f)
            if cmds:
                raw = list(cmds[0].arguments)[1:-1]
                file_args = [a for a in raw if a not in ("-c", "-o")]
        # Declarations, rank enum, and the comment-bearing token stream
        # come from the shared token pass (identical under both
        # frontends); cindex supplies the function bodies below. A file
        # cindex cannot parse falls back to token-extracted functions, so
        # a frontend regression degrades to the pinned behavior instead
        # of silently accepting.
        try:
            tu = index.parse(f, args=file_args)
        except Exception:
            tu = None
        if tu is None or any(d.severity >= 4 for d in tu.diagnostics):
            ir.parse_file(f, program)
            continue
        ir.parse_file(f, program, collect_functions=False)
        _walk_tu(program, tu, f, CK)
    return program


def _qname(cursor):
    parts = []
    c = cursor
    while c is not None and c.kind is not None and c.spelling:
        if c.kind.name in ("TRANSLATION_UNIT",):
            break
        if c.kind.name in ("NAMESPACE", "CLASS_DECL", "STRUCT_DECL",
                           "CLASS_TEMPLATE", "CXX_METHOD", "FUNCTION_DECL",
                           "CONSTRUCTOR", "DESTRUCTOR", "FUNCTION_TEMPLATE"):
            parts.insert(0, c.spelling)
        c = c.semantic_parent
    return "::".join(parts)


def _walk_tu(program, tu, fname, CK):
    guard_kinds = {"MutexLock": "exclusive", "WriterMutexLock": "exclusive",
                   "ReaderMutexLock": "shared"}

    def visit(cursor):
        for child in cursor.get_children():
            loc = child.location
            if loc.file is None or str(loc.file) != fname:
                continue
            if child.kind in (CK.CXX_METHOD, CK.FUNCTION_DECL,
                              CK.CONSTRUCTOR, CK.DESTRUCTOR) \
                    and child.is_definition():
                fn = ir.Function(
                    qname=_qname(child),
                    cls=_qname(child.semantic_parent)
                    if child.semantic_parent else "",
                    file=fname, line=loc.line)
                _walk_body(fn, child, CK, guard_kinds)
                program.add_function(fn)
                continue
            visit(child)

    visit(tu.cursor)


def _walk_body(fn, cursor, CK, guard_kinds):
    tok_counter = [0]

    def visit(node, depth):
        for child in node.get_children():
            tok_counter[0] += 1
            if child.kind == CK.VAR_DECL and child.type.spelling \
                    .split("::")[-1] in guard_kinds:
                kids = list(child.get_children())
                expr = kids[-1].spelling if kids else ""
                fn.acquisitions.append(ir.Acquisition(
                    mutex_expr=expr,
                    kind=guard_kinds[child.type.spelling.split("::")[-1]],
                    line=child.location.line, tok=tok_counter[0],
                    end_tok=1 << 30, via=child.type.spelling))
            elif child.kind == CK.CALL_EXPR:
                fn.calls.append(ir.CallSite(
                    name=child.spelling or "", receiver="", qualifier="",
                    line=child.location.line, tok=tok_counter[0]))
            elif child.kind == CK.CXX_NEW_EXPR:
                fn.news.append(ir.NewExpr(line=child.location.line,
                                          what=child.type.spelling))
            visit(child, depth + 1)

    visit(cursor, 0)
