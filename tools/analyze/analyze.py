#!/usr/bin/env python3
"""Whole-program static analyzer: lock graph, blocking-under-lock,
hot-path allocation, and AST-grade MEM-ORDER.

Usage:
  analyze.py [--root DIR] [--check NAME ...] [--json OUT]
             [--frontend auto|tokens|clang] [files ...]

With no file arguments, analyzes every .h/.cc under <root>/src plus the
README rank table and tools/analyze/expected_lock_edges.txt lockstep.
Explicit file arguments switch to fixture mode: no repo allowlists, no
README/expected-edge cross-checks, roots overridable with --hot-root.

Frontends:
  tokens  self-contained token/structure frontend (cpplex.py + ir.py) —
          always available, the pinned default.
  clang   libclang via python3 clang.cindex over compile_commands.json
          (pin: python3-clang-14 / libclang-14). Selected automatically
          by `auto` when importable; falls back to tokens otherwise.

Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

import argparse
import json
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import checks  # noqa: E402
import ir      # noqa: E402

CHECKS = {
    "lock-graph": checks.check_lock_graph,
    "blocking": checks.check_blocking,
    "hot-alloc": checks.check_hot_alloc,
    "mem-order": checks.check_mem_order,
}


def find_repo_root(start):
    p = Path(start).resolve()
    while p != p.parent:
        if (p / "CMakeLists.txt").exists() and (p / "src").is_dir():
            return p
        p = p.parent
    return Path(start).resolve()


def parse_readme_ranks(readme_path):
    """{'kName': value} from the README rank table."""
    out = {}
    if not readme_path.exists():
        return None
    row = re.compile(r"^\|\s*`(k\w+)`\s*\|\s*(\d+)\s*\|")
    for line in readme_path.read_text().splitlines():
        m = row.match(line.strip())
        if m:
            out[m.group(1)] = int(m.group(2))
    return out or None


def parse_expected_edges(path):
    out = set()
    if not path.exists():
        return None
    for line in path.read_text().splitlines():
        line = line.split("#", 1)[0].strip()
        if not line:
            continue
        m = re.match(r"(k\w+)\s*->\s*(k\w+)$", line)
        if m:
            out.add((m.group(1), m.group(2)))
    return out


def build_program(files, frontend):
    if frontend in ("auto", "clang"):
        try:
            import clang_frontend
            program = clang_frontend.load_program(files)
            if program is not None:
                return program, "clang"
            if frontend == "clang":
                print("analyze: clang frontend unavailable "
                      "(python3-clang/libclang or compile_commands.json "
                      "missing)", file=sys.stderr)
                sys.exit(2)
        except Exception as e:  # clang.cindex import/ABI failures
            if frontend == "clang":
                print(f"analyze: clang frontend failed: {e}",
                      file=sys.stderr)
                sys.exit(2)
    return ir.load_program(files), "tokens"


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("files", nargs="*")
    ap.add_argument("--root", default=None)
    ap.add_argument("--check", action="append", choices=sorted(CHECKS),
                    help="run only the named check(s)")
    ap.add_argument("--json", default=None,
                    help="write edges/stats artifact to this path")
    ap.add_argument("--frontend", default="auto",
                    choices=("auto", "tokens", "clang"))
    ap.add_argument("--hot-root", action="append", default=None,
                    help="override hot-path roots (fixture mode)")
    ap.add_argument("--explain", action="store_true",
                    help="print every allowlist entry and its reason")
    ap.add_argument("--list-edges", action="store_true",
                    help="print the discovered lock edges and exit")
    args = ap.parse_args(argv)

    root = find_repo_root(args.root or Path(__file__).parent)

    if args.explain:
        import config
        for table in ("UNACQUIRED_RANK_ALLOWLIST", "BLOCKING_ALLOWLIST",
                      "HOT_PRUNE", "HOT_FILE_ALLOWLIST"):
            print(f"[{table}]")
            for k, v in getattr(config, table).items():
                print(f"  {k}: {v}")
        return 0

    fixture_mode = bool(args.files)
    if fixture_mode:
        files = [Path(f).resolve() for f in args.files]
    else:
        files = sorted((root / "src").rglob("*.h")) + \
            sorted((root / "src").rglob("*.cc"))
    missing = [f for f in files if not Path(f).exists()]
    if missing:
        print(f"analyze: missing inputs: {missing}", file=sys.stderr)
        return 2

    program, frontend = build_program(files, args.frontend)

    def rel(p):
        try:
            return str(Path(p).resolve().relative_to(root))
        except ValueError:
            return str(Path(p).name)

    line_cache = {}

    def read_lines(p):
        if p not in line_cache:
            line_cache[p] = Path(p).read_text(
                errors="replace").splitlines()
        return line_cache[p]

    opts = {
        "rel": rel,
        "read_lines": read_lines,
        "allowlists": not fixture_mode,
        "unused_ranks": not fixture_mode,
        "rank_file": str(root / "src/common/lock_rank.h"),
        "readme_path": str(root / "README.md"),
    }
    if not fixture_mode:
        opts["readme_ranks"] = parse_readme_ranks(root / "README.md")
        edges_path = root / "tools/analyze/expected_lock_edges.txt"
        opts["expected_edges"] = parse_expected_edges(edges_path)
        opts["edges_path"] = str(edges_path)
    else:
        opts["readme_ranks"] = None
        opts["expected_edges"] = None
    if args.hot_root:
        opts["hot_roots"] = args.hot_root
    elif fixture_mode:
        opts["hot_roots"] = []

    selected = args.check or sorted(CHECKS)
    all_findings = []
    all_stats = {"frontend": frontend, "files": len(files)}
    for name in selected:
        findings, stats = CHECKS[name](program, opts)
        all_findings.extend(findings)
        if stats:
            all_stats[name] = stats

    if args.list_edges:
        for edge in all_stats.get("lock-graph", {}).get("edges", []):
            print(edge)
        return 0

    if args.json:
        Path(args.json).parent.mkdir(parents=True, exist_ok=True)
        Path(args.json).write_text(json.dumps(all_stats, indent=2) + "\n")

    all_findings.sort(key=lambda f: (f.check, rel(f.file), f.line))
    for f in all_findings:
        print(f.render(rel))
    n = all_stats.get("lock-graph", {})
    print(f"analyze[{frontend}]: {len(files)} files, "
          f"{len(all_findings)} finding(s)"
          + (f", {len(n.get('edges', []))} lock edge(s)" if n else ""),
          file=sys.stderr)
    return 1 if all_findings else 0


if __name__ == "__main__":
    sys.exit(main())
