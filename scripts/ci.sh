#!/usr/bin/env bash
# Full local verification matrix. Runs every stage, records PASS/FAIL/SKIP,
# prints a summary, and exits non-zero iff any stage FAILed.
#
# Stages:
#   default     cmake --preset default, build, full ctest
#   analyze     Clang -Wthread-safety -Werror build + compile_fail negative
#               tests (SKIP when clang++ is not installed)
#   analyze-ast whole-program static analyzer (tools/analyze): lock graph,
#               blocking-under-lock, hot-path allocation, MEM-ORDER, plus
#               its fixture self-tests. Uses libclang when python3-clang
#               (pin: python3-clang-14 / libclang-14) is importable, else
#               the built-in token frontend — so it only SKIPs when
#               python3 itself is missing
#   asan-ubsan  AddressSanitizer+UBSan build, full ctest (includes the
#               `sanitizer`-labeled chaos soak)
#   tsan-chaos  ThreadSanitizer build, concurrency-heavy suites
#   deadlock    runtime lock-order checker ON (ASTERIX_DEADLOCK_DETECTOR),
#               detector unit tests + chaos/sanitizer-labeled suites
#   modelcheck  deterministic model checker (ASTERIX_MODEL_CHECK_TESTS):
#               litmus/invariant suite + seeded-bug regressions
#   clang-tidy  curated .clang-tidy baseline over src/ (SKIP when
#               clang-tidy is not installed)
#   lint        tools/lint/check_invariants.py
#
# Usage: scripts/ci.sh [stage ...]     (default: all stages)
#   JOBS=N scripts/ci.sh               parallelism (default: nproc)

set -u
cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"

STAGES=("$@")
if [ ${#STAGES[@]} -eq 0 ]; then
  STAGES=(default analyze analyze-ast asan-ubsan tsan-chaos deadlock modelcheck clang-tidy lint)
fi

declare -A RESULT
declare -A SECONDS_TAKEN

run_stage() {
  local name="$1"
  shift
  echo
  echo "=== [$name] ==="
  local start end
  start=$(date +%s)
  if "$@"; then
    RESULT[$name]=PASS
  else
    RESULT[$name]=FAIL
  fi
  end=$(date +%s)
  SECONDS_TAKEN[$name]=$((end - start))
}

skip_stage() {
  local name="$1" why="$2"
  echo
  echo "=== [$name] SKIP: $why ==="
  RESULT[$name]=SKIP
  SECONDS_TAKEN[$name]=0
}

for stage in "${STAGES[@]}"; do
  case "$stage" in
    default)
      run_stage default bash -c "
        cmake --preset default >/dev/null &&
        cmake --build --preset default -j $JOBS &&
        ctest --preset default -j $JOBS"
      ;;
    analyze)
      if command -v clang++ >/dev/null 2>&1; then
        run_stage analyze bash -c "
          cmake --preset analyze >/dev/null &&
          cmake --build --preset analyze -j $JOBS &&
          ctest --test-dir build-analyze -L compile_fail --output-on-failure"
      else
        skip_stage analyze "clang++ not installed (thread-safety analysis is Clang-only)"
      fi
      ;;
    analyze-ast)
      if command -v python3 >/dev/null 2>&1; then
        run_stage analyze-ast bash -c "
          python3 tools/analyze/analyze.py &&
          python3 tools/analyze/run_fixture_tests.py"
      else
        skip_stage analyze-ast "python3 not installed"
      fi
      ;;
    asan-ubsan)
      run_stage asan-ubsan bash -c "
        cmake --preset asan-ubsan >/dev/null &&
        cmake --build --preset asan-ubsan -j $JOBS &&
        ctest --preset asan-ubsan -j $JOBS"
      ;;
    tsan-chaos)
      run_stage tsan-chaos bash -c "
        cmake --preset tsan >/dev/null &&
        cmake --build --preset tsan -j $JOBS &&
        ctest --preset tsan-chaos -j $JOBS"
      ;;
    deadlock)
      run_stage deadlock bash -c "
        cmake --preset deadlock >/dev/null &&
        cmake --build --preset deadlock -j $JOBS &&
        ctest --preset deadlock -j $JOBS"
      ;;
    modelcheck)
      run_stage modelcheck bash -c "
        cmake --preset modelcheck >/dev/null &&
        cmake --build --preset modelcheck -j $JOBS &&
        ctest --preset modelcheck"
      ;;
    clang-tidy)
      if command -v clang-tidy >/dev/null 2>&1; then
        run_stage clang-tidy bash -c "
          cmake --preset default -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null &&
          find src -name '*.cc' | sort | xargs clang-tidy -p build --quiet"
      else
        skip_stage clang-tidy "clang-tidy not installed"
      fi
      ;;
    lint)
      run_stage lint python3 tools/lint/check_invariants.py
      ;;
    *)
      echo "unknown stage: $stage" >&2
      RESULT[$stage]=FAIL
      SECONDS_TAKEN[$stage]=0
      ;;
  esac
done

echo
echo "=============================="
echo " CI summary"
echo "=============================="
failed=0
for stage in "${STAGES[@]}"; do
  printf " %-12s %-5s %4ss\n" "$stage" "${RESULT[$stage]}" "${SECONDS_TAKEN[$stage]}"
  [ "${RESULT[$stage]}" = FAIL ] && failed=1
done
exit $failed
