// Publish-subscribe over feeds (Chapter 8.2): subscriptions become
// sibling secondary feeds — each with a filtering UDF — that all share
// one head section. A tweet is fetched from the source once and routed
// to every subscription whose predicate it satisfies; each subscription
// accumulates results in its own dataset that the subscriber can query
// (or poll) at leisure.
//
//   $ ./examples/pubsub
#include <cstdio>

#include "asterix/asterix.h"
#include "common/clock.h"
#include "feeds/udf.h"
#include "gen/tweetgen.h"

using namespace asterix;  // NOLINT — example brevity

namespace {

storage::DatasetDef Dataset(const std::string& name) {
  storage::DatasetDef def;
  def.name = name;
  def.datatype = "Tweet";
  def.primary_key_field = "id";
  return def;
}

// One "subscription": a country-equality predicate, as an AQL UDF the
// compiler could reason about (kFilterFieldEquals).
void Subscribe(AsterixInstance* db, const std::string& user,
               const std::string& country) {
  std::string udf_name = "match_" + user;
  CHECK_OK(db->InstallUdf(std::make_shared<feeds::AqlUdf>(
      udf_name,
      std::vector<feeds::AqlUdf::Step>{
          {feeds::AqlUdf::Step::Op::kFilterFieldEquals,
           {"country"},
           adm::Value::String(country)}})));
  feeds::FeedDef feed;
  feed.name = "Sub_" + user;
  feed.is_primary = false;
  feed.parent_feed = "Firehose";
  feed.udf = udf_name;
  CHECK_OK(db->CreateFeed(feed));
  CHECK_OK(db->CreateDataset(Dataset("Inbox_" + user)));
  CHECK_OK(db->ConnectFeed("Sub_" + user, "Inbox_" + user, "Basic",
                           {.compute_count = 1}));
}

}  // namespace

int main() {
  AsterixInstance db(InstanceOptions{.num_nodes = 3});
  CHECK_OK(db.Start());

  gen::TweetGenServer firehose(0, gen::Pattern::Constant(4000, 3000));
  feeds::ExternalSourceRegistry::Instance().RegisterChannel(
      "hose:1", &firehose.channel());

  feeds::FeedDef primary;
  primary.name = "Firehose";
  primary.adaptor_alias = "TweetGenAdaptor";
  primary.adaptor_config = {{"sockets", "hose:1"}};
  CHECK_OK(db.CreateFeed(primary));

  // Three subscribers with different interests; all share one fetch.
  struct Sub {
    const char* user;
    const char* country;
  };
  const Sub subs[] = {{"alice", "US"}, {"bob", "IN"}, {"carol", "DE"}};
  for (const Sub& sub : subs) Subscribe(&db, sub.user, sub.country);

  firehose.Start();
  firehose.Join();
  int64_t published = firehose.tweets_sent();

  // Let the inboxes drain, then report.
  common::Stopwatch drain;
  int64_t matched = 0;
  while (drain.ElapsedMillis() < 10000) {
    matched = 0;
    for (const Sub& sub : subs) {
      matched +=
          db.CountDataset(std::string("Inbox_") + sub.user).value();
    }
    auto head = db.feed_manager().GetHeadMetrics("Firehose");
    if (head != nullptr && head->records_collected.load() == published) {
      common::SleepMillis(300);  // in-flight frames
      break;
    }
    common::SleepMillis(100);
  }

  std::printf("published: %lld tweets (fetched once, shared head)\n",
              static_cast<long long>(published));
  for (const Sub& sub : subs) {
    int64_t inbox =
        db.CountDataset(std::string("Inbox_") + sub.user).value();
    std::printf("  %-6s subscribed to country=%s -> inbox %lld "
                "(%.1f%% of the stream)\n",
                sub.user, sub.country, static_cast<long long>(inbox),
                100.0 * inbox / published);
  }
  std::printf("\nfeed console:\n%s",
              db.feed_manager().DescribeFeeds().c_str());

  for (const Sub& sub : subs) {
    CHECK_OK(db.DisconnectFeed(std::string("Sub_") + sub.user,
                               std::string("Inbox_") + sub.user));
  }
  feeds::ExternalSourceRegistry::Instance().UnregisterChannel("hose:1");
  return 0;
}
