// Cascade network / Fetch-Once-Compute-Many (Chapter 4-5): one external
// TweetGen source drives three feeds at once —
//
//   TwitterFeed ───────────────────────────────► Tweets        (raw)
//        └─ ProcessedTwitterFeed (AQL hashtags) ► ProcessedTweets
//                 └─ SentimentFeed (Java UDF)   ► TwitterSentiments
//
// The head section (adaptor) is shared: each tweet is fetched from the
// source exactly once and re-used along all three paths via feed joints.
//
//   $ ./examples/cascade_network
#include <cstdio>

#include "asterix/asterix.h"
#include "common/clock.h"
#include "feeds/udf.h"
#include "gen/tweetgen.h"

using namespace asterix;  // NOLINT — example brevity

static storage::DatasetDef Dataset(const std::string& name) {
  storage::DatasetDef def;
  def.name = name;
  def.datatype = "Tweet";
  def.primary_key_field = "id";
  return def;
}

int main() {
  AsterixInstance db(InstanceOptions{.num_nodes = 4});
  CHECK_OK(db.Start());

  // The external source: TweetGen pushing 3000 tweets/sec for 3 seconds
  // into an in-process socket.
  gen::TweetGenServer tweetgen(0, gen::Pattern::Constant(3000, 3000));
  feeds::ExternalSourceRegistry::Instance().RegisterChannel(
      "10.1.0.1:9000", &tweetgen.channel());

  CHECK_OK(db.CreateDataset(Dataset("Tweets")));
  CHECK_OK(db.CreateDataset(Dataset("ProcessedTweets")));
  CHECK_OK(db.CreateDataset(Dataset("TwitterSentiments")));

  // UDFs: the AQL hashtag extractor of Listing 4.2 and a black-box
  // "Java" sentiment function (Listing 5.9).
  CHECK_OK(db.InstallUdf(feeds::AqlUdf::ExtractHashtags("addHashTags")));
  CHECK_OK(db.InstallUdf(std::make_shared<feeds::JavaUdf>(
      "tweetlib", "sentimentAnalysis",
      [](const adm::Value& tweet) -> std::optional<adm::Value> {
        adm::Value out = tweet;
        out.SetField("sentiment",
                     adm::Value::Double(feeds::PseudoSentiment(
                         tweet.GetField("message_text")->AsString())));
        return out;
      })));

  // The feed hierarchy.
  feeds::FeedDef twitter;
  twitter.name = "TwitterFeed";
  twitter.adaptor_alias = "TweetGenAdaptor";
  twitter.adaptor_config = {{"sockets", "10.1.0.1:9000"}};
  CHECK_OK(db.CreateFeed(twitter));

  feeds::FeedDef processed;
  processed.name = "ProcessedTwitterFeed";
  processed.is_primary = false;
  processed.parent_feed = "TwitterFeed";
  processed.udf = "addHashTags";
  CHECK_OK(db.CreateFeed(processed));

  feeds::FeedDef sentiment;
  sentiment.name = "SentimentFeed";
  sentiment.is_primary = false;
  sentiment.parent_feed = "ProcessedTwitterFeed";
  sentiment.udf = "tweetlib#sentimentAnalysis";
  CHECK_OK(db.CreateFeed(sentiment));

  // Connect in an arbitrary order (Chapter 4: order does not matter) —
  // the compiler picks the nearest connected ancestor's joint each time.
  CHECK_OK(db.ConnectFeed("ProcessedTwitterFeed", "ProcessedTweets"));
  CHECK_OK(db.ConnectFeed("TwitterFeed", "Tweets"));
  CHECK_OK(db.ConnectFeed("SentimentFeed", "TwitterSentiments"));

  auto show = [&](const char* when) {
    std::printf(
        "%-12s raw=%6lld processed=%6lld sentiments=%6lld (sent=%lld)\n",
        when, static_cast<long long>(db.CountDataset("Tweets").value()),
        static_cast<long long>(
            db.CountDataset("ProcessedTweets").value()),
        static_cast<long long>(
            db.CountDataset("TwitterSentiments").value()),
        static_cast<long long>(tweetgen.tweets_sent()));
  };

  tweetgen.Start();
  for (int i = 0; i < 3; ++i) {
    common::SleepMillis(1000);
    show("running");
  }
  tweetgen.Join();

  // Drain, then show the fetch-once accounting.
  int64_t sent = tweetgen.tweets_sent();
  common::Stopwatch drain;
  while (drain.ElapsedMillis() < 10000 &&
         (db.CountDataset("Tweets").value() < sent ||
          db.CountDataset("TwitterSentiments").value() < sent)) {
    common::SleepMillis(50);
  }
  show("drained");

  auto head = db.feed_manager().GetHeadMetrics("TwitterFeed");
  std::printf(
      "fetch-once: source emitted %lld records; the shared head section "
      "collected %lld — one fetch feeding three datasets\n",
      static_cast<long long>(sent),
      static_cast<long long>(head->records_collected.load()));

  // A taste of the analysis the ingested data supports: top sentiment
  // buckets over the persisted TwitterSentiments dataset.
  int buckets[5] = {0, 0, 0, 0, 0};
  CHECK_OK(db.ScanDataset("TwitterSentiments", [&](const adm::Value& t) {
    double s = t.GetField("sentiment")->AsDouble();
    ++buckets[std::min(4, static_cast<int>(s * 5))];
  }));
  std::printf("sentiment histogram: ");
  for (int b = 0; b < 5; ++b) std::printf("[%.1f) %d  ", 0.2 * (b + 1),
                                          buckets[b]);
  std::printf("\n");

  CHECK_OK(db.DisconnectFeed("SentimentFeed", "TwitterSentiments"));
  CHECK_OK(db.DisconnectFeed("ProcessedTwitterFeed", "ProcessedTweets"));
  CHECK_OK(db.DisconnectFeed("TwitterFeed", "Tweets"));
  feeds::ExternalSourceRegistry::Instance().UnregisterChannel(
      "10.1.0.1:9000");
  return 0;
}
