// Quickstart: bring up a 3-node AsterixDB-style instance, declare a
// datatype and a dataset with a spatial secondary index, define a data
// feed over a synthetic tweet source, connect it, watch records arrive,
// then run simple queries over the persisted (and indexed) data.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "asterix/asterix.h"
#include "common/clock.h"

using namespace asterix;  // NOLINT — example brevity

int main() {
  // 1. A small cluster: 3 nodes, heartbeats on.
  InstanceOptions options;
  options.num_nodes = 3;
  AsterixInstance db(options);
  if (!db.Start().ok()) return 1;
  std::printf("cluster up: 3 nodes\n");

  // 2. DDL: the Tweet datatype of the dissertation's Listing 3.1 (open
  //    type: extra fields welcome) and a dataset with an R-tree-style
  //    index on location.
  if (!db.CreateType(adm::TypeBuilder("Tweet", /*open=*/true)
                    .Field("id", adm::TypeTag::kString)
                    .Field("message_text", adm::TypeTag::kString)
                    .Field("latitude", adm::TypeTag::kDouble, true)
                      .Field("longitude", adm::TypeTag::kDouble, true)
                      .Build())
           .ok()) {
    return 1;
  }
  storage::DatasetDef tweets;
  tweets.name = "Tweets";
  tweets.datatype = "Tweet";
  tweets.primary_key_field = "id";
  tweets.indexes.push_back(
      {"locationIndex", "location", storage::IndexKind::kRTree});
  if (!db.CreateDataset(tweets).ok()) return 1;

  // 3. A primary feed over the built-in synthetic tweet adaptor
  //    (a TwitterAdaptor stand-in): 2000 tweets/sec, 10000 total.
  feeds::FeedDef feed;
  feed.name = "TweetFeed";
  feed.adaptor_alias = "synthetic_tweets";
  feed.adaptor_config = {{"rate", "2000"}, {"limit", "10000"}};
  if (!db.CreateFeed(feed).ok()) return 1;

  // 4. Connect: this is what builds and schedules the ingestion
  //    pipeline (intake -> store, hash-partitioned across the cluster).
  if (!db.ConnectFeed("TweetFeed", "Tweets", "Basic").ok()) return 1;
  std::printf("feed connected; ingesting...\n");

  // 5. Watch the dataset grow while the feed runs.
  for (int tick = 0; tick < 100; ++tick) {
    int64_t count = db.CountDataset("Tweets").value();
    if (tick % 10 == 0) {
      std::printf("  t=%4dms  records=%lld\n", tick * 100,
                  static_cast<long long>(count));
    }
    if (count >= 10000) break;
    common::SleepMillis(100);
  }

  if (!db.DisconnectFeed("TweetFeed", "Tweets").ok()) return 1;
  std::printf("feed disconnected; total=%lld\n",
              static_cast<long long>(db.CountDataset("Tweets").value()));

  // 6. Query the persisted data: a point lookup by primary key...
  auto record = db.GetRecord("Tweets", adm::Value::String("g0-7"));
  if (record.ok()) {
    std::printf("lookup g0-7: %s\n",
                record->GetField("message_text")->AsString().c_str());
  }

  // ...and a scan-side aggregate (hashtag histogram would go here).
  int64_t with_location = 0;
  if (!db.ScanDataset("Tweets", [&](const adm::Value& tweet) {
          if (tweet.GetField("latitude") != nullptr) ++with_location;
        }).ok()) {
    return 1;
  }
  std::printf("tweets with coordinates: %lld\n",
              static_cast<long long>(with_location));
  return 0;
}
