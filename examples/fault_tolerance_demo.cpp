// Fault-tolerance demo (Chapter 6): ingest under the FaultTolerant
// policy, kill the compute node mid-stream, and watch the Central Feed
// Manager detect the failure, transition surviving instances through the
// buffer/zombie/handoff protocol, substitute a healthy node, and resume —
// with at-least-once delivery making the recovery lossless.
//
//   $ ./examples/fault_tolerance_demo
#include <cstdio>

#include "asterix/asterix.h"
#include "common/clock.h"
#include "feeds/udf.h"
#include "gen/tweetgen.h"

using namespace asterix;  // NOLINT — example brevity

int main() {
  InstanceOptions options;
  options.num_nodes = 6;  // A..F; spare capacity for substitution
  AsterixInstance db(options);
  CHECK_OK(db.Start());

  gen::TweetGenServer tweetgen(0, gen::Pattern::Constant(2000, 6000));
  feeds::ExternalSourceRegistry::Instance().RegisterChannel(
      "src:9000", &tweetgen.channel());

  storage::DatasetDef sink;
  sink.name = "Tweets";
  sink.datatype = "Tweet";
  sink.primary_key_field = "id";
  sink.nodegroup = {"E", "F"};  // keep store partitions off compute nodes
  CHECK_OK(db.CreateDataset(sink));
  CHECK_OK(db.InstallUdf(feeds::AqlUdf::ExtractHashtags("addHashTags")));

  feeds::FeedDef feed;
  feed.name = "TweetFeed";
  feed.adaptor_alias = "TweetGenAdaptor";
  feed.adaptor_config = {{"sockets", "src:9000"}};
  feed.udf = "addHashTags";
  CHECK_OK(db.CreateFeed(feed));

  feeds::ConnectOptions copts;
  copts.compute_locations = {"B", "C"};  // pin compute for the demo
  CHECK_OK(db.ConnectFeed("TweetFeed", "Tweets", "FaultTolerant", copts));
  std::printf("connected: intake follows the adaptor, compute on B,C, "
              "store on E,F\n");

  tweetgen.Start();
  auto metrics = db.FeedMetrics("TweetFeed", "Tweets");

  int64_t prev = 0;
  for (int second = 1; second <= 6; ++second) {
    common::SleepMillis(1000);
    int64_t stored = metrics->records_stored.load();
    std::printf("t=%ds  stored=%6lld  (+%lld/s)%s\n", second,
                static_cast<long long>(stored),
                static_cast<long long>(stored - prev),
                second == 2 ? "   <-- killing compute node B now" : "");
    prev = stored;
    if (second == 2) db.KillNode("B");
  }
  tweetgen.Join();

  int64_t sent = tweetgen.tweets_sent();
  common::Stopwatch drain;
  while (db.CountDataset("Tweets").value() < sent &&
         drain.ElapsedMillis() < 15000) {
    common::SleepMillis(50);
  }

  auto conn = db.feed_manager().GetConnection("TweetFeed", "Tweets");
  std::printf("\nsource sent      : %lld\n",
              static_cast<long long>(sent));
  std::printf("records persisted: %lld\n",
              static_cast<long long>(db.CountDataset("Tweets").value()));
  std::printf("replayed (ALO)   : %lld\n",
              static_cast<long long>(metrics->records_replayed.load()));
  std::printf("compute now on   : ");
  for (const auto& node : conn->assign_locations[0]) {
    std::printf("%s ", node.c_str());
  }
  std::printf("(B was substituted)\n");

  CHECK_OK(db.DisconnectFeed("TweetFeed", "Tweets"));
  feeds::ExternalSourceRegistry::Instance().UnregisterChannel("src:9000");
  return 0;
}
