// Policy showcase (Chapters 4 & 7): the same bursty workload — arrival
// alternating well below and far above the pipeline's capacity — run
// under each built-in ingestion policy, plus a custom Spill_then_Throttle
// policy built by parameter override (Listing 4.6). Prints how each
// policy handled the excess records (Table 4.2 in action).
//
//   $ ./examples/policy_showcase
#include <cstdio>

#include "asterix/asterix.h"
#include "common/clock.h"
#include "feeds/udf.h"
#include "gen/tweetgen.h"

using namespace asterix;  // NOLINT — example brevity

namespace {

// An expensive UDF (2ms service time per record) caps the pipeline's
// capacity at ~500 records/sec so bursts create excess.
std::shared_ptr<feeds::Udf> SlowUdf() {
  return std::make_shared<feeds::JavaUdf>(
      "lib", "slow",
      [](const adm::Value& tweet) -> std::optional<adm::Value> {
        common::SleepMicros(2000);
        return tweet;
      });
}

struct RunResult {
  int64_t sent = 0;
  int64_t stored = 0;
  feeds::SubscriberStats queue_stats;
  bool feed_survived = true;
};

RunResult RunUnderPolicy(const std::string& policy) {
  InstanceOptions options;
  options.num_nodes = 2;
  AsterixInstance db(options);
  CHECK_OK(db.Start());
  CHECK_OK(db.CreatePolicy("Spill_then_Throttle", "Spill",
                           {{"max.spill.size.on.disk", "64KB"},
                            {"excess.records.throttle", "true"},
                            {"memory.budget", "64KB"}}));
  CHECK_OK(db.CreatePolicy("TightBasic", "Basic",
                           {{"memory.budget", "256KB"}}));
  CHECK_OK(db.CreatePolicy("TightDiscard", "Discard",
                           {{"memory.budget", "64KB"}}));
  CHECK_OK(db.CreatePolicy("TightThrottle", "Throttle",
                           {{"memory.budget", "64KB"}}));
  CHECK_OK(db.CreatePolicy("TightSpill", "Spill",
                           {{"memory.budget", "64KB"}}));

  gen::TweetGenServer tweetgen(0, gen::Pattern::Burst(
                                      /*low=*/100, /*high=*/2500,
                                      /*interval_ms=*/600, /*cycles=*/3));
  feeds::ExternalSourceRegistry::Instance().RegisterChannel(
      "burst:1", &tweetgen.channel());

  storage::DatasetDef sink;
  sink.name = "Sink";
  sink.datatype = "Tweet";
  sink.primary_key_field = "id";
  CHECK_OK(db.CreateDataset(sink));
  CHECK_OK(db.InstallUdf(SlowUdf()));

  feeds::FeedDef feed;
  feed.name = "BurstFeed";
  feed.adaptor_alias = "TweetGenAdaptor";
  feed.adaptor_config = {{"sockets", "burst:1"}};
  feed.udf = "lib#slow";
  CHECK_OK(db.CreateFeed(feed));
  CHECK_OK(db.ConnectFeed("BurstFeed", "Sink", policy,
                          {.compute_count = 1}));

  tweetgen.Start();
  tweetgen.Join();
  common::SleepMillis(2500);  // grace period to work the backlog

  RunResult result;
  result.sent = tweetgen.tweets_sent();
  result.stored = db.CountDataset("Sink").value();
  result.feed_survived =
      db.feed_manager().Health("BurstFeed", "Sink") !=
      feeds::CentralFeedManager::ConnectionHealth::kFailed;
  auto metrics = db.FeedMetrics("BurstFeed", "Sink");
  for (const auto& queue : metrics->IntakeQueues()) {
    result.queue_stats = queue->stats();
  }
  if (db.feed_manager().IsConnected("BurstFeed", "Sink")) {
    CHECK_OK(db.DisconnectFeed("BurstFeed", "Sink"));
  }
  feeds::ExternalSourceRegistry::Instance().UnregisterChannel("burst:1");
  return result;
}

}  // namespace

int main() {
  std::printf(
      "%-20s %8s %8s %10s %10s %8s %s\n", "policy", "sent", "stored",
      "discarded", "sampled", "spilled", "outcome");
  for (const char* policy :
       {"TightBasic", "TightSpill", "TightDiscard", "TightThrottle",
        "Elastic", "Spill_then_Throttle"}) {
    RunResult r = RunUnderPolicy(policy);
    std::printf("%-20s %8lld %8lld %10lld %10lld %8lld %s\n", policy,
                static_cast<long long>(r.sent),
                static_cast<long long>(r.stored),
                static_cast<long long>(r.queue_stats.records_discarded),
                static_cast<long long>(
                    r.queue_stats.records_throttled_away),
                static_cast<long long>(r.queue_stats.frames_spilled),
                r.feed_survived ? "feed alive"
                                : "feed terminated (budget exhausted)");
  }
  std::printf(
      "\nreading the table: Basic buffers until its budget pops; Spill "
      "parks excess on disk and catches up; Discard drops whole bursts; "
      "Throttle samples them; Elastic scales the compute stage out; the "
      "custom policy spills first, then throttles.\n");
  return 0;
}
