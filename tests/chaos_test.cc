// Chaos suite: scripted fault timelines injected through the FailPoint
// registry, asserting the paper's ingestion-fault-tolerance invariants —
// no lost records under at-least-once (§5.6), skip-bound enforcement
// (§6.1), bounded replay, and clean zombie→alive transitions (§6.2) —
// without killing a single process. Every scenario is deterministic for a
// fixed seed; the randomized soak prints its seed on failure so a red run
// reproduces exactly.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "asterix/asterix.h"
#include "common/clock.h"
#include "common/failpoint.h"
#include "feeds/trace.h"
#include "feeds/udf.h"
#include "gen/tweetgen.h"
#include "testing_util.h"

namespace asterix {
namespace {

using asterix::testing::FastOptions;
using asterix::testing::TweetsDataset;
using asterix::testing::WaitFor;
using common::ChaosSchedule;
using common::FailPointPolicy;
using common::FailPointRegistry;
using common::Status;

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!common::kFailPointsCompiledIn) {
      GTEST_SKIP() << "built with ASTERIX_FAILPOINTS=OFF";
    }
    FailPointRegistry::Instance().DisarmAll();
    db_ = std::make_unique<AsterixInstance>(FastOptions(6));  // A..F
    ASSERT_TRUE(db_->Start().ok());
  }
  void TearDown() override { FailPointRegistry::Instance().DisarmAll(); }

  /// A socket feed with a hashtag UDF, storing into "Sink" on
  /// `store_nodes` — same topology the fault-tolerance suite uses.
  void SetupFeed(const std::string& source_addr, gen::Channel* channel,
                 std::vector<std::string> store_nodes) {
    feeds::ExternalSourceRegistry::Instance().RegisterChannel(source_addr,
                                                              channel);
    ASSERT_TRUE(
        db_->CreateDataset(TweetsDataset("Sink", std::move(store_nodes)))
            .ok());
    ASSERT_TRUE(
        db_->InstallUdf(feeds::AqlUdf::ExtractHashtags("tags")).ok());
    feeds::FeedDef primary;
    primary.name = "Feed";
    primary.adaptor_alias = "socket_adaptor";
    primary.adaptor_config = {{"sockets", source_addr}};
    primary.udf = "tags";
    ASSERT_TRUE(db_->CreateFeed(primary).ok());
  }

  int64_t SinkCount() { return db_->CountDataset("Sink").value(); }

  /// Fixture-owned generator: declared before db_ so the channel outlives
  /// the instance — collect tasks may still poll it during teardown.
  gen::TweetGenServer& NewSource(uint64_t seed, gen::Pattern pattern) {
    sources_.push_back(
        std::make_unique<gen::TweetGenServer>(seed, std::move(pattern)));
    return *sources_.back();
  }

  std::vector<std::unique_ptr<gen::TweetGenServer>> sources_;
  std::unique_ptr<AsterixInstance> db_;
};

// Transient source faults: the adaptor's fetch fails every 7th pass; the
// collect stage reconnects and resumes. The failpoint fires before any
// payload is drained, so recovery is lossless even under plain replay-free
// reconnect.
TEST_F(ChaosTest, AdaptorFetchFaultsRecoverLosslessly) {
  auto& source = NewSource(0, gen::Pattern::Constant(1500, 3000));
  SetupFeed("chaos:1", &source.channel(), {"E", "F"});
  ASSERT_TRUE(db_->ConnectFeed("Feed", "Sink", "FaultTolerant").ok());

  auto& registry = FailPointRegistry::Instance();
  registry.Arm("feeds.adaptor.fetch",
               FailPointPolicy::Error(
                   Status::Unavailable("chaos: socket reset"))
                   .EveryNth(7));
  source.Start();
  source.Join();
  int64_t sent = source.tweets_sent();
  ASSERT_GT(sent, 1000);
  ASSERT_TRUE(WaitFor([&] { return SinkCount() == sent; }, 20000))
      << "sent=" << sent << " stored=" << SinkCount();
  EXPECT_GT(registry.Fires("feeds.adaptor.fetch"), 0);
  auto conn = db_->feed_manager().GetConnection("Feed", "Sink");
  ASSERT_TRUE(conn.ok());
  EXPECT_FALSE(conn->terminated);
  feeds::ExternalSourceRegistry::Instance().UnregisterChannel("chaos:1");
}

// Poison records: the UDF throws on every 3rd evaluation. A frame-level
// throw makes the MetaFeed sandbox reprocess the frame record-at-a-time;
// fires landing during that pass pin the blame on single records, which
// are skipped (soft failures), never acked, and replayed by the
// at-least-once protocol until a pass succeeds — so the dataset still
// converges to every record sent.
TEST_F(ChaosTest, PoisonRecordsAreSandboxedAndReplayed) {
  auto& source = NewSource(0, gen::Pattern::Constant(1500, 2500));
  SetupFeed("chaos:2", &source.channel(), {"E", "F"});
  ASSERT_TRUE(db_->ConnectFeed("Feed", "Sink", "FaultTolerant").ok());

  FailPointRegistry::Instance().Arm(
      "feeds.udf.apply",
      FailPointPolicy::Throw("chaos: poison record").EveryNth(3));
  source.Start();
  source.Join();
  int64_t sent = source.tweets_sent();
  ASSERT_TRUE(WaitFor([&] { return SinkCount() == sent; }, 20000))
      << "sent=" << sent << " stored=" << SinkCount();
  auto metrics = db_->FeedMetrics("Feed", "Sink");
  ASSERT_NE(metrics, nullptr);
  EXPECT_GT(metrics->soft_failures.load(), 0);
  feeds::ExternalSourceRegistry::Instance().UnregisterChannel("chaos:2");
}

// A UDF that throws on *every* record is a bug, not bad data: once the
// consecutive-soft-failure bound trips, the sandbox aborts the feed
// instead of skipping forever (§6.1's skip bound).
TEST_F(ChaosTest, SkipBoundTerminatesPoisonedFeed) {
  auto& source = NewSource(0, gen::Pattern::Constant(1000, 8000));
  SetupFeed("chaos:3", &source.channel(), {"E", "F"});
  ASSERT_TRUE(db_->CreatePolicy("Poisoned", "Basic",
                                {{"max.consecutive.soft.failures", "8"}})
                  .ok());
  ASSERT_TRUE(db_->ConnectFeed("Feed", "Sink", "Poisoned").ok());

  FailPointRegistry::Instance().Arm(
      "feeds.udf.apply", FailPointPolicy::Throw("chaos: total poison"));
  source.Start();
  ASSERT_TRUE(WaitFor(
      [&] { return !db_->feed_manager().IsConnected("Feed", "Sink"); },
      10000));
  source.Stop();
  source.Join();
  feeds::ExternalSourceRegistry::Instance().UnregisterChannel("chaos:3");
}

// Lost acks: every other grouped ack message vanishes on the bus. The
// pending ledger times the victims out and replays them; once acks flow
// again the replay traffic stops (bounded replay, not a livelock).
TEST_F(ChaosTest, DroppedAcksForceBoundedReplay) {
  auto& source = NewSource(0, gen::Pattern::Constant(1500, 2500));
  SetupFeed("chaos:4", &source.channel(), {"E", "F"});
  // Short ack timeout so replays happen within the test budget.
  ASSERT_TRUE(db_->CreatePolicy("Twitchy", "FaultTolerant",
                                {{"ack.timeout.ms", "300"}})
                  .ok());
  ASSERT_TRUE(db_->ConnectFeed("Feed", "Sink", "Twitchy").ok());

  auto& registry = FailPointRegistry::Instance();
  registry.Arm("feeds.ack.publish",
               FailPointPolicy::Error(
                   Status::Unavailable("chaos: ack lost"))
                   .EveryNth(2));
  source.Start();
  source.Join();
  int64_t sent = source.tweets_sent();
  ASSERT_TRUE(WaitFor([&] { return SinkCount() == sent; }, 20000))
      << "sent=" << sent << " stored=" << SinkCount();
  auto metrics = db_->FeedMetrics("Feed", "Sink");
  ASSERT_NE(metrics, nullptr);
  EXPECT_GT(metrics->records_replayed.load(), 0);

  // Restore the ack path and let the ledger drain: replay must quiesce.
  registry.Disarm("feeds.ack.publish");
  common::SleepMillis(1000);  // > 3x the 300ms ack timeout
  int64_t replayed = metrics->records_replayed.load();
  common::SleepMillis(500);
  EXPECT_EQ(metrics->records_replayed.load(), replayed);
  EXPECT_EQ(SinkCount(), sent);  // upsert-by-key absorbed every replay
  feeds::ExternalSourceRegistry::Instance().UnregisterChannel("chaos:4");
}

// Gray failure: the compute node stays up but its heartbeats stop
// arriving. The monitor declares it failed, the zombie protocol moves the
// compute stage to a substitute, and — because the "dead" node's tasks
// are frozen and drained, not lost — at-least-once recovery is lossless.
// Disarming mid-test models the node coming back clean.
TEST_F(ChaosTest, SilencedHeartbeatsTriggerSubstitution) {
  auto& source = NewSource(0, gen::Pattern::Constant(1500, 4000));
  SetupFeed("chaos:5", &source.channel(), {"E", "F"});
  // Pin the compute stage away from the intake node so the silenced node
  // hosts only compute work (pure compute-loss, Figure 6.3).
  ASSERT_TRUE(db_->ConnectFeed("Feed", "Sink", "FaultTolerant",
                               {.compute_count = 1})
                  .ok());
  auto pre = db_->feed_manager().GetConnection("Feed", "Sink");
  ASSERT_TRUE(pre.ok());
  std::string intake_node = pre->intake_locations[0];
  ASSERT_TRUE(db_->DisconnectFeed("Feed", "Sink").ok());
  feeds::ConnectOptions copts;
  for (const std::string& node : {"A", "B", "C", "D"}) {
    if (node != intake_node && copts.compute_locations.empty()) {
      copts.compute_locations.push_back(node);
    }
  }
  ASSERT_TRUE(
      db_->ConnectFeed("Feed", "Sink", "FaultTolerant", copts).ok());
  auto conn = db_->feed_manager().GetConnection("Feed", "Sink");
  ASSERT_TRUE(conn.ok());
  std::string compute_node = conn->assign_locations[0][0];
  ASSERT_NE(compute_node, conn->intake_locations[0]);

  source.Start();
  ASSERT_TRUE(WaitFor([&] { return SinkCount() > 500; }, 5000));

  auto& registry = FailPointRegistry::Instance();
  registry.Arm("hyracks.node.heartbeat",
               FailPointPolicy::Error(
                   Status::Unavailable("chaos: heartbeats dropped"))
                   .OnInstance(compute_node));
  // The cluster substitutes the silenced node out of the pipeline.
  ASSERT_TRUE(WaitFor(
      [&] {
        auto c = db_->feed_manager().GetConnection("Feed", "Sink");
        return c.ok() && !c->terminated &&
               c->assign_locations[0][0] != compute_node;
      },
      10000));
  registry.Disarm("hyracks.node.heartbeat");  // node comes back clean

  source.Join();
  int64_t sent = source.tweets_sent();
  ASSERT_TRUE(WaitFor([&] { return SinkCount() == sent; }, 20000))
      << "sent=" << sent << " stored=" << SinkCount();
  conn = db_->feed_manager().GetConnection("Feed", "Sink");
  ASSERT_TRUE(conn.ok());
  EXPECT_FALSE(conn->terminated);
  for (const auto& stage : conn->assign_locations) {
    for (const auto& node : stage) EXPECT_NE(node, compute_node);
  }
  feeds::ExternalSourceRegistry::Instance().UnregisterChannel("chaos:5");
}

// A flaky disk under the WAL: appends fail with 5% probability for the
// first 1.5s of the run (scripted via ChaosSchedule), rejecting records at
// the persistence point. Each rejection is a store-stage soft failure that
// at-least-once replays, so the dataset still converges to exactly the
// records sent.
TEST_F(ChaosTest, WalAppendFaultsReplayToExactCount) {
  auto& source = NewSource(0, gen::Pattern::Constant(1500, 2500));
  SetupFeed("chaos:6", &source.channel(), {"E", "F"});
  ASSERT_TRUE(db_->ConnectFeed("Feed", "Sink", "FaultTolerant").ok());

  ChaosSchedule schedule(/*seed=*/7);
  schedule
      .ArmAt(100, "storage.wal.append",
             FailPointPolicy::Error(Status::IOError("chaos: disk hiccup"))
                 .WithProbability(0.05))
      .DisarmAt(1500, "storage.wal.append");
  schedule.Start();
  source.Start();
  source.Join();
  int64_t sent = source.tweets_sent();
  ASSERT_TRUE(WaitFor([&] { return SinkCount() == sent; }, 20000))
      << "sent=" << sent << " stored=" << SinkCount()
      << " seed=" << schedule.seed();
  auto metrics = db_->FeedMetrics("Feed", "Sink");
  ASSERT_NE(metrics, nullptr);
  EXPECT_GT(metrics->soft_failures.load(), 0);
  schedule.Stop();
  feeds::ExternalSourceRegistry::Instance().UnregisterChannel("chaos:6");
}

// The soak: one seed drives a whole timeline of overlapping faults —
// socket resets, flaky WAL, lost acks, poison records, and latency probes
// in the subscriber queues, task pump, and LSM flush path. The invariant
// under all of it: with the FaultTolerant policy, every record sent is
// eventually stored exactly once and the connection survives. On failure
// the seed is printed; re-running with it reproduces the exact policies.
TEST_F(ChaosTest, ChaosSoakIsLosslessForFixedSeed) {
  const uint64_t seed = 20260806;
  auto& source = NewSource(0, gen::Pattern::Constant(2000, 2500));
  SetupFeed("chaos:soak", &source.channel(), {"E", "F"});
  ASSERT_TRUE(db_->ConnectFeed("Feed", "Sink", "FaultTolerant").ok());

  ChaosSchedule schedule(seed);
  schedule
      .ArmAt(100, "feeds.adaptor.fetch",
             FailPointPolicy::Error(
                 Status::Unavailable("chaos: socket reset"))
                 .EveryNth(11))
      .ArmAt(200, "storage.wal.append",
             FailPointPolicy::Error(Status::IOError("chaos: disk hiccup"))
                 .WithProbability(0.03))
      .ArmAt(300, "feeds.ack.publish",
             FailPointPolicy::Error(Status::Unavailable("chaos: ack lost"))
                 .EveryNth(3))
      .ArmAt(400, "feeds.subscriber.deliver",
             FailPointPolicy::Delay(2).EveryNth(50))
      .ArmAt(500, "hyracks.task.pump",
             FailPointPolicy::Delay(1).EveryNth(100))
      .ArmAt(600, "storage.lsm.flush", FailPointPolicy::Delay(5))
      .ArmAt(700, "feeds.udf.apply",
             FailPointPolicy::Throw("chaos: poison record")
                 .WithProbability(0.01))
      .ArmAt(800, "feeds.meta.process_frame",
             FailPointPolicy::Delay(1).EveryNth(20))
      // Injected memory pressure on the governor's "wal" pool: Append
      // fails typed (ResourceExhausted) before any byte lands, so the
      // at-least-once machinery replays it like any other soft fault.
      .ArmAt(900, "common.memgov.reserve",
             FailPointPolicy::Error(
                 Status::ResourceExhausted("chaos: memory pressure"))
                 .WithProbability(0.02)
                 .OnInstance("wal"));
  schedule.Start();
  source.Start();
  source.Join();
  int64_t sent = source.tweets_sent();
  ASSERT_GT(sent, 2000);
  int64_t fetch_fires =
      FailPointRegistry::Instance().Fires("feeds.adaptor.fetch");
  schedule.Stop();  // joins the driver and disarms every touched site

  ASSERT_TRUE(WaitFor([&] { return SinkCount() == sent; }, 30000))
      << "seed=" << seed << " sent=" << sent
      << " stored=" << SinkCount();
  EXPECT_GT(fetch_fires, 0) << "seed=" << seed;
  auto conn = db_->feed_manager().GetConnection("Feed", "Sink");
  ASSERT_TRUE(conn.ok());
  EXPECT_FALSE(conn->terminated) << "seed=" << seed;
  feeds::ExternalSourceRegistry::Instance().UnregisterChannel(
      "chaos:soak");
}

// A Spill feed whose frame-path budget is refused outright: every
// governor admission on the "frame_path" pool fails, so the subscriber
// queues treat each arrival as over-budget and park it on disk. Spill is
// lossless by construction — excess is deferred, never dropped — so the
// dataset must still converge to every record sent, with the spill
// machinery (not luck) absorbing the pressure.
TEST_F(ChaosTest, SpillFeedStaysLosslessUnderZeroFrameBudget) {
  auto& source = NewSource(0, gen::Pattern::Constant(1500, 2500));
  SetupFeed("chaos:memspill", &source.channel(), {"E", "F"});
  ASSERT_TRUE(db_->ConnectFeed("Feed", "Sink", "Spill").ok());

  auto& registry = FailPointRegistry::Instance();
  registry.Arm("common.memgov.reserve",
               FailPointPolicy::Error(
                   Status::ResourceExhausted("chaos: zero frame budget"))
                   .OnInstance("frame_path"));
  source.Start();
  source.Join();
  int64_t sent = source.tweets_sent();
  ASSERT_GT(sent, 1000);
  ASSERT_TRUE(WaitFor([&] { return SinkCount() == sent; }, 30000))
      << "sent=" << sent << " stored=" << SinkCount();
  EXPECT_GT(registry.Fires("common.memgov.reserve"), 0);
  // The pressure was absorbed by spilling, and everything spilled came
  // back: restored == spilled on the intake queues.
  auto metrics = db_->FeedMetrics("Feed", "Sink");
  ASSERT_NE(metrics, nullptr);
  int64_t spilled = 0;
  int64_t restored = 0;
  for (const auto& queue : metrics->IntakeQueues()) {
    auto stats = queue->stats();
    spilled += stats.frames_spilled;
    restored += stats.frames_restored;
  }
  EXPECT_GT(spilled, 0);
  EXPECT_EQ(restored, spilled);
  registry.Disarm("common.memgov.reserve");
  feeds::ExternalSourceRegistry::Instance().UnregisterChannel(
      "chaos:memspill");
}

// Trace-span conservation under faults: re-run the flaky-WAL scenario with
// 100% trace sampling. Every trace handed out must terminate — reach a
// store-stage span, record a soft failure, be a replay trace (fresh traces
// minted for re-sent records), or end in an explicit drop span. A trace
// with none of those means a frame vanished without the observability
// layer noticing, which is exactly what the layer exists to rule out.
TEST_F(ChaosTest, TraceSpansConservedUnderWalFaults) {
  feeds::Tracer& tracer = feeds::Tracer::Instance();
  tracer.Reset();
  tracer.SetRingCapacity(1 << 18);
  tracer.SetSamplingRate(1.0);

  auto& source = NewSource(0, gen::Pattern::Constant(1500, 2500));
  SetupFeed("chaos:7", &source.channel(), {"E", "F"});
  ASSERT_TRUE(db_->ConnectFeed("Feed", "Sink", "FaultTolerant").ok());

  ChaosSchedule schedule(/*seed=*/7);
  schedule
      .ArmAt(100, "storage.wal.append",
             FailPointPolicy::Error(Status::IOError("chaos: disk hiccup"))
                 .WithProbability(0.05))
      .DisarmAt(1500, "storage.wal.append");
  schedule.Start();
  source.Start();
  source.Join();
  int64_t sent = source.tweets_sent();
  ASSERT_TRUE(WaitFor([&] { return SinkCount() == sent; }, 20000))
      << "sent=" << sent << " stored=" << SinkCount()
      << " seed=" << schedule.seed();
  schedule.Stop();

  // Let replay traffic quiesce so the last re-sent records' traces finish.
  auto metrics = db_->FeedMetrics("Feed", "Sink");
  ASSERT_NE(metrics, nullptr);
  ASSERT_TRUE(WaitFor(
      [&] {
        int64_t replayed = metrics->records_replayed.load();
        common::SleepMillis(300);
        return metrics->records_replayed.load() == replayed;
      },
      15000));
  tracer.SetSamplingRate(0);
  common::SleepMillis(300);  // drain spans of the final in-flight frames

  std::vector<uint64_t> started = tracer.StartedTraceIds();
  ASSERT_GT(started.size(), 0u);
  std::set<uint64_t> terminated;
  for (const feeds::TraceSpan& span : tracer.Spans()) {
    if (span.stage == "store" || span.stage == "soft-failure" ||
        span.stage == "replay" || span.status == "discarded" ||
        span.status == "throttled" || span.status == "spilled") {
      terminated.insert(span.trace_id);
    }
  }
  int64_t lost = 0;
  for (uint64_t id : started) {
    if (terminated.count(id) != 0) continue;
    ++lost;
    ADD_FAILURE() << "trace " << id << " has no terminal span; its spans:\n"
                  << [&] {
                       std::string out;
                       for (const feeds::TraceSpan& s :
                            tracer.SpansForTrace(id)) {
                         out += "  " + s.stage + "@" + s.where +
                                " status=" + s.status + "\n";
                       }
                       return out.empty() ? std::string("  (none)\n") : out;
                     }();
    if (lost >= 5) break;  // enough to diagnose; don't flood the log
  }
  EXPECT_EQ(lost, 0) << "seed=" << schedule.seed()
                     << " traces=" << started.size();

  // The span-tree dump renders real trees for this run.
  std::string json = tracer.DumpJson(4);
  EXPECT_NE(json.find("\"stage\":\"store\""), std::string::npos);

  feeds::ExternalSourceRegistry::Instance().UnregisterChannel("chaos:7");
  tracer.Reset();
}

// --- Sanitizer soak ---------------------------------------------------------
//
// Registered a second time in ctest as `chaos_sanitizer_soak` with label
// `sanitizer`: the asan-ubsan preset runs it to scrub the two seams where
// object lifetimes are hairiest — ack-timeout replay (the ledger retires
// entries while the publisher is still dropping acks) and joint teardown
// (DisconnectFeed destroys subscriber queues and joints while frames are
// in flight and replays are pending). Counts cannot be exact across a
// mid-stream teardown (fetched-but-unstored frames die with the
// connection, by design), so the assertions are structural: replay
// happened, progress resumed after every reconnect, and the final
// connection is healthy. The sanitizers are the real oracle.
using SanitizerSoak = ChaosTest;

TEST_F(SanitizerSoak, AckReplayUnderJointTeardown) {
  const uint64_t seed = 20260806;
  auto& source = NewSource(0, gen::Pattern::Constant(2500, 4000));
  SetupFeed("chaos:soak-san", &source.channel(), {"E", "F"});
  ASSERT_TRUE(db_->CreatePolicy("TwitchySoak", "FaultTolerant",
                                {{"ack.timeout.ms", "200"}})
                  .ok());
  ASSERT_TRUE(db_->ConnectFeed("Feed", "Sink", "TwitchySoak").ok());

  auto& registry = FailPointRegistry::Instance();
  registry.Arm("feeds.ack.publish",
               FailPointPolicy::Error(
                   Status::Unavailable("chaos: ack lost"))
                   .EveryNth(2));
  source.Start();

  // Phase 1: let replay engage while acks are being dropped.
  auto metrics = db_->FeedMetrics("Feed", "Sink");
  ASSERT_NE(metrics, nullptr);
  ASSERT_TRUE(WaitFor(
      [&] {
        return SinkCount() > 0 && metrics->records_replayed.load() > 0;
      },
      20000))
      << "seed=" << seed << " stored=" << SinkCount();

  // Phase 2: tear the joint down and rebuild it, three times, while the
  // source keeps streaming and replays are pending.
  for (int cycle = 0; cycle < 3; ++cycle) {
    int64_t before = SinkCount();
    ASSERT_TRUE(db_->DisconnectFeed("Feed", "Sink").ok())
        << "seed=" << seed << " cycle=" << cycle;
    auto torn = db_->feed_manager().GetConnection("Feed", "Sink");
    EXPECT_TRUE(!torn.ok() || torn->terminated)
        << "seed=" << seed << " cycle=" << cycle;
    ASSERT_TRUE(db_->ConnectFeed("Feed", "Sink", "TwitchySoak").ok())
        << "seed=" << seed << " cycle=" << cycle;
    metrics = db_->FeedMetrics("Feed", "Sink");
    ASSERT_NE(metrics, nullptr);
    ASSERT_TRUE(WaitFor([&] { return SinkCount() > before; }, 20000))
        << "seed=" << seed << " cycle=" << cycle << " stuck at " << before;
  }

  // Phase 3: restore the ack path and let the run quiesce cleanly.
  source.Join();
  registry.Disarm("feeds.ack.publish");
  int64_t sent = source.tweets_sent();
  ASSERT_GT(sent, 2000);
  ASSERT_TRUE(WaitFor(
      [&] {
        int64_t now = SinkCount();
        common::SleepMillis(200);
        return SinkCount() == now;  // stores stopped arriving
      },
      20000))
      << "seed=" << seed;
  EXPECT_LE(SinkCount(), sent) << "seed=" << seed;
  EXPECT_GT(SinkCount(), 0) << "seed=" << seed;
  auto conn = db_->feed_manager().GetConnection("Feed", "Sink");
  ASSERT_TRUE(conn.ok()) << "seed=" << seed;
  EXPECT_FALSE(conn->terminated) << "seed=" << seed;
  feeds::ExternalSourceRegistry::Instance().UnregisterChannel(
      "chaos:soak-san");
}

}  // namespace
}  // namespace asterix
