// Shared helpers for the test suite: polling, frame/record builders, the
// instance/dataset boilerplate that every end-to-end test repeats, and an
// optional operator-new interposer for allocation-count assertions.
//
// Alloc interposer: exactly ONE translation unit per binary defines
// ASTERIX_ALLOC_INTERPOSER before including this header; that TU gets
// global operator new/delete replacements which count allocations into
// per-thread and process-wide tallies. Every other TU (and binaries that
// never define the macro) sees only the read-side API: AllocScope,
// ThreadAllocStats, AllocInterposerActive. Under ASan/TSan the
// replacements are compiled out (sanitizers own malloc), and
// AllocInterposerActive() reports false so tests can skip.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <new>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "adm/value.h"
#include "asterix/asterix.h"
#include "common/clock.h"
#include "hyracks/frame.h"
#include "storage/dataset.h"

// Sanitizers replace malloc with their own bookkeeping allocator;
// user-provided operator new replacements break their interception.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define ASTERIX_SANITIZER_MALLOC 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define ASTERIX_SANITIZER_MALLOC 1
#endif
#endif

namespace asterix {
namespace testing {

namespace alloc_internal {
// Constant-initialized, so safe to bump from allocations that run during
// static initialization. Inline (C++17): one instance per binary even
// though the header is included from many TUs.
inline thread_local int64_t tl_count = 0;
inline thread_local int64_t tl_bytes = 0;
inline std::atomic<int64_t> g_count{0};
inline std::atomic<int64_t> g_bytes{0};

inline void Note(std::size_t bytes) noexcept {
  tl_count += 1;
  tl_bytes += static_cast<int64_t>(bytes);
  g_count.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(static_cast<int64_t>(bytes), std::memory_order_relaxed);
}
}  // namespace alloc_internal

struct AllocStats {
  int64_t count = 0;
  int64_t bytes = 0;
};

/// Allocations made by the calling thread since it started (zeros forever
/// when this binary carries no interposer).
inline AllocStats ThreadAllocStats() {
  return {alloc_internal::tl_count, alloc_internal::tl_bytes};
}

/// Process-wide tallies across all threads.
inline AllocStats GlobalAllocStats() {
  return {alloc_internal::g_count.load(std::memory_order_relaxed),
          alloc_internal::g_bytes.load(std::memory_order_relaxed)};
}

/// True iff this binary's operator new is instrumented. Heuristic: by the
/// time any test body runs, the harness itself has allocated thousands of
/// times, so a zero global count means the interposer is absent (not
/// compiled in, or disabled under a sanitizer). Gate alloc assertions on
/// this and GTEST_SKIP otherwise.
inline bool AllocInterposerActive() {
  return alloc_internal::g_count.load(std::memory_order_relaxed) > 0;
}

/// Counts this thread's heap allocations across a region:
///   AllocScope scope;
///   ... hot path ...
///   EXPECT_ALLOCS_UNDER(scope, 0);
class AllocScope {
 public:
  AllocScope() : start_(ThreadAllocStats()) {}
  int64_t count() const {
    return ThreadAllocStats().count - start_.count;
  }
  int64_t bytes() const {
    return ThreadAllocStats().bytes - start_.bytes;
  }

 private:
  AllocStats start_;
};

/// True when the binary is built with ThreadSanitizer. Tests that assert
/// wall-clock throughput (records produced per real second) use this to
/// skip those assertions: TSan's ~10-20x slowdown makes any real-time
/// rate bound meaningless regardless of the code under test, while the
/// rest of the test still runs and contributes race coverage.
#if defined(__SANITIZE_THREAD__)
inline constexpr bool kTsanActive = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
inline constexpr bool kTsanActive = true;
#else
inline constexpr bool kTsanActive = false;
#endif
#else
inline constexpr bool kTsanActive = false;
#endif

/// Waits until `predicate` holds or `timeout_ms` elapses; returns the
/// predicate's final verdict either way.
inline bool WaitFor(const std::function<bool()>& predicate,
                    int64_t timeout_ms) {
  common::Stopwatch watch;
  while (watch.ElapsedMillis() < timeout_ms) {
    if (predicate()) return true;
    common::SleepMillis(10);
  }
  return predicate();
}

/// Asserts a negative: `predicate` must still be false after observing it
/// for `hold_ms`. Returns true iff the predicate stayed false the whole
/// time. (This is WaitFor's complement — polling, not one blind sleep, so
/// a violation is reported as soon as it happens.)
inline bool StaysFalseFor(const std::function<bool()>& predicate,
                          int64_t hold_ms) {
  return !WaitFor(predicate, hold_ms);
}

/// Runs `fn` on a detached-duty thread after `delay_ms` — the standard
/// shape for "the other side arrives later" blocking tests. The returned
/// thread must be joined by the caller.
inline std::thread After(int64_t delay_ms, std::function<void()> fn) {
  return std::thread([delay_ms, fn = std::move(fn)] {
    common::SleepMillis(delay_ms);
    fn();
  });
}

/// A frame of `n` records {id: "r<i>", n: i} for i in [start, start+n).
inline hyracks::FramePtr FrameOf(int n, int start = 0) {
  std::vector<adm::Value> records;
  for (int i = start; i < start + n; ++i) {
    records.push_back(adm::Value::Record(
        {{"id", adm::Value::String("r" + std::to_string(i))},
         {"n", adm::Value::Int64(i)}}));
  }
  return hyracks::MakeFrame(std::move(records));
}

/// A Tweet-typed dataset keyed by "id", optionally pinned to a nodegroup.
inline storage::DatasetDef TweetsDataset(
    const std::string& name, std::vector<std::string> nodegroup = {}) {
  storage::DatasetDef def;
  def.name = name;
  def.datatype = "Tweet";
  def.primary_key_field = "id";
  def.nodegroup = std::move(nodegroup);
  return def;
}

/// Instance options with short heartbeat timings so failure-detection
/// tests converge in milliseconds instead of seconds. Under TSan the
/// detection window widens instead: at 10-20x slowdown on a small host a
/// *healthy* node's heartbeat thread can miss a 100 ms window just by
/// not being scheduled, and the resulting false node-death tears the
/// feed down mid-test. Detection-dependent waits use multi-second
/// WaitFor budgets, which dwarf either setting.
inline InstanceOptions FastOptions(int nodes) {
  InstanceOptions options;
  options.num_nodes = nodes;
  options.heartbeat_period_ms = kTsanActive ? 50 : 10;
  options.heartbeat_timeout_ms = kTsanActive ? 2000 : 100;
  return options;
}

}  // namespace testing
}  // namespace asterix

/// Asserts the scope saw at most `n` heap allocations on this thread.
#define EXPECT_ALLOCS_UNDER(scope, n)                                     \
  EXPECT_LE((scope).count(), static_cast<int64_t>(n))                     \
      << "heap allocations in scope: " << (scope).count() << " ("         \
      << (scope).bytes() << " bytes)"

#if defined(ASTERIX_ALLOC_INTERPOSER) && !defined(ASTERIX_SANITIZER_MALLOC)
// Global operator new/delete replacements (one TU per binary; see the
// header comment). Replacements must not call any allocating function,
// so they go straight to malloc/free.

namespace asterix {
namespace testing {
namespace alloc_internal {
inline void* AllocOrThrow(std::size_t size) {
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  Note(size);
  return p;
}

inline void* AlignedAlloc(std::size_t size, std::size_t align) noexcept {
  if (align < alignof(void*)) align = alignof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, size != 0 ? size : 1) != 0) return nullptr;
  return p;
}
}  // namespace alloc_internal
}  // namespace testing
}  // namespace asterix

void* operator new(std::size_t size) {
  return asterix::testing::alloc_internal::AllocOrThrow(size);
}
void* operator new[](std::size_t size) {
  return asterix::testing::alloc_internal::AllocOrThrow(size);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  void* p = std::malloc(size != 0 ? size : 1);
  if (p != nullptr) asterix::testing::alloc_internal::Note(size);
  return p;
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  void* p = std::malloc(size != 0 ? size : 1);
  if (p != nullptr) asterix::testing::alloc_internal::Note(size);
  return p;
}
void* operator new(std::size_t size, std::align_val_t align) {
  void* p = asterix::testing::alloc_internal::AlignedAlloc(
      size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  asterix::testing::alloc_internal::Note(size);
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = asterix::testing::alloc_internal::AlignedAlloc(
      size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  asterix::testing::alloc_internal::Note(size);
  return p;
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  void* p = asterix::testing::alloc_internal::AlignedAlloc(
      size, static_cast<std::size_t>(align));
  if (p != nullptr) asterix::testing::alloc_internal::Note(size);
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  void* p = asterix::testing::alloc_internal::AlignedAlloc(
      size, static_cast<std::size_t>(align));
  if (p != nullptr) asterix::testing::alloc_internal::Note(size);
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
#endif  // ASTERIX_ALLOC_INTERPOSER && !ASTERIX_SANITIZER_MALLOC

