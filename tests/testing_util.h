// Shared helpers for the test suite: polling, frame/record builders, and
// the instance/dataset boilerplate that every end-to-end test repeats.
#ifndef ASTERIX_TESTS_TESTING_UTIL_H_
#define ASTERIX_TESTS_TESTING_UTIL_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "adm/value.h"
#include "asterix/asterix.h"
#include "common/clock.h"
#include "hyracks/frame.h"
#include "storage/dataset.h"

namespace asterix {
namespace testing {

/// Waits until `predicate` holds or `timeout_ms` elapses; returns the
/// predicate's final verdict either way.
inline bool WaitFor(const std::function<bool()>& predicate,
                    int64_t timeout_ms) {
  common::Stopwatch watch;
  while (watch.ElapsedMillis() < timeout_ms) {
    if (predicate()) return true;
    common::SleepMillis(10);
  }
  return predicate();
}

/// A frame of `n` records {id: "r<i>", n: i} for i in [start, start+n).
inline hyracks::FramePtr FrameOf(int n, int start = 0) {
  std::vector<adm::Value> records;
  for (int i = start; i < start + n; ++i) {
    records.push_back(adm::Value::Record(
        {{"id", adm::Value::String("r" + std::to_string(i))},
         {"n", adm::Value::Int64(i)}}));
  }
  return hyracks::MakeFrame(std::move(records));
}

/// A Tweet-typed dataset keyed by "id", optionally pinned to a nodegroup.
inline storage::DatasetDef TweetsDataset(
    const std::string& name, std::vector<std::string> nodegroup = {}) {
  storage::DatasetDef def;
  def.name = name;
  def.datatype = "Tweet";
  def.primary_key_field = "id";
  def.nodegroup = std::move(nodegroup);
  return def;
}

/// Instance options with short heartbeat timings so failure-detection
/// tests converge in milliseconds instead of seconds.
inline InstanceOptions FastOptions(int nodes) {
  InstanceOptions options;
  options.num_nodes = nodes;
  options.heartbeat_period_ms = 10;
  options.heartbeat_timeout_ms = 100;
  return options;
}

}  // namespace testing
}  // namespace asterix

#endif  // ASTERIX_TESTS_TESTING_UTIL_H_
