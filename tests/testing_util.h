// Shared helpers for the test suite: polling, frame/record builders, and
// the instance/dataset boilerplate that every end-to-end test repeats.
#pragma once

#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "adm/value.h"
#include "asterix/asterix.h"
#include "common/clock.h"
#include "hyracks/frame.h"
#include "storage/dataset.h"

namespace asterix {
namespace testing {

/// True when the binary is built with ThreadSanitizer. Tests that assert
/// wall-clock throughput (records produced per real second) use this to
/// skip those assertions: TSan's ~10-20x slowdown makes any real-time
/// rate bound meaningless regardless of the code under test, while the
/// rest of the test still runs and contributes race coverage.
#if defined(__SANITIZE_THREAD__)
inline constexpr bool kTsanActive = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
inline constexpr bool kTsanActive = true;
#else
inline constexpr bool kTsanActive = false;
#endif
#else
inline constexpr bool kTsanActive = false;
#endif

/// Waits until `predicate` holds or `timeout_ms` elapses; returns the
/// predicate's final verdict either way.
inline bool WaitFor(const std::function<bool()>& predicate,
                    int64_t timeout_ms) {
  common::Stopwatch watch;
  while (watch.ElapsedMillis() < timeout_ms) {
    if (predicate()) return true;
    common::SleepMillis(10);
  }
  return predicate();
}

/// Asserts a negative: `predicate` must still be false after observing it
/// for `hold_ms`. Returns true iff the predicate stayed false the whole
/// time. (This is WaitFor's complement — polling, not one blind sleep, so
/// a violation is reported as soon as it happens.)
inline bool StaysFalseFor(const std::function<bool()>& predicate,
                          int64_t hold_ms) {
  return !WaitFor(predicate, hold_ms);
}

/// Runs `fn` on a detached-duty thread after `delay_ms` — the standard
/// shape for "the other side arrives later" blocking tests. The returned
/// thread must be joined by the caller.
inline std::thread After(int64_t delay_ms, std::function<void()> fn) {
  return std::thread([delay_ms, fn = std::move(fn)] {
    common::SleepMillis(delay_ms);
    fn();
  });
}

/// A frame of `n` records {id: "r<i>", n: i} for i in [start, start+n).
inline hyracks::FramePtr FrameOf(int n, int start = 0) {
  std::vector<adm::Value> records;
  for (int i = start; i < start + n; ++i) {
    records.push_back(adm::Value::Record(
        {{"id", adm::Value::String("r" + std::to_string(i))},
         {"n", adm::Value::Int64(i)}}));
  }
  return hyracks::MakeFrame(std::move(records));
}

/// A Tweet-typed dataset keyed by "id", optionally pinned to a nodegroup.
inline storage::DatasetDef TweetsDataset(
    const std::string& name, std::vector<std::string> nodegroup = {}) {
  storage::DatasetDef def;
  def.name = name;
  def.datatype = "Tweet";
  def.primary_key_field = "id";
  def.nodegroup = std::move(nodegroup);
  return def;
}

/// Instance options with short heartbeat timings so failure-detection
/// tests converge in milliseconds instead of seconds. Under TSan the
/// detection window widens instead: at 10-20x slowdown on a small host a
/// *healthy* node's heartbeat thread can miss a 100 ms window just by
/// not being scheduled, and the resulting false node-death tears the
/// feed down mid-test. Detection-dependent waits use multi-second
/// WaitFor budgets, which dwarf either setting.
inline InstanceOptions FastOptions(int nodes) {
  InstanceOptions options;
  options.num_nodes = nodes;
  options.heartbeat_period_ms = kTsanActive ? 50 : 10;
  options.heartbeat_timeout_ms = kTsanActive ? 2000 : 100;
  return options;
}

}  // namespace testing
}  // namespace asterix

