// Property and stress tests for the lock-free data-plane queues
// (common/mpmc_queue.h): conservation under multi-writer/multi-reader
// load, capacity backpressure, OverwriteQueue displacement accounting,
// batch-API semantics parity with BlockingQueue, and parking behaviour.
// The whole file runs under the tsan-chaos preset (see CMakePresets.json)
// so every interleaving claim here is also a ThreadSanitizer claim.
#include <atomic>
#include <chrono>
#include <numeric>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/blocking_queue.h"
#include "common/clock.h"
#include "common/mpmc_queue.h"
#include "common/rng.h"
#include "testing_util.h"

namespace asterix {
namespace {

using common::EventCount;
using common::MpmcQueue;
using common::OverwriteQueue;

TEST(MpmcQueue, CapacityRoundsUpToPowerOfTwo) {
  MpmcQueue<int> q3(3);
  EXPECT_EQ(q3.capacity(), 4u);
  MpmcQueue<int> q4(4);
  EXPECT_EQ(q4.capacity(), 4u);
  MpmcQueue<int> q0(0);
  EXPECT_GE(q0.capacity(), 2u);
}

TEST(MpmcQueue, FifoSingleThread) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.TryPush(i));
  for (int i = 0; i < 8; ++i) {
    auto v = q.TryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(MpmcQueue, TryPushFailsWhenFullAndLeavesItemIntact) {
  MpmcQueue<std::string> q(2);
  EXPECT_TRUE(q.TryPush("a"));
  EXPECT_TRUE(q.TryPush("b"));
  std::string c = "c";
  EXPECT_FALSE(q.TryPushFrom(c));
  EXPECT_EQ(c, "c");  // not consumed on failure
  EXPECT_EQ(q.size(), 2u);
}

TEST(MpmcQueue, TryPushNPushesLongestPrefix) {
  MpmcQueue<int> q(4);
  std::vector<int> items = {1, 2, 3, 4, 5, 6};
  EXPECT_EQ(q.TryPushN(items.data(), items.size()), 4u);
  std::vector<int> drained = q.TryPopAll();
  EXPECT_EQ(drained, (std::vector<int>{1, 2, 3, 4}));
}

TEST(MpmcQueue, PopAllBoundedHonoursMax) {
  MpmcQueue<int> q(16);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.TryPush(i));
  std::vector<int> first = q.PopAllBounded(3);
  EXPECT_EQ(first, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q.size(), 7u);
  std::vector<int> rest = q.PopAllBounded(SIZE_MAX);
  EXPECT_EQ(rest.size(), 7u);
  EXPECT_EQ(rest.front(), 3);
}

TEST(MpmcQueue, CloseUnblocksAndDrains) {
  MpmcQueue<int> q(4);
  EXPECT_TRUE(q.TryPush(7));
  q.Close();
  EXPECT_FALSE(q.TryPush(8));  // push refused after close
  auto v = q.Pop();            // drain still works
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
  EXPECT_FALSE(q.Pop().has_value());  // closed + drained -> nullopt
  EXPECT_TRUE(q.PopAll().empty());    // and PopAll agrees
}

TEST(MpmcQueue, PopBlocksUntilPush) {
  MpmcQueue<int> q(4);
  std::thread later = testing::After(50, [&] { ASSERT_TRUE(q.Push(42)); });
  auto v = q.Pop();  // must park, then wake on the push
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
  later.join();
}

TEST(MpmcQueue, PushBlocksUntilPopMakesRoom) {
  MpmcQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.Push(3));  // full: must park
    pushed.store(true);
  });
  EXPECT_TRUE(testing::StaysFalseFor([&] { return pushed.load(); }, 100));
  EXPECT_EQ(q.Pop().value_or(-1), 1);  // frees a slot
  EXPECT_TRUE(testing::WaitFor([&] { return pushed.load(); }, 2000));
  producer.join();
  std::vector<int> rest = q.TryPopAll();
  EXPECT_EQ(rest, (std::vector<int>{2, 3}));
}

TEST(MpmcQueue, PopForTimesOutEmpty) {
  MpmcQueue<int> q(4);
  EXPECT_FALSE(q.PopFor(std::chrono::milliseconds(30)).has_value());
  EXPECT_TRUE(q.PopAllFor(std::chrono::milliseconds(30)).empty());
}

// A timed pop whose deadline has already passed takes the short-circuit
// branch where WaitFor never runs; the PrepareWait registration must
// still be released, or waiters_ creeps up forever and every later
// NotifyAll needlessly takes the parking mutex.
TEST(MpmcQueue, ExpiredDeadlineTimedPopsLeaveNoWaiterRegistration) {
  MpmcQueue<int> q(4);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(q.PopFor(std::chrono::milliseconds(0)).has_value());
    EXPECT_TRUE(q.PopAllFor(std::chrono::milliseconds(0)).empty());
  }
  EXPECT_EQ(q.consumer_waiters(), 0u);
  EXPECT_TRUE(q.TryPush(1));  // queue still fully functional
  EXPECT_EQ(q.TryPop().value_or(-1), 1);
}

// Close() publishes closed_ with a release store and must never lose the
// wakeup race against consumers that are concurrently parking: the fence
// in NotifyAll guarantees the notifier either sees the registered waiter
// or the waiter's recheck sees closed_. A lost wakeup hangs the joins
// (under TSan the spin budget is zero, so consumers park immediately and
// the window is widest there).
TEST(MpmcQueue, CloseRacesParkingConsumersWithoutLostWakeup) {
  for (int i = 0; i < 200; ++i) {
    MpmcQueue<int> q(4);
    std::thread popper([&] { EXPECT_FALSE(q.Pop().has_value()); });
    std::thread drainer([&] { EXPECT_TRUE(q.PopAll().empty()); });
    q.Close();
    popper.join();
    drainer.join();
  }
}

// The core property: with P producers each pushing K distinct values and
// C consumers draining, every value is seen exactly once — no loss, no
// duplication, no invention. Seeded and repeated so slot reuse (the ABA
// seam the per-slot sequence counters exist for) gets exercised: K is a
// large multiple of the tiny capacity.
TEST(MpmcQueue, MultiWriterMultiReaderConservation) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 2;
  constexpr int kPerProducer = 2000;
  MpmcQueue<int> q(16);  // tiny on purpose: maximal wrap-around pressure
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  std::vector<std::vector<int>> seen(kConsumers);
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&q, &seen, c] {
      for (;;) {
        std::vector<int> batch = q.PopAll();
        if (batch.empty()) return;  // closed and drained
        seen[c].insert(seen[c].end(), batch.begin(), batch.end());
      }
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();

  std::set<int> all;
  size_t total = 0;
  for (const auto& v : seen) {
    total += v.size();
    all.insert(v.begin(), v.end());
  }
  EXPECT_EQ(total, static_cast<size_t>(kProducers) * kPerProducer);
  EXPECT_EQ(all.size(), total);  // no duplicates
  EXPECT_EQ(*all.begin(), 0);
  EXPECT_EQ(*all.rbegin(), kProducers * kPerProducer - 1);
}

// Per-consumer pop order must preserve each producer's push order
// (linearizable FIFO per ticket): with a single consumer, the subsequence
// of any one producer's values is strictly increasing.
TEST(MpmcQueue, PerProducerOrderPreserved) {
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 1500;
  MpmcQueue<int> q(8);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  std::vector<int> order;
  std::thread consumer([&] {
    for (;;) {
      std::vector<int> batch = q.PopAll();
      if (batch.empty()) return;
      order.insert(order.end(), batch.begin(), batch.end());
    }
  });
  for (auto& t : producers) t.join();
  q.Close();
  consumer.join();

  std::vector<int> last(kProducers, -1);
  for (int v : order) {
    int p = v / kPerProducer;
    EXPECT_LT(last[p], v % kPerProducer);
    last[p] = v % kPerProducer;
  }
}

TEST(OverwriteQueue, DisplacesOldestAndCountsDrops) {
  OverwriteQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.Push(i));
  EXPECT_EQ(q.dropped(), 0);
  std::optional<int> displaced;
  EXPECT_TRUE(q.Push(4, &displaced));  // full: displaces 0
  ASSERT_TRUE(displaced.has_value());
  EXPECT_EQ(*displaced, 0);
  EXPECT_EQ(q.dropped(), 1);
  EXPECT_TRUE(q.Push(5));  // displaces 1, victim destroyed
  EXPECT_EQ(q.dropped(), 2);
  EXPECT_EQ(q.TryPopAll(), (std::vector<int>{2, 3, 4, 5}));  // newest kept
}

TEST(OverwriteQueue, PushFailsOnlyWhenClosed) {
  OverwriteQueue<int> q(2);
  q.Close();
  EXPECT_FALSE(q.Push(1));
  EXPECT_EQ(q.dropped(), 0);  // a refused push is not a displacement
}

// Under producer overload the drop counter and the drained count must
// exactly account for every push: pushed == popped + dropped.
TEST(OverwriteQueue, DropAccountingConservation) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 3000;
  OverwriteQueue<int> q(8);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q] {
      for (int i = 0; i < kPerProducer; ++i) ASSERT_TRUE(q.Push(i));
    });
  }
  for (auto& t : producers) t.join();
  size_t remaining = q.TryPopAll().size();
  EXPECT_EQ(static_cast<int64_t>(remaining) + q.dropped(),
            int64_t{kProducers} * kPerProducer);
  EXPECT_LE(remaining, q.capacity());
}

TEST(EventCount, NotifyWakesWaiter) {
  EventCount ec;
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    uint64_t epoch = ec.PrepareWait();
    ec.Wait(epoch);
    woke.store(true);
  });
  // NotifyAll may race the PrepareWait; keep signalling until the waiter
  // confirms — the Dekker protocol guarantees no lost-wakeup once
  // PrepareWait published the waiter count.
  EXPECT_TRUE(testing::WaitFor(
      [&] {
        ec.NotifyAll();
        return woke.load();
      },
      2000));
  waiter.join();
}

TEST(EventCount, CancelWaitLeavesNoWaiters) {
  EventCount ec;
  (void)ec.PrepareWait();
  ec.CancelWait();
  ec.NotifyAll();  // must not hang or touch freed state
}

TEST(EventCount, WaitForTimesOut) {
  EventCount ec;
  uint64_t epoch = ec.PrepareWait();
  EXPECT_FALSE(ec.WaitFor(epoch, std::chrono::milliseconds(20)));
}

TEST(SnapshotPtr, LoadReturnsInitialAndStoredValues) {
  common::SnapshotPtr<const int> p(std::make_shared<const int>(1));
  EXPECT_EQ(*p.load(), 1);
  p.store(std::make_shared<const int>(2));
  EXPECT_EQ(*p.load(), 2);
}

// The property std::atomic<std::shared_ptr> could not give us under
// TSan: concurrent loads and stores with internally consistent
// snapshots. Each snapshot is a pair whose halves must agree; a reader
// observing a torn or stale-mixed snapshot means the publication lacks
// the cross-critical-section happens-before edge SnapshotPtr exists to
// provide. Under the tsan-chaos preset this is also a direct race check
// on the lock-bit protocol itself.
TEST(SnapshotPtr, ConcurrentLoadStoreYieldsConsistentSnapshots) {
  struct Pair {
    int64_t a;
    int64_t b;  // always 2 * a
  };
  common::SnapshotPtr<const Pair> p(std::make_shared<const Pair>(Pair{0, 0}));
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      int64_t last_seen = -1;
      while (!stop.load(std::memory_order_relaxed)) {
        std::shared_ptr<const Pair> snap = p.load();
        ASSERT_EQ(snap->b, 2 * snap->a);      // never torn
        ASSERT_GE(snap->a, last_seen);        // never moves backwards
        last_seen = snap->a;
      }
    });
  }
  for (int64_t i = 1; i <= 2000; ++i) {
    p.store(std::make_shared<const Pair>(Pair{i, 2 * i}));
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(p.load()->a, 2000);
}

// Batching parity with BlockingQueue::PopAll: blocks while empty, drains
// everything queued once data arrives, returns empty only when closed and
// drained. Run against both queues through one templated body.
template <typename Queue>
void PopAllParityBody(Queue& q) {
  std::thread later = testing::After(30, [&] {
    ASSERT_TRUE(q.Push(1));
    ASSERT_TRUE(q.Push(2));
  });
  std::vector<int> batch = q.PopAll();
  later.join();
  // One or both, depending on when the consumer wakes — but never empty.
  ASSERT_FALSE(batch.empty());
  std::vector<int> rest = q.TryPopAll();
  batch.insert(batch.end(), rest.begin(), rest.end());
  EXPECT_EQ(batch, (std::vector<int>{1, 2}));
  q.Close();
  EXPECT_TRUE(q.PopAll().empty());
}

TEST(QueueParity, PopAllBlockingQueue) {
  common::BlockingQueue<int> q(64);
  PopAllParityBody(q);
}

TEST(QueueParity, PopAllMpmcQueue) {
  MpmcQueue<int> q(64);
  PopAllParityBody(q);
}

// tsan soak: sustained mixed traffic (blocking pushes, batched pops,
// displacement) across all three primitives at once. The assertions are
// weak on purpose — the point is the interleavings ThreadSanitizer gets
// to observe when the tsan-chaos preset runs this suite.
TEST(QueueSoak, MixedTrafficUnderContention) {
  constexpr int kSeconds = 2;
  MpmcQueue<int> mpmc(32);
  OverwriteQueue<int> lossy(16);
  std::atomic<bool> stop{false};
  std::atomic<int64_t> pushed{0}, popped{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < 3; ++p) {
    threads.emplace_back([&, p] {
      common::Rng rng(100 + p);
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (mpmc.TryPush(i)) pushed.fetch_add(1, std::memory_order_relaxed);
        ASSERT_TRUE(lossy.Push(i));
        if (rng.Chance(0.1)) common::SleepMicros(50);
        ++i;
      }
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        popped.fetch_add(
            static_cast<int64_t>(
                mpmc.PopAllFor(std::chrono::milliseconds(5)).size()),
            std::memory_order_relaxed);
        (void)lossy.PopAllBounded(8);
      }
    });
  }
  common::SleepMillis(kSeconds * 1000);
  stop.store(true);
  for (auto& t : threads) t.join();
  popped.fetch_add(static_cast<int64_t>(mpmc.TryPopAll().size()),
                   std::memory_order_relaxed);
  EXPECT_EQ(pushed.load(), popped.load());  // conservation after drain
  EXPECT_GT(pushed.load(), 0);
}

}  // namespace
}  // namespace asterix
