// Observability layer tests: metrics registry primitives (counters,
// gauges, log-bucketed histograms, providers, Prometheus exposition), the
// IntervalCounter clock-skew fix, congestion decisions driven from a
// synthetic registry snapshot (no live pipeline), and an end-to-end
// pipeline run asserting the intake->store latency histogram and the
// per-frame trace spans it is built from.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "asterix/asterix.h"
#include "common/observability.h"
#include "feeds/metrics.h"
#include "feeds/policy.h"
#include "feeds/trace.h"
#include "gen/tweetgen.h"
#include "testing_util.h"

namespace asterix {
namespace {

using asterix::testing::FastOptions;
using asterix::testing::TweetsDataset;
using asterix::testing::WaitFor;
using common::Gauge;
using common::Histogram;
using common::HistogramSnapshot;
using common::MetricsRegistry;
using common::MetricsSnapshot;
using feeds::CongestionSignals;
using feeds::CongestionState;
using feeds::EvaluateElastic;
using feeds::IngestionPolicy;
using feeds::ScaleDecision;
using feeds::ThrottleKeepProbability;
using feeds::Tracer;
using feeds::TraceSpan;

// --- histogram primitives --------------------------------------------------

TEST(HistogramTest, QuantilesAreMonotoneAndClampedByMax) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("t");
  for (int64_t v : {1, 2, 3, 100, 1000, 5000, 5000, 12345}) h->Record(v);
  MetricsSnapshot snap = reg.Snapshot();
  const HistogramSnapshot* hs = snap.Histogram("t");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 8);
  EXPECT_EQ(hs->sum, 1 + 2 + 3 + 100 + 1000 + 5000 + 5000 + 12345);
  EXPECT_EQ(hs->max, 12345);
  int64_t p50 = hs->Quantile(0.50);
  int64_t p95 = hs->Quantile(0.95);
  int64_t p99 = hs->Quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, hs->max);
  EXPECT_GE(p50, 3);  // half the samples are >= 100
}

TEST(HistogramTest, BucketBoundariesAreLog2) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("b");
  h->Record(1);   // bucket 0: <= 1
  h->Record(2);   // bucket 1: (1, 2]
  h->Record(3);   // bucket 2: (2, 4]
  h->Record(4);   // bucket 2
  h->Record(5);   // bucket 3: (4, 8]
  MetricsSnapshot snap = reg.Snapshot();
  const HistogramSnapshot* hs = snap.Histogram("b");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->buckets[0], 1);
  EXPECT_EQ(hs->buckets[1], 1);
  EXPECT_EQ(hs->buckets[2], 2);
  EXPECT_EQ(hs->buckets[3], 1);
}

TEST(HistogramTest, EmptyHistogramQuantileIsZero) {
  MetricsRegistry reg;
  reg.GetHistogram("e");
  MetricsSnapshot snap = reg.Snapshot();
  const HistogramSnapshot* hs = snap.Histogram("e");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->Quantile(0.5), 0);
  EXPECT_EQ(hs->Mean(), 0.0);
}

// --- registry --------------------------------------------------------------

TEST(MetricsRegistryTest, GetOrCreateIsLabelOrderInsensitive) {
  MetricsRegistry reg;
  common::Counter* a = reg.GetCounter("c", {{"x", "1"}, {"y", "2"}});
  common::Counter* b = reg.GetCounter("c", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, reg.GetCounter("c", {{"x", "1"}}));
  a->Add(3);
  EXPECT_EQ(reg.Snapshot().CounterValue("c", {{"y", "2"}, {"x", "1"}}), 3);
}

TEST(MetricsRegistryTest, ProviderAppearsUntilHandleReset) {
  MetricsRegistry reg;
  int64_t value = 41;
  MetricsRegistry::ProviderHandle handle = reg.RegisterProvider(
      "pull_gauge", MetricsRegistry::ProviderKind::kGauge, {{"k", "v"}},
      [&value] { return value + 1; });
  EXPECT_EQ(reg.Snapshot().GaugeValue("pull_gauge", {{"k", "v"}}), 42);
  value = 10;
  EXPECT_EQ(reg.Snapshot().GaugeValue("pull_gauge", {{"k", "v"}}), 11);
  handle.Reset();
  EXPECT_EQ(reg.Snapshot().GaugeValue("pull_gauge", {{"k", "v"}}), 0);
  EXPECT_EQ(reg.Snapshot().gauges.count(
                MetricsSnapshot::Key("pull_gauge", {{"k", "v"}})),
            0u);
}

TEST(MetricsRegistryTest, ExportEmitsTypedSamplesAndEscapesLabels) {
  MetricsRegistry reg;
  reg.GetCounter("requests_total", {{"conn", "a\"b\\c\nd"}})->Add(7);
  reg.GetGauge("depth")->Set(-3);
  reg.GetHistogram("lat_us")->Record(5);
  std::string text = reg.Export();
  EXPECT_NE(text.find("# TYPE requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("requests_total{conn=\"a\\\"b\\\\c\\nd\"} 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("depth -3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_us histogram\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_us_sum 5\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_count 1\n"), std::string::npos);
  // Cumulative buckets: the (4,8] bucket already counts the value 5.
  EXPECT_NE(text.find("lat_us_bucket{le=\"8\"} 1\n"), std::string::npos);
}

TEST(MetricsRegistryTest, ListCoversOwnedAndProviderMetrics) {
  MetricsRegistry reg;
  reg.GetCounter("c1");
  reg.GetHistogram("h1", {{"stage", "store"}});
  int64_t v = 0;
  auto handle = reg.RegisterProvider(
      "p1", MetricsRegistry::ProviderKind::kCounter, {}, [&v] { return v; });
  std::set<std::string> names;
  for (const auto& info : reg.List()) names.insert(info.kind + ":" + info.name);
  EXPECT_TRUE(names.count("counter:c1"));
  EXPECT_TRUE(names.count("histogram:h1"));
  EXPECT_TRUE(names.count("counter:p1"));
}

// --- IntervalCounter fix (clock skew after Reset) --------------------------

TEST(IntervalCounterTest, NegativeBinClampsToFirstBin) {
  feeds::IntervalCounter counter(100);
  int64_t start = counter.start_ms();
  // A racing Reset() can move start_ms_ past a sampled `now` — the add
  // must land in bin 0, not index out of bounds.
  counter.AddAtMillis(start - 5000, 2);
  counter.AddAtMillis(start + 50, 1);
  std::vector<int64_t> series = counter.Series();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0], 3);
}

TEST(IntervalCounterTest, LaggardBinGrowsGeometrically) {
  feeds::IntervalCounter counter(10);
  int64_t start = counter.start_ms();
  counter.AddAtMillis(start + 10 * 999, 1);  // bin 999 in one step
  counter.AddAtMillis(start + 5, 4);
  std::vector<int64_t> series = counter.Series();
  ASSERT_EQ(series.size(), 1000u);
  EXPECT_EQ(series[0], 4);
  EXPECT_EQ(series[999], 1);
}

// --- congestion decisions from a synthetic snapshot (satellite 2) ----------

class PolicyDecisionTest : public ::testing::Test {
 protected:
  // One monitor tick: publish `pending` into the (test-local) registry,
  // take a snapshot, and feed the read-back value to the decision
  // function — the exact read path CentralFeedManager::MonitorLoop uses.
  ScaleDecision Tick(int64_t pending, const IngestionPolicy& policy,
                     int width, int alive) {
    pending_->Set(pending);
    MetricsSnapshot snap = reg_.Snapshot();
    CongestionSignals signals;
    signals.intake_pending_bytes = snap.GaugeValue(
        "feed_intake_pending_bytes", {{"connection", "F->D"}});
    signals.compute_width = width;
    signals.initial_compute_width = 1;
    signals.alive_nodes = alive;
    return EvaluateElastic(signals, policy, &state_);
  }

  MetricsRegistry reg_;
  Gauge* pending_ = reg_.GetGauge("feed_intake_pending_bytes",
                                  {{"connection", "F->D"}});
  CongestionState state_;
  // budget 1024 => congestion above 256, idle below 32.
  IngestionPolicy elastic_{
      "Elastic",
      {{IngestionPolicy::kExcessRecordsElastic, "true"},
       {IngestionPolicy::kMemoryBudget, "1024"}}};
};

TEST_F(PolicyDecisionTest, ScaleOutOnThirdCongestedTick) {
  EXPECT_EQ(Tick(500, elastic_, 1, 4), ScaleDecision::kNone);
  EXPECT_EQ(Tick(500, elastic_, 1, 4), ScaleDecision::kNone);
  EXPECT_EQ(Tick(500, elastic_, 1, 4), ScaleDecision::kScaleOut);
  // The triggering streak resets: the next congested tick starts over.
  EXPECT_EQ(Tick(500, elastic_, 2, 4), ScaleDecision::kNone);
}

TEST_F(PolicyDecisionTest, NoScaleOutBeyondAliveNodes) {
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(Tick(500, elastic_, 4, 4), ScaleDecision::kNone);
  }
}

TEST_F(PolicyDecisionTest, MiddleBandResetsStreaks) {
  EXPECT_EQ(Tick(500, elastic_, 1, 4), ScaleDecision::kNone);
  EXPECT_EQ(Tick(500, elastic_, 1, 4), ScaleDecision::kNone);
  EXPECT_EQ(Tick(100, elastic_, 1, 4), ScaleDecision::kNone);  // 32..256
  EXPECT_EQ(Tick(500, elastic_, 1, 4), ScaleDecision::kNone);
  EXPECT_EQ(Tick(500, elastic_, 1, 4), ScaleDecision::kNone);
  EXPECT_EQ(Tick(500, elastic_, 1, 4), ScaleDecision::kScaleOut);
}

TEST_F(PolicyDecisionTest, ScaleInAfterSustainedIdleOnlyAboveInitialWidth) {
  // Idle at the initial width: never scales below it.
  for (int i = 0; i < 2 * feeds::kElasticScaleInStreak; ++i) {
    EXPECT_EQ(Tick(0, elastic_, 1, 4), ScaleDecision::kNone);
  }
  state_ = CongestionState();
  // Idle at width 3 (> initial 1): scales in on the 20th idle tick.
  for (int i = 0; i < feeds::kElasticScaleInStreak - 1; ++i) {
    EXPECT_EQ(Tick(0, elastic_, 3, 4), ScaleDecision::kNone) << "tick " << i;
  }
  EXPECT_EQ(Tick(0, elastic_, 3, 4), ScaleDecision::kScaleIn);
}

TEST_F(PolicyDecisionTest, NonElasticPoliciesNeverRescale) {
  IngestionPolicy basic("Basic", {});
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(Tick(100000, basic, 1, 4), ScaleDecision::kNone);
  }
}

TEST(ThrottleDecisionTest, KeepProbabilityFollowsQueueFill) {
  const int64_t budget = 1000;
  // Under half budget and the frame fits: keep everything.
  EXPECT_EQ(ThrottleKeepProbability(0, 100, budget), 1.0);
  EXPECT_EQ(ThrottleKeepProbability(400, 100, budget), 1.0);
  // Over half full: keep falls linearly with fill.
  EXPECT_DOUBLE_EQ(ThrottleKeepProbability(600, 100, budget), 0.4);
  // Frame would blow the budget: engaged even from a low fill.
  EXPECT_DOUBLE_EQ(ThrottleKeepProbability(300, 800, budget), 0.7);
  // Floor at kThrottleMinKeep no matter how full.
  EXPECT_DOUBLE_EQ(ThrottleKeepProbability(990, 100, budget),
                   feeds::kThrottleMinKeep);
  EXPECT_DOUBLE_EQ(ThrottleKeepProbability(5000, 100, budget),
                   feeds::kThrottleMinKeep);
}

// --- end-to-end latency + trace spans (satellite 1) ------------------------

TEST(ObservabilityE2ETest, CascadeLatencyHistogramsAndSpanConservation) {
  Tracer& tracer = Tracer::Instance();
  tracer.Reset();
  tracer.SetRingCapacity(200000);
  tracer.SetSamplingRate(1.0);

  // The generator outlives the instance (declared first): collect tasks
  // may still poll its channel while the instance tears down.
  gen::TweetGenServer source(0, gen::Pattern::Constant(1500, 1200));

  AsterixInstance db(FastOptions(3));
  ASSERT_TRUE(db.Start().ok());
  // One store partition (nodegroup {C}) and one compute instance so the
  // per-trace primary spans form a single chain.
  ASSERT_TRUE(db.CreateDataset(TweetsDataset("ObsSink", {"C"})).ok());
  ASSERT_TRUE(db.InstallUdf(feeds::AqlUdf::ExtractHashtags("tags")).ok());

  feeds::ExternalSourceRegistry::Instance().RegisterChannel(
      "obs:1", &source.channel());
  feeds::FeedDef feed;
  feed.name = "ObsFeed";
  feed.adaptor_alias = "socket_adaptor";
  feed.adaptor_config = {{"sockets", "obs:1"}};
  feed.udf = "tags";
  ASSERT_TRUE(db.CreateFeed(feed).ok());
  ASSERT_TRUE(
      db.ConnectFeed("ObsFeed", "ObsSink", "Basic", {.compute_count = 1})
          .ok());

  source.Start();
  source.Join();
  int64_t sent = source.tweets_sent();
  ASSERT_GT(sent, 1000);
  ASSERT_TRUE(WaitFor(
      [&] { return db.CountDataset("ObsSink").value() == sent; }, 20000))
      << "sent=" << sent
      << " stored=" << db.CountDataset("ObsSink").value();
  tracer.SetSamplingRate(0);
  common::SleepMillis(200);  // let in-flight spans finish recording

  MetricsSnapshot snap = AsterixInstance::SnapshotMetrics();
  const common::MetricLabels conn = {{"connection", "ObsFeed->ObsSink"}};

  // Intake->store end-to-end histogram: populated and monotone.
  const HistogramSnapshot* e2e =
      snap.Histogram("feed_intake_to_store_latency_us", conn);
  ASSERT_NE(e2e, nullptr);
  ASSERT_GT(e2e->count, 0);
  int64_t p50 = e2e->Quantile(0.50), p95 = e2e->Quantile(0.95),
          p99 = e2e->Quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, e2e->max);
  EXPECT_GT(p50, 0);

  // Per-stage histograms: every primary stage of this cascade recorded.
  int populated = 0;
  for (const std::string& stage :
       {"source", "queue", "intake", "assign0", "store"}) {
    const HistogramSnapshot* h =
        snap.Histogram("feed_stage_latency_us", {{"stage", stage}});
    if (h != nullptr && h->count > 0) ++populated;
  }
  EXPECT_GE(populated, 3) << "stage histograms populated: " << populated;

  // Registry counters agree with the run. Collection happens in the head
  // (intake-side) pipeline, which carries its own connection label.
  EXPECT_EQ(snap.CounterValue("feed_records_collected_total",
                              {{"connection", "head:ObsFeed"}}),
            sent);
  EXPECT_EQ(snap.CounterValue("feed_records_stored_total", conn), sent);

  // Span conservation per trace: primary spans tile the path, so their
  // durations sum to at most the trace's end-to-end extent (plus small
  // boundary overlaps), and the uninstrumented task hand-off gaps keep
  // the sum below it.
  std::map<uint64_t, std::vector<TraceSpan>> by_trace;
  for (const TraceSpan& span : tracer.Spans()) {
    by_trace[span.trace_id].push_back(span);
  }
  int checked = 0;
  for (const auto& [id, spans] : by_trace) {
    int64_t begin = -1, end = -1, primary_sum = 0;
    bool stored = false;
    for (const TraceSpan& s : spans) {
      if (s.detail) continue;
      if (begin < 0 || s.start_us < begin) begin = s.start_us;
      primary_sum += s.duration_us;
      if (s.stage == "store") {
        stored = true;
        end = std::max(end, s.start_us + s.duration_us);
      }
    }
    if (!stored || begin < 0) continue;
    int64_t extent = end - begin;
    EXPECT_GE(extent, 0) << "trace " << id;
    EXPECT_LE(primary_sum, extent + extent / 10 + 5000)
        << "trace " << id << ": primary spans sum " << primary_sum
        << "us exceeds end-to-end extent " << extent << "us";
    EXPECT_GT(primary_sum, 0) << "trace " << id;
    ++checked;
  }
  EXPECT_GE(checked, 5) << "too few traces reached the store span";

  // The JSON dump renders non-trivially.
  std::string json = tracer.DumpJson(4);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"stage\":\"store\""), std::string::npos);

  ASSERT_TRUE(db.DisconnectFeed("ObsFeed", "ObsSink").ok());
  feeds::ExternalSourceRegistry::Instance().UnregisterChannel("obs:1");
  tracer.Reset();
}

}  // namespace
}  // namespace asterix
