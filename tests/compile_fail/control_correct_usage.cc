// Positive control for the compile-fail suite: correct lock discipline
// MUST build cleanly under -Wthread-safety -Werror. If this control fails,
// the negative tests are failing for the wrong reason (include paths,
// flags) rather than because the analysis caught the bug.
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() EXCLUDES(mutex_) {
    asterix::common::MutexLock lock(mutex_);
    IncrementLocked();
  }

  int value() const EXCLUDES(mutex_) {
    asterix::common::MutexLock lock(mutex_);
    return value_;
  }

 private:
  void IncrementLocked() REQUIRES(mutex_) { ++value_; }

  mutable asterix::common::Mutex mutex_;
  int value_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return c.value();
}
