// compile-fail: acquires a non-reentrant common::Mutex twice in one scope.
// Under -Wthread-safety -Werror (the analyze preset) this must NOT build;
// at runtime it would deadlock.
#include "common/thread_annotations.h"

namespace {

asterix::common::Mutex g_mutex;
int g_value GUARDED_BY(g_mutex) = 0;

int DoubleAcquire() {
  asterix::common::MutexLock outer(g_mutex);
  asterix::common::MutexLock inner(g_mutex);  // BUG: already held
  return ++g_value;
}

}  // namespace

int main() { return DoubleAcquire(); }
