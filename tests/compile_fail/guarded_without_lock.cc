// compile-fail: reads a GUARDED_BY field without holding its mutex.
// Under -Wthread-safety -Werror (the analyze preset) this must NOT build.
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() {
    asterix::common::MutexLock lock(mutex_);
    ++value_;
  }

  // BUG under analysis: value_ is read without mutex_ held.
  int value() const { return value_; }

 private:
  mutable asterix::common::Mutex mutex_;
  int value_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return c.value();
}
