// compile-fail: locks a mutex declared ACQUIRED_AFTER another while that
// other is not yet held in the required order. Under -Wthread-safety-beta
// -Werror (the analyze preset) this must NOT build; at runtime the
// deadlock detector would abort on the rank inversion.
#include "common/thread_annotations.h"

namespace {

asterix::common::Mutex g_outer;
asterix::common::Mutex g_inner ACQUIRED_AFTER(g_outer);

int g_value GUARDED_BY(g_inner) = 0;

int WrongOrder() {
  asterix::common::MutexLock inner(g_inner);
  asterix::common::MutexLock outer(g_outer);  // BUG: outer after inner
  return ++g_value;
}

}  // namespace

int main() { return WrongOrder(); }
