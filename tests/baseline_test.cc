// Tests of the 'glued' comparison system: the mini MongoDB document
// store (write concerns, journaling, crash loss) and the mini Storm
// runtime (groupings, acking, replay), plus the full glue assembly.
#include <filesystem>
#include <set>

#include <gtest/gtest.h>

#include "baseline/glue.h"
#include "baseline/mongo.h"
#include "baseline/storm.h"
#include "common/clock.h"
#include "gen/tweetgen.h"

namespace asterix {
namespace baseline {
namespace {

using adm::Value;
using common::Status;

std::string TempDir(const std::string& name) {
  std::string dir = "/tmp/asterix_test/baseline_" + name + "_" +
                    std::to_string(common::NowMicros());
  std::filesystem::create_directories(dir);
  return dir;
}

Value Doc(int i) {
  return Value::Record({{"_id", Value::String("d" + std::to_string(i))},
                        {"n", Value::Int64(i)}});
}

TEST(MongoTest, DurableInsertJournalsImmediately) {
  MongoCollection collection("c", TempDir("durable"),
                             WriteConcern::kDurable);
  ASSERT_TRUE(collection.Open().ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(collection.Insert(Doc(i)).ok());
  }
  EXPECT_EQ(collection.Count(), 50);
  EXPECT_EQ(collection.JournaledCount(), 50);
  EXPECT_EQ(collection.Crash(), 0);  // nothing unjournaled
}

TEST(MongoTest, NonDurableJournalLags) {
  MongoCollection collection("c", TempDir("nondurable"),
                             WriteConcern::kNonDurable);
  ASSERT_TRUE(collection.Open().ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(collection.Insert(Doc(i)).ok());
  }
  EXPECT_EQ(collection.Count(), 50);
  // Background journaling catches up within its commit interval.
  common::Stopwatch watch;
  while (collection.JournaledCount() < 50 &&
         watch.ElapsedMillis() < 2000) {
    common::SleepMillis(10);
  }
  EXPECT_EQ(collection.JournaledCount(), 50);
}

TEST(MongoTest, NonDurableCrashLosesWindow) {
  MongoCollection collection("c", TempDir("crash"),
                             WriteConcern::kNonDurable);
  ASSERT_TRUE(collection.Open().ok());
  // Insert then crash immediately: most documents are unjournaled.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(collection.Insert(Doc(i)).ok());
  }
  int64_t lost = collection.Crash();
  EXPECT_GT(lost, 0);  // acknowledged but gone: the data-loss window
}

TEST(MongoTest, RejectsDocumentsWithoutId) {
  MongoCollection collection("c", TempDir("noid"),
                             WriteConcern::kDurable);
  ASSERT_TRUE(collection.Open().ok());
  EXPECT_FALSE(
      collection.Insert(Value::Record({{"x", Value::Int64(1)}})).ok());
  EXPECT_FALSE(collection.Insert(Value::Int64(1)).ok());
}

TEST(MongoTest, ServerManagesCollections) {
  MongoServer server(TempDir("server"));
  ASSERT_TRUE(server.CreateCollection("a", WriteConcern::kDurable).ok());
  EXPECT_FALSE(server.CreateCollection("a", WriteConcern::kDurable).ok());
  EXPECT_NE(server.GetCollection("a"), nullptr);
  EXPECT_EQ(server.GetCollection("b"), nullptr);
}

// A spout emitting n integers, reliable (replays on Fail).
class CountingSpout : public storm::Spout {
 public:
  explicit CountingSpout(int64_t n) : n_(n) {}
  std::optional<Value> NextTuple(int64_t tuple_id) override {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!replay_.empty()) {
      Value v = std::move(replay_.back());
      replay_.pop_back();
      pending_[tuple_id] = v;
      return v;
    }
    if (next_ >= n_) return std::nullopt;
    Value v = Value::Record(
        {{"_id", Value::String("t" + std::to_string(next_))},
         {"n", Value::Int64(next_)}});
    ++next_;
    pending_[tuple_id] = v;
    return v;
  }
  void Ack(int64_t tuple_id) override {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.erase(tuple_id);
  }
  void Fail(int64_t tuple_id) override {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = pending_.find(tuple_id);
    if (it == pending_.end()) return;
    replay_.push_back(std::move(it->second));
    pending_.erase(it);
  }
  bool Exhausted() const override {
    std::lock_guard<std::mutex> lock(mutex_);
    return next_ >= n_ && replay_.empty();
  }

 private:
  const int64_t n_;
  mutable std::mutex mutex_;
  int64_t next_ = 0;
  std::map<int64_t, Value> pending_;
  std::vector<Value> replay_;
};

// Collects tuples into a shared set keyed by _id.
class CollectBolt : public storm::Bolt {
 public:
  struct Shared {
    std::mutex mutex;
    std::set<std::string> ids;
    std::atomic<int64_t> executions{0};
  };
  explicit CollectBolt(std::shared_ptr<Shared> shared)
      : shared_(std::move(shared)) {}
  Status Execute(const Value& tuple, storm::Emitter* emitter) override {
    (void)emitter;
    shared_->executions.fetch_add(1);
    std::lock_guard<std::mutex> lock(shared_->mutex);
    shared_->ids.insert(tuple.GetField("_id")->AsString());
    return Status::OK();
  }

 private:
  std::shared_ptr<Shared> shared_;
};

TEST(StormTest, TopologyDeliversAllTuples) {
  auto shared = std::make_shared<CollectBolt::Shared>();
  storm::LocalCluster cluster;
  storm::TopologyDef topology;
  topology.name = "t";
  topology.spout = [](int) { return std::make_unique<CountingSpout>(500); };
  topology.bolts.push_back(
      {"collect",
       [shared](int) { return std::make_unique<CollectBolt>(shared); },
       3,
       storm::Grouping::kShuffle,
       nullptr});
  ASSERT_TRUE(cluster.Submit(std::move(topology)).ok());
  ASSERT_TRUE(cluster.WaitUntilDrained(10000));
  cluster.Shutdown();
  EXPECT_EQ(shared->ids.size(), 500u);
  EXPECT_EQ(cluster.stats().acked.load(), 500);
  EXPECT_EQ(cluster.stats().failed.load(), 0);
}

// Tracks which task saw each grouping key (fields grouping check).
struct KeyTrackerState {
  std::mutex mutex;
  std::map<std::string, int> key_to_task;
  std::atomic<int> violations{0};
};

class KeyTrackerBolt : public storm::Bolt {
 public:
  KeyTrackerBolt(std::shared_ptr<KeyTrackerState> state, int task)
      : state_(std::move(state)), task_(task) {}
  Status Execute(const Value& tuple, storm::Emitter*) override {
    std::string key = std::to_string(tuple.GetField("n")->AsInt64() % 7);
    std::lock_guard<std::mutex> lock(state_->mutex);
    auto [it, inserted] = state_->key_to_task.emplace(key, task_);
    if (!inserted && it->second != task_) state_->violations.fetch_add(1);
    return Status::OK();
  }

 private:
  std::shared_ptr<KeyTrackerState> state_;
  int task_;
};

TEST(StormTest, FieldsGroupingRoutesByKey) {
  auto state = std::make_shared<KeyTrackerState>();
  storm::LocalCluster cluster;
  storm::TopologyDef topology;
  topology.spout = [](int) { return std::make_unique<CountingSpout>(200); };
  topology.bolts.push_back(
      {"tracker",
       [state](int t) {
         return std::make_unique<KeyTrackerBolt>(state, t);
       },
       4,
       storm::Grouping::kFields,
       [](const Value& v) {
         return std::to_string(v.GetField("n")->AsInt64() % 7);
       }});
  ASSERT_TRUE(cluster.Submit(std::move(topology)).ok());
  ASSERT_TRUE(cluster.WaitUntilDrained(10000));
  cluster.Shutdown();
  EXPECT_EQ(state->violations.load(), 0);
}

// Fails each tuple exactly once, then succeeds: exercises replay.
struct FlakyState {
  std::mutex mutex;
  std::set<std::string> seen;
  std::atomic<int64_t> successes{0};
};

class FlakyBolt : public storm::Bolt {
 public:
  explicit FlakyBolt(std::shared_ptr<FlakyState> state)
      : state_(std::move(state)) {}
  Status Execute(const Value& tuple, storm::Emitter*) override {
    std::string id = tuple.GetField("_id")->AsString();
    std::lock_guard<std::mutex> lock(state_->mutex);
    if (state_->seen.insert(id).second) {
      return Status::Internal("first attempt fails");
    }
    state_->successes.fetch_add(1);
    return Status::OK();
  }

 private:
  std::shared_ptr<FlakyState> state_;
};

TEST(StormTest, FailedExecutionIsReplayed) {
  auto state = std::make_shared<FlakyState>();
  storm::LocalCluster cluster;
  storm::TopologyDef topology;
  topology.spout = [](int) { return std::make_unique<CountingSpout>(100); };
  topology.bolts.push_back(
      {"flaky",
       [state](int) { return std::make_unique<FlakyBolt>(state); }, 2,
       storm::Grouping::kShuffle, nullptr});
  ASSERT_TRUE(cluster.Submit(std::move(topology)).ok());
  ASSERT_TRUE(cluster.WaitUntilDrained(15000));
  cluster.Shutdown();
  EXPECT_EQ(state->successes.load(), 100);
  EXPECT_EQ(cluster.stats().failed.load(), 100);  // one fail per tuple
}

TEST(GlueTest, StormPlusMongoEndToEnd) {
  // The full Chapter 7 assembly: TweetGen -> channel -> spout -> parse
  // bolt -> hashtag bolt -> mongo insert bolt (durable).
  gen::TweetGenServer source(0, gen::Pattern::Constant(2000, 1000));
  MongoServer mongo(TempDir("glue"));
  ASSERT_TRUE(
      mongo.CreateCollection("tweets", WriteConcern::kDurable).ok());
  MongoCollection* collection = mongo.GetCollection("tweets");

  storm::LocalCluster cluster;
  storm::TopologyDef topology;
  topology.name = "glue";
  gen::Channel* channel = &source.channel();
  topology.spout = [channel](int) {
    return std::make_unique<ChannelSpout>(channel);
  };
  topology.bolts.push_back(
      {"parse", [](int) { return std::make_unique<ParseBolt>(); }, 2,
       storm::Grouping::kShuffle, nullptr});
  auto udf = feeds::AqlUdf::ExtractHashtags("tags");
  topology.bolts.push_back(
      {"tags", [udf](int) { return std::make_unique<UdfBolt>(udf); }, 2,
       storm::Grouping::kShuffle, nullptr});
  topology.bolts.push_back(
      {"mongo",
       [collection](int) {
         return std::make_unique<MongoInsertBolt>(collection);
       },
       2, storm::Grouping::kFields, [](const Value& v) {
         return v.GetField("id")->AsString();
       }});
  ASSERT_TRUE(cluster.Submit(std::move(topology)).ok());

  source.Start();
  source.Join();
  ASSERT_TRUE(cluster.WaitUntilDrained(20000))
      << "pending=" << cluster.pending_trees();
  cluster.Shutdown();
  EXPECT_EQ(collection->Count(), source.tweets_sent());
}

}  // namespace
}  // namespace baseline
}  // namespace asterix
