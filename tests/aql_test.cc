// Tests of the mini-AQL statement layer against the dissertation's own
// listings (4.1, 4.4, 4.5, 4.6, 4.7, 3.2, 5.1).
#include <gtest/gtest.h>

#include "asterix/aql.h"
#include "common/clock.h"
#include "gen/tweetgen.h"
#include "testing_util.h"

namespace asterix {
namespace {

using adm::Value;
using asterix::testing::WaitFor;

class AqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<AsterixInstance>(InstanceOptions{.num_nodes = 3});
    ASSERT_TRUE(db_->Start().ok());
  }
  std::unique_ptr<AsterixInstance> db_;
};

TEST_F(AqlTest, CreateDatasetAndIndexStatements) {
  // Listing 3.2's shape (create dataset ... ; create index ... type rtree).
  auto status = aql::Execute(db_.get(), R"(
    use dataverse feeds;
    create dataset ProcessedTweets(Tweet) primary key id;
    create index locationIndex on ProcessedTweets(location) type rtree;
  )");
  ASSERT_TRUE(status.ok()) << status.ToString();
  auto entry = db_->datasets().Find("ProcessedTweets");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->def.primary_key_field, "id");
  ASSERT_EQ(entry->def.indexes.size(), 1u);
  EXPECT_EQ(entry->def.indexes[0].name, "locationIndex");
  EXPECT_EQ(entry->def.indexes[0].kind, storage::IndexKind::kRTree);
}

TEST_F(AqlTest, CreateIndexBackfillsExistingData) {
  ASSERT_TRUE(aql::Execute(db_.get(),
                           "create dataset D(Tweet) primary key id;")
                  .ok());
  std::vector<Value> batch;
  for (int i = 0; i < 30; ++i) {
    batch.push_back(
        Value::Record({{"id", Value::String(std::to_string(i))},
                       {"loc", Value::MakePoint(i, i)}}));
  }
  ASSERT_TRUE(db_->InsertBatch("D", std::move(batch)).ok());
  ASSERT_TRUE(
      aql::Execute(db_.get(), "create index byLoc on D(loc) type rtree;")
          .ok());
  auto cells = db_->SpatialAggregate("D", "byLoc",
                                     {0, 0, 29.5, 29.5}, 10, 10);
  ASSERT_TRUE(cells.ok()) << cells.status().ToString();
  int64_t total = 0;
  for (const auto& [cell, count] : *cells) total += count;
  EXPECT_EQ(total, 30);  // the backfill indexed every existing record
}

TEST_F(AqlTest, FeedDdlEndToEnd) {
  // Listings 4.1 + 4.4 + 4.7, driven purely through statements.
  auto status = aql::Execute(db_.get(), R"(
    create dataset Tweets(Tweet) primary key id;
    -- a pull-based synthetic source standing in for TwitterAdaptor
    create feed TwitterFeed using synthetic_tweets
        (("rate"="5000"), ("limit"="400"));
    connect feed TwitterFeed to dataset Tweets using policy Basic;
  )");
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_TRUE(WaitFor(
      [&] { return db_->CountDataset("Tweets").value() == 400; }, 10000));
  ASSERT_TRUE(
      aql::Execute(db_.get(),
                   "disconnect feed TwitterFeed from dataset Tweets;")
          .ok());
}

TEST_F(AqlTest, SecondaryFeedWithFunction) {
  ASSERT_TRUE(db_->InstallUdf(feeds::AqlUdf::ExtractHashtags(
                                  "addHashTags"))
                  .ok());
  auto status = aql::Execute(db_.get(), R"(
    create dataset ProcessedTweets(Tweet) primary key id;
    create feed TwitterFeed using synthetic_tweets
        (("rate"="5000"), ("limit"="200"));
    create secondary feed ProcessedTwitterFeed from feed TwitterFeed
        apply function addHashTags;
    connect feed ProcessedTwitterFeed to dataset ProcessedTweets;
  )");
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_TRUE(WaitFor(
      [&] { return db_->CountDataset("ProcessedTweets").value() == 200; },
      10000));
  ASSERT_TRUE(db_->ScanDataset("ProcessedTweets", [](const Value& record) {
    EXPECT_NE(record.GetField("topics"), nullptr);
  }).ok());
  ASSERT_TRUE(aql::Execute(db_.get(),
                           "disconnect feed ProcessedTwitterFeed from "
                           "dataset ProcessedTweets;")
                  .ok());
}

TEST_F(AqlTest, CustomPolicyStatement) {
  // Listing 4.6 verbatim (modulo whitespace).
  auto status = aql::Execute(db_.get(), R"(
    use dataverse feeds;
    create ingestion policy Spill_then_Throttle from policy Spill
        (("max.spill.size.on.disk"="512MB"),
         ("excess.records.throttle"="true"));
  )");
  ASSERT_TRUE(status.ok()) << status.ToString();
  // The policy is usable in a connect statement.
  ASSERT_TRUE(aql::Execute(db_.get(), R"(
    create dataset D(Tweet) primary key id;
    create feed F using synthetic_tweets (("rate"="1000"));
    connect feed F to dataset D using policy Spill_then_Throttle;
  )")
                  .ok());
  auto conn = db_->feed_manager().GetConnection("F", "D");
  ASSERT_TRUE(conn.ok());
  EXPECT_EQ(conn->policy.name(), "Spill_then_Throttle");
  EXPECT_EQ(conn->policy.max_spill_bytes(), 512LL << 20);
  ASSERT_TRUE(
      aql::Execute(db_.get(), "disconnect feed F from dataset D;").ok());
}

TEST_F(AqlTest, RejectsMalformedStatements) {
  EXPECT_FALSE(aql::Execute(db_.get(), "create spaceship X;").ok());
  EXPECT_FALSE(aql::Execute(db_.get(), "create dataset;").ok());
  EXPECT_FALSE(
      aql::Execute(db_.get(), "connect feed F dataset D;").ok());
  EXPECT_FALSE(aql::Execute(db_.get(), "create feed F using a (\"k\";")
                   .ok());
  EXPECT_FALSE(
      aql::Execute(db_.get(), "create feed F using a (\"k\"=\"v\") extra;")
          .ok());
  // Errors carry the offending statement for diagnosis.
  auto status = aql::Execute(db_.get(), "create dataset D primary key;");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("in statement"), std::string::npos);
}

TEST_F(AqlTest, ErrorsStopTheScript) {
  auto status = aql::Execute(db_.get(), R"(
    create dataset D(Tweet) primary key id;
    bogus statement here;
    create dataset E(Tweet) primary key id;
  )");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(db_->datasets().Find("D").ok());
  EXPECT_FALSE(db_->datasets().Find("E").ok());  // never reached
}

TEST_F(AqlTest, CommentsAndCaseInsensitiveKeywords) {
  auto status = aql::Execute(db_.get(), R"(
    -- a comment line
    CREATE DATASET D(Tweet) PRIMARY KEY id;  -- trailing comment
  )");
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(db_->datasets().Find("D").ok());
}

}  // namespace
}  // namespace asterix
