// Unit tests of the feed substrate: policies, UDFs, joints and Data
// Buckets, the policy-enforcing subscriber queues, ack machinery,
// adaptors and the feed catalog.
#include <filesystem>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "adm/parser.h"
#include "feeds/ack.h"
#include "feeds/catalog.h"
#include "feeds/joint.h"
#include "feeds/policy.h"
#include "feeds/subscriber.h"
#include "feeds/udf.h"
#include "gen/pattern.h"
#include "gen/tweetgen.h"
#include "testing_util.h"

namespace asterix {
namespace feeds {
namespace {

using adm::Value;
using asterix::testing::FrameOf;
using hyracks::FramePtr;
using hyracks::MakeFrame;

// --- policies ---------------------------------------------------------

TEST(PolicyTest, BuiltinsExist) {
  PolicyRegistry registry;
  for (const char* name : {"Basic", "Spill", "Discard", "Throttle",
                           "Elastic", "FaultTolerant"}) {
    EXPECT_TRUE(registry.Find(name).ok()) << name;
  }
  EXPECT_FALSE(registry.Find("Nope").ok());
}

TEST(PolicyTest, Table42ExcessModes) {
  PolicyRegistry registry;
  EXPECT_EQ(registry.Find("Basic")->excess_mode(), ExcessMode::kBlock);
  EXPECT_EQ(registry.Find("Spill")->excess_mode(), ExcessMode::kSpill);
  EXPECT_EQ(registry.Find("Discard")->excess_mode(), ExcessMode::kDiscard);
  EXPECT_EQ(registry.Find("Throttle")->excess_mode(),
            ExcessMode::kThrottle);
  EXPECT_EQ(registry.Find("Elastic")->excess_mode(), ExcessMode::kElastic);
}

TEST(PolicyTest, Table41Defaults) {
  IngestionPolicy policy;
  EXPECT_TRUE(policy.recover_soft_failure());
  EXPECT_TRUE(policy.recover_hard_failure());
  EXPECT_FALSE(policy.at_least_once());
  EXPECT_EQ(policy.excess_mode(), ExcessMode::kBlock);
}

TEST(PolicyTest, CustomPolicyExtendsBase) {
  // The Listing 4.6 example: Spill_then_Throttle.
  PolicyRegistry registry;
  ASSERT_TRUE(registry
                  .Create("Spill_then_Throttle", "Spill",
                          {{"max.spill.size.on.disk", "512MB"},
                           {"excess.records.throttle", "true"}})
                  .ok());
  auto policy = registry.Find("Spill_then_Throttle");
  ASSERT_TRUE(policy.ok());
  EXPECT_EQ(policy->excess_mode(), ExcessMode::kSpill);  // spill wins
  EXPECT_TRUE(policy->GetBool(IngestionPolicy::kExcessRecordsThrottle,
                              false));
  EXPECT_EQ(policy->max_spill_bytes(), 512LL << 20);
}

TEST(PolicyTest, CreateRejectsUnknownBaseAndDuplicates) {
  PolicyRegistry registry;
  EXPECT_FALSE(registry.Create("X", "Nope", {}).ok());
  EXPECT_TRUE(registry.Create("X", "Basic", {}).ok());
  EXPECT_FALSE(registry.Create("X", "Basic", {}).ok());
}

TEST(PolicyTest, SizeSuffixParsing) {
  IngestionPolicy policy("p", {{"memory.budget", "2MB"},
                               {"max.spill.size.on.disk", "1GB"},
                               {"ack.window.ms", "50"}});
  EXPECT_EQ(policy.memory_budget_bytes(), 2LL << 20);
  EXPECT_EQ(policy.max_spill_bytes(), 1LL << 30);
  EXPECT_EQ(policy.ack_window_ms(), 50);
}

// --- UDFs -------------------------------------------------------------

TEST(UdfTest, ExtractHashtagsCollectsTopics) {
  auto udf = AqlUdf::ExtractHashtags("f");
  Value tweet = Value::Record(
      {{"id", Value::String("1")},
       {"message_text", Value::String("hello #a world #b2 #")}});
  auto out = udf->Apply(tweet);
  ASSERT_TRUE(out.has_value());
  const Value* topics = out->GetField("topics");
  ASSERT_NE(topics, nullptr);
  ASSERT_EQ(topics->AsList().size(), 2u);  // bare "#" excluded
  EXPECT_EQ(topics->AsList()[0].AsString(), "#a");
  EXPECT_EQ(topics->AsList()[1].AsString(), "#b2");
}

TEST(UdfTest, ExtractHashtagsThrowsOnMissingField) {
  auto udf = AqlUdf::ExtractHashtags("f");
  Value bad = Value::Record({{"id", Value::String("1")}});
  EXPECT_THROW(udf->Apply(bad), std::runtime_error);
}

TEST(UdfTest, KeepAndDropFields) {
  AqlUdf keep("k", {{AqlUdf::Step::Op::kKeepFields,
                     {"id", "n"},
                     Value::Null()}});
  Value r = Value::Record({{"id", Value::String("1")},
                           {"n", Value::Int64(2)},
                           {"x", Value::Int64(3)}});
  auto kept = keep.Apply(r);
  EXPECT_EQ(kept->AsRecord().size(), 2u);
  AqlUdf drop("d", {{AqlUdf::Step::Op::kDropFields, {"x"},
                     Value::Null()}});
  auto dropped = drop.Apply(r);
  EXPECT_EQ(dropped->AsRecord().size(), 2u);
  EXPECT_EQ(dropped->GetField("x"), nullptr);
}

TEST(UdfTest, LatLongToPointAndDatetime) {
  AqlUdf udf("geo", {{AqlUdf::Step::Op::kLatLongToPoint,
                      {"latitude", "longitude", "location"},
                      Value::Null()},
                     {AqlUdf::Step::Op::kStringToDatetime,
                      {"created_at", "created_dt"},
                      Value::Null()}});
  Value r = Value::Record({{"latitude", Value::Double(1.0)},
                           {"longitude", Value::Double(2.0)},
                           {"created_at", Value::String("12345")}});
  auto out = udf.Apply(r);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->GetField("location")->AsPoint().x, 1.0);
  EXPECT_EQ(out->GetField("created_dt")->AsDatetime(), 12345);
  // Optional lat/long: field left absent, no throw.
  Value no_geo = Value::Record({{"created_at", Value::String("1")}});
  auto out2 = udf.Apply(no_geo);
  EXPECT_EQ(out2->GetField("location"), nullptr);
}

TEST(UdfTest, FilterFieldEqualsDropsNonMatching) {
  AqlUdf udf("f", {{AqlUdf::Step::Op::kFilterFieldEquals, {"country"},
                    Value::String("US")}});
  Value us = Value::Record({{"country", Value::String("US")}});
  Value de = Value::Record({{"country", Value::String("DE")}});
  EXPECT_TRUE(udf.Apply(us).has_value());
  EXPECT_FALSE(udf.Apply(de).has_value());
}

TEST(UdfTest, JavaUdfQualifiedNameAndInit) {
  JavaUdf udf("tweetlib", "sentimentAnalysis",
              [](const Value& v) { return v; });
  EXPECT_EQ(udf.name(), "tweetlib#sentimentAnalysis");
  EXPECT_EQ(udf.kind(), UdfKind::kJava);
  EXPECT_FALSE(udf.initialized());
  udf.Initialize();
  EXPECT_TRUE(udf.initialized());
}

TEST(UdfTest, PseudoSentimentIsDeterministicAndBounded) {
  double a = PseudoSentiment("some tweet text");
  EXPECT_EQ(a, PseudoSentiment("some tweet text"));
  for (const char* text : {"", "a", "longer text #x", "another"}) {
    double s = PseudoSentiment(text);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(UdfTest, RegistryFindAndDuplicates) {
  UdfRegistry registry;
  ASSERT_TRUE(registry.Register(AqlUdf::ExtractHashtags("f1")).ok());
  EXPECT_FALSE(registry.Register(AqlUdf::ExtractHashtags("f1")).ok());
  EXPECT_TRUE(registry.Find("f1").ok());
  EXPECT_FALSE(registry.Find("f2").ok());
}

// --- joints & buckets ---------------------------------------------------

TEST(JointTest, InactiveUntilSubscribed) {
  FeedJoint joint("J");
  EXPECT_EQ(joint.mode(), FeedJoint::Mode::kInactive);
  auto q1 = joint.Subscribe({});
  EXPECT_EQ(joint.mode(), FeedJoint::Mode::kShortCircuit);
  auto q2 = joint.Subscribe({});
  EXPECT_EQ(joint.mode(), FeedJoint::Mode::kShared);
  joint.Unsubscribe(q2);
  EXPECT_EQ(joint.mode(), FeedJoint::Mode::kShortCircuit);
}

TEST(JointTest, ShortCircuitAvoidsBuckets) {
  FeedJoint joint("J");
  auto queue = joint.Subscribe({});
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(joint.NextFrame(FrameOf(5)).ok());
  }
  EXPECT_EQ(joint.bucket_pool().allocations(), 0);
  EXPECT_EQ(queue->stats().frames_delivered, 10);
}

TEST(JointTest, SharedModeGuaranteedDelivery) {
  FeedJoint joint("J");
  auto q1 = joint.Subscribe({});
  auto q2 = joint.Subscribe({});
  auto q3 = joint.Subscribe({});
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(joint.NextFrame(FrameOf(3, i * 3)).ok());
  }
  for (auto& queue : {q1, q2, q3}) {
    EXPECT_EQ(queue->stats().frames_delivered, 20);
    EXPECT_EQ(queue->stats().records_delivered, 60);
  }
  EXPECT_GT(joint.bucket_pool().allocations(), 0);
}

TEST(JointTest, BucketPoolRecyclesAfterConsumption) {
  FeedJoint joint("J");
  auto q1 = joint.Subscribe({});
  auto q2 = joint.Subscribe({});
  for (int round = 0; round < 50; ++round) {
    ASSERT_TRUE(joint.NextFrame(FrameOf(2)).ok());
    // Both subscribers consume: bucket refcount hits zero, returns to
    // the pool and is reused next round.
    ASSERT_TRUE(q1->Next(1000).has_value());
    ASSERT_TRUE(q2->Next(1000).has_value());
  }
  EXPECT_GT(joint.bucket_pool().reuses(), 40);
  EXPECT_LT(joint.bucket_pool().allocations(), 10);
}

TEST(JointTest, CongestionIsolationBetweenSubscribers) {
  // A slow subscriber (never consuming) must not delay a fast one.
  FeedJoint joint("J");
  auto slow = joint.Subscribe({});
  auto fast = joint.Subscribe({});
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(joint.NextFrame(FrameOf(1, i)).ok());
    auto frame = fast->Next(1000);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ((*frame)->records()[0].GetField("n")->AsInt64(), i);
  }
  EXPECT_EQ(slow->pending_frames(), 100u);  // buffered, not blocking
}

TEST(JointTest, CloseEndsSubscribers) {
  FeedJoint joint("J");
  auto queue = joint.Subscribe({});
  ASSERT_TRUE(joint.NextFrame(FrameOf(1)).ok());
  ASSERT_TRUE(joint.Close().ok());
  EXPECT_TRUE(queue->Next(100).has_value());  // drains
  EXPECT_FALSE(queue->Next(100).has_value());
  EXPECT_TRUE(queue->ended());
  // Subscribing to a closed joint ends immediately.
  auto late = joint.Subscribe({});
  EXPECT_TRUE(late->ended());
}

TEST(JointTest, DetachPrimaryClosesOnlyInJobPath) {
  struct Probe : hyracks::IFrameWriter {
    int frames = 0;
    bool closed = false;
    common::Status NextFrame(const FramePtr&) override {
      ++frames;
      return common::Status::OK();
    }
    common::Status Close() override {
      closed = true;
      return common::Status::OK();
    }
  };
  auto probe = std::make_shared<Probe>();
  FeedJoint joint("J");
  joint.SetPrimary(probe);
  auto queue = joint.Subscribe({});
  ASSERT_TRUE(joint.NextFrame(FrameOf(1)).ok());
  EXPECT_EQ(probe->frames, 1);
  joint.DetachPrimary();
  EXPECT_TRUE(probe->closed);
  ASSERT_TRUE(joint.NextFrame(FrameOf(1)).ok());
  EXPECT_EQ(probe->frames, 1);  // primary no longer fed
  EXPECT_EQ(queue->stats().frames_delivered, 2);  // subscriber still is
}

// --- subscriber queues (policy runtimes) --------------------------------

SubscriberOptions SmallQueue(ExcessMode mode, int64_t budget = 4096) {
  SubscriberOptions options;
  options.mode = mode;
  options.memory_budget_bytes = budget;
  options.spill_dir = "/tmp";
  options.name = std::string("test_") + ExcessModeName(mode);
  return options;
}

TEST(SubscriberQueueTest, BasicFailsWhenBudgetExhausted) {
  SubscriberQueue queue(SmallQueue(ExcessMode::kBlock, 2048));
  for (int i = 0; i < 200 && !queue.failed(); ++i) {
    queue.Deliver(FrameOf(10), nullptr);
  }
  EXPECT_TRUE(queue.failed());
  EXPECT_TRUE(queue.failure().IsResourceExhausted());
}

TEST(SubscriberQueueTest, DiscardDropsExcessAndCounts) {
  SubscriberQueue queue(SmallQueue(ExcessMode::kDiscard, 2048));
  for (int i = 0; i < 200; ++i) queue.Deliver(FrameOf(10), nullptr);
  auto stats = queue.stats();
  EXPECT_FALSE(queue.failed());
  EXPECT_GT(stats.records_discarded, 0);
  EXPECT_GT(stats.records_delivered, 0);
  EXPECT_EQ(stats.records_delivered + stats.records_discarded, 2000);
}

TEST(SubscriberQueueTest, ThrottleSamplesExcess) {
  SubscriberQueue queue(SmallQueue(ExcessMode::kThrottle, 4096));
  for (int i = 0; i < 300; ++i) queue.Deliver(FrameOf(10), nullptr);
  auto stats = queue.stats();
  EXPECT_FALSE(queue.failed());
  EXPECT_GT(stats.records_throttled_away, 0);
  // Throttling samples rather than truncating: some later records
  // survive even under sustained pressure.
  EXPECT_GT(stats.records_delivered, 0);
}

TEST(SubscriberQueueTest, SpillParksExcessOnDiskAndRestoresInOrder) {
  SubscriberQueue queue(SmallQueue(ExcessMode::kSpill, 2048));
  constexpr int kFrames = 120;
  for (int i = 0; i < kFrames; ++i) {
    queue.Deliver(FrameOf(5, i * 5), nullptr);
  }
  EXPECT_GT(queue.stats().frames_spilled, 0);
  // Drain everything; order must be preserved across the spill boundary.
  int64_t expected = 0;
  int got_frames = 0;
  while (auto frame = queue.Next(200)) {
    ++got_frames;
    for (const Value& record : (*frame)->records()) {
      EXPECT_EQ(record.GetField("n")->AsInt64(), expected);
      ++expected;
    }
  }
  EXPECT_EQ(expected, kFrames * 5);
  EXPECT_EQ(queue.stats().frames_restored, queue.stats().frames_spilled);
}

TEST(SubscriberQueueTest, SpillOverflowFailsWithoutThrottleFallback) {
  SubscriberOptions options = SmallQueue(ExcessMode::kSpill, 1024);
  options.max_spill_bytes = 2048;  // tiny spill budget
  SubscriberQueue queue(options);
  for (int i = 0; i < 500 && !queue.failed(); ++i) {
    queue.Deliver(FrameOf(10), nullptr);
  }
  EXPECT_TRUE(queue.failed());
}

TEST(SubscriberQueueTest, SpillOverflowThrottlesWithFallback) {
  // The Spill_then_Throttle custom policy of Listing 4.6.
  SubscriberOptions options = SmallQueue(ExcessMode::kSpill, 1024);
  options.max_spill_bytes = 2048;
  options.throttle_after_spill = true;
  SubscriberQueue queue(options);
  for (int i = 0; i < 500; ++i) queue.Deliver(FrameOf(10), nullptr);
  EXPECT_FALSE(queue.failed());
  EXPECT_GT(queue.stats().records_throttled_away, 0);
}

TEST(SubscriberQueueTest, EndAfterDrain) {
  SubscriberQueue queue(SmallQueue(ExcessMode::kBlock));
  queue.Deliver(FrameOf(1), nullptr);
  queue.DeliverEnd();
  EXPECT_FALSE(queue.ended());  // still has data
  EXPECT_TRUE(queue.Next(100).has_value());
  EXPECT_TRUE(queue.ended());
  EXPECT_FALSE(queue.Next(10).has_value());
}

// Deliver + DeliverEnd racing a consumer inside NextBatch: the consumer
// may poll an empty ring and then observe ended_ — it must re-poll the
// ring before trusting the terminal flag, or a frame published between
// the two loads is stranded (the contract is empty only on timeout or
// terminal with NOTHING buffered). Iterated so the thread interleaving
// actually lands inside the window.
TEST(SubscriberQueueTest, FrameRacingDeliverEndIsNeverStranded) {
  for (int iter = 0; iter < 100; ++iter) {
    SubscriberQueue queue(SmallQueue(ExcessMode::kBlock));
    int got = 0;
    std::thread consumer([&] {
      for (;;) {
        std::vector<FramePtr> batch = queue.NextBatch(2000);
        if (batch.empty()) return;
        got += static_cast<int>(batch.size());
      }
    });
    queue.Deliver(FrameOf(1), nullptr);
    queue.DeliverEnd();
    consumer.join();
    ASSERT_EQ(got, 1) << "final frame stranded on iteration " << iter;
  }
}

// A spill file that can no longer yield the frames its counter claims
// (truncated behind the queue's back here; a torn write in production)
// must fail the queue and let NextBatch return within its timeout — not
// spin on the replenish path retrying the unreadable restore forever.
TEST(SubscriberQueueTest, TruncatedSpillFailsInsteadOfSpinning) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "asterix_spill_truncation_test";
  fs::create_directories(dir);
  SubscriberOptions options = SmallQueue(ExcessMode::kSpill, 2048);
  options.spill_dir = dir.string();
  options.name = "truncated";
  SubscriberQueue queue(options);
  for (int i = 0; i < 120; ++i) queue.Deliver(FrameOf(5), nullptr);
  ASSERT_GT(queue.stats().frames_spilled, 0);
  // Drain until the first restore pass ran (it flushes libc's write
  // buffer to disk, so the truncation below cannot be undone by a later
  // flush) but spilled frames remain pending.
  while (queue.stats().frames_restored == 0) {
    ASSERT_TRUE(queue.Next(200).has_value());
  }
  ASSERT_GT(queue.stats().frames_spilled, queue.stats().frames_restored);
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    fs::resize_file(entry.path(), 1);  // torn mid length-header
  }
  // Remaining drain must terminate: restored-but-unread frames come
  // back, then the torn file surfaces as a terminal I/O failure.
  while (queue.Next(200).has_value()) {
  }
  EXPECT_TRUE(queue.failed());
  EXPECT_TRUE(queue.failure().IsIOError());
  fs::remove_all(dir);
}

// --- ack machinery -------------------------------------------------------

TEST(AckTest, TrackingIdPacksPartition) {
  int64_t tid = MakeTrackingId(5, 123456789);
  EXPECT_EQ(TrackingIdPartition(tid), 5);
  EXPECT_EQ(tid & ((1LL << 48) - 1), 123456789);
}

TEST(AckTest, PendingTrackerAckAndExpiry) {
  PendingTracker tracker(/*timeout_ms=*/50);
  tracker.Track(1, Value::Record({{"id", Value::String("a")}}));
  tracker.Track(2, Value::Record({{"id", Value::String("b")}}));
  EXPECT_EQ(tracker.pending_count(), 2u);
  tracker.Ack({1});
  EXPECT_EQ(tracker.pending_count(), 1u);
  EXPECT_TRUE(tracker.TakeExpired().empty());  // not yet expired
  common::SleepMillis(80);
  auto expired = tracker.TakeExpired();
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].GetField("id")->AsString(), "b");
  // Timestamps reset: not immediately expired again.
  EXPECT_TRUE(tracker.TakeExpired().empty());
}

TEST(AckTest, CollectorGroupsAcksPerWindow) {
  auto bus = std::make_shared<AckBus>();
  std::vector<std::vector<int64_t>> received;
  bus->Register("c", 0, [&](const std::vector<int64_t>& tids) {
    received.push_back(tids);
  });
  AckCollector collector(bus, "c", /*window_ms=*/30);
  for (int i = 0; i < 100; ++i) {
    collector.OnPersisted(MakeTrackingId(0, i));
  }
  collector.Flush();
  size_t total = 0;
  for (const auto& group : received) total += group.size();
  EXPECT_EQ(total, 100u);
  // Grouping: far fewer messages than acks.
  EXPECT_LT(received.size(), 10u);
}

TEST(AckTest, BusRoutesByPartition) {
  AckBus bus;
  int p0 = 0, p1 = 0;
  bus.Register("c", 0, [&](const std::vector<int64_t>&) { ++p0; });
  bus.Register("c", 1, [&](const std::vector<int64_t>&) { ++p1; });
  bus.Publish("c", 0, {1});
  bus.Publish("c", 1, {2});
  bus.Publish("c", 7, {3});  // unregistered: dropped
  EXPECT_EQ(p0, 1);
  EXPECT_EQ(p1, 1);
  bus.Unregister("c", 0);
  bus.Publish("c", 0, {4});
  EXPECT_EQ(p0, 1);
}

// --- patterns & tweetgen --------------------------------------------------

TEST(PatternTest, ParsesDissertationDescriptor) {
  auto pattern = gen::ParsePatternXml(R"(
    <pattern>
      <cycle repeat="5">
        <interval duration="400" rate="300"/>
        <interval duration="400" rate="600"/>
      </cycle>
    </pattern>)");
  ASSERT_TRUE(pattern.ok()) << pattern.status().ToString();
  EXPECT_EQ(pattern->repeat, 5);
  ASSERT_EQ(pattern->intervals.size(), 2u);
  EXPECT_EQ(pattern->intervals[0].rate_tps, 300);
  EXPECT_EQ(pattern->intervals[1].duration_ms, 400);
  EXPECT_EQ(pattern->TotalDurationMs(), 4000);
  EXPECT_EQ(pattern->TotalRecords(), 5 * (120 + 240));
}

TEST(PatternTest, RoundTripsThroughXml) {
  gen::Pattern pattern = gen::Pattern::Burst(100, 900, 250, 3);
  auto back = gen::ParsePatternXml(gen::PatternToXml(pattern));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->repeat, 3);
  EXPECT_EQ(back->intervals[1].rate_tps, 900);
}

TEST(PatternTest, RejectsMalformedDescriptors) {
  EXPECT_FALSE(gen::ParsePatternXml("<pattern></pattern>").ok());
  EXPECT_FALSE(gen::ParsePatternXml("<pattern><cycle repeat=\"1\">"
                                    "<interval duration=\"1\"/>"
                                    "</cycle></pattern>")
                   .ok());  // missing rate
  EXPECT_FALSE(gen::ParsePatternXml("<bogus/>").ok());
  EXPECT_FALSE(gen::ParsePatternXml(
                   "<pattern><interval duration=\"1\" rate=\"1\"/>"
                   "</pattern>")
                   .ok());  // interval outside cycle
}

TEST(TweetGenTest, TweetsAreWellFormedAndUnique) {
  gen::TweetFactory factory(3);
  std::set<std::string> ids;
  for (int i = 0; i < 100; ++i) {
    Value tweet = factory.NextTweet();
    ASSERT_TRUE(tweet.is_record());
    ids.insert(tweet.GetField("id")->AsString());
    EXPECT_EQ(tweet.GetField("seq")->AsInt64(), i);
    EXPECT_NE(tweet.GetField("user"), nullptr);
    EXPECT_NE(tweet.GetField("message_text"), nullptr);
  }
  EXPECT_EQ(ids.size(), 100u);
}

TEST(TweetGenTest, SerializedTweetsParseBack) {
  gen::TweetFactory factory(0);
  for (int i = 0; i < 20; ++i) {
    auto parsed = adm::ParseAdm(factory.NextTweetText());
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  }
}

TEST(TweetGenTest, ServerFollowsPatternApproximately) {
  gen::TweetGenServer server(0, gen::Pattern::Constant(1000, 500));
  server.Start();
  server.Join();
  ASSERT_TRUE(server.finished());
  // ~500 tweets expected; pacing granularity allows a small shortfall.
  EXPECT_GE(server.tweets_sent(), 400);
  EXPECT_LE(server.tweets_sent(), 600);
  EXPECT_EQ(server.channel().pending(), server.tweets_sent());
}

// --- catalog ---------------------------------------------------------------

TEST(FeedCatalogTest, PathFromRootWalksLineage) {
  FeedCatalog catalog;
  FeedDef root;
  root.name = "Root";
  root.adaptor_alias = "a";
  ASSERT_TRUE(catalog.CreateFeed(root).ok());
  FeedDef mid;
  mid.name = "Mid";
  mid.is_primary = false;
  mid.parent_feed = "Root";
  mid.udf = "f1";
  ASSERT_TRUE(catalog.CreateFeed(mid).ok());
  FeedDef leaf;
  leaf.name = "Leaf";
  leaf.is_primary = false;
  leaf.parent_feed = "Mid";
  leaf.udf = "f2";
  ASSERT_TRUE(catalog.CreateFeed(leaf).ok());

  auto path = catalog.PathFromRoot("Leaf");
  ASSERT_TRUE(path.ok());
  ASSERT_EQ(path->size(), 3u);
  EXPECT_EQ((*path)[0].name, "Root");
  EXPECT_EQ((*path)[2].name, "Leaf");
}

TEST(FeedCatalogTest, RejectsBadDefinitions) {
  FeedCatalog catalog;
  FeedDef no_adaptor;
  no_adaptor.name = "X";
  EXPECT_FALSE(catalog.CreateFeed(no_adaptor).ok());
  FeedDef orphan;
  orphan.name = "Y";
  orphan.is_primary = false;
  orphan.parent_feed = "Nope";
  EXPECT_FALSE(catalog.CreateFeed(orphan).ok());
}

TEST(FeedCatalogTest, DropRefusesWhenDependentsExist) {
  FeedCatalog catalog;
  FeedDef root;
  root.name = "Root";
  root.adaptor_alias = "a";
  ASSERT_TRUE(catalog.CreateFeed(root).ok());
  FeedDef child;
  child.name = "Child";
  child.is_primary = false;
  child.parent_feed = "Root";
  ASSERT_TRUE(catalog.CreateFeed(child).ok());
  EXPECT_FALSE(catalog.DropFeed("Root").ok());
  EXPECT_TRUE(catalog.DropFeed("Child").ok());
  EXPECT_TRUE(catalog.DropFeed("Root").ok());
}

// --- adaptors ----------------------------------------------------------

TEST(AdaptorTest, RegistryHasBuiltins) {
  AdaptorRegistry registry;
  ASSERT_TRUE(RegisterBuiltinAdaptors(&registry).ok());
  for (const char* alias : {"socket_adaptor", "TweetGenAdaptor",
                            "file_based_feed", "synthetic_tweets"}) {
    EXPECT_TRUE(registry.Find(alias).ok()) << alias;
  }
}

TEST(AdaptorTest, SocketConstraintsFollowSocketList) {
  SocketAdaptorFactory factory;
  auto constraint =
      factory.GetConstraints({{"sockets", "a:1, b:2, c:3"}});
  ASSERT_TRUE(constraint.ok());
  EXPECT_EQ(constraint->count, 3);
  EXPECT_FALSE(factory.GetConstraints({}).ok());
}

TEST(AdaptorTest, SocketAdaptorDrainsChannel) {
  gen::Channel channel;
  ExternalSourceRegistry::Instance().RegisterChannel("t:1", &channel);
  SocketAdaptorFactory factory;
  auto adaptor = factory.Create({{"sockets", "t:1"}}, 0);
  ASSERT_TRUE(adaptor.ok());
  channel.Send("one");
  channel.Send("two");
  auto batch = (*adaptor)->Fetch(10, 10);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->payloads.size(), 2u);
  EXPECT_EQ(batch->payloads[0], "one");
  // Closed + drained channel reports end of source.
  channel.CloseSender();
  batch = (*adaptor)->Fetch(10, 10);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->end_of_source);
  ExternalSourceRegistry::Instance().UnregisterChannel("t:1");
}

TEST(AdaptorTest, SyntheticAdaptorHonorsLimit) {
  SyntheticTweetAdaptorFactory factory;
  auto adaptor =
      factory.Create({{"rate", "100000"}, {"limit", "42"}}, 0);
  ASSERT_TRUE(adaptor.ok());
  int64_t total = 0;
  for (int i = 0; i < 100; ++i) {
    auto batch = (*adaptor)->Fetch(64, 5);
    ASSERT_TRUE(batch.ok());
    total += static_cast<int64_t>(batch->payloads.size());
    if (batch->end_of_source) break;
  }
  EXPECT_EQ(total, 42);
}

}  // namespace
}  // namespace feeds
}  // namespace asterix
