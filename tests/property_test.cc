// Property-based tests: randomized workloads checked against reference
// models and invariants, parameterized over seeds (TEST_P sweeps).
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "adm/parser.h"
#include "common/rng.h"
#include "feeds/joint.h"
#include "feeds/subscriber.h"
#include "gen/simcpu.h"
#include "gen/tweetgen.h"
#include "storage/key.h"
#include "storage/lsm_index.h"

namespace asterix {
namespace {

using adm::Value;

// --- LSM index vs std::map reference model ------------------------------

class LsmModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LsmModelTest, RandomUpsertsMatchReferenceModel) {
  common::Rng rng(GetParam());
  storage::LsmOptions options;
  options.memtable_bytes_limit = 1 << (6 + rng.Uniform(0, 8));  // 64B..16KB
  options.max_runs = static_cast<size_t>(rng.Uniform(2, 6));
  storage::LsmIndex index(options);
  std::map<std::string, int64_t> model;

  for (int op = 0; op < 2000; ++op) {
    int64_t key_space = rng.Uniform(1, 300);
    auto key =
        storage::EncodeKey(Value::Int64(rng.Uniform(0, key_space)))
            .value();
    int64_t value = rng.Uniform(0, 1 << 30);
    ASSERT_TRUE(index.Insert(key, Value::Int64(value)).ok());
    model[key] = value;

    if (op % 97 == 0) {
      // Point-lookup agreement on a random key (possibly absent).
      auto probe =
          storage::EncodeKey(Value::Int64(rng.Uniform(0, 400))).value();
      auto got = index.Get(probe);
      auto expected = model.find(probe);
      ASSERT_EQ(got.has_value(), expected != model.end());
      if (got.has_value()) {
        EXPECT_EQ(got->AsInt64(), expected->second);
      }
    }
  }
  // Full-scan agreement: same keys, same values, same (sorted) order.
  EXPECT_EQ(index.Size(), static_cast<int64_t>(model.size()));
  auto it = model.begin();
  index.Scan([&](const std::string& key, const Value& value) {
    ASSERT_NE(it, model.end());
    EXPECT_EQ(key, it->first);
    EXPECT_EQ(value.AsInt64(), it->second);
    ++it;
  });
  EXPECT_EQ(it, model.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LsmModelTest,
                         ::testing::Values(1, 7, 42, 1234, 99991, 31337,
                                           271828, 3141592));

// --- partitioned index: k-way merged Scan vs reference model -------------

class PartitionedScanTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PartitionedScanTest, ScanMergesPartitionsInGlobalKeyOrder) {
  common::Rng rng(GetParam());
  storage::LsmOptions options;
  options.partitions = static_cast<size_t>(rng.Uniform(2, 5));
  options.memtable_bytes_limit = 1 << (6 + rng.Uniform(0, 8));
  options.max_runs = static_cast<size_t>(rng.Uniform(2, 6));
  storage::PartitionedLsmIndex index(options);
  std::map<std::string, int64_t> model;

  auto check_scan = [&] {
    // Scan must agree with the model key-for-key: strict global key order
    // across the k-way merge, the newest write for each key, and no
    // resurrected tombstones.
    std::string prev;
    bool first = true;
    auto it = model.begin();
    index.Scan([&](const std::string& key, const Value& value) {
      if (!first) EXPECT_LT(prev, key);
      prev = key;
      first = false;
      ASSERT_NE(it, model.end());
      EXPECT_EQ(key, it->first);
      EXPECT_EQ(value.AsInt64(), it->second);
      ++it;
    });
    EXPECT_EQ(it, model.end());
  };

  for (int op = 0; op < 3000; ++op) {
    int64_t key_space = rng.Uniform(1, 400);
    auto key =
        storage::EncodeKey(Value::Int64(rng.Uniform(0, key_space)))
            .value();
    if (rng.Uniform(0, 9) < 7) {
      // Upsert: a fresh insert or an update shadowing an older write.
      int64_t value = rng.Uniform(0, 1 << 30);
      ASSERT_TRUE(index.Insert(key, Value::Int64(value)).ok());
      model[key] = value;
    } else {
      ASSERT_TRUE(index.Delete(key).ok());
      model.erase(key);
    }
    if (op % 389 == 0) check_scan();  // mid-stream, memtables half-full
  }
  index.Drain();  // settle background flush/merge, then re-check
  check_scan();
  EXPECT_EQ(index.Size(), static_cast<int64_t>(model.size()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionedScanTest,
                         ::testing::Values(2, 13, 42, 4096, 123457,
                                           271828, 999331));

// --- key encoding: total order matches value order -----------------------

class KeyOrderTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KeyOrderTest, MixedNumericKeysSortConsistently) {
  common::Rng rng(GetParam());
  std::vector<double> doubles;
  for (int i = 0; i < 400; ++i) {
    doubles.push_back((rng.NextDouble() - 0.5) * std::pow(10, rng.Uniform(0, 12)));
  }
  std::vector<std::pair<std::string, double>> keyed;
  for (double d : doubles) {
    keyed.emplace_back(storage::EncodeKey(Value::Double(d)).value(), d);
  }
  std::sort(keyed.begin(), keyed.end());
  for (size_t i = 1; i < keyed.size(); ++i) {
    EXPECT_LE(keyed[i - 1].second, keyed[i].second)
        << keyed[i - 1].second << " vs " << keyed[i].second;
  }
  // And every key decodes back to its exact value.
  for (const auto& [key, d] : keyed) {
    auto decoded = storage::DecodeKey(key);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->AsDouble(), d);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KeyOrderTest,
                         ::testing::Values(3, 17, 2024, 777));

// --- ADM round trip over random TweetGen output --------------------------

class AdmFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AdmFuzzTest, GeneratedTweetsRoundTrip) {
  gen::TweetFactory factory(static_cast<int>(GetParam()), GetParam());
  for (int i = 0; i < 200; ++i) {
    Value tweet = factory.NextTweet();
    auto parsed = adm::ParseAdm(tweet.ToAdmString());
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(*parsed, tweet);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdmFuzzTest,
                         ::testing::Values(0, 5, 11, 23));

// --- subscriber queue invariants under every mode -------------------------

class QueueInvariantTest
    : public ::testing::TestWithParam<feeds::ExcessMode> {};

TEST_P(QueueInvariantTest, AccountingIsExactAndOrderPreserved) {
  feeds::SubscriberOptions options;
  options.mode = GetParam();
  options.memory_budget_bytes = 4096;
  options.name = std::string("invariant_") +
                 feeds::ExcessModeName(GetParam());
  feeds::SubscriberQueue queue(options);

  constexpr int kFrames = 150;
  constexpr int kPerFrame = 8;
  int64_t delivered_in = 0;
  for (int f = 0; f < kFrames && !queue.failed(); ++f) {
    std::vector<Value> records;
    for (int r = 0; r < kPerFrame; ++r) {
      int64_t n = f * kPerFrame + r;
      records.push_back(
          Value::Record({{"id", Value::String(std::to_string(n))},
                         {"n", Value::Int64(n)}}));
    }
    delivered_in += kPerFrame;
    queue.Deliver(hyracks::MakeFrame(std::move(records)), nullptr);
  }
  queue.DeliverEnd();

  int64_t seen = 0;
  int64_t last_n = -1;
  while (auto frame = queue.Next(500)) {
    for (const Value& record : (*frame)->records()) {
      // Order is preserved: n strictly increases even across policy
      // actions (spill restore, sampling, discard).
      int64_t n = record.GetField("n")->AsInt64();
      EXPECT_GT(n, last_n);
      last_n = n;
      ++seen;
    }
  }
  auto stats = queue.stats();
  if (queue.failed()) {
    // Basic: accounting holds up to the failure point.
    EXPECT_EQ(GetParam(), feeds::ExcessMode::kBlock);
    return;
  }
  // Conservation: in = out + discarded + sampled-away.
  EXPECT_EQ(delivered_in,
            seen + stats.records_discarded + stats.records_throttled_away)
      << "mode " << feeds::ExcessModeName(GetParam());
  // Spill round-trips losslessly.
  if (GetParam() == feeds::ExcessMode::kSpill) {
    EXPECT_EQ(seen, delivered_in);
    EXPECT_EQ(stats.frames_restored, stats.frames_spilled);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, QueueInvariantTest,
    ::testing::Values(feeds::ExcessMode::kBlock, feeds::ExcessMode::kSpill,
                      feeds::ExcessMode::kDiscard,
                      feeds::ExcessMode::kThrottle,
                      feeds::ExcessMode::kElastic),
    [](const ::testing::TestParamInfo<feeds::ExcessMode>& info) {
      return feeds::ExcessModeName(info.param);
    });

// --- joint delivery: every subscriber sees every frame, in order ----------

class JointFanoutTest : public ::testing::TestWithParam<int> {};

TEST_P(JointFanoutTest, GuaranteedInOrderDeliveryToAllSubscribers) {
  int subscribers = GetParam();
  feeds::FeedJoint joint("prop");
  std::vector<std::shared_ptr<feeds::SubscriberQueue>> queues;
  feeds::SubscriberOptions options;
  options.memory_budget_bytes = 1LL << 40;
  for (int s = 0; s < subscribers; ++s) {
    queues.push_back(joint.Subscribe(options));
  }
  constexpr int kFrames = 200;
  for (int f = 0; f < kFrames; ++f) {
    ASSERT_TRUE(joint
                    .NextFrame(hyracks::MakeFrame({Value::Record(
                        {{"id", Value::String(std::to_string(f))},
                         {"n", Value::Int64(f)}})}))
                    .ok());
  }
  ASSERT_TRUE(joint.Close().ok());
  for (auto& queue : queues) {
    int64_t expected = 0;
    while (auto frame = queue->Next(500)) {
      EXPECT_EQ((*frame)->records()[0].GetField("n")->AsInt64(),
                expected);
      ++expected;
    }
    EXPECT_EQ(expected, kFrames);
    EXPECT_TRUE(queue->ended());
  }
}

INSTANTIATE_TEST_SUITE_P(Fanout, JointFanoutTest,
                         ::testing::Values(1, 2, 3, 5, 8));

// --- SimulatedCpu: rate conformance and fairness ---------------------------

TEST(SimulatedCpuTest, GrantsApproximatelyConfiguredCapacity) {
  gen::SimulatedCpu cpu(2.0);  // 2 cores
  common::SleepMillis(5);      // let a little credit accrue
  common::Stopwatch watch;
  constexpr int kJobs = 400;
  constexpr int64_t kCostUs = 1000;  // 0.4 core-seconds of demand
  for (int i = 0; i < kJobs; ++i) cpu.Consume(kCostUs);
  double elapsed_s = watch.ElapsedSeconds();
  double ideal_s = kJobs * kCostUs / 1e6 / 2.0;  // 0.2s at 2 cores
  EXPECT_GE(elapsed_s, ideal_s * 0.45);  // burst credit can halve it
  EXPECT_LE(elapsed_s, ideal_s * 3.0);
}

TEST(SimulatedCpuTest, FifoFairnessBetweenCheapAndExpensiveConsumers) {
  gen::SimulatedCpu cpu(1.0);
  std::atomic<int> cheap{0};
  std::atomic<int> expensive{0};
  std::atomic<bool> run{true};
  std::thread cheap_thread([&] {
    while (run.load()) {
      cpu.Consume(200);
      cheap.fetch_add(1);
    }
  });
  std::thread expensive_thread([&] {
    while (run.load()) {
      cpu.Consume(1000);
      expensive.fetch_add(1);
    }
  });
  common::SleepMillis(400);
  run.store(false);
  cheap_thread.join();
  expensive_thread.join();
  // FIFO grants alternate between the two waiters, so their completion
  // COUNTS stay comparable (a greedy bucket would let the cheap one
  // finish ~5x as many).
  ASSERT_GT(expensive.load(), 0);
  double ratio =
      static_cast<double>(cheap.load()) / expensive.load();
  EXPECT_LT(ratio, 2.5) << "cheap=" << cheap << " expensive=" << expensive;
}

}  // namespace
}  // namespace asterix
