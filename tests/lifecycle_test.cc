// Connection lifecycle tests at the CentralFeedManager level: deep
// cascades and source selection, head sharing/release, reconnect after
// full and partial disconnects, store-node rejoin rescheduling, the feed
// console report, elastic auto-scaling, and the spatial query path fed
// by an ingesting feed.
#include <gtest/gtest.h>

#include "asterix/asterix.h"
#include "common/clock.h"
#include "feeds/udf.h"
#include "gen/tweetgen.h"
#include "testing_util.h"

namespace asterix {
namespace {

using adm::Value;
using asterix::testing::TweetsDataset;
using asterix::testing::WaitFor;

class LifecycleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    InstanceOptions options;
    options.num_nodes = 5;
    options.heartbeat_period_ms = 10;
    options.heartbeat_timeout_ms = 100;
    db_ = std::make_unique<AsterixInstance>(options);
    ASSERT_TRUE(db_->Start().ok());
  }

  void InstallChain() {
    ASSERT_TRUE(
        db_->InstallUdf(feeds::AqlUdf::ExtractHashtags("f1")).ok());
    ASSERT_TRUE(db_->InstallUdf(std::make_shared<feeds::JavaUdf>(
                        "lib", "f2",
                        [](const Value& v) -> std::optional<Value> {
                          Value out = v;
                          out.SetField("mark2", Value::Int64(2));
                          return out;
                        }))
                    .ok());
    ASSERT_TRUE(db_->InstallUdf(std::make_shared<feeds::JavaUdf>(
                        "lib", "f3",
                        [](const Value& v) -> std::optional<Value> {
                          Value out = v;
                          out.SetField("mark3", Value::Int64(3));
                          return out;
                        }))
                    .ok());
    feeds::FeedDef root;
    root.name = "Root";
    root.adaptor_alias = "synthetic_tweets";
    root.adaptor_config = {{"rate", "3000"}};
    ASSERT_TRUE(db_->CreateFeed(root).ok());
    feeds::FeedDef mid;
    mid.name = "Mid";
    mid.is_primary = false;
    mid.parent_feed = "Root";
    mid.udf = "f1";
    ASSERT_TRUE(db_->CreateFeed(mid).ok());
    feeds::FeedDef leaf;
    leaf.name = "Leaf";
    leaf.is_primary = false;
    leaf.parent_feed = "Mid";
    leaf.udf = "lib#f2";
    ASSERT_TRUE(db_->CreateFeed(leaf).ok());
  }

  std::unique_ptr<AsterixInstance> db_;
};

TEST_F(LifecycleTest, DeepCascadeChainsJointsCorrectly) {
  InstallChain();
  ASSERT_TRUE(db_->CreateDataset(TweetsDataset("D1")).ok());
  ASSERT_TRUE(db_->CreateDataset(TweetsDataset("D2")).ok());
  ASSERT_TRUE(db_->CreateDataset(TweetsDataset("D3")).ok());

  // Connect leaf first: its tail applies the FULL chain from the head.
  ASSERT_TRUE(db_->ConnectFeed("Leaf", "D3").ok());
  auto leaf = db_->feed_manager().GetConnection("Leaf", "D3");
  ASSERT_TRUE(leaf.ok());
  EXPECT_EQ(leaf->source_joint, "Root");
  ASSERT_EQ(leaf->udf_chain.size(), 2u);
  EXPECT_EQ(leaf->exposed_joints.back(), "Root:f1:lib#f2");

  // Connecting Mid now finds its own records' joint already flowing.
  ASSERT_TRUE(db_->ConnectFeed("Mid", "D2").ok());
  auto mid = db_->feed_manager().GetConnection("Mid", "D2");
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid->source_joint, "Root:f1");
  EXPECT_TRUE(mid->udf_chain.empty());  // records are ready-made

  // And the primary taps the raw head joint.
  ASSERT_TRUE(db_->ConnectFeed("Root", "D1").ok());
  auto root = db_->feed_manager().GetConnection("Root", "D1");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->source_joint, "Root");

  // All three datasets fill at the same pace (fetch-once).
  ASSERT_TRUE(WaitFor(
      [&] {
        return db_->CountDataset("D1").value() > 500 &&
               db_->CountDataset("D2").value() > 500 &&
               db_->CountDataset("D3").value() > 500;
      },
      10000));
  // Chain semantics: D3 records carry both marks, D2 only topics.
  bool checked = false;
  ASSERT_TRUE(db_->ScanDataset("D3", [&](const Value& record) {
    checked = true;
    EXPECT_NE(record.GetField("topics"), nullptr);
    EXPECT_NE(record.GetField("mark2"), nullptr);
  }).ok());
  EXPECT_TRUE(checked);
  ASSERT_TRUE(db_->ScanDataset("D2", [&](const Value& record) {
    EXPECT_NE(record.GetField("topics"), nullptr);
    EXPECT_EQ(record.GetField("mark2"), nullptr);
  }).ok());

  EXPECT_TRUE(db_->DisconnectFeed("Root", "D1").ok());
  EXPECT_TRUE(db_->DisconnectFeed("Mid", "D2").ok());
  EXPECT_TRUE(db_->DisconnectFeed("Leaf", "D3").ok());
}

TEST_F(LifecycleTest, HeadReleasedOnlyWhenLastConnectionCloses) {
  InstallChain();
  ASSERT_TRUE(db_->CreateDataset(TweetsDataset("D1")).ok());
  ASSERT_TRUE(db_->CreateDataset(TweetsDataset("D2")).ok());
  ASSERT_TRUE(db_->ConnectFeed("Root", "D1").ok());
  ASSERT_TRUE(db_->ConnectFeed("Mid", "D2").ok());
  EXPECT_NE(db_->feed_manager().GetHeadMetrics("Root"), nullptr);

  ASSERT_TRUE(db_->DisconnectFeed("Root", "D1").ok());
  // Mid still draws from the head: it must survive.
  EXPECT_NE(db_->feed_manager().GetHeadMetrics("Root"), nullptr);
  ASSERT_TRUE(db_->DisconnectFeed("Mid", "D2").ok());
  EXPECT_EQ(db_->feed_manager().GetHeadMetrics("Root"), nullptr);
}

TEST_F(LifecycleTest, ReconnectAfterFullDisconnectRebuildsHead) {
  InstallChain();
  ASSERT_TRUE(db_->CreateDataset(TweetsDataset("D1")).ok());
  ASSERT_TRUE(db_->ConnectFeed("Root", "D1").ok());
  ASSERT_TRUE(WaitFor(
      [&] { return db_->CountDataset("D1").value() > 100; }, 5000));
  ASSERT_TRUE(db_->DisconnectFeed("Root", "D1").ok());
  int64_t after_first = db_->CountDataset("D1").value();

  ASSERT_TRUE(db_->ConnectFeed("Root", "D1").ok());
  ASSERT_TRUE(WaitFor(
      [&] {
        return db_->CountDataset("D1").value() > after_first + 100;
      },
      5000));
  ASSERT_TRUE(db_->DisconnectFeed("Root", "D1").ok());
}

TEST_F(LifecycleTest, ReconnectAfterPartialDisconnectReusesSegment) {
  InstallChain();
  ASSERT_TRUE(db_->CreateDataset(TweetsDataset("D2")).ok());
  ASSERT_TRUE(db_->CreateDataset(TweetsDataset("D3")).ok());
  ASSERT_TRUE(
      db_->ConnectFeed("Mid", "D2", "Basic", {.compute_count = 1}).ok());
  ASSERT_TRUE(
      db_->ConnectFeed("Leaf", "D3", "Basic", {.compute_count = 1}).ok());
  ASSERT_TRUE(WaitFor(
      [&] { return db_->CountDataset("D2").value() > 100; }, 5000));

  // Partial: Leaf depends on Mid's compute joint.
  ASSERT_TRUE(db_->DisconnectFeed("Mid", "D2").ok());
  auto mid = db_->feed_manager().GetConnection("Mid", "D2");
  ASSERT_TRUE(mid.ok());
  EXPECT_TRUE(mid->store_detached);

  // Reconnecting Mid reattaches the store stage to the live segment
  // (Figure 5.10's reconnect discussion): the cascade returns to its
  // pre-disconnect shape.
  ASSERT_TRUE(db_->ConnectFeed("Mid", "D2").ok());
  auto again = db_->feed_manager().GetConnection("Mid", "D2");
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->store_detached);
  EXPECT_EQ(again->source_joint, "Root");
  ASSERT_EQ(again->udf_chain.size(), 1u);
  int64_t at_reconnect = db_->CountDataset("D2").value();
  ASSERT_TRUE(WaitFor(
      [&] {
        return db_->CountDataset("D2").value() > at_reconnect + 100;
      },
      5000));
  ASSERT_TRUE(db_->DisconnectFeed("Leaf", "D3").ok());
  ASSERT_TRUE(db_->DisconnectFeed("Mid", "D2").ok());
}

TEST_F(LifecycleTest, StoreNodeRejoinReschedulesTerminatedFeed) {
  InstallChain();
  ASSERT_TRUE(db_->CreateDataset(TweetsDataset("D1", {"E"})).ok());
  ASSERT_TRUE(db_->ConnectFeed("Root", "D1", "FaultTolerant").ok());
  ASSERT_TRUE(WaitFor(
      [&] { return db_->CountDataset("D1").value() > 100; }, 5000));

  // Store-node loss terminates the feed (no replication, §6.2.3)...
  db_->KillNode("E");
  ASSERT_TRUE(WaitFor(
      [&] { return !db_->feed_manager().IsConnected("Root", "D1"); },
      5000));

  // ...but when the node rejoins (after its log-based recovery), the
  // pipeline is rescheduled and ingestion resumes.
  db_->RestartNode("E");
  ASSERT_TRUE(WaitFor(
      [&] { return db_->feed_manager().IsConnected("Root", "D1"); },
      5000));
  int64_t at_rejoin = db_->CountDataset("D1").value();
  ASSERT_TRUE(WaitFor(
      [&] { return db_->CountDataset("D1").value() > at_rejoin + 100; },
      5000))
      << db_->CountDataset("D1").value();
  ASSERT_TRUE(db_->DisconnectFeed("Root", "D1").ok());
}

TEST_F(LifecycleTest, FeedConsoleDescribesConnections) {
  InstallChain();
  ASSERT_TRUE(db_->CreateDataset(TweetsDataset("D2")).ok());
  ASSERT_TRUE(db_->ConnectFeed("Mid", "D2").ok());
  ASSERT_TRUE(WaitFor(
      [&] { return db_->CountDataset("D2").value() > 50; }, 5000));
  std::string report = db_->feed_manager().DescribeFeeds();
  EXPECT_NE(report.find("connection Mid->D2"), std::string::npos);
  EXPECT_NE(report.find("intake"), std::string::npos);
  EXPECT_NE(report.find("compute"), std::string::npos);
  EXPECT_NE(report.find("udf f1"), std::string::npos);
  EXPECT_NE(report.find("head Root"), std::string::npos);
  ASSERT_TRUE(db_->DisconnectFeed("Mid", "D2").ok());
}

TEST_F(LifecycleTest, ElasticMonitorScalesOutUnderCongestion) {
  // An expensive UDF (service time) with width 1 cannot keep pace; the
  // congestion monitor must scale the compute stage out on its own.
  ASSERT_TRUE(db_->InstallUdf(std::make_shared<feeds::JavaUdf>(
                      "lib", "slow",
                      [](const Value& v) -> std::optional<Value> {
                        common::SleepMicros(1500);
                        return v;
                      }))
                  .ok());
  feeds::FeedDef feed;
  feed.name = "F";
  feed.adaptor_alias = "synthetic_tweets";
  feed.adaptor_config = {{"rate", "2000"}};
  feed.udf = "lib#slow";
  ASSERT_TRUE(db_->CreateFeed(feed).ok());
  ASSERT_TRUE(db_->CreateDataset(TweetsDataset("D")).ok());
  ASSERT_TRUE(db_->CreatePolicy("TightElastic", "Elastic",
                                {{"memory.budget", "256KB"}})
                  .ok());
  ASSERT_TRUE(db_->ConnectFeed("F", "D", "TightElastic",
                               {.compute_count = 1})
                  .ok());
  ASSERT_TRUE(WaitFor(
      [&] {
        auto conn = db_->feed_manager().GetConnection("F", "D");
        return conn.ok() && conn->compute_width > 1;
      },
      15000));
  ASSERT_TRUE(db_->DisconnectFeed("F", "D").ok());
}

TEST_F(LifecycleTest, SpatialAggregateOverIngestedTweets) {
  // Chapter 8's Twitter-analysis use case: ingest with a lat/long ->
  // point UDF, then aggregate per grid cell off the spatial index.
  ASSERT_TRUE(db_->InstallUdf(std::make_shared<feeds::AqlUdf>(
                      "geo",
                      std::vector<feeds::AqlUdf::Step>{
                          {feeds::AqlUdf::Step::Op::kLatLongToPoint,
                           {"latitude", "longitude", "location"},
                           Value::Null()}}))
                  .ok());
  storage::DatasetDef def = TweetsDataset("Geo");
  def.indexes.push_back(
      {"locationIndex", "location", storage::IndexKind::kRTree});
  ASSERT_TRUE(db_->CreateDataset(def).ok());
  feeds::FeedDef feed;
  feed.name = "GeoFeed";
  feed.adaptor_alias = "synthetic_tweets";
  feed.adaptor_config = {{"rate", "20000"}, {"limit", "2000"}};
  feed.udf = "geo";
  ASSERT_TRUE(db_->CreateFeed(feed).ok());
  ASSERT_TRUE(db_->ConnectFeed("GeoFeed", "Geo").ok());
  ASSERT_TRUE(WaitFor(
      [&] { return db_->CountDataset("Geo").value() == 2000; }, 10000));

  // The US bounding box of Listing 3.3 (TweetGen points lie inside it).
  storage::Rect us{24.0, -124.0, 49.0, -66.0};
  auto cells = db_->SpatialAggregate("Geo", "locationIndex", us,
                                     /*lat_resolution=*/5.0,
                                     /*long_resolution=*/10.0);
  ASSERT_TRUE(cells.ok()) << cells.status().ToString();
  int64_t total = 0;
  for (const auto& [cell, count] : *cells) {
    EXPECT_GE(cell.first, 0);
    EXPECT_GE(cell.second, 0);
    total += count;
  }
  EXPECT_EQ(total, 2000);   // every tweet lands in exactly one cell
  EXPECT_GT(cells->size(), 4u);  // spread across the grid

  // Unknown index and bad resolutions are rejected.
  EXPECT_FALSE(db_->SpatialAggregate("Geo", "nope", us, 1, 1).ok());
  EXPECT_FALSE(
      db_->SpatialAggregate("Geo", "locationIndex", us, 0, 1).ok());
  ASSERT_TRUE(db_->DisconnectFeed("GeoFeed", "Geo").ok());
}

}  // namespace
}  // namespace asterix
