// Edge cases across substrates: WAL torn tails, durable-write flushing,
// LSM flush/merge statistics, channel close semantics, interval-counter
// binning, and frame memory accounting.
#include <filesystem>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "feeds/metrics.h"
#include "gen/tweetgen.h"
#include "hyracks/frame.h"
#include "storage/key.h"
#include "storage/lsm_index.h"
#include "storage/wal.h"
#include "testing_util.h"

namespace asterix {
namespace {

using adm::Value;

std::string TempPath(const std::string& name) {
  std::string dir = "/tmp/asterix_test/edge";
  std::filesystem::create_directories(dir);
  return dir + "/" + name + "." + std::to_string(common::NowMicros());
}

TEST(WalEdgeTest, TornTailIsIgnoredOnReplay) {
  std::string path = TempPath("torn");
  {
    storage::Wal wal(path);
    ASSERT_TRUE(wal.Open().ok());
    ASSERT_TRUE(wal.Append("alpha").ok());
    ASSERT_TRUE(wal.Append("beta").ok());
    ASSERT_TRUE(wal.Sync().ok());
  }
  {
    // Simulate a crash mid-append: a length prefix promising more bytes
    // than were written.
    std::FILE* f = std::fopen(path.c_str(), "ab");
    uint32_t len = 100;
    std::fwrite(&len, sizeof(len), 1, f);
    std::fwrite("par", 1, 3, f);  // truncated payload
    std::fclose(f);
  }
  storage::Wal wal(path);
  ASSERT_TRUE(wal.Open().ok());
  std::vector<std::string> entries;
  ASSERT_TRUE(
      wal.Replay([&](const std::string& e) { entries.push_back(e); })
          .ok());
  // Standard WAL recovery: complete entries only, torn tail dropped.
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0], "alpha");
  EXPECT_EQ(entries[1], "beta");
  std::remove(path.c_str());
}

TEST(WalEdgeTest, DurableModeFlushesEveryAppend) {
  std::string path = TempPath("durable");
  storage::Wal wal(path, /*durable=*/true);
  ASSERT_TRUE(wal.Open().ok());
  ASSERT_TRUE(wal.Append("x").ok());
  // Visible on disk without an explicit Sync.
  EXPECT_GT(std::filesystem::file_size(path), 0u);
  std::remove(path.c_str());
}

TEST(WalEdgeTest, ReplayOfMissingFileFails) {
  storage::Wal wal("/tmp/asterix_test/edge/never_written.wal");
  EXPECT_FALSE(wal.Replay([](const std::string&) {}).ok());
}

TEST(LsmEdgeTest, ManualFlushCreatesRunAndPreservesData) {
  storage::LsmIndex index;
  for (int i = 0; i < 10; ++i) {
    auto key = storage::EncodeKey(Value::Int64(i)).value();
    ASSERT_TRUE(index.Insert(key, Value::Int64(i)).ok());
  }
  EXPECT_EQ(index.run_count(), 0u);
  index.Flush();
  EXPECT_EQ(index.run_count(), 1u);
  index.Flush();  // empty memtable: no extra run
  EXPECT_EQ(index.run_count(), 1u);
  EXPECT_EQ(index.Size(), 10);
  auto key = storage::EncodeKey(Value::Int64(7)).value();
  ASSERT_TRUE(index.Get(key).has_value());
}

TEST(LsmEdgeTest, MergeCollapsesRunsToOne) {
  storage::LsmOptions options;
  options.memtable_bytes_limit = 64;  // flush almost every insert
  options.max_runs = 4;
  storage::LsmIndex index(options);
  for (int i = 0; i < 64; ++i) {
    auto key = storage::EncodeKey(Value::Int64(i)).value();
    ASSERT_TRUE(index.Insert(key, Value::Int64(i)).ok());
  }
  index.Drain();  // wait for background flush/merge to catch up
  auto stats = index.stats();
  EXPECT_GT(stats.merges, 0);
  EXPECT_LT(index.run_count(), 4u);
  EXPECT_EQ(stats.inserts, 64);
  EXPECT_EQ(stats.live_keys, 64);
}

TEST(LsmEdgeTest, EmptyIndexBehaves) {
  storage::LsmIndex index;
  EXPECT_EQ(index.Size(), 0);
  EXPECT_FALSE(index.Get("anything").has_value());
  int visits = 0;
  index.Scan([&](const std::string&, const Value&) { ++visits; });
  EXPECT_EQ(visits, 0);
}

TEST(ChannelTest, DrainRespectsMaxAndOrder) {
  gen::Channel channel;
  for (int i = 0; i < 10; ++i) channel.Send(std::to_string(i));
  auto first = channel.Drain(4);
  ASSERT_EQ(first.size(), 4u);
  EXPECT_EQ(first[0], "0");
  EXPECT_EQ(first[3], "3");
  auto rest = channel.Drain();
  EXPECT_EQ(rest.size(), 6u);
  EXPECT_EQ(rest[5], "9");
  EXPECT_EQ(channel.pending(), 0u);
}

TEST(ChannelTest, CloseSemantics) {
  gen::Channel channel;
  channel.Send("last");
  channel.CloseSender();
  EXPECT_TRUE(channel.closed());
  // Pending data remains drainable after close.
  auto got = channel.Receive(10);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "last");
  EXPECT_FALSE(channel.Receive(10).has_value());
}

TEST(IntervalCounterTest, BinsByElapsedTime) {
  feeds::IntervalCounter counter(50);
  counter.Add(3);
  common::SleepMillis(60);
  counter.Add(2);
  counter.Add(1);
  auto series = counter.Series();
  ASSERT_GE(series.size(), 2u);
  EXPECT_EQ(series[0], 3);
  int64_t later = 0;
  for (size_t i = 1; i < series.size(); ++i) later += series[i];
  EXPECT_EQ(later, 3);
  counter.Reset();
  EXPECT_TRUE(counter.Series().empty());
}

TEST(FrameTest, ApproxBytesTracksContent) {
  hyracks::Frame empty;
  EXPECT_EQ(empty.ApproxBytes(), 0u);
  EXPECT_TRUE(empty.empty());
  auto frame = hyracks::MakeFrame(
      {Value::Record({{"id", Value::String("abcdefgh")}})});
  EXPECT_GT(frame->ApproxBytes(), 8u);
  EXPECT_EQ(frame->record_count(), 1u);
}

TEST(FrameTest, AppenderFlushesOnByteBound) {
  struct CountingWriter : hyracks::IFrameWriter {
    int frames = 0;
    common::Status NextFrame(const hyracks::FramePtr&) override {
      ++frames;
      return common::Status::OK();
    }
  } writer;
  // Byte bound trips long before the 1M record bound.
  hyracks::FrameAppender appender(&writer, /*max_records=*/1000000,
                                  /*max_bytes=*/256);
  gen::TweetFactory factory(0);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(appender.Append(factory.NextTweet()).ok());
  }
  ASSERT_TRUE(appender.FlushFrame().ok());
  EXPECT_GT(writer.frames, 3);  // tweets are ~600 bytes each
}

TEST(KeyEdgeTest, StringKeysAndBoundaries) {
  using storage::EncodeKey;
  EXPECT_LT(EncodeKey(Value::String("")).value(),
            EncodeKey(Value::String("a")).value());
  EXPECT_LT(EncodeKey(Value::String("a")).value(),
            EncodeKey(Value::String("aa")).value());
  // Int64 extremes round-trip and order.
  auto lo = EncodeKey(Value::Int64(INT64_MIN)).value();
  auto hi = EncodeKey(Value::Int64(INT64_MAX)).value();
  EXPECT_LT(lo, hi);
  EXPECT_EQ(storage::DecodeKey(lo)->AsInt64(), INT64_MIN);
  EXPECT_EQ(storage::DecodeKey(hi)->AsInt64(), INT64_MAX);
  // Corrupt keys are rejected, not mis-decoded.
  EXPECT_FALSE(storage::DecodeKey("").ok());
  EXPECT_FALSE(storage::DecodeKey(std::string(1, '\x02')).ok());
}

TEST(TweetGenEdgeTest, StopInterruptsPatternEarly) {
  gen::TweetGenServer server(0, gen::Pattern::Constant(100000, 60000));
  server.Start();
  common::SleepMillis(50);
  server.Stop();
  server.Join();
  EXPECT_TRUE(server.finished());
  // Ran for ~50ms, not the configured 60s.
  EXPECT_LT(server.tweets_sent(), 100000 * 2);
}

TEST(PatternEdgeTest, TimeScalePreservesRecordBudget) {
  // Compressing time must not change the records-per-interval shape.
  gen::TweetGenServer fast(0, gen::Pattern::Constant(1000, 2000));
  fast.Start(/*time_scale=*/0.25);  // runs in ~500ms wall clock
  common::Stopwatch watch;
  fast.Join();
  // Wall-clock bounds: meaningless under TSan's slowdown; the budget
  // ceiling below still holds (time compression must not overproduce).
  if (!asterix::testing::kTsanActive) {
    EXPECT_LT(watch.ElapsedMillis(), 1500);
    EXPECT_GT(fast.tweets_sent(), 1400);
  }
  EXPECT_LE(fast.tweets_sent(), 2200);
}

}  // namespace
}  // namespace asterix
