#include <gtest/gtest.h>

#include "adm/datatype.h"
#include "adm/parser.h"
#include "adm/value.h"

namespace asterix {
namespace adm {
namespace {

Value SampleTweet() {
  return Value::Record({
      {"id", Value::String("t1")},
      {"user",
       Value::Record({{"screen_name", Value::String("alice")},
                      {"followers_count", Value::Int64(42)}})},
      {"latitude", Value::Double(33.5)},
      {"longitude", Value::Double(-117.8)},
      {"created_at", Value::Datetime(1420070400000)},
      {"message_text", Value::String("hello #world")},
  });
}

TEST(ValueTest, PrimitivesRoundTripAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Boolean(true).AsBoolean(), true);
  EXPECT_EQ(Value::Int64(-5).AsInt64(), -5);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("x").AsString(), "x");
  EXPECT_EQ(Value::Datetime(99).AsDatetime(), 99);
  Point p = Value::MakePoint(1.0, 2.0).AsPoint();
  EXPECT_DOUBLE_EQ(p.x, 1.0);
  EXPECT_DOUBLE_EQ(p.y, 2.0);
}

TEST(ValueTest, RecordFieldAccess) {
  Value tweet = SampleTweet();
  ASSERT_NE(tweet.GetField("id"), nullptr);
  EXPECT_EQ(tweet.GetField("id")->AsString(), "t1");
  EXPECT_EQ(tweet.GetField("nope"), nullptr);
  const Value* user = tweet.GetField("user");
  ASSERT_NE(user, nullptr);
  EXPECT_EQ(user->GetField("followers_count")->AsInt64(), 42);
}

TEST(ValueTest, SetFieldAddsAndReplaces) {
  Value r = Value::Record({{"a", Value::Int64(1)}});
  r.SetField("b", Value::Int64(2));
  EXPECT_EQ(r.GetField("b")->AsInt64(), 2);
  r.SetField("a", Value::Int64(9));
  EXPECT_EQ(r.GetField("a")->AsInt64(), 9);
  EXPECT_EQ(r.AsRecord().size(), 2u);
}

TEST(ValueTest, CopyOnWriteIsolation) {
  Value a = Value::Record({{"x", Value::Int64(1)}});
  Value b = a;  // shares payload
  b.SetField("x", Value::Int64(2));
  EXPECT_EQ(a.GetField("x")->AsInt64(), 1);
  EXPECT_EQ(b.GetField("x")->AsInt64(), 2);
}

TEST(ValueTest, ListAppendCopyOnWrite) {
  Value a = Value::List({Value::Int64(1)});
  Value b = a;
  b.Append(Value::Int64(2));
  EXPECT_EQ(a.AsList().size(), 1u);
  EXPECT_EQ(b.AsList().size(), 2u);
}

TEST(ValueTest, RemoveField) {
  Value r = Value::Record(
      {{"a", Value::Int64(1)}, {"b", Value::Int64(2)}});
  EXPECT_TRUE(r.RemoveField("a"));
  EXPECT_FALSE(r.RemoveField("a"));
  EXPECT_EQ(r.GetField("a"), nullptr);
}

TEST(ValueTest, EqualityIsDeep) {
  EXPECT_EQ(SampleTweet(), SampleTweet());
  Value modified = SampleTweet();
  modified.SetField("id", Value::String("t2"));
  EXPECT_NE(SampleTweet(), modified);
}

TEST(ValueTest, ApproxSizeGrowsWithContent) {
  Value small = Value::Record({{"a", Value::Int64(1)}});
  Value big = SampleTweet();
  EXPECT_GT(big.ApproxSizeBytes(), small.ApproxSizeBytes());
}

TEST(SerializeTest, AdmTextForms) {
  EXPECT_EQ(Value::Null().ToAdmString(), "null");
  EXPECT_EQ(Value::Boolean(false).ToAdmString(), "false");
  EXPECT_EQ(Value::Int64(7).ToAdmString(), "7");
  EXPECT_EQ(Value::Double(1.5).ToAdmString(), "1.5");
  EXPECT_EQ(Value::String("a\"b").ToAdmString(), "\"a\\\"b\"");
  EXPECT_EQ(Value::MakePoint(1, 2).ToAdmString(), "point(1.0, 2.0)");
  EXPECT_EQ(Value::Datetime(5).ToAdmString(), "datetime(5)");
  EXPECT_EQ(Value::List({Value::Int64(1), Value::Int64(2)}).ToAdmString(),
            "[1, 2]");
}

TEST(ParserTest, RoundTripsComplexValue) {
  Value tweet = SampleTweet();
  auto parsed = ParseAdm(tweet.ToAdmString());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, tweet);
}

TEST(ParserTest, ParsesScalars) {
  EXPECT_EQ(ParseAdm("42").value().AsInt64(), 42);
  EXPECT_EQ(ParseAdm("-3").value().AsInt64(), -3);
  EXPECT_DOUBLE_EQ(ParseAdm("2.75").value().AsDouble(), 2.75);
  EXPECT_DOUBLE_EQ(ParseAdm("1e3").value().AsDouble(), 1000.0);
  EXPECT_TRUE(ParseAdm("null").value().is_null());
  EXPECT_TRUE(ParseAdm("true").value().AsBoolean());
  EXPECT_EQ(ParseAdm("\"hi\\n\"").value().AsString(), "hi\n");
}

TEST(ParserTest, ParsesConstructors) {
  Value p = ParseAdm("point(1.5, -2.5)").value();
  EXPECT_DOUBLE_EQ(p.AsPoint().x, 1.5);
  EXPECT_DOUBLE_EQ(p.AsPoint().y, -2.5);
  EXPECT_EQ(ParseAdm("datetime(1000)").value().AsDatetime(), 1000);
}

TEST(ParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseAdm("{").ok());
  EXPECT_FALSE(ParseAdm("[1,]").ok());
  EXPECT_FALSE(ParseAdm("\"unterminated").ok());
  EXPECT_FALSE(ParseAdm("12abc").ok());
  EXPECT_FALSE(ParseAdm("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseAdm("point(1)").ok());
  EXPECT_FALSE(ParseAdm("").ok());
  EXPECT_FALSE(ParseAdm("1 2").ok());
}

TEST(ParserTest, ErrorsIncludeOffset) {
  auto r = ParseAdm("{\"a\": @}");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("offset"), std::string::npos);
}

class AdmRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(AdmRoundTripTest, ParseSerializeParseIsIdentity) {
  auto first = ParseAdm(GetParam());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = ParseAdm(first->ToAdmString());
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(*first, *second);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, AdmRoundTripTest,
    ::testing::Values(
        "null", "true", "false", "0", "-9223372036854775807", "3.25",
        "-1e-3", "\"\"", "\"escape \\\\ \\\" \\n\"", "[]", "[[[1]]]",
        "{}", "{\"k\": {\"k\": {\"k\": null}}}",
        "point(0.0, 0.0)", "datetime(0)",
        "{\"mixed\": [1, 2.5, \"s\", point(1, 2), {\"n\": []}]}"));

TEST(DatatypeTest, OpenTypeAdmitsExtraFields) {
  TypeRegistry registry;
  ASSERT_TRUE(registry
                  .Register(TypeBuilder("T", /*open=*/true)
                                .Field("id", TypeTag::kString)
                                .Build())
                  .ok());
  Value r = Value::Record(
      {{"id", Value::String("a")}, {"extra", Value::Int64(1)}});
  EXPECT_TRUE(registry.Conforms(r, "T").ok());
}

TEST(DatatypeTest, ClosedTypeRejectsExtraFields) {
  TypeRegistry registry;
  ASSERT_TRUE(registry
                  .Register(TypeBuilder("T", /*open=*/false)
                                .Field("id", TypeTag::kString)
                                .Build())
                  .ok());
  Value r = Value::Record(
      {{"id", Value::String("a")}, {"extra", Value::Int64(1)}});
  EXPECT_FALSE(registry.Conforms(r, "T").ok());
}

TEST(DatatypeTest, MissingRequiredFieldFails) {
  TypeRegistry registry;
  ASSERT_TRUE(registry
                  .Register(TypeBuilder("T")
                                .Field("id", TypeTag::kString)
                                .Field("n", TypeTag::kInt64)
                                .Build())
                  .ok());
  Value r = Value::Record({{"id", Value::String("a")}});
  auto status = registry.Conforms(r, "T");
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("n"), std::string::npos);
}

TEST(DatatypeTest, OptionalFieldMayBeAbsentOrNull) {
  TypeRegistry registry;
  ASSERT_TRUE(registry
                  .Register(TypeBuilder("T")
                                .Field("id", TypeTag::kString)
                                .Field("loc", TypeTag::kPoint,
                                       /*optional=*/true)
                                .Build())
                  .ok());
  EXPECT_TRUE(
      registry.Conforms(Value::Record({{"id", Value::String("a")}}), "T")
          .ok());
  EXPECT_TRUE(registry
                  .Conforms(Value::Record({{"id", Value::String("a")},
                                           {"loc", Value::Null()}}),
                            "T")
                  .ok());
  EXPECT_FALSE(registry
                   .Conforms(Value::Record({{"id", Value::String("a")},
                                            {"loc", Value::Int64(3)}}),
                             "T")
                   .ok());
}

TEST(DatatypeTest, NestedRecordValidation) {
  TypeRegistry registry;
  ASSERT_TRUE(registry
                  .Register(TypeBuilder("User", /*open=*/false)
                                .Field("name", TypeTag::kString)
                                .Build())
                  .ok());
  ASSERT_TRUE(registry
                  .Register(TypeBuilder("Tweet")
                                .Field("id", TypeTag::kString)
                                .RecordField("user", "User")
                                .Build())
                  .ok());
  Value good = Value::Record(
      {{"id", Value::String("1")},
       {"user", Value::Record({{"name", Value::String("a")}})}});
  EXPECT_TRUE(registry.Conforms(good, "Tweet").ok());
  Value bad = Value::Record(
      {{"id", Value::String("1")},
       {"user", Value::Record({{"nom", Value::String("a")}})}});
  EXPECT_FALSE(registry.Conforms(bad, "Tweet").ok());
}

TEST(DatatypeTest, ListElementValidation) {
  TypeRegistry registry;
  ASSERT_TRUE(registry
                  .Register(TypeBuilder("T")
                                .Field("id", TypeTag::kString)
                                .ListField("topics", TypeTag::kString)
                                .Build())
                  .ok());
  Value good = Value::Record(
      {{"id", Value::String("1")},
       {"topics", Value::List({Value::String("x")})}});
  EXPECT_TRUE(registry.Conforms(good, "T").ok());
  Value bad = Value::Record(
      {{"id", Value::String("1")},
       {"topics", Value::List({Value::Int64(1)})}});
  EXPECT_FALSE(registry.Conforms(bad, "T").ok());
}

TEST(DatatypeTest, DuplicateRegistrationFails) {
  TypeRegistry registry;
  EXPECT_TRUE(registry.Register(TypeBuilder("T").Build()).ok());
  EXPECT_FALSE(registry.Register(TypeBuilder("T").Build()).ok());
}

}  // namespace
}  // namespace adm
}  // namespace asterix
