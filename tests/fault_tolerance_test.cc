// Chapter 6 machinery: hard failures, the zombie/buffer/handoff protocol,
// fault isolation inside a cascade network, at-least-once delivery, and
// the elastic rescale path shared with Chapter 7.
#include <gtest/gtest.h>

#include "asterix/asterix.h"
#include "common/clock.h"
#include "feeds/udf.h"
#include "gen/tweetgen.h"
#include "testing_util.h"

namespace asterix {
namespace {

using adm::Value;
using asterix::testing::FastOptions;
using asterix::testing::TweetsDataset;
using asterix::testing::WaitFor;

class FaultToleranceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A..F; spare nodes for substitution. FastOptions also widens the
    // heartbeat window under TSan, where a healthy node's heartbeat
    // thread can miss a 100 ms deadline just by not being scheduled.
    InstanceOptions options = FastOptions(6);
    db_ = std::make_unique<AsterixInstance>(options);
    ASSERT_TRUE(db_->Start().ok());
  }

  /// A feed with a hashtag UDF whose compute runs on specific nodes.
  void SetupFeed(const std::string& source_addr, gen::Channel* channel,
                 std::vector<std::string> store_nodes) {
    feeds::ExternalSourceRegistry::Instance().RegisterChannel(source_addr,
                                                              channel);
    ASSERT_TRUE(
        db_->CreateDataset(TweetsDataset("Sink", std::move(store_nodes))).ok());
    ASSERT_TRUE(
        db_->InstallUdf(feeds::AqlUdf::ExtractHashtags("tags")).ok());
    feeds::FeedDef primary;
    primary.name = "Feed";
    primary.adaptor_alias = "socket_adaptor";
    primary.adaptor_config = {{"sockets", source_addr}};
    primary.udf = "tags";
    ASSERT_TRUE(db_->CreateFeed(primary).ok());
  }

  /// Fixture-owned generator: declared before db_ so the channel outlives
  /// the instance — collect tasks may still poll it during teardown.
  gen::TweetGenServer& NewSource(uint64_t seed, gen::Pattern pattern) {
    sources_.push_back(
        std::make_unique<gen::TweetGenServer>(seed, std::move(pattern)));
    return *sources_.back();
  }

  std::vector<std::unique_ptr<gen::TweetGenServer>> sources_;
  std::unique_ptr<AsterixInstance> db_;
};

TEST_F(FaultToleranceTest, ComputeNodeFailureRecovers) {
  auto& source = NewSource(0, gen::Pattern::Constant(1500, 4000));
  SetupFeed("ft:1", &source.channel(), {"E", "F"});
  // Pin the compute stage away from the intake/collect and store nodes:
  // this test exercises a *pure* compute-node loss (Figure 6.3), where
  // at-least-once makes the recovery lossless. (Losing the intake node
  // additionally loses in-flight intake data — covered separately.)
  feeds::ConnectOptions copts;
  ASSERT_TRUE(db_->ConnectFeed("Feed", "Sink", "FaultTolerant",
                               {.compute_count = 1})
                  .ok());
  auto pre = db_->feed_manager().GetConnection("Feed", "Sink");
  ASSERT_TRUE(pre.ok());
  std::string intake_node = pre->intake_locations[0];
  ASSERT_TRUE(db_->DisconnectFeed("Feed", "Sink").ok());
  for (const std::string& node : {"A", "B", "C", "D"}) {
    if (node != intake_node && copts.compute_locations.size() < 2) {
      copts.compute_locations.push_back(node);
    }
  }
  ASSERT_TRUE(
      db_->ConnectFeed("Feed", "Sink", "FaultTolerant", copts).ok());
  auto conn = db_->feed_manager().GetConnection("Feed", "Sink");
  ASSERT_TRUE(conn.ok());
  ASSERT_EQ(conn->assign_locations.size(), 1u);
  std::string compute_node = conn->assign_locations[0][0];
  ASSERT_NE(compute_node, conn->intake_locations[0]);

  source.Start();
  ASSERT_TRUE(WaitFor(
      [&] { return db_->CountDataset("Sink").value() > 500; }, 5000));

  db_->KillNode(compute_node);

  source.Join();
  int64_t sent = source.tweets_sent();
  // At-least-once + upsert-by-key: every sent record is eventually
  // persisted exactly once despite the failure.
  ASSERT_TRUE(WaitFor(
      [&] { return db_->CountDataset("Sink").value() == sent; }, 20000))
      << "sent=" << sent
      << " stored=" << db_->CountDataset("Sink").value();

  // The pipeline was rescheduled around the dead node.
  conn = db_->feed_manager().GetConnection("Feed", "Sink");
  ASSERT_TRUE(conn.ok());
  EXPECT_FALSE(conn->terminated);
  for (const auto& stage : conn->assign_locations) {
    for (const auto& node : stage) EXPECT_NE(node, compute_node);
  }
  feeds::ExternalSourceRegistry::Instance().UnregisterChannel("ft:1");
}

TEST_F(FaultToleranceTest, IntakeNodeFailureRecovers) {
  auto& source = NewSource(0, gen::Pattern::Constant(1500, 4000));
  SetupFeed("ft:2", &source.channel(), {"E", "F"});
  ASSERT_TRUE(db_->ConnectFeed("Feed", "Sink", "FaultTolerant",
                               {.compute_count = 2})
                  .ok());
  auto conn = db_->feed_manager().GetConnection("Feed", "Sink");
  ASSERT_TRUE(conn.ok());
  std::string intake_node = conn->intake_locations[0];

  source.Start();
  ASSERT_TRUE(WaitFor(
      [&] { return db_->CountDataset("Sink").value() > 500; }, 5000));

  db_->KillNode(intake_node);

  source.Join();
  int64_t sent = source.tweets_sent();
  // The head section is rebuilt on a substitute node; records pending in
  // the in-process channel are re-drained there, and at-least-once
  // replays anything lost between intake and store. Records that were
  // inside the dead collect instance are genuinely lost (the paper does
  // not guarantee lossless ingestion across intake-node loss), so accept
  // a small gap.
  ASSERT_TRUE(WaitFor(
      [&] {
        return db_->CountDataset("Sink").value() >= sent * 95 / 100;
      },
      20000))
      << "sent=" << sent
      << " stored=" << db_->CountDataset("Sink").value();

  conn = db_->feed_manager().GetConnection("Feed", "Sink");
  ASSERT_TRUE(conn.ok());
  EXPECT_FALSE(conn->terminated);
  for (const auto& node : conn->intake_locations) {
    EXPECT_NE(node, intake_node);
  }
  feeds::ExternalSourceRegistry::Instance().UnregisterChannel("ft:2");
}

TEST_F(FaultToleranceTest, StoreNodeFailureTerminatesFeed) {
  auto& source = NewSource(0, gen::Pattern::Constant(1000, 3000));
  SetupFeed("ft:3", &source.channel(), {"E", "F"});
  ASSERT_TRUE(db_->ConnectFeed("Feed", "Sink", "FaultTolerant").ok());
  source.Start();
  ASSERT_TRUE(WaitFor(
      [&] { return db_->CountDataset("Sink").value() > 200; }, 5000));

  // Loss of a store node = loss of a dataset partition; without
  // replication the feed terminates early (§6.2.3).
  db_->KillNode("E");
  ASSERT_TRUE(WaitFor(
      [&] { return !db_->feed_manager().IsConnected("Feed", "Sink"); },
      5000));
  source.Stop();
  source.Join();
  feeds::ExternalSourceRegistry::Instance().UnregisterChannel("ft:3");
}

TEST_F(FaultToleranceTest, NoRecoveryPolicyTerminatesOnAnyFailure) {
  auto& source = NewSource(0, gen::Pattern::Constant(1000, 3000));
  SetupFeed("ft:4", &source.channel(), {"E", "F"});
  ASSERT_TRUE(db_->CreatePolicy("Fragile", "Basic",
                                {{"recover.hard.failure", "false"}})
                  .ok());
  ASSERT_TRUE(db_->ConnectFeed("Feed", "Sink", "Fragile",
                               {.compute_count = 2})
                  .ok());
  auto conn = db_->feed_manager().GetConnection("Feed", "Sink");
  ASSERT_TRUE(conn.ok());

  source.Start();
  ASSERT_TRUE(WaitFor(
      [&] { return db_->CountDataset("Sink").value() > 100; }, 5000));
  db_->KillNode(conn->assign_locations[0][0]);
  ASSERT_TRUE(WaitFor(
      [&] { return !db_->feed_manager().IsConnected("Feed", "Sink"); },
      5000));
  source.Stop();
  source.Join();
  feeds::ExternalSourceRegistry::Instance().UnregisterChannel("ft:4");
}

TEST_F(FaultToleranceTest, FaultIsolationInCascade) {
  // Figure 6.3: losing a compute node of the secondary feed must not
  // disturb the primary feed sharing the head section.
  auto& source = NewSource(0, gen::Pattern::Constant(1500, 4000));
  feeds::ExternalSourceRegistry::Instance().RegisterChannel(
      "ft:5", &source.channel());
  ASSERT_TRUE(db_->CreateDataset(TweetsDataset("Raw", {"E"})).ok());
  ASSERT_TRUE(db_->CreateDataset(TweetsDataset("Cooked", {"F"})).ok());
  ASSERT_TRUE(db_->InstallUdf(feeds::AqlUdf::ExtractHashtags("tags")).ok());

  feeds::FeedDef primary;
  primary.name = "Feed";
  primary.adaptor_alias = "socket_adaptor";
  primary.adaptor_config = {{"sockets", "ft:5"}};
  ASSERT_TRUE(db_->CreateFeed(primary).ok());
  feeds::FeedDef secondary;
  secondary.name = "CookedFeed";
  secondary.is_primary = false;
  secondary.parent_feed = "Feed";
  secondary.udf = "tags";
  ASSERT_TRUE(db_->CreateFeed(secondary).ok());

  ASSERT_TRUE(db_->ConnectFeed("Feed", "Raw", "FaultTolerant").ok());
  // Pin the secondary's compute away from the intake and store nodes so
  // killing it cannot collaterally damage the primary's pipeline.
  auto raw = db_->feed_manager().GetConnection("Feed", "Raw");
  ASSERT_TRUE(raw.ok());
  std::string cooked_compute;
  for (const std::string& node : {"A", "B", "C", "D"}) {
    if (node != raw->intake_locations[0]) {
      cooked_compute = node;
      break;
    }
  }
  feeds::ConnectOptions copts;
  copts.compute_locations = {cooked_compute};
  ASSERT_TRUE(
      db_->ConnectFeed("CookedFeed", "Cooked", "FaultTolerant", copts)
          .ok());
  auto cooked = db_->feed_manager().GetConnection("CookedFeed", "Cooked");
  ASSERT_TRUE(cooked.ok());
  ASSERT_EQ(cooked->assign_locations[0][0], cooked_compute);

  source.Start();
  source.Join();
  int64_t sent = source.tweets_sent();

  // Kill the secondary's compute node mid-drain.
  db_->KillNode(cooked_compute);

  // The primary is fully isolated: every record lands.
  ASSERT_TRUE(WaitFor(
      [&] { return db_->CountDataset("Raw").value() == sent; }, 20000))
      << "sent=" << sent << " raw=" << db_->CountDataset("Raw").value();
  // And the secondary recovers to (at least-once implies at least) all.
  ASSERT_TRUE(WaitFor(
      [&] { return db_->CountDataset("Cooked").value() == sent; }, 20000))
      << "sent=" << sent
      << " cooked=" << db_->CountDataset("Cooked").value();
  feeds::ExternalSourceRegistry::Instance().UnregisterChannel("ft:5");
}

TEST_F(FaultToleranceTest, ElasticRescaleKeepsDataFlowing) {
  auto& source = NewSource(0, gen::Pattern::Constant(1200, 4000));
  SetupFeed("ft:6", &source.channel(), {"E", "F"});
  ASSERT_TRUE(db_->ConnectFeed("Feed", "Sink", "FaultTolerant",
                               {.compute_count = 1})
                  .ok());
  source.Start();
  ASSERT_TRUE(WaitFor(
      [&] { return db_->CountDataset("Sink").value() > 300; }, 5000));

  // Scale the compute stage out, then in, mid-stream.
  ASSERT_TRUE(db_->feed_manager().Rescale("Feed", "Sink", 3).ok());
  auto conn = db_->feed_manager().GetConnection("Feed", "Sink");
  ASSERT_TRUE(conn.ok());
  EXPECT_EQ(conn->compute_width, 3);
  common::SleepMillis(300);
  ASSERT_TRUE(db_->feed_manager().Rescale("Feed", "Sink", 2).ok());

  source.Join();
  int64_t sent = source.tweets_sent();
  ASSERT_TRUE(WaitFor(
      [&] { return db_->CountDataset("Sink").value() == sent; }, 20000))
      << "sent=" << sent
      << " stored=" << db_->CountDataset("Sink").value();
  feeds::ExternalSourceRegistry::Instance().UnregisterChannel("ft:6");
}

TEST_F(FaultToleranceTest, PartialDisconnectKeepsDependentsFlowing) {
  auto& source = NewSource(0, gen::Pattern::Constant(1200, 3000));
  feeds::ExternalSourceRegistry::Instance().RegisterChannel(
      "ft:7", &source.channel());
  ASSERT_TRUE(db_->CreateDataset(TweetsDataset("Mid", {"E"})).ok());
  ASSERT_TRUE(db_->CreateDataset(TweetsDataset("Deep", {"F"})).ok());
  ASSERT_TRUE(db_->InstallUdf(feeds::AqlUdf::ExtractHashtags("tags")).ok());
  ASSERT_TRUE(db_->InstallUdf(std::make_shared<feeds::JavaUdf>(
                      "lib", "sentiment",
                      [](const Value& record) -> std::optional<Value> {
                        Value out = record;
                        out.SetField(
                            "sentiment",
                            Value::Double(feeds::PseudoSentiment(
                                record.GetField("message_text")
                                    ->AsString())));
                        return out;
                      }))
                  .ok());

  feeds::FeedDef primary;
  primary.name = "Feed";
  primary.adaptor_alias = "socket_adaptor";
  primary.adaptor_config = {{"sockets", "ft:7"}};
  primary.udf = "tags";
  ASSERT_TRUE(db_->CreateFeed(primary).ok());
  feeds::FeedDef sentiment;
  sentiment.name = "SentimentFeed";
  sentiment.is_primary = false;
  sentiment.parent_feed = "Feed";
  sentiment.udf = "lib#sentiment";
  ASSERT_TRUE(db_->CreateFeed(sentiment).ok());

  ASSERT_TRUE(
      db_->ConnectFeed("Feed", "Mid", "Basic", {.compute_count = 1}).ok());
  ASSERT_TRUE(db_->ConnectFeed("SentimentFeed", "Deep", "Basic",
                               {.compute_count = 1})
                  .ok());
  // The sentiment feed must source from the parent's compute joint.
  auto deep = db_->feed_manager().GetConnection("SentimentFeed", "Deep");
  ASSERT_TRUE(deep.ok());
  EXPECT_EQ(deep->source_joint, "Feed:tags");

  source.Start();
  ASSERT_TRUE(WaitFor(
      [&] { return db_->CountDataset("Mid").value() > 200; }, 5000));

  // Disconnect the parent: partial dismantling only (Figure 5.10(b)).
  int64_t mid_at_disconnect = 0;
  ASSERT_TRUE(db_->DisconnectFeed("Feed", "Mid").ok());
  mid_at_disconnect = db_->CountDataset("Mid").value();

  source.Join();
  int64_t sent = source.tweets_sent();
  // The dependent keeps ingesting everything...
  ASSERT_TRUE(WaitFor(
      [&] { return db_->CountDataset("Deep").value() == sent; }, 20000))
      << "sent=" << sent
      << " deep=" << db_->CountDataset("Deep").value();
  // ...while the disconnected parent's dataset stops growing (modulo
  // records already in flight at disconnect time).
  common::SleepMillis(200);
  int64_t mid_final = db_->CountDataset("Mid").value();
  EXPECT_LT(mid_final, sent);
  EXPECT_GE(mid_final, mid_at_disconnect);
  feeds::ExternalSourceRegistry::Instance().UnregisterChannel("ft:7");
}

TEST_F(FaultToleranceTest, AtLeastOnceReplaysGroupAcks) {
  // Steady flow with FaultTolerant policy: the ack bus sees grouped
  // messages and the pending ledger drains.
  auto& source = NewSource(0, gen::Pattern::Constant(1000, 2000));
  SetupFeed("ft:8", &source.channel(), {"E"});
  ASSERT_TRUE(db_->ConnectFeed("Feed", "Sink", "FaultTolerant").ok());
  source.Start();
  source.Join();
  int64_t sent = source.tweets_sent();
  ASSERT_TRUE(WaitFor(
      [&] { return db_->CountDataset("Sink").value() == sent; }, 15000));
  // Grouping means far fewer ack messages than records (§5.6).
  int64_t acks = db_->feed_manager().ack_bus()->messages_published();
  EXPECT_GT(acks, 0);
  EXPECT_LT(acks, sent / 2);
  feeds::ExternalSourceRegistry::Instance().UnregisterChannel("ft:8");
}

}  // namespace
}  // namespace asterix
