#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/atomic_shim.h"
#include "common/blocking_queue.h"
#include "common/clock.h"
#include "common/failpoint.h"
#include "common/result.h"
#include "common/status.h"
#include "common/strings.h"
#include "testing_util.h"

namespace asterix {
namespace common {
namespace {

// ---- atomic shim pass-through (normal build) ------------------------
// The model build replaces these primitives wholesale; these tests pin
// the NORMAL build's behaviour so the shim can never drift from the std
// primitives it aliases (the static_asserts in atomic_shim.h pin the
// layout; these pin the semantics the data plane relies on).

TEST(AtomicShimTest, AtomicIsStdAtomicPassThrough) {
  static_assert(std::is_same_v<Atomic<uint64_t>, std::atomic<uint64_t>>);
  Atomic<uint64_t> a{7};
  EXPECT_EQ(a.load(std::memory_order_acquire), 7u);
  EXPECT_EQ(a.fetch_add(3, std::memory_order_acq_rel), 7u);
  uint64_t expected = 10;
  EXPECT_TRUE(a.compare_exchange_strong(expected, 42));
  EXPECT_EQ(a.load(), 42u);
}

TEST(AtomicShimTest, DataCellSetTakeCopySwap) {
  DataCell<int> cell(5);
  EXPECT_EQ(cell.Copy(), 5);
  cell.Set(9);
  EXPECT_EQ(cell.Copy(), 9);
  int other = 11;
  cell.SwapWith(other);
  EXPECT_EQ(other, 9);
  EXPECT_EQ(cell.Copy(), 11);
  EXPECT_EQ(cell.Take(), 11);
  EXPECT_EQ(cell.Copy(), 0);  // Take resets to T{}
}

TEST(AtomicShimTest, SpinWaitWhileReturnsOnStore) {
  Atomic<bool> flag{true};
  std::thread releaser([&] {
    SleepMillis(5);
    flag.store(false, std::memory_order_release);
  });
  SpinWaitWhile(flag, true);  // must return once the store lands
  EXPECT_FALSE(flag.load(std::memory_order_acquire));
  releaser.join();
}

TEST(AtomicShimTest, FenceAndYieldAreCallable) {
  // Pass-through build: these compile to the std primitives and are
  // safe to call from any context.
  AtomicFence(std::memory_order_seq_cst);
  AtomicFence(std::memory_order_acquire);
  AtomicFence(std::memory_order_release);
  SpinYield();
}

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, PredicatesMatchCodes) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::TimedOut("x").IsTimedOut());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::IOError("disk gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kIOError);
}

TEST(StringsTest, SplitAndTrim) {
  auto pieces = SplitAndTrim(" a, b ,c ,", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "c");
  EXPECT_EQ(pieces[3], "");
}

TEST(StringsTest, TrimEdges) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, JoinRoundTripsSplit) {
  std::vector<std::string> pieces = {"x", "y", "z"};
  EXPECT_EQ(Join(pieces, ","), "x,y,z");
}

TEST(StringsTest, Fnv1aIsStableAndSpread) {
  EXPECT_EQ(Fnv1a("abc"), Fnv1a("abc"));
  EXPECT_NE(Fnv1a("abc"), Fnv1a("abd"));
}

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_EQ(q.Pop().value(), 3);
}

TEST(BlockingQueueTest, TryPushRespectsCapacity) {
  BlockingQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full: this is the Discard-policy hook
  EXPECT_EQ(q.size(), 2u);
}

TEST(BlockingQueueTest, CloseDrainsThenStops) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Close();
  EXPECT_FALSE(q.Push(2));
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BlockingQueueTest, PushBlocksUntilSpace) {
  BlockingQueue<int> q(1);
  q.Push(1);
  std::atomic<bool> pushed{false};
  std::thread t([&] {
    q.Push(2);
    pushed.store(true);
  });
  EXPECT_TRUE(::asterix::testing::StaysFalseFor(
      [&] { return pushed.load(); }, 20));  // back-pressure in action
  q.Pop();
  t.join();
  EXPECT_TRUE(pushed.load());
}

TEST(BlockingQueueTest, PopForTimesOut) {
  BlockingQueue<int> q;
  auto item = q.PopFor(std::chrono::milliseconds(10));
  EXPECT_FALSE(item.has_value());
}

TEST(BlockingQueueTest, PopAllDrainsEverythingInOrder) {
  BlockingQueue<int> q;
  for (int i = 0; i < 5; ++i) q.Push(i);
  auto batch = q.PopAll();
  ASSERT_EQ(batch.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(batch[static_cast<size_t>(i)], i);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BlockingQueueTest, PopAllBlocksUntilItemArrives) {
  BlockingQueue<int> q;
  auto producer = ::asterix::testing::After(20, [&] { q.Push(42); });
  auto batch = q.PopAll();  // blocks until the producer delivers
  producer.join();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0], 42);
}

TEST(BlockingQueueTest, PopAllCloseAndDrainSemantics) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Close();
  auto batch = q.PopAll();  // close drains the remaining items first
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0], 1);
  EXPECT_EQ(batch[1], 2);
  EXPECT_TRUE(q.PopAll().empty());  // closed and drained
  EXPECT_TRUE(q.TryPopAll().empty());
}

TEST(BlockingQueueTest, PopAllForTimesOut) {
  BlockingQueue<int> q;
  EXPECT_TRUE(q.PopAllFor(std::chrono::milliseconds(10)).empty());
  q.Push(7);
  auto batch = q.PopAllFor(std::chrono::milliseconds(10));
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0], 7);
}

TEST(BlockingQueueTest, PopAllReleasesBlockedProducers) {
  BlockingQueue<int> q(2);
  q.Push(1);
  q.Push(2);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.Push(3);  // blocks: queue is full
    pushed.store(true);
  });
  EXPECT_TRUE(::asterix::testing::StaysFalseFor(
      [&] { return pushed.load(); }, 20));
  auto batch = q.PopAll();  // one drain frees all waiting producers
  EXPECT_GE(batch.size(), 2u);
  producer.join();
  EXPECT_TRUE(pushed.load());
}

TEST(BlockingQueueTest, ConcurrentProducersConsumers) {
  BlockingQueue<int> q(16);
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::atomic<int64_t> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q] {
      for (int i = 1; i <= kPerProducer; ++i) q.Push(i);
    });
  }
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      while (popped.load() < kProducers * kPerProducer) {
        auto v = q.PopFor(std::chrono::milliseconds(50));
        if (v.has_value()) {
          sum.fetch_add(*v);
          popped.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  int64_t expected =
      static_cast<int64_t>(kProducers) * kPerProducer * (kPerProducer + 1) / 2;
  EXPECT_EQ(sum.load(), expected);
}

// --- FailPoint registry -----------------------------------------------------

/// A function instrumented the way production seams are.
Status GuardedStep() {
  ASTERIX_FAILPOINT("test.common.step");
  return Status::OK();
}

class FailPointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailPointRegistry::Instance().DisarmAll(); }
  void TearDown() override { FailPointRegistry::Instance().DisarmAll(); }
  FailPointRegistry& registry() { return FailPointRegistry::Instance(); }
};

TEST_F(FailPointTest, UnarmedSiteIsInert) {
  EXPECT_FALSE(FailPointRegistry::AnyArmed());
  EXPECT_TRUE(registry().Evaluate("test.common.nothing").ok());
  EXPECT_EQ(registry().Hits("test.common.nothing"), 0);
  EXPECT_TRUE(GuardedStep().ok());
}

TEST_F(FailPointTest, OnceFiresExactlyOnce) {
  registry().Arm("test.common.once",
                 FailPointPolicy::Error(Status::IOError("boom")).Once());
  EXPECT_TRUE(FailPointRegistry::AnyArmed());
  int failures = 0;
  for (int i = 0; i < 5; ++i) {
    if (!registry().Evaluate("test.common.once").ok()) ++failures;
  }
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(registry().Fires("test.common.once"), 1);
  EXPECT_EQ(registry().Hits("test.common.once"), 5);
}

TEST_F(FailPointTest, EveryNthFiresOnMultiples) {
  registry().Arm("test.common.nth",
                 FailPointPolicy::Error(Status::IOError("boom")).EveryNth(3));
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) {
    fired.push_back(!registry().Evaluate("test.common.nth").ok());
  }
  std::vector<bool> expected = {false, false, true, false, false,
                                true,  false, false, true};
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(registry().Fires("test.common.nth"), 3);
}

TEST_F(FailPointTest, ProbabilityIsDeterministicForSeed) {
  auto sample = [&](uint64_t seed) {
    registry().Arm("test.common.prob",
                   FailPointPolicy::Error(Status::IOError("boom"))
                       .WithProbability(0.5, seed));
    std::vector<bool> outcomes;
    for (int i = 0; i < 100; ++i) {
      outcomes.push_back(!registry().Evaluate("test.common.prob").ok());
    }
    registry().Disarm("test.common.prob");
    return outcomes;
  };
  auto first = sample(123);
  auto replay = sample(123);
  EXPECT_EQ(first, replay);  // re-arming with the seed reproduces the run
  int fires = static_cast<int>(std::count(first.begin(), first.end(), true));
  EXPECT_GT(fires, 20);
  EXPECT_LT(fires, 80);
  EXPECT_NE(sample(321), first);  // a different seed draws differently
}

TEST_F(FailPointTest, SkipFirstAndMaxFiresBoundTheWindow) {
  registry().Arm("test.common.window",
                 FailPointPolicy::Error(Status::IOError("boom"))
                     .SkipFirst(2)
                     .MaxFires(2));
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) {
    fired.push_back(!registry().Evaluate("test.common.window").ok());
  }
  std::vector<bool> expected = {false, false, true, true, false, false};
  EXPECT_EQ(fired, expected);
}

TEST_F(FailPointTest, InstanceFilterRestrictsFiring) {
  registry().Arm("test.common.inst",
                 FailPointPolicy::Error(Status::IOError("boom"))
                     .OnInstance("B"));
  EXPECT_TRUE(registry().Evaluate("test.common.inst", "A").ok());
  EXPECT_FALSE(registry().Evaluate("test.common.inst", "B").ok());
  EXPECT_EQ(registry().Fires("test.common.inst"), 1);
}

TEST_F(FailPointTest, DelayAndCallbackActionsContinueNormally) {
  registry().Arm("test.common.delay", FailPointPolicy::Delay(30));
  Stopwatch watch;
  EXPECT_TRUE(registry().Evaluate("test.common.delay").ok());
  EXPECT_GE(watch.ElapsedMillis(), 25);

  int called = 0;
  registry().Arm("test.common.cb",
                 FailPointPolicy::Call([&called] { ++called; }));
  EXPECT_TRUE(registry().Evaluate("test.common.cb").ok());
  EXPECT_TRUE(registry().Evaluate("test.common.cb").ok());
  EXPECT_EQ(called, 2);
}

TEST_F(FailPointTest, DisarmAllSilencesEverySite) {
  registry().Arm("test.common.a", FailPointPolicy::Error(Status::IOError("x")));
  registry().Arm("test.common.b", FailPointPolicy::Error(Status::IOError("y")));
  registry().DisarmAll();
  EXPECT_FALSE(FailPointRegistry::AnyArmed());
  EXPECT_TRUE(registry().Evaluate("test.common.a").ok());
  EXPECT_TRUE(registry().Evaluate("test.common.b").ok());
}

TEST_F(FailPointTest, MacroInjectsStatusIntoGuardedFunction) {
  if (!kFailPointsCompiledIn) {
    GTEST_SKIP() << "built with ASTERIX_FAILPOINTS=OFF";
  }
  registry().Arm("test.common.step",
                 FailPointPolicy::Error(Status::IOError("injected")));
  Status status = GuardedStep();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kIOError);
  registry().Disarm("test.common.step");
  EXPECT_TRUE(GuardedStep().ok());
}

TEST_F(FailPointTest, ChaosScheduleFollowsItsTimeline) {
  ChaosSchedule schedule(/*seed=*/1);
  schedule
      .ArmAt(0, "test.common.timeline",
             FailPointPolicy::Error(Status::IOError("scripted")))
      .DisarmAt(120, "test.common.timeline");
  EXPECT_TRUE(registry().Evaluate("test.common.timeline").ok());
  schedule.Start();
  // The arm step lands within the first slice of the timeline...
  Stopwatch watch;
  bool armed = false;
  while (watch.ElapsedMillis() < 1000 && !armed) {
    armed = !registry().Evaluate("test.common.timeline").ok();
    if (!armed) SleepMillis(5);
  }
  EXPECT_TRUE(armed);
  // ...and the disarm step silences it again.
  watch = Stopwatch();
  bool disarmed = false;
  while (watch.ElapsedMillis() < 1000 && !disarmed) {
    disarmed = registry().Evaluate("test.common.timeline").ok();
    if (!disarmed) SleepMillis(5);
  }
  EXPECT_TRUE(disarmed);
  schedule.Stop();
}

TEST_F(FailPointTest, ChaosScheduleDerivesReproducibleProbabilitySeeds) {
  auto sample = [&](uint64_t seed) {
    ChaosSchedule schedule(seed);
    // Default policy seed: the schedule derives a per-step seed from its
    // own seed, making the whole timeline a one-knob reproduction.
    schedule.ArmAt(0, "test.common.derived",
                   FailPointPolicy::Error(Status::IOError("boom"))
                       .WithProbability(0.5));
    schedule.Start();
    // Wait for the arm step WITHOUT evaluating the site: every Evaluate
    // consumes an Rng draw, and both samples must start at draw zero.
    Stopwatch watch;
    while (watch.ElapsedMillis() < 1000 && !FailPointRegistry::AnyArmed()) {
      SleepMillis(1);
    }
    std::vector<bool> outcomes;
    for (int i = 0; i < 60; ++i) {
      outcomes.push_back(!registry().Evaluate("test.common.derived").ok());
    }
    schedule.Stop();
    return outcomes;
  };
  EXPECT_EQ(sample(4242), sample(4242));
}

}  // namespace
}  // namespace common
}  // namespace asterix
