#include <atomic>
#include <filesystem>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/dataset.h"
#include "storage/key.h"
#include "storage/lsm_index.h"
#include "storage/secondary_index.h"
#include "storage/wal.h"

namespace asterix {
namespace storage {
namespace {

using adm::TypeTag;
using adm::Value;

std::string TempDir(const std::string& name) {
  std::string dir = "/tmp/asterix_test/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(KeyTest, IntOrderPreserved) {
  auto k1 = EncodeKey(Value::Int64(-100)).value();
  auto k2 = EncodeKey(Value::Int64(-1)).value();
  auto k3 = EncodeKey(Value::Int64(0)).value();
  auto k4 = EncodeKey(Value::Int64(1)).value();
  auto k5 = EncodeKey(Value::Int64(1LL << 40)).value();
  EXPECT_LT(k1, k2);
  EXPECT_LT(k2, k3);
  EXPECT_LT(k3, k4);
  EXPECT_LT(k4, k5);
}

TEST(KeyTest, DoubleOrderPreserved) {
  auto keys = {
      EncodeKey(Value::Double(-1e9)).value(),
      EncodeKey(Value::Double(-1.5)).value(),
      EncodeKey(Value::Double(-0.0)).value(),
      EncodeKey(Value::Double(0.25)).value(),
      EncodeKey(Value::Double(3.14)).value(),
      EncodeKey(Value::Double(1e12)).value(),
  };
  std::string prev;
  bool first = true;
  for (const auto& k : keys) {
    if (!first) EXPECT_LE(prev, k);
    prev = k;
    first = false;
  }
}

TEST(KeyTest, RoundTrip) {
  for (const Value& v :
       {Value::Int64(-7), Value::Double(2.5), Value::String("abc"),
        Value::Datetime(12345)}) {
    auto key = EncodeKey(v).value();
    auto back = DecodeKey(key);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
  }
}

TEST(KeyTest, NonKeyableTypesRejected) {
  EXPECT_FALSE(EncodeKey(Value::Null()).ok());
  EXPECT_FALSE(EncodeKey(Value::Record({})).ok());
  EXPECT_FALSE(EncodeKey(Value::List({})).ok());
}

TEST(KeyTest, PropertyRandomIntsSortLikeValues) {
  common::Rng rng(7);
  std::vector<int64_t> ints;
  for (int i = 0; i < 500; ++i) {
    ints.push_back(rng.Uniform(INT64_MIN / 2, INT64_MAX / 2));
  }
  std::vector<std::pair<std::string, int64_t>> keyed;
  for (int64_t i : ints) {
    keyed.emplace_back(EncodeKey(Value::Int64(i)).value(), i);
  }
  std::sort(keyed.begin(), keyed.end());
  for (size_t i = 1; i < keyed.size(); ++i) {
    EXPECT_LE(keyed[i - 1].second, keyed[i].second);
  }
}

TEST(WalTest, AppendAndReplay) {
  std::string dir = TempDir("wal");
  Wal wal(dir + "/test.wal");
  ASSERT_TRUE(wal.Open().ok());
  ASSERT_TRUE(wal.Append("one").ok());
  ASSERT_TRUE(wal.Append("two").ok());
  ASSERT_TRUE(wal.Append("").ok());
  EXPECT_EQ(wal.entry_count(), 3);
  std::vector<std::string> replayed;
  ASSERT_TRUE(
      wal.Replay([&](const std::string& e) { replayed.push_back(e); })
          .ok());
  ASSERT_EQ(replayed.size(), 3u);
  EXPECT_EQ(replayed[0], "one");
  EXPECT_EQ(replayed[1], "two");
  EXPECT_EQ(replayed[2], "");
}

TEST(WalTest, AppendWithoutOpenFails) {
  Wal wal("/tmp/asterix_test/never_opened.wal");
  EXPECT_FALSE(wal.Append("x").ok());
}

// Crash recovery: a crash can cut the log anywhere — at a record boundary,
// inside a payload, even inside the 4-byte length prefix. Replay must
// return exactly the complete prefix: every entry fully on disk before the
// cut, the torn tail dropped, nothing duplicated or invented.
TEST(WalTest, ReplayAfterCrashTruncationRecoversExactPrefix) {
  constexpr int kEntries = 100;
  // "entry-0000" is 10 bytes; with the 4-byte length prefix every record
  // occupies exactly 14 bytes, so cut points are easy to aim.
  constexpr uint64_t kRecordBytes = 14;
  auto payload = [](int i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "entry-%04d", i);
    return std::string(buf);
  };

  struct Cut {
    const char* name;
    uint64_t offset;  // bytes to keep
    int survivors;    // complete entries expected after replay
  };
  const Cut cuts[] = {
      {"record boundary", 40 * kRecordBytes, 40},
      {"mid payload", 40 * kRecordBytes + 4 + 3, 40},
      {"mid length prefix", 40 * kRecordBytes + 2, 40},
      {"first record torn", 5, 0},
      {"nothing written", 0, 0},
  };
  for (const Cut& cut : cuts) {
    std::string dir = TempDir("wal_crash");
    std::string path = dir + "/crash.wal";
    {
      Wal wal(path);
      ASSERT_TRUE(wal.Open().ok());
      for (int i = 0; i < kEntries; ++i) {
        ASSERT_TRUE(wal.Append(payload(i)).ok());
      }
      ASSERT_TRUE(wal.Sync().ok());
    }  // closed cleanly; the "crash" is the truncation below
    ASSERT_EQ(std::filesystem::file_size(path), kEntries * kRecordBytes);
    std::filesystem::resize_file(path, cut.offset);

    Wal recovered(path);
    std::vector<std::string> replayed;
    ASSERT_TRUE(recovered
                    .Replay([&](const std::string& e) {
                      replayed.push_back(e);
                    })
                    .ok())
        << cut.name;
    ASSERT_EQ(replayed.size(), static_cast<size_t>(cut.survivors))
        << cut.name;
    for (int i = 0; i < cut.survivors; ++i) {
      EXPECT_EQ(replayed[i], payload(i)) << cut.name;
    }
  }
}

TEST(LsmTest, InsertThenGet) {
  LsmIndex index;
  auto key = EncodeKey(Value::Int64(1)).value();
  ASSERT_TRUE(index.Insert(key, Value::String("v")).ok());
  auto got = index.Get(key);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->AsString(), "v");
  EXPECT_FALSE(index.Get("missing").has_value());
}

TEST(LsmTest, UpsertNewestWins) {
  LsmIndex index;
  auto key = EncodeKey(Value::Int64(1)).value();
  ASSERT_TRUE(index.Insert(key, Value::Int64(1)).ok());
  ASSERT_TRUE(index.Insert(key, Value::Int64(2)).ok());
  EXPECT_EQ(index.Get(key)->AsInt64(), 2);
  EXPECT_EQ(index.Size(), 1);
}

TEST(LsmTest, UpsertAcrossFlushBoundary) {
  LsmOptions options;
  options.memtable_bytes_limit = 1;  // flush on every insert
  LsmIndex index(options);
  auto key = EncodeKey(Value::Int64(1)).value();
  ASSERT_TRUE(index.Insert(key, Value::Int64(1)).ok());
  ASSERT_TRUE(index.Insert(key, Value::Int64(2)).ok());
  EXPECT_EQ(index.Get(key)->AsInt64(), 2);
  EXPECT_EQ(index.Size(), 1);
  EXPECT_GE(index.stats().flushes, 2);
}

TEST(LsmTest, FlushAndMergeMaintainContents) {
  LsmOptions options;
  options.memtable_bytes_limit = 256;  // frequent flushes
  options.max_runs = 3;
  LsmIndex index(options);
  constexpr int kRecords = 500;
  for (int i = 0; i < kRecords; ++i) {
    auto key = EncodeKey(Value::Int64(i)).value();
    ASSERT_TRUE(index.Insert(key, Value::Int64(i * 10)).ok());
  }
  index.Drain();  // wait for background flush/merge to catch up
  EXPECT_GT(index.stats().flushes, 0);
  EXPECT_GT(index.stats().merges, 0);
  EXPECT_EQ(index.Size(), kRecords);
  for (int i = 0; i < kRecords; i += 37) {
    auto key = EncodeKey(Value::Int64(i)).value();
    auto got = index.Get(key);
    ASSERT_TRUE(got.has_value()) << "missing key " << i;
    EXPECT_EQ(got->AsInt64(), i * 10);
  }
}

TEST(LsmTest, ScanIsSortedAndComplete) {
  LsmOptions options;
  options.memtable_bytes_limit = 128;
  LsmIndex index(options);
  common::Rng rng(3);
  std::set<int64_t> inserted;
  for (int i = 0; i < 300; ++i) {
    int64_t v = rng.Uniform(0, 10000);
    inserted.insert(v);
    auto key = EncodeKey(Value::Int64(v)).value();
    ASSERT_TRUE(index.Insert(key, Value::Int64(v)).ok());
  }
  std::vector<int64_t> scanned;
  index.Scan([&](const std::string&, const Value& v) {
    scanned.push_back(v.AsInt64());
  });
  ASSERT_EQ(scanned.size(), inserted.size());
  auto it = inserted.begin();
  for (size_t i = 0; i < scanned.size(); ++i, ++it) {
    EXPECT_EQ(scanned[i], *it);  // key encoding preserves order
  }
}

TEST(SecondaryIndexTest, BTreeExactAndRange) {
  BTreeSecondaryIndex index("byCount", "count");
  for (int i = 0; i < 10; ++i) {
    Value r = Value::Record({{"id", Value::String("k" + std::to_string(i))},
                             {"count", Value::Int64(i % 3)}});
    ASSERT_TRUE(
        index.Insert(r, EncodeKey(*r.GetField("id")).value()).ok());
  }
  EXPECT_EQ(index.SearchExact(Value::Int64(0)).size(), 4u);
  EXPECT_EQ(index.SearchExact(Value::Int64(1)).size(), 3u);
  EXPECT_EQ(index.SearchExact(Value::Int64(9)).size(), 0u);
  EXPECT_EQ(index.SearchRange(Value::Int64(1), Value::Int64(2)).size(), 6u);
  EXPECT_EQ(index.entry_count(), 10);
}

TEST(SecondaryIndexTest, SkipsRecordsLackingField) {
  BTreeSecondaryIndex index("byX", "x");
  Value r = Value::Record({{"id", Value::String("a")}});
  ASSERT_TRUE(index.Insert(r, "pk").ok());
  EXPECT_EQ(index.entry_count(), 0);
}

TEST(SecondaryIndexTest, SpatialGridRectQuery) {
  SpatialGridIndex index("byLoc", "location", /*cell_size=*/1.0);
  for (int x = 0; x < 10; ++x) {
    for (int y = 0; y < 10; ++y) {
      Value r = Value::Record(
          {{"id", Value::String(std::to_string(x) + "," +
                                std::to_string(y))},
           {"location", Value::MakePoint(x + 0.5, y + 0.5)}});
      ASSERT_TRUE(
          index.Insert(r, EncodeKey(*r.GetField("id")).value()).ok());
    }
  }
  // A 3x3 box.
  auto hits = index.SearchRect({2.0, 2.0, 4.99, 4.99});
  EXPECT_EQ(hits.size(), 9u);
  // Whole space.
  EXPECT_EQ(index.SearchRect({0, 0, 10, 10}).size(), 100u);
  // Empty corner.
  EXPECT_EQ(index.SearchRect({-5, -5, -1, -1}).size(), 0u);
}

TEST(SecondaryIndexTest, SpatialRejectsNonPoint) {
  SpatialGridIndex index("byLoc", "location");
  Value r = Value::Record({{"location", Value::Int64(1)}});
  EXPECT_FALSE(index.Insert(r, "pk").ok());
}

DatasetDef TweetsDef(const std::string& name = "Tweets") {
  DatasetDef def;
  def.name = name;
  def.datatype = "Tweet";
  def.primary_key_field = "id";
  def.indexes.push_back({"locationIndex", "location", IndexKind::kRTree});
  return def;
}

TEST(DatasetPartitionTest, InsertMaintainsPrimaryAndSecondary) {
  std::string dir = TempDir("partition");
  DatasetPartition partition(TweetsDef(), 0, dir, nullptr);
  ASSERT_TRUE(partition.Open().ok());
  for (int i = 0; i < 20; ++i) {
    Value r = Value::Record(
        {{"id", Value::String("t" + std::to_string(i))},
         {"location", Value::MakePoint(i, i)},
         {"text", Value::String("hello")}});
    ASSERT_TRUE(partition.Insert(r).ok());
  }
  EXPECT_EQ(partition.record_count(), 20);
  auto got = partition.Get(Value::String("t7"));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->GetField("text")->AsString(), "hello");
  auto* index =
      static_cast<SpatialGridIndex*>(partition.FindIndex("locationIndex"));
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->SearchRect({0, 0, 5.5, 5.5}).size(), 6u);
}

TEST(DatasetPartitionTest, RejectsMissingPrimaryKey) {
  std::string dir = TempDir("partition_pk");
  DatasetPartition partition(TweetsDef(), 0, dir, nullptr);
  ASSERT_TRUE(partition.Open().ok());
  EXPECT_FALSE(
      partition.Insert(Value::Record({{"x", Value::Int64(1)}})).ok());
  EXPECT_FALSE(partition.Insert(Value::Int64(1)).ok());
}

TEST(DatasetPartitionTest, ValidatesTypeWhenRequested) {
  std::string dir = TempDir("partition_type");
  adm::TypeRegistry registry;
  ASSERT_TRUE(registry
                  .Register(adm::TypeBuilder("Tweet", /*open=*/false)
                                .Field("id", TypeTag::kString)
                                .Build())
                  .ok());
  DatasetDef def = TweetsDef();
  def.indexes.clear();
  def.validate_type = true;
  DatasetPartition partition(def, 0, dir, &registry);
  ASSERT_TRUE(partition.Open().ok());
  EXPECT_TRUE(
      partition.Insert(Value::Record({{"id", Value::String("a")}})).ok());
  EXPECT_FALSE(partition
                   .Insert(Value::Record({{"id", Value::String("b")},
                                          {"zzz", Value::Int64(1)}}))
                   .ok());
}

TEST(DatasetPartitionTest, WalRecordsEveryInsert) {
  std::string dir = TempDir("partition_wal");
  DatasetDef def = TweetsDef();
  def.indexes.clear();
  DatasetPartition partition(def, 0, dir, nullptr);
  ASSERT_TRUE(partition.Open().ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(partition
                    .Insert(Value::Record(
                        {{"id", Value::String(std::to_string(i))}}))
                    .ok());
  }
  EXPECT_EQ(partition.wal().entry_count(), 5);
  ASSERT_TRUE(partition.SyncWal().ok());
  std::string wal_path = dir + "/Tweets.p0.wal";
  ASSERT_TRUE(std::filesystem::exists(wal_path));
  EXPECT_GT(std::filesystem::file_size(wal_path), 0u);
  // Replay returns exactly the inserted records.
  std::vector<std::string> entries;
  ASSERT_TRUE(partition.wal()
                  .Replay([&](const std::string& e) {
                    entries.push_back(e);
                  })
                  .ok());
  EXPECT_EQ(entries.size(), 5u);
}

TEST(StorageManagerTest, PartitionLifecycle) {
  std::string dir = TempDir("manager");
  StorageManager manager("nodeA", dir);
  ASSERT_TRUE(manager.CreatePartition(TweetsDef(), 0, nullptr).ok());
  EXPECT_FALSE(manager.CreatePartition(TweetsDef(), 1, nullptr).ok());
  EXPECT_NE(manager.GetPartition("Tweets"), nullptr);
  EXPECT_EQ(manager.GetPartition("Nope"), nullptr);
  EXPECT_EQ(manager.DatasetNames().size(), 1u);
  ASSERT_TRUE(manager.DropPartition("Tweets").ok());
  EXPECT_EQ(manager.GetPartition("Tweets"), nullptr);
  EXPECT_FALSE(manager.DropPartition("Tweets").ok());
}

TEST(PartitionedLsmTest, RoutesAcrossPartitionsAndScansInOrder) {
  LsmOptions options;
  options.partitions = 4;
  options.memtable_bytes_limit = 256;
  PartitionedLsmIndex index(options);
  ASSERT_EQ(index.partition_count(), 4u);
  constexpr int kRecords = 300;
  for (int i = 0; i < kRecords; ++i) {
    auto key = EncodeKey(Value::Int64(i)).value();
    ASSERT_TRUE(index.Insert(key, Value::Int64(i * 3)).ok());
  }
  EXPECT_EQ(index.Size(), kRecords);
  // Every partition received data (FNV spreads 300 keys over 4 shards).
  for (size_t p = 0; p < index.partition_count(); ++p) {
    EXPECT_GT(index.partition(p).Size(), 0) << "partition " << p;
  }
  // Global scan is in key order despite hash partitioning.
  int64_t expected = 0;
  std::string prev_key;
  index.Scan([&](const std::string& key, const Value& v) {
    if (!prev_key.empty()) EXPECT_LT(prev_key, key);
    prev_key = key;
    EXPECT_EQ(v.AsInt64(), expected * 3);
    ++expected;
  });
  EXPECT_EQ(expected, kRecords);
  for (int i = 0; i < kRecords; i += 23) {
    auto key = EncodeKey(Value::Int64(i)).value();
    auto got = index.Get(key);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->AsInt64(), i * 3);
  }
}

TEST(LsmConcurrencyTest, EightWritersWithConcurrentReaders) {
  LsmOptions options;
  options.memtable_bytes_limit = 512;  // force many flushes and merges
  options.max_runs = 3;
  options.partitions = 4;
  PartitionedLsmIndex index(options);
  constexpr int kThreads = 8;
  constexpr int kKeysPerThread = 300;

  std::atomic<bool> stop_readers{false};
  // Concurrent point reader: observed values must always be one of the
  // versions a writer produced for that key (no torn or phantom values).
  std::thread reader([&] {
    common::Rng rng(99);
    while (!stop_readers.load()) {
      int64_t k = rng.Uniform(0, kThreads * kKeysPerThread);
      auto key = EncodeKey(Value::Int64(k)).value();
      auto got = index.Get(key);
      if (got.has_value()) {
        int64_t v = got->AsInt64();
        EXPECT_TRUE(v == -1 || v == k * 7) << "key " << k << " -> " << v;
      }
    }
  });
  // Concurrent scanner: sorted keys, valid values, never crashes while
  // flushes and merges swap components underneath.
  std::thread scanner([&] {
    while (!stop_readers.load()) {
      std::string prev;
      index.Scan([&](const std::string& key, const Value& v) {
        if (!prev.empty()) EXPECT_LT(prev, key);
        prev = key;
        int64_t raw = v.AsInt64();
        EXPECT_TRUE(raw == -1 || raw % 7 == 0);
      });
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&index, t] {
      for (int i = 0; i < kKeysPerThread; ++i) {
        int64_t k = t * kKeysPerThread + i;
        auto key = EncodeKey(Value::Int64(k)).value();
        // Two writes per key: the second must win (newest-wins across
        // memtable, sealed memtables, and runs).
        ASSERT_TRUE(index.Insert(key, Value::Int64(-1)).ok());
        ASSERT_TRUE(index.Insert(key, Value::Int64(k * 7)).ok());
      }
    });
  }
  for (auto& w : writers) w.join();
  stop_readers.store(true);
  reader.join();
  scanner.join();

  index.Drain();
  LsmStats stats = index.stats();
  EXPECT_EQ(stats.inserts, kThreads * kKeysPerThread * 2);
  EXPECT_EQ(index.Size(), kThreads * kKeysPerThread);  // no lost keys
  EXPECT_GT(stats.flushes, 0);
  EXPECT_GT(stats.merges, 0);
  // The insert path never blocked on a flush or merge.
  EXPECT_EQ(stats.insert_stall_ms, 0);
  for (int64_t k = 0; k < kThreads * kKeysPerThread; ++k) {
    auto key = EncodeKey(Value::Int64(k)).value();
    auto got = index.Get(key);
    ASSERT_TRUE(got.has_value()) << "lost key " << k;
    EXPECT_EQ(got->AsInt64(), k * 7) << "stale value for key " << k;
  }
}

TEST(LsmConcurrencyTest, CloseDrainsPendingWorkDeterministically) {
  LsmOptions options;
  options.memtable_bytes_limit = 1;  // seal on every insert
  options.max_runs = 4;
  LsmIndex index(options);
  constexpr int kRecords = 200;
  for (int i = 0; i < kRecords; ++i) {
    auto key = EncodeKey(Value::Int64(i)).value();
    ASSERT_TRUE(index.Insert(key, Value::Int64(i)).ok());
  }
  // Close without an explicit Drain: every sealed memtable must still
  // reach a run before shutdown completes.
  index.Close();
  EXPECT_EQ(index.flush_backlog(), 0u);
  EXPECT_GT(index.run_count(), 0u);
  EXPECT_EQ(index.Size(), kRecords);
  for (int i = 0; i < kRecords; i += 17) {
    auto key = EncodeKey(Value::Int64(i)).value();
    ASSERT_TRUE(index.Get(key).has_value()) << "lost key " << i;
  }
}

TEST(LsmConcurrencyTest, BoundedImmutablesRecordStallTime) {
  LsmOptions options;
  options.memtable_bytes_limit = 1;     // seal on every insert
  options.max_immutable_memtables = 1;  // force backpressure waits
  LsmIndex index(options);
  for (int i = 0; i < 500; ++i) {
    auto key = EncodeKey(Value::Int64(i)).value();
    ASSERT_TRUE(index.Insert(key, Value::Int64(i)).ok());
  }
  index.Drain();
  EXPECT_EQ(index.Size(), 500);
  // Stall accounting is wired (stalls may round to 0ms on a fast flush
  // path, so only sanity-check the counter is non-negative).
  EXPECT_GE(index.stats().insert_stall_ms, 0);
}

TEST(PartitioningTest, KeysSpreadAcrossPartitions) {
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    auto key = EncodeKey(Value::String("key" + std::to_string(i))).value();
    int p = PartitionOfKey(key, 4);
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 4);
    seen.insert(p);
  }
  EXPECT_EQ(seen.size(), 4u);  // all partitions receive data
}

TEST(PartitioningTest, SinglePartitionAlwaysZero) {
  EXPECT_EQ(PartitionOfKey("anything", 1), 0);
  EXPECT_EQ(PartitionOfKey("anything", 0), 0);
}

TEST(PartitioningTest, Deterministic) {
  auto key = EncodeKey(Value::String("stable")).value();
  EXPECT_EQ(PartitionOfKey(key, 8), PartitionOfKey(key, 8));
}

}  // namespace
}  // namespace storage
}  // namespace asterix
