// Unit tests of the MetaFeedOperator sandbox (§6.1): exception slicing,
// skip bounds, error-log/dataset logging, zombie-state restoration, and
// signal pass-through — driven directly through a fake task context.
#include <filesystem>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "feeds/meta.h"
#include "feeds/operators.h"
#include "hyracks/node.h"
#include "testing_util.h"

namespace asterix {
namespace feeds {
namespace {

using adm::Value;
using common::Status;
using hyracks::FramePtr;
using hyracks::MakeFrame;

/// Collects frames written by the wrapped operator.
class CollectingWriter : public hyracks::IFrameWriter {
 public:
  Status NextFrame(const FramePtr& frame) override {
    for (const Value& record : frame->records()) {
      records.push_back(record);
    }
    return Status::OK();
  }
  std::vector<Value> records;
};

class FakeContext : public hyracks::TaskContext {
 public:
  FakeContext(hyracks::NodeController* node, std::string op_name)
      : node_(node), op_name_(std::move(op_name)) {}

  const std::string& node_id() const override { return node_->id(); }
  int partition() const override { return 0; }
  int partition_count() const override { return 1; }
  int64_t job_id() const override { return 1; }
  const std::string& operator_name() const override { return op_name_; }
  hyracks::IFrameWriter* writer() override { return &writer_; }
  bool ShouldStop() const override { return false; }
  bool GracefulStopRequested() const override { return false; }
  hyracks::NodeController* node() const override { return node_; }

  CollectingWriter& collected() { return writer_; }

 private:
  hyracks::NodeController* node_;
  std::string op_name_;
  CollectingWriter writer_;
};

/// An operator that throws on records whose "n" is divisible by `k`.
class ExplodingOperator : public hyracks::Operator {
 public:
  explicit ExplodingOperator(int64_t k) : k_(k) {}
  Status ProcessFrame(const FramePtr& frame,
                      hyracks::TaskContext* ctx) override {
    for (const Value& record : frame->records()) {
      if (record.GetField("n")->AsInt64() % k_ == 0) {
        throw std::runtime_error("boom on n=" + std::to_string(
                                     record.GetField("n")->AsInt64()));
      }
      RETURN_IF_ERROR(ctx->writer()->NextFrame(MakeFrame({record})));
    }
    return Status::OK();
  }

 private:
  const int64_t k_;
};

using asterix::testing::FrameOf;

std::unique_ptr<hyracks::NodeController> MakeNode() {
  return std::make_unique<hyracks::NodeController>(
      "X", "/tmp/asterix_test/meta_" +
               std::to_string(common::NowMicros()));
}

TEST(MetaFeedTest, SandboxSkipsOnlyOffendingRecords) {
  auto node = MakeNode();
  FakeContext ctx(node.get(), "assign");
  MetaFeedOptions options;
  MetaFeedOperator meta(std::make_unique<ExplodingOperator>(5), options);
  ASSERT_TRUE(meta.Open(&ctx).ok());
  ASSERT_TRUE(meta.ProcessFrame(FrameOf(20), &ctx).ok());
  // n = 0, 5, 10, 15 threw; the 16 healthy records all got through.
  EXPECT_EQ(ctx.collected().records.size(), 16u);
  EXPECT_EQ(meta.soft_failures(), 4);
  for (const Value& record : ctx.collected().records) {
    EXPECT_NE(record.GetField("n")->AsInt64() % 5, 0);
  }
}

TEST(MetaFeedTest, HealthyFramesPayNoSlicingCost) {
  auto node = MakeNode();
  FakeContext ctx(node.get(), "assign");
  MetaFeedOptions options;
  MetaFeedOperator meta(std::make_unique<ExplodingOperator>(1000000),
                        options);
  ASSERT_TRUE(meta.Open(&ctx).ok());
  // n starts at 1: no throw — the frame goes through in one call.
  ASSERT_TRUE(meta.ProcessFrame(FrameOf(50, 1), &ctx).ok());
  EXPECT_EQ(ctx.collected().records.size(), 50u);
  EXPECT_EQ(meta.soft_failures(), 0);
}

TEST(MetaFeedTest, DisabledSandboxLetsExceptionsEscape) {
  auto node = MakeNode();
  FakeContext ctx(node.get(), "assign");
  MetaFeedOptions options;
  options.sandbox_soft_failures = false;  // recover.soft.failure=false
  MetaFeedOperator meta(std::make_unique<ExplodingOperator>(2), options);
  ASSERT_TRUE(meta.Open(&ctx).ok());
  EXPECT_THROW(meta.ProcessFrame(FrameOf(4), &ctx),
               std::runtime_error);
}

TEST(MetaFeedTest, ConsecutiveFailureBoundEndsFeed) {
  auto node = MakeNode();
  FakeContext ctx(node.get(), "assign");
  MetaFeedOptions options;
  options.max_consecutive_soft_failures = 10;
  // Every record throws: a bug, not bad data — the feed must end.
  MetaFeedOperator meta(std::make_unique<ExplodingOperator>(1), options);
  ASSERT_TRUE(meta.Open(&ctx).ok());
  Status status = meta.ProcessFrame(FrameOf(64), &ctx);
  EXPECT_TRUE(status.IsAborted());
}

TEST(MetaFeedTest, HealthyRecordResetsConsecutiveCount) {
  auto node = MakeNode();
  FakeContext ctx(node.get(), "assign");
  MetaFeedOptions options;
  options.max_consecutive_soft_failures = 5;
  // Every 3rd record throws: never 5 in a row, so the feed survives
  // arbitrarily many total failures.
  MetaFeedOperator meta(std::make_unique<ExplodingOperator>(3), options);
  ASSERT_TRUE(meta.Open(&ctx).ok());
  for (int batch = 0; batch < 10; ++batch) {
    ASSERT_TRUE(meta.ProcessFrame(FrameOf(30, batch * 30), &ctx).ok());
  }
  EXPECT_EQ(meta.soft_failures(), 100);  // 300 records / 3
  EXPECT_EQ(ctx.collected().records.size(), 200u);
}

TEST(MetaFeedTest, LogsExceptionsToDedicatedDataset) {
  auto node = MakeNode();
  storage::DatasetDef exceptions;
  exceptions.name = "FeedExceptions";
  exceptions.datatype = "any";
  exceptions.primary_key_field = "id";
  ASSERT_TRUE(
      node->storage().CreatePartition(exceptions, 0, nullptr).ok());

  FakeContext ctx(node.get(), "assign");
  MetaFeedOptions options;
  options.log_to_dataset = true;  // soft.failure.log.data=true
  MetaFeedOperator meta(std::make_unique<ExplodingOperator>(4), options);
  ASSERT_TRUE(meta.Open(&ctx).ok());
  ASSERT_TRUE(meta.ProcessFrame(FrameOf(16), &ctx).ok());

  auto* partition = node->storage().GetPartition("FeedExceptions");
  EXPECT_EQ(partition->record_count(), 4);  // n = 0, 4, 8, 12
  partition->Scan([](const Value& entry) {
    EXPECT_NE(entry.GetField("message"), nullptr);
    EXPECT_NE(entry.GetField("record"), nullptr);
    EXPECT_EQ(entry.GetField("operator")->AsString(), "assign");
  });
}

TEST(MetaFeedTest, RestoresZombieStateOnOpen) {
  auto node = MakeNode();
  auto fm = FeedManager::Of(node.get());
  fm->SaveZombieState("conn:assign:0", {FrameOf(5, 1), FrameOf(3, 100)});

  FakeContext ctx(node.get(), "assign");
  MetaFeedOptions options;
  options.state_key_prefix = "conn:assign";
  MetaFeedOperator meta(std::make_unique<ExplodingOperator>(1000000),
                        options);
  ASSERT_TRUE(meta.Open(&ctx).ok());
  // The saved frames were processed during Open, before any new input.
  EXPECT_EQ(ctx.collected().records.size(), 8u);
  // State is consumed exactly once.
  EXPECT_TRUE(fm->TakeZombieState("conn:assign:0").empty());
}

TEST(MetaFeedTest, SignalsReachTheCoreOperator) {
  class SignalProbe : public hyracks::Operator {
   public:
    Status ProcessFrame(const FramePtr&, hyracks::TaskContext*) override {
      return Status::OK();
    }
    void OnSignal(const std::string& signal) override { last = signal; }
    std::string last;
  };
  auto probe = std::make_unique<SignalProbe>();
  SignalProbe* raw = probe.get();
  MetaFeedOperator meta(std::move(probe), MetaFeedOptions{});
  meta.OnSignal("buffer");
  EXPECT_EQ(raw->last, "buffer");
}

TEST(MetaFeedTest, SourcePassThrough) {
  class TinySource : public hyracks::Operator {
   public:
    bool is_source() const override { return true; }
    Status Run(hyracks::TaskContext* ctx) override {
      return ctx->writer()->NextFrame(FrameOf(2));
    }
    Status ProcessFrame(const FramePtr&, hyracks::TaskContext*) override {
      return Status::NotSupported("source");
    }
  };
  auto node = MakeNode();
  FakeContext ctx(node.get(), "collect");
  MetaFeedOperator meta(std::make_unique<TinySource>(), MetaFeedOptions{});
  EXPECT_TRUE(meta.is_source());
  ASSERT_TRUE(meta.Run(&ctx).ok());
  EXPECT_EQ(ctx.collected().records.size(), 2u);
}

}  // namespace
}  // namespace feeds
}  // namespace asterix
