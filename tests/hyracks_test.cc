#include <atomic>
#include <filesystem>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "hyracks/cluster.h"
#include "hyracks/operators.h"
#include "storage/key.h"

namespace asterix {
namespace hyracks {
namespace {

using adm::Value;

std::vector<Value> MakeRecords(int n, int start = 0) {
  std::vector<Value> records;
  for (int i = start; i < start + n; ++i) {
    records.push_back(
        Value::Record({{"id", Value::String("r" + std::to_string(i))},
                       {"n", Value::Int64(i)}}));
  }
  return records;
}

class ClusterFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions options;
    options.storage_root =
        "/tmp/asterix_test/hyracks_" +
        std::to_string(common::NowMicros());
    std::filesystem::remove_all(options.storage_root);
    options.heartbeat_period_ms = 10;
    options.heartbeat_timeout_ms = 80;
    options.monitor_period_ms = 10;
    cluster_ = std::make_unique<ClusterController>(options);
    for (const char* id : {"A", "B", "C"}) cluster_->AddNode(id);
    cluster_->Start();
  }

  storage::DatasetDef SimpleDataset(const std::string& name) {
    storage::DatasetDef def;
    def.name = name;
    def.datatype = "Any";
    def.primary_key_field = "id";
    return def;
  }

  void CreateDatasetEverywhere(const storage::DatasetDef& def) {
    int p = 0;
    for (NodeController* node : cluster_->AliveNodes()) {
      ASSERT_TRUE(
          node->storage().CreatePartition(def, p++, nullptr).ok());
    }
  }

  int64_t TotalRecords(const std::string& dataset) {
    int64_t total = 0;
    for (NodeController* node : cluster_->AliveNodes()) {
      auto* partition = node->storage().GetPartition(dataset);
      if (partition != nullptr) total += partition->record_count();
    }
    return total;
  }

  std::unique_ptr<ClusterController> cluster_;
};

TEST_F(ClusterFixture, SingleOperatorJobRuns) {
  auto sink = std::make_shared<CollectSinkOperator::Shared>();
  JobSpec spec;
  spec.name = "single";
  int src = spec.AddOperator(
      {"source",
       {{}, 1},
       [&](int) {
         return std::make_unique<VectorSourceOperator>(MakeRecords(100));
       },
       ""});
  int snk = spec.AddOperator(
      {"sink",
       {{}, 1},
       [&](int) { return std::make_unique<CollectSinkOperator>(sink); },
       ""});
  spec.Connect(src, snk, {ConnectorKind::kOneToOne, nullptr});
  auto job = cluster_->StartJob(std::move(spec));
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  ASSERT_TRUE((*job)->Wait(5000));
  EXPECT_EQ(sink->size(), 100u);
}

TEST_F(ClusterFixture, HashConnectorPartitionsByKey) {
  CreateDatasetEverywhere(SimpleDataset("D"));
  JobSpec spec;
  spec.name = "hash";
  int src = spec.AddOperator(
      {"source",
       {{}, 1},
       [&](int) {
         return std::make_unique<VectorSourceOperator>(MakeRecords(300));
       },
       ""});
  int store = spec.AddOperator(
      {"store",
       {{"A", "B", "C"}, 0},
       [&](int) { return std::make_unique<IndexInsertOperator>("D"); },
       ""});
  spec.Connect(src, store,
               {ConnectorKind::kMToNHash, [](const Value& r) {
                  return r.GetField("id")->AsString();
                }});
  auto job = cluster_->StartJob(std::move(spec));
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  ASSERT_TRUE((*job)->Wait(5000));
  EXPECT_EQ(TotalRecords("D"), 300);
  // Every node received a share (hash spread).
  for (NodeController* node : cluster_->AliveNodes()) {
    EXPECT_GT(node->storage().GetPartition("D")->record_count(), 0);
  }
}

TEST_F(ClusterFixture, HashConnectorIsDeterministicPerKey) {
  // The same key must always land on the same partition: insert the same
  // records twice; the dataset must hold exactly N distinct records.
  CreateDatasetEverywhere(SimpleDataset("D2"));
  for (int round = 0; round < 2; ++round) {
    JobSpec spec;
    spec.name = "hash2";
    int src = spec.AddOperator(
        {"source",
         {{}, 1},
         [&](int) {
           return std::make_unique<VectorSourceOperator>(MakeRecords(100));
         },
         ""});
    int store = spec.AddOperator(
        {"store",
         {{"A", "B", "C"}, 0},
         [&](int) { return std::make_unique<IndexInsertOperator>("D2"); },
         ""});
    spec.Connect(src, store,
                 {ConnectorKind::kMToNHash, [](const Value& r) {
                    return r.GetField("id")->AsString();
                  }});
    auto job = cluster_->StartJob(std::move(spec));
    ASSERT_TRUE(job.ok());
    ASSERT_TRUE((*job)->Wait(5000));
  }
  EXPECT_EQ(TotalRecords("D2"), 100);  // upserts, not duplicates
}

TEST_F(ClusterFixture, MapOperatorTransformsAndFilters) {
  auto sink = std::make_shared<CollectSinkOperator::Shared>();
  JobSpec spec;
  spec.name = "map";
  int src = spec.AddOperator(
      {"source",
       {{}, 1},
       [&](int) {
         return std::make_unique<VectorSourceOperator>(MakeRecords(50));
       },
       ""});
  int map = spec.AddOperator(
      {"map",
       {{}, 2},
       [&](int) {
         return std::make_unique<MapOperator>(
             [](const Value& r) -> std::optional<Value> {
               if (r.GetField("n")->AsInt64() % 2 != 0) {
                 return std::nullopt;  // drop odd
               }
               Value out = r;
               out.SetField("doubled",
                            Value::Int64(r.GetField("n")->AsInt64() * 2));
               return out;
             });
       },
       ""});
  int snk = spec.AddOperator(
      {"sink",
       {{}, 1},
       [&](int) { return std::make_unique<CollectSinkOperator>(sink); },
       ""});
  spec.Connect(src, map, {ConnectorKind::kMToNRandom, nullptr});
  spec.Connect(map, snk, {ConnectorKind::kMToNHash, [](const Value& r) {
                            return r.GetField("id")->AsString();
                          }});
  auto job = cluster_->StartJob(std::move(spec));
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Wait(5000));
  auto records = sink->Snapshot();
  EXPECT_EQ(records.size(), 25u);
  for (const Value& r : records) {
    EXPECT_EQ(r.GetField("doubled")->AsInt64(),
              r.GetField("n")->AsInt64() * 2);
  }
}

TEST_F(ClusterFixture, CountConstraintSchedulesRoundRobin) {
  JobSpec spec;
  spec.name = "constraints";
  std::atomic<int> opened{0};
  int src = spec.AddOperator(
      {"source",
       {{}, 1},
       [&](int) {
         return std::make_unique<VectorSourceOperator>(MakeRecords(1));
       },
       ""});
  int snk = spec.AddOperator(
      {"sink",
       {{}, 3},
       [&](int) {
         ++opened;
         return std::make_unique<NullSinkOperator>();
       },
       ""});
  spec.Connect(src, snk, {ConnectorKind::kMToNRandom, nullptr});
  auto job = cluster_->StartJob(std::move(spec));
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Wait(5000));
  EXPECT_EQ(opened.load(), 3);
  // Instances landed on three distinct nodes.
  auto tasks = (*job)->TasksOfOperator("sink");
  ASSERT_EQ(tasks.size(), 3u);
  std::set<std::string> nodes;
  for (const auto& t : tasks) nodes.insert(t->node_id());
  EXPECT_EQ(nodes.size(), 3u);
}

TEST_F(ClusterFixture, LocationConstraintOnDeadNodeFails) {
  cluster_->KillNode("B");
  JobSpec spec;
  spec.name = "deadloc";
  spec.AddOperator(
      {"source",
       {{"B"}, 0},
       [&](int) {
         return std::make_unique<VectorSourceOperator>(MakeRecords(1));
       },
       ""});
  auto job = cluster_->StartJob(std::move(spec));
  EXPECT_FALSE(job.ok());
}

TEST_F(ClusterFixture, NodeFailureDetectedByHeartbeatMonitor) {
  struct Listener : ClusterListener {
    std::atomic<int> failures{0};
    std::string failed_node;
    void OnClusterEvent(const ClusterEvent& e) override {
      if (e.kind == ClusterEvent::Kind::kNodeFailed) {
        failed_node = e.node_id;
        ++failures;
      }
    }
  } listener;
  cluster_->Subscribe(&listener);
  cluster_->KillNode("B");
  common::Stopwatch watch;
  while (listener.failures.load() == 0 && watch.ElapsedMillis() < 2000) {
    common::SleepMillis(5);
  }
  EXPECT_EQ(listener.failures.load(), 1);
  EXPECT_EQ(listener.failed_node, "B");
  cluster_->Unsubscribe(&listener);
}

TEST_F(ClusterFixture, NodeRejoinFiresEvent) {
  struct Listener : ClusterListener {
    std::atomic<int> joins{0};
    void OnClusterEvent(const ClusterEvent& e) override {
      if (e.kind == ClusterEvent::Kind::kNodeJoined) ++joins;
    }
  } listener;
  cluster_->Subscribe(&listener);
  cluster_->KillNode("C");
  common::SleepMillis(150);
  cluster_->RestartNode("C");
  EXPECT_EQ(listener.joins.load(), 1);
  EXPECT_TRUE(cluster_->GetNode("C")->alive());
  cluster_->Unsubscribe(&listener);
}

// An endless source used by abort/failure tests.
class EndlessSource : public Operator {
 public:
  explicit EndlessSource(std::atomic<int64_t>* emitted)
      : emitted_(emitted) {}
  bool is_source() const override { return true; }
  common::Status Run(TaskContext* ctx) override {
    int64_t i = 0;
    while (!ctx->ShouldStop()) {
      std::vector<Value> records;
      for (int k = 0; k < 10; ++k) {
        records.push_back(Value::Record(
            {{"id", Value::String("e" + std::to_string(i++))}}));
      }
      // Delivery may fail once the abort under test tears the job down.
      (void)ctx->writer()->NextFrame(MakeFrame(std::move(records)));
      emitted_->fetch_add(10);
      common::SleepMillis(1);
    }
    return common::Status::OK();
  }
  common::Status ProcessFrame(const FramePtr&, TaskContext*) override {
    return common::Status::NotSupported("source");
  }

 private:
  std::atomic<int64_t>* emitted_;
};

TEST_F(ClusterFixture, AbortJobStopsEndlessSource) {
  std::atomic<int64_t> emitted{0};
  JobSpec spec;
  spec.name = "endless";
  int src = spec.AddOperator(
      {"source",
       {{}, 1},
       [&](int) { return std::make_unique<EndlessSource>(&emitted); },
       ""});
  int snk = spec.AddOperator(
      {"sink",
       {{}, 1},
       [&](int) { return std::make_unique<NullSinkOperator>(); },
       ""});
  spec.Connect(src, snk, {ConnectorKind::kOneToOne, nullptr});
  auto job = cluster_->StartJob(std::move(spec));
  ASSERT_TRUE(job.ok());
  common::SleepMillis(50);
  EXPECT_GT(emitted.load(), 0);
  (*job)->Abort();
  ASSERT_TRUE((*job)->Wait(2000));
}

TEST_F(ClusterFixture, GracefulFinishDrainsData) {
  std::atomic<int64_t> emitted{0};
  auto sink = std::make_shared<CollectSinkOperator::Shared>();
  JobSpec spec;
  spec.name = "drain";
  int src = spec.AddOperator(
      {"source",
       {{}, 1},
       [&](int) { return std::make_unique<EndlessSource>(&emitted); },
       ""});
  int snk = spec.AddOperator(
      {"sink",
       {{}, 1},
       [&](int) { return std::make_unique<CollectSinkOperator>(sink); },
       ""});
  spec.Connect(src, snk, {ConnectorKind::kOneToOne, nullptr});
  auto job = cluster_->StartJob(std::move(spec));
  ASSERT_TRUE(job.ok());
  common::SleepMillis(50);
  (*job)->FinishSources();
  ASSERT_TRUE((*job)->Wait(5000));
  // Everything emitted arrived (no loss on graceful close).
  EXPECT_EQ(static_cast<int64_t>(sink->size()), emitted.load());
}

TEST_F(ClusterFixture, NodeKillAbortsJobWithDefaultPolicy) {
  std::atomic<int64_t> emitted{0};
  JobSpec spec;
  spec.name = "failing";
  spec.failure_policy = NodeFailurePolicy::kAbortJob;
  int src = spec.AddOperator(
      {"source",
       {{"A"}, 0},
       [&](int) { return std::make_unique<EndlessSource>(&emitted); },
       ""});
  int snk = spec.AddOperator(
      {"sink",
       {{"B"}, 0},
       [&](int) { return std::make_unique<NullSinkOperator>(); },
       ""});
  spec.Connect(src, snk, {ConnectorKind::kOneToOne, nullptr});
  auto job = cluster_->StartJob(std::move(spec));
  ASSERT_TRUE(job.ok());
  common::SleepMillis(30);
  cluster_->KillNode("B");
  // Heartbeat monitor notices and aborts the whole job.
  ASSERT_TRUE((*job)->Wait(3000));
}

TEST_F(ClusterFixture, FrameAppenderBatchesByCount) {
  struct CountingWriter : IFrameWriter {
    int frames = 0;
    int records = 0;
    common::Status NextFrame(const FramePtr& f) override {
      ++frames;
      records += static_cast<int>(f->record_count());
      return common::Status::OK();
    }
  } writer;
  FrameAppender appender(&writer, /*max_records=*/10);
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(appender.Append(Value::Int64(i)).ok());
  }
  ASSERT_TRUE(appender.FlushFrame().ok());
  EXPECT_EQ(writer.frames, 3);  // 10 + 10 + 5
  EXPECT_EQ(writer.records, 25);
}

}  // namespace
}  // namespace hyracks
}  // namespace asterix
