// Regression teeth for the model checker: recompiles SnapshotPtr with
// its lock-bit release downgraded to relaxed. The unlock then publishes
// nothing: the next locker acquires the bit but gains no happens-before
// edge over the previous critical section's access to the guarded
// shared_ptr, which the checker must report as a data race on the
// pointer cell. Exit 0 iff found.
//
// Links ONLY {this file, model_check.cc} — see modelcheck_lost_wakeup.cc
// for why (header-inline mutation vs the linker's symbol choice).

#include <cstdio>
#include <memory>

#include "common/model_check.h"
#include "common/mpmc_queue.h"

int main() {
  using asterix::common::SnapshotPtr;
  namespace mc = asterix::mc;

  mc::Options opts;
  opts.max_executions = 100000;
  // Same program as ModelSnapshotPtr.PublicationIsRaceFreeAndMonotonic.
  mc::Result res = mc::Check(opts, [](mc::Execution& ex) {
    auto snap =
        std::make_shared<SnapshotPtr<int>>(std::make_shared<int>(0));
    ex.Spawn([=] { snap->store(std::make_shared<int>(1)); });
    ex.Spawn([=] {
      std::shared_ptr<int> a = snap->load();
      std::shared_ptr<int> b = snap->load();
      MODEL_ASSERT(a != nullptr && b != nullptr);
      MODEL_ASSERT(*b >= *a);
    });
    ex.Join();
  });

  std::printf("[modelcheck] regression_relaxed_unlock: %s\n",
              res.Summary().c_str());
  if (res.ok) {
    std::printf("FAIL: checker did not find the seeded relaxed unlock\n");
    return 1;
  }
  if (res.failure.find("data race") == std::string::npos) {
    std::printf("FAIL: expected a data-race report, got: %s\n",
                res.failure.c_str());
    return 1;
  }
  std::printf("%s  replay: %s\nOK: seeded relaxed unlock found\n",
              res.trace.c_str(), res.replay.c_str());
  return 0;
}
