// Regression teeth for the model checker: recompiles EventCount with the
// historical lost-wakeup bug (PR 5) — NotifyAll's seq_cst fence removed,
// leaving the waiter-count load free to be satisfied before the epoch
// store becomes visible (both are plain MOVs on x86 without the MFENCE).
// The checker must find the interleaving where the consumer parks forever
// and report it as a deadlock. Exit 0 iff the bug is FOUND.
//
// Deliberately links ONLY {this file, model_check.cc}: EventCount is
// header-inline, so any other object compiled without the bug flag would
// hand the linker an unmutated copy of the same symbols.

#include <cstdio>
#include <memory>

#include "common/atomic_shim.h"
#include "common/model_check.h"
#include "common/mpmc_queue.h"

int main() {
  using asterix::common::Atomic;
  using asterix::common::EventCount;
  namespace mc = asterix::mc;

  mc::Options opts;
  opts.max_executions = 100000;
  // Same program as ModelEventCount.NoLostWakeup in model_test.cc.
  mc::Result res = mc::Check(opts, [](mc::Execution& ex) {
    auto ec = std::make_shared<EventCount>();
    auto ready = std::make_shared<Atomic<int>>(0);
    ex.Spawn([=] {
      ready->store(1, std::memory_order_release);
      ec->NotifyAll();
    });
    ex.Spawn([=] {
      uint64_t epoch = ec->PrepareWait();
      if (ready->load(std::memory_order_acquire) != 0) {
        ec->CancelWait();
        return;
      }
      ec->Wait(epoch);
    });
    ex.Join();
  });

  std::printf("[modelcheck] regression_lost_wakeup: %s\n",
              res.Summary().c_str());
  if (res.ok) {
    std::printf("FAIL: checker did not find the seeded lost wakeup\n");
    return 1;
  }
  if (res.failure.find("deadlock") == std::string::npos) {
    std::printf("FAIL: expected a deadlock report, got: %s\n",
                res.failure.c_str());
    return 1;
  }
  std::printf("%s  replay: %s\nOK: seeded lost wakeup found\n",
              res.trace.c_str(), res.replay.c_str());
  return 0;
}
