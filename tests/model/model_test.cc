// Model-checker suite (ASTERIX_MODEL_CHECK builds only; the `modelcheck`
// preset). Two layers:
//
//   * Litmus tests drive common::Atomic directly and pin down the memory
//     model the checker implements: relaxed message passing MUST fail
//     (stale reads are explorable), acquire/release and seq_cst
//     variants MUST pass, a seq_cst LOAD is not a fence (the plain-MOV
//     x86 mapping — the exact shape of the EventCount StoreLoad bug).
//
//   * Invariant tests run the repo's real primitives — EventCount,
//     MpmcQueue, OverwriteQueue, SnapshotPtr, MemGovernor — through
//     small bounded programs (2-3 threads, a few ops each) and assert
//     their core guarantees over every explored interleaving:
//     conservation, no lost wakeup, no waiter-registration leak,
//     used() <= capacity(), snapshot monotonicity, lease/Disown charge
//     conservation.
//
// The teeth are proven by the modelcheck_regression_* binaries next to
// this file: each compiles a historical bug back in behind an
// ASTERIX_MC_BUG_* flag and asserts the checker FINDS it; this suite
// asserts the clean build passes the same programs.
//
// Every check prints "[modelcheck] <name>: explored N schedules (...)"
// so the CI log doubles as the EXPERIMENTS.md data source.

#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "common/atomic_shim.h"
#include "common/mem_governor.h"
#include "common/model_check.h"
#include "common/mpmc_queue.h"
#include "common/status.h"

namespace asterix {
namespace {

using common::Atomic;
using common::DataCell;
using common::EventCount;
using common::MemGovernor;
using common::MemLease;
using common::MemPool;
using common::MpmcQueue;
using common::OverwriteQueue;
using common::SnapshotPtr;

mc::Result RunCheck(const char* name, long budget,
                    const std::function<void(mc::Execution&)>& body) {
  mc::Options opts;
  opts.max_executions = budget;
  mc::Result res = mc::Check(opts, body);
  std::printf("[modelcheck] %s: %s\n", name, res.Summary().c_str());
  if (!res.ok) {
    std::printf("%s  replay: %s\n", res.trace.c_str(), res.replay.c_str());
  }
  return res;
}

// ---- litmus: the memory model itself --------------------------------

TEST(ModelLitmus, MessagePassingRelaxedObservesStale) {
  mc::Result res =
      RunCheck("mp_relaxed", 50000, [](mc::Execution& ex) {
        auto x = std::make_shared<Atomic<int>>(0);
        auto f = std::make_shared<Atomic<int>>(0);
        auto seen = std::make_shared<int>(-1);
        ex.Spawn([=] {
          x->store(1, std::memory_order_relaxed);
          f->store(1, std::memory_order_relaxed);
        });
        ex.Spawn([=] {
          if (f->load(std::memory_order_relaxed) == 1) {
            *seen = x->load(std::memory_order_relaxed);
          }
        });
        ex.Join();
        if (*seen != -1) MODEL_ASSERT(*seen == 1);
      });
  // The whole point: a relaxed flag does NOT publish the payload.
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.failure.find("MODEL_ASSERT"), std::string::npos)
      << res.failure;
}

TEST(ModelLitmus, MessagePassingAcquireReleaseHolds) {
  mc::Result res =
      RunCheck("mp_acq_rel", 50000, [](mc::Execution& ex) {
        auto x = std::make_shared<Atomic<int>>(0);
        auto f = std::make_shared<Atomic<int>>(0);
        ex.Spawn([=] {
          x->store(1, std::memory_order_relaxed);
          f->store(1, std::memory_order_release);
        });
        ex.Spawn([=] {
          if (f->load(std::memory_order_acquire) == 1) {
            MODEL_ASSERT(x->load(std::memory_order_relaxed) == 1);
          }
        });
        ex.Join();
      });
  EXPECT_TRUE(res.ok) << res.failure << "\n" << res.trace;
  EXPECT_TRUE(res.complete);
}

TEST(ModelLitmus, MessagePassingViaFencesHolds) {
  mc::Result res =
      RunCheck("mp_fences", 50000, [](mc::Execution& ex) {
        auto x = std::make_shared<Atomic<int>>(0);
        auto f = std::make_shared<Atomic<int>>(0);
        ex.Spawn([=] {
          x->store(1, std::memory_order_relaxed);
          common::AtomicFence(std::memory_order_release);
          f->store(1, std::memory_order_relaxed);
        });
        ex.Spawn([=] {
          if (f->load(std::memory_order_relaxed) == 1) {
            common::AtomicFence(std::memory_order_acquire);
            MODEL_ASSERT(x->load(std::memory_order_relaxed) == 1);
          }
        });
        ex.Join();
      });
  EXPECT_TRUE(res.ok) << res.failure << "\n" << res.trace;
  EXPECT_TRUE(res.complete);
}

TEST(ModelLitmus, StoreBufferingRelaxedReordersBoth) {
  mc::Result res =
      RunCheck("sb_relaxed", 50000, [](mc::Execution& ex) {
        auto x = std::make_shared<Atomic<int>>(0);
        auto y = std::make_shared<Atomic<int>>(0);
        auto r1 = std::make_shared<int>(-1);
        auto r2 = std::make_shared<int>(-1);
        ex.Spawn([=] {
          x->store(1, std::memory_order_relaxed);
          *r1 = y->load(std::memory_order_relaxed);
        });
        ex.Spawn([=] {
          y->store(1, std::memory_order_relaxed);
          *r2 = x->load(std::memory_order_relaxed);
        });
        ex.Join();
        MODEL_ASSERT(*r1 == 1 || *r2 == 1);  // forbidden only by seq_cst
      });
  EXPECT_FALSE(res.ok);
}

TEST(ModelLitmus, StoreBufferingSeqCstForbidden) {
  mc::Result res =
      RunCheck("sb_seq_cst", 50000, [](mc::Execution& ex) {
        auto x = std::make_shared<Atomic<int>>(0);
        auto y = std::make_shared<Atomic<int>>(0);
        auto r1 = std::make_shared<int>(-1);
        auto r2 = std::make_shared<int>(-1);
        ex.Spawn([=] {
          x->store(1, std::memory_order_seq_cst);
          *r1 = y->load(std::memory_order_seq_cst);
        });
        ex.Spawn([=] {
          y->store(1, std::memory_order_seq_cst);
          *r2 = x->load(std::memory_order_seq_cst);
        });
        ex.Join();
        MODEL_ASSERT(*r1 == 1 || *r2 == 1);
      });
  EXPECT_TRUE(res.ok) << res.failure << "\n" << res.trace;
  EXPECT_TRUE(res.complete);
}

// A seq_cst LOAD after a release STORE is not a StoreLoad barrier (both
// compile to plain MOVs on x86) — the exact shape of the historical
// EventCount lost-wakeup bug. The checker must expose the r1==r2==0
// outcome; only a real fence (previous test's seq_cst stores, or
// NotifyAll's AtomicFence) forbids it.
TEST(ModelLitmus, SeqCstLoadIsNotAFence) {
  mc::Result res =
      RunCheck("sb_sc_load_only", 50000, [](mc::Execution& ex) {
        auto x = std::make_shared<Atomic<int>>(0);
        auto y = std::make_shared<Atomic<int>>(0);
        auto r1 = std::make_shared<int>(-1);
        auto r2 = std::make_shared<int>(-1);
        ex.Spawn([=] {
          x->store(1, std::memory_order_release);
          *r1 = y->load(std::memory_order_seq_cst);
        });
        ex.Spawn([=] {
          y->store(1, std::memory_order_release);
          *r2 = x->load(std::memory_order_seq_cst);
        });
        ex.Join();
        MODEL_ASSERT(*r1 == 1 || *r2 == 1);
      });
  EXPECT_FALSE(res.ok);
}

TEST(ModelLitmus, DataCellRaceDetected) {
  mc::Result res =
      RunCheck("datacell_race", 50000, [](mc::Execution& ex) {
        auto cell = std::make_shared<DataCell<int>>();
        ex.Spawn([=] { cell->Set(1); });
        ex.Spawn([=] { cell->Set(2); });
        ex.Join();
      });
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.failure.find("data race"), std::string::npos)
      << res.failure;
}

// ---- EventCount ------------------------------------------------------

// The prepare/recheck/commit dance against a releasing producer: in no
// interleaving may the consumer park forever (the NotifyAll fence
// guarantee). modelcheck_regression_lost_wakeup runs this exact program
// with the fence compiled out and asserts the checker reports the
// deadlock.
TEST(ModelEventCount, NoLostWakeup) {
  mc::Result res =
      RunCheck("eventcount_no_lost_wakeup", 100000, [](mc::Execution& ex) {
        auto ec = std::make_shared<EventCount>();
        auto ready = std::make_shared<Atomic<int>>(0);
        ex.Spawn([=] {
          ready->store(1, std::memory_order_release);
          ec->NotifyAll();
        });
        ex.Spawn([=] {
          uint64_t epoch = ec->PrepareWait();
          if (ready->load(std::memory_order_acquire) != 0) {
            ec->CancelWait();
            return;
          }
          ec->Wait(epoch);
          MODEL_ASSERT(ready->load(std::memory_order_acquire) == 1);
        });
        ex.Join();
        MODEL_ASSERT(ec->waiters() == 0);
      });
  EXPECT_TRUE(res.ok) << res.failure << "\n" << res.trace;
}

TEST(ModelEventCount, WaitForTimesOutAndDeregisters) {
  mc::Result res =
      RunCheck("eventcount_waitfor_timeout", 10000, [](mc::Execution& ex) {
        auto ec = std::make_shared<EventCount>();
        ex.Spawn([=] {
          uint64_t epoch = ec->PrepareWait();
          bool woken = ec->WaitFor(epoch, std::chrono::milliseconds(1));
          MODEL_ASSERT(!woken);
        });
        ex.Join();
        MODEL_ASSERT(ec->waiters() == 0);
      });
  EXPECT_TRUE(res.ok) << res.failure << "\n" << res.trace;
  EXPECT_TRUE(res.complete);
}

// ---- MpmcQueue -------------------------------------------------------

// The full blocking Push x blocking Pop product is combinatorially too
// large to exhaust (each schedule costs two real thread handshakes per
// step), so this is a bounded smoke over the first few thousand DFS
// schedules — the result deliberately reports "(budget)". Complete
// exploration of the parking machinery itself lives in the EventCount
// and CloseWakesBlockedConsumer tests.
TEST(ModelMpmcQueue, SpscPushPopDeliversThroughParking) {
  mc::Result res =
      RunCheck("mpmc_spsc_push_pop", 2000, [](mc::Execution& ex) {
        auto q = std::make_shared<MpmcQueue<int>>(2);
        ex.Spawn([=] { (void)q->Push(42); });
        ex.Spawn([=] {
          std::optional<int> v = q->Pop();
          MODEL_ASSERT(v.has_value() && *v == 42);
        });
        ex.Join();
        MODEL_ASSERT(q->empty());
        MODEL_ASSERT(q->consumer_waiters() == 0);
      });
  EXPECT_TRUE(res.ok) << res.failure << "\n" << res.trace;
}

TEST(ModelMpmcQueue, TwoProducerConservation) {
  mc::Result res =
      RunCheck("mpmc_two_producer_conservation", 200000,
               [](mc::Execution& ex) {
                 auto q = std::make_shared<MpmcQueue<int>>(2);
                 auto ok1 = std::make_shared<bool>(false);
                 auto ok2 = std::make_shared<bool>(false);
                 ex.Spawn([=] { *ok1 = q->TryPush(1); });
                 ex.Spawn([=] { *ok2 = q->TryPush(2); });
                 ex.Join();
                 // Capacity 2: neither push may fail or vanish.
                 MODEL_ASSERT(*ok1 && *ok2);
                 std::vector<int> drained = q->TryPopAll();
                 MODEL_ASSERT(drained.size() == 2);
                 MODEL_ASSERT(drained[0] + drained[1] == 3);
                 MODEL_ASSERT(q->empty());
               });
  EXPECT_TRUE(res.ok) << res.failure << "\n" << res.trace;
}

TEST(ModelMpmcQueue, CloseWakesBlockedConsumer) {
  mc::Result res =
      RunCheck("mpmc_close_wakes_consumer", 200000, [](mc::Execution& ex) {
        auto q = std::make_shared<MpmcQueue<int>>(2);
        ex.Spawn([=] { q->Close(); });
        ex.Spawn([=] {
          std::optional<int> v = q->Pop();
          MODEL_ASSERT(!v.has_value());
        });
        ex.Join();
        MODEL_ASSERT(q->consumer_waiters() == 0);
      });
  EXPECT_TRUE(res.ok) << res.failure << "\n" << res.trace;
}

// The expired-deadline branch of PopFor must release its PrepareWait
// registration (the historical waiter leak: a leaked count pessimizes
// every future NotifyAll into taking the parking mutex).
// modelcheck_regression_waiter_leak re-leaks it and must be caught.
TEST(ModelMpmcQueue, PopForExpiredDeadlineReleasesRegistration) {
  mc::Result res = RunCheck(
      "mpmc_popfor_expired_deadline", 10000, [](mc::Execution& ex) {
        auto q = std::make_shared<MpmcQueue<int>>(2);
        ex.Spawn([=] {
          std::optional<int> v = q->PopFor(std::chrono::milliseconds(0));
          MODEL_ASSERT(!v.has_value());
        });
        ex.Join();
        MODEL_ASSERT(q->consumer_waiters() == 0);
      });
  EXPECT_TRUE(res.ok) << res.failure << "\n" << res.trace;
  EXPECT_TRUE(res.complete);
}

// ---- OverwriteQueue --------------------------------------------------

TEST(ModelOverwriteQueue, DisplacementConservesElements) {
  mc::Result res = RunCheck(
      "overwrite_conservation", 200000, [](mc::Execution& ex) {
        auto q = std::make_shared<OverwriteQueue<int>>(2);
        auto popped = std::make_shared<int>(0);
        ex.Spawn([=] {
          std::optional<int> displaced;
          for (int i = 1; i <= 3; ++i) {
            MODEL_ASSERT(q->Push(i, &displaced));
          }
        });
        ex.Spawn([=] {
          if (q->TryPop().has_value()) *popped = 1;
        });
        ex.Join();
        // Everything pushed is accounted for: displaced, popped, or
        // still queued.
        size_t remaining = q->TryPopAll().size();
        MODEL_ASSERT(3 == q->dropped() + *popped +
                              static_cast<int64_t>(remaining));
      });
  EXPECT_TRUE(res.ok) << res.failure << "\n" << res.trace;
}

// ---- SnapshotPtr -----------------------------------------------------

// Concurrent load/load/store with no data race on the guarded pointer
// (the lock bit's release unlock carries the happens-before) and
// monotonic observation. modelcheck_regression_relaxed_unlock downgrades
// the unlock to relaxed and must be reported as a data race.
TEST(ModelSnapshotPtr, PublicationIsRaceFreeAndMonotonic) {
  mc::Result res =
      RunCheck("snapshot_publication", 200000, [](mc::Execution& ex) {
        auto snap =
            std::make_shared<SnapshotPtr<int>>(std::make_shared<int>(0));
        ex.Spawn([=] { snap->store(std::make_shared<int>(1)); });
        ex.Spawn([=] {
          std::shared_ptr<int> a = snap->load();
          std::shared_ptr<int> b = snap->load();
          MODEL_ASSERT(a != nullptr && b != nullptr);
          MODEL_ASSERT(*b >= *a);  // snapshots never go backwards
        });
        ex.Join();
        MODEL_ASSERT(*snap->load() == 1);
      });
  EXPECT_TRUE(res.ok) << res.failure << "\n" << res.trace;
}

// ---- MemGovernor -----------------------------------------------------

TEST(ModelMemGovernor, UsedNeverExceedsCapacity) {
  mc::Result res = RunCheck(
      "memgov_used_le_capacity", 200000, [](mc::Execution& ex) {
        auto gov = std::make_shared<MemGovernor>(nullptr);
        MemPool* pool = gov->RegisterPool("p", 8);
        ex.Spawn([=] {
          common::Status s = pool->TryReserve(6);
          MODEL_ASSERT(pool->used() <= pool->capacity());
          if (s.ok()) pool->Release(6);
        });
        ex.Spawn([=] {
          common::Status s = pool->TryReserve(4);
          MODEL_ASSERT(pool->used() <= pool->capacity());
          if (s.ok()) pool->Release(4);
        });
        ex.Join();
        MODEL_ASSERT(pool->used() == 0);
      });
  EXPECT_TRUE(res.ok) << res.failure << "\n" << res.trace;
}

// ReserveFor against a concurrent Release: the waiter either gets the
// grant or times out cleanly — it never wedges (the Dekker handshake
// with Release) and never leaks its charge.
TEST(ModelMemGovernor, ReserveForNeverWedgesAndConservesCharge) {
  mc::Result res = RunCheck(
      "memgov_reservefor_release", 200000, [](mc::Execution& ex) {
        auto gov = std::make_shared<MemGovernor>(nullptr);
        MemPool* pool = gov->RegisterPool("p", 4);
        common::Status pre = pool->TryReserve(4);
        MODEL_ASSERT(pre.ok());
        ex.Spawn([=] {
          common::Status s = pool->ReserveFor(4, 10);
          if (s.ok()) {
            MODEL_ASSERT(pool->used() == 4);
            pool->Release(4);
          }
        });
        ex.Spawn([=] { pool->Release(4); });
        ex.Join();
        MODEL_ASSERT(pool->used() == 0);
      });
  EXPECT_TRUE(res.ok) << res.failure << "\n" << res.trace;
}

TEST(ModelMemGovernor, LeaseDisownConservesCharge) {
  mc::Result res = RunCheck(
      "memgov_lease_disown", 200000, [](mc::Execution& ex) {
        auto gov = std::make_shared<MemGovernor>(nullptr);
        MemPool* pool = gov->RegisterPool("p", 8);
        ex.Spawn([=] {
          MemLease lease;
          common::Status s = pool->TryLease(4, &lease);
          if (s.ok()) {
            MODEL_ASSERT(lease.held() && lease.bytes() == 4);
            size_t owed = lease.Disown();
            MODEL_ASSERT(owed == 4 && !lease.held());
            pool->Release(owed);  // the Disown contract
          }
        });
        ex.Spawn([=] {
          MemLease lease;
          common::Status s = pool->TryLease(8, &lease);
          if (s.ok()) MODEL_ASSERT(pool->used() == 8);
          // lease auto-releases on scope exit
        });
        ex.Join();
        MODEL_ASSERT(pool->used() == 0);
        MODEL_ASSERT(pool->high_water() <= pool->capacity());
      });
  EXPECT_TRUE(res.ok) << res.failure << "\n" << res.trace;
}

}  // namespace
}  // namespace asterix
