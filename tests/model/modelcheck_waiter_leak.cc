// Regression teeth for the model checker: recompiles MpmcQueue::PopFor
// with the historical waiter-registration leak (PR 5) — the expired-
// deadline early return skips CancelWait, leaving the not-empty gate's
// waiter count permanently nonzero (which pessimizes every future
// NotifyAll into taking the parking mutex). The checker must fail the
// post-join MODEL_ASSERT(consumer_waiters() == 0). Exit 0 iff found.
//
// Links ONLY {this file, model_check.cc} — see modelcheck_lost_wakeup.cc
// for why (header-inline mutation vs the linker's symbol choice).

#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>

#include "common/model_check.h"
#include "common/mpmc_queue.h"

int main() {
  using asterix::common::MpmcQueue;
  namespace mc = asterix::mc;

  mc::Options opts;
  opts.max_executions = 10000;
  // Same program as ModelMpmcQueue.PopForExpiredDeadlineReleasesRegistration:
  // a zero timeout deterministically takes the expired-deadline branch
  // (virtual time cannot advance between PrepareWait and the deadline
  // check — only blocked threads advance it).
  mc::Result res = mc::Check(opts, [](mc::Execution& ex) {
    auto q = std::make_shared<MpmcQueue<int>>(2);
    ex.Spawn([=] {
      std::optional<int> v = q->PopFor(std::chrono::milliseconds(0));
      MODEL_ASSERT(!v.has_value());
    });
    ex.Join();
    MODEL_ASSERT(q->consumer_waiters() == 0);
  });

  std::printf("[modelcheck] regression_waiter_leak: %s\n",
              res.Summary().c_str());
  if (res.ok) {
    std::printf("FAIL: checker did not find the seeded waiter leak\n");
    return 1;
  }
  if (res.failure.find("consumer_waiters() == 0") == std::string::npos) {
    std::printf("FAIL: expected the waiter-count assert, got: %s\n",
                res.failure.c_str());
    return 1;
  }
  std::printf("%s  replay: %s\nOK: seeded waiter leak found\n",
              res.trace.c_str(), res.replay.c_str());
  return 0;
}
