// Memory-governance tests: MemGovernor/MemPool semantics (reservation,
// leases, blocking ReserveFor, conservation under concurrency), FramePool
// recycling, and the headline claim of the pooled frame path — ZERO heap
// allocations per frame in the warm steady state, proven with the
// operator-new interposer from testing_util.h.
//
// This TU defines the binary's allocation interposer (exactly one TU per
// binary may; see testing_util.h). Under TSan/ASan the interposer is
// compiled out and the alloc-count assertions skip themselves; every
// other test here still runs and contributes race coverage — the file is
// part of the tsan-chaos preset.
#define ASTERIX_ALLOC_INTERPOSER 1

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/failpoint.h"
#include "common/mem_governor.h"
#include "common/rng.h"
#include "feeds/policy.h"
#include "feeds/subscriber.h"
#include "hyracks/frame.h"
#include "hyracks/frame_pool.h"
#include "storage/lsm_index.h"
#include "storage/wal.h"
#include "testing_util.h"

namespace asterix {
namespace {

using common::MemGovernor;
using common::MemLease;
using common::MemPool;
using common::Status;

// An isolated governor per test: no metrics registry, no interference
// with the process-wide Default() pools other components resolve.
std::unique_ptr<MemGovernor> TestGovernor() {
  return std::make_unique<MemGovernor>(nullptr);
}

// --- MemPool semantics --------------------------------------------------

TEST(MemPool, ReserveReleaseConservation) {
  auto gov = TestGovernor();
  MemPool* pool = gov->RegisterPool("p", 1000);
  EXPECT_EQ(pool->capacity(), 1000);
  EXPECT_EQ(pool->used(), 0);
  EXPECT_EQ(pool->available(), 1000);

  ASSERT_TRUE(pool->TryReserve(400).ok());
  EXPECT_EQ(pool->used(), 400);
  EXPECT_EQ(pool->available(), 600);
  ASSERT_TRUE(pool->TryReserve(600).ok());
  EXPECT_EQ(pool->used(), 1000);
  EXPECT_EQ(pool->available(), 0);

  // Exactly full: one more byte must be refused, and the refusal is
  // counted and typed.
  Status refused = pool->TryReserve(1);
  EXPECT_TRUE(refused.IsResourceExhausted());
  EXPECT_EQ(pool->exhausted_count(), 1);
  EXPECT_EQ(pool->used(), 1000);  // refusal charged nothing

  pool->Release(400);
  pool->Release(600);
  EXPECT_EQ(pool->used(), 0);
  EXPECT_EQ(pool->high_water(), 1000);
}

TEST(MemPool, ZeroByteReservationIsFree) {
  auto gov = TestGovernor();
  MemPool* pool = gov->RegisterPool("p", 0);
  EXPECT_TRUE(pool->TryReserve(0).ok());
  EXPECT_EQ(pool->used(), 0);
  EXPECT_TRUE(pool->TryReserve(1).IsResourceExhausted());
}

TEST(MemPool, SetCapacityShrinkBelowUsedClawsNothingBack) {
  auto gov = TestGovernor();
  MemPool* pool = gov->RegisterPool("p", 1000);
  ASSERT_TRUE(pool->TryReserve(800).ok());
  pool->SetCapacity(100);
  EXPECT_EQ(pool->used(), 800);  // nothing clawed back
  EXPECT_TRUE(pool->TryReserve(1).IsResourceExhausted());
  pool->Release(750);
  // 50 used against capacity 100: reservations fit again.
  EXPECT_TRUE(pool->TryReserve(50).ok());
  pool->Release(100);
}

TEST(MemPool, ForceReserveOverdraftIsCounted) {
  auto gov = TestGovernor();
  MemPool* pool = gov->RegisterPool("p", 100);
  pool->ForceReserve(50);
  EXPECT_EQ(pool->overdraft_count(), 0);  // within capacity: no overdraft
  pool->ForceReserve(100);
  EXPECT_EQ(pool->used(), 150);
  EXPECT_EQ(pool->overdraft_count(), 1);
  EXPECT_EQ(pool->high_water(), 150);
  pool->Release(150);
  EXPECT_EQ(pool->used(), 0);
}

TEST(MemPool, LeaseReleasesOnScopeExit) {
  auto gov = TestGovernor();
  MemPool* pool = gov->RegisterPool("p", 100);
  {
    MemLease lease;
    ASSERT_TRUE(pool->TryLease(60, &lease).ok());
    EXPECT_TRUE(lease.held());
    EXPECT_EQ(lease.bytes(), 60u);
    EXPECT_EQ(pool->used(), 60);
  }
  EXPECT_EQ(pool->used(), 0);  // no lease survives its RAII holder
}

TEST(MemPool, LeaseMoveTransfersOwnershipExactlyOnce) {
  auto gov = TestGovernor();
  MemPool* pool = gov->RegisterPool("p", 100);
  MemLease outer;
  {
    MemLease inner;
    ASSERT_TRUE(pool->TryLease(40, &inner).ok());
    outer = std::move(inner);
    EXPECT_FALSE(inner.held());
  }
  // inner died, but the charge moved out with `outer`.
  EXPECT_EQ(pool->used(), 40);
  outer.Release();
  EXPECT_EQ(pool->used(), 0);
  outer.Release();  // idempotent
  EXPECT_EQ(pool->used(), 0);
}

TEST(MemPool, LeaseDisownTransfersChargeToCaller) {
  auto gov = TestGovernor();
  MemPool* pool = gov->RegisterPool("p", 100);
  MemLease lease;
  ASSERT_TRUE(pool->TryLease(30, &lease).ok());
  EXPECT_EQ(lease.Disown(), 30u);
  EXPECT_FALSE(lease.held());
  EXPECT_EQ(pool->used(), 30);  // dtor must not release: caller owns it
  pool->Release(30);
  EXPECT_EQ(pool->used(), 0);
}

TEST(MemPool, ReserveForBlocksUntilReleased) {
  auto gov = TestGovernor();
  MemPool* pool = gov->RegisterPool("p", 100);
  ASSERT_TRUE(pool->TryReserve(100).ok());
  std::thread releaser = testing::After(50, [pool] { pool->Release(60); });
  // Parks until the releaser frees enough, then succeeds within capacity.
  EXPECT_TRUE(pool->ReserveFor(50, 5000).ok());
  releaser.join();
  EXPECT_EQ(pool->used(), 90);
  EXPECT_LE(pool->high_water(), 100);  // never granted past capacity
  pool->Release(90);
}

TEST(MemPool, ReserveForTimesOutPastExhaustion) {
  auto gov = TestGovernor();
  MemPool* pool = gov->RegisterPool("p", 100);
  ASSERT_TRUE(pool->TryReserve(100).ok());
  Status timed_out = pool->ReserveFor(1, 50);
  EXPECT_TRUE(timed_out.IsResourceExhausted());
  EXPECT_EQ(pool->used(), 100);  // the failed wait charged nothing
  pool->Release(100);
}

TEST(MemPool, ReserveForUnblockedByCapacityGrowth) {
  auto gov = TestGovernor();
  MemPool* pool = gov->RegisterPool("p", 100);
  ASSERT_TRUE(pool->TryReserve(100).ok());
  std::thread grower =
      testing::After(50, [pool] { pool->SetCapacity(200); });
  EXPECT_TRUE(pool->ReserveFor(50, 5000).ok());
  grower.join();
  EXPECT_EQ(pool->used(), 150);
  pool->Release(150);
}

TEST(MemGovernor, RegisterPoolIsGetOrCreate) {
  auto gov = TestGovernor();
  MemPool* a = gov->RegisterPool("alpha", 100);
  MemPool* again = gov->RegisterPool("alpha", 999);
  EXPECT_EQ(a, again);
  EXPECT_EQ(a->capacity(), 100);  // existing capacity untouched
  EXPECT_EQ(gov->GetPool("alpha"), a);
  EXPECT_EQ(gov->GetPool("missing"), nullptr);
  auto names = gov->PoolNames();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "alpha");
}

TEST(MemGovernor, DefaultHasTheStandardPools) {
  MemGovernor& gov = MemGovernor::Default();
  for (const char* name :
       {MemGovernor::kFramePathPool, MemGovernor::kMemtablePool,
        MemGovernor::kMergePool, MemGovernor::kSpillPool,
        MemGovernor::kSpanRingPool, MemGovernor::kWalPool}) {
    MemPool* pool = gov.GetPool(name);
    ASSERT_NE(pool, nullptr) << name;
    EXPECT_GT(pool->capacity(), 0) << name;
  }
}

TEST(MemGovernor, ExhaustionCallbackSeesPoolAndRequest) {
  auto gov = TestGovernor();
  MemPool* pool = gov->RegisterPool("tight", 10);
  std::atomic<int> calls{0};
  std::string seen_pool;
  size_t seen_bytes = 0;
  gov->SetExhaustionCallback(
      [&](const std::string& name, size_t requested) {
        calls.fetch_add(1);
        seen_pool = name;
        seen_bytes = requested;
      });
  EXPECT_TRUE(pool->TryReserve(11).IsResourceExhausted());
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen_pool, "tight");
  EXPECT_EQ(seen_bytes, 11u);
  // Pools registered after the callback inherit it.
  MemPool* later = gov->RegisterPool("later", 0);
  EXPECT_TRUE(later->TryReserve(1).IsResourceExhausted());
  EXPECT_EQ(calls.load(), 2);
  EXPECT_EQ(seen_pool, "later");
}

// --- budget property test (seeded, concurrent) --------------------------

// Invariants under random concurrent reserve/release traffic:
//   * used() <= capacity() at every instant (no ForceReserve in play);
//   * used() never goes negative;
//   * after all threads release everything, used() == 0 (conservation).
// Runs under the tsan-chaos and deadlock presets, so the claims are also
// TSan claims and the kMemGovernor lock rank is exercised.
TEST(MemPoolProperty, ConcurrentReserveReleaseConservation) {
  auto gov = TestGovernor();
  constexpr int64_t kCapacity = 1 << 20;
  MemPool* pool = gov->RegisterPool("prop", kCapacity);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  std::atomic<bool> stop_watching{false};
  std::atomic<bool> violated{false};

  // A dedicated observer: the invariant must hold at *every* instant,
  // not just at operation boundaries on the mutating threads.
  std::thread watcher([&] {
    while (!stop_watching.load(std::memory_order_relaxed)) {
      int64_t used = pool->used();
      if (used < 0 || used > pool->capacity()) {
        violated.store(true);
        return;
      }
    }
  });

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      common::Rng rng(1234 + t);
      std::vector<size_t> held;
      std::vector<MemLease> leases;
      for (int i = 0; i < kOpsPerThread; ++i) {
        switch (rng.Uniform(0, 3)) {
          case 0: {  // plain reserve
            size_t bytes = static_cast<size_t>(rng.Uniform(1, 8192));
            if (pool->TryReserve(bytes).ok()) held.push_back(bytes);
            break;
          }
          case 1: {  // lease
            MemLease lease;
            size_t bytes = static_cast<size_t>(rng.Uniform(1, 8192));
            if (pool->TryLease(bytes, &lease).ok()) {
              leases.push_back(std::move(lease));
            }
            break;
          }
          case 2: {  // release a random plain holding
            if (!held.empty()) {
              size_t idx =
                  static_cast<size_t>(rng.Uniform(0, held.size() - 1));
              pool->Release(held[idx]);
              held[idx] = held.back();
              held.pop_back();
            }
            break;
          }
          default: {  // drop a random lease (RAII release)
            if (!leases.empty()) {
              size_t idx =
                  static_cast<size_t>(rng.Uniform(0, leases.size() - 1));
              leases[idx] = std::move(leases.back());
              leases.pop_back();
            }
            break;
          }
        }
        int64_t used = pool->used();
        ASSERT_GE(used, 0);
        ASSERT_LE(used, kCapacity);
      }
      for (size_t bytes : held) pool->Release(bytes);
      leases.clear();  // RAII returns the rest
    });
  }
  for (auto& w : workers) w.join();
  stop_watching.store(true);
  watcher.join();

  EXPECT_FALSE(violated.load());
  EXPECT_EQ(pool->used(), 0);  // conservation: everything came back
  EXPECT_GT(pool->high_water(), 0);
  EXPECT_LE(pool->high_water(), kCapacity);
}

// ReserveFor under concurrent churn: waiters must never be granted past
// exhaustion and must not deadlock against releasers.
TEST(MemPoolProperty, BlockingWaitersNeverOvershoot) {
  auto gov = TestGovernor();
  constexpr int64_t kCapacity = 64 * 1024;
  MemPool* pool = gov->RegisterPool("waiters", kCapacity);

  constexpr int kThreads = 6;
  constexpr int kOpsPerThread = 300;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      common::Rng rng(99 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        size_t bytes = static_cast<size_t>(rng.Uniform(1024, 32 * 1024));
        if (pool->ReserveFor(bytes, 200).ok()) {
          ASSERT_LE(pool->used(), kCapacity);
          common::SleepMillis(rng.Uniform(0, 1));
          pool->Release(bytes);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(pool->used(), 0);
  EXPECT_LE(pool->high_water(), kCapacity);
}

// --- forced exhaustion (failpoint) --------------------------------------

TEST(MemGovernorChaos, ReserveFailpointStarvesOnePoolOnly) {
  if (!common::kFailPointsCompiledIn) GTEST_SKIP();
  auto gov = TestGovernor();
  MemPool* starved = gov->RegisterPool("starved", 1 << 20);
  MemPool* open = gov->RegisterPool("open", 1 << 20);
  common::FailPointRegistry::Instance().Arm(
      "common.memgov.reserve",
      common::FailPointPolicy::Error(
          Status::ResourceExhausted("injected memory pressure"))
          .OnInstance("starved"));
  EXPECT_TRUE(starved->TryReserve(1).IsResourceExhausted());
  EXPECT_EQ(starved->used(), 0);
  EXPECT_TRUE(open->TryReserve(1).ok());  // other pools unaffected
  open->Release(1);
  common::FailPointRegistry::Instance().Disarm("common.memgov.reserve");
  EXPECT_TRUE(starved->TryReserve(1).ok());
  starved->Release(1);
}

// Discard feeds shed with accurate accounting when the governor refuses
// every frame: nothing delivered, every record counted as discarded.
TEST(MemGovernorChaos, DiscardShedsWithAccurateAccountingUnderStarvation) {
  if (!common::kFailPointsCompiledIn) GTEST_SKIP();
  auto gov = TestGovernor();
  feeds::SubscriberOptions options;
  options.mode = feeds::ExcessMode::kDiscard;
  options.name = "mem_discard";
  options.memory_pool = gov->RegisterPool("starved_frames", 1 << 20);
  options.spill_pool = gov->RegisterPool("spill", 1 << 20);
  feeds::SubscriberQueue queue(options);
  common::FailPointRegistry::Instance().Arm(
      "common.memgov.reserve",
      common::FailPointPolicy::Error(
          Status::ResourceExhausted("injected memory pressure"))
          .OnInstance("starved_frames"));
  constexpr int kFrames = 50;
  for (int i = 0; i < kFrames; ++i) {
    queue.Deliver(testing::FrameOf(10), nullptr);
  }
  common::FailPointRegistry::Instance().Disarm("common.memgov.reserve");
  auto stats = queue.stats();
  EXPECT_FALSE(queue.failed());
  EXPECT_EQ(stats.records_delivered + stats.records_discarded,
            kFrames * 10);
  EXPECT_GT(stats.records_discarded, 0);
  EXPECT_EQ(queue.pending_bytes(), 0);  // dropped frames charge nothing
}

// --- consumer-facing exhaustion (WAL, LSM) ------------------------------

TEST(MemGovernorIntegration, WalAppendFailsTypedOnExhaustedPool) {
  auto gov = TestGovernor();
  MemPool* wal_pool = gov->RegisterPool("wal", 4);  // < any framed entry
  std::string path =
      std::string(::testing::TempDir()) + "mem_test_wal.log";
  std::remove(path.c_str());
  storage::Wal wal(path, /*durable=*/false, wal_pool);
  ASSERT_TRUE(wal.Open().ok());
  Status starved = wal.Append("payload");
  EXPECT_TRUE(starved.IsResourceExhausted());
  EXPECT_EQ(wal.entry_count(), 0);  // nothing landed
  wal_pool->SetCapacity(1 << 20);
  EXPECT_TRUE(wal.Append("payload").ok());
  EXPECT_EQ(wal.entry_count(), 1);
  EXPECT_EQ(wal_pool->used(), 0);  // per-append lease fully returned
  std::remove(path.c_str());
}

TEST(MemGovernorIntegration, LsmInsertFailsTypedAndFlushReleases) {
  auto gov = TestGovernor();
  storage::LsmOptions options;
  options.memtable_pool = gov->RegisterPool("memtable", 24);
  options.merge_pool = gov->RegisterPool("merge", 1 << 20);
  storage::LsmIndex index(options);
  // "k" (1) + Int64 (16) = 17 bytes: fits the 24-byte pool once, not
  // twice.
  ASSERT_TRUE(index.Insert("k", adm::Value::Int64(1)).ok());
  EXPECT_GT(options.memtable_pool->used(), 0);
  Status refused = index.Insert("l", adm::Value::Int64(2));
  EXPECT_TRUE(refused.IsResourceExhausted());
  // Flush moves the data out of the governed write path: the charge is
  // released and inserts are admitted again.
  index.Flush();
  EXPECT_EQ(options.memtable_pool->used(), 0);
  ASSERT_TRUE(index.Insert("l", adm::Value::Int64(2)).ok());
  index.Close();
  EXPECT_EQ(index.stats().inserts, 2);
}

// --- FramePool recycling -------------------------------------------------

TEST(FramePool, RecyclesBlocksAndRecordBuffers) {
  hyracks::FramePool pool(nullptr);
  {
    auto frame = pool.MakeFrame(std::vector<adm::Value>{
        adm::Value::Int64(1), adm::Value::Int64(2)});
    EXPECT_EQ(frame->record_count(), 2u);
  }  // last ref dropped: block + vector return to the pool
  EXPECT_EQ(pool.block_misses(), 1);
  EXPECT_EQ(pool.vector_hits(), 0);
  {
    std::vector<adm::Value> records = pool.AcquireRecords();
    EXPECT_TRUE(records.empty());
    EXPECT_GE(records.capacity(), 2u);  // recycled capacity
    records.push_back(adm::Value::Int64(3));
    auto frame = pool.MakeFrame(std::move(records));
    EXPECT_EQ(frame->records()[0].AsInt64(), 3);
  }
  EXPECT_EQ(pool.block_hits(), 1);  // second frame reused the block
  EXPECT_EQ(pool.vector_hits(), 1);
}

TEST(FramePool, StarvedBudgetDegradesToPassThrough) {
  auto gov = TestGovernor();
  MemPool* budget = gov->RegisterPool("tiny", 0);  // refuses everything
  hyracks::FramePool pool(budget);
  {
    auto frame =
        pool.MakeFrame(std::vector<adm::Value>{adm::Value::Int64(1)});
    EXPECT_EQ(frame->record_count(), 1u);  // allocation itself never fails
  }
  // Retention was refused: memory freed, drop counted, nothing charged.
  EXPECT_GT(pool.budget_drops(), 0);
  EXPECT_EQ(pool.retained_bytes(), 0);
  EXPECT_EQ(budget->used(), 0);
  {
    auto frame =
        pool.MakeFrame(std::vector<adm::Value>{adm::Value::Int64(2)});
    EXPECT_EQ(frame->record_count(), 1u);
  }
  EXPECT_EQ(pool.block_hits(), 0);  // pass-through: nothing was retained
}

TEST(FramePool, RetainedBytesMatchBudgetCharge) {
  auto gov = TestGovernor();
  MemPool* budget = gov->RegisterPool("frames", 1 << 20);
  {
    hyracks::FramePool pool(budget);
    { auto f = pool.MakeFrame({adm::Value::Int64(1)}); }
    EXPECT_GT(pool.retained_bytes(), 0);
    EXPECT_EQ(budget->used(), pool.retained_bytes());
    // Reuse releases the charge while the memory is live...
    auto f = pool.MakeFrame(pool.AcquireRecords());
    EXPECT_EQ(budget->used(), pool.retained_bytes());
  }
  // ...and the pool's destructor returns every parked byte.
  EXPECT_EQ(budget->used(), 0);
}

// --- the tentpole claim: zero allocations per frame once warm -----------

// Pump -> appender -> subscriber-queue -> batched drain, all on pooled
// frames: after a warm-up that populates the free lists, the loop below
// must not touch the heap at all.
TEST(ZeroAllocSteadyState, PooledFramePathAllocatesNothingPerFrame) {
  if (!testing::AllocInterposerActive()) {
    GTEST_SKIP() << "alloc interposer absent (sanitizer build)";
  }
  auto gov = TestGovernor();
  MemPool* frame_budget = gov->RegisterPool("frame_path", 64 << 20);
  hyracks::FramePool pool(frame_budget);

  feeds::SubscriberOptions options;
  options.mode = feeds::ExcessMode::kBlock;
  options.name = "zero_alloc";
  options.memory_pool = frame_budget;
  options.spill_pool = gov->RegisterPool("spill", 64 << 20);
  feeds::SubscriberQueue queue(options);

  struct QueueWriter : hyracks::IFrameWriter {
    feeds::SubscriberQueue* queue = nullptr;
    common::Status NextFrame(const hyracks::FramePtr& frame) override {
      queue->Deliver(frame, nullptr);
      return common::Status::OK();
    }
  };
  QueueWriter writer;
  writer.queue = &queue;

  constexpr size_t kRecordsPerFrame = 8;
  hyracks::FrameAppender appender(&writer, kRecordsPerFrame,
                                  /*max_bytes=*/1 << 20, &pool);

  std::vector<hyracks::FramePtr> drained;
  auto pump_one_frame = [&] {
    for (size_t r = 0; r < kRecordsPerFrame; ++r) {
      ASSERT_TRUE(
          appender.Append(adm::Value::Int64(static_cast<int64_t>(r))).ok());
    }
    drained.clear();
    (void)queue.NextBatchInto(&drained, /*timeout_ms=*/1000);
    ASSERT_EQ(drained.size(), 1u);
    ASSERT_EQ(drained[0]->record_count(), kRecordsPerFrame);
  };

  // Warm-up: learn the block size, grow the record vector to capacity,
  // populate free lists, size the drain scratch vectors.
  for (int i = 0; i < 64; ++i) pump_one_frame();
  drained.clear();  // drop the last frame so its buffers are pooled

  constexpr int kSteadyFrames = 256;
  testing::AllocScope scope;
  for (int i = 0; i < kSteadyFrames; ++i) pump_one_frame();
  EXPECT_ALLOCS_UNDER(scope, 0);
  if (HasFailure()) {
    ADD_FAILURE() << "block hits " << pool.block_hits() << " misses "
                  << pool.block_misses() << ", vector hits "
                  << pool.vector_hits() << " misses "
                  << pool.vector_misses() << ", budget drops "
                  << pool.budget_drops();
  }

  // Sanity: the steady phase really ran on recycled memory.
  EXPECT_GE(pool.block_hits(), kSteadyFrames);
  EXPECT_GE(pool.vector_hits(), kSteadyFrames);
}

}  // namespace
}  // namespace asterix
