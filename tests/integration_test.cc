// End-to-end tests of the AsterixInstance facade: feed lifecycle, cascade
// networks, policies, soft/hard failures, at-least-once semantics.
#include <filesystem>

#include <gtest/gtest.h>

#include "asterix/asterix.h"
#include "common/clock.h"
#include "feeds/udf.h"
#include "gen/tweetgen.h"
#include "testing_util.h"

namespace asterix {
namespace {

using adm::TypeTag;
using adm::Value;
using asterix::testing::FastOptions;
using asterix::testing::TweetsDataset;
using asterix::testing::WaitFor;
using common::Status;

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<AsterixInstance>(FastOptions(3));
    ASSERT_TRUE(db_->Start().ok());
  }

  std::unique_ptr<AsterixInstance> db_;
};

TEST_F(IntegrationTest, PrimaryFeedWithoutUdfIngestsToDataset) {
  ASSERT_TRUE(db_->CreateDataset(TweetsDataset("Tweets")).ok());
  feeds::FeedDef feed;
  feed.name = "TweetFeed";
  feed.adaptor_alias = "synthetic_tweets";
  feed.adaptor_config = {{"rate", "5000"}, {"limit", "500"}};
  ASSERT_TRUE(db_->CreateFeed(feed).ok());
  ASSERT_TRUE(db_->ConnectFeed("TweetFeed", "Tweets").ok());

  ASSERT_TRUE(WaitFor(
      [&] { return db_->CountDataset("Tweets").value() == 500; }, 10000))
      << "got " << db_->CountDataset("Tweets").value();
  ASSERT_TRUE(db_->DisconnectFeed("TweetFeed", "Tweets").ok());
  EXPECT_EQ(db_->CountDataset("Tweets").value(), 500);
}

TEST_F(IntegrationTest, ConnectRequiresExistingEntities) {
  EXPECT_FALSE(db_->ConnectFeed("NoFeed", "NoDataset").ok());
  ASSERT_TRUE(db_->CreateDataset(TweetsDataset("D")).ok());
  EXPECT_FALSE(db_->ConnectFeed("NoFeed", "D").ok());
  EXPECT_FALSE(db_->DisconnectFeed("NoFeed", "D").ok());
}

TEST_F(IntegrationTest, DoubleConnectRejected) {
  ASSERT_TRUE(db_->CreateDataset(TweetsDataset("D")).ok());
  feeds::FeedDef feed;
  feed.name = "F";
  feed.adaptor_alias = "synthetic_tweets";
  feed.adaptor_config = {{"rate", "100"}};
  ASSERT_TRUE(db_->CreateFeed(feed).ok());
  ASSERT_TRUE(db_->ConnectFeed("F", "D").ok());
  EXPECT_FALSE(db_->ConnectFeed("F", "D").ok());
  ASSERT_TRUE(db_->DisconnectFeed("F", "D").ok());
}

TEST_F(IntegrationTest, SecondaryFeedAppliesUdf) {
  ASSERT_TRUE(db_->CreateDataset(TweetsDataset("Processed")).ok());
  ASSERT_TRUE(
      db_->InstallUdf(feeds::AqlUdf::ExtractHashtags("addHashTags")).ok());
  feeds::FeedDef primary;
  primary.name = "Raw";
  primary.adaptor_alias = "synthetic_tweets";
  primary.adaptor_config = {{"rate", "5000"}, {"limit", "300"}};
  ASSERT_TRUE(db_->CreateFeed(primary).ok());
  feeds::FeedDef secondary;
  secondary.name = "Hashtagged";
  secondary.is_primary = false;
  secondary.parent_feed = "Raw";
  secondary.udf = "addHashTags";
  ASSERT_TRUE(db_->CreateFeed(secondary).ok());

  ASSERT_TRUE(db_->ConnectFeed("Hashtagged", "Processed").ok());
  ASSERT_TRUE(WaitFor(
      [&] { return db_->CountDataset("Processed").value() == 300; },
      10000));
  // Every stored record carries the UDF-added topics list.
  int64_t checked = 0;
  ASSERT_TRUE(db_->ScanDataset("Processed", [&](const Value& record) {
    ++checked;
    const Value* topics = record.GetField("topics");
    ASSERT_NE(topics, nullptr);
    EXPECT_TRUE(topics->is_list());
  }).ok());
  EXPECT_EQ(checked, 300);
  ASSERT_TRUE(db_->DisconnectFeed("Hashtagged", "Processed").ok());
}

TEST_F(IntegrationTest, CascadeSharesHeadSection) {
  // Fetch-Once Compute-Many: raw and processed connected concurrently;
  // the external source is consumed once (a single head section).
  gen::TweetGenServer source(0, gen::Pattern::Constant(2000, 1500));
  feeds::ExternalSourceRegistry::Instance().RegisterChannel(
      "src:1", &source.channel());

  ASSERT_TRUE(db_->CreateDataset(TweetsDataset("Raw")).ok());
  ASSERT_TRUE(db_->CreateDataset(TweetsDataset("Cooked")).ok());
  ASSERT_TRUE(
      db_->InstallUdf(feeds::AqlUdf::ExtractHashtags("tagify")).ok());

  feeds::FeedDef primary;
  primary.name = "SockFeed";
  primary.adaptor_alias = "socket_adaptor";
  primary.adaptor_config = {{"sockets", "src:1"}};
  ASSERT_TRUE(db_->CreateFeed(primary).ok());
  feeds::FeedDef secondary;
  secondary.name = "CookedFeed";
  secondary.is_primary = false;
  secondary.parent_feed = "SockFeed";
  secondary.udf = "tagify";
  ASSERT_TRUE(db_->CreateFeed(secondary).ok());

  // Connect the secondary BEFORE the primary (order must not matter).
  ASSERT_TRUE(db_->ConnectFeed("CookedFeed", "Cooked").ok());
  ASSERT_TRUE(db_->ConnectFeed("SockFeed", "Raw").ok());

  auto cooked = db_->feed_manager().GetConnection("CookedFeed", "Cooked");
  auto raw = db_->feed_manager().GetConnection("SockFeed", "Raw");
  ASSERT_TRUE(cooked.ok());
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(cooked->head_root, "SockFeed");
  EXPECT_EQ(raw->head_root, "SockFeed");
  // The primary sources directly from the shared head joint.
  EXPECT_EQ(raw->source_joint, "SockFeed");
  EXPECT_EQ(cooked->source_joint, "SockFeed");

  source.Start();
  source.Join();  // ~2000 tps for 1.5s
  const int64_t sent = source.tweets_sent();
  // Wall-clock rate bound: meaningless under TSan's slowdown (the
  // conservation checks below are the real assertions there).
  if (!asterix::testing::kTsanActive) ASSERT_GT(sent, 2000);
  ASSERT_GT(sent, 0);
  ASSERT_TRUE(WaitFor(
      [&] {
        return db_->CountDataset("Raw").value() == sent &&
               db_->CountDataset("Cooked").value() == sent;
      },
      15000))
      << "sent=" << sent << " raw=" << db_->CountDataset("Raw").value()
      << " cooked=" << db_->CountDataset("Cooked").value();
  // Fetch once: the head collected each record exactly once even though
  // two pipelines consumed it.
  auto head_metrics = db_->feed_manager().GetHeadMetrics("SockFeed");
  ASSERT_NE(head_metrics, nullptr);
  EXPECT_EQ(head_metrics->records_collected.load(), sent);

  ASSERT_TRUE(db_->DisconnectFeed("SockFeed", "Raw").ok());
  ASSERT_TRUE(db_->DisconnectFeed("CookedFeed", "Cooked").ok());
  feeds::ExternalSourceRegistry::Instance().UnregisterChannel("src:1");
}

TEST_F(IntegrationTest, SoftFailuresAreSkippedAndLogged) {
  gen::Channel channel;
  feeds::ExternalSourceRegistry::Instance().RegisterChannel("bad:1",
                                                            &channel);
  ASSERT_TRUE(db_->CreateDataset(TweetsDataset("D")).ok());
  feeds::FeedDef feed;
  feed.name = "BadFeed";
  feed.adaptor_alias = "socket_adaptor";
  feed.adaptor_config = {{"sockets", "bad:1"}};
  ASSERT_TRUE(db_->CreateFeed(feed).ok());
  ASSERT_TRUE(db_->ConnectFeed("BadFeed", "D").ok());

  // Interleave malformed payloads with good records.
  for (int i = 0; i < 100; ++i) {
    channel.Send("{\"id\": \"g" + std::to_string(i) + "\"}");
    if (i % 10 == 0) channel.Send("{{{ not adm at all");
  }
  ASSERT_TRUE(WaitFor(
      [&] { return db_->CountDataset("D").value() == 100; }, 10000))
      << db_->CountDataset("D").value();
  // Parse failures happen at the (shared) head section's collect stage.
  auto head_metrics = db_->feed_manager().GetHeadMetrics("BadFeed");
  ASSERT_NE(head_metrics, nullptr);
  EXPECT_EQ(head_metrics->soft_failures.load(), 10);
  EXPECT_EQ(head_metrics->records_collected.load(), 100);
  ASSERT_TRUE(db_->DisconnectFeed("BadFeed", "D").ok());
  feeds::ExternalSourceRegistry::Instance().UnregisterChannel("bad:1");
}

TEST_F(IntegrationTest, ThrowingUdfIsSandboxedByMetaFeed) {
  ASSERT_TRUE(db_->CreateDataset(TweetsDataset("D")).ok());
  // Throws on every 7th record (by seq) — a classic data-dependent bug.
  ASSERT_TRUE(db_->InstallUdf(std::make_shared<feeds::JavaUdf>(
                      "lib", "explode7",
                      [](const Value& record) -> std::optional<Value> {
                        if (record.GetField("seq")->AsInt64() % 7 == 0) {
                          throw std::runtime_error("unexpected value");
                        }
                        return record;
                      }))
                  .ok());
  feeds::FeedDef primary;
  primary.name = "P";
  primary.adaptor_alias = "synthetic_tweets";
  primary.adaptor_config = {{"rate", "5000"}, {"limit", "140"}};
  primary.udf = "lib#explode7";
  ASSERT_TRUE(db_->CreateFeed(primary).ok());
  ASSERT_TRUE(db_->ConnectFeed("P", "D").ok());

  // seq 0,7,14,...,133 throw: 20 of 140.
  ASSERT_TRUE(WaitFor(
      [&] { return db_->CountDataset("D").value() == 120; }, 10000))
      << db_->CountDataset("D").value();
  common::SleepMillis(100);  // no stragglers
  EXPECT_EQ(db_->CountDataset("D").value(), 120);
  auto metrics = db_->FeedMetrics("P", "D");
  EXPECT_EQ(metrics->soft_failures.load(), 20);
  ASSERT_TRUE(db_->DisconnectFeed("P", "D").ok());
}

TEST_F(IntegrationTest, BatchInsertPathWorks) {
  ASSERT_TRUE(db_->CreateDataset(TweetsDataset("D")).ok());
  std::vector<Value> batch;
  for (int i = 0; i < 50; ++i) {
    batch.push_back(
        Value::Record({{"id", Value::String("b" + std::to_string(i))},
                       {"n", Value::Int64(i)}}));
  }
  ASSERT_TRUE(db_->InsertBatch("D", std::move(batch)).ok());
  EXPECT_EQ(db_->CountDataset("D").value(), 50);
  auto got = db_->GetRecord("D", Value::String("b7"));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->GetField("n")->AsInt64(), 7);
}

}  // namespace
}  // namespace asterix
