// Additional engine tests: multi-out-edge DAGs (broadcast), freeze/drain
// semantics, output interception, queue-depth observability, node
// services, and scheduling behaviours the feed layer relies on.
#include <array>
#include <atomic>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "common/blocking_queue.h"
#include "common/clock.h"
#include "hyracks/cluster.h"
#include "hyracks/operators.h"

namespace asterix {
namespace hyracks {
namespace {

using adm::Value;
using common::Status;

std::vector<Value> MakeRecords(int n, int start = 0) {
  std::vector<Value> records;
  for (int i = start; i < start + n; ++i) {
    records.push_back(
        Value::Record({{"id", Value::String("r" + std::to_string(i))},
                       {"n", Value::Int64(i)}}));
  }
  return records;
}

class EngineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions options;
    options.storage_root =
        "/tmp/asterix_test/hyx_" + std::to_string(common::NowMicros());
    options.heartbeat_period_ms = 10;
    options.heartbeat_timeout_ms = 80;
    options.monitor_period_ms = 10;
    cluster_ = std::make_unique<ClusterController>(options);
    for (const char* id : {"A", "B"}) cluster_->AddNode(id);
    cluster_->Start();
  }
  std::unique_ptr<ClusterController> cluster_;
};

TEST_F(EngineFixture, MultiOutEdgeBroadcastsToBothConsumers) {
  auto sink1 = std::make_shared<CollectSinkOperator::Shared>();
  auto sink2 = std::make_shared<CollectSinkOperator::Shared>();
  JobSpec spec;
  spec.name = "dag";
  int src = spec.AddOperator(
      {"source",
       {{}, 1},
       [&](int) {
         return std::make_unique<VectorSourceOperator>(MakeRecords(40));
       },
       ""});
  int s1 = spec.AddOperator(
      {"sink1",
       {{}, 1},
       [&](int) { return std::make_unique<CollectSinkOperator>(sink1); },
       ""});
  int s2 = spec.AddOperator(
      {"sink2",
       {{}, 1},
       [&](int) { return std::make_unique<CollectSinkOperator>(sink2); },
       ""});
  spec.Connect(src, s1, {ConnectorKind::kOneToOne, nullptr});
  spec.Connect(src, s2, {ConnectorKind::kOneToOne, nullptr});
  auto job = cluster_->StartJob(std::move(spec));
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Wait(5000));
  EXPECT_EQ(sink1->size(), 40u);
  EXPECT_EQ(sink2->size(), 40u);
}

TEST_F(EngineFixture, OutputInterceptorSeesDeclaredJoints) {
  std::atomic<int> intercepted{0};
  std::string seen_joint;
  std::mutex mutex;
  JobSpec spec;
  spec.name = "intercept";
  spec.output_interceptor =
      [&](const std::string& joint_id,
          std::shared_ptr<IFrameWriter> downstream,
          TaskContext* ctx) -> std::shared_ptr<IFrameWriter> {
    ++intercepted;
    std::lock_guard<std::mutex> lock(mutex);
    seen_joint = joint_id + "#" + std::to_string(ctx->partition());
    return downstream;  // pass-through
  };
  auto sink = std::make_shared<CollectSinkOperator::Shared>();
  int src = spec.AddOperator(
      {"source",
       {{}, 1},
       [&](int) {
         return std::make_unique<VectorSourceOperator>(MakeRecords(5));
       },
       "MyFeed"});  // declares a joint
  int snk = spec.AddOperator(
      {"sink",
       {{}, 1},
       [&](int) { return std::make_unique<CollectSinkOperator>(sink); },
       ""});  // no joint -> no interception
  spec.Connect(src, snk, {ConnectorKind::kOneToOne, nullptr});
  auto job = cluster_->StartJob(std::move(spec));
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Wait(5000));
  EXPECT_EQ(intercepted.load(), 1);
  EXPECT_EQ(seen_joint, "MyFeed#0");
  EXPECT_EQ(sink->size(), 5u);  // pass-through kept the data flowing
}

TEST_F(EngineFixture, FreezeAndDrainCapturesUnprocessedFrames) {
  // A consumer that blocks forever: everything stays in its queue.
  class StuckOperator : public Operator {
   public:
    Status ProcessFrame(const FramePtr&, TaskContext* ctx) override {
      while (!ctx->ShouldStop()) common::SleepMillis(1);
      return Status::OK();
    }
  };
  JobSpec spec;
  spec.name = "freeze";
  int src = spec.AddOperator(
      {"source",
       {{}, 1},
       [&](int) {
         return std::make_unique<VectorSourceOperator>(
             MakeRecords(100), /*frame_records=*/10);
       },
       ""});
  int stuck = spec.AddOperator(
      {"stuck", {{}, 1},
       [&](int) { return std::make_unique<StuckOperator>(); }, ""});
  spec.Connect(src, stuck, {ConnectorKind::kOneToOne, nullptr});
  auto job = cluster_->StartJob(std::move(spec));
  ASSERT_TRUE(job.ok());
  auto tasks = (*job)->TasksOfOperator("stuck");
  ASSERT_EQ(tasks.size(), 1u);
  // Wait until frames have queued up behind the stuck task.
  common::Stopwatch watch;
  while (tasks[0]->queue_depth() < 5 && watch.ElapsedMillis() < 3000) {
    common::SleepMillis(5);
  }
  EXPECT_GE(tasks[0]->queue_depth(), 5u);
  auto frames = tasks[0]->FreezeAndDrain();
  // 10 frames were produced; one may be in-flight inside ProcessFrame.
  EXPECT_GE(frames.size(), 5u);
  EXPECT_LE(frames.size(), 10u);
  size_t records = 0;
  for (const auto& msg : frames) records += msg.frame->record_count();
  EXPECT_GE(records, 50u);
  (*job)->Abort();
}

// Regression for the batched-pump / freeze race: the pump pops whole
// batches (PopAll) and FreezeAndDrain can land mid-batch, so frames live
// in three places — the queue, the in-flight batch tail, the operator.
// Invariant: every frame Enqueue accepted ends up either processed by the
// operator or reclaimed by the freeze, exactly once; nothing is lost and
// nothing is double-delivered.
TEST_F(EngineFixture, FreezeAndDrainConservesFramesUnderConcurrentProducers) {
  class RecordingOperator : public Operator {
   public:
    Status ProcessFrame(const FramePtr& frame, TaskContext*) override {
      for (const Value& record : frame->records()) {
        processed.push_back(record.GetField("n")->AsInt64());
      }
      common::SleepMillis(1);  // widen the mid-batch window
      return Status::OK();
    }
    std::vector<int64_t> processed;  // pump thread only; read after Join
  };
  constexpr int kProducers = 4;
  constexpr int kFramesEach = 50;

  for (int round = 0; round < 12; ++round) {
    auto op = std::make_unique<RecordingOperator>();
    RecordingOperator* recorder = op.get();
    auto task = std::make_shared<Task>(
        /*job_id=*/1, "race", /*partition=*/0, /*partition_count=*/1,
        cluster_->GetNode("A"), std::move(op), /*queue_capacity=*/8);
    task->SetOutput(std::make_shared<NullWriter>());
    task->SetExpectedProducers(kProducers);
    task->Start();

    std::array<std::vector<int64_t>, kProducers> accepted;
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (int f = 0; f < kFramesEach; ++f) {
          int64_t id = p * kFramesEach + f;
          if (task->Enqueue(FrameMessage::Data(MakeFrame(
                  {Value::Record({{"n", Value::Int64(id)}})})))) {
            accepted[p].push_back(id);
          }
        }
      });
    }
    common::SleepMillis(round % 5);  // vary where the freeze lands
    std::vector<FrameMessage> reclaimed = task->FreezeAndDrain();
    for (auto& producer : producers) producer.join();

    std::set<int64_t> seen;
    for (int64_t id : recorder->processed) {
      EXPECT_TRUE(seen.insert(id).second)
          << "round " << round << ": id " << id << " processed twice";
    }
    for (const auto& msg : reclaimed) {
      for (const Value& record : msg.frame->records()) {
        int64_t id = record.GetField("n")->AsInt64();
        EXPECT_TRUE(seen.insert(id).second)
            << "round " << round << ": id " << id
            << " both processed and reclaimed";
      }
    }
    std::set<int64_t> accepted_ids;
    for (const auto& ids : accepted) {
      accepted_ids.insert(ids.begin(), ids.end());
    }
    EXPECT_EQ(seen, accepted_ids) << "round " << round;
  }
}

// The same conservation law at the queue level: PopAllFor racing TryPush
// from several producers, with a Close cutting in. accepted == drained.
TEST(BlockingQueueRaceTest, PopAllForAndCloseConserveItems) {
  for (int round = 0; round < 30; ++round) {
    common::BlockingQueue<int> queue(16);
    std::atomic<int64_t> accepted{0};
    std::atomic<bool> stop{false};
    std::vector<std::thread> producers;
    for (int p = 0; p < 4; ++p) {
      producers.emplace_back([&] {
        while (!stop.load()) {
          if (queue.TryPush(1)) accepted.fetch_add(1);
        }
      });
    }
    int64_t drained = 0;
    for (int i = 0; i < 20; ++i) {
      drained += static_cast<int64_t>(
          queue.PopAllFor(std::chrono::milliseconds(1)).size());
    }
    queue.Close();  // from here every TryPush must be rejected
    stop.store(true);
    for (auto& producer : producers) producer.join();
    drained += static_cast<int64_t>(queue.TryPopAll().size());
    EXPECT_EQ(drained, accepted.load()) << "round " << round;
  }
}

TEST_F(EngineFixture, SignalsRouteToNamedOperators) {
  class SignalSink : public Operator {
   public:
    explicit SignalSink(std::shared_ptr<std::atomic<int>> count)
        : count_(std::move(count)) {}
    Status ProcessFrame(const FramePtr&, TaskContext*) override {
      return Status::OK();
    }
    void OnSignal(const std::string& signal) override {
      if (signal == "ping") count_->fetch_add(1);
    }

   private:
    std::shared_ptr<std::atomic<int>> count_;
  };
  auto count = std::make_shared<std::atomic<int>>(0);
  JobSpec spec;
  spec.name = "signals";
  int src = spec.AddOperator(
      {"source",
       {{}, 1},
       [&](int) {
         return std::make_unique<VectorSourceOperator>(MakeRecords(1));
       },
       ""});
  int snk = spec.AddOperator(
      {"sink", {{}, 2},
       [&](int) { return std::make_unique<SignalSink>(count); }, ""});
  spec.Connect(src, snk, {ConnectorKind::kMToNRandom, nullptr});
  auto job = cluster_->StartJob(std::move(spec));
  ASSERT_TRUE(job.ok());
  for (auto& task : (*job)->TasksOfOperator("sink")) {
    task->Signal("ping");
    task->Signal("ignored");
  }
  EXPECT_EQ(count->load(), 2);
  ASSERT_TRUE((*job)->Wait(5000));
}

TEST_F(EngineFixture, GetOrSetServiceIsIdempotent) {
  NodeController* node = cluster_->GetNode("A");
  auto first = node->GetOrSetService("svc", [] {
    return std::make_shared<int>(1);
  });
  auto second = node->GetOrSetService("svc", [] {
    return std::make_shared<int>(2);
  });
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(*std::static_pointer_cast<int>(second), 1);
}

TEST_F(EngineFixture, ElasticNodeAdditionSchedulesNewWork) {
  // Nodes added mid-session are schedulable (cluster-level elasticity).
  cluster_->AddNode("C");
  auto sink = std::make_shared<CollectSinkOperator::Shared>();
  JobSpec spec;
  spec.name = "on-c";
  int src = spec.AddOperator(
      {"source",
       {{"C"}, 0},
       [&](int) {
         return std::make_unique<VectorSourceOperator>(MakeRecords(10));
       },
       ""});
  int snk = spec.AddOperator(
      {"sink", {{"C"}, 0},
       [&](int) { return std::make_unique<CollectSinkOperator>(sink); },
       ""});
  spec.Connect(src, snk, {ConnectorKind::kOneToOne, nullptr});
  auto job = cluster_->StartJob(std::move(spec));
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Wait(5000));
  EXPECT_EQ(sink->size(), 10u);
}

TEST_F(EngineFixture, RestartedNodeHostsFreshTasks) {
  cluster_->KillNode("B");
  common::SleepMillis(150);  // detection
  cluster_->RestartNode("B");
  auto sink = std::make_shared<CollectSinkOperator::Shared>();
  JobSpec spec;
  spec.name = "revived";
  int src = spec.AddOperator(
      {"source",
       {{"B"}, 0},
       [&](int) {
         return std::make_unique<VectorSourceOperator>(MakeRecords(7));
       },
       ""});
  int snk = spec.AddOperator(
      {"sink", {{"B"}, 0},
       [&](int) { return std::make_unique<CollectSinkOperator>(sink); },
       ""});
  spec.Connect(src, snk, {ConnectorKind::kOneToOne, nullptr});
  auto job = cluster_->StartJob(std::move(spec));
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Wait(5000));
  EXPECT_EQ(sink->size(), 7u);
}

TEST_F(EngineFixture, FailingOperatorFailsTheJobNotTheProcess) {
  class FailingOperator : public Operator {
   public:
    Status ProcessFrame(const FramePtr&, TaskContext*) override {
      throw std::runtime_error("plain hyracks jobs are non-resumable");
    }
  };
  JobSpec spec;
  spec.name = "fails";
  int src = spec.AddOperator(
      {"source",
       {{}, 1},
       [&](int) {
         return std::make_unique<VectorSourceOperator>(MakeRecords(5));
       },
       ""});
  int bad = spec.AddOperator(
      {"bad", {{}, 1},
       [&](int) { return std::make_unique<FailingOperator>(); }, ""});
  spec.Connect(src, bad, {ConnectorKind::kOneToOne, nullptr});
  auto job = cluster_->StartJob(std::move(spec));
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Wait(5000));
  bool some_task_failed = false;
  for (const auto& group : (*job)->tasks()) {
    for (const auto& task : group) {
      if (!task->final_status().ok()) some_task_failed = true;
    }
  }
  EXPECT_TRUE(some_task_failed);
}

TEST_F(EngineFixture, HashRouterGroupsWholeFramesByKey) {
  // Records with the same key always land on the same store partition,
  // even when interleaved across many frames.
  storage::DatasetDef def;
  def.name = "K";
  def.datatype = "any";
  def.primary_key_field = "id";
  int p = 0;
  for (NodeController* node : cluster_->AliveNodes()) {
    ASSERT_TRUE(node->storage().CreatePartition(def, p++, nullptr).ok());
  }
  JobSpec spec;
  spec.name = "hash-group";
  int src = spec.AddOperator(
      {"source",
       {{}, 1},
       [&](int) {
         // 100 records over 10 distinct keys.
         std::vector<Value> records;
         for (int i = 0; i < 100; ++i) {
           records.push_back(Value::Record(
               {{"id", Value::String("k" + std::to_string(i % 10))},
                {"v", Value::Int64(i)}}));
         }
         return std::make_unique<VectorSourceOperator>(
             std::move(records), /*frame_records=*/7);
       },
       ""});
  int store = spec.AddOperator(
      {"store",
       {{"A", "B"}, 0},
       [&](int) { return std::make_unique<IndexInsertOperator>("K"); },
       ""});
  spec.Connect(src, store,
               {ConnectorKind::kMToNHash, [](const Value& r) {
                  return r.GetField("id")->AsString();
                }});
  auto job = cluster_->StartJob(std::move(spec));
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Wait(5000));
  // Upserts per key: 10 distinct keys total across the two partitions,
  // and no key appears on both partitions.
  std::set<std::string> keys_a, keys_b;
  cluster_->GetNode("A")->storage().GetPartition("K")->Scan(
      [&](const Value& r) { keys_a.insert(r.GetField("id")->AsString()); });
  cluster_->GetNode("B")->storage().GetPartition("K")->Scan(
      [&](const Value& r) { keys_b.insert(r.GetField("id")->AsString()); });
  EXPECT_EQ(keys_a.size() + keys_b.size(), 10u);
  for (const std::string& key : keys_a) {
    EXPECT_EQ(keys_b.count(key), 0u);
  }
}

}  // namespace
}  // namespace hyracks
}  // namespace asterix
