// Tests for the runtime lock-order checker (common/deadlock_detector.h):
// inversions abort with a witness report naming both acquisition sites,
// same-rank nesting is rejected, try-locks never abort, and the disarmed
// fast path is a no-op. Compiled against a detector-ON tree (the
// `deadlock` preset); under a default build every test SKIPs.
#include <gtest/gtest.h>

#include "common/thread_annotations.h"

namespace asterix {
namespace common {
namespace {

#ifndef ASTERIX_DEADLOCK_DETECTOR

TEST(DeadlockDetectorTest, CompiledOut) {
  static_assert(!kDeadlockDetectorCompiledIn);
  GTEST_SKIP()
      << "detector compiled out; configure with -DASTERIX_DEADLOCK_DETECTOR=ON";
}

#else  // ASTERIX_DEADLOCK_DETECTOR

class DeadlockDetectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static_assert(kDeadlockDetectorCompiledIn);
    DeadlockDetector::ResetGraph();
    DeadlockDetector::Arm();
    ASSERT_EQ(DeadlockDetector::HeldCount(), 0u);
  }
};

using DeadlockDetectorDeathTest = DeadlockDetectorTest;

TEST_F(DeadlockDetectorTest, LegalDescentRecordsEdgesAndUnwinds) {
  Mutex high(LockRank::kTestRankHigh);
  Mutex mid(LockRank::kTestRankMid);
  Mutex low(LockRank::kTestRankLow);
  {
    MutexLock a(high);
    MutexLock b(mid);
    MutexLock c(low);
    EXPECT_EQ(DeadlockDetector::HeldCount(), 3u);
  }
  EXPECT_EQ(DeadlockDetector::HeldCount(), 0u);
  // high->mid, high->low, mid->low.
  EXPECT_EQ(DeadlockDetector::EdgeCount(), 3u);
}

TEST_F(DeadlockDetectorTest, UnrankedMutexIsInvisible) {
  Mutex unranked;  // kUnranked: tests/examples escape hatch
  Mutex low(LockRank::kTestRankLow);
  MutexLock a(low);
  MutexLock b(unranked);  // ascent over `low`, but invisible
  EXPECT_EQ(DeadlockDetector::HeldCount(), 1u);
}

// A successful try-lock cannot have blocked, so it is exempt from the
// descent rule — but it is held, and still constrains later acquisitions.
TEST_F(DeadlockDetectorTest, TryLockAscentDoesNotAbort) {
  Mutex high(LockRank::kTestRankHigh);
  Mutex low(LockRank::kTestRankLow);
  low.Lock();
  ASSERT_TRUE(high.TryLock());  // ascent via try-lock: recorded, no abort
  EXPECT_EQ(DeadlockDetector::HeldCount(), 2u);
  EXPECT_GE(DeadlockDetector::EdgeCount(), 1u);  // low->high witnessed
  high.Unlock();
  low.Unlock();
  EXPECT_EQ(DeadlockDetector::HeldCount(), 0u);
}

TEST_F(DeadlockDetectorTest, DisarmedPathIsANoOp) {
  DeadlockDetector::Disarm();
  Mutex high(LockRank::kTestRankHigh);
  Mutex low(LockRank::kTestRankLow);
  {
    MutexLock a(low);
    MutexLock b(high);  // would abort if armed
    EXPECT_EQ(DeadlockDetector::HeldCount(), 0u);
  }
  EXPECT_EQ(DeadlockDetector::EdgeCount(), 0u);
  DeadlockDetector::Arm();
}

TEST_F(DeadlockDetectorDeathTest, TwoLockInversionAbortsWithWitness) {
  Mutex high(LockRank::kTestRankHigh);
  Mutex low(LockRank::kTestRankLow);
  // The legal order first: records the acquired-before edge high->low
  // that the inversion below closes into a cycle.
  {
    MutexLock outer(high);
    MutexLock inner(low);
  }
  EXPECT_DEATH(
      {
        MutexLock outer(low);
        MutexLock inner(high);  // inversion
      },
      "lock-order violation.*acquiring kTestRankHigh \\(rank 930\\) at "
      ".*deadlock_test\\.cc:[0-9]+.*while holding kTestRankLow \\(rank "
      "910\\) acquired at .*deadlock_test\\.cc:[0-9]+.*witness cycle.*"
      "kTestRankHigh -> kTestRankLow.*closes the cycle");
}

TEST_F(DeadlockDetectorDeathTest, ThreeLockCycleNamesEveryEdge) {
  Mutex high(LockRank::kTestRankHigh);
  Mutex mid(LockRank::kTestRankMid);
  Mutex low(LockRank::kTestRankLow);
  // Record high->mid and mid->low on separate legal chains, so the
  // inversion low-then-high closes a three-edge cycle through mid.
  {
    MutexLock outer(high);
    MutexLock inner(mid);
  }
  {
    MutexLock outer(mid);
    MutexLock inner(low);
  }
  EXPECT_DEATH(
      {
        MutexLock outer(low);
        MutexLock inner(high);  // closes high->mid->low->high
      },
      "witness cycle.*kTestRankHigh -> kTestRankMid.*held at "
      ".*deadlock_test\\.cc:[0-9]+.*kTestRankMid -> kTestRankLow.*"
      "kTestRankLow -> kTestRankHigh: closes the cycle");
}

TEST_F(DeadlockDetectorDeathTest, HierarchyViolationWithoutPriorCycle) {
  Mutex high(LockRank::kTestRankHigh);
  Mutex low(LockRank::kTestRankLow);
  // No legal-order edge was ever recorded: still aborts, as a pure rank
  // violation caught before any cycle materialized.
  EXPECT_DEATH(
      {
        MutexLock outer(low);
        MutexLock inner(high);
      },
      "lock-order violation.*no prior opposite-order edge recorded");
}

TEST_F(DeadlockDetectorDeathTest, SameRankNestingRejected) {
  // Two distinct mutexes of one rank: instances of a rank are unordered,
  // so nesting them can deadlock against the opposite nesting.
  Mutex a(LockRank::kTestRankMid);
  Mutex b(LockRank::kTestRankMid);
  EXPECT_DEATH(
      {
        MutexLock outer(a);
        MutexLock inner(b);
      },
      "same-rank re-acquisition: kTestRankMid \\(rank 920\\).*already "
      "held, acquired at .*deadlock_test\\.cc:[0-9]+.*re-acquired at *"
      ".*deadlock_test\\.cc:[0-9]+");
}

TEST_F(DeadlockDetectorDeathTest, SharedMutexReadersObeyRanks) {
  SharedMutex high(LockRank::kTestRankHigh);
  Mutex low(LockRank::kTestRankLow);
  EXPECT_DEATH(
      {
        MutexLock outer(low);
        ReaderMutexLock inner(high);  // shared ascent deadlocks the same
      },
      "lock-order violation.*acquiring kTestRankHigh");
}

#endif  // ASTERIX_DEADLOCK_DETECTOR

}  // namespace
}  // namespace common
}  // namespace asterix
