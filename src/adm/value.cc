#include "adm/value.h"

#include <cassert>
#include <cstdio>
#include <string_view>

namespace asterix {
namespace adm {

const char* TypeTagName(TypeTag tag) {
  switch (tag) {
    case TypeTag::kNull:
      return "null";
    case TypeTag::kBoolean:
      return "boolean";
    case TypeTag::kInt64:
      return "int64";
    case TypeTag::kDouble:
      return "double";
    case TypeTag::kString:
      return "string";
    case TypeTag::kPoint:
      return "point";
    case TypeTag::kDatetime:
      return "datetime";
    case TypeTag::kOrderedList:
      return "orderedlist";
    case TypeTag::kRecord:
      return "record";
  }
  return "?";
}

Value Value::Boolean(bool b) {
  Value v;
  v.tag_ = TypeTag::kBoolean;
  v.data_ = b;
  return v;
}

Value Value::Int64(int64_t i) {
  Value v;
  v.tag_ = TypeTag::kInt64;
  v.data_ = i;
  return v;
}

Value Value::Double(double d) {
  Value v;
  v.tag_ = TypeTag::kDouble;
  v.data_ = d;
  return v;
}

Value Value::String(std::string s) {
  Value v;
  v.tag_ = TypeTag::kString;
  v.data_ = std::move(s);
  return v;
}

Value Value::MakePoint(double x, double y) {
  Value v;
  v.tag_ = TypeTag::kPoint;
  v.data_ = Point{x, y};
  return v;
}

Value Value::Datetime(int64_t epoch_ms) {
  Value v;
  v.tag_ = TypeTag::kDatetime;
  v.data_ = epoch_ms;
  return v;
}

Value Value::List(ListVec items) {
  Value v;
  v.tag_ = TypeTag::kOrderedList;
  v.data_ = std::make_shared<ListVec>(std::move(items));
  return v;
}

Value Value::Record(FieldVec fields) {
  Value v;
  v.tag_ = TypeTag::kRecord;
  v.data_ = std::make_shared<FieldVec>(std::move(fields));
  return v;
}

bool Value::AsBoolean() const {
  assert(tag_ == TypeTag::kBoolean);
  return std::get<bool>(data_);
}

int64_t Value::AsInt64() const {
  assert(tag_ == TypeTag::kInt64);
  return std::get<int64_t>(data_);
}

double Value::AsDouble() const {
  assert(tag_ == TypeTag::kDouble);
  return std::get<double>(data_);
}

const std::string& Value::AsString() const {
  assert(tag_ == TypeTag::kString);
  return std::get<std::string>(data_);
}

const Point& Value::AsPoint() const {
  assert(tag_ == TypeTag::kPoint);
  return std::get<Point>(data_);
}

int64_t Value::AsDatetime() const {
  assert(tag_ == TypeTag::kDatetime);
  return std::get<int64_t>(data_);
}

const ListVec& Value::AsList() const {
  assert(tag_ == TypeTag::kOrderedList);
  return *std::get<std::shared_ptr<ListVec>>(data_);
}

const FieldVec& Value::AsRecord() const {
  assert(tag_ == TypeTag::kRecord);
  return *std::get<std::shared_ptr<FieldVec>>(data_);
}

double Value::AsNumber() const {
  if (tag_ == TypeTag::kInt64) return static_cast<double>(AsInt64());
  assert(tag_ == TypeTag::kDouble);
  return AsDouble();
}

const Value* Value::GetField(const std::string& name) const {
  if (tag_ != TypeTag::kRecord) return nullptr;
  for (const auto& [field_name, value] : AsRecord()) {
    if (field_name == name) return &value;
  }
  return nullptr;
}

namespace {
// Copy-on-write: returns a uniquely-owned copy of the shared payload.
template <typename T>
std::shared_ptr<T> Detach(std::shared_ptr<T>& ptr) {
  if (ptr.use_count() > 1) ptr = std::make_shared<T>(*ptr);
  return ptr;
}
}  // namespace

void Value::SetField(const std::string& name, Value v) {
  if (tag_ != TypeTag::kRecord) return;
  auto& ptr = std::get<std::shared_ptr<FieldVec>>(data_);
  auto fields = Detach(ptr);
  for (auto& [field_name, value] : *fields) {
    if (field_name == name) {
      value = std::move(v);
      return;
    }
  }
  fields->emplace_back(name, std::move(v));
}

bool Value::RemoveField(const std::string& name) {
  if (tag_ != TypeTag::kRecord) return false;
  auto& ptr = std::get<std::shared_ptr<FieldVec>>(data_);
  auto fields = Detach(ptr);
  for (auto it = fields->begin(); it != fields->end(); ++it) {
    if (it->first == name) {
      fields->erase(it);
      return true;
    }
  }
  return false;
}

void Value::Append(Value v) {
  if (tag_ != TypeTag::kOrderedList) return;
  auto& ptr = std::get<std::shared_ptr<ListVec>>(data_);
  Detach(ptr)->push_back(std::move(v));
}

bool Value::operator==(const Value& other) const {
  if (tag_ != other.tag_) return false;
  switch (tag_) {
    case TypeTag::kNull:
      return true;
    case TypeTag::kBoolean:
      return AsBoolean() == other.AsBoolean();
    case TypeTag::kInt64:
      return AsInt64() == other.AsInt64();
    case TypeTag::kDouble:
      return AsDouble() == other.AsDouble();
    case TypeTag::kString:
      return AsString() == other.AsString();
    case TypeTag::kPoint:
      return AsPoint() == other.AsPoint();
    case TypeTag::kDatetime:
      return AsDatetime() == other.AsDatetime();
    case TypeTag::kOrderedList:
      return AsList() == other.AsList();
    case TypeTag::kRecord:
      return AsRecord() == other.AsRecord();
  }
  return false;
}

namespace {
void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        out->push_back(c);
    }
  }
  out->push_back('"');
}

void AppendDouble(double d, std::string* out) {
  char buf[32];
  int n = std::snprintf(buf, sizeof(buf), "%.17g", d);
  std::string_view sv(buf, static_cast<size_t>(n));
  out->append(sv);
  // Ensure doubles round-trip as doubles (never bare integers).
  if (sv.find_first_of(".eEnN") == std::string_view::npos) {
    out->append(".0");
  }
}
}  // namespace

void Value::AppendAdm(std::string* out) const {
  switch (tag_) {
    case TypeTag::kNull:
      out->append("null");
      return;
    case TypeTag::kBoolean:
      out->append(AsBoolean() ? "true" : "false");
      return;
    case TypeTag::kInt64: {
      out->append(std::to_string(AsInt64()));
      return;
    }
    case TypeTag::kDouble:
      AppendDouble(AsDouble(), out);
      return;
    case TypeTag::kString:
      AppendEscaped(AsString(), out);
      return;
    case TypeTag::kPoint: {
      const Point& p = AsPoint();
      out->append("point(");
      AppendDouble(p.x, out);
      out->append(", ");
      AppendDouble(p.y, out);
      out->append(")");
      return;
    }
    case TypeTag::kDatetime:
      out->append("datetime(");
      out->append(std::to_string(AsDatetime()));
      out->append(")");
      return;
    case TypeTag::kOrderedList: {
      out->push_back('[');
      const ListVec& items = AsList();
      for (size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out->append(", ");
        items[i].AppendAdm(out);
      }
      out->push_back(']');
      return;
    }
    case TypeTag::kRecord: {
      out->push_back('{');
      const FieldVec& fields = AsRecord();
      for (size_t i = 0; i < fields.size(); ++i) {
        if (i > 0) out->append(", ");
        AppendEscaped(fields[i].first, out);
        out->append(": ");
        fields[i].second.AppendAdm(out);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string Value::ToAdmString() const {
  std::string out;
  AppendAdm(&out);
  return out;
}

size_t Value::ApproxSizeBytes() const {
  switch (tag_) {
    case TypeTag::kNull:
    case TypeTag::kBoolean:
      return 8;
    case TypeTag::kInt64:
    case TypeTag::kDouble:
    case TypeTag::kDatetime:
      return 16;
    case TypeTag::kString:
      return 24 + AsString().size();
    case TypeTag::kPoint:
      return 24;
    case TypeTag::kOrderedList: {
      size_t total = 24;
      for (const Value& v : AsList()) total += v.ApproxSizeBytes();
      return total;
    }
    case TypeTag::kRecord: {
      size_t total = 24;
      for (const auto& [name, v] : AsRecord()) {
        total += 24 + name.size() + v.ApproxSizeBytes();
      }
      return total;
    }
  }
  return 8;
}

}  // namespace adm
}  // namespace asterix
