// Datatype definitions: named record types with open/closed semantics and
// optional fields, mirroring AsterixDB's `create type ... as open {...}`.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adm/value.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace asterix {
namespace adm {

/// One declared field of a record type.
struct FieldDef {
  std::string name;
  TypeTag tag = TypeTag::kString;
  /// For kRecord fields: the name of the nested record type ("" = any).
  std::string nested_type;
  /// For kOrderedList fields: element type tag.
  TypeTag element_tag = TypeTag::kString;
  /// Optional fields ("type?") may be absent or null.
  bool optional = false;
};

/// A named record type. Open types admit undeclared extra fields; closed
/// types reject them.
class Datatype {
 public:
  Datatype(std::string name, bool open, std::vector<FieldDef> fields)
      : name_(std::move(name)), open_(open), fields_(std::move(fields)) {}

  const std::string& name() const { return name_; }
  bool open() const { return open_; }
  const std::vector<FieldDef>& fields() const { return fields_; }

  const FieldDef* FindField(const std::string& field_name) const;

 private:
  std::string name_;
  bool open_;
  std::vector<FieldDef> fields_;
};

/// Thread-safe registry of datatypes (the datatype slice of the Metadata
/// dataverse).
class TypeRegistry {
 public:
  [[nodiscard]] common::Status Register(Datatype type);
  const Datatype* Find(const std::string& name) const;
  std::vector<std::string> Names() const;

  /// Checks that `record` conforms to type `type_name`:
  ///  - it is a record,
  ///  - every non-optional declared field is present with the right tag,
  ///  - optional fields are absent, null, or correctly typed,
  ///  - closed types carry no undeclared fields.
  /// Nested record fields are validated recursively when their
  /// `nested_type` is registered.
  [[nodiscard]] common::Status Conforms(const Value& record,
                          const std::string& type_name) const;

 private:
  mutable common::Mutex mutex_{common::LockRank::kTypeRegistry};
  std::map<std::string, Datatype> types_ GUARDED_BY(mutex_);
};

/// Convenience builder for declaring datatypes fluently in tests/examples.
class TypeBuilder {
 public:
  explicit TypeBuilder(std::string name, bool open = true)
      : name_(std::move(name)), open_(open) {}

  TypeBuilder& Field(std::string field, TypeTag tag, bool optional = false) {
    fields_.push_back({std::move(field), tag, "", TypeTag::kString,
                       optional});
    return *this;
  }
  TypeBuilder& RecordField(std::string field, std::string nested_type,
                           bool optional = false) {
    fields_.push_back({std::move(field), TypeTag::kRecord,
                       std::move(nested_type), TypeTag::kString, optional});
    return *this;
  }
  TypeBuilder& ListField(std::string field, TypeTag element_tag,
                         bool optional = false) {
    fields_.push_back({std::move(field), TypeTag::kOrderedList, "",
                       element_tag, optional});
    return *this;
  }
  Datatype Build() { return Datatype(name_, open_, std::move(fields_)); }

 private:
  std::string name_;
  bool open_;
  std::vector<FieldDef> fields_;
};

}  // namespace adm
}  // namespace asterix

