#include "adm/parser.h"

#include <cctype>
#include <cstdlib>
#include <string>

namespace asterix {
namespace adm {

namespace {

using common::Result;
using common::Status;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> Parse() {
    SkipWs();
    auto value = ParseValue();
    if (!value.ok()) return value;
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after value");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::Corruption("ADM parse error at offset " +
                              std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Eof() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  bool Consume(char c) {
    if (!Eof() && Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<Value> ParseValue() {
    if (Eof()) return Error("unexpected end of input");
    char c = Peek();
    switch (c) {
      case '{':
        return ParseRecord();
      case '[':
        return ParseList();
      case '"':
        return ParseString();
      case 't':
        if (ConsumeWord("true")) return Value::Boolean(true);
        return Error("expected 'true'");
      case 'f':
        if (ConsumeWord("false")) return Value::Boolean(false);
        return Error("expected 'false'");
      case 'n':
        if (ConsumeWord("null")) return Value::Null();
        return Error("expected 'null'");
      case 'p':
        return ParsePoint();
      case 'd':
        return ParseDatetime();
      default:
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
          return ParseNumber();
        }
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  Result<Value> ParseRecord() {
    ++pos_;  // '{'
    FieldVec fields;
    SkipWs();
    if (Consume('}')) return Value::Record(std::move(fields));
    while (true) {
      SkipWs();
      if (Eof() || Peek() != '"') return Error("expected field name");
      auto name = ParseRawString();
      if (!name.ok()) return name.status();
      SkipWs();
      if (!Consume(':')) return Error("expected ':' after field name");
      SkipWs();
      auto value = ParseValue();
      if (!value.ok()) return value;
      fields.emplace_back(std::move(name).value(),
                          std::move(value).value());
      SkipWs();
      if (Consume('}')) return Value::Record(std::move(fields));
      if (!Consume(',')) return Error("expected ',' or '}' in record");
    }
  }

  Result<Value> ParseList() {
    ++pos_;  // '['
    ListVec items;
    SkipWs();
    if (Consume(']')) return Value::List(std::move(items));
    while (true) {
      SkipWs();
      auto value = ParseValue();
      if (!value.ok()) return value;
      items.push_back(std::move(value).value());
      SkipWs();
      if (Consume(']')) return Value::List(std::move(items));
      if (!Consume(',')) return Error("expected ',' or ']' in list");
    }
  }

  Result<std::string> ParseRawString() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      if (Eof()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (Eof()) return Error("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'r':
            out.push_back('\r');
            break;
          default:
            return Error(std::string("bad escape '\\") + e + "'");
        }
      } else {
        out.push_back(c);
      }
    }
  }

  Result<Value> ParseString() {
    auto raw = ParseRawString();
    if (!raw.ok()) return raw.status();
    return Value::String(std::move(raw).value());
  }

  Result<Value> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    bool is_double = false;
    while (!Eof()) {
      char c = Peek();
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                 c == '-') {
        if (c == '.' || c == 'e' || c == 'E') is_double = true;
        // '+'/'-' only valid inside an exponent; the strtod/strtoll
        // validation below catches misuse.
        if (c == '+' || c == '-') {
          char prev = text_[pos_ - 1];
          if (prev != 'e' && prev != 'E') break;
        }
        ++pos_;
      } else {
        break;
      }
    }
    std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") return Error("malformed number");
    char* end = nullptr;
    if (is_double) {
      double d = std::strtod(token.c_str(), &end);
      if (end != token.c_str() + token.size()) {
        return Error("malformed double '" + token + "'");
      }
      return Value::Double(d);
    }
    long long i = std::strtoll(token.c_str(), &end, 10);
    if (end != token.c_str() + token.size()) {
      return Error("malformed integer '" + token + "'");
    }
    return Value::Int64(static_cast<int64_t>(i));
  }

  Result<Value> ParsePoint() {
    if (!ConsumeWord("point")) return Error("expected 'point'");
    SkipWs();
    if (!Consume('(')) return Error("expected '(' after point");
    SkipWs();
    auto x = ParseNumber();
    if (!x.ok()) return x;
    SkipWs();
    if (!Consume(',')) return Error("expected ',' in point");
    SkipWs();
    auto y = ParseNumber();
    if (!y.ok()) return y;
    SkipWs();
    if (!Consume(')')) return Error("expected ')' after point");
    return Value::MakePoint(x.value().AsNumber(), y.value().AsNumber());
  }

  Result<Value> ParseDatetime() {
    if (!ConsumeWord("datetime")) return Error("expected 'datetime'");
    SkipWs();
    if (!Consume('(')) return Error("expected '(' after datetime");
    SkipWs();
    auto ms = ParseNumber();
    if (!ms.ok()) return ms;
    SkipWs();
    if (!Consume(')')) return Error("expected ')' after datetime");
    if (ms.value().tag() != TypeTag::kInt64) {
      return Error("datetime requires an integer epoch-ms argument");
    }
    return Value::Datetime(ms.value().AsInt64());
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

common::Result<Value> ParseAdm(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace adm
}  // namespace asterix
