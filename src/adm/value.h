// ADM (AsterixDB Data Model) values: a semi-structured model supporting
// nulls, primitives, spatial points, datetimes, ordered lists and open
// records (records that may carry fields beyond their declared type).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace asterix {
namespace adm {

enum class TypeTag : uint8_t {
  kNull = 0,
  kBoolean,
  kInt64,
  kDouble,
  kString,
  kPoint,
  kDatetime,
  kOrderedList,
  kRecord,
};

/// Human-readable name ("int64", "point", ...).
const char* TypeTagName(TypeTag tag);

/// 2-D spatial point (latitude/longitude in the paper's tweet workload).
struct Point {
  double x = 0.0;
  double y = 0.0;
  bool operator==(const Point& other) const {
    return x == other.x && y == other.y;
  }
};

class Value;

/// Ordered field list; ADM records preserve field order and may be "open"
/// (carrying fields not declared by their datatype).
using FieldVec = std::vector<std::pair<std::string, Value>>;
using ListVec = std::vector<Value>;

/// An immutable-ish ADM value. Records and lists own their children.
class Value {
 public:
  /// Default-constructed value is null.
  Value() : tag_(TypeTag::kNull) {}

  static Value Null() { return Value(); }
  static Value Boolean(bool b);
  static Value Int64(int64_t i);
  static Value Double(double d);
  static Value String(std::string s);
  static Value MakePoint(double x, double y);
  /// Datetime as milliseconds since the Unix epoch.
  static Value Datetime(int64_t epoch_ms);
  static Value List(ListVec items);
  static Value Record(FieldVec fields);

  TypeTag tag() const { return tag_; }
  bool is_null() const { return tag_ == TypeTag::kNull; }
  bool is_record() const { return tag_ == TypeTag::kRecord; }
  bool is_list() const { return tag_ == TypeTag::kOrderedList; }

  /// Typed accessors; the caller must check tag() first (asserts in debug).
  bool AsBoolean() const;
  int64_t AsInt64() const;
  double AsDouble() const;
  const std::string& AsString() const;
  const Point& AsPoint() const;
  int64_t AsDatetime() const;
  const ListVec& AsList() const;
  const FieldVec& AsRecord() const;

  /// Numeric coercion: int64 or double as double.
  double AsNumber() const;

  /// Record field lookup; returns nullptr if absent or not a record.
  const Value* GetField(const std::string& name) const;

  /// Record field mutation helpers (used by UDFs building derived records).
  /// No-ops unless this value is a record.
  void SetField(const std::string& name, Value v);
  bool RemoveField(const std::string& name);

  /// List append helper; no-op unless this value is a list.
  void Append(Value v);

  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Serializes to ADM text (JSON superset: point(x, y), datetime(ms)).
  std::string ToAdmString() const;

  /// Approximate in-memory footprint in bytes (for memory budgeting in
  /// the Basic/Spill policy runtimes).
  size_t ApproxSizeBytes() const;

 private:
  TypeTag tag_;
  std::variant<std::monostate, bool, int64_t, double, std::string, Point,
               std::shared_ptr<ListVec>, std::shared_ptr<FieldVec>>
      data_;

  void AppendAdm(std::string* out) const;
};

}  // namespace adm
}  // namespace asterix

