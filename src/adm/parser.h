// Parser for ADM text: JSON plus the constructor forms point(x, y) and
// datetime(epoch_ms). This is the translation step every feed adaptor
// performs on raw external data before records enter the pipeline.
#pragma once

#include <string_view>

#include "adm/value.h"
#include "common/result.h"

namespace asterix {
namespace adm {

/// Parses a single ADM value from `text`. The whole input must be consumed
/// (trailing whitespace allowed). Malformed input yields a Corruption
/// status whose message pinpoints the offset — this is the error surfaced
/// as a *soft failure* during ingestion.
[[nodiscard]] common::Result<Value> ParseAdm(std::string_view text);

}  // namespace adm
}  // namespace asterix

