#include "adm/datatype.h"
#include "common/thread_annotations.h"

namespace asterix {
namespace adm {

using common::Status;

const FieldDef* Datatype::FindField(const std::string& field_name) const {
  for (const FieldDef& f : fields_) {
    if (f.name == field_name) return &f;
  }
  return nullptr;
}

Status TypeRegistry::Register(Datatype type) {
  common::MutexLock lock(mutex_);
  std::string name = type.name();  // read before the move below
  auto [it, inserted] = types_.emplace(std::move(name), std::move(type));
  if (!inserted) {
    return Status::AlreadyExists("datatype '" + it->first +
                                 "' already registered");
  }
  return Status::OK();
}

const Datatype* TypeRegistry::Find(const std::string& name) const {
  common::MutexLock lock(mutex_);
  auto it = types_.find(name);
  return it == types_.end() ? nullptr : &it->second;
}

std::vector<std::string> TypeRegistry::Names() const {
  common::MutexLock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(types_.size());
  for (const auto& [name, type] : types_) names.push_back(name);
  return names;
}

Status TypeRegistry::Conforms(const Value& record,
                              const std::string& type_name) const {
  const Datatype* type = Find(type_name);
  if (type == nullptr) {
    return Status::NotFound("unknown datatype '" + type_name + "'");
  }
  if (!record.is_record()) {
    return Status::InvalidArgument("value of type '" +
                                   std::string(TypeTagName(record.tag())) +
                                   "' is not a record");
  }
  // Declared fields: presence and tags.
  for (const FieldDef& field : type->fields()) {
    const Value* v = record.GetField(field.name);
    if (v == nullptr || v->is_null()) {
      if (field.optional) continue;
      return Status::InvalidArgument("missing required field '" +
                                     field.name + "' for type '" +
                                     type_name + "'");
    }
    if (v->tag() != field.tag) {
      return Status::InvalidArgument(
          "field '" + field.name + "' has tag " + TypeTagName(v->tag()) +
          ", expected " + TypeTagName(field.tag));
    }
    if (field.tag == TypeTag::kRecord && !field.nested_type.empty()) {
      Status nested = Conforms(*v, field.nested_type);
      if (!nested.ok()) {
        return Status::InvalidArgument("in field '" + field.name +
                                       "': " + nested.message());
      }
    }
    if (field.tag == TypeTag::kOrderedList) {
      for (const Value& item : v->AsList()) {
        if (item.tag() != field.element_tag) {
          return Status::InvalidArgument(
              "list field '" + field.name + "' has element of tag " +
              TypeTagName(item.tag()) + ", expected " +
              TypeTagName(field.element_tag));
        }
      }
    }
  }
  // Closed types: reject undeclared fields.
  if (!type->open()) {
    for (const auto& [name, v] : record.AsRecord()) {
      if (type->FindField(name) == nullptr) {
        return Status::InvalidArgument("closed type '" + type_name +
                                       "' does not admit field '" + name +
                                       "'");
      }
    }
  }
  return Status::OK();
}

}  // namespace adm
}  // namespace asterix
