// TweetGen: the custom external data source from the dissertation's
// evaluation. Generates synthetic but meaningful tweets in JSON/ADM form
// at a pattern-controlled rate and pushes them into an in-process channel
// (the stand-in for a network socket).
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "adm/value.h"
#include "common/blocking_queue.h"
#include "common/rng.h"
#include "gen/pattern.h"

namespace asterix {
namespace gen {

/// In-process stand-in for a socket between an external source and a feed
/// adaptor. Push-based: the sender never blocks (the source keeps emitting
/// at its regular rate irrespective of receiver state); the receiver pulls
/// what has arrived.
class Channel {
 public:
  /// Sender side. Never blocks; drops nothing (unbounded, like a socket
  /// whose reader keeps up — back-pressure is modelled downstream).
  void Send(std::string payload) { queue_.Push(std::move(payload)); }

  /// Receiver side: drains up to `max` pending payloads (non-blocking).
  std::vector<std::string> Drain(size_t max = SIZE_MAX) {
    std::vector<std::string> out;
    while (out.size() < max) {
      auto item = queue_.TryPop();
      if (!item.has_value()) break;
      out.push_back(std::move(*item));
    }
    return out;
  }

  /// Receiver side: waits up to `timeout_ms` for one payload.
  std::optional<std::string> Receive(int64_t timeout_ms) {
    return queue_.PopFor(std::chrono::milliseconds(timeout_ms));
  }

  void CloseSender() { queue_.Close(); }
  bool closed() const { return queue_.closed(); }
  size_t pending() const { return queue_.size(); }

 private:
  common::BlockingQueue<std::string> queue_{SIZE_MAX,
                                            common::LockRank::kTweetChannel};
};

/// Synthesizes one tweet record per call. Deterministic per seed.
class TweetFactory {
 public:
  /// `source_id` prefixes tweet ids so that parallel TweetGen instances
  /// produce globally unique keys.
  explicit TweetFactory(int source_id, uint64_t seed = 42);

  /// A tweet conforming to the Tweet datatype of Listing 3.1: id, user
  /// (nested record), latitude/longitude, created_at, message_text,
  /// country, plus a numeric `seq` used by the record-id pattern figures.
  adm::Value NextTweet();

  /// The same tweet in serialized (JSON/ADM text) form, as an external
  /// source would ship it.
  std::string NextTweetText() { return NextTweet().ToAdmString(); }

  int64_t generated() const { return seq_; }

 private:
  const int source_id_;
  common::Rng rng_;
  int64_t seq_ = 0;
};

/// A TweetGen instance: a thread that pushes tweets into a channel
/// following a rate pattern, then stops. Models a push-based source:
/// generation continues regardless of what the receiver does.
class TweetGenServer {
 public:
  TweetGenServer(int source_id, Pattern pattern, uint64_t seed = 42);
  ~TweetGenServer();

  /// Starts pushing. `time_scale` < 1.0 compresses the pattern's
  /// durations (0.1 = run 10x faster than described).
  void Start(double time_scale = 1.0);

  /// Stops early (the pattern also terminates naturally).
  void Stop();

  /// Blocks until the pattern completes or Stop() is called.
  void Join();

  Channel& channel() { return channel_; }
  int64_t tweets_sent() const { return sent_.load(); }
  bool finished() const { return finished_.load(); }

 private:
  void RunLoop(double time_scale);

  const int source_id_;
  const Pattern pattern_;
  TweetFactory factory_;
  Channel channel_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> finished_{false};
  std::atomic<int64_t> sent_{0};
};

}  // namespace gen
}  // namespace asterix

