// Pattern descriptors: the XML files TweetGen is configured with in the
// dissertation's evaluation (Listing 5.13). A pattern is a cycle of
// (duration, rate) intervals repeated a number of times.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace asterix {
namespace gen {

struct Interval {
  int64_t duration_ms = 0;
  /// Tweets per second during this interval.
  int64_t rate_tps = 0;
};

/// A rate pattern: the interval list, repeated `repeat` times.
struct Pattern {
  std::vector<Interval> intervals;
  int repeat = 1;

  int64_t TotalDurationMs() const {
    int64_t per_cycle = 0;
    for (const Interval& i : intervals) per_cycle += i.duration_ms;
    return per_cycle * repeat;
  }

  /// Total records the pattern generates if run to completion.
  int64_t TotalRecords() const {
    int64_t per_cycle = 0;
    for (const Interval& i : intervals) {
      per_cycle += i.duration_ms * i.rate_tps / 1000;
    }
    return per_cycle * repeat;
  }

  /// Constant-rate convenience pattern.
  static Pattern Constant(int64_t rate_tps, int64_t duration_ms) {
    return Pattern{{{duration_ms, rate_tps}}, 1};
  }

  /// Alternating two-rate burst pattern (the Chapter 7 workload shape).
  static Pattern Burst(int64_t low_tps, int64_t high_tps,
                       int64_t interval_ms, int cycles) {
    return Pattern{{{interval_ms, low_tps}, {interval_ms, high_tps}},
                   cycles};
  }
};

/// Parses the XML pattern-descriptor format:
///
///   <pattern>
///     <cycle repeat="5">
///       <interval duration="400" rate="300"/>
///       <interval duration="400" rate="600"/>
///     </cycle>
///   </pattern>
///
/// `duration` is in milliseconds here (the paper uses seconds; benches
/// time-scale). Unknown tags/attributes are rejected.
[[nodiscard]] common::Result<Pattern> ParsePatternXml(const std::string& xml);

/// Serializes a pattern back to the XML descriptor form.
std::string PatternToXml(const Pattern& pattern);

}  // namespace gen
}  // namespace asterix

