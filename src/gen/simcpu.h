// SimulatedCpu: a token-bucket model of aggregate cluster CPU capacity,
// used by the experiment harness on hosts with fewer physical cores than
// the simulated cluster has nodes. UDFs "spend" microseconds of CPU by
// consuming credits; when demand exceeds the configured capacity,
// consumers block — reproducing the CPU contention the paper's
// %OVERLAP/cascade experiments rely on without needing real cores.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/clock.h"
#include "common/thread_annotations.h"

namespace asterix {
namespace gen {

class SimulatedCpu {
 public:
  /// `cores` of capacity: cores * 1e6 credit-microseconds per second.
  explicit SimulatedCpu(double cores)
      : credits_per_us_(cores), last_refill_us_(common::NowMicros()) {}

  /// Blocks until `cost_us` microseconds of CPU work have been granted.
  /// Grants are FIFO (ticket order): concurrent consumers time-share the
  /// capacity fairly, like threads on a real scheduler — without this, a
  /// path with cheap requests would starve an expensive one and the
  /// %OVERLAP comparison would not be apples-to-apples.
  void Consume(int64_t cost_us) EXCLUDES(mutex_) {
    common::MutexLock lock(mutex_);
    uint64_t ticket = next_ticket_++;
    cv_.Wait(mutex_, [&]() REQUIRES(mutex_) { return now_serving_ == ticket; });
    while (true) {
      Refill();
      if (available_us_ >= static_cast<double>(cost_us)) {
        available_us_ -= static_cast<double>(cost_us);
        break;
      }
      double deficit = static_cast<double>(cost_us) - available_us_;
      auto wait_us =
          static_cast<int64_t>(deficit / credits_per_us_) + 50;
      cv_.WaitFor(mutex_, std::chrono::microseconds(wait_us));
    }
    ++now_serving_;
    cv_.NotifyAll();
  }

  double available_us() EXCLUDES(mutex_) {
    common::MutexLock lock(mutex_);
    Refill();
    return available_us_;
  }

 private:
  void Refill() REQUIRES(mutex_) {
    int64_t now = common::NowMicros();
    available_us_ +=
        static_cast<double>(now - last_refill_us_) * credits_per_us_;
    last_refill_us_ = now;
    // Cap the burst a consumer can accumulate (100ms of capacity).
    available_us_ =
        std::min(available_us_, credits_per_us_ * 100000.0);
  }

  const double credits_per_us_;
  common::Mutex mutex_{common::LockRank::kSimCpu};
  common::CondVar cv_;
  double available_us_ GUARDED_BY(mutex_) = 0;
  int64_t last_refill_us_ GUARDED_BY(mutex_);
  uint64_t next_ticket_ GUARDED_BY(mutex_) = 0;
  uint64_t now_serving_ GUARDED_BY(mutex_) = 0;
};

}  // namespace gen
}  // namespace asterix

