#include "gen/pattern.h"

#include <cctype>
#include <cstdlib>
#include <map>

#include "common/strings.h"

namespace asterix {
namespace gen {

using common::Result;
using common::Status;

namespace {

// Tiny forgiving XML scanner for the descriptor's fixed shape: returns
// tags in order as (name, attributes, is_closing).
struct Tag {
  std::string name;
  std::map<std::string, std::string> attrs;
  bool closing = false;
  bool self_closing = false;
};

Result<std::vector<Tag>> ScanTags(const std::string& xml) {
  std::vector<Tag> tags;
  size_t pos = 0;
  while (true) {
    size_t open = xml.find('<', pos);
    if (open == std::string::npos) break;
    size_t close = xml.find('>', open);
    if (close == std::string::npos) {
      return Status::Corruption("unterminated tag in pattern descriptor");
    }
    std::string body(xml.substr(open + 1, close - open - 1));
    pos = close + 1;
    Tag tag;
    if (!body.empty() && body.front() == '/') {
      tag.closing = true;
      body = body.substr(1);
    }
    if (!body.empty() && body.back() == '/') {
      tag.self_closing = true;
      body.pop_back();
    }
    // Name up to first whitespace.
    size_t name_end = 0;
    while (name_end < body.size() &&
           !std::isspace(static_cast<unsigned char>(body[name_end]))) {
      ++name_end;
    }
    tag.name = body.substr(0, name_end);
    // Attributes: key="value" pairs.
    size_t i = name_end;
    while (i < body.size()) {
      while (i < body.size() &&
             std::isspace(static_cast<unsigned char>(body[i]))) {
        ++i;
      }
      if (i >= body.size()) break;
      size_t eq = body.find('=', i);
      if (eq == std::string::npos) {
        return Status::Corruption("malformed attribute in <" + tag.name +
                                  ">");
      }
      std::string key(common::Trim(body.substr(i, eq - i)));
      size_t q1 = body.find('"', eq);
      if (q1 == std::string::npos) {
        return Status::Corruption("attribute '" + key + "' lacks quotes");
      }
      size_t q2 = body.find('"', q1 + 1);
      if (q2 == std::string::npos) {
        return Status::Corruption("attribute '" + key + "' unterminated");
      }
      tag.attrs[key] = body.substr(q1 + 1, q2 - q1 - 1);
      i = q2 + 1;
    }
    tags.push_back(std::move(tag));
  }
  return tags;
}

Result<int64_t> AttrInt(const Tag& tag, const std::string& key) {
  auto it = tag.attrs.find(key);
  if (it == tag.attrs.end()) {
    return Status::InvalidArgument("<" + tag.name + "> missing attribute '" +
                                   key + "'");
  }
  char* end = nullptr;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end != it->second.c_str() + it->second.size() || v < 0) {
    return Status::InvalidArgument("attribute '" + key +
                                   "' is not a non-negative integer");
  }
  return static_cast<int64_t>(v);
}

}  // namespace

Result<Pattern> ParsePatternXml(const std::string& xml) {
  auto tags = ScanTags(xml);
  if (!tags.ok()) return tags.status();

  Pattern pattern;
  bool in_pattern = false;
  bool in_cycle = false;
  bool saw_cycle = false;
  for (const Tag& tag : *tags) {
    if (tag.name == "pattern") {
      in_pattern = !tag.closing;
    } else if (tag.name == "cycle") {
      if (!in_pattern) {
        return Status::InvalidArgument("<cycle> outside <pattern>");
      }
      if (tag.closing) {
        in_cycle = false;
      } else {
        if (saw_cycle) {
          return Status::InvalidArgument(
              "multiple <cycle> elements are not supported");
        }
        saw_cycle = true;
        in_cycle = true;
        ASSIGN_OR_RETURN(int64_t repeat, AttrInt(tag, "repeat"));
        pattern.repeat = static_cast<int>(repeat);
      }
    } else if (tag.name == "interval") {
      if (!in_cycle) {
        return Status::InvalidArgument("<interval> outside <cycle>");
      }
      Interval interval;
      ASSIGN_OR_RETURN(interval.duration_ms, AttrInt(tag, "duration"));
      ASSIGN_OR_RETURN(interval.rate_tps, AttrInt(tag, "rate"));
      pattern.intervals.push_back(interval);
    } else {
      return Status::InvalidArgument("unknown tag <" + tag.name + ">");
    }
  }
  if (!saw_cycle || pattern.intervals.empty()) {
    return Status::InvalidArgument(
        "pattern descriptor needs one <cycle> with >=1 <interval>");
  }
  if (pattern.repeat < 1) {
    return Status::InvalidArgument("cycle repeat must be >= 1");
  }
  return pattern;
}

std::string PatternToXml(const Pattern& pattern) {
  std::string out = "<pattern>\n  <cycle repeat=\"" +
                    std::to_string(pattern.repeat) + "\">\n";
  for (const Interval& interval : pattern.intervals) {
    out += "    <interval duration=\"" +
           std::to_string(interval.duration_ms) + "\" rate=\"" +
           std::to_string(interval.rate_tps) + "\"/>\n";
  }
  out += "  </cycle>\n</pattern>\n";
  return out;
}

}  // namespace gen
}  // namespace asterix
