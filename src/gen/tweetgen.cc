#include "gen/tweetgen.h"

#include "common/clock.h"
#include "common/logging.h"

namespace asterix {
namespace gen {

using adm::Value;

namespace {
const char* kWords[] = {"verizon",  "sprint",   "iphone",   "samsung",
                        "platform", "network",  "signal",   "speed",
                        "customer", "service",  "plan",     "shortcut",
                        "touch",    "screen",   "wireless", "battery"};
const char* kHashtags[] = {"#mobile", "#fast", "#love",  "#fail",
                           "#cool",   "#slow", "#happy", "#Obama"};
const char* kCountries[] = {"US", "IN", "UK", "CA", "DE", "BR"};
}  // namespace

TweetFactory::TweetFactory(int source_id, uint64_t seed)
    : source_id_(source_id),
      // 64-bit product: a large source id must perturb the seed, not
      // overflow int (UBSan-caught).
      rng_(seed + static_cast<uint64_t>(source_id) * 7919) {}

Value TweetFactory::NextTweet() {
  int64_t seq = seq_++;
  std::string id = "g" + std::to_string(source_id_) + "-" +
                   std::to_string(seq);
  std::string user_name = "user" + std::to_string(rng_.Uniform(0, 9999));

  std::string text;
  int words = static_cast<int>(rng_.Uniform(4, 10));
  for (int w = 0; w < words; ++w) {
    if (w > 0) text.push_back(' ');
    text += kWords[rng_.Uniform(0, 15)];
  }
  int hashtags = static_cast<int>(rng_.Uniform(0, 2));
  for (int h = 0; h < hashtags; ++h) {
    text.push_back(' ');
    text += kHashtags[rng_.Uniform(0, 7)];
  }

  Value user = Value::Record({
      {"screen_name", Value::String(user_name)},
      {"lang", Value::String("en")},
      {"friends_count", Value::Int64(rng_.Uniform(0, 2000))},
      {"statuses_count", Value::Int64(rng_.Uniform(0, 50000))},
      {"name", Value::String(user_name)},
      {"followers_count", Value::Int64(rng_.Uniform(0, 100000))},
  });

  return Value::Record({
      {"id", Value::String(id)},
      {"seq", Value::Int64(seq)},
      {"user", std::move(user)},
      {"latitude", Value::Double(24.0 + rng_.NextDouble() * 25.0)},
      {"longitude", Value::Double(-124.0 + rng_.NextDouble() * 58.0)},
      {"created_at", Value::String(std::to_string(common::NowMillis()))},
      {"message_text", Value::String(text)},
      {"country", Value::String(kCountries[rng_.Uniform(0, 5)])},
  });
}

TweetGenServer::TweetGenServer(int source_id, Pattern pattern,
                               uint64_t seed)
    : source_id_(source_id),
      pattern_(std::move(pattern)),
      factory_(source_id, seed) {}

TweetGenServer::~TweetGenServer() {
  Stop();
  Join();
}

void TweetGenServer::Start(double time_scale) {
  thread_ = std::thread([this, time_scale] { RunLoop(time_scale); });
}

void TweetGenServer::Stop() { stop_.store(true); }

void TweetGenServer::Join() {
  if (thread_.joinable()) thread_.join();
}

void TweetGenServer::RunLoop(double time_scale) {
  // Pacing: emit in 10ms ticks, carrying fractional tweets across ticks
  // so low rates stay accurate.
  constexpr int64_t kTickMs = 10;
  for (int cycle = 0; cycle < pattern_.repeat && !stop_.load(); ++cycle) {
    for (const Interval& interval : pattern_.intervals) {
      if (stop_.load()) break;
      int64_t duration =
          static_cast<int64_t>(interval.duration_ms * time_scale);
      // The pattern's rate is in the *described* timebase: compressing
      // time raises the physical rate so the workload shape (records per
      // interval) is preserved.
      double tweets_per_tick =
          static_cast<double>(interval.rate_tps) * kTickMs /
          (1000.0 * time_scale);
      common::Stopwatch watch;
      double carry = 0.0;
      while (watch.ElapsedMillis() < duration && !stop_.load()) {
        carry += tweets_per_tick;
        int64_t to_send = static_cast<int64_t>(carry);
        carry -= static_cast<double>(to_send);
        for (int64_t i = 0; i < to_send; ++i) {
          channel_.Send(factory_.NextTweetText());
        }
        // relaxed: stats counter; the records travel via channel_.
        sent_.fetch_add(to_send, std::memory_order_relaxed);
        common::SleepMillis(kTickMs);
      }
    }
  }
  finished_.store(true);
  channel_.CloseSender();
  LOG_MSG(kInfo) << "TweetGen " << source_id_ << " finished after "
                 << sent_.load() << " tweets";
}

}  // namespace gen
}  // namespace asterix
