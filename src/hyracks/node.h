// NodeController: one worker of the (simulated) shared-nothing cluster.
// Hosts tasks, a storage manager, arbitrary node-local services (the feed
// manager registers itself here), and heartbeats its live status to the
// cluster controller.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/thread_annotations.h"
#include "hyracks/task.h"
#include "storage/dataset.h"

namespace asterix {
namespace hyracks {

class NodeController {
 public:
  NodeController(std::string id, std::string storage_dir);
  ~NodeController();

  const std::string& id() const { return id_; }
  bool alive() const { return alive_.load(); }

  storage::StorageManager& storage() { return storage_; }

  /// Registers/looks up a node-local service by name (e.g. the feeds
  /// layer's FeedManager). Lifetime is tied to the node.
  void SetService(const std::string& name, std::shared_ptr<void> service);
  std::shared_ptr<void> GetService(const std::string& name) const;
  /// Atomic get-or-install: returns the existing service or installs the
  /// one produced by `factory`.
  std::shared_ptr<void> GetOrSetService(
      const std::string& name,
      const std::function<std::shared_ptr<void>()>& factory);

  /// Adds a task to this node's roster (called by the scheduler).
  void AdoptTask(std::shared_ptr<Task> task);
  void OnTaskFinished(Task* task);

  /// Tasks currently hosted for `job_id` (empty when none).
  std::vector<std::shared_ptr<Task>> TasksOfJob(JobId job_id) const;
  std::vector<std::shared_ptr<Task>> AllTasks() const;

  /// Simulates process/machine death: stops heartbeating and hard-kills
  /// every hosted task. In-flight data on this node is lost.
  void Kill();

  /// Rejoins the cluster after a Kill (fresh task roster).
  void Restart();

  /// Heartbeat timestamp maintained by this node's heartbeat thread.
  int64_t last_heartbeat_us() const { return last_heartbeat_us_.load(); }

  /// Starts the heartbeat thread with the given period.
  void StartHeartbeats(int64_t period_ms);
  void StopHeartbeats();

 private:
  void HeartbeatLoop(int64_t period_ms);

  const std::string id_;
  std::atomic<bool> alive_{true};
  storage::StorageManager storage_;

  mutable common::Mutex mutex_{common::LockRank::kNodeController};
  std::map<std::string, std::shared_ptr<void>> services_ GUARDED_BY(mutex_);
  std::vector<std::shared_ptr<Task>> tasks_ GUARDED_BY(mutex_);

  std::atomic<int64_t> last_heartbeat_us_{0};
  std::atomic<bool> heartbeats_on_{false};
  std::thread heartbeat_thread_;
};

}  // namespace hyracks
}  // namespace asterix

