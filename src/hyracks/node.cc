#include "common/thread_annotations.h"
#include "hyracks/node.h"

#include <algorithm>

#include "common/failpoint.h"
#include "common/logging.h"

namespace asterix {
namespace hyracks {

NodeController::NodeController(std::string id, std::string storage_dir)
    : id_(std::move(id)), storage_(id_, std::move(storage_dir)) {
  last_heartbeat_us_.store(common::NowMicros());
}

NodeController::~NodeController() {
  StopHeartbeats();
  Kill();
  // Join task threads before members are destroyed.
  std::vector<std::shared_ptr<Task>> tasks;
  {
    common::MutexLock lock(mutex_);
    tasks = tasks_;
  }
  for (auto& task : tasks) task->Join();
}

void NodeController::SetService(const std::string& name,
                                std::shared_ptr<void> service) {
  common::MutexLock lock(mutex_);
  services_[name] = std::move(service);
}

std::shared_ptr<void> NodeController::GetService(
    const std::string& name) const {
  common::MutexLock lock(mutex_);
  auto it = services_.find(name);
  return it == services_.end() ? nullptr : it->second;
}

std::shared_ptr<void> NodeController::GetOrSetService(
    const std::string& name,
    const std::function<std::shared_ptr<void>()>& factory) {
  common::MutexLock lock(mutex_);
  auto it = services_.find(name);
  if (it != services_.end()) return it->second;
  auto service = factory();
  services_[name] = service;
  return service;
}

void NodeController::AdoptTask(std::shared_ptr<Task> task) {
  common::MutexLock lock(mutex_);
  tasks_.push_back(std::move(task));
}

void NodeController::OnTaskFinished(Task*) {
  // Roster pruning is lazy: finished tasks are dropped on the next kill
  // or restart. (Task objects are cheap once their thread has exited.)
}

std::vector<std::shared_ptr<Task>> NodeController::TasksOfJob(
    JobId job_id) const {
  common::MutexLock lock(mutex_);
  std::vector<std::shared_ptr<Task>> out;
  for (const auto& task : tasks_) {
    if (task->job_id() == job_id) out.push_back(task);
  }
  return out;
}

std::vector<std::shared_ptr<Task>> NodeController::AllTasks() const {
  common::MutexLock lock(mutex_);
  return tasks_;
}

void NodeController::Kill() {
  if (!alive_.exchange(false)) return;
  LOG_MSG(kInfo) << "node " << id_ << " killed";
  std::vector<std::shared_ptr<Task>> tasks;
  {
    common::MutexLock lock(mutex_);
    tasks = tasks_;
  }
  for (auto& task : tasks) task->Kill();
}

void NodeController::Restart() {
  {
    common::MutexLock lock(mutex_);
    tasks_.clear();
  }
  alive_.store(true);
  last_heartbeat_us_.store(common::NowMicros());
  LOG_MSG(kInfo) << "node " << id_ << " restarted";
}

void NodeController::StartHeartbeats(int64_t period_ms) {
  if (heartbeats_on_.exchange(true)) return;
  heartbeat_thread_ = std::thread([this, period_ms] {
    HeartbeatLoop(period_ms);
  });
}

void NodeController::StopHeartbeats() {
  heartbeats_on_.store(false);
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
}

void NodeController::HeartbeatLoop(int64_t period_ms) {
  while (heartbeats_on_.load()) {
    // A fired failpoint swallows this beat: the node process is healthy
    // but looks dead to the cluster monitor — the classic gray failure.
    // Arm with OnInstance(node_id) to silence one node.
    if (alive_.load() &&
        !ASTERIX_FAILPOINT_TRIGGERED("hyracks.node.heartbeat", id_)) {
      last_heartbeat_us_.store(common::NowMicros());
    }
    common::SleepMillis(period_ms);
  }
}

}  // namespace hyracks
}  // namespace asterix
