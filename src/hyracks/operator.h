// Operators: the partitioned-parallel computation steps of a Hyracks job.
// Each operator instance (task) is driven push-style: frames arrive via
// ProcessFrame and output flows through the TaskContext's writer.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "hyracks/frame.h"

namespace asterix {
namespace hyracks {

class NodeController;

/// Per-task runtime context handed to operators.
class TaskContext {
 public:
  virtual ~TaskContext() = default;

  /// Identity.
  virtual const std::string& node_id() const = 0;
  virtual int partition() const = 0;
  virtual int partition_count() const = 0;
  virtual int64_t job_id() const = 0;
  virtual const std::string& operator_name() const = 0;

  /// Output path for this task.
  virtual IFrameWriter* writer() = 0;

  /// True once the task has been asked to stop (node death, job abort, or
  /// a feed disconnect). Source operators poll this in their run loop.
  virtual bool ShouldStop() const = 0;

  /// True only for a *graceful* finish request (disconnect): the source
  /// should drain buffered input before returning from Run().
  virtual bool GracefulStopRequested() const = 0;

  /// The hosting node (service lookups: storage manager, feed manager).
  virtual NodeController* node() const = 0;
};

/// Base operator. Implementations must be thread-compatible: one task
/// drives one instance from a single thread.
class Operator {
 public:
  virtual ~Operator() = default;

  [[nodiscard]] virtual common::Status Open(TaskContext* ctx) {
    (void)ctx;
    return common::Status::OK();
  }

  /// Handles one input frame, emitting zero or more output frames.
  [[nodiscard]] virtual common::Status ProcessFrame(const FramePtr& frame,
                                      TaskContext* ctx) = 0;

  /// Clean end-of-input: flush any buffered output. The task closes the
  /// downstream writer afterwards.
  [[nodiscard]] virtual common::Status Close(TaskContext* ctx) {
    (void)ctx;
    return common::Status::OK();
  }

  /// Out-of-band control signal (used by the feed fault-tolerance
  /// protocol to transition instances between alive/buffer/zombie modes).
  /// Unknown signals are ignored.
  virtual void OnSignal(const std::string& signal) { (void)signal; }

  /// True for operators that generate their own input (feed adaptorss);
  /// the task runtime calls Run() instead of pumping an input queue.
  virtual bool is_source() const { return false; }

  /// Source drive loop; must return when ctx->ShouldStop() becomes true.
  [[nodiscard]] virtual common::Status Run(TaskContext* ctx) {
    (void)ctx;
    return common::Status::NotSupported("not a source operator");
  }
};

using OperatorFactory =
    std::function<std::unique_ptr<Operator>(int partition)>;

}  // namespace hyracks
}  // namespace asterix

