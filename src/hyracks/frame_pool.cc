#include "hyracks/frame_pool.h"

#include <new>
#include <utility>

namespace asterix {
namespace hyracks {

// Out-of-line so every translation unit that destroys a FramePtr shares
// this definition (the recycle hook must not be inlined away behind an
// older frame.h).
Frame::~Frame() {
  if (pool_ != nullptr) {
    pool_->RecycleRecords(std::move(records_));
  }
}

FramePool::FramePool(common::MemPool* budget, size_t max_blocks,
                     size_t max_vectors)
    : budget_(budget), blocks_(max_blocks), vectors_(max_vectors) {}

FramePool::~FramePool() {
  // relaxed: block_size_ is a write-once latch; by destruction time no
  // other thread touches the pool.
  const size_t block_bytes = block_size_.load(std::memory_order_relaxed);
  while (std::optional<void*> block = blocks_.TryPop()) {
    if (budget_ != nullptr) budget_->Release(block_bytes);
    ::operator delete(*block);
  }
  while (std::optional<std::vector<adm::Value>> v = vectors_.TryPop()) {
    if (budget_ != nullptr) {
      budget_->Release(v->capacity() * sizeof(adm::Value));
    }
  }
}

FramePool& FramePool::Default() {
  // Leaked: frames retired during static teardown may still recycle into
  // it, and the governor it draws on is leaked for the same reason.
  static FramePool* pool = new FramePool(common::MemGovernor::Default().GetPool(
      common::MemGovernor::kFramePathPool));
  return *pool;
}

std::vector<adm::Value> FramePool::AcquireRecords() {
  if (std::optional<std::vector<adm::Value>> v = vectors_.TryPop()) {
    const int64_t retained =
        static_cast<int64_t>(v->capacity() * sizeof(adm::Value));
    if (budget_ != nullptr) budget_->Release(static_cast<size_t>(retained));
    // relaxed: retained_bytes_ is a gauge conserved by its RMWs and the
    // hit/miss cells are stats counters; the vector itself was handed
    // over by the lock-free queue, which carries the ordering.
    retained_bytes_.fetch_sub(retained, std::memory_order_relaxed);
    vector_hits_.fetch_add(1, std::memory_order_relaxed);
    return std::move(*v);
  }
  // relaxed: stats counter.
  vector_misses_.fetch_add(1, std::memory_order_relaxed);
  return {};
}

void FramePool::RecycleRecords(std::vector<adm::Value>&& records) {
  // Element destructors run here (payload heap — strings, nested values —
  // is NOT retained); the element buffer's capacity survives clear().
  records.clear();
  const size_t retained = records.capacity() * sizeof(adm::Value);
  if (retained == 0) return;
  if (budget_ != nullptr && !budget_->TryReserve(retained).ok()) {
    // Budget refused: degrade gracefully, free instead of retaining.
    // relaxed: stats counter.
    budget_drops_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (vectors_.TryPush(std::move(records))) {
    // relaxed: gauge conserved by its RMWs (see AcquireRecords).
    retained_bytes_.fetch_add(static_cast<int64_t>(retained),
                              std::memory_order_relaxed);
  } else {
    // Free list full; the (consumed) vector already freed its buffer.
    if (budget_ != nullptr) budget_->Release(retained);
  }
}

void* FramePool::AllocateBlock(size_t bytes) {
  size_t expected = 0;
  // relaxed: block_size_ is a write-once size latch — no data hangs off
  // it (blocks travel through the lock-free queue, which orders their
  // payload) and a stale zero only takes the plain-heap miss path.
  block_size_.compare_exchange_strong(expected, bytes,
                                      std::memory_order_relaxed);
  if (bytes == block_size_.load(std::memory_order_relaxed)) {
    if (std::optional<void*> block = blocks_.TryPop()) {
      if (budget_ != nullptr) budget_->Release(bytes);
      // relaxed: conserved gauge + stats counter (see AcquireRecords).
      retained_bytes_.fetch_sub(static_cast<int64_t>(bytes),
                                std::memory_order_relaxed);
      block_hits_.fetch_add(1, std::memory_order_relaxed);
      return *block;
    }
  }
  // relaxed: stats counter.
  block_misses_.fetch_add(1, std::memory_order_relaxed);
  return ::operator new(bytes);
}

void FramePool::DeallocateBlock(void* block, size_t bytes) {
  // relaxed: write-once size latch (see AllocateBlock).
  if (bytes == block_size_.load(std::memory_order_relaxed)) {
    if (budget_ == nullptr || budget_->TryReserve(bytes).ok()) {
      if (blocks_.TryPush(block)) {
        // relaxed: conserved gauge (see AcquireRecords).
        retained_bytes_.fetch_add(static_cast<int64_t>(bytes),
                                  std::memory_order_relaxed);
        return;
      }
      if (budget_ != nullptr) budget_->Release(bytes);
    } else {
      // relaxed: stats counter.
      budget_drops_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  ::operator delete(block);
}

FramePtr FramePool::MakeFrame(std::vector<adm::Value> records) {
  std::shared_ptr<Frame> frame = std::allocate_shared<Frame>(
      BlockAllocator<Frame>(this), std::move(records));
  frame->pool_ = this;
  return frame;
}

FramePtr FramePool::MakeFrame(std::vector<adm::Value> records,
                              size_t approx_bytes) {
  std::shared_ptr<Frame> frame = std::allocate_shared<Frame>(
      BlockAllocator<Frame>(this), std::move(records), approx_bytes);
  frame->pool_ = this;
  return frame;
}

FramePtr FramePool::MakeFrame(std::vector<adm::Value> records,
                              TraceContext trace) {
  std::shared_ptr<Frame> frame = std::allocate_shared<Frame>(
      BlockAllocator<Frame>(this), std::move(records), trace);
  frame->pool_ = this;
  return frame;
}

FramePtr FramePool::MakeFrame(std::vector<adm::Value> records,
                              size_t approx_bytes, TraceContext trace) {
  std::shared_ptr<Frame> frame = std::allocate_shared<Frame>(
      BlockAllocator<Frame>(this), std::move(records), approx_bytes, trace);
  frame->pool_ = this;
  return frame;
}

common::Status FrameAppender::FlushFrame() {
  if (pending_.empty()) return common::Status::OK();
  FramePtr frame;
  if (pool_ != nullptr) {
    frame = pool_->MakeFrame(std::move(pending_), pending_bytes_,
                             pending_trace_);
    // Steady state: the vector this frame's predecessor recycled.
    pending_ = pool_->AcquireRecords();
  } else {
    frame = hyracks::MakeFrame(std::move(pending_), pending_bytes_,
                               pending_trace_);
    pending_.clear();
  }
  pending_bytes_ = 0;
  pending_trace_ = TraceContext{};
  return writer_->NextFrame(frame);
}

}  // namespace hyracks
}  // namespace asterix
