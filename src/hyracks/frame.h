// Frames: the unit of data movement between operators. As in Hyracks, data
// flows in fixed-size chunks of records; a frame is immutable once emitted
// so that a feed joint can route one frame along many paths without copies.
#ifndef ASTERIX_HYRACKS_FRAME_H_
#define ASTERIX_HYRACKS_FRAME_H_

#include <memory>
#include <vector>

#include "adm/value.h"
#include "common/status.h"

namespace asterix {
namespace hyracks {

/// A batch of ADM records. Immutable after construction (shared between
/// subscribers of a feed joint via shared_ptr).
class Frame {
 public:
  Frame() = default;
  explicit Frame(std::vector<adm::Value> records)
      : records_(std::move(records)) {
    for (const auto& r : records_) approx_bytes_ += r.ApproxSizeBytes();
  }
  /// Constructor for producers that already know the payload size (e.g.
  /// FrameAppender tracks a running byte count), skipping the walk.
  Frame(std::vector<adm::Value> records, size_t approx_bytes)
      : records_(std::move(records)), approx_bytes_(approx_bytes) {}

  const std::vector<adm::Value>& records() const { return records_; }
  size_t record_count() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// Approximate payload bytes (memory budgeting for policies). Computed
  /// once at construction — frames are immutable — so per-frame policy and
  /// budget checks don't re-walk every record.
  size_t ApproxBytes() const { return approx_bytes_; }

 private:
  std::vector<adm::Value> records_;
  size_t approx_bytes_ = 0;
};

using FramePtr = std::shared_ptr<const Frame>;

inline FramePtr MakeFrame(std::vector<adm::Value> records) {
  return std::make_shared<const Frame>(std::move(records));
}

inline FramePtr MakeFrame(std::vector<adm::Value> records,
                          size_t approx_bytes) {
  return std::make_shared<const Frame>(std::move(records), approx_bytes);
}

/// Control-or-data message travelling between operator instances.
struct FrameMessage {
  enum class Kind {
    kData,  // carries a frame
    kEos,   // producer finished cleanly (close() in the paper)
    kFail,  // producer failed; non-resumable in a plain Hyracks job
  };
  Kind kind = Kind::kData;
  FramePtr frame;

  static FrameMessage Data(FramePtr f) {
    return {Kind::kData, std::move(f)};
  }
  static FrameMessage Eos() { return {Kind::kEos, nullptr}; }
  static FrameMessage Fail() { return {Kind::kFail, nullptr}; }
};

/// The paper's IFrameWriter: the handle an operator uses to push output
/// frames downstream, agnostic of what sits behind it (a connector, a feed
/// joint, a test sink, ...).
class IFrameWriter {
 public:
  virtual ~IFrameWriter() = default;
  virtual common::Status Open() { return common::Status::OK(); }
  virtual common::Status NextFrame(const FramePtr& frame) = 0;
  /// Signals abnormal termination of the producing operator.
  virtual void Fail() {}
  /// Signals clean end-of-data.
  virtual common::Status Close() { return common::Status::OK(); }
};

/// Accumulates records and emits full frames to a writer. Frame capacity
/// is both a record-count and byte bound, whichever trips first.
class FrameAppender {
 public:
  FrameAppender(IFrameWriter* writer, size_t max_records = 128,
                size_t max_bytes = 32 * 1024)
      : writer_(writer), max_records_(max_records), max_bytes_(max_bytes) {}

  common::Status Append(adm::Value record) {
    pending_.push_back(std::move(record));
    pending_bytes_ += pending_.back().ApproxSizeBytes();
    if (pending_.size() >= max_records_ || pending_bytes_ >= max_bytes_) {
      return FlushFrame();
    }
    return common::Status::OK();
  }

  /// Emits any buffered records as a final (possibly short) frame.
  common::Status FlushFrame() {
    if (pending_.empty()) return common::Status::OK();
    FramePtr frame = MakeFrame(std::move(pending_), pending_bytes_);
    pending_.clear();
    pending_bytes_ = 0;
    return writer_->NextFrame(frame);
  }

 private:
  IFrameWriter* writer_;
  const size_t max_records_;
  const size_t max_bytes_;
  std::vector<adm::Value> pending_;
  size_t pending_bytes_ = 0;
};

}  // namespace hyracks
}  // namespace asterix

#endif  // ASTERIX_HYRACKS_FRAME_H_
