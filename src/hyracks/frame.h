// Frames: the unit of data movement between operators. As in Hyracks, data
// flows in fixed-size chunks of records; a frame is immutable once emitted
// so that a feed joint can route one frame along many paths without copies.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "adm/value.h"
#include "common/status.h"

namespace asterix {
namespace hyracks {

class FramePool;  // frame_pool.h: recycles frame blocks + record buffers

/// Trace identity carried by a frame through the cascade. id == 0 means
/// "not sampled" — every tracing hook guards on that before doing any
/// work, so an untraced frame costs a plain member read per hook.
/// Stamped at the source (or at intake for frames arriving untraced) and
/// propagated by operators that re-batch records into new frames.
struct TraceContext {
  uint64_t id = 0;
  int64_t start_us = 0;  // steady-clock micros at trace birth

  bool sampled() const { return id != 0; }
};

/// A batch of ADM records. Immutable after construction (shared between
/// subscribers of a feed joint via shared_ptr).
class Frame {
 public:
  Frame() = default;
  explicit Frame(std::vector<adm::Value> records)
      : records_(std::move(records)) {
    for (const auto& r : records_) approx_bytes_ += r.ApproxSizeBytes();
  }
  /// Constructor for producers that already know the payload size (e.g.
  /// FrameAppender tracks a running byte count), skipping the walk.
  Frame(std::vector<adm::Value> records, size_t approx_bytes)
      : records_(std::move(records)), approx_bytes_(approx_bytes) {}
  Frame(std::vector<adm::Value> records, size_t approx_bytes,
        TraceContext trace)
      : records_(std::move(records)),
        approx_bytes_(approx_bytes),
        trace_(trace) {}
  Frame(std::vector<adm::Value> records, TraceContext trace)
      : Frame(std::move(records)) {
    trace_ = trace;
  }
  Frame(const Frame&) = default;
  Frame& operator=(const Frame&) = default;
  /// Out-of-line (frame_pool.cc): a pooled frame hands its record buffer
  /// back to its FramePool when the last subscriber releases it.
  ~Frame();

  const std::vector<adm::Value>& records() const { return records_; }
  size_t record_count() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// Approximate payload bytes (memory budgeting for policies). Computed
  /// once at construction — frames are immutable — so per-frame policy and
  /// budget checks don't re-walk every record.
  size_t ApproxBytes() const { return approx_bytes_; }

  const TraceContext& trace() const { return trace_; }

 private:
  friend class FramePool;  // sets pool_ at pooled construction
  std::vector<adm::Value> records_;
  size_t approx_bytes_ = 0;
  TraceContext trace_;
  /// Owning pool for recycled frames; null for plain MakeFrame frames.
  FramePool* pool_ = nullptr;
};

using FramePtr = std::shared_ptr<const Frame>;

inline FramePtr MakeFrame(std::vector<adm::Value> records) {
  return std::make_shared<const Frame>(std::move(records));
}

inline FramePtr MakeFrame(std::vector<adm::Value> records,
                          size_t approx_bytes) {
  return std::make_shared<const Frame>(std::move(records), approx_bytes);
}

inline FramePtr MakeFrame(std::vector<adm::Value> records,
                          TraceContext trace) {
  return std::make_shared<const Frame>(std::move(records), trace);
}

inline FramePtr MakeFrame(std::vector<adm::Value> records, size_t approx_bytes,
                          TraceContext trace) {
  return std::make_shared<const Frame>(std::move(records), approx_bytes,
                                       trace);
}

/// Control-or-data message travelling between operator instances.
struct FrameMessage {
  enum class Kind {
    kData,  // carries a frame
    kEos,   // producer finished cleanly (close() in the paper)
    kFail,  // producer failed; non-resumable in a plain Hyracks job
  };
  Kind kind = Kind::kData;
  FramePtr frame;

  static FrameMessage Data(FramePtr f) {
    return {Kind::kData, std::move(f)};
  }
  static FrameMessage Eos() { return {Kind::kEos, nullptr}; }
  static FrameMessage Fail() { return {Kind::kFail, nullptr}; }
};

/// The paper's IFrameWriter: the handle an operator uses to push output
/// frames downstream, agnostic of what sits behind it (a connector, a feed
/// joint, a test sink, ...).
class IFrameWriter {
 public:
  virtual ~IFrameWriter() = default;
  [[nodiscard]] virtual common::Status Open() { return common::Status::OK(); }
  [[nodiscard]] virtual common::Status NextFrame(const FramePtr& frame) = 0;
  /// Signals abnormal termination of the producing operator.
  virtual void Fail() {}
  /// Signals clean end-of-data.
  [[nodiscard]] virtual common::Status Close() { return common::Status::OK(); }
};

/// Accumulates records and emits full frames to a writer. Frame capacity
/// is both a record-count and byte bound, whichever trips first.
///
/// With a FramePool the appender emits pooled frames and rebuilds each
/// new frame in a recycled record buffer: the warm steady state performs
/// no heap allocation per frame (see frame_pool.h).
class FrameAppender {
 public:
  FrameAppender(IFrameWriter* writer, size_t max_records = 128,
                size_t max_bytes = 32 * 1024, FramePool* pool = nullptr)
      : writer_(writer),
        max_records_(max_records),
        max_bytes_(max_bytes),
        pool_(pool) {}

  [[nodiscard]] common::Status Append(adm::Value record) {
    if (pending_.empty()) {
      // A new frame is born with this record: stamp its trace identity.
      pending_trace_ = trace_source_ ? trace_source_() : fixed_trace_;
    }
    pending_.push_back(std::move(record));
    pending_bytes_ += pending_.back().ApproxSizeBytes();
    if (pending_.size() >= max_records_ || pending_bytes_ >= max_bytes_) {
      return FlushFrame();
    }
    return common::Status::OK();
  }

  /// Emits any buffered records as a final (possibly short) frame.
  /// Out-of-line (frame_pool.cc): the pooled path recycles buffers.
  [[nodiscard]] common::Status FlushFrame();

  /// All emitted frames inherit this trace (operators that re-batch an
  /// input frame's records propagate the input trace this way).
  void SetTrace(TraceContext trace) {
    fixed_trace_ = trace;
    trace_source_ = nullptr;
  }

  /// Called once per emitted frame, when its first record is appended
  /// (sources that mint a fresh trace per frame).
  void SetTraceSource(std::function<TraceContext()> source) {
    trace_source_ = std::move(source);
  }

 private:
  IFrameWriter* writer_;
  const size_t max_records_;
  const size_t max_bytes_;
  FramePool* pool_;
  std::vector<adm::Value> pending_;
  size_t pending_bytes_ = 0;
  TraceContext pending_trace_;
  TraceContext fixed_trace_;
  std::function<TraceContext()> trace_source_;
};

}  // namespace hyracks
}  // namespace asterix

