// Reusable built-in operators. Operators stay simple and generic — data
// concerns separate from fault-tolerance concerns (the MetaFeed wrapper in
// the feeds layer adds the latter).
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "hyracks/node.h"
#include "hyracks/operator.h"

namespace asterix {
namespace hyracks {

/// Applies a per-record function; null results are dropped. The function
/// may throw — a plain Hyracks job then fails (non-resumable semantics);
/// inside a feed pipeline the MetaFeed wrapper sandboxes the throw.
class MapOperator : public Operator {
 public:
  /// Returns the transformed record, or nullopt to filter it out.
  using Fn = std::function<std::optional<adm::Value>(const adm::Value&)>;

  explicit MapOperator(Fn fn, size_t frame_records = 128)
      : fn_(std::move(fn)), frame_records_(frame_records) {}

  [[nodiscard]] common::Status ProcessFrame(const FramePtr& frame,
                              TaskContext* ctx) override {
    FrameAppender appender(ctx->writer(), frame_records_);
    for (const adm::Value& record : frame->records()) {
      auto out = fn_(record);
      if (out.has_value()) {
        RETURN_IF_ERROR(appender.Append(std::move(*out)));
      }
    }
    return appender.FlushFrame();
  }

 private:
  Fn fn_;
  const size_t frame_records_;
};

/// Inserts each record into this node's partition of `dataset` (primary
/// index + co-located secondary indexes). The paper's IndexInsert.
class IndexInsertOperator : public Operator {
 public:
  using InsertHook = std::function<void(const adm::Value&)>;

  explicit IndexInsertOperator(std::string dataset,
                               InsertHook on_insert = nullptr)
      : dataset_(std::move(dataset)), on_insert_(std::move(on_insert)) {}

  [[nodiscard]] common::Status Open(TaskContext* ctx) override {
    partition_ = ctx->node()->storage().GetPartition(dataset_);
    if (partition_ == nullptr) {
      return common::Status::NotFound(
          "node " + ctx->node_id() + " hosts no partition of dataset '" +
          dataset_ + "'");
    }
    return common::Status::OK();
  }

  [[nodiscard]] common::Status ProcessFrame(const FramePtr& frame,
                              TaskContext* ctx) override {
    (void)ctx;
    for (const adm::Value& record : frame->records()) {
      RETURN_IF_ERROR(partition_->Insert(record));
      if (on_insert_) on_insert_(record);
    }
    return common::Status::OK();
  }

 private:
  const std::string dataset_;
  InsertHook on_insert_;
  storage::DatasetPartition* partition_ = nullptr;
};

/// Collects records into a shared, lock-guarded vector (tests).
class CollectSinkOperator : public Operator {
 public:
  struct Shared {
    common::Mutex mutex{common::LockRank::kCollectSink};
    std::vector<adm::Value> records GUARDED_BY(mutex);

    size_t size() {
      common::MutexLock lock(mutex);
      return records.size();
    }
    std::vector<adm::Value> Snapshot() {
      common::MutexLock lock(mutex);
      return records;
    }
  };

  explicit CollectSinkOperator(std::shared_ptr<Shared> shared)
      : shared_(std::move(shared)) {}

  [[nodiscard]] common::Status ProcessFrame(const FramePtr& frame,
                              TaskContext* ctx) override {
    (void)ctx;
    common::MutexLock lock(shared_->mutex);
    for (const adm::Value& record : frame->records()) {
      shared_->records.push_back(record);
    }
    return common::Status::OK();
  }

 private:
  std::shared_ptr<Shared> shared_;
};

/// Emits a fixed vector of records then finishes (batch-insert source).
class VectorSourceOperator : public Operator {
 public:
  explicit VectorSourceOperator(std::vector<adm::Value> records,
                                size_t frame_records = 128)
      : records_(std::move(records)), frame_records_(frame_records) {}

  bool is_source() const override { return true; }

  [[nodiscard]] common::Status Run(TaskContext* ctx) override {
    FrameAppender appender(ctx->writer(), frame_records_);
    for (adm::Value& record : records_) {
      if (ctx->ShouldStop()) break;
      RETURN_IF_ERROR(appender.Append(std::move(record)));
    }
    return appender.FlushFrame();
  }

  [[nodiscard]] common::Status ProcessFrame(const FramePtr&, TaskContext*) override {
    return common::Status::NotSupported("source operator");
  }

 private:
  std::vector<adm::Value> records_;
  const size_t frame_records_;
};

/// The paper's NullSink: consumes and discards frames.
class NullSinkOperator : public Operator {
 public:
  [[nodiscard]] common::Status ProcessFrame(const FramePtr&, TaskContext*) override {
    return common::Status::OK();
  }
};

}  // namespace hyracks
}  // namespace asterix

