#include "common/thread_annotations.h"
#include "hyracks/cluster.h"

#include <algorithm>

#include "common/clock.h"
#include "common/failpoint.h"
#include "common/logging.h"

namespace asterix {
namespace hyracks {

using common::Result;
using common::Status;

std::vector<std::shared_ptr<Task>> JobHandle::TasksOfOperator(
    const std::string& op_name) const {
  for (size_t i = 0; i < spec_.operators.size(); ++i) {
    if (spec_.operators[i].name == op_name) return tasks_[i];
  }
  return {};
}

bool JobHandle::Finished() const {
  for (const auto& group : tasks_) {
    for (const auto& task : group) {
      if (!task->finished()) return false;
    }
  }
  return true;
}

bool JobHandle::Wait(int64_t timeout_ms) const {
  common::Stopwatch watch;
  while (!Finished()) {
    if (timeout_ms >= 0 && watch.ElapsedMillis() >= timeout_ms) {
      return false;
    }
    common::SleepMillis(2);
  }
  return true;
}

void JobHandle::FinishSources() {
  for (size_t i = 0; i < spec_.operators.size(); ++i) {
    for (const auto& task : tasks_[i]) {
      if (task->op()->is_source()) task->RequestFinish();
    }
  }
}

void JobHandle::Abort() {
  for (const auto& group : tasks_) {
    for (const auto& task : group) task->Kill();
  }
}

void JobHandle::JoinTasks() {
  for (const auto& group : tasks_) {
    for (const auto& task : group) task->Join();
  }
}

ClusterController::ClusterController(ClusterOptions options)
    : options_(std::move(options)) {}

ClusterController::~ClusterController() {
  Stop();
  // Abort all jobs so task threads exit before nodes are torn down.
  std::map<JobId, std::shared_ptr<JobHandle>> jobs;
  {
    common::MutexLock lock(mutex_);
    jobs = jobs_;
  }
  for (auto& [id, job] : jobs) job->Abort();
  // Join the task threads, not just signal them: Task objects may be
  // kept alive past this destructor by feed-layer references, and their
  // threads read NodeController state owned by nodes_ below.
  for (auto& [id, job] : jobs) job->JoinTasks();
}

NodeController* ClusterController::AddNode(const std::string& node_id) {
  common::MutexLock lock(mutex_);
  auto node = std::make_unique<NodeController>(
      node_id, options_.storage_root + "/" + node_id);
  NodeController* ptr = node.get();
  nodes_.emplace(node_id, std::move(node));
  ptr->StartHeartbeats(options_.heartbeat_period_ms);
  return ptr;
}

NodeController* ClusterController::GetNode(
    const std::string& node_id) const {
  common::MutexLock lock(mutex_);
  auto it = nodes_.find(node_id);
  return it == nodes_.end() ? nullptr : it->second.get();
}

std::vector<NodeController*> ClusterController::AliveNodes() const {
  common::MutexLock lock(mutex_);
  std::vector<NodeController*> out;
  for (const auto& [id, node] : nodes_) {
    if (node->alive()) out.push_back(node.get());
  }
  return out;
}

std::vector<std::string> ClusterController::AliveNodeIds() const {
  std::vector<std::string> out;
  for (NodeController* node : AliveNodes()) out.push_back(node->id());
  return out;
}

void ClusterController::KillNode(const std::string& node_id) {
  NodeController* node = GetNode(node_id);
  if (node != nullptr) node->Kill();
}

void ClusterController::RestartNode(const std::string& node_id) {
  NodeController* node = GetNode(node_id);
  if (node == nullptr) return;
  node->Restart();
  std::vector<ClusterListener*> listeners;
  {
    common::MutexLock lock(mutex_);
    known_failed_.erase(node_id);
    listeners = listeners_;
  }
  for (ClusterListener* l : listeners) {
    l->OnClusterEvent({ClusterEvent::Kind::kNodeJoined, node_id});
  }
}

void ClusterController::Subscribe(ClusterListener* listener) {
  common::MutexLock lock(mutex_);
  listeners_.push_back(listener);
}

void ClusterController::Unsubscribe(ClusterListener* listener) {
  common::MutexLock lock(mutex_);
  listeners_.erase(
      std::remove(listeners_.begin(), listeners_.end(), listener),
      listeners_.end());
}

Result<std::shared_ptr<JobHandle>> ClusterController::StartJob(
    JobSpec spec) {
  // 1. Resolve placement for each operator.
  std::vector<std::string> alive = AliveNodeIds();
  if (alive.empty()) {
    return Status::Unavailable("no alive nodes to schedule on");
  }
  std::vector<std::vector<std::string>> placements;
  size_t rr = 0;
  for (const OperatorDescriptor& op : spec.operators) {
    std::vector<std::string> locations;
    if (!op.constraint.locations.empty()) {
      for (const std::string& loc : op.constraint.locations) {
        NodeController* node = GetNode(loc);
        if (node == nullptr || !node->alive()) {
          return Status::Unavailable("location constraint on dead node " +
                                     loc + " for operator " + op.name);
        }
        locations.push_back(loc);
      }
    } else {
      for (int i = 0; i < op.constraint.count; ++i) {
        locations.push_back(alive[rr++ % alive.size()]);
      }
    }
    placements.push_back(std::move(locations));
  }

  JobId job_id = next_job_id_.fetch_add(1);
  auto handle = std::make_shared<JobHandle>(job_id, spec);
  const JobSpec& jspec = handle->spec();

  // 2. Instantiate tasks.
  handle->tasks_.resize(jspec.operators.size());
  for (size_t i = 0; i < jspec.operators.size(); ++i) {
    const OperatorDescriptor& op = jspec.operators[i];
    int count = static_cast<int>(placements[i].size());
    for (int p = 0; p < count; ++p) {
      NodeController* node = GetNode(placements[i][p]);
      auto task = std::make_shared<Task>(job_id, op.name, p, count, node,
                                         op.factory(p),
                                         jspec.task_queue_capacity);
      node->AdoptTask(task);
      handle->tasks_[i].push_back(std::move(task));
    }
  }

  // 3. Wire connectors and compute expected-producer counts.
  std::vector<int> expected(jspec.operators.size() * 1024, 0);
  auto expected_at = [&](size_t op_index, int partition) -> int& {
    return expected[op_index * 1024 + partition];
  };
  std::vector<std::vector<std::shared_ptr<IFrameWriter>>> writers_per_op(
      jspec.operators.size());
  for (size_t i = 0; i < jspec.operators.size(); ++i) {
    writers_per_op[i].resize(handle->tasks_[i].size());
  }
  for (const JobSpec::Edge& edge : jspec.edges) {
    auto& producers = handle->tasks_[edge.from];
    auto& consumers = handle->tasks_[edge.to];
    int consumer_count = static_cast<int>(consumers.size());
    for (size_t p = 0; p < producers.size(); ++p) {
      auto router = std::make_shared<Router>(
          edge.connector, static_cast<int>(p), consumers);
      auto& slot = writers_per_op[edge.from][p];
      if (slot == nullptr) {
        slot = router;
      } else {
        // Multiple out-edges: broadcast.
        auto broadcast = std::make_shared<BroadcastWriter>(
            std::vector<std::shared_ptr<IFrameWriter>>{slot, router});
        slot = broadcast;
      }
      // Producer p contributes EOS to which consumers?
      if (edge.connector.kind == ConnectorKind::kOneToOne) {
        ++expected_at(edge.to, static_cast<int>(p) % consumer_count);
      } else {
        for (int c = 0; c < consumer_count; ++c) {
          ++expected_at(edge.to, c);
        }
      }
    }
  }

  // 4. Attach outputs (with joint interception) and producer counts.
  for (size_t i = 0; i < jspec.operators.size(); ++i) {
    const OperatorDescriptor& op = jspec.operators[i];
    for (size_t p = 0; p < handle->tasks_[i].size(); ++p) {
      auto& task = handle->tasks_[i][p];
      task->SetExpectedProducers(expected_at(i, static_cast<int>(p)));
      std::shared_ptr<IFrameWriter> out = writers_per_op[i][p];
      if (out == nullptr) out = std::make_shared<NullWriter>();
      if (!op.joint_id.empty() && jspec.output_interceptor) {
        out = jspec.output_interceptor(op.joint_id, out, task.get());
      }
      task->SetOutput(std::move(out));
    }
  }

  // 5. Register and start.
  {
    common::MutexLock lock(mutex_);
    jobs_[job_id] = handle;
  }
  for (auto& group : handle->tasks_) {
    for (auto& task : group) task->Start();
  }

  std::vector<ClusterListener*> listeners;
  {
    common::MutexLock lock(mutex_);
    listeners = listeners_;
  }
  for (ClusterListener* l : listeners) {
    l->OnJobEvent(
        {JobEvent::Kind::kStarted, job_id, jspec.name, ""});
  }
  LOG_MSG(kInfo) << "started job " << job_id << " (" << jspec.name << ")";
  return handle;
}

std::shared_ptr<JobHandle> ClusterController::GetJob(JobId id) const {
  common::MutexLock lock(mutex_);
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second;
}

void ClusterController::ForgetJob(JobId id) {
  common::MutexLock lock(mutex_);
  jobs_.erase(id);
}

void ClusterController::Start() {
  if (running_.exchange(true)) return;
  monitor_thread_ = std::thread([this] { MonitorLoop(); });
}

void ClusterController::Stop() {
  if (!running_.exchange(false)) return;
  if (monitor_thread_.joinable()) monitor_thread_.join();
}

void ClusterController::MonitorLoop() {
  while (running_.load()) {
    // Delay action = a slow failure detector (longer gray-failure
    // windows before substitution kicks in).
    ASTERIX_FAILPOINT_HIT("hyracks.cluster.monitor");
    int64_t now = common::NowMicros();
    std::vector<std::string> failed;
    {
      common::MutexLock lock(mutex_);
      for (const auto& [id, node] : nodes_) {
        bool stale = (now - node->last_heartbeat_us()) >
                     options_.heartbeat_timeout_ms * 1000;
        if (stale && !known_failed_[id]) {
          known_failed_[id] = true;
          failed.push_back(id);
        }
      }
    }
    for (const std::string& node_id : failed) {
      HandleNodeFailure(node_id);
    }
    ReapFailedJobs();
    common::SleepMillis(options_.monitor_period_ms);
  }
}

void ClusterController::ReapFailedJobs() {
  // A task that fails on its own (operator error — not a kill and not a
  // node death, which finish with an Aborted status and are the feed
  // recovery protocol's business) makes the rest of the job undeliverable.
  // Finite jobs then drain and finish naturally, but a job with a live
  // source would pump into the dead stage forever: abort it so the job
  // reaches a terminal state its owner can observe.
  std::vector<std::shared_ptr<JobHandle>> jobs;
  {
    common::MutexLock lock(mutex_);
    for (const auto& [id, job] : jobs_) jobs.push_back(job);
  }
  for (const auto& job : jobs) {
    if (job->Finished()) continue;
    bool task_failed = false;
    for (const auto& group : job->tasks()) {
      for (const auto& task : group) {
        if (task->finished() && !task->final_status().ok() &&
            !task->final_status().IsAborted()) {
          task_failed = true;
          break;
        }
      }
      if (task_failed) break;
    }
    if (!task_failed) continue;
    LOG_MSG(kWarn) << "aborting job " << job->id() << " ("
                   << job->spec().name << ") after task failure";
    job->Abort();
  }
}

void ClusterController::HandleNodeFailure(const std::string& node_id) {
  // Delay widens the window between detection and recovery, letting
  // tests race ingestion against the rebuild protocol.
  ASTERIX_FAILPOINT_HIT("hyracks.cluster.handle_failure");
  LOG_MSG(kWarn) << "cluster controller: node " << node_id << " failed";
  std::vector<ClusterListener*> listeners;
  std::vector<std::shared_ptr<JobHandle>> jobs;
  {
    common::MutexLock lock(mutex_);
    listeners = listeners_;
    for (const auto& [id, job] : jobs_) jobs.push_back(job);
  }
  for (ClusterListener* l : listeners) {
    l->OnClusterEvent({ClusterEvent::Kind::kNodeFailed, node_id});
  }
  // Notify / abort jobs with tasks on the failed node.
  for (const auto& job : jobs) {
    bool affected = false;
    for (const auto& group : job->tasks()) {
      for (const auto& task : group) {
        if (task->node_id() == node_id) {
          affected = true;
          break;
        }
      }
      if (affected) break;
    }
    if (!affected) continue;
    for (ClusterListener* l : listeners) {
      l->OnJobEvent({JobEvent::Kind::kNodeLost, job->id(),
                     job->spec().name, node_id});
    }
    if (job->spec().failure_policy == NodeFailurePolicy::kAbortJob) {
      LOG_MSG(kWarn) << "aborting job " << job->id()
                     << " after loss of node " << node_id;
      job->Abort();
    }
  }
}

}  // namespace hyracks
}  // namespace asterix
