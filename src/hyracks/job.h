// Job specifications: a DAG of operator descriptors and connector
// descriptors, with count/location constraints determining the degree and
// placement of parallelism — the "tools at hand" for the feed pipeline
// builder.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adm/value.h"
#include "hyracks/operator.h"

namespace asterix {
namespace hyracks {

using JobId = int64_t;

/// Placement constraints for an operator's instances.
struct PartitionConstraint {
  /// Exact node placements. When set, instance i runs on locations[i].
  std::vector<std::string> locations;
  /// When locations is empty: number of instances, scheduled round-robin
  /// over alive nodes.
  int count = 1;

  int InstanceCount() const {
    return locations.empty() ? count : static_cast<int>(locations.size());
  }
};

/// What to do with frames produced by the last operator of a partition
/// when it has no out-edge: nothing (NullSink semantics).
enum class ConnectorKind {
  kOneToOne,     // partition i -> partition i
  kMToNHash,     // route each record by hash of extracted key
  kMToNRandom,   // scatter frames round-robin
};

struct ConnectorDescriptor {
  ConnectorKind kind = ConnectorKind::kOneToOne;
  /// For kMToNHash: extracts the partitioning key from a record.
  std::function<std::string(const adm::Value&)> key_extractor;
};

struct OperatorDescriptor {
  std::string name;  // e.g. "feed_collect", "assign", "index_insert"
  PartitionConstraint constraint;
  OperatorFactory factory;
  /// Identifier of a feed joint to interpose at this operator's output
  /// ("" = none). The joint is created and registered with the node-local
  /// feed manager by the interceptor below.
  std::string joint_id;
};

/// Hook letting the feeds layer interpose a writer (the feed joint)
/// between a task and its in-job downstream router. Receives the joint id,
/// the in-job downstream writer (may be null for terminal operators) and
/// the task context; returns the writer the task should emit into.
using OutputInterceptor = std::function<std::shared_ptr<IFrameWriter>(
    const std::string& joint_id, std::shared_ptr<IFrameWriter> downstream,
    TaskContext* ctx)>;

/// Behaviour when a node hosting one of the job's tasks is lost.
enum class NodeFailurePolicy {
  kAbortJob,    // plain Hyracks semantics: the job fails
  kNotifyOnly,  // feed semantics: keep the job; notify subscribers
};

struct JobSpec {
  std::string name;
  std::vector<OperatorDescriptor> operators;
  /// edges[i] connects operators[edge.from] -> operators[edge.to].
  struct Edge {
    int from;
    int to;
    ConnectorDescriptor connector;
  };
  std::vector<Edge> edges;
  NodeFailurePolicy failure_policy = NodeFailurePolicy::kAbortJob;
  /// Interceptor for operators that declare a joint_id.
  OutputInterceptor output_interceptor;
  /// Input queue capacity (frames) per task: the back-pressure bound.
  size_t task_queue_capacity = 64;

  int AddOperator(OperatorDescriptor op) {
    operators.push_back(std::move(op));
    return static_cast<int>(operators.size()) - 1;
  }
  void Connect(int from, int to, ConnectorDescriptor connector) {
    edges.push_back({from, to, std::move(connector)});
  }
};

}  // namespace hyracks
}  // namespace asterix

