// Tasks: the runtime clones of an operator, one per partition, each driven
// by its own thread pumping a bounded input queue. The bounded queue is
// the engine's back-pressure mechanism.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mpmc_queue.h"
#include "common/status.h"
#include "hyracks/job.h"
#include "hyracks/operator.h"

namespace asterix {
namespace hyracks {

class NodeController;

/// One running operator instance.
class Task : public TaskContext,
             public std::enable_shared_from_this<Task> {
 public:
  Task(JobId job_id, std::string op_name, int partition,
       int partition_count, NodeController* node,
       std::unique_ptr<Operator> op, size_t queue_capacity);
  ~Task() override;

  // --- TaskContext ---
  const std::string& node_id() const override;
  int partition() const override { return partition_; }
  int partition_count() const override { return partition_count_; }
  int64_t job_id() const override { return job_id_; }
  const std::string& operator_name() const override { return op_name_; }
  IFrameWriter* writer() override { return output_.get(); }
  bool ShouldStop() const override;
  bool GracefulStopRequested() const override {
    return finish_requested_.load() && !killed_.load();
  }
  NodeController* node() const override { return node_; }

  // --- wiring (before Start) ---
  void SetOutput(std::shared_ptr<IFrameWriter> output) {
    output_ = std::move(output);
  }
  void SetExpectedProducers(int n) { expected_producers_ = n; }

  // --- lifecycle ---
  void Start();
  /// Hard abort: the task thread exits without closing downstream
  /// (models process death / job abort).
  void Kill();
  /// Graceful finish for source operators: the run loop returns, buffered
  /// output is flushed and EOS propagates downstream.
  void RequestFinish();
  /// Kills the task and returns the input frames it never processed — the
  /// "runtime state" a zombie instance saves with its local Feed Manager
  /// in the fault-tolerance protocol (§6.2.2). Blocks until the task
  /// thread has exited.
  std::vector<FrameMessage> FreezeAndDrain();
  void Join();
  bool finished() const { return finished_.load(); }
  const common::Status& final_status() const { return final_status_; }

  /// Delivers an input message from an upstream router. Blocks on a full
  /// queue (back-pressure); returns false if the task is dead/killed.
  bool Enqueue(FrameMessage msg);

  /// Forwards an out-of-band control signal to the operator.
  void Signal(const std::string& signal);

  /// Current input queue depth (congestion monitoring).
  // Frames accepted but not yet processed: still queued, plus the tail of
  // the batch the pump thread has popped but not consumed.
  size_t queue_depth() const {
    // relaxed: congestion gauge; a point-in-time monitoring read.
    return input_.size() + batch_pending_.load(std::memory_order_relaxed);
  }
  size_t queue_capacity() const { return input_.capacity(); }

  Operator* op() { return op_.get(); }
  bool finish_requested() const { return finish_requested_.load(); }

 private:
  void ThreadMain();
  /// The single pump drain: blocks until input is available (or the
  /// queue closes), drains everything queued into `*batch` (cleared
  /// first, capacity reused across wakeups — the pump's zero-alloc
  /// steady state), and accounts exactly one wakeup + batch-size frames
  /// in the pump metrics — every drain path goes through here so
  /// queue-depth and wakeup counters agree. False when the queue is
  /// closed and drained.
  bool PumpBatch(std::vector<FrameMessage>* batch);

  const JobId job_id_;
  const std::string op_name_;
  const int partition_;
  const int partition_count_;
  NodeController* node_;
  std::unique_ptr<Operator> op_;
  // Lock-free input ring: producers (routers) and the pump thread meet
  // here without a mutex. The old BlockingQueue seam's kTaskQueue rank is
  // retired on this path — the ring has nothing to rank (see
  // common/mpmc_queue.h "Rank exemption").
  common::MpmcQueue<FrameMessage> input_;
  // Unprocessed tail of the in-flight pop batch when the task is killed
  // mid-batch. Written only by the task thread; read by FreezeAndDrain
  // after Join() (the join is the synchronization point).
  std::vector<FrameMessage> residual_;
  std::atomic<size_t> batch_pending_{0};
  std::shared_ptr<IFrameWriter> output_;
  int expected_producers_ = 0;

  std::thread thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> killed_{false};
  std::atomic<bool> finish_requested_{false};
  std::atomic<bool> finished_{false};
  common::Status final_status_;
};

/// Routes frames from a producing task to the consuming tasks of one edge
/// according to the connector kind.
class Router : public IFrameWriter {
 public:
  Router(ConnectorDescriptor connector, int source_partition,
         std::vector<std::shared_ptr<Task>> targets);

  [[nodiscard]] common::Status NextFrame(const FramePtr& frame) override;
  void Fail() override;
  [[nodiscard]] common::Status Close() override;

 private:
  const ConnectorDescriptor connector_;
  const int source_partition_;
  std::vector<std::shared_ptr<Task>> targets_;
  size_t round_robin_ = 0;
};

/// Fans one task's output out to several routers (multi-out-edge DAGs).
class BroadcastWriter : public IFrameWriter {
 public:
  explicit BroadcastWriter(std::vector<std::shared_ptr<IFrameWriter>> outs)
      : outs_(std::move(outs)) {}
  [[nodiscard]] common::Status NextFrame(const FramePtr& frame) override {
    for (auto& out : outs_) RETURN_IF_ERROR(out->NextFrame(frame));
    return common::Status::OK();
  }
  void Fail() override {
    for (auto& out : outs_) out->Fail();
  }
  [[nodiscard]] common::Status Close() override {
    for (auto& out : outs_) RETURN_IF_ERROR(out->Close());
    return common::Status::OK();
  }

 private:
  std::vector<std::shared_ptr<IFrameWriter>> outs_;
};

/// Terminal writer: discards frames (the paper's NullSink operator).
class NullWriter : public IFrameWriter {
 public:
  [[nodiscard]] common::Status NextFrame(const FramePtr&) override {
    return common::Status::OK();
  }
};

}  // namespace hyracks
}  // namespace asterix

