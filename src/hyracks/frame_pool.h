// FramePool: recycles the two allocations behind every frame on the
// pump -> joint -> subscriber path — the shared_ptr control block + Frame
// object (one allocate_shared block) and the record vector's element
// buffer — so the steady-state frame path performs ZERO heap allocations
// once warm (tests/mem_test.cc asserts exactly that with the allocation
// interposer).
//
// Recycling protocol:
//   * MakeFrame allocates the Frame through a single-size block
//     allocator whose free list is a lock-free MpmcQueue<void*>. The
//     block size is learned from the first allocation (every
//     allocate_shared<Frame> request is the same size); odd-size
//     requests fall through to operator new.
//   * A pooled Frame remembers its pool; ~Frame (which runs when the
//     LAST subscriber drops its FramePtr) hands the record vector back,
//     clearing the elements but keeping the capacity. FrameAppender
//     re-acquires that capacity for the next frame it builds.
//
// Budget contract (MemGovernor "frame_path" pool): the pool charges only
// RETAINED memory — bytes parked in its free lists. Live frames are
// accounted where they queue (SubscriberQueue budgets); a frame in
// flight is owned by the pipeline, not the pool. Consequences:
//   * MakeFrame / AcquireRecords never fail — reuse RELEASES budget.
//   * Recycling is best-effort: if the budget refuses the retained
//     bytes (or a free list is full), the memory is simply freed.
//     A starved "frame_path" pool therefore degrades the pool to a
//     pass-through allocator, never an error.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "adm/value.h"
#include "common/mem_governor.h"
#include "common/mpmc_queue.h"
#include "hyracks/frame.h"

namespace asterix {
namespace hyracks {

class FramePool {
 public:
  /// `budget` may be null (unbudgeted pool; unit tests). Capacities are
  /// free-list slots: blocks ~= frames simultaneously retained, vectors
  /// likewise.
  explicit FramePool(common::MemPool* budget = nullptr,
                     size_t max_blocks = 4096, size_t max_vectors = 4096);
  ~FramePool();
  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;

  /// Process-wide pool, budgeted against MemGovernor::Default()'s
  /// "frame_path" pool.
  static FramePool& Default();

  /// An empty record vector, with recycled capacity when available.
  std::vector<adm::Value> AcquireRecords();

  /// Pooled MakeFrame: same overload set as the free functions in
  /// frame.h, but the Frame lives in a recycled block and returns its
  /// record buffer here on destruction.
  FramePtr MakeFrame(std::vector<adm::Value> records);
  FramePtr MakeFrame(std::vector<adm::Value> records, size_t approx_bytes);
  FramePtr MakeFrame(std::vector<adm::Value> records, TraceContext trace);
  FramePtr MakeFrame(std::vector<adm::Value> records, size_t approx_bytes,
                     TraceContext trace);

  // --- stats (tests + bench) ---
  // relaxed: monitoring reads of independent stats counters/gauges; no
  // caller orders program state by them (applies to all six accessors).
  int64_t block_hits() const {
    return block_hits_.load(std::memory_order_relaxed);
  }
  int64_t block_misses() const {
    return block_misses_.load(std::memory_order_relaxed);
  }
  int64_t vector_hits() const {
    // relaxed: monitoring read (see block_hits).
    return vector_hits_.load(std::memory_order_relaxed);
  }
  int64_t vector_misses() const {
    // relaxed: monitoring read (see block_hits).
    return vector_misses_.load(std::memory_order_relaxed);
  }
  /// Recycle attempts refused by the memory budget (memory was freed
  /// instead of retained).
  // relaxed: monitoring read (see block_hits).
  int64_t budget_drops() const {
    return budget_drops_.load(std::memory_order_relaxed);
  }
  /// Bytes currently parked in the free lists (== this pool's charge
  /// against its budget).
  // relaxed: monitoring read (see block_hits).
  int64_t retained_bytes() const {
    return retained_bytes_.load(std::memory_order_relaxed);
  }

 private:
  friend class Frame;  // ~Frame returns its record vector via RecycleRecords

  /// Minimal allocator over the block free list, for allocate_shared.
  /// Rebound by shared_ptr internals to its control-block type; every
  /// request through one FramePool therefore has one size.
  template <typename U>
  struct BlockAllocator {
    using value_type = U;
    explicit BlockAllocator(FramePool* p) : pool(p) {}
    template <typename V>
    BlockAllocator(const BlockAllocator<V>& other)  // NOLINT(runtime/explicit)
        : pool(other.pool) {}
    U* allocate(size_t n) {
      static_assert(alignof(U) <= alignof(std::max_align_t),
                    "block free list serves default-aligned types only");
      return static_cast<U*>(pool->AllocateBlock(n * sizeof(U)));
    }
    void deallocate(U* p, size_t n) {
      pool->DeallocateBlock(p, n * sizeof(U));
    }
    template <typename V>
    bool operator==(const BlockAllocator<V>& other) const {
      return pool == other.pool;
    }
    FramePool* pool;
  };

  void* AllocateBlock(size_t bytes);
  void DeallocateBlock(void* block, size_t bytes);
  /// Called from ~Frame: clears the elements, keeps the capacity if the
  /// budget accepts the retained bytes and the free list has room.
  void RecycleRecords(std::vector<adm::Value>&& records);

  common::MemPool* const budget_;
  /// allocate_shared request size, learned on first allocation (0 until
  /// then). All pooled frames share it.
  std::atomic<size_t> block_size_{0};
  common::MpmcQueue<void*> blocks_;
  common::MpmcQueue<std::vector<adm::Value>> vectors_;
  std::atomic<int64_t> block_hits_{0};
  std::atomic<int64_t> block_misses_{0};
  std::atomic<int64_t> vector_hits_{0};
  std::atomic<int64_t> vector_misses_{0};
  std::atomic<int64_t> budget_drops_{0};
  std::atomic<int64_t> retained_bytes_{0};
};

}  // namespace hyracks
}  // namespace asterix
