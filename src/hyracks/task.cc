#include "hyracks/task.h"

#include <map>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/observability.h"
#include "hyracks/node.h"

namespace asterix {
namespace hyracks {

using common::Status;

Task::Task(JobId job_id, std::string op_name, int partition,
           int partition_count, NodeController* node,
           std::unique_ptr<Operator> op, size_t queue_capacity)
    : job_id_(job_id),
      op_name_(std::move(op_name)),
      partition_(partition),
      partition_count_(partition_count),
      node_(node),
      op_(std::move(op)),
      input_(queue_capacity) {}

Task::~Task() {
  Kill();
  Join();
}

const std::string& Task::node_id() const { return node_->id(); }

bool Task::ShouldStop() const {
  return killed_.load() || finish_requested_.load() || !node_->alive();
}

void Task::Start() {
  if (started_.exchange(true)) return;
  thread_ = std::thread([this] { ThreadMain(); });
}

void Task::Kill() {
  killed_.store(true);
  input_.Close();
}

void Task::RequestFinish() {
  finish_requested_.store(true);
  // Non-source tasks drain naturally via EOS; sources poll the flag.
}

std::vector<FrameMessage> Task::FreezeAndDrain() {
  killed_.store(true);
  input_.Close();
  Join();
  // Older-first: frames stranded in the thread's in-flight batch precede
  // anything still sitting in the queue.
  std::vector<FrameMessage> pending;
  for (FrameMessage& msg : residual_) {
    if (msg.kind == FrameMessage::Kind::kData) {
      pending.push_back(std::move(msg));
    }
  }
  residual_.clear();
  for (FrameMessage& msg : input_.TryPopAll()) {
    if (msg.kind == FrameMessage::Kind::kData) {
      pending.push_back(std::move(msg));
    }
  }
  return pending;
}

void Task::Join() {
  if (thread_.joinable()) thread_.join();
}

bool Task::Enqueue(FrameMessage msg) {
  if (killed_.load() || !node_->alive()) return false;
  return input_.Push(std::move(msg));
}

void Task::Signal(const std::string& signal) { op_->OnSignal(signal); }

bool Task::PumpBatch(std::vector<FrameMessage>* batch) {
  // Process-wide pump accounting. The invariant (checked by tests): after
  // a quiescent run, frames_total counts every message drained and
  // wakeups_total counts every PumpBatch return with data — one wakeup
  // per batch regardless of batch size, so
  //   frames_total / wakeups_total == mean drain batch size.
  static common::Counter* wakeups =
      common::MetricsRegistry::Default().GetCounter(
          "hyracks_task_pump_wakeups_total");
  static common::Counter* frames =
      common::MetricsRegistry::Default().GetCounter(
          "hyracks_task_pump_frames_total");
  batch->clear();  // message dtors run here; capacity is retained
  size_t drained = input_.PopAllInto(batch);
  if (drained > 0) {
    wakeups->Add(1);
    frames->Add(static_cast<int64_t>(drained));
  }
  return drained > 0;
}

void Task::ThreadMain() {
  Status status;
  bool failed = false;
  bool aborted = false;

  // A runtime exception escaping an operator carries non-resumable
  // semantics for the job (the feed MetaFeed wrapper catches exceptions
  // before they reach this boundary when soft-failure recovery is on).
  auto guarded = [&](auto&& fn) -> Status {
    try {
      return fn();
    } catch (const std::exception& e) {
      return Status::Internal(std::string("uncaught operator exception: ") +
                              e.what());
    } catch (...) {
      return Status::Internal("uncaught non-standard operator exception");
    }
  };

  status = guarded([&] { return op_->Open(this); });
  failed = !status.ok();

  if (!failed) {
    if (op_->is_source()) {
      status = guarded([&] { return op_->Run(this); });
      failed = !status.ok();
      aborted = killed_.load() || !node_->alive();
    } else {
      int eos_count = 0;
      bool done = false;
      // One batch vector for the task's lifetime: cleared and refilled
      // each wakeup, so the drain itself allocates nothing once the
      // capacity reaches the high-water batch size.
      std::vector<FrameMessage> batch;
      while (!done) {
        // One parked wakeup drains everything queued; the ring makes the
        // drain itself lock-free (one CAS per message).
        if (!PumpBatch(&batch)) {
          // Queue closed: hard abort (node death / job abort).
          aborted = true;
          break;
        }
        for (size_t bi = 0; bi < batch.size(); ++bi) {
          // In-flight frame included: it is accepted but not yet done.
          // relaxed: congestion gauge read only by queue_depth()
          // monitoring; staleness is inherent to the measurement.
          batch_pending_.store(batch.size() - bi,
                               std::memory_order_relaxed);
          if (killed_.load() || !node_->alive()) {
            // Stash the unprocessed tail so FreezeAndDrain can reclaim it
            // — the frames would have still been queued under per-item
            // hand-off.
            for (size_t j = bi; j < batch.size(); ++j) {
              residual_.push_back(std::move(batch[j]));
            }
            aborted = true;
            done = true;
            break;
          }
          FrameMessage& msg = batch[bi];
          if (msg.kind == FrameMessage::Kind::kEos) {
            if (++eos_count >= expected_producers_) {
              done = true;
              break;
            }
            continue;
          }
          if (msg.kind == FrameMessage::Kind::kFail) {
            failed = true;
            done = true;
            break;
          }
          status = guarded([&] {
            // Delay = a slow pump; error = an operator-level task fault
            // (surfaces exactly like an operator returning non-OK).
            ASTERIX_FAILPOINT("hyracks.task.pump");
            return op_->ProcessFrame(msg.frame, this);
          });
          if (!status.ok()) {
            failed = true;
            done = true;
            break;
          }
        }
        // relaxed: congestion gauge (see above).
        batch_pending_.store(0, std::memory_order_relaxed);
      }
    }
  }

  if (aborted) {
    // Process death: no close()/EOS travels downstream; recovery (if any)
    // is the feed fault-tolerance protocol's job. final_status_ must be
    // assigned before the finished_ store publishes it to monitors.
    final_status_ = Status::Aborted("task killed");
    finished_.store(true);
    if (node_->alive()) node_->OnTaskFinished(this);
    return;
  }

  if (failed) {
    if (output_ != nullptr) output_->Fail();
    final_status_ =
        status.ok() ? Status::Internal("upstream failure") : status;
    LOG_MSG(kWarn) << "task " << op_name_ << "[" << partition_
                   << "] of job " << job_id_
                   << " failed: " << final_status_.ToString();
  } else {
    Status close_status = guarded([&] { return op_->Close(this); });
    if (output_ != nullptr) {
      Status out_status = output_->Close();
      if (close_status.ok()) close_status = out_status;
    }
    final_status_ = close_status;
  }
  finished_.store(true);
  node_->OnTaskFinished(this);
}

Router::Router(ConnectorDescriptor connector, int source_partition,
               std::vector<std::shared_ptr<Task>> targets)
    : connector_(std::move(connector)),
      source_partition_(source_partition),
      targets_(std::move(targets)) {}

Status Router::NextFrame(const FramePtr& frame) {
  switch (connector_.kind) {
    case ConnectorKind::kOneToOne: {
      size_t target = static_cast<size_t>(source_partition_) %
                      targets_.size();
      targets_[target]->Enqueue(FrameMessage::Data(frame));
      return Status::OK();
    }
    case ConnectorKind::kMToNRandom: {
      targets_[round_robin_++ % targets_.size()]->Enqueue(
          FrameMessage::Data(frame));
      return Status::OK();
    }
    case ConnectorKind::kMToNHash: {
      // Re-batch records per target partition.
      std::map<size_t, std::vector<adm::Value>> buckets;
      for (const adm::Value& record : frame->records()) {
        std::string key = connector_.key_extractor
                              ? connector_.key_extractor(record)
                              : record.ToAdmString();
        size_t target = std::hash<std::string>{}(key) % targets_.size();
        buckets[target].push_back(record);
      }
      for (auto& [target, records] : buckets) {
        targets_[target]->Enqueue(FrameMessage::Data(
            MakeFrame(std::move(records), frame->trace())));
      }
      return Status::OK();
    }
  }
  return Status::OK();
}

void Router::Fail() {
  for (auto& target : targets_) target->Enqueue(FrameMessage::Fail());
}

Status Router::Close() {
  switch (connector_.kind) {
    case ConnectorKind::kOneToOne: {
      size_t target = static_cast<size_t>(source_partition_) %
                      targets_.size();
      targets_[target]->Enqueue(FrameMessage::Eos());
      break;
    }
    case ConnectorKind::kMToNRandom:
    case ConnectorKind::kMToNHash:
      for (auto& target : targets_) {
        target->Enqueue(FrameMessage::Eos());
      }
      break;
  }
  return Status::OK();
}

}  // namespace hyracks
}  // namespace asterix
