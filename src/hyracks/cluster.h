// ClusterController: master of the simulated shared-nothing cluster.
// Accepts job specs, plans and schedules tasks onto alive nodes, monitors
// heartbeats, and dispatches job/cluster events to subscribers (the
// Central Feed Manager subscribes to drive the fault-tolerance protocol).
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "hyracks/job.h"
#include "hyracks/node.h"
#include "hyracks/task.h"

namespace asterix {
namespace hyracks {

struct ClusterEvent {
  enum class Kind { kNodeFailed, kNodeJoined };
  Kind kind;
  std::string node_id;
};

struct JobEvent {
  enum class Kind { kStarted, kFinished, kNodeLost };
  Kind kind;
  JobId job_id;
  std::string job_name;
  std::string node_id;  // for kNodeLost
};

/// Subscriber interface for cluster/job lifecycle events. Callbacks run on
/// the controller's monitor thread; implementations must be thread-safe.
class ClusterListener {
 public:
  virtual ~ClusterListener() = default;
  virtual void OnClusterEvent(const ClusterEvent& event) { (void)event; }
  virtual void OnJobEvent(const JobEvent& event) { (void)event; }
};

/// A scheduled job: its spec, and its tasks grouped by operator.
class JobHandle {
 public:
  JobHandle(JobId id, JobSpec spec) : id_(id), spec_(std::move(spec)) {}

  JobId id() const { return id_; }
  const JobSpec& spec() const { return spec_; }

  /// tasks()[op_index][partition]
  const std::vector<std::vector<std::shared_ptr<Task>>>& tasks() const {
    return tasks_;
  }
  std::vector<std::shared_ptr<Task>> TasksOfOperator(
      const std::string& op_name) const;

  /// True when every task has finished (normally or aborted).
  bool Finished() const;

  /// Blocks until Finished() or `timeout_ms` elapses (<0 = forever).
  /// Returns true if the job finished.
  bool Wait(int64_t timeout_ms = -1) const;

  /// Requests graceful finish of all source tasks; data drains through.
  void FinishSources();

  /// Hard-kills every task.
  void Abort();

  /// Joins every task thread. Task objects can outlive the cluster
  /// controller (feed-layer references), but their threads dereference
  /// NodeController pointers the controller owns — so teardown must
  /// stop the threads, not just the Task objects.
  void JoinTasks();

 private:
  friend class ClusterController;
  const JobId id_;
  const JobSpec spec_;
  std::vector<std::vector<std::shared_ptr<Task>>> tasks_;
};

struct ClusterOptions {
  std::string storage_root = "/tmp/asterix_storage";
  int64_t heartbeat_period_ms = 20;
  int64_t heartbeat_timeout_ms = 200;
  int64_t monitor_period_ms = 20;
};

class ClusterController {
 public:
  explicit ClusterController(ClusterOptions options = {});
  ~ClusterController();

  /// Adds a worker node. Nodes may be added while jobs run (elasticity).
  NodeController* AddNode(const std::string& node_id);
  NodeController* GetNode(const std::string& node_id) const;
  std::vector<NodeController*> AliveNodes() const;
  std::vector<std::string> AliveNodeIds() const;

  /// Failure injection: simulates the loss of a node. The heartbeat
  /// monitor detects the silence and fires kNodeFailed.
  void KillNode(const std::string& node_id);
  /// Rejoins a previously killed node.
  void RestartNode(const std::string& node_id);

  void Subscribe(ClusterListener* listener);
  void Unsubscribe(ClusterListener* listener);

  /// Plans and starts `spec`: resolves constraints to alive nodes,
  /// instantiates tasks, wires connectors, starts task threads.
  [[nodiscard]] common::Result<std::shared_ptr<JobHandle>> StartJob(JobSpec spec);

  std::shared_ptr<JobHandle> GetJob(JobId id) const;
  void ForgetJob(JobId id);

  /// Starts the heartbeat monitor (idempotent).
  void Start();
  void Stop();

  const ClusterOptions& options() const { return options_; }

 private:
  void MonitorLoop();
  void HandleNodeFailure(const std::string& node_id);
  void ReapFailedJobs();

  const ClusterOptions options_;
  mutable common::Mutex mutex_{common::LockRank::kClusterController};
  std::map<std::string, std::unique_ptr<NodeController>> nodes_
      GUARDED_BY(mutex_);
  std::map<JobId, std::shared_ptr<JobHandle>> jobs_ GUARDED_BY(mutex_);
  std::vector<ClusterListener*> listeners_ GUARDED_BY(mutex_);
  std::map<std::string, bool> known_failed_ GUARDED_BY(mutex_);  // nodes
                                                  // already reported

  std::atomic<JobId> next_job_id_{1};
  std::atomic<bool> running_{false};
  std::thread monitor_thread_;
};

}  // namespace hyracks
}  // namespace asterix

