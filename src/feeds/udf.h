// User-defined functions for feed pre-processing. Two kinds mirror the
// paper: declarative "AQL" UDFs the compiler can reason about and inline,
// and black-box "Java" UDFs (arbitrary callables here) whose cost and
// semantics are opaque. UDFs may throw; the MetaFeed sandbox catches
// throws as soft failures.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "adm/value.h"
#include "common/result.h"
#include "common/thread_annotations.h"

namespace asterix {
namespace feeds {

enum class UdfKind { kAql, kJava };

/// A per-record transform. Returning nullopt filters the record out.
class Udf {
 public:
  virtual ~Udf() = default;
  virtual const std::string& name() const = 0;
  virtual UdfKind kind() const = 0;

  /// One-time setup before use in a dataflow (the Java UDF
  /// "initialization phase" of §4.2).
  virtual void Initialize() {}

  /// Transforms one record. May throw std::exception (soft failure).
  virtual std::optional<adm::Value> Apply(const adm::Value& record) = 0;
};

/// --- Declarative ("AQL") UDFs -------------------------------------------
///
/// An AqlUdf is a short program of declarative steps over the record; the
/// compiler can inline chains of AqlUdfs from a feed cascade into a
/// single assign operator (the Listing 5.6 template's inlining).
class AqlUdf : public Udf {
 public:
  /// One declarative step.
  struct Step {
    enum class Op {
      kKeepFields,       // project to `fields`
      kDropFields,       // remove `fields`
      kRenameField,      // fields[0] -> fields[1]
      kExtractHashtags,  // tokens of fields[0] starting with '#' collected
                         // into list field fields[1] (Listing 4.2)
      kStringToDatetime,  // parse epoch-ms string fields[0] into datetime
                          // field fields[1]
      kLatLongToPoint,   // fields[0], fields[1] -> point field fields[2]
      kFilterFieldEquals,  // drop record unless fields[0] == literal
      kAddConstant,      // add field fields[0] with `literal`
    };
    Op op;
    std::vector<std::string> fields;
    adm::Value literal;
  };

  AqlUdf(std::string name, std::vector<Step> steps)
      : name_(std::move(name)), steps_(std::move(steps)) {}

  const std::string& name() const override { return name_; }
  UdfKind kind() const override { return UdfKind::kAql; }
  std::optional<adm::Value> Apply(const adm::Value& record) override;

  const std::vector<Step>& steps() const { return steps_; }

  /// The canonical example of Listing 4.2 / 5.5: collect '#'-prefixed
  /// tokens of `text_field` into ordered-list field `out_field`.
  static std::shared_ptr<AqlUdf> ExtractHashtags(
      std::string name, std::string text_field = "message_text",
      std::string out_field = "topics");

 private:
  std::string name_;
  std::vector<Step> steps_;
};

/// --- Black-box ("Java") UDFs ---------------------------------------------
class JavaUdf : public Udf {
 public:
  using Fn = std::function<std::optional<adm::Value>(const adm::Value&)>;

  /// `library` models the containing external library; the fully
  /// qualified name is "<library>#<function>" as in Listing 5.9.
  JavaUdf(std::string library, std::string function, Fn fn)
      : qualified_name_(library + "#" + function), fn_(std::move(fn)) {}

  const std::string& name() const override { return qualified_name_; }
  UdfKind kind() const override { return UdfKind::kJava; }
  // A shared UDF instance is Initialize()d concurrently by every assign
  // task partition that opens it, so the flag must be atomic.
  void Initialize() override {
    initialized_.store(true, std::memory_order_release);
  }
  std::optional<adm::Value> Apply(const adm::Value& record) override {
    return fn_(record);
  }
  bool initialized() const {
    return initialized_.load(std::memory_order_acquire);
  }

 private:
  std::string qualified_name_;
  Fn fn_;
  std::atomic<bool> initialized_{false};
};

/// Busy-spin helper: the synthetic CPU cost knob the evaluation's UDFs use
/// (%OVERLAP experiments and the scalability workload). Returns a value
/// derived from the spin to defeat dead-code elimination.
int64_t BusySpin(int64_t iterations);

/// Computes a deterministic pseudo-sentiment in [0,1] from tweet text —
/// the stand-in for the paper's sentimentAnalysis Java UDF.
double PseudoSentiment(const std::string& text);

/// The Function metadata dataset: registry of installed UDFs.
class UdfRegistry {
 public:
  [[nodiscard]] common::Status Register(std::shared_ptr<Udf> udf);
  [[nodiscard]] common::Result<std::shared_ptr<Udf>> Find(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  mutable common::Mutex mutex_{common::LockRank::kUdfRegistry};
  std::map<std::string, std::shared_ptr<Udf>> udfs_ GUARDED_BY(mutex_);
};

}  // namespace feeds
}  // namespace asterix

