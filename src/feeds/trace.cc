#include "common/thread_annotations.h"
#include "feeds/trace.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/clock.h"

namespace asterix {
namespace feeds {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

Tracer& Tracer::Instance() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::Tracer()
    : span_pool_(common::MemGovernor::Default().GetPool(
          common::MemGovernor::kSpanRingPool)) {
  common::MutexLock lock(mutex_);
  RechargeRingLocked();
}

void Tracer::RechargeRingLocked() {
  if (span_pool_ == nullptr) return;
  const size_t want = ring_capacity_ * sizeof(TraceSpan);
  if (want > ring_charged_) {
    const size_t delta = want - ring_charged_;
    // Tracing must proceed: an over-capacity resize overdraws the pool
    // (counted) instead of failing the caller.
    if (!span_pool_->TryReserve(delta).ok()) span_pool_->ForceReserve(delta);
  } else if (want < ring_charged_) {
    span_pool_->Release(ring_charged_ - want);
  }
  ring_charged_ = want;
}

// relaxed: the sampling rate is a standalone tuning knob — no data is
// published through it, and a stale read only mis-samples the frames
// already in flight around the change.
void Tracer::SetSamplingRate(double rate) {
  rate = std::clamp(rate, 0.0, 1.0);
  sampling_permille_.store(static_cast<int>(std::lround(rate * 1000.0)),
                           std::memory_order_relaxed);
}

double Tracer::sampling_rate() const {
  // relaxed: see SetSamplingRate — standalone tuning knob.
  return sampling_permille_.load(std::memory_order_relaxed) / 1000.0;
}

hyracks::TraceContext Tracer::StartTrace() {
  // relaxed: all four atomics here are independent of each other —
  // the rate knob, the sampling stride position, the id allocator
  // (uniqueness needs only RMW atomicity), and a stats counter. None
  // publishes data; the ring append below is under mutex_.
  int permille = sampling_permille_.load(std::memory_order_relaxed);
  if (permille <= 0) return {};
  if (permille < 1000) {
    // Stride sampling: deterministic, no per-call RNG state.
    uint64_t stride = static_cast<uint64_t>(1000 / permille);
    // relaxed: stride position (see function head).
    if (sample_counter_.fetch_add(1, std::memory_order_relaxed) % stride !=
        0) {
      return {};
    }
  }
  hyracks::TraceContext tc;
  // relaxed: id allocator + stats counter (see function head).
  tc.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  tc.start_us = common::NowMicros();
  traces_started_.fetch_add(1, std::memory_order_relaxed);
  common::MutexLock lock(mutex_);
  started_ids_.push_back(tc.id);
  while (started_ids_.size() > ring_capacity_) started_ids_.pop_front();
  return tc;
}

common::Histogram* Tracer::StageHistogramLocked(const std::string& stage) {
  auto it = stage_histograms_.find(stage);
  if (it != stage_histograms_.end()) return it->second;
  // Lock order tracer -> registry is safe: the registry never calls into
  // the tracer.
  common::Histogram* h = common::MetricsRegistry::Default().GetHistogram(
      "feed_stage_latency_us", {{"stage", stage}});
  stage_histograms_.emplace(stage, h);
  return h;
}

void Tracer::RecordSpan(TraceSpan span) {
  common::Histogram* hist;
  {
    common::MutexLock lock(mutex_);
    hist = StageHistogramLocked(span.stage);
    ring_.push_back(std::move(span));
    while (ring_.size() > ring_capacity_) ring_.pop_front();
    hist->Record(ring_.back().duration_us);
  }
}

void Tracer::SetRingCapacity(size_t capacity) {
  common::MutexLock lock(mutex_);
  ring_capacity_ = std::max<size_t>(capacity, 1);
  while (ring_.size() > ring_capacity_) ring_.pop_front();
  while (started_ids_.size() > ring_capacity_) started_ids_.pop_front();
  RechargeRingLocked();
}

std::vector<TraceSpan> Tracer::Spans() const {
  common::MutexLock lock(mutex_);
  return std::vector<TraceSpan>(ring_.begin(), ring_.end());
}

std::vector<TraceSpan> Tracer::SpansForTrace(uint64_t trace_id) const {
  std::vector<TraceSpan> out;
  common::MutexLock lock(mutex_);
  for (const TraceSpan& s : ring_) {
    if (s.trace_id == trace_id) out.push_back(s);
  }
  return out;
}

std::vector<uint64_t> Tracer::StartedTraceIds() const {
  common::MutexLock lock(mutex_);
  return std::vector<uint64_t>(started_ids_.begin(), started_ids_.end());
}

std::string Tracer::DumpJson(size_t max_traces) const {
  // Group by trace id preserving first-seen (≈ start) order.
  std::vector<std::pair<uint64_t, std::vector<TraceSpan>>> traces;
  {
    common::MutexLock lock(mutex_);
    std::map<uint64_t, size_t> index;
    for (const TraceSpan& s : ring_) {
      auto it = index.find(s.trace_id);
      if (it == index.end()) {
        index[s.trace_id] = traces.size();
        traces.push_back({s.trace_id, {s}});
      } else {
        traces[it->second].second.push_back(s);
      }
    }
  }
  size_t first = traces.size() > max_traces ? traces.size() - max_traces : 0;
  std::ostringstream out;
  out << "[";
  for (size_t t = first; t < traces.size(); ++t) {
    auto& [id, spans] = traces[t];
    std::stable_sort(spans.begin(), spans.end(),
                     [](const TraceSpan& a, const TraceSpan& b) {
                       return a.start_us < b.start_us;
                     });
    if (t > first) out << ",";
    out << "{\"trace\":" << id << ",\"spans\":[";
    for (size_t i = 0; i < spans.size(); ++i) {
      const TraceSpan& s = spans[i];
      if (i > 0) out << ",";
      out << "{\"stage\":\"" << JsonEscape(s.stage) << "\""
          << ",\"where\":\"" << JsonEscape(s.where) << "\""
          << ",\"partition\":" << s.partition
          << ",\"start_us\":" << s.start_us
          << ",\"duration_us\":" << s.duration_us
          << ",\"records\":" << s.records
          << ",\"detail\":" << (s.detail ? "true" : "false")
          << ",\"status\":\"" << JsonEscape(s.status) << "\"}";
    }
    out << "]}";
  }
  out << "]";
  return out.str();
}

void Tracer::Reset() {
  common::MutexLock lock(mutex_);
  ring_.clear();
  started_ids_.clear();
  // relaxed: stats counter and stride position; see StartTrace.
  traces_started_.store(0, std::memory_order_relaxed);
  sample_counter_.store(0, std::memory_order_relaxed);
}

}  // namespace feeds
}  // namespace asterix
