#include "common/thread_annotations.h"
#include "feeds/adaptor.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>

#include "common/clock.h"
#include "common/failpoint.h"
#include "common/strings.h"

namespace asterix {
namespace feeds {

using common::Result;
using common::Status;

Status AdaptorRegistry::Register(std::shared_ptr<AdaptorFactory> factory) {
  common::MutexLock lock(mutex_);
  auto [it, inserted] = factories_.emplace(factory->alias(), factory);
  if (!inserted) {
    return Status::AlreadyExists("adaptor '" + it->first +
                                 "' already registered");
  }
  return Status::OK();
}

Result<std::shared_ptr<AdaptorFactory>> AdaptorRegistry::Find(
    const std::string& alias) const {
  common::MutexLock lock(mutex_);
  auto it = factories_.find(alias);
  if (it == factories_.end()) {
    return Status::NotFound("unknown adaptor '" + alias + "'");
  }
  return it->second;
}

ExternalSourceRegistry& ExternalSourceRegistry::Instance() {
  static ExternalSourceRegistry* instance = new ExternalSourceRegistry();
  return *instance;
}

void ExternalSourceRegistry::RegisterChannel(const std::string& address,
                                             gen::Channel* channel) {
  common::MutexLock lock(mutex_);
  channels_[address] = channel;
}

void ExternalSourceRegistry::UnregisterChannel(const std::string& address) {
  common::MutexLock lock(mutex_);
  channels_.erase(address);
}

gen::Channel* ExternalSourceRegistry::FindChannel(
    const std::string& address) const {
  common::MutexLock lock(mutex_);
  auto it = channels_.find(address);
  return it == channels_.end() ? nullptr : it->second;
}

// --- Socket adaptor ---------------------------------------------------------

namespace {

class SocketAdaptor : public FeedAdaptor {
 public:
  explicit SocketAdaptor(std::string address) : address_(std::move(address)) {
    channel_ = ExternalSourceRegistry::Instance().FindChannel(address_);
  }

  Result<RawBatch> Fetch(size_t max, int64_t timeout_ms) override {
    // Before any payload is consumed: an injected fetch failure loses
    // nothing and must be fully recoverable via Reconnect.
    ASTERIX_FAILPOINT("feeds.adaptor.fetch");
    if (channel_ == nullptr) {
      return Status::Unavailable("no source listening at " + address_);
    }
    RawBatch batch;
    batch.payloads = channel_->Drain(max);
    if (batch.payloads.empty()) {
      // Nothing pending: wait briefly for one payload.
      auto one = channel_->Receive(timeout_ms);
      if (one.has_value()) {
        batch.payloads.push_back(std::move(*one));
      } else if (channel_->closed() && channel_->pending() == 0) {
        batch.end_of_source = true;
      }
    }
    return batch;
  }

  Status Reconnect() override {
    ASTERIX_FAILPOINT("feeds.adaptor.reconnect");
    // The channel registry is our "DNS": a restarted source re-registers
    // under the same address.
    channel_ = ExternalSourceRegistry::Instance().FindChannel(address_);
    if (channel_ == nullptr) {
      return Status::Unavailable("source at " + address_ + " is gone");
    }
    return Status::OK();
  }

 private:
  const std::string address_;
  gen::Channel* channel_;
};

}  // namespace

Result<hyracks::PartitionConstraint> SocketAdaptorFactory::GetConstraints(
    const AdaptorConfig& config) const {
  auto it = config.find("sockets");
  if (it == config.end() || it->second.empty()) {
    return Status::InvalidArgument(alias_ +
                                   " requires a 'sockets' parameter");
  }
  // One adaptor instance per socket address, placement left to the
  // scheduler (count constraint).
  int count =
      static_cast<int>(common::SplitAndTrim(it->second, ',').size());
  hyracks::PartitionConstraint constraint;
  constraint.count = count;
  return constraint;
}

Result<std::unique_ptr<FeedAdaptor>> SocketAdaptorFactory::Create(
    const AdaptorConfig& config, int partition) const {
  auto it = config.find("sockets");
  if (it == config.end()) {
    return Status::InvalidArgument(alias_ +
                                   " requires a 'sockets' parameter");
  }
  auto addresses = common::SplitAndTrim(it->second, ',');
  if (partition < 0 || partition >= static_cast<int>(addresses.size())) {
    return Status::InvalidArgument("no socket for adaptor partition " +
                                   std::to_string(partition));
  }
  return std::unique_ptr<FeedAdaptor>(
      new SocketAdaptor(addresses[partition]));
}

// --- File adaptor -----------------------------------------------------------

namespace {

class FileAdaptor : public FeedAdaptor {
 public:
  explicit FileAdaptor(std::string path) : path_(std::move(path)) {}

  Result<RawBatch> Fetch(size_t max, int64_t timeout_ms) override {
    (void)timeout_ms;
    if (!opened_) {
      stream_.open(path_);
      if (!stream_.is_open()) {
        return Status::IOError("cannot open feed file " + path_);
      }
      opened_ = true;
    }
    RawBatch batch;
    std::string line;
    while (batch.payloads.size() < max && std::getline(stream_, line)) {
      if (!line.empty()) batch.payloads.push_back(line);
    }
    if (batch.payloads.empty()) batch.end_of_source = true;
    return batch;
  }

 private:
  const std::string path_;
  std::ifstream stream_;
  bool opened_ = false;
};

}  // namespace

Result<hyracks::PartitionConstraint> FileAdaptorFactory::GetConstraints(
    const AdaptorConfig& config) const {
  if (config.find("path") == config.end()) {
    return Status::InvalidArgument("file_based_feed requires 'path'");
  }
  hyracks::PartitionConstraint constraint;
  constraint.count = 1;
  return constraint;
}

Result<std::unique_ptr<FeedAdaptor>> FileAdaptorFactory::Create(
    const AdaptorConfig& config, int partition) const {
  (void)partition;
  auto it = config.find("path");
  if (it == config.end()) {
    return Status::InvalidArgument("file_based_feed requires 'path'");
  }
  return std::unique_ptr<FeedAdaptor>(new FileAdaptor(it->second));
}

// --- Synthetic tweet adaptor ------------------------------------------------

namespace {

class SyntheticTweetAdaptor : public FeedAdaptor {
 public:
  SyntheticTweetAdaptor(int source_id, int64_t rate_tps, int64_t limit)
      : factory_(source_id), rate_tps_(rate_tps), limit_(limit) {}

  Result<RawBatch> Fetch(size_t max, int64_t timeout_ms) override {
    ASTERIX_FAILPOINT("feeds.adaptor.fetch");
    RawBatch batch;
    if (limit_ >= 0 && produced_ >= limit_) {
      batch.end_of_source = true;
      return batch;
    }
    // Pull-based pacing: emit rate*elapsed records since the last call.
    if (last_fetch_us_ == 0) last_fetch_us_ = common::NowMicros();
    int64_t now = common::NowMicros();
    double due = static_cast<double>(now - last_fetch_us_) * rate_tps_ /
                 1e6;
    if (due < 1.0) {
      common::SleepMillis(std::min<int64_t>(timeout_ms, 5));
      now = common::NowMicros();
      due = static_cast<double>(now - last_fetch_us_) * rate_tps_ / 1e6;
    }
    int64_t n = static_cast<int64_t>(due);
    if (n <= 0) return batch;
    last_fetch_us_ = now;
    n = std::min<int64_t>(n, static_cast<int64_t>(max));
    if (limit_ >= 0) n = std::min(n, limit_ - produced_);
    for (int64_t i = 0; i < n; ++i) {
      batch.payloads.push_back(factory_.NextTweetText());
    }
    produced_ += n;
    return batch;
  }

 private:
  gen::TweetFactory factory_;
  const int64_t rate_tps_;
  const int64_t limit_;
  int64_t produced_ = 0;
  int64_t last_fetch_us_ = 0;
};

int64_t ConfigInt(const AdaptorConfig& config, const std::string& key,
                  int64_t default_value) {
  auto it = config.find(key);
  if (it == config.end()) return default_value;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

}  // namespace

Result<hyracks::PartitionConstraint>
SyntheticTweetAdaptorFactory::GetConstraints(
    const AdaptorConfig& config) const {
  (void)config;
  hyracks::PartitionConstraint constraint;
  constraint.count = 1;
  return constraint;
}

Result<std::unique_ptr<FeedAdaptor>> SyntheticTweetAdaptorFactory::Create(
    const AdaptorConfig& config, int partition) const {
  return std::unique_ptr<FeedAdaptor>(new SyntheticTweetAdaptor(
      static_cast<int>(ConfigInt(config, "source_id", 0)) + partition,
      ConfigInt(config, "rate", 100), ConfigInt(config, "limit", -1)));
}

Status RegisterBuiltinAdaptors(AdaptorRegistry* registry) {
  RETURN_IF_ERROR(registry->Register(std::make_shared<SocketAdaptorFactory>()));
  RETURN_IF_ERROR(registry->Register(
      std::make_shared<SocketAdaptorFactory>("TweetGenAdaptor", "Tweet")));
  RETURN_IF_ERROR(registry->Register(std::make_shared<FileAdaptorFactory>()));
  RETURN_IF_ERROR(
      registry->Register(std::make_shared<SyntheticTweetAdaptorFactory>()));
  return Status::OK();
}

}  // namespace feeds
}  // namespace asterix
