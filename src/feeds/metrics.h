// Metrics for a feed connection (Table 7.1's symbols): arrival,
// processing and persistence counters plus an interval-binned recorder for
// instantaneous throughput timelines (the Chapter 6/7 figures).
#ifndef ASTERIX_FEEDS_METRICS_H_
#define ASTERIX_FEEDS_METRICS_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"

namespace asterix {
namespace feeds {

class SubscriberQueue;

/// Counts events into fixed-width time bins from a start instant;
/// Series() yields per-bin totals — an instantaneous-throughput timeline.
class IntervalCounter {
 public:
  explicit IntervalCounter(int64_t bin_width_ms = 250)
      : bin_width_ms_(bin_width_ms), start_ms_(common::NowMillis()) {}

  void Add(int64_t n = 1) {
    int64_t bin = (common::NowMillis() - start_ms_) / bin_width_ms_;
    std::lock_guard<std::mutex> lock(mutex_);
    if (bin >= static_cast<int64_t>(bins_.size())) {
      bins_.resize(static_cast<size_t>(bin) + 1, 0);
    }
    bins_[static_cast<size_t>(bin)] += n;
  }

  /// Per-bin counts from the start instant to now.
  std::vector<int64_t> Series() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return bins_;
  }

  int64_t bin_width_ms() const { return bin_width_ms_; }
  int64_t start_ms() const { return start_ms_; }

  void Reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    bins_.clear();
    start_ms_ = common::NowMillis();
  }

 private:
  const int64_t bin_width_ms_;
  int64_t start_ms_;
  mutable std::mutex mutex_;
  std::vector<int64_t> bins_;
};

/// Shared runtime metrics for one feed connection. Operators update the
/// counters; the congestion monitor and the benches read them.
struct ConnectionMetrics {
  // r_a, r_c, r_s of Table 7.1: records arriving from the source, records
  // through the compute stage, records persisted+indexed.
  std::atomic<int64_t> records_collected{0};
  std::atomic<int64_t> records_computed{0};
  std::atomic<int64_t> records_stored{0};
  std::atomic<int64_t> soft_failures{0};
  std::atomic<int64_t> records_replayed{0};  // at-least-once re-sends

  // Storage maintenance backlog behind the store stage (gauges, sampled by
  // the store operator): sealed memtables awaiting background flush and
  // pending merges. Rising values mean persistence is falling behind the
  // inflow without stalling it — the signal the congestion monitor watches
  // instead of an insert-path stall.
  std::atomic<int64_t> store_flush_backlog{0};
  std::atomic<int64_t> store_merge_backlog{0};

  /// Instantaneous persisted-records throughput.
  IntervalCounter store_timeline{250};

  /// Intake-side subscriber queues (one per intake partition), for the
  /// congestion monitor. Guarded by `mutex`.
  std::mutex mutex;
  std::vector<std::shared_ptr<SubscriberQueue>> intake_queues;

  void RegisterIntakeQueue(std::shared_ptr<SubscriberQueue> queue) {
    std::lock_guard<std::mutex> lock(mutex);
    intake_queues.push_back(std::move(queue));
  }
  std::vector<std::shared_ptr<SubscriberQueue>> IntakeQueues() {
    std::lock_guard<std::mutex> lock(mutex);
    return intake_queues;
  }
  void ClearIntakeQueues() {
    std::lock_guard<std::mutex> lock(mutex);
    intake_queues.clear();
  }
};

}  // namespace feeds
}  // namespace asterix

#endif  // ASTERIX_FEEDS_METRICS_H_
