// Metrics for a feed connection (Table 7.1's symbols): arrival,
// processing and persistence counters plus an interval-binned recorder for
// instantaneous throughput timelines (the Chapter 6/7 figures).
#pragma once

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/observability.h"
#include "common/thread_annotations.h"

namespace asterix {
namespace feeds {

class SubscriberQueue;

/// Counts events into fixed-width time bins from a start instant;
/// Series() yields per-bin totals — an instantaneous-throughput timeline.
class IntervalCounter {
 public:
  explicit IntervalCounter(int64_t bin_width_ms = 250)
      : bin_width_ms_(bin_width_ms), start_ms_(common::NowMillis()) {}

  void Add(int64_t n = 1) { AddAtMillis(common::NowMillis(), n); }

  /// Records `n` events at wall instant `now_ms` (test seam; Add() passes
  /// the current clock).
  void AddAtMillis(int64_t now_ms, int64_t n = 1) {
    common::MutexLock lock(mutex_);
    // start_ms_ is read under the lock: a concurrent Reset() can move it
    // past `now_ms`, making the bin negative — clamp to the first bin
    // instead of indexing out of bounds.
    int64_t bin = (now_ms - start_ms_) / bin_width_ms_;
    if (bin < 0) bin = 0;
    if (bin >= static_cast<int64_t>(bins_.size())) {
      // Geometric growth so a laggard bin doesn't reallocate on every Add.
      size_t needed = static_cast<size_t>(bin) + 1;
      if (needed > bins_.capacity()) {
        bins_.reserve(std::max(needed, bins_.capacity() * 2 + 16));
      }
      bins_.resize(needed, 0);
    }
    bins_[static_cast<size_t>(bin)] += n;
  }

  /// Per-bin counts from the start instant to now.
  std::vector<int64_t> Series() const {
    common::MutexLock lock(mutex_);
    return bins_;
  }

  int64_t bin_width_ms() const { return bin_width_ms_; }
  int64_t start_ms() const {
    // Reset() moves the start instant; read it under the same lock.
    common::MutexLock lock(mutex_);
    return start_ms_;
  }

  void Reset() {
    common::MutexLock lock(mutex_);
    bins_.clear();
    start_ms_ = common::NowMillis();
  }

 private:
  const int64_t bin_width_ms_;
  mutable common::Mutex mutex_{common::LockRank::kIntervalCounter};
  int64_t start_ms_ GUARDED_BY(mutex_);
  std::vector<int64_t> bins_ GUARDED_BY(mutex_);
};

/// Shared runtime metrics for one feed connection. Operators update the
/// counters; the congestion monitor and the benches read them via
/// MetricsRegistry::Snapshot() — constructing with a connection id
/// publishes every field into the process-wide registry as a
/// provider-backed metric labeled {connection=<id>}. The providers
/// unregister in the destructor, so a torn-down connection stops
/// exporting.
struct ConnectionMetrics {
  ConnectionMetrics() = default;
  /// Registers registry providers for this connection. An empty id skips
  /// registration (unpublished scratch metrics, e.g. in unit tests).
  explicit ConnectionMetrics(const std::string& connection_id);

  // r_a, r_c, r_s of Table 7.1: records arriving from the source, records
  // through the compute stage, records persisted+indexed.
  std::atomic<int64_t> records_collected{0};
  std::atomic<int64_t> records_computed{0};
  std::atomic<int64_t> records_stored{0};
  std::atomic<int64_t> soft_failures{0};
  std::atomic<int64_t> records_replayed{0};  // at-least-once re-sends

  // Storage maintenance backlog behind the store stage (gauges, sampled by
  // the store operator): sealed memtables awaiting background flush and
  // pending merges. Rising values mean persistence is falling behind the
  // inflow without stalling it — the signal the congestion monitor watches
  // instead of an insert-path stall.
  std::atomic<int64_t> store_flush_backlog{0};
  std::atomic<int64_t> store_merge_backlog{0};

  /// Instantaneous persisted-records throughput.
  IntervalCounter store_timeline{250};

  /// Intake-side subscriber queues (one per intake partition), for the
  /// congestion monitor. Guarded by `mutex`.
  common::Mutex mutex{common::LockRank::kConnectionMetrics};
  std::vector<std::shared_ptr<SubscriberQueue>> intake_queues
      GUARDED_BY(mutex);

  void RegisterIntakeQueue(std::shared_ptr<SubscriberQueue> queue) {
    common::MutexLock lock(mutex);
    intake_queues.push_back(std::move(queue));
  }
  std::vector<std::shared_ptr<SubscriberQueue>> IntakeQueues() {
    common::MutexLock lock(mutex);
    return intake_queues;
  }
  void ClearIntakeQueues() {
    common::MutexLock lock(mutex);
    intake_queues.clear();
  }

 private:
  // Declared last so providers unregister before any field they read is
  // destroyed.
  std::vector<common::MetricsRegistry::ProviderHandle> provider_handles_;
};

}  // namespace feeds
}  // namespace asterix

