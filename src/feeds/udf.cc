#include "common/thread_annotations.h"
#include "feeds/udf.h"

#include <cstdlib>
#include <stdexcept>

#include "common/failpoint.h"
#include "common/strings.h"

namespace asterix {
namespace feeds {

using adm::Value;
using common::Result;
using common::Status;

std::optional<Value> AqlUdf::Apply(const Value& record) {
  // Simulates a poison record: the throw is a soft failure for the
  // MetaFeed sandbox to catch, exactly like the real missing-field throws
  // below.
  ASTERIX_FAILPOINT_THROW("feeds.udf.apply");
  if (!record.is_record()) {
    throw std::invalid_argument("AQL UDF '" + name_ +
                                "' applied to a non-record value");
  }
  Value out = record;
  for (const Step& step : steps_) {
    switch (step.op) {
      case Step::Op::kKeepFields: {
        adm::FieldVec kept;
        for (const std::string& f : step.fields) {
          const Value* v = out.GetField(f);
          if (v != nullptr) kept.emplace_back(f, *v);
        }
        out = Value::Record(std::move(kept));
        break;
      }
      case Step::Op::kDropFields: {
        for (const std::string& f : step.fields) out.RemoveField(f);
        break;
      }
      case Step::Op::kRenameField: {
        const Value* v = out.GetField(step.fields[0]);
        if (v != nullptr) {
          Value moved = *v;
          out.RemoveField(step.fields[0]);
          out.SetField(step.fields[1], std::move(moved));
        }
        break;
      }
      case Step::Op::kExtractHashtags: {
        const Value* text = out.GetField(step.fields[0]);
        if (text == nullptr || text->tag() != adm::TypeTag::kString) {
          throw std::runtime_error("field '" + step.fields[0] +
                                   "' missing or not a string");
        }
        adm::ListVec topics;
        for (const std::string& token :
             common::SplitAndTrim(text->AsString(), ' ')) {
          if (common::StartsWith(token, "#") && token.size() > 1) {
            topics.push_back(Value::String(token));
          }
        }
        out.SetField(step.fields[1], Value::List(std::move(topics)));
        break;
      }
      case Step::Op::kStringToDatetime: {
        const Value* s = out.GetField(step.fields[0]);
        if (s == nullptr || s->tag() != adm::TypeTag::kString) {
          throw std::runtime_error("field '" + step.fields[0] +
                                   "' missing or not a string");
        }
        char* end = nullptr;
        long long ms = std::strtoll(s->AsString().c_str(), &end, 10);
        if (end != s->AsString().c_str() + s->AsString().size()) {
          throw std::runtime_error("field '" + step.fields[0] +
                                   "' is not an epoch-ms string");
        }
        out.SetField(step.fields[1], Value::Datetime(ms));
        break;
      }
      case Step::Op::kLatLongToPoint: {
        const Value* lat = out.GetField(step.fields[0]);
        const Value* lon = out.GetField(step.fields[1]);
        if (lat == nullptr || lon == nullptr || lat->is_null() ||
            lon->is_null()) {
          // Optional location: leave the point field absent.
          break;
        }
        out.SetField(step.fields[2],
                     Value::MakePoint(lat->AsNumber(), lon->AsNumber()));
        break;
      }
      case Step::Op::kFilterFieldEquals: {
        const Value* v = out.GetField(step.fields[0]);
        if (v == nullptr || !(*v == step.literal)) return std::nullopt;
        break;
      }
      case Step::Op::kAddConstant: {
        out.SetField(step.fields[0], step.literal);
        break;
      }
    }
  }
  return out;
}

std::shared_ptr<AqlUdf> AqlUdf::ExtractHashtags(std::string name,
                                                std::string text_field,
                                                std::string out_field) {
  return std::make_shared<AqlUdf>(
      std::move(name),
      std::vector<Step>{{Step::Op::kExtractHashtags,
                         {std::move(text_field), std::move(out_field)},
                         Value::Null()}});
}

int64_t BusySpin(int64_t iterations) {
  volatile int64_t acc = 0;
  for (int64_t i = 0; i < iterations; ++i) acc = acc + i;
  return acc;
}

double PseudoSentiment(const std::string& text) {
  // Deterministic hash-derived score in [0, 1].
  uint64_t h = common::Fnv1a(text);
  return static_cast<double>(h % 10000) / 10000.0;
}

Status UdfRegistry::Register(std::shared_ptr<Udf> udf) {
  common::MutexLock lock(mutex_);
  auto [it, inserted] = udfs_.emplace(udf->name(), udf);
  if (!inserted) {
    return Status::AlreadyExists("function '" + udf->name() +
                                 "' already installed");
  }
  return Status::OK();
}

Result<std::shared_ptr<Udf>> UdfRegistry::Find(
    const std::string& name) const {
  common::MutexLock lock(mutex_);
  auto it = udfs_.find(name);
  if (it == udfs_.end()) {
    return Status::NotFound("function '" + name + "' not found");
  }
  return it->second;
}

std::vector<std::string> UdfRegistry::Names() const {
  common::MutexLock lock(mutex_);
  std::vector<std::string> names;
  for (const auto& [name, udf] : udfs_) names.push_back(name);
  return names;
}

}  // namespace feeds
}  // namespace asterix
