#include "common/thread_annotations.h"
#include "feeds/policy.h"

#include <algorithm>
#include <cstdlib>

namespace asterix {
namespace feeds {

using common::Result;
using common::Status;

const char* ExcessModeName(ExcessMode mode) {
  switch (mode) {
    case ExcessMode::kBlock:
      return "block";
    case ExcessMode::kSpill:
      return "spill";
    case ExcessMode::kDiscard:
      return "discard";
    case ExcessMode::kThrottle:
      return "throttle";
    case ExcessMode::kElastic:
      return "elastic";
  }
  return "?";
}

bool IngestionPolicy::GetBool(const std::string& key,
                              bool default_value) const {
  auto it = params_.find(key);
  if (it == params_.end()) return default_value;
  return it->second == "true" || it->second == "1";
}

int64_t IngestionPolicy::GetInt(const std::string& key,
                                int64_t default_value) const {
  auto it = params_.find(key);
  if (it == params_.end()) return default_value;
  // Accept "512MB"-style suffixes used in the dissertation's examples.
  const std::string& s = it->second;
  char* end = nullptr;
  long long v = std::strtoll(s.c_str(), &end, 10);
  std::string suffix(end);
  if (suffix == "KB" || suffix == "kb") return v * 1024LL;
  if (suffix == "MB" || suffix == "mb") return v * 1024LL * 1024;
  if (suffix == "GB" || suffix == "gb") return v * 1024LL * 1024 * 1024;
  if (!suffix.empty()) return default_value;
  return v;
}

double IngestionPolicy::GetDouble(const std::string& key,
                                  double default_value) const {
  auto it = params_.find(key);
  if (it == params_.end()) return default_value;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  if (end != it->second.c_str() + it->second.size()) return default_value;
  return v;
}

std::string IngestionPolicy::GetString(
    const std::string& key, const std::string& default_value) const {
  auto it = params_.find(key);
  return it == params_.end() ? default_value : it->second;
}

ExcessMode IngestionPolicy::excess_mode() const {
  if (GetBool(kExcessRecordsSpill, false)) return ExcessMode::kSpill;
  if (GetBool(kExcessRecordsDiscard, false)) return ExcessMode::kDiscard;
  if (GetBool(kExcessRecordsThrottle, false)) return ExcessMode::kThrottle;
  if (GetBool(kExcessRecordsElastic, false)) return ExcessMode::kElastic;
  return ExcessMode::kBlock;
}

ScaleDecision EvaluateElastic(const CongestionSignals& signals,
                              const IngestionPolicy& policy,
                              CongestionState* state) {
  if (policy.excess_mode() != ExcessMode::kElastic) return ScaleDecision::kNone;
  int64_t high = policy.memory_budget_bytes() / kCongestionBudgetDivisor;
  if (signals.intake_pending_bytes > high) {
    ++state->congestion_streak;
    state->idle_streak = 0;
  } else if (signals.intake_pending_bytes < high / kIdleDivisor) {
    ++state->idle_streak;
    state->congestion_streak = 0;
  } else {
    state->congestion_streak = 0;
    state->idle_streak = 0;
  }
  if (state->congestion_streak >= kElasticScaleOutStreak &&
      signals.compute_width < signals.alive_nodes) {
    state->congestion_streak = 0;
    return ScaleDecision::kScaleOut;
  }
  if (state->idle_streak >= kElasticScaleInStreak &&
      signals.compute_width > signals.initial_compute_width) {
    state->idle_streak = 0;
    return ScaleDecision::kScaleIn;
  }
  return ScaleDecision::kNone;
}

double ThrottleKeepProbability(int64_t pending_bytes, int64_t incoming_bytes,
                               int64_t memory_budget_bytes) {
  bool over_budget = pending_bytes + incoming_bytes > memory_budget_bytes;
  if (!over_budget && pending_bytes <= memory_budget_bytes / 2) return 1.0;
  double fill = static_cast<double>(pending_bytes) /
                static_cast<double>(memory_budget_bytes);
  return std::clamp(1.0 - fill, kThrottleMinKeep, 1.0);
}

PolicyRegistry::PolicyRegistry() {
  // Defaults follow Table 4.1; each built-in flips the one flag that
  // names it (Table 4.2).
  policies_.emplace("Basic", IngestionPolicy("Basic", {}));
  policies_.emplace(
      "Spill",
      IngestionPolicy("Spill",
                      {{IngestionPolicy::kExcessRecordsSpill, "true"}}));
  policies_.emplace(
      "Discard",
      IngestionPolicy("Discard",
                      {{IngestionPolicy::kExcessRecordsDiscard, "true"}}));
  policies_.emplace(
      "Throttle",
      IngestionPolicy("Throttle",
                      {{IngestionPolicy::kExcessRecordsThrottle, "true"}}));
  policies_.emplace(
      "Elastic",
      IngestionPolicy("Elastic",
                      {{IngestionPolicy::kExcessRecordsElastic, "true"}}));
  policies_.emplace(
      "FaultTolerant",
      IngestionPolicy("FaultTolerant",
                      {{IngestionPolicy::kAtLeastOnceEnabled, "true"},
                       {IngestionPolicy::kRecoverSoftFailure, "true"},
                       {IngestionPolicy::kRecoverHardFailure, "true"}}));
}

Status PolicyRegistry::Create(const std::string& name,
                              const std::string& base,
                              std::map<std::string, std::string> overrides) {
  common::MutexLock lock(mutex_);
  if (policies_.count(name) > 0) {
    return Status::AlreadyExists("policy '" + name + "' already exists");
  }
  auto it = policies_.find(base);
  if (it == policies_.end()) {
    return Status::NotFound("base policy '" + base + "' not found");
  }
  std::map<std::string, std::string> params = it->second.params();
  for (auto& [key, value] : overrides) params[key] = value;
  policies_.emplace(name, IngestionPolicy(name, std::move(params)));
  return Status::OK();
}

Result<IngestionPolicy> PolicyRegistry::Find(const std::string& name) const {
  common::MutexLock lock(mutex_);
  auto it = policies_.find(name);
  if (it == policies_.end()) {
    return Status::NotFound("policy '" + name + "' not found");
  }
  return it->second;
}

}  // namespace feeds
}  // namespace asterix
