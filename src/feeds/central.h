// Central Feed Manager (§5.2, §6.2): co-located with the Cluster
// Controller, it oversees every active data ingestion pipeline. It
// compiles connect/disconnect statements into Hyracks jobs (head and tail
// sections), tracks feed joints and operator locations, subscribes to
// cluster events to run the hard-failure protocol of Chapter 6, and hosts
// the congestion monitor that drives the Elastic policy of Chapter 7.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "feeds/ack.h"
#include "feeds/catalog.h"
#include "feeds/metrics.h"
#include "feeds/operators.h"
#include "feeds/policy.h"
#include "feeds/udf.h"
#include "hyracks/cluster.h"
#include "storage/dataset.h"

namespace asterix {
namespace feeds {

/// Options for a connect statement beyond the policy.
struct ConnectOptions {
  /// Instances per compute (assign) stage; <=0 = one per alive node (the
  /// paper's default degree of parallelism).
  int compute_count = -1;
  /// Explicit compute placement (applies to every assign stage);
  /// overrides compute_count when non-empty.
  std::vector<std::string> compute_locations;
};

/// Runtime record of one `connect feed ... to dataset ...`.
struct ConnectionInfo {
  std::string id;  // "<feed>-><dataset>"
  std::string feed;
  std::string dataset;
  IngestionPolicy policy;
  ConnectOptions options;

  /// Joint the tail's intake subscribes to, and the joints this
  /// connection's compute stages expose (innermost last).
  std::string source_joint;
  std::vector<std::string> exposed_joints;
  /// Names of the UDFs applied in this tail (one assign stage each).
  std::vector<std::string> udf_chain;
  /// Root feed (head section) this connection transitively draws from.
  std::string head_root;

  std::shared_ptr<hyracks::JobHandle> tail_job;
  std::shared_ptr<ConnectionMetrics> metrics;

  std::vector<std::string> intake_locations;
  std::vector<std::vector<std::string>> assign_locations;
  std::vector<std::string> store_locations;
  int compute_width = 0;

  bool store_detached = false;  // partial dismantle (§5.5)
  bool terminated = false;

  // Elastic monitor state (streaks persisted across monitor ticks).
  CongestionState congestion;
  int initial_compute_width = 0;
};

/// A head section (Feed Collect job) shared by the connections of a feed
/// hierarchy (Figure 5.2).
struct HeadSection {
  std::string root_feed;  // doubles as the root joint id
  std::shared_ptr<hyracks::JobHandle> job;
  std::vector<std::string> collect_locations;
  std::shared_ptr<ConnectionMetrics> metrics;
};

class CentralFeedManager : public hyracks::ClusterListener {
 public:
  CentralFeedManager(hyracks::ClusterController* cluster,
                     FeedCatalog* feeds, AdaptorRegistry* adaptors,
                     UdfRegistry* udfs, PolicyRegistry* policies,
                     storage::DatasetCatalog* datasets);
  ~CentralFeedManager() override;

  /// `connect feed <feed> to dataset <dataset> using policy <policy>`.
  [[nodiscard]] common::Status ConnectFeed(const std::string& feed,
                             const std::string& dataset,
                             const std::string& policy_name = "Basic",
                             ConnectOptions options = {});

  /// `disconnect feed <feed> from dataset <dataset>`. Graceful: already
  /// received records drain into the target dataset; dependent feeds keep
  /// flowing (partial dismantling when they exist).
  [[nodiscard]] common::Status DisconnectFeed(const std::string& feed,
                                const std::string& dataset);

  /// Metrics of the shared head section of a feed hierarchy (records
  /// collected from the external source, intake-side soft failures).
  std::shared_ptr<ConnectionMetrics> GetHeadMetrics(
      const std::string& root_feed) const;

  /// Metrics of an active (or terminated) connection.
  std::shared_ptr<ConnectionMetrics> GetMetrics(
      const std::string& feed, const std::string& dataset) const;

  /// Snapshot of a connection's runtime record.
  [[nodiscard]] common::Result<ConnectionInfo> GetConnection(
      const std::string& feed, const std::string& dataset) const;

  std::vector<std::string> ActiveConnectionIds() const;

  /// Lifecycle state of a connection's tail pipeline.
  enum class ConnectionHealth {
    kActive,     // tasks running
    kCompleted,  // finished cleanly (source exhausted / disconnected)
    kFailed,     // a task failed (e.g. Basic policy budget exhausted)
    kUnknown,    // no such connection
  };
  ConnectionHealth Health(const std::string& feed,
                          const std::string& dataset) const;

  /// True while the connection's tail has live tasks.
  bool IsConnected(const std::string& feed,
                   const std::string& dataset) const;

  // --- ClusterListener (the Chapter 6 protocol entry point) ---
  void OnClusterEvent(const hyracks::ClusterEvent& event) override;

  /// Appendix A's Feed Management Console, textual form: one block per
  /// connection listing the nodes at the intake/compute/store stages and
  /// the cumulative record counts.
  std::string DescribeFeeds() const;

  /// Starts/stops the congestion monitor (Elastic policy, Chapter 7).
  void StartMonitor(int64_t period_ms = 250);
  void StopMonitor();

  /// Exposed for tests/benches: force a rebuild of a connection with a
  /// new compute width (the elastic scale-out/in step).
  [[nodiscard]] common::Status Rescale(const std::string& feed,
                         const std::string& dataset, int new_width);

  std::shared_ptr<AckBus> ack_bus() const { return ack_bus_; }

 private:
  struct JointInfo {
    std::string id;
    std::string owning_connection;  // "" for head joints
    std::string op_name;            // producer operator in its job
    std::vector<std::string> locations;  // node of instance p
  };

  static std::string ConnId(const std::string& feed,
                            const std::string& dataset) {
    return feed + "->" + dataset;
  }

  // All Locked methods require mutex_ held.
  [[nodiscard]] common::Status BuildHeadLocked(const FeedDef& root,
                                 const std::vector<std::string>& locations)
      REQUIRES(mutex_);
  [[nodiscard]] common::Status BuildTailLocked(ConnectionInfo* conn) REQUIRES(mutex_);
  [[nodiscard]] common::Status ConnectFeedLocked(const std::string& feed,
                                   const std::string& dataset,
                                   const std::string& policy_name,
                                   ConnectOptions options) REQUIRES(mutex_);
  /// Dismantles a tail gracefully and releases its joints/head refs.
  [[nodiscard]] common::Status FullDisconnectLocked(ConnectionInfo* conn) REQUIRES(mutex_);
  void ReleaseHeadIfIdleLocked(const std::string& root_feed)
      REQUIRES(mutex_);
  /// Connections transitively sourcing from `conn` (rebuild closure).
  std::vector<ConnectionInfo*> DependentsLocked(const ConnectionInfo& conn)
      REQUIRES(mutex_);
  int CountActiveSubscribersLocked(const std::string& joint_id)
      REQUIRES(mutex_);

  /// Chapter 6: substitute `failed_node` and resurrect affected
  /// pipelines; terminates connections that lost a store partition.
  void HandleNodeFailureLocked(const std::string& failed_node)
      REQUIRES(mutex_);

  /// §6.2.3: when a failed store node rejoins (after log-based recovery
  /// of its partitions), feeds that terminated for lack of that
  /// partition are rescheduled.
  void HandleNodeRejoinLocked(const std::string& node_id)
      REQUIRES(mutex_);

  /// Stops a connection's tail (handoff/zombie state capture) and starts
  /// a revised tail. `substitute(node)` maps old locations to new.
  [[nodiscard]] common::Status RebuildTailLocked(
      ConnectionInfo* conn,
      const std::map<std::string, std::string>& substitutions,
      int new_compute_width) REQUIRES(mutex_);

  void TerminateConnectionLocked(ConnectionInfo* conn,
                                 const std::string& why) REQUIRES(mutex_);

  std::string PickSubstituteLocked(
      const std::set<std::string>& avoid) const REQUIRES(mutex_);

  void MonitorLoop(int64_t period_ms);

  hyracks::ClusterController* cluster_;
  FeedCatalog* feeds_;
  AdaptorRegistry* adaptors_;
  UdfRegistry* udfs_;
  PolicyRegistry* policies_;
  storage::DatasetCatalog* datasets_;
  std::shared_ptr<AckBus> ack_bus_ = std::make_shared<AckBus>();

  mutable common::Mutex mutex_{common::LockRank::kCentralFeedManager};
  std::map<std::string, ConnectionInfo> connections_ GUARDED_BY(mutex_);
  std::map<std::string, HeadSection> heads_ GUARDED_BY(mutex_);
  std::map<std::string, JointInfo> joints_ GUARDED_BY(mutex_);

  std::atomic<bool> monitoring_{false};
  std::thread monitor_thread_;
};

}  // namespace feeds
}  // namespace asterix

