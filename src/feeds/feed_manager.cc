#include "common/thread_annotations.h"
#include "feeds/feed_manager.h"

namespace asterix {
namespace feeds {

std::shared_ptr<FeedManager> FeedManager::Of(
    hyracks::NodeController* node) {
  return std::static_pointer_cast<FeedManager>(node->GetOrSetService(
      kServiceName, [node]() -> std::shared_ptr<void> {
        return std::make_shared<FeedManager>(node->id());
      }));
}

void FeedManager::RegisterJoint(std::shared_ptr<FeedJoint> joint) {
  common::MutexLock lock(mutex_);
  joints_[joint->id()] = std::move(joint);
}

std::shared_ptr<FeedJoint> FeedManager::LookupJoint(
    const std::string& id) const {
  common::MutexLock lock(mutex_);
  auto it = joints_.find(id);
  return it == joints_.end() ? nullptr : it->second;
}

void FeedManager::UnregisterJoint(const std::string& id) {
  common::MutexLock lock(mutex_);
  joints_.erase(id);
}

std::vector<std::string> FeedManager::JointIds() const {
  common::MutexLock lock(mutex_);
  std::vector<std::string> ids;
  for (const auto& [id, joint] : joints_) ids.push_back(id);
  return ids;
}

void FeedManager::SaveIntakeHandoff(const std::string& key,
                                    IntakeHandoff handoff) {
  common::MutexLock lock(mutex_);
  handoffs_[key] = std::move(handoff);
}

std::optional<FeedManager::IntakeHandoff> FeedManager::TakeIntakeHandoff(
    const std::string& key) {
  common::MutexLock lock(mutex_);
  auto it = handoffs_.find(key);
  if (it == handoffs_.end()) return std::nullopt;
  IntakeHandoff handoff = std::move(it->second);
  handoffs_.erase(it);
  return handoff;
}

void FeedManager::SaveZombieState(const std::string& key,
                                  std::vector<hyracks::FramePtr> frames) {
  common::MutexLock lock(mutex_);
  auto& slot = zombie_state_[key];
  for (auto& frame : frames) slot.push_back(std::move(frame));
}

std::vector<hyracks::FramePtr> FeedManager::TakeZombieState(
    const std::string& key) {
  common::MutexLock lock(mutex_);
  auto it = zombie_state_.find(key);
  if (it == zombie_state_.end()) return {};
  std::vector<hyracks::FramePtr> frames = std::move(it->second);
  zombie_state_.erase(it);
  return frames;
}

size_t FeedManager::zombie_state_count() const {
  common::MutexLock lock(mutex_);
  return zombie_state_.size();
}

}  // namespace feeds
}  // namespace asterix
