// The operators of a data ingestion pipeline (§5.3):
//  - FeedCollectOperator   head section: drives the adaptor, parses raw
//                          payloads to ADM, emits into the feed joint;
//  - FeedIntakeOperator    tail section head: subscribes to a co-located
//                          joint, forwards frames downstream, and owns the
//                          at-least-once tracking (§5.6);
//  - AssignOperator        compute stage: applies the (inlined) UDF chain;
//  - FeedStoreOperator     store stage: inserts into the local dataset
//                          partition, updates secondary indexes, acks.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "feeds/ack.h"
#include "feeds/adaptor.h"
#include "feeds/feed_manager.h"
#include "feeds/metrics.h"
#include "feeds/policy.h"
#include "feeds/subscriber.h"
#include "feeds/udf.h"
#include "hyracks/operator.h"

namespace asterix {
namespace feeds {

/// Shared knobs for the pipeline's operators, derived from the feed's
/// ingestion policy at connect time.
struct PipelineConfig {
  std::string connection_id;  // "<feed>-><dataset>"
  IngestionPolicy policy;
  std::shared_ptr<ConnectionMetrics> metrics;
  std::shared_ptr<AckBus> ack_bus;
  std::string spill_dir = "/tmp";
  size_t frame_records = 64;
};

/// --- head section -----------------------------------------------------
class FeedCollectOperator : public hyracks::Operator {
 public:
  FeedCollectOperator(std::shared_ptr<AdaptorFactory> factory,
                      AdaptorConfig config, std::string joint_id,
                      PipelineConfig pipeline);

  bool is_source() const override { return true; }
  [[nodiscard]] common::Status Open(hyracks::TaskContext* ctx) override;
  [[nodiscard]] common::Status Run(hyracks::TaskContext* ctx) override;
  [[nodiscard]] common::Status ProcessFrame(const hyracks::FramePtr&,
                              hyracks::TaskContext*) override {
    return common::Status::NotSupported("source operator");
  }

 private:
  std::shared_ptr<AdaptorFactory> factory_;
  const AdaptorConfig config_;
  const std::string joint_id_;
  PipelineConfig pipeline_;
  std::unique_ptr<FeedAdaptor> adaptor_;
  std::shared_ptr<FeedJoint> own_joint_;
  int64_t consecutive_soft_failures_ = 0;
};

/// --- tail section: intake ----------------------------------------------
class FeedIntakeOperator : public hyracks::Operator {
 public:
  /// `source_joint_id`: the co-located joint to subscribe to.
  FeedIntakeOperator(std::string source_joint_id, PipelineConfig pipeline);

  bool is_source() const override { return true; }
  [[nodiscard]] common::Status Open(hyracks::TaskContext* ctx) override;
  [[nodiscard]] common::Status Run(hyracks::TaskContext* ctx) override;
  [[nodiscard]] common::Status Close(hyracks::TaskContext* ctx) override;
  [[nodiscard]] common::Status ProcessFrame(const hyracks::FramePtr&,
                              hyracks::TaskContext*) override {
    return common::Status::NotSupported("source operator");
  }

  /// Fault-tolerance protocol signals:
  ///  "buffer"  — hold output in memory instead of forwarding;
  ///  "forward" — resume forwarding (flushing the held buffer);
  ///  "handoff" — save held + queued frames as zombie state and exit.
  void OnSignal(const std::string& signal) override;

  static constexpr const char* kSignalBuffer = "buffer";
  static constexpr const char* kSignalForward = "forward";
  static constexpr const char* kSignalHandoff = "handoff";

 private:
  enum class Mode { kForward, kBuffer, kHandoff };

  [[nodiscard]] common::Status ForwardFrame(const hyracks::FramePtr& frame,
                              hyracks::TaskContext* ctx);
  [[nodiscard]] common::Status ForwardTagged(const hyracks::FramePtr& frame,
                               const hyracks::TraceContext& tc,
                               hyracks::TaskContext* ctx);

  const std::string source_joint_id_;
  PipelineConfig pipeline_;
  std::shared_ptr<FeedManager> feed_manager_;
  std::shared_ptr<FeedJoint> source_joint_;
  std::shared_ptr<SubscriberQueue> queue_;
  std::atomic<Mode> mode_{Mode::kForward};
  std::vector<hyracks::FramePtr> held_;  // buffer-mode frames

  // At-least-once state.
  bool at_least_once_ = false;
  std::unique_ptr<PendingTracker> pending_;
  int64_t next_seq_ = 0;
  int64_t last_replay_check_ms_ = 0;
};

/// --- tail section: compute ----------------------------------------------
class AssignOperator : public hyracks::Operator {
 public:
  /// Applies `udfs` in order to every record (the inlined chain of
  /// Listing 5.6). Throws from UDFs escape to the MetaFeed sandbox.
  AssignOperator(std::vector<std::shared_ptr<Udf>> udfs,
                 PipelineConfig pipeline);

  [[nodiscard]] common::Status Open(hyracks::TaskContext* ctx) override;
  [[nodiscard]] common::Status ProcessFrame(const hyracks::FramePtr& frame,
                              hyracks::TaskContext* ctx) override;

 private:
  std::vector<std::shared_ptr<Udf>> udfs_;
  PipelineConfig pipeline_;
};

/// --- tail section: store -------------------------------------------------
class FeedStoreOperator : public hyracks::Operator {
 public:
  FeedStoreOperator(std::string dataset, PipelineConfig pipeline);

  [[nodiscard]] common::Status Open(hyracks::TaskContext* ctx) override;
  [[nodiscard]] common::Status ProcessFrame(const hyracks::FramePtr& frame,
                              hyracks::TaskContext* ctx) override;
  [[nodiscard]] common::Status Close(hyracks::TaskContext* ctx) override;

 private:
  const std::string dataset_;
  PipelineConfig pipeline_;
  storage::DatasetPartition* partition_ = nullptr;
  std::unique_ptr<AckCollector> acks_;
  // Cached registry histogram: end-to-end intake->store latency for
  // traced frames. Record() is lock-free.
  common::Histogram* e2e_latency_ = nullptr;
};

}  // namespace feeds
}  // namespace asterix

