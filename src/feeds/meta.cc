#include "feeds/meta.h"

#include "common/clock.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "feeds/trace.h"
#include "hyracks/node.h"

namespace asterix {
namespace feeds {

using adm::Value;
using common::Status;
using hyracks::FramePtr;
using hyracks::TaskContext;

Status MetaFeedOperator::Open(TaskContext* ctx) {
  RETURN_IF_ERROR(core_->Open(ctx));
  // Resurrect: take ownership of the unprocessed input a zombie
  // predecessor saved with the local Feed Manager (§6.2.2) and process it
  // before any new input — minimizing data loss from the failure.
  if (!options_.state_key_prefix.empty()) {
    auto fm = FeedManager::Of(ctx->node());
    std::string key = options_.state_key_prefix + ":" +
                      std::to_string(ctx->partition());
    auto frames = fm->TakeZombieState(key);
    for (const FramePtr& frame : frames) {
      RETURN_IF_ERROR(ProcessFrame(frame, ctx));
    }
    if (!frames.empty()) {
      LOG_MSG(kInfo) << "restored " << frames.size()
                     << " zombie frames for " << key;
    }
  }
  return Status::OK();
}

Status MetaFeedOperator::ProcessFrame(const FramePtr& frame,
                                      TaskContext* ctx) {
  ASTERIX_FAILPOINT("feeds.meta.process_frame");
  const hyracks::TraceContext tc = frame->trace();
  const int64_t start_us = tc.sampled() ? common::NowMicros() : 0;
  Status result = ProcessFrameSandboxed(frame, ctx);
  if (tc.sampled()) {
    // Primary span for this wrapped operator instance ("assign0",
    // "store", ...): the whole core call including soft-failure slicing.
    TraceSpan span;
    span.trace_id = tc.id;
    span.stage = ctx->operator_name();
    span.where = ctx->node_id();
    span.partition = ctx->partition();
    span.start_us = start_us;
    span.duration_us = common::NowMicros() - start_us;
    span.records = static_cast<int64_t>(frame->record_count());
    span.status = result.ok() ? "ok" : "error";
    Tracer::Instance().RecordSpan(std::move(span));
  }
  return result;
}

Status MetaFeedOperator::ProcessFrameSandboxed(const FramePtr& frame,
                                               TaskContext* ctx) {
  if (!options_.sandbox_soft_failures) {
    return core_->ProcessFrame(frame, ctx);
  }
  try {
    Status status = core_->ProcessFrame(frame, ctx);
    if (status.ok()) consecutive_failures_ = 0;
    return status;
  } catch (const std::exception& first) {
    // The frame contains at least one exception-generating record. The
    // paper slices the input frame past the offender and hands the
    // remnant back to the core operator; record-at-a-time reprocessing
    // below has identical semantics (every healthy record is processed
    // exactly once more, every offender is skipped and logged).
    for (const Value& record : frame->records()) {
      try {
        // Faults injected here hit the record-at-a-time remnant slice —
        // the second chance a record gets after a whole-frame failure.
        ASTERIX_FAILPOINT_THROW("feeds.meta.slice");
        RETURN_IF_ERROR(core_->ProcessFrame(
            hyracks::MakeFrame({record}, frame->trace()), ctx));
        consecutive_failures_ = 0;
      } catch (const std::exception& e) {
        ++soft_failures_;
        ++consecutive_failures_;
        if (options_.metrics != nullptr) {
          options_.metrics->soft_failures.fetch_add(1);
        }
        if (frame->trace().sampled()) {
          // Terminal detail span: this record left the pipeline here.
          TraceSpan span;
          span.trace_id = frame->trace().id;
          span.stage = "soft-failure";
          span.where = ctx->operator_name();
          span.partition = ctx->partition();
          span.start_us = common::NowMicros();
          span.records = 1;
          span.detail = true;
          span.status = "soft-failure";
          Tracer::Instance().RecordSpan(std::move(span));
        }
        LogSoftFailure(record, e.what(), ctx);
        if (consecutive_failures_ >
            options_.max_consecutive_soft_failures) {
          // A never-ending skip cycle indicates a bug or an invalid
          // assumption about the source; end the faulty feed (§6.1.2).
          return Status::Aborted(
              "feed exceeded " +
              std::to_string(options_.max_consecutive_soft_failures) +
              " consecutive soft failures: " + std::string(e.what()));
        }
      }
    }
    return Status::OK();
  }
}

void MetaFeedOperator::LogSoftFailure(const Value& record,
                                      const std::string& what,
                                      TaskContext* ctx) {
  // At minimum the exception and causing record go to the error log.
  LOG_MSG(kWarn) << "soft failure in " << ctx->operator_name() << "["
                 << ctx->partition() << "]: " << what
                 << " record=" << record.ToAdmString();
  if (!options_.log_to_dataset) return;
  // Optionally persist into a dedicated dataset for later diagnosis.
  auto* partition =
      ctx->node()->storage().GetPartition(options_.exception_dataset);
  if (partition == nullptr) return;
  Value entry = Value::Record({
      {"id", Value::String(ctx->node_id() + ":" + ctx->operator_name() +
                           ":" + std::to_string(ctx->partition()) + ":" +
                           std::to_string(exception_log_seq_++))},
      {"operator", Value::String(ctx->operator_name())},
      {"partition", Value::Int64(ctx->partition())},
      {"message", Value::String(what)},
      {"record", Value::String(record.ToAdmString())},
      {"at", Value::Datetime(common::NowMillis())},
  });
  Status insert_status = partition->Insert(entry);
  if (!insert_status.ok()) {
    // The record already went to the error log above; failing to ALSO
    // persist it into the exception dataset must not cascade into the
    // soft-failure path that is reporting it.
    LOG_MSG(kWarn) << "exception-dataset insert failed: "
                   << insert_status.message();
  }
}

std::unique_ptr<hyracks::Operator> WrapWithMetaFeed(
    std::unique_ptr<hyracks::Operator> core, const IngestionPolicy& policy,
    std::string state_key_prefix,
    std::shared_ptr<ConnectionMetrics> metrics) {
  MetaFeedOptions options;
  options.sandbox_soft_failures = policy.recover_soft_failure();
  options.max_consecutive_soft_failures =
      policy.max_consecutive_soft_failures();
  options.log_to_dataset = policy.log_soft_failures_to_dataset();
  options.state_key_prefix = std::move(state_key_prefix);
  options.metrics = std::move(metrics);
  return std::make_unique<MetaFeedOperator>(std::move(core),
                                            std::move(options));
}

}  // namespace feeds
}  // namespace asterix
