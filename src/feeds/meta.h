// MetaFeedOperator (§6.1, §6.2.4): a wrapper that mimics its enclosed
// "core" operator's interface while adding fault-tolerance behaviour —
// keeping data concerns separate from failure concerns (Separation of
// Concerns). It sandboxes runtime exceptions (soft failures), logs them,
// bounds consecutive skips, and restores zombie state left behind by a
// predecessor instance after a hard failure.
#pragma once

#include <memory>
#include <string>

#include "feeds/feed_manager.h"
#include "feeds/metrics.h"
#include "feeds/policy.h"
#include "hyracks/operator.h"

namespace asterix {
namespace feeds {

struct MetaFeedOptions {
  /// Catch exceptions per record and continue (recover.soft.failure).
  bool sandbox_soft_failures = true;
  /// End the feed after this many consecutive skipped records.
  int64_t max_consecutive_soft_failures = 64;
  /// Additionally persist exception details into the dataset below.
  bool log_to_dataset = false;
  std::string exception_dataset = "FeedExceptions";
  /// Zombie-state key ("<connection>:<operator>:<partition-suffix added
  /// at Open>"); empty disables state restoration.
  std::string state_key_prefix;
  std::shared_ptr<ConnectionMetrics> metrics;
};

class MetaFeedOperator : public hyracks::Operator {
 public:
  MetaFeedOperator(std::unique_ptr<hyracks::Operator> core,
                   MetaFeedOptions options)
      : core_(std::move(core)), options_(std::move(options)) {}

  bool is_source() const override { return core_->is_source(); }
  [[nodiscard]] common::Status Open(hyracks::TaskContext* ctx) override;
  [[nodiscard]] common::Status Run(hyracks::TaskContext* ctx) override {
    return core_->Run(ctx);
  }
  [[nodiscard]] common::Status ProcessFrame(const hyracks::FramePtr& frame,
                              hyracks::TaskContext* ctx) override;
  [[nodiscard]] common::Status Close(hyracks::TaskContext* ctx) override {
    return core_->Close(ctx);
  }
  void OnSignal(const std::string& signal) override {
    core_->OnSignal(signal);
  }

  hyracks::Operator* core() { return core_.get(); }
  int64_t soft_failures() const { return soft_failures_; }

 private:
  [[nodiscard]] common::Status ProcessFrameSandboxed(const hyracks::FramePtr& frame,
                                       hyracks::TaskContext* ctx);
  void LogSoftFailure(const adm::Value& record, const std::string& what,
                      hyracks::TaskContext* ctx);

  std::unique_ptr<hyracks::Operator> core_;
  MetaFeedOptions options_;
  int64_t soft_failures_ = 0;
  int64_t consecutive_failures_ = 0;
  int64_t exception_log_seq_ = 0;
};

/// Convenience factory wrapping `core` according to `policy`.
std::unique_ptr<hyracks::Operator> WrapWithMetaFeed(
    std::unique_ptr<hyracks::Operator> core, const IngestionPolicy& policy,
    std::string state_key_prefix,
    std::shared_ptr<ConnectionMetrics> metrics);

}  // namespace feeds
}  // namespace asterix

