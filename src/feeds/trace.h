// Per-frame trace spans across the feed cascade (§7 observability).
//
// A trace is born when a source (or the intake, for frames arriving
// untraced) stamps a `hyracks::TraceContext` onto a frame. Hooks along the
// path — subscriber delivery, queue residency, the intake forward, each
// MetaFeed-wrapped operator, joints, UDF application, the store — record
// `TraceSpan`s describing where the frame spent its time. Every span's
// duration also lands in the process-wide MetricsRegistry histogram
// `feed_stage_latency_us{stage=...}`, so per-stage latency is visible even
// with the ring disabled.
//
// Span taxonomy:
//   * Primary spans tile a frame's path disjointly: "source" (adaptor
//     fetch + joint routing + delivery), "queue" (subscriber queue
//     residency), "intake", then one span per MetaFeed-wrapped operator
//     ("assign0"..., "store"). Their durations sum to ≈ end-to-end minus
//     task-queue hand-off gaps.
//   * Detail spans nest inside primaries and overlap them: "joint",
//     "udf", and the terminal/diagnostic spans "soft-failure", "replay",
//     "discarded", "throttled", "spilled".
//
// Cost discipline: with sampling off, StartTrace() is one relaxed atomic
// load and every downstream hook guards on `frame->trace().id == 0` (a
// plain member read). RecordSpan must never be called while holding a
// queue/joint/connection mutex (it takes the tracer mutex and, on a new
// stage, the registry mutex) — hooks collect span data under their locks
// and record after unlocking.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/mem_governor.h"
#include "common/observability.h"
#include "common/thread_annotations.h"
#include "hyracks/frame.h"

namespace asterix {
namespace feeds {

struct TraceSpan {
  uint64_t trace_id = 0;
  std::string stage;       // "source", "queue", "intake", "assign0", ...
  std::string where;       // joint id / queue name / operator detail
  int partition = -1;
  int64_t start_us = 0;    // steady-clock micros
  int64_t duration_us = 0;
  int64_t records = 0;
  bool detail = false;     // detail spans overlap primaries
  std::string status = "ok";
};

/// Process-wide trace collector. Sampling rate 0 (the default) disables
/// tracing entirely; 1.0 samples every frame. Sampled spans go into a
/// bounded in-memory ring, dumpable as JSON for debugging stuck
/// pipelines.
class Tracer {
 public:
  static Tracer& Instance();

  /// [0, 1]; 0 disables. Applies to traces started after the call.
  void SetSamplingRate(double rate);
  double sampling_rate() const;

  /// One relaxed load; true iff some frames are being sampled.
  // relaxed: standalone tuning knob (see SetSamplingRate).
  bool enabled() const {
    return sampling_permille_.load(std::memory_order_relaxed) > 0;
  }

  /// Mints a trace for a new frame, or a zero (unsampled) context when
  /// tracing is off or this frame loses the sampling draw.
  hyracks::TraceContext StartTrace();

  /// Records a span into the ring and its duration into the registry
  /// histogram `feed_stage_latency_us{stage=<stage>}`. Callers guard on
  /// span.trace_id != 0. Takes the tracer mutex — never call under a
  /// pipeline lock.
  void RecordSpan(TraceSpan span);

  /// Ring capacity in spans (default 64K). Shrinking drops oldest. The
  /// capacity's worst-case bytes are charged against the governor's
  /// "span_ring" pool (tracing must proceed, so an over-capacity resize
  /// is taken as a counted overdraft rather than an error).
  void SetRingCapacity(size_t capacity);

  std::vector<TraceSpan> Spans() const;
  std::vector<TraceSpan> SpansForTrace(uint64_t trace_id) const;

  /// Ids handed out by StartTrace since the last Reset, oldest first
  /// (bounded by the ring capacity).
  std::vector<uint64_t> StartedTraceIds() const;
  int64_t traces_started() const {
    // relaxed: monitoring read of a stats counter.
    return traces_started_.load(std::memory_order_relaxed);
  }

  /// Recent span trees as JSON: traces grouped by id, spans sorted by
  /// start time, newest traces last. At most `max_traces` trees.
  std::string DumpJson(size_t max_traces = 16) const;

  /// Clears spans, started ids and counters; keeps rate and capacity.
  void Reset();

 private:
  Tracer();

  common::Histogram* StageHistogramLocked(const std::string& stage)
      REQUIRES(mutex_);
  /// Trues the "span_ring" pool charge up/down to the current capacity's
  /// worst-case bytes (capacity * sizeof(TraceSpan)).
  void RechargeRingLocked() REQUIRES(mutex_);

  std::atomic<int> sampling_permille_{0};
  std::atomic<uint64_t> next_id_{1};
  std::atomic<int64_t> traces_started_{0};
  std::atomic<uint64_t> sample_counter_{0};  // fractional-rate stride

  // Resolved once at construction (Default() governor's "span_ring"
  // pool); reserve/release are lock-free, safe under mutex_.
  common::MemPool* span_pool_ = nullptr;

  mutable common::Mutex mutex_{common::LockRank::kTracer};
  size_t ring_capacity_ GUARDED_BY(mutex_) = 64 * 1024;
  /// Bytes currently charged against span_pool_ for the ring bound.
  size_t ring_charged_ GUARDED_BY(mutex_) = 0;
  std::deque<TraceSpan> ring_ GUARDED_BY(mutex_);
  std::deque<uint64_t> started_ids_ GUARDED_BY(mutex_);
  // stage -> cached registry histogram (stable pointers).
  std::map<std::string, common::Histogram*> stage_histograms_
      GUARDED_BY(mutex_);
};

}  // namespace feeds
}  // namespace asterix

