#include "feeds/subscriber.h"

#include <algorithm>
#include <vector>

#include "adm/parser.h"
#include "common/clock.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/strings.h"
#include "feeds/trace.h"

namespace asterix {
namespace feeds {

using common::Status;
using hyracks::FramePtr;

void DataBucket::Consume() {
  if (pending_.fetch_sub(1) == 1) {
    pool_->Return(this);
  }
}

DataBucketPool::~DataBucketPool() {
  common::MutexLock lock(mutex_);
  for (DataBucket* bucket : free_) delete bucket;
}

DataBucket* DataBucketPool::Get(FramePtr frame, int consumers) {
  DataBucket* bucket = nullptr;
  {
    common::MutexLock lock(mutex_);
    if (!free_.empty()) {
      bucket = free_.front();
      free_.pop_front();
      reuses_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (bucket == nullptr) {
    bucket = new DataBucket();
    allocations_.fetch_add(1, std::memory_order_relaxed);
  }
  bucket->frame_ = std::move(frame);
  bucket->pending_.store(consumers);
  bucket->pool_ = this;
  return bucket;
}

void DataBucketPool::Return(DataBucket* bucket) {
  bucket->frame_.reset();
  common::MutexLock lock(mutex_);
  free_.push_back(bucket);
}

SubscriberQueue::SubscriberQueue(SubscriberOptions options, uint64_t seed)
    : options_(std::move(options)), rng_(seed) {
  spill_path_ = options_.spill_dir + "/" + options_.name + "." +
                std::to_string(common::NowMicros()) + ".spill";
}

SubscriberQueue::~SubscriberQueue() {
  common::MutexLock lock(mutex_);
  for (Entry& e : entries_) {
    if (e.bucket != nullptr) e.bucket->Consume();
  }
  entries_.clear();
  if (spill_file_ != nullptr) {
    std::fclose(spill_file_);
    std::remove(spill_path_.c_str());
  }
}

FramePtr SubscriberQueue::SampleFrame(const FramePtr& frame,
                                      double keep_probability) {
  std::vector<adm::Value> kept;
  for (const adm::Value& record : frame->records()) {
    if (rng_.Chance(keep_probability)) {
      kept.push_back(record);
    } else {
      ++stats_.records_throttled_away;
    }
  }
  if (kept.empty()) return nullptr;
  return hyracks::MakeFrame(std::move(kept), frame->trace());
}

void SubscriberQueue::SpillLocked(const FramePtr& frame) {
  if (spill_file_ == nullptr) {
    spill_file_ = std::fopen(spill_path_.c_str(), "w+b");
    if (spill_file_ == nullptr) {
      failed_.store(true);
      failure_ = Status::IOError("cannot open spill file " + spill_path_);
      return;
    }
  }
  std::string payload;
  for (const adm::Value& record : frame->records()) {
    payload += record.ToAdmString();
    payload.push_back('\n');
  }
  std::fseek(spill_file_, 0, SEEK_END);
  uint32_t len = static_cast<uint32_t>(payload.size());
  std::fwrite(&len, sizeof(len), 1, spill_file_);
  std::fwrite(payload.data(), 1, payload.size(), spill_file_);
  ++spill_pending_frames_;
  ++stats_.frames_spilled;
  stats_.bytes_spilled += static_cast<int64_t>(payload.size());
}

bool SubscriberQueue::RestoreFromSpillLocked() {
  if (spill_pending_frames_ == 0 || spill_file_ == nullptr) return false;
  std::fflush(spill_file_);
  std::fseek(spill_file_, spill_read_offset_, SEEK_SET);
  // Restore a small batch per call so memory stays bounded.
  int restored = 0;
  while (spill_pending_frames_ > 0 && restored < 8) {
    uint32_t len = 0;
    if (std::fread(&len, sizeof(len), 1, spill_file_) != 1) break;
    std::string payload(len, '\0');
    if (len > 0 && std::fread(payload.data(), 1, len, spill_file_) != len) {
      break;
    }
    spill_read_offset_ += static_cast<int64_t>(sizeof(len)) + len;
    std::vector<adm::Value> records;
    for (const std::string& line : common::SplitAndTrim(payload, '\n')) {
      if (line.empty()) continue;
      auto parsed = adm::ParseAdm(line);
      if (parsed.ok()) records.push_back(std::move(*parsed));
    }
    --spill_pending_frames_;
    ++stats_.frames_restored;
    ++restored;
    if (!records.empty()) {
      FramePtr frame = hyracks::MakeFrame(std::move(records));
      pending_bytes_ += static_cast<int64_t>(frame->ApproxBytes());
      entries_.push_back({std::move(frame), nullptr});
    }
  }
  if (spill_pending_frames_ == 0) {
    // Fully drained: reclaim the file so a later burst starts fresh.
    std::fclose(spill_file_);
    std::remove(spill_path_.c_str());
    spill_file_ = nullptr;
    spill_read_offset_ = 0;
  }
  return restored > 0;
}

void SubscriberQueue::Deliver(FramePtr frame, DataBucket* bucket) {
  // Delay action = a stalled subscriber back-pressuring the joint.
  // Deliberately before the lock so a stall never blocks Next() readers.
  ASTERIX_FAILPOINT_HIT("feeds.subscriber.deliver");
  const hyracks::TraceContext tc = frame->trace();
  TraceSpan span;
  const bool traced = tc.sampled();
  if (traced) {
    // The "source" primary span covers everything from trace birth at the
    // adaptor to arrival in this queue (fetch, batching, joint routing).
    span.trace_id = tc.id;
    span.where = options_.name;
    span.start_us = tc.start_us;
    span.duration_us = common::NowMicros() - tc.start_us;
    span.records = static_cast<int64_t>(frame->record_count());
  }
  {
    common::MutexLock lock(mutex_);
    DeliverLocked(std::move(frame), bucket, traced ? &span : nullptr);
  }
  // Recorded after unlocking: RecordSpan takes the tracer (and possibly
  // registry) mutex, which a Snapshot() provider holds around this
  // queue's mutex.
  if (traced && !span.stage.empty()) {
    Tracer::Instance().RecordSpan(std::move(span));
  }
}

void SubscriberQueue::DeliverLocked(FramePtr frame, DataBucket* bucket,
                                    TraceSpan* span) {
  auto consume = [&] {
    if (bucket != nullptr) bucket->Consume();
  };
  auto outcome = [&](const char* stage, const char* status) {
    if (span != nullptr) {
      span->stage = stage;
      span->status = status;
      span->detail = true;  // terminal drop spans don't tile the path
    }
  };
  if (ended_) {
    consume();
    outcome("discarded", "ended");
    return;
  }
  int64_t frame_bytes = static_cast<int64_t>(frame->ApproxBytes());
  bool over_budget =
      pending_bytes_ + frame_bytes > options_.memory_budget_bytes;

  auto append = [&](FramePtr f, DataBucket* b) {
    pending_bytes_ += static_cast<int64_t>(f->ApproxBytes());
    stats_.peak_pending_bytes =
        std::max(stats_.peak_pending_bytes, pending_bytes_);
    ++stats_.frames_delivered;
    stats_.records_delivered += static_cast<int64_t>(f->record_count());
    if (span != nullptr) {
      span->stage = "source";
      span->status = "ok";
      span->detail = false;
      span->records = static_cast<int64_t>(f->record_count());
    }
    Entry entry;
    entry.frame = std::move(f);
    entry.bucket = b;
    if (span != nullptr) entry.deliver_us = common::NowMicros();
    entries_.push_back(std::move(entry));
    not_empty_.NotifyOne();
  };

  if (throttling_) {
    // Spill-overflow fallback: regulate the inflow by sampling.
    FramePtr sampled = SampleFrame(frame, 0.5);
    consume();
    if (sampled != nullptr) {
      append(std::move(sampled), nullptr);
    } else {
      outcome("throttled", "throttled");
    }
    return;
  }

  switch (options_.mode) {
    case ExcessMode::kBlock:
    case ExcessMode::kElastic: {
      // Basic: buffer in memory. Exhausting the budget terminates the
      // feed (§4.5). Elastic buffers the same way while the system
      // re-structures the pipeline; the budget is its headroom.
      if (over_budget && options_.mode == ExcessMode::kBlock) {
        failed_.store(true);
        failure_ = Status::ResourceExhausted(
            "feed '" + options_.name + "' exhausted its memory budget (" +
            std::to_string(options_.memory_budget_bytes) + " bytes)");
        consume();
        outcome("discarded", "error");
        not_empty_.NotifyAll();
        return;
      }
      append(std::move(frame), bucket);
      return;
    }
    case ExcessMode::kSpill: {
      if (over_budget || spill_pending_frames_ > 0) {
        if (stats_.bytes_spilled >= options_.max_spill_bytes) {
          if (options_.throttle_after_spill) {
            throttling_ = true;
            LOG_MSG(kWarn) << options_.name
                           << ": spill budget exhausted; throttling";
            FramePtr sampled = SampleFrame(frame, 0.5);
            consume();
            if (sampled != nullptr) {
              append(std::move(sampled), nullptr);
            } else {
              outcome("throttled", "throttled");
            }
          } else {
            failed_.store(true);
            failure_ = Status::ResourceExhausted(
                "feed '" + options_.name + "' exhausted its spill budget");
            consume();
            outcome("discarded", "error");
            not_empty_.NotifyAll();
          }
          return;
        }
        SpillLocked(frame);
        consume();
        // The spill file stores raw records; the trace does not survive
        // the round-trip, so this span is the trace's terminal.
        outcome("spilled", "spilled");
        not_empty_.NotifyOne();
        return;
      }
      append(std::move(frame), bucket);
      return;
    }
    case ExcessMode::kDiscard: {
      // Hysteresis per §4.5: once the budget is hit, excess records are
      // discarded ALTOGETHER until the existing backlog clears — the
      // "periods of discontinuity" of Figure 7.9.
      if (discarding_ && pending_bytes_ <= options_.memory_budget_bytes / 4) {
        discarding_ = false;
      }
      if (over_budget) discarding_ = true;
      if (discarding_) {
        stats_.records_discarded +=
            static_cast<int64_t>(frame->record_count());
        consume();
        outcome("discarded", "discarded");
        return;
      }
      append(std::move(frame), bucket);
      return;
    }
    case ExcessMode::kThrottle: {
      // Adaptive sampling: the fuller the queue, the lower the keep
      // probability, regulating the effective arrival rate.
      double keep = ThrottleKeepProbability(pending_bytes_, frame_bytes,
                                            options_.memory_budget_bytes);
      if (keep < 1.0) {
        FramePtr sampled = SampleFrame(frame, keep);
        consume();
        if (sampled != nullptr) {
          append(std::move(sampled), nullptr);
        } else {
          outcome("throttled", "throttled");
        }
        return;
      }
      append(std::move(frame), bucket);
      return;
    }
  }
}

void SubscriberQueue::DeliverEnd() {
  common::MutexLock lock(mutex_);
  ended_ = true;
  not_empty_.NotifyAll();
}

void SubscriberQueue::RecordQueueSpan(const Entry& entry,
                                      int64_t pop_us) const {
  // Called after mutex_ is released. The "queue" primary span covers the
  // frame's residency in this subscriber queue.
  TraceSpan span;
  span.trace_id = entry.frame->trace().id;
  span.stage = "queue";
  span.where = options_.name;
  span.start_us = entry.deliver_us;
  span.duration_us = pop_us - entry.deliver_us;
  span.records = static_cast<int64_t>(entry.frame->record_count());
  Tracer::Instance().RecordSpan(std::move(span));
}

std::optional<FramePtr> SubscriberQueue::Next(int64_t timeout_ms) {
  Entry entry;
  {
    common::MutexLock lock(mutex_);
    bool ready = not_empty_.WaitFor(
        mutex_, std::chrono::milliseconds(timeout_ms),
        [this]() REQUIRES(mutex_) {
          return !entries_.empty() || spill_pending_frames_ > 0 || ended_ ||
                 failed_.load();
        });
    if (!ready) return std::nullopt;
    if (entries_.empty() && spill_pending_frames_ > 0) {
      RestoreFromSpillLocked();
    }
    if (entries_.empty()) return std::nullopt;  // ended or failed
    entry = std::move(entries_.front());
    entries_.pop_front();
    pending_bytes_ -= static_cast<int64_t>(entry.frame->ApproxBytes());
    if (entry.bucket != nullptr) entry.bucket->Consume();
  }
  // Span recording stays outside the lock: the tracer mutex must never
  // nest inside a queue mutex (see Deliver()).
  if (entry.deliver_us != 0 && entry.frame->trace().sampled()) {
    RecordQueueSpan(entry, common::NowMicros());
  }
  return entry.frame;
}

std::vector<FramePtr> SubscriberQueue::NextBatch(int64_t timeout_ms,
                                                 size_t max_frames) {
  std::vector<FramePtr> batch;
  std::vector<Entry> popped;
  {
    common::MutexLock lock(mutex_);
    bool ready = not_empty_.WaitFor(
        mutex_, std::chrono::milliseconds(timeout_ms),
        [this]() REQUIRES(mutex_) {
          return !entries_.empty() || spill_pending_frames_ > 0 || ended_ ||
                 failed_.load();
        });
    if (!ready) return batch;
    if (entries_.empty() && spill_pending_frames_ > 0) {
      RestoreFromSpillLocked();
    }
    while (!entries_.empty() && batch.size() < max_frames) {
      Entry entry = std::move(entries_.front());
      entries_.pop_front();
      pending_bytes_ -= static_cast<int64_t>(entry.frame->ApproxBytes());
      if (entry.bucket != nullptr) entry.bucket->Consume();
      batch.push_back(entry.frame);
      if (entry.deliver_us != 0 && entry.frame->trace().sampled()) {
        popped.push_back(std::move(entry));
      }
    }
  }
  if (!popped.empty()) {
    int64_t pop_us = common::NowMicros();
    for (const Entry& entry : popped) RecordQueueSpan(entry, pop_us);
  }
  return batch;
}

bool SubscriberQueue::ended() const {
  common::MutexLock lock(mutex_);
  return ended_ && entries_.empty() && spill_pending_frames_ == 0;
}

common::Status SubscriberQueue::failure() const {
  common::MutexLock lock(mutex_);
  return failure_;
}

SubscriberStats SubscriberQueue::stats() const {
  common::MutexLock lock(mutex_);
  return stats_;
}

int64_t SubscriberQueue::pending_bytes() const {
  common::MutexLock lock(mutex_);
  return pending_bytes_;
}

size_t SubscriberQueue::pending_frames() const {
  common::MutexLock lock(mutex_);
  return entries_.size() + static_cast<size_t>(spill_pending_frames_);
}

}  // namespace feeds
}  // namespace asterix
