#include "feeds/subscriber.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "adm/parser.h"
#include "common/clock.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/strings.h"
#include "feeds/trace.h"

namespace asterix {
namespace feeds {

using common::Status;
using hyracks::FramePtr;

void DataBucket::Consume() {
  if (pending_.fetch_sub(1) == 1) {
    pool_->Return(this);
  }
}

DataBucketPool::~DataBucketPool() {
  common::MutexLock lock(mutex_);
  for (DataBucket* bucket : free_) delete bucket;
}

DataBucket* DataBucketPool::Get(FramePtr frame, int consumers) {
  DataBucket* bucket = nullptr;
  {
    common::MutexLock lock(mutex_);
    if (!free_.empty()) {
      bucket = free_.front();
      free_.pop_front();
      // relaxed: stats counter; the pool list itself is under mutex_.
      reuses_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (bucket == nullptr) {
    bucket = new DataBucket();
    // relaxed: stats counter; orders nothing.
    allocations_.fetch_add(1, std::memory_order_relaxed);
  }
  bucket->frame_ = std::move(frame);
  bucket->pending_.store(consumers);
  bucket->pool_ = this;
  return bucket;
}

void DataBucketPool::Return(DataBucket* bucket) {
  bucket->frame_.reset();
  common::MutexLock lock(mutex_);
  free_.push_back(bucket);
}

SubscriberQueue::SubscriberQueue(SubscriberOptions options, uint64_t seed)
    : options_(std::move(options)),
      mem_pool_(options_.memory_pool != nullptr
                    ? options_.memory_pool
                    : common::MemGovernor::Default().GetPool(
                          common::MemGovernor::kFramePathPool)),
      spill_pool_(options_.spill_pool != nullptr
                      ? options_.spill_pool
                      : common::MemGovernor::Default().GetPool(
                            common::MemGovernor::kSpillPool)),
      ring_(options_.ring_frames),
      rng_(seed) {
  spill_path_ = options_.spill_dir + "/" + options_.name + "." +
                std::to_string(common::NowMicros()) + ".spill";
}

SubscriberQueue::~SubscriberQueue() {
  // No concurrent producers/consumers by now (shared_ptr ownership).
  // RetireEntry (not a bare bucket Consume) so the governor charge for
  // every still-buffered frame is returned.
  for (Entry& e : ring_.TryPopAll()) {
    RetireEntry(e);
  }
  common::MutexLock lock(mutex_);
  for (Entry& e : overflow_) {
    RetireEntry(e);
  }
  overflow_.clear();
  if (spill_file_ != nullptr) {
    std::fclose(spill_file_);
    std::remove(spill_path_.c_str());
  }
  if (spill_pool_ != nullptr && spill_charged_ > 0) {
    spill_pool_->Release(static_cast<size_t>(spill_charged_));
    spill_charged_ = 0;
  }
}

FramePtr SubscriberQueue::SampleFrame(const FramePtr& frame,
                                      double keep_probability) {
  std::vector<adm::Value> kept;
  for (const adm::Value& record : frame->records()) {
    if (rng_.Chance(keep_probability)) {
      kept.push_back(record);
    } else {
      ++stats_.records_throttled_away;
    }
  }
  if (kept.empty()) return nullptr;
  return hyracks::MakeFrame(std::move(kept), frame->trace());
}

void SubscriberQueue::SpillLocked(const FramePtr& frame) {
  // A prior spill I/O failure is terminal: appending after a torn record
  // would misframe everything behind it.
  // relaxed: read under mutex_, which every failed_ writer also holds.
  if (failed_.load(std::memory_order_relaxed)) return;
  if (spill_file_ == nullptr) {
    spill_file_ = std::fopen(spill_path_.c_str(), "w+b");
    if (spill_file_ == nullptr) {
      failed_.store(true);
      failure_ = Status::IOError("cannot open spill file " + spill_path_);
      return;
    }
  }
  std::string payload;
  for (const adm::Value& record : frame->records()) {
    payload += record.ToAdmString();
    payload.push_back('\n');
  }
  std::fseek(spill_file_, 0, SEEK_END);
  uint32_t len = static_cast<uint32_t>(payload.size());
  if (std::fwrite(&len, sizeof(len), 1, spill_file_) != 1 ||
      std::fwrite(payload.data(), 1, payload.size(), spill_file_) !=
          payload.size()) {
    // Short write (disk full, I/O error): the record is unrecoverable
    // and must NOT be counted — spill_pending_frames_ only tracks
    // frames the restore path can actually read back; a ghost count
    // would make the consumer retry the restore forever.
    failed_.store(true);
    if (failure_.ok()) {
      failure_ =
          Status::IOError("short write to spill file " + spill_path_);
    }
    return;
  }
  spill_pending_frames_.fetch_add(1, std::memory_order_release);
  ++stats_.frames_spilled;
  stats_.bytes_spilled += static_cast<int64_t>(payload.size());
  if (spill_pool_ != nullptr) {
    // Charge the actual on-disk bytes. Forced: admission control already
    // ran on the caller's frame-byte estimate (DeliverLocked's spill
    // lease); the serialized payload may differ slightly, and a written
    // record must be accounted either way.
    const size_t on_disk = sizeof(len) + payload.size();
    spill_pool_->ForceReserve(on_disk);
    spill_charged_ += static_cast<int64_t>(on_disk);
  }
}

bool SubscriberQueue::RestoreFromSpillLocked() {
  // relaxed: every spill-counter write happens under mutex_ (held
  // here), so mutual exclusion already orders these reads; the release
  // on the writes exists for NextBatch's lock-free acquire probes.
  if (spill_pending_frames_.load(std::memory_order_relaxed) == 0 ||
      spill_file_ == nullptr) {
    return false;
  }
  std::fflush(spill_file_);
  std::fseek(spill_file_, spill_read_offset_, SEEK_SET);
  // Restore a small batch per call so memory stays bounded.
  int restored = 0;
  bool torn = false;
  // relaxed: under mutex_ (see above).
  while (spill_pending_frames_.load(std::memory_order_relaxed) > 0 &&
         restored < 8) {
    uint32_t len = 0;
    if (std::fread(&len, sizeof(len), 1, spill_file_) != 1) {
      torn = true;
      break;
    }
    std::string payload(len, '\0');
    if (len > 0 && std::fread(payload.data(), 1, len, spill_file_) != len) {
      torn = true;
      break;
    }
    spill_read_offset_ += static_cast<int64_t>(sizeof(len)) + len;
    std::vector<adm::Value> records;
    for (const std::string& line : common::SplitAndTrim(payload, '\n')) {
      if (line.empty()) continue;
      auto parsed = adm::ParseAdm(line);
      if (parsed.ok()) records.push_back(std::move(*parsed));
    }
    spill_pending_frames_.fetch_sub(1, std::memory_order_release);
    ++stats_.frames_restored;
    ++restored;
    if (!records.empty()) {
      Entry entry;
      entry.frame = hyracks::MakeFrame(std::move(records));
      // relaxed: budget gauge — RMWs keep it conserved and no payload
      // is published through it (frames travel via the ring/overflow).
      pending_bytes_.fetch_add(
          static_cast<int64_t>(entry.frame->ApproxBytes()),
          std::memory_order_relaxed);
      if (mem_pool_ != nullptr) {
        // Forced: the restore path must drain the spill file even under
        // a starved governor (a refusal here would livelock replenish);
        // the overdraft is counted and visible.
        mem_pool_->ForceReserve(entry.frame->ApproxBytes());
      }
      EnqueueEntryLocked(std::move(entry));
    }
  }
  // relaxed: under mutex_ (see above); also applies to the log read.
  if (torn && restored == 0 &&
      spill_pending_frames_.load(std::memory_order_relaxed) > 0) {
    // The counter claims frames the file cannot yield (truncated or
    // torn by a failed write). Every write the counter accounts for
    // completed under this mutex before the increment, so no more bytes
    // can ever appear: a zero-progress pass is permanent, and leaving
    // the count nonzero would make NextBatch's replenish path retry
    // this restore forever. Reconcile the count and surface the I/O
    // error as the queue's terminal state.
    LOG_MSG(kWarn) << options_.name << ": spill file " << spill_path_
                   << " unreadable; "
                   // relaxed: under mutex_ (see function head).
                   << spill_pending_frames_.load(std::memory_order_relaxed)
                   << " frame(s) lost";
    failed_.store(true);
    if (failure_.ok()) {
      failure_ = Status::IOError("spill file truncated or unreadable: " +
                                 spill_path_);
    }
    spill_pending_frames_.store(0, std::memory_order_release);
  }
  // relaxed: under mutex_ (see above).
  if (spill_pending_frames_.load(std::memory_order_relaxed) == 0) {
    // Fully drained (or reconciled): reclaim the file so a later burst
    // starts fresh, and return its governor charge.
    std::fclose(spill_file_);
    std::remove(spill_path_.c_str());
    spill_file_ = nullptr;
    spill_read_offset_ = 0;
    if (spill_pool_ != nullptr && spill_charged_ > 0) {
      spill_pool_->Release(static_cast<size_t>(spill_charged_));
      spill_charged_ = 0;
    }
  }
  return restored > 0;
}

void SubscriberQueue::RetireEntry(const Entry& entry) {
  const size_t frame_bytes = entry.frame->ApproxBytes();
  // relaxed: budget gauge (see RestoreFromSpillLocked) — the RMW keeps
  // conservation; admission tolerates one-frame staleness.
  pending_bytes_.fetch_sub(static_cast<int64_t>(frame_bytes),
                           std::memory_order_relaxed);
  // Mirror of the charge taken where pending_bytes_ was incremented
  // (DeliverLocked's append / the spill-restore path): the governor's
  // view of this queue is exactly its pending bytes.
  if (mem_pool_ != nullptr) mem_pool_->Release(frame_bytes);
  if (entry.bucket != nullptr) entry.bucket->Consume();
}

void SubscriberQueue::EnqueueEntryLocked(Entry entry) {
  if (options_.mode == ExcessMode::kDiscard) {
    // Newest-wins ring: a full ring displaces the OLDEST queued frame
    // (the paper's Discard policy values fresh data; the byte-budget
    // hysteresis in DeliverLocked is the primary drop mechanism, this is
    // the bounded-ring backstop). The displaced frame's records count as
    // discarded even though they were once counted delivered.
    std::optional<Entry> displaced;
    ring_.Push(std::move(entry), &displaced);
    if (displaced.has_value()) {
      stats_.records_discarded +=
          static_cast<int64_t>(displaced->frame->record_count());
      RetireEntry(*displaced);
    }
    return;
  }
  // Lossless modes: ring first; a full ring (or an already-backed-up
  // overflow, to preserve FIFO) defers to the mutexed overflow deque.
  // relaxed: overflow_count_ writes all happen under mutex_ (held
  // here); the release on them serves NextBatch's lock-free probes.
  if (overflow_count_.load(std::memory_order_relaxed) == 0 &&
      ring_.TryPushFrom(entry)) {
    return;
  }
  ++stats_.frames_overflowed;
  // hot-ok: overflow branch — only reached when the ring is full; deque
  // growth is amortized and the bytes are already governor-charged.
  overflow_.push_back(std::move(entry));
  overflow_count_.fetch_add(1, std::memory_order_release);
}

bool SubscriberQueue::ReplenishRingLocked() {
  bool moved = false;
  // Overflowed entries are older than anything spilled after them; the
  // producer never pushes to the ring while overflow_count_ > 0, so
  // migrating front-to-back preserves FIFO.
  while (!overflow_.empty()) {
    if (!ring_.TryPushFrom(overflow_.front())) break;
    overflow_.pop_front();
    overflow_count_.fetch_sub(1, std::memory_order_release);
    moved = true;
  }
  // relaxed: under mutex_ (see RestoreFromSpillLocked).
  if (overflow_.empty() && ring_.empty() &&
      spill_pending_frames_.load(std::memory_order_relaxed) > 0) {
    moved = RestoreFromSpillLocked() || moved;
  }
  return moved;
}

void SubscriberQueue::Deliver(FramePtr frame, DataBucket* bucket) {
  // Delay action = a stalled subscriber back-pressuring the joint.
  // Deliberately before the lock so a stall never blocks Next() readers.
  ASTERIX_FAILPOINT_HIT("feeds.subscriber.deliver");
  const hyracks::TraceContext tc = frame->trace();
  TraceSpan span;
  const bool traced = tc.sampled();
  if (traced) {
    // The "source" primary span covers everything from trace birth at the
    // adaptor to arrival in this queue (fetch, batching, joint routing).
    span.trace_id = tc.id;
    span.where = options_.name;
    span.start_us = tc.start_us;
    span.duration_us = common::NowMicros() - tc.start_us;
    span.records = static_cast<int64_t>(frame->record_count());
  }
  {
    common::MutexLock lock(mutex_);
    DeliverLocked(std::move(frame), bucket, traced ? &span : nullptr);
  }
  // Wake parked consumers after unlocking (one atomic load when nobody
  // waits). Covers data arrival AND the failure transitions below.
  ready_.NotifyAll();
  // Recorded after unlocking: RecordSpan takes the tracer (and possibly
  // registry) mutex, which a Snapshot() provider holds around this
  // queue's mutex.
  if (traced && !span.stage.empty()) {
    Tracer::Instance().RecordSpan(std::move(span));
  }
}

void SubscriberQueue::DeliverLocked(FramePtr frame, DataBucket* bucket,
                                    TraceSpan* span) {
  auto consume = [&] {
    if (bucket != nullptr) bucket->Consume();
  };
  auto outcome = [&](const char* stage, const char* status) {
    if (span != nullptr) {
      span->stage = stage;
      span->status = status;
      span->detail = true;  // terminal drop spans don't tile the path
    }
  };
  // relaxed: read under mutex_, which End() holds for its store; the
  // release there serves NextBatch's lock-free probe.
  if (ended_.load(std::memory_order_relaxed)) {
    consume();
    outcome("discarded", "ended");
    return;
  }
  int64_t frame_bytes = static_cast<int64_t>(frame->ApproxBytes());
  // Admission: the global governor pool AND the per-subscriber budget
  // must both admit the frame. A governor refusal (pool exhausted — or
  // chaos-starved via the common.memgov.reserve failpoint) folds into
  // the mode's over-budget action: kBlock fails the feed, kSpill spills,
  // kDiscard trips the drop hysteresis, kThrottle sheds harder.
  common::MemLease admission;
  bool governor_refused =
      mem_pool_ != nullptr &&
      !mem_pool_->TryLease(static_cast<size_t>(frame_bytes), &admission)
           .ok();
  bool over_budget =
      governor_refused ||
      // relaxed: budget gauge; missing one concurrent retire only
      // shifts the admission boundary by a single frame.
      pending_bytes_.load(std::memory_order_relaxed) + frame_bytes >
          options_.memory_budget_bytes;

  auto append = [&](FramePtr f, DataBucket* b) {
    if (mem_pool_ != nullptr) {
      // Keep the admission lease's charge (Disown) and true it up to the
      // exact appended bytes: a sampled frame is smaller than the leased
      // estimate, and Elastic appends even when the lease was refused
      // (the forced top-up shows as a counted overdraft).
      const size_t appended = f->ApproxBytes();
      const size_t leased = admission.Disown();
      if (appended > leased) {
        mem_pool_->ForceReserve(appended - leased);
      } else if (leased > appended) {
        mem_pool_->Release(leased - appended);
      }
    }
    // relaxed: budget gauge RMW (see RetireEntry).
    int64_t now_pending =
        pending_bytes_.fetch_add(static_cast<int64_t>(f->ApproxBytes()),
                                 std::memory_order_relaxed) +
        static_cast<int64_t>(f->ApproxBytes());
    stats_.peak_pending_bytes =
        std::max(stats_.peak_pending_bytes, now_pending);
    ++stats_.frames_delivered;
    stats_.records_delivered += static_cast<int64_t>(f->record_count());
    if (span != nullptr) {
      span->stage = "source";
      span->status = "ok";
      span->detail = false;
      span->records = static_cast<int64_t>(f->record_count());
    }
    Entry entry;
    entry.frame = std::move(f);
    entry.bucket = b;
    if (span != nullptr) entry.deliver_us = common::NowMicros();
    EnqueueEntryLocked(std::move(entry));
  };

  if (throttling_) {
    // Spill-overflow fallback: regulate the inflow by sampling.
    FramePtr sampled = SampleFrame(frame, 0.5);
    consume();
    if (sampled != nullptr) {
      append(std::move(sampled), nullptr);
    } else {
      outcome("throttled", "throttled");
    }
    return;
  }

  switch (options_.mode) {
    case ExcessMode::kBlock:
    case ExcessMode::kElastic: {
      // Basic: buffer in memory. Exhausting the budget terminates the
      // feed (§4.5). Elastic buffers the same way while the system
      // re-structures the pipeline; the budget is its headroom.
      if (over_budget && options_.mode == ExcessMode::kBlock) {
        failed_.store(true);
        // hot-ok: terminal failure branch — the feed is ending; the
        // status string is built once per subscriber lifetime.
        failure_ = Status::ResourceExhausted(
            "feed '" + options_.name + "' exhausted its memory budget (" +
            std::to_string(options_.memory_budget_bytes) + " bytes)");
        consume();
        outcome("discarded", "error");
        return;
      }
      append(std::move(frame), bucket);
      return;
    }
    case ExcessMode::kSpill: {
      // relaxed: under mutex_ (see RestoreFromSpillLocked).
      if (over_budget ||
          spill_pending_frames_.load(std::memory_order_relaxed) > 0) {
        // The spill governor pool must also admit the frame (lease on
        // the in-memory estimate; SpillLocked charges the exact on-disk
        // bytes and this lease releases at scope exit). A refusal is
        // the same condition as an exhausted per-feed spill budget.
        common::MemLease spill_admission;
        const bool spill_refused =
            spill_pool_ != nullptr &&
            !spill_pool_
                 ->TryLease(static_cast<size_t>(frame_bytes),
                            &spill_admission)
                 .ok();
        if (spill_refused ||
            stats_.bytes_spilled >= options_.max_spill_bytes) {
          if (options_.throttle_after_spill) {
            throttling_ = true;
            LOG_MSG(kWarn) << options_.name
                           << ": spill budget exhausted; throttling";
            FramePtr sampled = SampleFrame(frame, 0.5);
            consume();
            if (sampled != nullptr) {
              append(std::move(sampled), nullptr);
            } else {
              outcome("throttled", "throttled");
            }
          } else {
            failed_.store(true);
            failure_ = Status::ResourceExhausted(
                "feed '" + options_.name + "' exhausted its spill budget");
            consume();
            outcome("discarded", "error");
          }
          return;
        }
        SpillLocked(frame);
        consume();
        // The spill file stores raw records; the trace does not survive
        // the round-trip, so this span is the trace's terminal.
        outcome("spilled", "spilled");
        return;
      }
      append(std::move(frame), bucket);
      return;
    }
    case ExcessMode::kDiscard: {
      // Hysteresis per §4.5: once the budget is hit, excess records are
      // discarded ALTOGETHER until the existing backlog clears — the
      // "periods of discontinuity" of Figure 7.9.
      // relaxed: budget gauge; hysteresis tolerates staleness.
      if (discarding_ &&
          pending_bytes_.load(std::memory_order_relaxed) <=
              options_.memory_budget_bytes / 4) {
        discarding_ = false;
      }
      if (over_budget) discarding_ = true;
      if (discarding_) {
        stats_.records_discarded +=
            static_cast<int64_t>(frame->record_count());
        consume();
        outcome("discarded", "discarded");
        return;
      }
      append(std::move(frame), bucket);
      return;
    }
    case ExcessMode::kThrottle: {
      // Adaptive sampling: the fuller the queue, the lower the keep
      // probability, regulating the effective arrival rate.
      // relaxed: budget gauge; the keep rate tolerates staleness.
      double keep = ThrottleKeepProbability(
          pending_bytes_.load(std::memory_order_relaxed), frame_bytes,
          options_.memory_budget_bytes);
      // Global pressure sheds too: a governor refusal halves the keep
      // rate even when this subscriber's own queue looks healthy.
      if (governor_refused) keep = std::min(keep, 0.5);
      if (keep < 1.0) {
        FramePtr sampled = SampleFrame(frame, keep);
        consume();
        if (sampled != nullptr) {
          append(std::move(sampled), nullptr);
        } else {
          outcome("throttled", "throttled");
        }
        return;
      }
      append(std::move(frame), bucket);
      return;
    }
  }
}

void SubscriberQueue::DeliverEnd() {
  {
    // Serialized with in-flight Delivers so "ended" cleanly partitions
    // the delivery order (frames after the end marker are dropped).
    common::MutexLock lock(mutex_);
    ended_.store(true, std::memory_order_release);
  }
  ready_.NotifyAll();
}

void SubscriberQueue::RecordQueueSpan(const Entry& entry,
                                      int64_t pop_us) const {
  // Called with no lock held. The "queue" primary span covers the
  // frame's residency in this subscriber queue.
  TraceSpan span;
  span.trace_id = entry.frame->trace().id;
  span.stage = "queue";
  span.where = options_.name;
  span.start_us = entry.deliver_us;
  span.duration_us = pop_us - entry.deliver_us;
  span.records = static_cast<int64_t>(entry.frame->record_count());
  Tracer::Instance().RecordSpan(std::move(span));
}

std::optional<FramePtr> SubscriberQueue::Next(int64_t timeout_ms) {
  std::vector<FramePtr> batch = NextBatch(timeout_ms, 1);
  if (batch.empty()) return std::nullopt;
  return std::move(batch.front());
}

std::vector<FramePtr> SubscriberQueue::NextBatch(int64_t timeout_ms,
                                                 size_t max_frames) {
  std::vector<FramePtr> batch;
  (void)NextBatchInto(&batch, timeout_ms, max_frames);
  return batch;
}

size_t SubscriberQueue::NextBatchInto(std::vector<FramePtr>* out,
                                      int64_t timeout_ms,
                                      size_t max_frames) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  // Per-thread drain scratch: its capacity (and the caller's `out`
  // capacity) is what makes the steady-state consumer drain allocation-
  // free. Cleared before AND after use so no frame reference lingers in
  // an idle thread between calls.
  thread_local std::vector<Entry> popped;
  popped.clear();
  for (;;) {
    // Fast path: drain straight off the ring, no lock.
    (void)ring_.PopAllBoundedInto(&popped, max_frames);
    if (!popped.empty()) break;
    // Rare paths hold data the ring does not: overflowed entries and
    // spilled frames. Migrate under the mutex, then re-poll.
    if (overflow_count_.load(std::memory_order_acquire) > 0 ||
        spill_pending_frames_.load(std::memory_order_acquire) > 0) {
      {
        common::MutexLock lock(mutex_);
        ReplenishRingLocked();
      }
      // Replenish cannot always make progress (ring still full behind a
      // racing consumer, or a restore that just failed the queue on a
      // bad spill file): honor the deadline on this branch too, or an
      // I/O error becomes a busy retry loop that never times out.
      if (std::chrono::steady_clock::now() >= deadline) {
        (void)ring_.PopAllBoundedInto(&popped, max_frames);
        break;
      }
      continue;
    }
    if (ended_.load(std::memory_order_acquire) || failed_.load()) {
      // Terminal — but a frame Delivered between the empty drain above
      // and this flag load would be stranded if that drain were trusted:
      // the contract is empty only when ended/failed with NOTHING
      // buffered. One last ring drain (and rare-path check) before
      // reporting drained, mirroring MpmcQueue::Pop's closed re-check.
      (void)ring_.PopAllBoundedInto(&popped, max_frames);
      if (!popped.empty()) break;
      if (overflow_count_.load(std::memory_order_acquire) > 0 ||
          spill_pending_frames_.load(std::memory_order_acquire) > 0) {
        continue;  // migrate the leftovers, then drain them
      }
      return 0;  // terminal and drained
    }
    // Park until a producer signals (delivery/end/failure) or timeout.
    uint64_t epoch = ready_.PrepareWait();
    if (!ring_.empty() ||
        overflow_count_.load(std::memory_order_acquire) > 0 ||
        spill_pending_frames_.load(std::memory_order_acquire) > 0 ||
        ended_.load(std::memory_order_acquire) || failed_.load()) {
      ready_.CancelWait();
      continue;
    }
    auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      ready_.CancelWait();
      return 0;
    }
    if (!ready_.WaitFor(epoch, deadline - now)) {
      // Timed out: one last look so a racing delivery is not stranded
      // until the caller's next poll.
      (void)ring_.PopAllBoundedInto(&popped, max_frames);
      break;
    }
  }
  // hot-ok: consumer-owned output vector — callers reuse a thread_local
  // scratch buffer, so the reserve/push_back growth amortizes to zero.
  out->reserve(out->size() + popped.size());
  bool any_traced = false;
  for (Entry& entry : popped) {
    RetireEntry(entry);
    if (entry.deliver_us != 0 && entry.frame->trace().sampled()) {
      any_traced = true;
    }
    // hot-ok: copy is a refcount bump, no allocation — the entry keeps
    // its reference for the span pass below; capacity was reserved above.
    out->push_back(entry.frame);
  }
  const size_t appended = popped.size();
  if (any_traced) {
    // Span recording happens with no queue lock held (see Deliver()).
    // Untraced drains (the common case) never reach this branch, so the
    // hot path stays allocation-free.
    int64_t pop_us = common::NowMicros();
    for (const Entry& entry : popped) {
      if (entry.deliver_us != 0 && entry.frame->trace().sampled()) {
        RecordQueueSpan(entry, pop_us);
      }
    }
  }
  popped.clear();
  return appended;
}

bool SubscriberQueue::ended() const {
  return ended_.load(std::memory_order_acquire) && ring_.empty() &&
         overflow_count_.load(std::memory_order_acquire) == 0 &&
         spill_pending_frames_.load(std::memory_order_acquire) == 0;
}

common::Status SubscriberQueue::failure() const {
  common::MutexLock lock(mutex_);
  return failure_;
}

SubscriberStats SubscriberQueue::stats() const {
  common::MutexLock lock(mutex_);
  return stats_;
}

size_t SubscriberQueue::pending_frames() const {
  return ring_.size() +
         static_cast<size_t>(
             overflow_count_.load(std::memory_order_acquire)) +
         static_cast<size_t>(
             spill_pending_frames_.load(std::memory_order_acquire));
}

}  // namespace feeds
}  // namespace asterix
