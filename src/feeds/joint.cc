#include "common/thread_annotations.h"
#include "feeds/joint.h"

#include <algorithm>

#include "common/clock.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "feeds/trace.h"

namespace asterix {
namespace feeds {

using common::Status;
using hyracks::FramePtr;

void FeedJoint::SetPrimary(std::shared_ptr<hyracks::IFrameWriter> primary) {
  common::MutexLock lock(mutex_);
  primary_ = std::move(primary);
}

void FeedJoint::DetachPrimary() {
  std::shared_ptr<hyracks::IFrameWriter> primary;
  {
    common::MutexLock lock(mutex_);
    primary = std::move(primary_);
    primary_.reset();
  }
  if (primary != nullptr) {
    Status close_status = primary->Close();
    if (!close_status.ok()) {
      // Detach is teardown: the pipeline downstream of the joint is going
      // away regardless, so a failed flush-on-close is reported, not
      // propagated (there is no caller left to retry it).
      LOG_MSG(kWarn) << "joint primary close failed during detach: "
                     << close_status.message();
    }
  }
}

std::shared_ptr<SubscriberQueue> FeedJoint::Subscribe(
    SubscriberOptions options) {
  auto queue = std::make_shared<SubscriberQueue>(std::move(options));
  common::MutexLock lock(mutex_);
  if (closed_) {
    queue->DeliverEnd();
    return queue;
  }
  subscribers_.push_back(queue);
  return queue;
}

void FeedJoint::Unsubscribe(const std::shared_ptr<SubscriberQueue>& queue) {
  common::MutexLock lock(mutex_);
  subscribers_.erase(
      std::remove(subscribers_.begin(), subscribers_.end(), queue),
      subscribers_.end());
}

FeedJoint::Mode FeedJoint::mode() const {
  common::MutexLock lock(mutex_);
  if (subscribers_.empty()) return Mode::kInactive;
  return subscribers_.size() == 1 ? Mode::kShortCircuit : Mode::kShared;
}

size_t FeedJoint::subscriber_count() const {
  common::MutexLock lock(mutex_);
  return subscribers_.size();
}

Status FeedJoint::NextFrame(const FramePtr& frame) {
  // Delay actions model a congested joint; error actions fail the
  // routing task (a hard pipeline fault).
  ASTERIX_FAILPOINT("feeds.joint.route");
  const hyracks::TraceContext tc = frame->trace();
  const int64_t route_start_us = tc.sampled() ? common::NowMicros() : 0;
  // Snapshot recipients under the lock, deliver outside it: a slow
  // primary must not block subscriber registration, and vice versa.
  std::shared_ptr<hyracks::IFrameWriter> primary;
  std::vector<std::shared_ptr<SubscriberQueue>> subscribers;
  {
    common::MutexLock lock(mutex_);
    primary = primary_;
    subscribers = subscribers_;
    ++frames_routed_;
  }
  if (subscribers.size() == 1) {
    // Short-circuited mode: no Data Bucket bookkeeping.
    subscribers[0]->Deliver(frame, nullptr);
  } else if (subscribers.size() > 1) {
    // Shared mode: one bucket per frame, shared by all subscribers.
    DataBucket* bucket =
        pool_.Get(frame, static_cast<int>(subscribers.size()));
    for (auto& subscriber : subscribers) {
      subscriber->Deliver(frame, bucket);
    }
  }
  if (tc.sampled()) {
    // Detail span for routing + subscriber deliveries (no pipeline lock
    // held here). The in-job primary forward is timed by downstream
    // spans, not this one.
    TraceSpan span;
    span.trace_id = tc.id;
    span.stage = "joint";
    span.where = id_;
    span.start_us = route_start_us;
    span.duration_us = common::NowMicros() - route_start_us;
    span.records = static_cast<int64_t>(frame->record_count());
    span.detail = true;
    Tracer::Instance().RecordSpan(std::move(span));
  }
  if (primary != nullptr) {
    // In-job forwarding last: it may block under this pipeline's own
    // back-pressure without delaying subscribers.
    return primary->NextFrame(frame);
  }
  return Status::OK();
}

void FeedJoint::Fail() {
  std::shared_ptr<hyracks::IFrameWriter> primary;
  std::vector<std::shared_ptr<SubscriberQueue>> subscribers;
  {
    common::MutexLock lock(mutex_);
    closed_ = true;
    primary = primary_;
    subscribers = subscribers_;
  }
  for (auto& subscriber : subscribers) subscriber->DeliverEnd();
  if (primary != nullptr) primary->Fail();
}

Status FeedJoint::Close() {
  std::shared_ptr<hyracks::IFrameWriter> primary;
  std::vector<std::shared_ptr<SubscriberQueue>> subscribers;
  {
    common::MutexLock lock(mutex_);
    closed_ = true;
    primary = primary_;
    subscribers = subscribers_;
  }
  for (auto& subscriber : subscribers) subscriber->DeliverEnd();
  if (primary != nullptr) return primary->Close();
  return Status::OK();
}

bool FeedJoint::closed() const {
  common::MutexLock lock(mutex_);
  return closed_;
}

int64_t FeedJoint::frames_routed() const {
  common::MutexLock lock(mutex_);
  return frames_routed_;
}

}  // namespace feeds
}  // namespace asterix
