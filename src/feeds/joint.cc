#include "common/thread_annotations.h"
#include "feeds/joint.h"

#include <algorithm>

#include "common/clock.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "feeds/trace.h"

namespace asterix {
namespace feeds {

using common::Status;
using hyracks::FramePtr;

std::shared_ptr<FeedJoint::Routes> FeedJoint::CloneRoutes() const {
  return std::make_shared<Routes>(
      *routes_.load());
}

void FeedJoint::SetPrimary(std::shared_ptr<hyracks::IFrameWriter> primary) {
  common::MutexLock lock(mutex_);
  auto next = CloneRoutes();
  next->primary = std::move(primary);
  routes_.store(std::move(next));
}

void FeedJoint::DetachPrimary() {
  std::shared_ptr<hyracks::IFrameWriter> primary;
  {
    common::MutexLock lock(mutex_);
    auto next = CloneRoutes();
    primary = std::move(next->primary);
    next->primary = nullptr;
    routes_.store(std::move(next));
  }
  if (primary != nullptr) {
    Status close_status = primary->Close();
    if (!close_status.ok()) {
      // Detach is teardown: the pipeline downstream of the joint is going
      // away regardless, so a failed flush-on-close is reported, not
      // propagated (there is no caller left to retry it).
      LOG_MSG(kWarn) << "joint primary close failed during detach: "
                     << close_status.message();
    }
  }
}

std::shared_ptr<SubscriberQueue> FeedJoint::Subscribe(
    SubscriberOptions options) {
  auto queue = std::make_shared<SubscriberQueue>(std::move(options));
  // Keepalive: the queue may hold bucket entries past this joint's
  // lifetime, and its destructor returns them to the pool.
  queue->AttachPool(pool_);
  common::MutexLock lock(mutex_);
  auto next = CloneRoutes();
  if (next->closed) {
    queue->DeliverEnd();
    return queue;
  }
  next->subscribers.push_back(queue);
  routes_.store(std::move(next));
  return queue;
}

void FeedJoint::Unsubscribe(const std::shared_ptr<SubscriberQueue>& queue) {
  common::MutexLock lock(mutex_);
  auto next = CloneRoutes();
  next->subscribers.erase(std::remove(next->subscribers.begin(),
                                      next->subscribers.end(), queue),
                          next->subscribers.end());
  routes_.store(std::move(next));
}

FeedJoint::Mode FeedJoint::mode() const {
  auto routes = routes_.load();
  if (routes->subscribers.empty()) return Mode::kInactive;
  return routes->subscribers.size() == 1 ? Mode::kShortCircuit
                                         : Mode::kShared;
}

size_t FeedJoint::subscriber_count() const {
  return routes_.load()->subscribers.size();
}

Status FeedJoint::NextFrame(const FramePtr& frame) {
  // Delay actions model a congested joint; error actions fail the
  // routing task (a hard pipeline fault).
  ASTERIX_FAILPOINT("feeds.joint.route");
  const hyracks::TraceContext tc = frame->trace();
  const int64_t route_start_us = tc.sampled() ? common::NowMicros() : 0;
  // One atomic snapshot load; the shared_ptr keeps the recipient list
  // (and every queue on it) alive for the duration of the fan-out even
  // if an Unsubscribe publishes a new snapshot mid-delivery. No lock is
  // taken and no per-frame copy of the subscriber list is made.
  std::shared_ptr<const Routes> routes =
      routes_.load();
  // relaxed: stats counter for the joint gauge; delivery ordering is
  // carried by the queues, not this count.
  frames_routed_.fetch_add(1, std::memory_order_relaxed);
  const auto& subscribers = routes->subscribers;
  if (subscribers.size() == 1) {
    // Short-circuited mode: no Data Bucket bookkeeping.
    subscribers[0]->Deliver(frame, nullptr);
  } else if (subscribers.size() > 1) {
    // Shared mode: one bucket per frame, shared by all subscribers.
    DataBucket* bucket =
        pool_->Get(frame, static_cast<int>(subscribers.size()));
    for (const auto& subscriber : subscribers) {
      subscriber->Deliver(frame, bucket);
    }
  }
  if (tc.sampled()) {
    // Detail span for routing + subscriber deliveries (no pipeline lock
    // held here). The in-job primary forward is timed by downstream
    // spans, not this one.
    TraceSpan span;
    span.trace_id = tc.id;
    span.stage = "joint";
    span.where = id_;
    span.start_us = route_start_us;
    span.duration_us = common::NowMicros() - route_start_us;
    span.records = static_cast<int64_t>(frame->record_count());
    span.detail = true;
    Tracer::Instance().RecordSpan(std::move(span));
  }
  if (routes->primary != nullptr) {
    // In-job forwarding last: it may block under this pipeline's own
    // back-pressure without delaying subscribers.
    return routes->primary->NextFrame(frame);
  }
  return Status::OK();
}

void FeedJoint::Fail() {
  std::shared_ptr<const Routes> last;
  {
    common::MutexLock lock(mutex_);
    auto next = CloneRoutes();
    next->closed = true;
    last = std::move(next);
    routes_.store(last);
  }
  for (const auto& subscriber : last->subscribers) subscriber->DeliverEnd();
  if (last->primary != nullptr) last->primary->Fail();
}

Status FeedJoint::Close() {
  std::shared_ptr<const Routes> last;
  {
    common::MutexLock lock(mutex_);
    auto next = CloneRoutes();
    next->closed = true;
    last = std::move(next);
    routes_.store(last);
  }
  for (const auto& subscriber : last->subscribers) subscriber->DeliverEnd();
  if (last->primary != nullptr) return last->primary->Close();
  return Status::OK();
}

bool FeedJoint::closed() const {
  return routes_.load()->closed;
}

}  // namespace feeds
}  // namespace asterix
