// Subscriber queues: the per-subscriber input queues hanging off a feed
// joint. This is where "excess records" accumulate when a pipeline cannot
// keep pace, and therefore where the ingestion policy's excess-record
// handling (Table 4.2) is enforced: block/buffer (Basic), spill to disk
// (Spill), drop (Discard), or sample (Throttle/Elastic-interim).
//
// Data-plane layout (lock-free rewire): the frame hand-off itself rides a
// bounded lock-free ring (common::OverwriteQueue over the Vyukov
// MpmcQueue), so the producer (joint routing thread) and the consumer
// (intake pump) never contend on a mutex for the hot path. The policy
// machinery — byte budget, spill/restore, sampling, discard hysteresis,
// stats — is a thin producer-side state layer under mutex_; that mutex is
// only ever taken by the single producer and by consumers on the *rare*
// paths (overflow migration, spill restore, terminal states), so the
// per-frame cost is one ring push + one ring pop.
#pragma once

#include <atomic>
#include <cstdio>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/mem_governor.h"
#include "common/mpmc_queue.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "feeds/policy.h"
#include "hyracks/frame.h"

namespace asterix {
namespace feeds {

class DataBucketPool;
struct TraceSpan;

/// The paper's Data Bucket: a frame holder carrying a consumer counter.
/// Shared by all subscribers of a joint in shared mode; returned to the
/// pool when the last subscriber is done.
class DataBucket {
 public:
  const hyracks::FramePtr& frame() const { return frame_; }

  /// Marks this subscriber's consumption; recycles on the last one.
  void Consume();

 private:
  friend class DataBucketPool;
  hyracks::FramePtr frame_;
  std::atomic<int> pending_{0};
  DataBucketPool* pool_ = nullptr;
};

/// Free-list pool of Data Buckets (§5.4.1: buckets are "reclaimed and
/// returned to a pool only to be retrieved later").
class DataBucketPool {
 public:
  ~DataBucketPool();

  DataBucket* Get(hyracks::FramePtr frame, int consumers);
  void Return(DataBucket* bucket);

  int64_t allocations() const { return allocations_.load(); }
  int64_t reuses() const { return reuses_.load(); }

 private:
  common::Mutex mutex_{common::LockRank::kBucketPool};
  std::deque<DataBucket*> free_ GUARDED_BY(mutex_);
  std::atomic<int64_t> allocations_{0};
  std::atomic<int64_t> reuses_{0};
};

struct SubscriberOptions {
  ExcessMode mode = ExcessMode::kBlock;
  /// In-memory excess budget before the mode's action kicks in.
  int64_t memory_budget_bytes = 32 << 20;
  /// Spill mode: bytes of disk spillage allowed before fallback.
  int64_t max_spill_bytes = 512LL << 20;
  /// Spill mode: fall back to throttling (instead of failing) when the
  /// spill budget is exhausted — the Spill_then_Throttle custom policy.
  bool throttle_after_spill = false;
  /// Directory for spill files.
  std::string spill_dir = "/tmp";
  /// Queue identity for spill file naming / logs.
  std::string name = "subscriber";
  /// Capacity (frames, rounded up to a power of two) of the lock-free
  /// hand-off ring. Purely mechanical: the byte budget above is the
  /// policy bound; a full ring under budget falls back to the mutexed
  /// overflow path (or, in Discard mode, newest-wins displacement).
  size_t ring_frames = 4096;
  /// Governor pool charged for buffered frame bytes (the global bound
  /// over all subscribers, alongside the per-subscriber budget above).
  /// Null resolves to MemGovernor::Default()'s "frame_path" pool; a
  /// refused reservation is folded into the mode's over-budget action.
  common::MemPool* memory_pool = nullptr;
  /// Governor pool charged for spill-file bytes. Null resolves to the
  /// default "spill" pool; refusal acts like spill-budget exhaustion.
  common::MemPool* spill_pool = nullptr;
};

struct SubscriberStats {
  int64_t frames_delivered = 0;
  int64_t records_delivered = 0;
  int64_t records_discarded = 0;
  int64_t records_throttled_away = 0;
  int64_t frames_spilled = 0;
  int64_t bytes_spilled = 0;
  int64_t frames_restored = 0;
  int64_t peak_pending_bytes = 0;
  /// Frames that missed the lock-free ring and took the mutexed
  /// overflow path (non-Discard modes; ring sizing diagnostic).
  int64_t frames_overflowed = 0;
};

/// One subscriber's queue. Producer side: the feed joint Delivers frames
/// (possibly wrapped in shared Data Buckets). Consumer side: the intake
/// operator of the subscribing pipeline Next()s frames at its own pace —
/// the asynchrony that gives the paper's Congestion Isolation.
class SubscriberQueue {
 public:
  SubscriberQueue(SubscriberOptions options, uint64_t seed = 17);
  ~SubscriberQueue();

  /// Keepalive for the bucket pool the queued DataBucket* point into.
  /// Set once by FeedJoint::Subscribe before any delivery; guarantees
  /// the pool outlives this queue even if the joint dies first (the
  /// destructor returns leftover buckets to the pool).
  void AttachPool(std::shared_ptr<DataBucketPool> pool) {
    pool_keepalive_ = std::move(pool);
  }

  /// Producer side. `bucket` is null in short-circuit mode. Never blocks
  /// the producer (congestion isolation): excess handling follows the
  /// policy mode instead.
  void Deliver(hyracks::FramePtr frame, DataBucket* bucket);

  /// Marks clean end-of-feed; consumers drain then see nullopt + ended().
  void DeliverEnd();

  /// Consumer side: next frame, waiting up to `timeout_ms`.
  std::optional<hyracks::FramePtr> Next(int64_t timeout_ms);

  /// Consumer side, batched: waits up to `timeout_ms` for data, then
  /// drains up to `max_frames` queued frames (lock-free off the ring).
  /// Empty result on timeout or when the queue ended/failed with nothing
  /// buffered.
  std::vector<hyracks::FramePtr> NextBatch(int64_t timeout_ms,
                                           size_t max_frames = SIZE_MAX);

  /// NextBatch appending into the caller's vector — with a reused
  /// capacity this drain allocates nothing per frame in steady state
  /// (the pooled-frame zero-alloc path; see hyracks/frame_pool.h).
  /// Returns the number of frames appended.
  size_t NextBatchInto(std::vector<hyracks::FramePtr>* out,
                       int64_t timeout_ms, size_t max_frames = SIZE_MAX);

  bool ended() const;
  /// Set when the Basic policy exhausted its memory budget (feed must
  /// terminate) or spillage overflowed without a throttle fallback.
  bool failed() const { return failed_.load(); }
  [[nodiscard]] common::Status failure() const;

  SubscriberStats stats() const;
  int64_t pending_bytes() const {
    // relaxed: monitoring read of the budget gauge.
    return pending_bytes_.load(std::memory_order_relaxed);
  }
  size_t pending_frames() const;
  const std::string& name() const { return options_.name; }

 private:
  struct Entry {
    hyracks::FramePtr frame;
    DataBucket* bucket = nullptr;  // consumed on pop
    int64_t deliver_us = 0;        // enqueue instant, traced frames only
  };

  // Excess handling under mutex_; fills `span` (non-null iff the frame is
  // traced) with the delivery outcome. The caller records it after
  // unlocking — RecordSpan must not run under a queue mutex.
  void DeliverLocked(hyracks::FramePtr frame, DataBucket* bucket,
                     TraceSpan* span) REQUIRES(mutex_);
  /// Hands an entry to the consumer side: lock-free ring push first;
  /// Discard mode displaces the oldest entry when the ring is full,
  /// other modes fall back to the mutexed overflow deque.
  void EnqueueEntryLocked(Entry entry) REQUIRES(mutex_);
  /// Retires a popped/displaced/abandoned entry's bucket reference and
  /// byte accounting.
  void RetireEntry(const Entry& entry);
  void RecordQueueSpan(const Entry& entry, int64_t pop_us) const;
  void SpillLocked(const hyracks::FramePtr& frame) REQUIRES(mutex_);
  bool RestoreFromSpillLocked() REQUIRES(mutex_);
  /// Consumer-side slow path: migrates overflowed entries into the ring
  /// and restores spilled frames once the ring has drained. Returns true
  /// if it moved anything (the caller re-polls the ring).
  bool ReplenishRingLocked() REQUIRES(mutex_);
  hyracks::FramePtr SampleFrame(const hyracks::FramePtr& frame,
                                double keep_probability) REQUIRES(mutex_);

  const SubscriberOptions options_;
  // Resolved governor pools (options_ pools or the Default() governor's
  // standard pools). Charged lock-free; never null after construction.
  common::MemPool* const mem_pool_;
  common::MemPool* const spill_pool_;
  // Destroyed after the destructor body runs, so leftover buckets can
  // always be returned safely.
  std::shared_ptr<DataBucketPool> pool_keepalive_;
  // The hot hand-off path: rank-exempt lock-free ring (see
  // common/mpmc_queue.h). Push/displace under mutex_ (producer side),
  // pop without any lock (consumer side).
  common::OverwriteQueue<Entry> ring_;
  // Parking for idle consumers; producers notify after every delivery,
  // end, or failure.
  common::EventCount ready_;
  mutable common::Mutex mutex_{common::LockRank::kSubscriberQueue};
  // Counter/flag ordering protocol (model-checked invariants in
  // tests/model/): every WRITE to the atomics below happens under
  // mutex_ with release strength; readers holding mutex_ load relaxed
  // (mutual exclusion already orders them), while NextBatch's lock-free
  // probes load acquire to pair with the writers' releases.
  // pending_bytes_ is the exception — a pure budget gauge whose RMWs
  // conserve the sum; all its accesses are relaxed.
  std::atomic<int64_t> pending_bytes_{0};
  std::atomic<bool> ended_{false};
  std::atomic<bool> failed_{false};
  common::Status failure_ GUARDED_BY(mutex_);
  SubscriberStats stats_ GUARDED_BY(mutex_);
  common::Rng rng_ GUARDED_BY(mutex_);

  // Overflow: entries that missed a full ring in non-Discard modes.
  // FIFO is preserved by construction: while overflow_count_ > 0 the
  // producer appends here (never to the ring), and consumers migrate
  // overflow into the ring only after the ring drained.
  std::deque<Entry> overflow_ GUARDED_BY(mutex_);
  std::atomic<int64_t> overflow_count_{0};

  // Spill state: once active, all arrivals spill until fully drained
  // (preserves record order).
  std::FILE* spill_file_ GUARDED_BY(mutex_) = nullptr;
  std::string spill_path_;  // written once in the constructor
  /// Bytes this queue's spill file currently charges against spill_pool_
  /// (released when the drained file is reclaimed, and at destruction).
  int64_t spill_charged_ GUARDED_BY(mutex_) = 0;
  std::atomic<int64_t> spill_pending_frames_{0};  // written under mutex_
  int64_t spill_read_offset_ GUARDED_BY(mutex_) = 0;
  bool throttling_ GUARDED_BY(mutex_) = false;   // spill overflow fallback
  bool discarding_ GUARDED_BY(mutex_) = false;   // Discard hysteresis:
                             // dropping until the backlog clears (§4.5)
};

}  // namespace feeds
}  // namespace asterix
