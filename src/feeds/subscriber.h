// Subscriber queues: the per-subscriber input queues hanging off a feed
// joint. This is where "excess records" accumulate when a pipeline cannot
// keep pace, and therefore where the ingestion policy's excess-record
// handling (Table 4.2) is enforced: block/buffer (Basic), spill to disk
// (Spill), drop (Discard), or sample (Throttle/Elastic-interim).
#pragma once

#include <atomic>
#include <cstdio>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "feeds/policy.h"
#include "hyracks/frame.h"

namespace asterix {
namespace feeds {

class DataBucketPool;
struct TraceSpan;

/// The paper's Data Bucket: a frame holder carrying a consumer counter.
/// Shared by all subscribers of a joint in shared mode; returned to the
/// pool when the last subscriber is done.
class DataBucket {
 public:
  const hyracks::FramePtr& frame() const { return frame_; }

  /// Marks this subscriber's consumption; recycles on the last one.
  void Consume();

 private:
  friend class DataBucketPool;
  hyracks::FramePtr frame_;
  std::atomic<int> pending_{0};
  DataBucketPool* pool_ = nullptr;
};

/// Free-list pool of Data Buckets (§5.4.1: buckets are "reclaimed and
/// returned to a pool only to be retrieved later").
class DataBucketPool {
 public:
  ~DataBucketPool();

  DataBucket* Get(hyracks::FramePtr frame, int consumers);
  void Return(DataBucket* bucket);

  int64_t allocations() const { return allocations_.load(); }
  int64_t reuses() const { return reuses_.load(); }

 private:
  common::Mutex mutex_{common::LockRank::kBucketPool};
  std::deque<DataBucket*> free_ GUARDED_BY(mutex_);
  std::atomic<int64_t> allocations_{0};
  std::atomic<int64_t> reuses_{0};
};

struct SubscriberOptions {
  ExcessMode mode = ExcessMode::kBlock;
  /// In-memory excess budget before the mode's action kicks in.
  int64_t memory_budget_bytes = 32 << 20;
  /// Spill mode: bytes of disk spillage allowed before fallback.
  int64_t max_spill_bytes = 512LL << 20;
  /// Spill mode: fall back to throttling (instead of failing) when the
  /// spill budget is exhausted — the Spill_then_Throttle custom policy.
  bool throttle_after_spill = false;
  /// Directory for spill files.
  std::string spill_dir = "/tmp";
  /// Queue identity for spill file naming / logs.
  std::string name = "subscriber";
};

struct SubscriberStats {
  int64_t frames_delivered = 0;
  int64_t records_delivered = 0;
  int64_t records_discarded = 0;
  int64_t records_throttled_away = 0;
  int64_t frames_spilled = 0;
  int64_t bytes_spilled = 0;
  int64_t frames_restored = 0;
  int64_t peak_pending_bytes = 0;
};

/// One subscriber's queue. Producer side: the feed joint Delivers frames
/// (possibly wrapped in shared Data Buckets). Consumer side: the intake
/// operator of the subscribing pipeline Next()s frames at its own pace —
/// the asynchrony that gives the paper's Congestion Isolation.
class SubscriberQueue {
 public:
  SubscriberQueue(SubscriberOptions options, uint64_t seed = 17);
  ~SubscriberQueue();

  /// Producer side. `bucket` is null in short-circuit mode. Never blocks
  /// the producer (congestion isolation): excess handling follows the
  /// policy mode instead.
  void Deliver(hyracks::FramePtr frame, DataBucket* bucket);

  /// Marks clean end-of-feed; consumers drain then see nullopt + ended().
  void DeliverEnd();

  /// Consumer side: next frame, waiting up to `timeout_ms`.
  std::optional<hyracks::FramePtr> Next(int64_t timeout_ms);

  /// Consumer side, batched: waits up to `timeout_ms` for data, then
  /// drains up to `max_frames` queued frames under one lock acquisition
  /// (one lock op per batch instead of one per frame). Empty result on
  /// timeout or when the queue ended/failed with nothing buffered.
  std::vector<hyracks::FramePtr> NextBatch(int64_t timeout_ms,
                                           size_t max_frames = SIZE_MAX);

  bool ended() const;
  /// Set when the Basic policy exhausted its memory budget (feed must
  /// terminate) or spillage overflowed without a throttle fallback.
  bool failed() const { return failed_.load(); }
  [[nodiscard]] common::Status failure() const;

  SubscriberStats stats() const;
  int64_t pending_bytes() const;
  size_t pending_frames() const;
  const std::string& name() const { return options_.name; }

 private:
  struct Entry {
    hyracks::FramePtr frame;
    DataBucket* bucket = nullptr;  // consumed on pop
    int64_t deliver_us = 0;        // enqueue instant, traced frames only
  };

  // Excess handling under mutex_; fills `span` (non-null iff the frame is
  // traced) with the delivery outcome. The caller records it after
  // unlocking — RecordSpan must not run under a queue mutex.
  void DeliverLocked(hyracks::FramePtr frame, DataBucket* bucket,
                     TraceSpan* span) REQUIRES(mutex_);
  void RecordQueueSpan(const Entry& entry, int64_t pop_us) const;
  void SpillLocked(const hyracks::FramePtr& frame) REQUIRES(mutex_);
  bool RestoreFromSpillLocked() REQUIRES(mutex_);
  hyracks::FramePtr SampleFrame(const hyracks::FramePtr& frame,
                                double keep_probability) REQUIRES(mutex_);

  const SubscriberOptions options_;
  mutable common::Mutex mutex_{common::LockRank::kSubscriberQueue};
  common::CondVar not_empty_;
  std::deque<Entry> entries_ GUARDED_BY(mutex_);
  int64_t pending_bytes_ GUARDED_BY(mutex_) = 0;
  bool ended_ GUARDED_BY(mutex_) = false;
  std::atomic<bool> failed_{false};
  common::Status failure_ GUARDED_BY(mutex_);
  SubscriberStats stats_ GUARDED_BY(mutex_);
  common::Rng rng_ GUARDED_BY(mutex_);

  // Spill state: once active, all arrivals spill until fully drained
  // (preserves record order).
  std::FILE* spill_file_ GUARDED_BY(mutex_) = nullptr;
  std::string spill_path_;  // written once in the constructor
  int64_t spill_pending_frames_ GUARDED_BY(mutex_) = 0;
  int64_t spill_read_offset_ GUARDED_BY(mutex_) = 0;
  bool throttling_ GUARDED_BY(mutex_) = false;   // spill overflow fallback
  bool discarding_ GUARDED_BY(mutex_) = false;   // Discard hysteresis:
                             // dropping until the backlog clears (§4.5)
};

}  // namespace feeds
}  // namespace asterix

