// Feed adaptors: the pluggable connectors between external data sources
// and AsterixDB. An adaptor knows the source's transfer protocol and hands
// raw payloads to the FeedCollect operator, which parses/translates them
// into ADM records (parse errors surface as soft failures).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "gen/tweetgen.h"
#include "hyracks/job.h"

namespace asterix {
namespace feeds {

using AdaptorConfig = std::map<std::string, std::string>;

/// One batch of raw payloads fetched from the external source.
struct RawBatch {
  std::vector<std::string> payloads;
  /// True when the source has ended (finite sources / closed channel).
  bool end_of_source = false;
};

/// A connected adaptor instance. Driven from a single FeedCollect task.
class FeedAdaptor {
 public:
  virtual ~FeedAdaptor() = default;

  /// Fetches up to `max` raw records, waiting at most `timeout_ms` when
  /// nothing is pending. The empty batch simply means "nothing yet".
  [[nodiscard]] virtual common::Result<RawBatch> Fetch(size_t max,
                                         int64_t timeout_ms) = 0;

  /// Called when the external source appears lost. The adaptor owns the
  /// recovery logic (§6.2.3, External Source Failure): it may reconnect,
  /// switch servers, or give up (non-OK status ends the feed).
  [[nodiscard]] virtual common::Status Reconnect() {
    return common::Status::Unavailable("source lost; no recovery defined");
  }
};

/// Per-adaptor factory, as stored in the DatasourceAdapter metadata
/// dataset. Provides the constraints (count/locations) the compiler uses
/// to place FeedCollect instances.
class AdaptorFactory {
 public:
  virtual ~AdaptorFactory() = default;
  virtual std::string alias() const = 0;
  /// Whether the source pushes data (no per-request pull).
  virtual bool push_based() const = 0;
  /// Datatype name of the ADM records this adaptor emits.
  virtual std::string output_type() const = 0;
  [[nodiscard]] virtual common::Result<hyracks::PartitionConstraint> GetConstraints(
      const AdaptorConfig& config) const = 0;
  [[nodiscard]] virtual common::Result<std::unique_ptr<FeedAdaptor>> Create(
      const AdaptorConfig& config, int partition) const = 0;
};

/// The DatasourceAdapter metadata dataset: alias -> factory.
class AdaptorRegistry {
 public:
  [[nodiscard]] common::Status Register(std::shared_ptr<AdaptorFactory> factory);
  [[nodiscard]] common::Result<std::shared_ptr<AdaptorFactory>> Find(
      const std::string& alias) const;

 private:
  mutable common::Mutex mutex_{common::LockRank::kAdaptorRegistry};
  std::map<std::string, std::shared_ptr<AdaptorFactory>> factories_
      GUARDED_BY(mutex_);
};

/// Name -> in-process channel registry standing in for the network: a
/// TweetGen instance registers its channel under an address string
/// ("10.1.0.1:9000"-style) and socket adaptors look addresses up here.
class ExternalSourceRegistry {
 public:
  static ExternalSourceRegistry& Instance();

  void RegisterChannel(const std::string& address, gen::Channel* channel);
  void UnregisterChannel(const std::string& address);
  gen::Channel* FindChannel(const std::string& address) const;

 private:
  mutable common::Mutex mutex_{common::LockRank::kChannelRegistry};
  std::map<std::string, gen::Channel*> channels_ GUARDED_BY(mutex_);
};

/// --- Built-in adaptors ----------------------------------------------------

/// Socket-style push adaptor reading from registered channels; the
/// TweetGenAdaptor of the evaluation chapters. Config:
///   "sockets" = comma-separated channel addresses (one instance each).
class SocketAdaptorFactory : public AdaptorFactory {
 public:
  explicit SocketAdaptorFactory(std::string alias = "socket_adaptor",
                                std::string output_type = "Tweet")
      : alias_(std::move(alias)), output_type_(std::move(output_type)) {}

  std::string alias() const override { return alias_; }
  bool push_based() const override { return true; }
  std::string output_type() const override { return output_type_; }
  [[nodiscard]] common::Result<hyracks::PartitionConstraint> GetConstraints(
      const AdaptorConfig& config) const override;
  [[nodiscard]] common::Result<std::unique_ptr<FeedAdaptor>> Create(
      const AdaptorConfig& config, int partition) const override;

 private:
  std::string alias_;
  std::string output_type_;
};

/// Pull adaptor over a file of newline-separated ADM records — the
/// file_based_feed used by the batch-insert comparison (§5.7.1). Config:
///   "path" = file path, "type_name" = record type.
class FileAdaptorFactory : public AdaptorFactory {
 public:
  std::string alias() const override { return "file_based_feed"; }
  bool push_based() const override { return false; }
  std::string output_type() const override { return "any"; }
  [[nodiscard]] common::Result<hyracks::PartitionConstraint> GetConstraints(
      const AdaptorConfig& config) const override;
  [[nodiscard]] common::Result<std::unique_ptr<FeedAdaptor>> Create(
      const AdaptorConfig& config, int partition) const override;
};

/// Pull adaptor that synthesizes tweets internally at a configured rate —
/// a TwitterAdaptor stand-in that needs no external process. Config:
///   "rate" = tweets/sec (default 100), "limit" = total records
///   (default unlimited), "source_id" = id namespace (default 0).
class SyntheticTweetAdaptorFactory : public AdaptorFactory {
 public:
  std::string alias() const override { return "synthetic_tweets"; }
  bool push_based() const override { return false; }
  std::string output_type() const override { return "Tweet"; }
  [[nodiscard]] common::Result<hyracks::PartitionConstraint> GetConstraints(
      const AdaptorConfig& config) const override;
  [[nodiscard]] common::Result<std::unique_ptr<FeedAdaptor>> Create(
      const AdaptorConfig& config, int partition) const override;
};

/// Registers all built-in adaptors (pre-populating the DatasourceAdapter
/// dataset, §5.1). Fails only on an alias collision — a registry that
/// already holds one of the built-in names.
[[nodiscard]] common::Status RegisterBuiltinAdaptors(AdaptorRegistry* registry);

}  // namespace feeds
}  // namespace asterix

