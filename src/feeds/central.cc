#include "common/thread_annotations.h"
#include "feeds/central.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"
#include "hyracks/operators.h"
#include "feeds/meta.h"
#include "storage/key.h"

namespace asterix {
namespace feeds {

using common::Result;
using common::Status;
using hyracks::ConnectorDescriptor;
using hyracks::ConnectorKind;
using hyracks::JobSpec;
using hyracks::OperatorDescriptor;

namespace {

/// Feed joints are registered per instance: base id + "#" + partition,
/// so that several instances of one subscribable operator can share a
/// node without clobbering each other's joints.
std::string JointInstanceId(const std::string& base, int partition) {
  return base + "#" + std::to_string(partition);
}

/// Output interceptor installing a feed joint between a subscribable
/// task and its in-job downstream, and registering it with the local
/// Feed Manager (making it discoverable via the search API).
hyracks::OutputInterceptor MakeJointInterceptor() {
  return [](const std::string& base_id,
            std::shared_ptr<hyracks::IFrameWriter> downstream,
            hyracks::TaskContext* ctx)
             -> std::shared_ptr<hyracks::IFrameWriter> {
    auto joint = std::make_shared<FeedJoint>(
        JointInstanceId(base_id, ctx->partition()));
    joint->SetPrimary(std::move(downstream));
    FeedManager::Of(ctx->node())->RegisterJoint(joint);
    return joint;
  };
}

}  // namespace

CentralFeedManager::CentralFeedManager(hyracks::ClusterController* cluster,
                                       FeedCatalog* feeds,
                                       AdaptorRegistry* adaptors,
                                       UdfRegistry* udfs,
                                       PolicyRegistry* policies,
                                       storage::DatasetCatalog* datasets)
    : cluster_(cluster),
      feeds_(feeds),
      adaptors_(adaptors),
      udfs_(udfs),
      policies_(policies),
      datasets_(datasets) {
  cluster_->Subscribe(this);
}

CentralFeedManager::~CentralFeedManager() {
  StopMonitor();
  cluster_->Unsubscribe(this);
}

Status CentralFeedManager::ConnectFeed(const std::string& feed,
                                       const std::string& dataset,
                                       const std::string& policy_name,
                                       ConnectOptions options) {
  common::MutexLock lock(mutex_);
  return ConnectFeedLocked(feed, dataset, policy_name, options);
}

Status CentralFeedManager::ConnectFeedLocked(const std::string& feed,
                                             const std::string& dataset,
                                             const std::string& policy_name,
                                             ConnectOptions options) {
  const std::string id = ConnId(feed, dataset);
  auto existing = connections_.find(id);
  if (existing != connections_.end() && !existing->second.terminated) {
    if (!existing->second.store_detached) {
      return Status::AlreadyExists("feed '" + feed +
                                   "' is already connected to dataset '" +
                                   dataset + "'");
    }
    // Reconnecting a partially dismantled feed (Figure 5.10): the live
    // compute segment is rebuilt with its store stage reattached, and
    // dependent connections follow (their joints are recreated).
    ConnectionInfo* conn = &existing->second;
    ASSIGN_OR_RETURN(conn->policy, policies_->Find(policy_name));
    RETURN_IF_ERROR(RebuildTailLocked(conn, {}, conn->compute_width));
    for (ConnectionInfo* dep : DependentsLocked(*conn)) {
      Status status = RebuildTailLocked(dep, {}, dep->compute_width);
      if (!status.ok()) {
        LOG_MSG(kWarn) << "dependent " << dep->id
                       << " failed to follow reconnect: "
                       << status.ToString();
        TerminateConnectionLocked(dep, status.ToString());
      }
    }
    LOG_MSG(kInfo) << "reconnected " << id << " (store reattached)";
    return Status::OK();
  }
  if (existing != connections_.end()) connections_.erase(existing);

  ASSIGN_OR_RETURN(IngestionPolicy policy, policies_->Find(policy_name));
  ASSIGN_OR_RETURN(storage::DatasetCatalog::Entry ds,
                   datasets_->Find(dataset));
  ASSIGN_OR_RETURN(std::vector<FeedDef> path, feeds_->PathFromRoot(feed));

  // Joint ids along the lineage: the raw collected records are
  // "<root>"; each feed's records are the accumulated function chain
  // "<root>:f1:...:fk" (§5.3.1 naming).
  std::vector<std::string> feed_jids(path.size());
  std::string accumulated = path[0].name;
  for (size_t i = 0; i < path.size(); ++i) {
    if (!path[i].udf.empty()) accumulated += ":" + path[i].udf;
    feed_jids[i] = accumulated;
  }

  // Source selection (§5.3.2): the nearest ancestor feed (or this feed
  // itself) whose records already flow through an available joint wins;
  // the raw head joint is the fallback.
  std::string source_joint;
  std::vector<std::string> udf_chain;
  for (int k = static_cast<int>(path.size()) - 1; k >= 0; --k) {
    if (joints_.count(feed_jids[k]) > 0) {
      source_joint = feed_jids[k];
      for (size_t j = k + 1; j < path.size(); ++j) {
        if (!path[j].udf.empty()) udf_chain.push_back(path[j].udf);
      }
      break;
    }
  }
  if (source_joint.empty()) {
    // Head section needed (possibly already built by a sibling).
    const FeedDef& root = path[0];
    if (heads_.count(root.name) == 0) {
      RETURN_IF_ERROR(BuildHeadLocked(root, {}));
    }
    source_joint = root.name;
    for (const FeedDef& def : path) {
      if (!def.udf.empty()) udf_chain.push_back(def.udf);
    }
  }

  // Validate UDFs up front.
  for (const std::string& name : udf_chain) {
    auto udf = udfs_->Find(name);
    if (!udf.ok()) return udf.status();
  }

  ConnectionInfo conn;
  conn.id = id;
  conn.feed = feed;
  conn.dataset = dataset;
  conn.policy = std::move(policy);
  conn.options = options;
  conn.source_joint = source_joint;
  conn.udf_chain = std::move(udf_chain);
  conn.head_root = path[0].name;
  conn.store_locations = ds.nodegroup;
  // The connection id doubles as the registry label: every counter/gauge
  // of this connection exports as feed_*{connection="<feed>-><dataset>"}.
  conn.metrics = std::make_shared<ConnectionMetrics>(id);
  int width = options.compute_count > 0
                  ? options.compute_count
                  : static_cast<int>(cluster_->AliveNodeIds().size());
  conn.compute_width = std::max(1, width);
  conn.initial_compute_width = conn.compute_width;

  auto [it, inserted] = connections_.emplace(id, std::move(conn));
  Status status = BuildTailLocked(&it->second);
  if (!status.ok()) {
    connections_.erase(it);
    return status;
  }
  LOG_MSG(kInfo) << "connected " << id << " via joint '"
                 << it->second.source_joint << "' applying ["
                 << common::Join(it->second.udf_chain, ",") << "]";
  return Status::OK();
}

Status CentralFeedManager::BuildHeadLocked(
    const FeedDef& root, const std::vector<std::string>& locations) {
  if (!root.is_primary) {
    return Status::Internal("head section requires a primary feed");
  }
  ASSIGN_OR_RETURN(std::shared_ptr<AdaptorFactory> factory,
                   adaptors_->Find(root.adaptor_alias));
  std::vector<std::string> collect_locations = locations;
  for (auto& loc : collect_locations) {
    auto* node = cluster_->GetNode(loc);
    if (node == nullptr || !node->alive()) {
      std::set<std::string> avoid(collect_locations.begin(),
                                  collect_locations.end());
      std::string substitute = PickSubstituteLocked(avoid);
      if (!substitute.empty()) loc = substitute;
    }
  }
  if (collect_locations.empty()) {
    ASSIGN_OR_RETURN(hyracks::PartitionConstraint constraint,
                     factory->GetConstraints(root.adaptor_config));
    if (!constraint.locations.empty()) {
      collect_locations = constraint.locations;
    } else {
      std::vector<std::string> alive = cluster_->AliveNodeIds();
      if (alive.empty()) return Status::Unavailable("no alive nodes");
      for (int i = 0; i < constraint.count; ++i) {
        collect_locations.push_back(alive[i % alive.size()]);
      }
    }
  }

  PipelineConfig pcfg;
  pcfg.connection_id = "head:" + root.name;
  pcfg.policy = IngestionPolicy("Basic", {});
  pcfg.metrics = std::make_shared<ConnectionMetrics>(pcfg.connection_id);
  pcfg.ack_bus = ack_bus_;
  pcfg.spill_dir = cluster_->options().storage_root;

  JobSpec spec;
  spec.name = "head:" + root.name;
  spec.failure_policy = hyracks::NodeFailurePolicy::kNotifyOnly;
  spec.output_interceptor = MakeJointInterceptor();

  const std::string joint_base = root.name;
  const AdaptorConfig config = root.adaptor_config;
  int collect = spec.AddOperator(
      {"collect",
       {collect_locations, 0},
       [factory, config, joint_base, pcfg](int partition) {
         return std::make_unique<FeedCollectOperator>(
             factory, config, JointInstanceId(joint_base, partition),
             pcfg);
       },
       joint_base});
  int nullsink = spec.AddOperator(
      {"nullsink",
       {collect_locations, 0},
       [](int) { return std::make_unique<hyracks::NullSinkOperator>(); },
       ""});
  spec.Connect(collect, nullsink, {ConnectorKind::kOneToOne, nullptr});

  auto job = cluster_->StartJob(std::move(spec));
  if (!job.ok()) return job.status();

  heads_[root.name] =
      HeadSection{root.name, *job, collect_locations, pcfg.metrics};
  joints_[root.name] =
      JointInfo{root.name, "", "collect", collect_locations};
  return Status::OK();
}

Status CentralFeedManager::BuildTailLocked(ConnectionInfo* conn) {
  auto source_it = joints_.find(conn->source_joint);
  if (source_it == joints_.end()) {
    return Status::Internal("source joint '" + conn->source_joint +
                            "' vanished");
  }
  conn->intake_locations = source_it->second.locations;

  ASSIGN_OR_RETURN(storage::DatasetCatalog::Entry ds,
                   datasets_->Find(conn->dataset));

  // Compute-stage placement: keep prior locations (rebuild) or pick
  // round-robin over alive nodes.
  if (conn->assign_locations.size() != conn->udf_chain.size()) {
    conn->assign_locations.clear();
    if (!conn->options.compute_locations.empty()) {
      for (size_t i = 0; i < conn->udf_chain.size(); ++i) {
        conn->assign_locations.push_back(conn->options.compute_locations);
      }
      conn->compute_width =
          static_cast<int>(conn->options.compute_locations.size());
    } else {
      std::vector<std::string> alive = cluster_->AliveNodeIds();
      if (alive.empty()) return Status::Unavailable("no alive nodes");
      size_t rr = 0;
      for (size_t i = 0; i < conn->udf_chain.size(); ++i) {
        std::vector<std::string> stage;
        for (int p = 0; p < conn->compute_width; ++p) {
          stage.push_back(alive[rr++ % alive.size()]);
        }
        conn->assign_locations.push_back(std::move(stage));
      }
    }
  }

  PipelineConfig pcfg;
  pcfg.connection_id = conn->id;
  pcfg.policy = conn->policy;
  pcfg.metrics = conn->metrics;
  pcfg.ack_bus = ack_bus_;
  pcfg.spill_dir = cluster_->options().storage_root;

  JobSpec spec;
  spec.name = "tail:" + conn->id;
  spec.failure_policy = hyracks::NodeFailurePolicy::kNotifyOnly;
  spec.output_interceptor = MakeJointInterceptor();

  const std::string source_base = conn->source_joint;
  int intake = spec.AddOperator(
      {"intake",
       {conn->intake_locations, 0},
       [source_base, pcfg](int partition) {
         return std::make_unique<FeedIntakeOperator>(
             JointInstanceId(source_base, partition), pcfg);
       },
       ""});

  conn->exposed_joints.clear();
  int prev = intake;
  std::string jid = conn->source_joint;
  for (size_t i = 0; i < conn->udf_chain.size(); ++i) {
    jid += ":" + conn->udf_chain[i];
    ASSIGN_OR_RETURN(std::shared_ptr<Udf> udf,
                     udfs_->Find(conn->udf_chain[i]));
    std::string op_name = "assign" + std::to_string(i);
    std::string state_key = conn->id + ":" + op_name;
    IngestionPolicy policy = conn->policy;
    auto metrics = conn->metrics;
    int assign = spec.AddOperator(
        {op_name,
         {conn->assign_locations[i], 0},
         [udf, pcfg, policy, state_key, metrics](int) {
           return WrapWithMetaFeed(
               std::make_unique<AssignOperator>(
                   std::vector<std::shared_ptr<Udf>>{udf}, pcfg),
               policy, state_key, metrics);
         },
         jid});
    spec.Connect(prev, assign, {ConnectorKind::kMToNRandom, nullptr});
    conn->exposed_joints.push_back(jid);
    prev = assign;
  }

  const std::string pk_field = ds.def.primary_key_field;
  const std::string dataset_name = conn->dataset;
  IngestionPolicy policy = conn->policy;
  std::string store_state_key = conn->id + ":store";
  auto metrics = conn->metrics;
  int store = spec.AddOperator(
      {"store",
       {conn->store_locations, 0},
       [dataset_name, pcfg, policy, store_state_key, metrics](int) {
         return WrapWithMetaFeed(
             std::make_unique<FeedStoreOperator>(dataset_name, pcfg),
             policy, store_state_key, metrics);
       },
       ""});
  spec.Connect(prev, store,
               {ConnectorKind::kMToNHash,
                [pk_field](const adm::Value& record) {
                  const adm::Value* key = record.GetField(pk_field);
                  return key != nullptr ? key->ToAdmString()
                                        : std::string();
                }});

  auto job = cluster_->StartJob(std::move(spec));
  if (!job.ok()) return job.status();
  conn->tail_job = *job;
  conn->store_detached = false;

  // Publish the new compute-stage joints.
  jid = conn->source_joint;
  for (size_t i = 0; i < conn->udf_chain.size(); ++i) {
    jid += ":" + conn->udf_chain[i];
    joints_[jid] = JointInfo{jid, conn->id,
                             "assign" + std::to_string(i),
                             conn->assign_locations[i]};
  }
  return Status::OK();
}

int CentralFeedManager::CountActiveSubscribersLocked(
    const std::string& joint_id) {
  int count = 0;
  for (const auto& [id, conn] : connections_) {
    if (!conn.terminated && conn.source_joint == joint_id) ++count;
  }
  return count;
}

std::vector<ConnectionInfo*> CentralFeedManager::DependentsLocked(
    const ConnectionInfo& conn) {
  std::vector<ConnectionInfo*> dependents;
  for (auto& [id, other] : connections_) {
    if (other.terminated || other.id == conn.id) continue;
    for (const std::string& joint : conn.exposed_joints) {
      if (other.source_joint == joint) {
        dependents.push_back(&other);
        break;
      }
    }
  }
  return dependents;
}

Status CentralFeedManager::DisconnectFeed(const std::string& feed,
                                          const std::string& dataset) {
  common::MutexLock lock(mutex_);
  auto it = connections_.find(ConnId(feed, dataset));
  if (it == connections_.end() || it->second.terminated) {
    return Status::NotFound("feed '" + feed +
                            "' is not connected to dataset '" + dataset +
                            "'");
  }
  ConnectionInfo* conn = &it->second;

  if (!DependentsLocked(*conn).empty()) {
    // Partial dismantling (Figure 5.10(b)): the store stage terminates
    // but the compute stage lives on, serving the dependent feeds.
    if (conn->store_detached) return Status::OK();
    const std::string& last_joint = conn->exposed_joints.back();
    auto jinfo = joints_.find(last_joint);
    if (jinfo != joints_.end()) {
      for (size_t p = 0; p < jinfo->second.locations.size(); ++p) {
        auto* node = cluster_->GetNode(jinfo->second.locations[p]);
        if (node == nullptr || !node->alive()) continue;
        auto joint = FeedManager::Of(node)->LookupJoint(
            JointInstanceId(last_joint, static_cast<int>(p)));
        if (joint != nullptr) joint->DetachPrimary();
      }
    }
    conn->store_detached = true;
    LOG_MSG(kInfo) << "partially disconnected " << conn->id
                   << " (dependent feeds keep flowing)";
    return Status::OK();
  }
  return FullDisconnectLocked(conn);
}

Status CentralFeedManager::FullDisconnectLocked(ConnectionInfo* conn) {
  if (conn->tail_job != nullptr) {
    conn->tail_job->FinishSources();
    if (!conn->tail_job->Wait(10000)) {
      LOG_MSG(kWarn) << conn->id
                     << ": graceful disconnect timed out; aborting";
      conn->tail_job->Abort();
      conn->tail_job->Wait(2000);
    }
    cluster_->ForgetJob(conn->tail_job->id());
  }
  // Remove this connection's joints from the registry and the nodes.
  for (const std::string& jid : conn->exposed_joints) {
    auto info = joints_.find(jid);
    if (info != joints_.end()) {
      for (size_t p = 0; p < info->second.locations.size(); ++p) {
        auto* node = cluster_->GetNode(info->second.locations[p]);
        if (node != nullptr) {
          FeedManager::Of(node)->UnregisterJoint(
              JointInstanceId(jid, static_cast<int>(p)));
        }
      }
      joints_.erase(info);
    }
  }
  conn->exposed_joints.clear();
  conn->terminated = true;
  LOG_MSG(kInfo) << "disconnected " << conn->id;
  ReleaseHeadIfIdleLocked(conn->head_root);
  return Status::OK();
}

void CentralFeedManager::ReleaseHeadIfIdleLocked(
    const std::string& root_feed) {
  auto head = heads_.find(root_feed);
  if (head == heads_.end()) return;
  for (const auto& [id, conn] : connections_) {
    if (!conn.terminated && conn.head_root == root_feed) return;
  }
  // No active connection draws from this head: stop collecting.
  head->second.job->FinishSources();
  head->second.job->Wait(5000);
  cluster_->ForgetJob(head->second.job->id());
  for (size_t p = 0; p < head->second.collect_locations.size(); ++p) {
    auto* node = cluster_->GetNode(head->second.collect_locations[p]);
    if (node != nullptr) {
      FeedManager::Of(node)->UnregisterJoint(
          JointInstanceId(root_feed, static_cast<int>(p)));
    }
  }
  joints_.erase(root_feed);
  heads_.erase(head);
  LOG_MSG(kInfo) << "released head section of " << root_feed;
}

std::shared_ptr<ConnectionMetrics> CentralFeedManager::GetHeadMetrics(
    const std::string& root_feed) const {
  common::MutexLock lock(mutex_);
  auto it = heads_.find(root_feed);
  return it == heads_.end() ? nullptr : it->second.metrics;
}

std::shared_ptr<ConnectionMetrics> CentralFeedManager::GetMetrics(
    const std::string& feed, const std::string& dataset) const {
  common::MutexLock lock(mutex_);
  auto it = connections_.find(ConnId(feed, dataset));
  return it == connections_.end() ? nullptr : it->second.metrics;
}

Result<ConnectionInfo> CentralFeedManager::GetConnection(
    const std::string& feed, const std::string& dataset) const {
  common::MutexLock lock(mutex_);
  auto it = connections_.find(ConnId(feed, dataset));
  if (it == connections_.end()) {
    return Status::NotFound("no connection " + ConnId(feed, dataset));
  }
  return it->second;
}

std::vector<std::string> CentralFeedManager::ActiveConnectionIds() const {
  common::MutexLock lock(mutex_);
  std::vector<std::string> ids;
  for (const auto& [id, conn] : connections_) {
    if (!conn.terminated) ids.push_back(id);
  }
  return ids;
}

CentralFeedManager::ConnectionHealth CentralFeedManager::Health(
    const std::string& feed, const std::string& dataset) const {
  common::MutexLock lock(mutex_);
  auto it = connections_.find(ConnId(feed, dataset));
  if (it == connections_.end()) return ConnectionHealth::kUnknown;
  if (it->second.terminated) return ConnectionHealth::kFailed;
  const auto& job = it->second.tail_job;
  if (job == nullptr) return ConnectionHealth::kUnknown;
  if (!job->Finished()) return ConnectionHealth::kActive;
  for (const auto& group : job->tasks()) {
    for (const auto& task : group) {
      const common::Status& status = task->final_status();
      if (!status.ok() && !status.IsAborted()) {
        return ConnectionHealth::kFailed;
      }
    }
  }
  return ConnectionHealth::kCompleted;
}

bool CentralFeedManager::IsConnected(const std::string& feed,
                                     const std::string& dataset) const {
  return Health(feed, dataset) == ConnectionHealth::kActive;
}

// --- Chapter 6: hard failures ----------------------------------------------

void CentralFeedManager::OnClusterEvent(
    const hyracks::ClusterEvent& event) {
  common::MutexLock lock(mutex_);
  if (event.kind == hyracks::ClusterEvent::Kind::kNodeFailed) {
    HandleNodeFailureLocked(event.node_id);
  } else if (event.kind == hyracks::ClusterEvent::Kind::kNodeJoined) {
    HandleNodeRejoinLocked(event.node_id);
  }
}

void CentralFeedManager::HandleNodeRejoinLocked(
    const std::string& node_id) {
  // Feeds terminated by the loss of this node's store partition are
  // rescheduled now that the partition is available again (§6.2.3). The
  // rejoined node's WAL-recovered partitions still exist in its storage
  // manager; rebuilding the tail reattaches the store stage.
  for (auto& [id, conn] : connections_) {
    if (!conn.terminated) continue;
    if (std::find(conn.store_locations.begin(),
                  conn.store_locations.end(),
                  node_id) == conn.store_locations.end()) {
      continue;
    }
    // Every store partition must be back before rescheduling.
    bool all_alive = true;
    for (const std::string& store : conn.store_locations) {
      auto* node = cluster_->GetNode(store);
      if (node == nullptr || !node->alive() ||
          node->storage().GetPartition(conn.dataset) == nullptr) {
        all_alive = false;
      }
    }
    if (!all_alive) continue;
    LOG_MSG(kInfo) << "store node " << node_id
                   << " rejoined; rescheduling feed " << id;
    conn.terminated = false;
    conn.tail_job = nullptr;
    conn.assign_locations.clear();
    conn.metrics->ClearIntakeQueues();
    // The head may have been released when this connection terminated.
    Status status = Status::OK();
    if (joints_.count(conn.source_joint) == 0) {
      auto root_def = feeds_->Find(conn.head_root);
      if (root_def.ok() && heads_.count(conn.head_root) == 0) {
        status = BuildHeadLocked(*root_def, {});
      }
      if (status.ok() && joints_.count(conn.source_joint) == 0) {
        // The source joint belonged to another connection's compute
        // stage that is gone; fall back to the head joint with the full
        // UDF chain.
        auto path = feeds_->PathFromRoot(conn.feed);
        if (path.ok()) {
          conn.source_joint = conn.head_root;
          conn.udf_chain.clear();
          for (const FeedDef& def : *path) {
            if (!def.udf.empty()) conn.udf_chain.push_back(def.udf);
          }
        }
      }
    }
    if (status.ok()) status = BuildTailLocked(&conn);
    if (!status.ok()) {
      LOG_MSG(kWarn) << "rescheduling " << id
                     << " failed: " << status.ToString();
      conn.terminated = true;
    }
  }
}

std::string CentralFeedManager::DescribeFeeds() const {
  // Counters come from the registry snapshot (the same numbers Export()
  // publishes), not from the ConnectionMetrics fields directly. Taken
  // before mutex_ — Snapshot() runs providers that take pipeline locks.
  common::MetricsSnapshot snap =
      common::MetricsRegistry::Default().Snapshot();
  common::MutexLock lock(mutex_);
  std::string out;
  for (const auto& [id, conn] : connections_) {
    out += "connection " + id + " [policy " + conn.policy.name() + "]";
    if (conn.terminated) {
      out += " TERMINATED\n";
      continue;
    }
    const common::MetricLabels labels = {{"connection", id}};
    out += conn.store_detached ? " (store detached)\n" : "\n";
    out += "  intake : " + common::Join(conn.intake_locations, " ") +
           "\n";
    for (size_t i = 0; i < conn.assign_locations.size(); ++i) {
      out += "  compute: " + common::Join(conn.assign_locations[i], " ") +
             "  (udf " + conn.udf_chain[i] + ")\n";
    }
    out += "  store  : " + common::Join(conn.store_locations, " ") +
           "\n";
    out += "  records: collected=" +
           std::to_string(
               snap.CounterValue("feed_records_collected_total", labels)) +
           " computed=" +
           std::to_string(
               snap.CounterValue("feed_records_computed_total", labels)) +
           " stored=" +
           std::to_string(
               snap.CounterValue("feed_records_stored_total", labels)) +
           "\n";
  }
  for (const auto& [root, head] : heads_) {
    out += "head " + root + ": collect on " +
           common::Join(head.collect_locations, " ") + " (collected=" +
           std::to_string(snap.CounterValue(
               "feed_records_collected_total",
               {{"connection", "head:" + root}})) +
           ")\n";
  }
  return out;
}

std::string CentralFeedManager::PickSubstituteLocked(
    const std::set<std::string>& avoid) const {
  std::vector<std::string> alive = cluster_->AliveNodeIds();
  for (const std::string& node : alive) {
    if (avoid.count(node) == 0) return node;
  }
  return alive.empty() ? "" : alive.front();
}

void CentralFeedManager::HandleNodeFailureLocked(
    const std::string& failed_node) {
  auto contains = [&](const std::vector<std::string>& v) {
    return std::find(v.begin(), v.end(), failed_node) != v.end();
  };

  // Which head sections lost a collect instance?
  std::set<std::string> dead_heads;
  for (const auto& [root, head] : heads_) {
    if (contains(head.collect_locations)) dead_heads.insert(root);
  }

  // Classify affected connections.
  std::vector<ConnectionInfo*> to_rebuild;
  std::vector<ConnectionInfo*> to_terminate;
  for (auto& [id, conn] : connections_) {
    if (conn.terminated) continue;
    bool assign_hit = false;
    for (const auto& stage : conn.assign_locations) {
      if (contains(stage)) assign_hit = true;
    }
    bool store_hit = contains(conn.store_locations);
    bool intake_hit = contains(conn.intake_locations);
    bool head_hit = dead_heads.count(conn.head_root) > 0;
    if (!(assign_hit || store_hit || intake_hit || head_hit)) continue;

    if (!conn.policy.recover_hard_failure()) {
      to_terminate.push_back(&conn);
    } else if (store_hit && !conn.store_detached) {
      // Loss of a store node = loss of a dataset partition; without
      // data replication there is no substitute (§6.2.3) — the feed
      // terminates early.
      to_terminate.push_back(&conn);
    } else {
      to_rebuild.push_back(&conn);
    }
  }

  // Rebuilding a connection re-creates its joints, so every transitive
  // dependent must rebuild too.
  bool grew = true;
  while (grew) {
    grew = false;
    for (ConnectionInfo* conn : to_rebuild) {
      for (ConnectionInfo* dep : DependentsLocked(*conn)) {
        if (std::find(to_rebuild.begin(), to_rebuild.end(), dep) ==
                to_rebuild.end() &&
            std::find(to_terminate.begin(), to_terminate.end(), dep) ==
                to_terminate.end()) {
          to_rebuild.push_back(dep);
          grew = true;
        }
      }
    }
  }

  for (ConnectionInfo* conn : to_terminate) {
    TerminateConnectionLocked(conn, "lost node " + failed_node);
  }
  if (to_rebuild.empty() && dead_heads.empty()) return;

  // Choose a substitute node (§6.2.2): any alive node; prefer one not
  // already participating in the affected pipelines.
  std::set<std::string> avoid;
  for (const auto& [root, head] : heads_) {
    for (const auto& n : head.collect_locations) avoid.insert(n);
  }
  for (ConnectionInfo* conn : to_rebuild) {
    for (const auto& n : conn->intake_locations) avoid.insert(n);
    for (const auto& stage : conn->assign_locations) {
      for (const auto& n : stage) avoid.insert(n);
    }
  }
  std::string substitute = PickSubstituteLocked(avoid);
  if (substitute.empty()) {
    LOG_MSG(kError) << "no substitute node available; terminating "
                       "affected feeds";
    for (ConnectionInfo* conn : to_rebuild) {
      TerminateConnectionLocked(conn, "no substitute node");
    }
    return;
  }
  std::map<std::string, std::string> subs{{failed_node, substitute}};
  LOG_MSG(kInfo) << "fault-tolerance protocol: substituting "
                 << failed_node << " -> " << substitute << " for "
                 << to_rebuild.size() << " connection(s)";

  // Step 1 of the protocol: alive intake instances buffer; assign and
  // store instances become zombies (their unprocessed input saved with
  // the local Feed Manager).
  for (ConnectionInfo* conn : to_rebuild) {
    if (conn->tail_job == nullptr) continue;
    for (auto& task : conn->tail_job->TasksOfOperator("intake")) {
      if (cluster_->GetNode(task->node_id())->alive()) {
        task->Signal(FeedIntakeOperator::kSignalBuffer);
      }
    }
    std::vector<std::string> ops;
    for (size_t i = 0; i < conn->udf_chain.size(); ++i) {
      ops.push_back("assign" + std::to_string(i));
    }
    ops.push_back("store");
    for (const std::string& op : ops) {
      for (auto& task : conn->tail_job->TasksOfOperator(op)) {
        auto* node = cluster_->GetNode(task->node_id());
        if (node == nullptr || !node->alive()) continue;
        auto frames_msgs = task->FreezeAndDrain();
        std::vector<hyracks::FramePtr> frames;
        for (auto& msg : frames_msgs) frames.push_back(msg.frame);
        FeedManager::Of(node)->SaveZombieState(
            conn->id + ":" + op + ":" +
                std::to_string(task->partition()),
            std::move(frames));
      }
    }
  }

  // Step 2: resurrect head sections on the substitute node.
  for (const std::string& root : dead_heads) {
    auto head = heads_.find(root);
    if (head == heads_.end()) continue;
    head->second.job->Abort();
    cluster_->ForgetJob(head->second.job->id());
    std::vector<std::string> locations = head->second.collect_locations;
    for (auto& loc : locations) {
      if (loc == failed_node) loc = substitute;
    }
    auto root_def = feeds_->Find(root);
    heads_.erase(head);
    joints_.erase(root);
    if (root_def.ok()) {
      Status status = BuildHeadLocked(*root_def, locations);
      if (!status.ok()) {
        LOG_MSG(kError) << "failed to resurrect head of " << root << ": "
                        << status.ToString();
      }
    }
  }

  // Step 3: rebuild each affected tail (handoff + revised schedule).
  for (ConnectionInfo* conn : to_rebuild) {
    Status status = RebuildTailLocked(conn, subs, conn->compute_width);
    if (status.ok()) {
      LOG_MSG(kInfo) << "resurrected " << conn->id << " (intake on "
                     << common::Join(conn->intake_locations, ",")
                     << (conn->assign_locations.empty()
                             ? ""
                             : "; compute on " +
                                   common::Join(
                                       conn->assign_locations[0], ","))
                     << ")";
    }
    if (!status.ok()) {
      LOG_MSG(kError) << "failed to resurrect " << conn->id << ": "
                      << status.ToString();
      TerminateConnectionLocked(conn, status.ToString());
    }
  }
}

Status CentralFeedManager::RebuildTailLocked(
    ConnectionInfo* conn,
    const std::map<std::string, std::string>& substitutions,
    int new_compute_width) {
  // Handoff: intake instances save their buffered/unread frames as
  // zombie state and exit; the revised pipeline's intakes take over.
  if (conn->tail_job != nullptr) {
    auto intakes = conn->tail_job->TasksOfOperator("intake");
    for (auto& task : intakes) {
      auto* node = cluster_->GetNode(task->node_id());
      if (node != nullptr && node->alive()) {
        task->Signal(FeedIntakeOperator::kSignalHandoff);
      }
    }
    common::Stopwatch watch;
    for (auto& task : intakes) {
      auto* node = cluster_->GetNode(task->node_id());
      if (node == nullptr || !node->alive()) continue;
      while (!task->finished() && watch.ElapsedMillis() < 3000) {
        common::SleepMillis(2);
      }
    }
    conn->tail_job->Abort();
    cluster_->ForgetJob(conn->tail_job->id());
    conn->tail_job = nullptr;
  }

  // Revised placement: apply the requested substitutions, then sweep for
  // any OTHER dead nodes (concurrent failures may land between events).
  auto substitute_all = [&](std::vector<std::string>* locations) {
    for (auto& loc : *locations) {
      auto it = substitutions.find(loc);
      if (it != substitutions.end()) loc = it->second;
      auto* node = cluster_->GetNode(loc);
      if (node == nullptr || !node->alive()) {
        std::set<std::string> avoid(locations->begin(), locations->end());
        std::string substitute = PickSubstituteLocked(avoid);
        if (!substitute.empty()) loc = substitute;
      }
    }
  };
  for (auto& stage : conn->assign_locations) substitute_all(&stage);
  if (new_compute_width != conn->compute_width) {
    conn->compute_width = std::max(1, new_compute_width);
    conn->assign_locations.clear();  // re-place at the new width
    conn->options.compute_locations.clear();
  }
  conn->metrics->ClearIntakeQueues();

  // Old compute joints are superseded by the rebuild.
  for (const std::string& jid : conn->exposed_joints) joints_.erase(jid);

  return BuildTailLocked(conn);
}

void CentralFeedManager::TerminateConnectionLocked(ConnectionInfo* conn,
                                                   const std::string& why) {
  if (conn->terminated) return;
  LOG_MSG(kWarn) << "terminating feed connection " << conn->id << ": "
                 << why;
  if (conn->tail_job != nullptr) {
    conn->tail_job->Abort();
    cluster_->ForgetJob(conn->tail_job->id());
  }
  for (const std::string& jid : conn->exposed_joints) {
    auto info = joints_.find(jid);
    if (info != joints_.end()) {
      for (size_t p = 0; p < info->second.locations.size(); ++p) {
        auto* node = cluster_->GetNode(info->second.locations[p]);
        if (node != nullptr && node->alive()) {
          FeedManager::Of(node)->UnregisterJoint(
              JointInstanceId(jid, static_cast<int>(p)));
        }
      }
      joints_.erase(info);
    }
  }
  conn->terminated = true;
  ReleaseHeadIfIdleLocked(conn->head_root);
}

// --- Chapter 7: the congestion monitor / Elastic policy ---------------------

void CentralFeedManager::StartMonitor(int64_t period_ms) {
  if (monitoring_.exchange(true)) return;
  monitor_thread_ =
      std::thread([this, period_ms] { MonitorLoop(period_ms); });
}

void CentralFeedManager::StopMonitor() {
  if (!monitoring_.exchange(false)) return;
  if (monitor_thread_.joinable()) monitor_thread_.join();
}

Status CentralFeedManager::Rescale(const std::string& feed,
                                   const std::string& dataset,
                                   int new_width) {
  common::MutexLock lock(mutex_);
  auto it = connections_.find(ConnId(feed, dataset));
  if (it == connections_.end() || it->second.terminated) {
    return Status::NotFound("no active connection for " +
                            ConnId(feed, dataset));
  }
  if (it->second.udf_chain.empty()) {
    return Status::FailedPrecondition(
        "connection has no compute stage to rescale");
  }
  return RebuildTailLocked(&it->second, {}, new_width);
}

void CentralFeedManager::MonitorLoop(int64_t period_ms) {
  while (monitoring_.load()) {
    // One registry snapshot per tick, taken BEFORE mutex_: Snapshot()
    // evaluates the connection providers, which walk intake queues under
    // their own locks. The decision itself is pure
    // (policy.h::EvaluateElastic) and unit-testable against a synthetic
    // snapshot.
    common::MetricsSnapshot snap =
        common::MetricsRegistry::Default().Snapshot();
    {
      common::MutexLock lock(mutex_);
      for (auto& [id, conn] : connections_) {
        if (conn.terminated || conn.store_detached ||
            conn.udf_chain.empty()) {
          continue;
        }
        CongestionSignals signals;
        signals.intake_pending_bytes =
            snap.GaugeValue("feed_intake_pending_bytes",
                            {{"connection", id}});
        signals.compute_width = conn.compute_width;
        signals.initial_compute_width = conn.initial_compute_width;
        signals.alive_nodes =
            static_cast<int>(cluster_->AliveNodeIds().size());
        ScaleDecision decision =
            EvaluateElastic(signals, conn.policy, &conn.congestion);
        switch (decision) {
          case ScaleDecision::kScaleOut:
          case ScaleDecision::kScaleIn: {
            int new_width = conn.compute_width +
                (decision == ScaleDecision::kScaleOut ? 1 : -1);
            LOG_MSG(kInfo) << "elastic "
                           << (decision == ScaleDecision::kScaleOut
                                   ? "scale-out"
                                   : "scale-in")
                           << " of " << id << " to width " << new_width;
            Status rebuild_status = RebuildTailLocked(&conn, {}, new_width);
            if (!rebuild_status.ok()) {
              // The old tail is still running at the old width; the
              // monitor retries on a later evaluation when the signals
              // still warrant it.
              LOG_MSG(kWarn) << "elastic rescale of " << id << " failed: "
                             << rebuild_status.message();
            }
            break;
          }
          case ScaleDecision::kNone:
            break;
        }
      }
    }
    common::SleepMillis(period_ms);
  }
}

}  // namespace feeds
}  // namespace asterix
