// Feed metadata (§5.1): the Feeds dataset of the Metadata dataverse.
// Primary feeds carry an adaptor alias + configuration; secondary feeds
// carry their parent's name; either kind may carry a pre-processing UDF.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "feeds/adaptor.h"

namespace asterix {
namespace feeds {

struct FeedDef {
  std::string name;
  bool is_primary = true;
  /// Primary feeds: the datasource adaptor and its configuration.
  std::string adaptor_alias;
  AdaptorConfig adaptor_config;
  /// Secondary feeds: the parent feed.
  std::string parent_feed;
  /// Optional pre-processing function (AQL or Java UDF name).
  std::string udf;
};

class FeedCatalog {
 public:
  [[nodiscard]] common::Status CreateFeed(FeedDef def);
  [[nodiscard]] common::Status DropFeed(const std::string& name);
  [[nodiscard]] common::Result<FeedDef> Find(const std::string& name) const;

  /// The feed's lineage from the primary root down to the feed itself:
  /// [root, ..., parent, feed]. Errors on unknown feeds or cycles.
  [[nodiscard]] common::Result<std::vector<FeedDef>> PathFromRoot(
      const std::string& name) const;

  std::vector<std::string> Names() const;

 private:
  mutable common::Mutex mutex_{common::LockRank::kFeedCatalog};
  std::map<std::string, FeedDef> feeds_ GUARDED_BY(mutex_);
};

}  // namespace feeds
}  // namespace asterix

