#include "feeds/operators.h"

#include <stdexcept>

#include "adm/parser.h"
#include "common/clock.h"
#include "common/logging.h"
#include "feeds/trace.h"

namespace asterix {
namespace feeds {

using adm::Value;
using common::Status;
using hyracks::FramePtr;
using hyracks::TaskContext;

// --- FeedCollectOperator ------------------------------------------------

FeedCollectOperator::FeedCollectOperator(
    std::shared_ptr<AdaptorFactory> factory, AdaptorConfig config,
    std::string joint_id, PipelineConfig pipeline)
    : factory_(std::move(factory)),
      config_(std::move(config)),
      joint_id_(std::move(joint_id)),
      pipeline_(std::move(pipeline)) {}

Status FeedCollectOperator::Open(TaskContext* ctx) {
  // The joint at this operator's output is installed by the scheduler's
  // output interceptor and registered with the local Feed Manager before
  // tasks start; grab it to observe the subscriber count.
  own_joint_ = FeedManager::Of(ctx->node())->LookupJoint(joint_id_);
  return Status::OK();
}

Status FeedCollectOperator::Run(TaskContext* ctx) {
  hyracks::FrameAppender appender(ctx->writer(),
                                  pipeline_.frame_records);
  // Traces are born here, at the source: each emitted frame draws a fresh
  // sampling decision when its first record arrives.
  appender.SetTraceSource([] { return Tracer::Instance().StartTrace(); });
  const int64_t max_soft =
      pipeline_.policy.max_consecutive_soft_failures();
  const bool recover_soft = pipeline_.policy.recover_soft_failure();

  while (!ctx->ShouldStop()) {
    // Deferred adaptor creation (§5.3.1): no data is fetched from the
    // external source until someone asks for this feed's output.
    if (adaptor_ == nullptr) {
      if (own_joint_ != nullptr && own_joint_->subscriber_count() == 0) {
        common::SleepMillis(2);
        continue;
      }
      auto adaptor = factory_->Create(config_, ctx->partition());
      if (!adaptor.ok()) return adaptor.status();
      adaptor_ = std::move(adaptor).value();
    }

    auto batch = adaptor_->Fetch(/*max=*/256, /*timeout_ms=*/20);
    if (!batch.ok()) {
      // External source failure: recovery is the adaptor's job (§6.2.3).
      Status reconnect = adaptor_->Reconnect();
      if (!reconnect.ok()) {
        LOG_MSG(kWarn) << "feed " << pipeline_.connection_id
                       << ": source lost and reconnect failed: "
                       << reconnect.ToString();
        return reconnect;  // the feed terminates
      }
      continue;
    }
    for (const std::string& payload : batch->payloads) {
      auto record = adm::ParseAdm(payload);
      if (!record.ok()) {
        // Formatting error in the content: a soft failure (§6.1).
        pipeline_.metrics->soft_failures.fetch_add(1);
        LOG_MSG(kWarn) << "feed " << pipeline_.connection_id
                       << ": dropped malformed record: "
                       << record.status().message();
        if (!recover_soft) return record.status();
        if (++consecutive_soft_failures_ > max_soft) {
          return Status::Aborted(
              "feed exceeded " + std::to_string(max_soft) +
              " consecutive soft failures at intake; likely a bad "
              "source or invalid assumption about its format");
        }
        continue;
      }
      consecutive_soft_failures_ = 0;
      pipeline_.metrics->records_collected.fetch_add(1);
      RETURN_IF_ERROR(appender.Append(std::move(*record)));
    }
    RETURN_IF_ERROR(appender.FlushFrame());
    if (batch->end_of_source) return Status::OK();
  }
  return appender.FlushFrame();
}

// --- FeedIntakeOperator ---------------------------------------------------

FeedIntakeOperator::FeedIntakeOperator(std::string source_joint_id,
                                       PipelineConfig pipeline)
    : source_joint_id_(std::move(source_joint_id)),
      pipeline_(std::move(pipeline)) {}

Status FeedIntakeOperator::Open(TaskContext* ctx) {
  feed_manager_ = FeedManager::Of(ctx->node());
  // The search API (§5.2): discover the co-located subscribable instance.
  source_joint_ = feed_manager_->LookupJoint(source_joint_id_);
  if (source_joint_ == nullptr) {
    return Status::NotFound("node " + ctx->node_id() +
                            " has no feed joint '" + source_joint_id_ +
                            "' (intake must be co-located)");
  }

  SubscriberOptions options;
  options.mode = pipeline_.policy.excess_mode();
  options.memory_budget_bytes = pipeline_.policy.memory_budget_bytes();
  options.max_spill_bytes = pipeline_.policy.max_spill_bytes();
  options.throttle_after_spill = pipeline_.policy.GetBool(
      IngestionPolicy::kExcessRecordsThrottle, false) &&
      options.mode == ExcessMode::kSpill;
  options.spill_dir = pipeline_.spill_dir;
  options.name = pipeline_.connection_id + ".p" +
                 std::to_string(ctx->partition());

  // Resume any state handed off by a predecessor instance (recovery):
  // oldest first — the predecessor's unforwarded frames...
  std::string state_key = pipeline_.connection_id + ":intake:" +
                          std::to_string(ctx->partition());
  for (FramePtr& frame : feed_manager_->TakeZombieState(state_key)) {
    held_.push_back(std::move(frame));
  }
  // ...then its still-subscribed input buffer, adopted outright when the
  // producing joint is unchanged (no delivery gap), or drained into the
  // held buffer when the head was itself rebuilt.
  auto handoff = feed_manager_->TakeIntakeHandoff(state_key);
  if (handoff.has_value()) {
    if (handoff->joint == source_joint_) {
      queue_ = handoff->queue;
    } else {
      handoff->joint->Unsubscribe(handoff->queue);
      for (;;) {
        std::vector<FramePtr> batch = handoff->queue->NextBatch(0);
        if (batch.empty()) break;
        for (FramePtr& frame : batch) held_.push_back(std::move(frame));
      }
    }
  }
  if (queue_ == nullptr) queue_ = source_joint_->Subscribe(options);
  pipeline_.metrics->RegisterIntakeQueue(queue_);

  at_least_once_ = pipeline_.policy.at_least_once() &&
                   options.mode != ExcessMode::kDiscard &&
                   options.mode != ExcessMode::kThrottle;
  if (at_least_once_) {
    pending_ = std::make_unique<PendingTracker>(
        pipeline_.policy.ack_timeout_ms());
    PendingTracker* tracker = pending_.get();
    pipeline_.ack_bus->Register(
        pipeline_.connection_id, ctx->partition(),
        [tracker](const std::vector<int64_t>& tids) {
          tracker->Ack(tids);
        });
  }

  return Status::OK();
}

Status FeedIntakeOperator::ForwardFrame(const FramePtr& frame,
                                        TaskContext* ctx) {
  hyracks::TraceContext tc = frame->trace();
  if (!tc.sampled()) {
    // Frames arriving untraced (zombie restores, spill round-trips, heads
    // built before sampling was enabled) get stamped at intake — one
    // relaxed load when sampling is off.
    tc = Tracer::Instance().StartTrace();
  }
  const int64_t start_us = tc.sampled() ? common::NowMicros() : 0;
  Status result = ForwardTagged(frame, tc, ctx);
  if (tc.sampled()) {
    // Primary span: augmentation + downstream router hand-off.
    TraceSpan span;
    span.trace_id = tc.id;
    span.stage = "intake";
    span.where = ctx->node_id();
    span.partition = ctx->partition();
    span.start_us = start_us;
    span.duration_us = common::NowMicros() - start_us;
    span.records = static_cast<int64_t>(frame->record_count());
    span.status = result.ok() ? "ok" : "error";
    Tracer::Instance().RecordSpan(std::move(span));
  }
  return result;
}

Status FeedIntakeOperator::ForwardTagged(const FramePtr& frame,
                                         const hyracks::TraceContext& tc,
                                         TaskContext* ctx) {
  if (!at_least_once_) {
    if (tc.sampled() && !frame->trace().sampled()) {
      // Re-wrap to carry the trace minted above (records are shared
      // values; only the frame shell is rebuilt).
      std::vector<Value> records = frame->records();
      return ctx->writer()->NextFrame(hyracks::MakeFrame(
          std::move(records), frame->ApproxBytes(), tc));
    }
    return ctx->writer()->NextFrame(frame);
  }
  // Augment records with tracking ids at forward time and remember them
  // until the store stage acks (§5.6). Records restored from a zombie
  // handoff already carry a tracking id; they keep it and are re-tracked
  // so a second failure still replays them.
  std::vector<Value> augmented;
  augmented.reserve(frame->record_count());
  for (const Value& record : frame->records()) {
    Value copy = record;
    if (copy.is_record()) {
      int64_t tid;
      const Value* existing = copy.GetField(kTrackingIdField);
      if (existing != nullptr &&
          existing->tag() == adm::TypeTag::kInt64) {
        tid = existing->AsInt64();
      } else {
        tid = MakeTrackingId(ctx->partition(), next_seq_++);
        copy.SetField(kTrackingIdField, Value::Int64(tid));
      }
      pending_->Track(tid, copy);
    }
    augmented.push_back(std::move(copy));
  }
  return ctx->writer()->NextFrame(
      hyracks::MakeFrame(std::move(augmented), tc));
}

Status FeedIntakeOperator::Run(TaskContext* ctx) {
  // Tracking ids embed the partition for ack routing.
  next_seq_ = 0;
  const int partition = ctx->partition();
  (void)partition;

  while (true) {
    if (ctx->ShouldStop()) {
      if (!ctx->GracefulStopRequested()) return Status::OK();  // killed
      // Graceful disconnect: stop receiving new data, but let already
      // received records traverse the pipeline (§5.5).
      source_joint_->Unsubscribe(queue_);
      for (FramePtr& frame : held_) RETURN_IF_ERROR(ForwardFrame(frame, ctx));
      held_.clear();
      for (;;) {
        std::vector<FramePtr> batch = queue_->NextBatch(0);
        if (batch.empty()) break;
        for (FramePtr& frame : batch) {
          RETURN_IF_ERROR(ForwardFrame(frame, ctx));
        }
      }
      return Status::OK();
    }

    Mode mode = mode_.load();
    if (mode == Mode::kHandoff) {
      // Hand everything to the successor instance (§6.2.3): the held
      // frames and the unacked at-least-once ledger go to the local Feed
      // Manager as zombie state, and the input queue is left SUBSCRIBED
      // and saved as an intake handoff — the successor takes ownership
      // of the input buffer, so no frame routed during the swap is lost.
      std::vector<FramePtr> state = std::move(held_);
      held_.clear();
      if (at_least_once_) {
        std::vector<Value> unacked = pending_->TakeAll();
        if (!unacked.empty()) {
          state.push_back(hyracks::MakeFrame(std::move(unacked)));
        }
      }
      std::string state_key = pipeline_.connection_id + ":intake:" +
                              std::to_string(partition);
      feed_manager_->SaveZombieState(state_key, std::move(state));
      feed_manager_->SaveIntakeHandoff(state_key,
                                       {source_joint_, queue_});
      return Status::OK();
    }

    if (mode == Mode::kForward && !held_.empty()) {
      for (FramePtr& frame : held_) {
        RETURN_IF_ERROR(ForwardFrame(frame, ctx));
      }
      held_.clear();
    }

    if (queue_->failed()) return queue_->failure();

    // Batched hand-off: one lock acquisition drains everything queued.
    std::vector<FramePtr> batch = queue_->NextBatch(/*timeout_ms=*/20);
    if (!batch.empty()) {
      for (FramePtr& frame : batch) {
        if (mode_.load() == Mode::kBuffer) {
          held_.push_back(std::move(frame));
        } else {
          RETURN_IF_ERROR(ForwardFrame(frame, ctx));
        }
      }
    } else if (queue_->ended()) {
      // Under at-least-once the pending ledger may still hold records whose
      // acks never arrived (e.g. the store stage soft-failed them). Closing
      // now would orphan them, so keep pumping the replay loop below until
      // the ledger drains.
      if (!at_least_once_ || pending_->pending_count() == 0) {
        return Status::OK();
      }
    }

    // Replay of unacked records on timeout (§5.6).
    if (at_least_once_) {
      int64_t now = common::NowMillis();
      if (now - last_replay_check_ms_ >
          pipeline_.policy.ack_timeout_ms() / 2) {
        last_replay_check_ms_ = now;
        std::vector<Value> expired = pending_->TakeExpired();
        if (!expired.empty()) {
          pipeline_.metrics->records_replayed.fetch_add(
              static_cast<int64_t>(expired.size()));
          const int64_t replayed = static_cast<int64_t>(expired.size());
          // A replay frame starts a fresh trace (the original frame's
          // trace already terminated, at the store or in a failure); the
          // "replay" span links the restart for trace-conservation
          // accounting.
          hyracks::TraceContext replay_tc = Tracer::Instance().StartTrace();
          FramePtr replay =
              hyracks::MakeFrame(std::move(expired), replay_tc);
          if (replay_tc.sampled()) {
            TraceSpan span;
            span.trace_id = replay_tc.id;
            span.stage = "replay";
            span.where = pipeline_.connection_id;
            span.partition = ctx->partition();
            span.start_us = replay_tc.start_us;
            span.records = replayed;
            span.detail = true;
            span.status = "replay";
            Tracer::Instance().RecordSpan(std::move(span));
          }
          if (mode_.load() == Mode::kBuffer) {
            held_.push_back(std::move(replay));
          } else {
            RETURN_IF_ERROR(ForwardFrame(replay, ctx));
          }
        }
      }
    }
  }
}

Status FeedIntakeOperator::Close(TaskContext* ctx) {
  if (at_least_once_) {
    pipeline_.ack_bus->Unregister(pipeline_.connection_id,
                                  ctx->partition());
  }
  return Status::OK();
}

void FeedIntakeOperator::OnSignal(const std::string& signal) {
  if (signal == kSignalBuffer) {
    mode_.store(Mode::kBuffer);
  } else if (signal == kSignalForward) {
    mode_.store(Mode::kForward);
  } else if (signal == kSignalHandoff) {
    mode_.store(Mode::kHandoff);
  }
}

// --- AssignOperator ---------------------------------------------------------

AssignOperator::AssignOperator(std::vector<std::shared_ptr<Udf>> udfs,
                               PipelineConfig pipeline)
    : udfs_(std::move(udfs)), pipeline_(std::move(pipeline)) {}

Status AssignOperator::Open(TaskContext* ctx) {
  (void)ctx;
  for (auto& udf : udfs_) udf->Initialize();
  return Status::OK();
}

Status AssignOperator::ProcessFrame(const FramePtr& frame,
                                    TaskContext* ctx) {
  hyracks::FrameAppender appender(ctx->writer(), pipeline_.frame_records);
  // Output frames inherit the input frame's trace (re-batching preserves
  // identity through the compute stage).
  const hyracks::TraceContext tc = frame->trace();
  appender.SetTrace(tc);
  int64_t udf_us = 0;
  const int64_t udf_start_us = tc.sampled() ? common::NowMicros() : 0;
  for (const Value& record : frame->records()) {
    Value current = record;
    bool filtered = false;
    const int64_t apply_start_us = tc.sampled() ? common::NowMicros() : 0;
    for (auto& udf : udfs_) {
      auto result = udf->Apply(current);  // may throw (soft failure)
      if (!result.has_value()) {
        filtered = true;
        break;
      }
      current = std::move(*result);
    }
    if (tc.sampled()) udf_us += common::NowMicros() - apply_start_us;
    if (filtered) continue;
    pipeline_.metrics->records_computed.fetch_add(1);
    RETURN_IF_ERROR(appender.Append(std::move(current)));
  }
  if (tc.sampled() && !frame->empty()) {
    // Detail span: pure UDF time, excluding downstream forwarding done
    // inside Append/FlushFrame.
    TraceSpan span;
    span.trace_id = tc.id;
    span.stage = "udf";
    span.where = ctx->operator_name();
    span.partition = ctx->partition();
    span.start_us = udf_start_us;
    span.duration_us = udf_us;
    span.records = static_cast<int64_t>(frame->record_count());
    span.detail = true;
    Tracer::Instance().RecordSpan(std::move(span));
  }
  return appender.FlushFrame();
}

// --- FeedStoreOperator ------------------------------------------------------

FeedStoreOperator::FeedStoreOperator(std::string dataset,
                                     PipelineConfig pipeline)
    : dataset_(std::move(dataset)), pipeline_(std::move(pipeline)) {}

Status FeedStoreOperator::Open(TaskContext* ctx) {
  partition_ = ctx->node()->storage().GetPartition(dataset_);
  if (partition_ == nullptr) {
    return Status::NotFound("node " + ctx->node_id() +
                            " hosts no partition of dataset '" + dataset_ +
                            "'");
  }
  if (pipeline_.policy.at_least_once()) {
    acks_ = std::make_unique<AckCollector>(
        pipeline_.ack_bus, pipeline_.connection_id,
        pipeline_.policy.ack_window_ms());
  }
  e2e_latency_ = common::MetricsRegistry::Default().GetHistogram(
      "feed_intake_to_store_latency_us",
      {{"connection", pipeline_.connection_id}});
  return Status::OK();
}

Status FeedStoreOperator::ProcessFrame(const FramePtr& frame,
                                       TaskContext* ctx) {
  (void)ctx;
  for (const Value& record : frame->records()) {
    Value to_store = record;
    int64_t tid = -1;
    const Value* tid_field = to_store.GetField(kTrackingIdField);
    if (tid_field != nullptr &&
        tid_field->tag() == adm::TypeTag::kInt64) {
      tid = tid_field->AsInt64();
      to_store.RemoveField(kTrackingIdField);
    }
    Status status = partition_->Insert(to_store);
    if (!status.ok()) {
      // Per-record insert problems (missing key, type violation) are
      // soft failures: surface as an exception for the MetaFeed sandbox.
      throw std::runtime_error(status.ToString());
    }
    pipeline_.metrics->records_stored.fetch_add(1);
    pipeline_.metrics->store_timeline.Add(1);
    if (acks_ != nullptr && tid >= 0) acks_->OnPersisted(tid);
  }
  // relaxed: export-only backlog gauges; the scraper tolerates a stale
  // point-in-time value and no control flow reads them back.
  pipeline_.metrics->store_flush_backlog.store(
      static_cast<int64_t>(partition_->primary().flush_backlog()),
      std::memory_order_relaxed);
  pipeline_.metrics->store_merge_backlog.store(
      static_cast<int64_t>(partition_->primary().merge_backlog()),
      std::memory_order_relaxed);
  if (frame->trace().sampled()) {
    // End of the line for this trace: trace birth -> durably inserted.
    e2e_latency_->Record(common::NowMicros() - frame->trace().start_us);
  }
  return Status::OK();
}

Status FeedStoreOperator::Close(TaskContext* ctx) {
  (void)ctx;
  if (acks_ != nullptr) acks_->Flush();
  return Status::OK();
}

}  // namespace feeds
}  // namespace asterix
