// Ingestion policies: a collection of (parameter, value) pairs dictating a
// feed's runtime behaviour under resource bottlenecks and failures
// (Tables 4.1 and 4.2). Users pick a built-in policy or derive a custom
// one by overriding parameters of an existing policy.
#pragma once

#include <map>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace asterix {
namespace feeds {

/// How a congestion point handles excess records (Table 4.2).
enum class ExcessMode {
  kBlock,     // Basic: buffer in memory (bounded by budget)
  kSpill,     // Spill: write excess to local disk, process later
  kDiscard,   // Discard: drop excess until the backlog clears
  kThrottle,  // Throttle: randomly sample records to match capacity
  kElastic,   // Elastic: scale the compute stage out/in
};

const char* ExcessModeName(ExcessMode mode);

class IngestionPolicy {
 public:
  // Policy parameter keys (Table 4.1 plus the Chapter 6/7 extensions).
  static constexpr const char* kExcessRecordsSpill = "excess.records.spill";
  static constexpr const char* kExcessRecordsDiscard =
      "excess.records.discard";
  static constexpr const char* kExcessRecordsThrottle =
      "excess.records.throttle";
  static constexpr const char* kExcessRecordsElastic =
      "excess.records.elastic";
  static constexpr const char* kRecoverSoftFailure = "recover.soft.failure";
  static constexpr const char* kRecoverHardFailure = "recover.hard.failure";
  static constexpr const char* kAtLeastOnceEnabled =
      "at.least.once.enabled";
  static constexpr const char* kMaxSpillSizeOnDisk =
      "max.spill.size.on.disk";
  static constexpr const char* kMemoryBudget = "memory.budget";
  static constexpr const char* kSoftFailureLogData = "soft.failure.log.data";
  static constexpr const char* kMaxConsecutiveSoftFailures =
      "max.consecutive.soft.failures";
  static constexpr const char* kThrottleSamplingRate =
      "throttle.sampling.rate";
  static constexpr const char* kAckWindowMs = "ack.window.ms";
  static constexpr const char* kAckTimeoutMs = "ack.timeout.ms";

  IngestionPolicy() = default;
  IngestionPolicy(std::string name,
                  std::map<std::string, std::string> params)
      : name_(std::move(name)), params_(std::move(params)) {}

  const std::string& name() const { return name_; }
  const std::map<std::string, std::string>& params() const {
    return params_;
  }

  void Set(const std::string& key, const std::string& value) {
    params_[key] = value;
  }

  bool GetBool(const std::string& key, bool default_value) const;
  int64_t GetInt(const std::string& key, int64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  std::string GetString(const std::string& key,
                        const std::string& default_value) const;

  /// The excess-record mode implied by the excess.records.* flags.
  /// Priority (first set wins): spill, discard, throttle, elastic;
  /// none set = kBlock (the Basic policy).
  ExcessMode excess_mode() const;

  bool recover_soft_failure() const {
    return GetBool(kRecoverSoftFailure, true);
  }
  bool recover_hard_failure() const {
    return GetBool(kRecoverHardFailure, true);
  }
  bool at_least_once() const { return GetBool(kAtLeastOnceEnabled, false); }
  bool log_soft_failures_to_dataset() const {
    return GetBool(kSoftFailureLogData, false);
  }
  /// Bytes of excess the Spill policy may park on disk (then: fail or
  /// fall back to throttling if excess.records.throttle is also set).
  int64_t max_spill_bytes() const {
    return GetInt(kMaxSpillSizeOnDisk, 512LL << 20);
  }
  /// In-memory excess budget for the Basic policy, in bytes.
  int64_t memory_budget_bytes() const {
    return GetInt(kMemoryBudget, 32LL << 20);
  }
  int64_t max_consecutive_soft_failures() const {
    return GetInt(kMaxConsecutiveSoftFailures, 64);
  }
  /// Ack grouping window and replay timeout (at-least-once, §5.6).
  int64_t ack_window_ms() const { return GetInt(kAckWindowMs, 100); }
  int64_t ack_timeout_ms() const { return GetInt(kAckTimeoutMs, 2000); }

 private:
  std::string name_;
  std::map<std::string, std::string> params_;
};

// --- Congestion decision logic (Ch. 7) -------------------------------------
//
// The raw decision functions used by the congestion monitor and the
// throttle excess mode, factored out so they can be driven from a
// synthetic MetricsRegistry::Snapshot in tests. Thresholds relative to
// the policy's memory budget B:
//   * congestion when pending intake bytes > B / kCongestionBudgetDivisor
//   * idle when pending < (B / kCongestionBudgetDivisor) / kIdleDivisor
//   * scale out after kElasticScaleOutStreak consecutive congested ticks
//     (if compute width < alive nodes)
//   * scale in after kElasticScaleInStreak consecutive idle ticks (if
//     width > the connection's initial width)
//   * throttling engages when the queue is over budget or more than half
//     full; keep probability = clamp(1 - fill, kThrottleMinKeep, 1).

inline constexpr int kElasticScaleOutStreak = 3;
inline constexpr int kElasticScaleInStreak = 20;
inline constexpr int kCongestionBudgetDivisor = 4;
inline constexpr int kIdleDivisor = 8;
inline constexpr double kThrottleMinKeep = 0.05;

/// Signals one monitor tick feeds into the Elastic decision (values read
/// from a MetricsRegistry snapshot plus cluster state).
struct CongestionSignals {
  int64_t intake_pending_bytes = 0;
  int compute_width = 1;
  int initial_compute_width = 1;
  int alive_nodes = 1;
};

/// Streak accumulators, persisted across ticks by the caller.
struct CongestionState {
  int congestion_streak = 0;
  int idle_streak = 0;
};

enum class ScaleDecision { kNone, kScaleOut, kScaleIn };

/// Applies one monitor tick. Updates `state`'s streaks and returns the
/// rescale decision (resetting the triggering streak). Non-Elastic
/// policies always return kNone.
ScaleDecision EvaluateElastic(const CongestionSignals& signals,
                              const IngestionPolicy& policy,
                              CongestionState* state);

/// Keep probability the Throttle excess mode applies to an arriving
/// frame: 1.0 while the queue is under half its budget and the frame
/// fits, else falling linearly with queue fill, floored at
/// kThrottleMinKeep.
double ThrottleKeepProbability(int64_t pending_bytes, int64_t incoming_bytes,
                               int64_t memory_budget_bytes);

/// The registry of built-in + user-created policies (the policy slice of
/// the Metadata dataverse).
class PolicyRegistry {
 public:
  /// Registers Basic, Spill, Discard, Throttle, Elastic, FaultTolerant.
  PolicyRegistry();

  /// `create ingestion policy <name> from policy <base> (overrides)`.
  [[nodiscard]] common::Status Create(const std::string& name, const std::string& base,
                        std::map<std::string, std::string> overrides);

  [[nodiscard]] common::Result<IngestionPolicy> Find(const std::string& name) const;

 private:
  mutable common::Mutex mutex_{common::LockRank::kPolicyRegistry};
  std::map<std::string, IngestionPolicy> policies_ GUARDED_BY(mutex_);
};

}  // namespace feeds
}  // namespace asterix

