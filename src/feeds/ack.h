// At-least-once machinery (§5.6): records are augmented with tracking ids
// at the intake stage; store instances ack persisted ids (grouped over a
// fixed window to cut message counts); intake holds records until acked
// and replays them on timeout.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adm/value.h"
#include "common/clock.h"
#include "common/failpoint.h"
#include "common/thread_annotations.h"

namespace asterix {
namespace feeds {

/// The hidden field carrying the tracking id on in-flight records.
inline constexpr const char* kTrackingIdField = "_tracking_id";

/// Tracking ids pack the intake partition and a sequence number so the
/// store stage can group acks per source adaptor instance.
inline int64_t MakeTrackingId(int intake_partition, int64_t seq) {
  return (static_cast<int64_t>(intake_partition) << 48) | seq;
}
inline int TrackingIdPartition(int64_t tid) {
  return static_cast<int>(tid >> 48);
}

/// In-process control-message bus for ack delivery (control messages
/// travel separately from the data path, §6.2.1).
class AckBus {
 public:
  using Handler = std::function<void(const std::vector<int64_t>& tids)>;

  /// Intake partition `partition` of connection `conn` registers to
  /// receive its acks.
  void Register(const std::string& conn, int partition, Handler handler) {
    common::MutexLock lock(mutex_);
    handlers_[Key(conn, partition)] = std::move(handler);
  }

  void Unregister(const std::string& conn, int partition) {
    common::MutexLock lock(mutex_);
    handlers_.erase(Key(conn, partition));
  }

  /// Store side: publishes a grouped ack message.
  void Publish(const std::string& conn, int partition,
               const std::vector<int64_t>& tids) {
    // Error action = the ack message is lost in transit (the records stay
    // pending at intake and replay after the timeout — at-least-once, not
    // exactly-once). Delay action = a slow control path.
    if (ASTERIX_FAILPOINT_TRIGGERED("feeds.ack.publish")) return;
    Handler handler;
    {
      common::MutexLock lock(mutex_);
      auto it = handlers_.find(Key(conn, partition));
      if (it == handlers_.end()) return;
      handler = it->second;
    }
    handler(tids);
    // relaxed: stats counter for tests/metrics; orders nothing.
    messages_published_.fetch_add(1, std::memory_order_relaxed);
  }

  int64_t messages_published() const { return messages_published_.load(); }

 private:
  static std::string Key(const std::string& conn, int partition) {
    return conn + "#" + std::to_string(partition);
  }

  common::Mutex mutex_{common::LockRank::kAckBus};
  std::map<std::string, Handler> handlers_ GUARDED_BY(mutex_);
  std::atomic<int64_t> messages_published_{0};
};

/// Intake-side ledger of unacked records.
class PendingTracker {
 public:
  explicit PendingTracker(int64_t timeout_ms) : timeout_ms_(timeout_ms) {}

  /// Registers an in-flight record under its tracking id.
  void Track(int64_t tid, adm::Value record) {
    common::MutexLock lock(mutex_);
    pending_[tid] = {std::move(record), common::NowMillis()};
  }

  /// Ack arrival: drops the records and reclaims memory.
  void Ack(const std::vector<int64_t>& tids) {
    common::MutexLock lock(mutex_);
    for (int64_t tid : tids) pending_.erase(tid);
  }

  /// Records whose ack window expired; their timestamps reset so a
  /// single stall does not replay twice immediately.
  std::vector<adm::Value> TakeExpired() {
    ASTERIX_FAILPOINT_HIT("feeds.ack.replay");
    std::vector<adm::Value> expired;
    int64_t now = common::NowMillis();
    common::MutexLock lock(mutex_);
    for (auto& [tid, entry] : pending_) {
      if (now - entry.tracked_at_ms >= timeout_ms_) {
        expired.push_back(entry.record);
        entry.tracked_at_ms = now;
      }
    }
    return expired;
  }

  /// Removes and returns every pending record (handoff to a successor
  /// instance during pipeline resurrection).
  std::vector<adm::Value> TakeAll() {
    common::MutexLock lock(mutex_);
    std::vector<adm::Value> out;
    out.reserve(pending_.size());
    for (auto& [tid, entry] : pending_) {
      out.push_back(std::move(entry.record));
    }
    pending_.clear();
    return out;
  }

  size_t pending_count() const {
    common::MutexLock lock(mutex_);
    return pending_.size();
  }

 private:
  struct Entry {
    adm::Value record;
    int64_t tracked_at_ms;
  };
  const int64_t timeout_ms_;
  mutable common::Mutex mutex_{common::LockRank::kPendingTracker};
  std::map<int64_t, Entry> pending_ GUARDED_BY(mutex_);
};

/// Store-side ack batcher: groups acked tracking ids per intake partition
/// over a fixed window, then publishes one encoded message per partition.
class AckCollector {
 public:
  AckCollector(std::shared_ptr<AckBus> bus, std::string conn,
               int64_t window_ms)
      : bus_(std::move(bus)), conn_(std::move(conn)),
        window_ms_(window_ms), window_start_ms_(common::NowMillis()) {}

  void OnPersisted(int64_t tid) {
    common::MutexLock lock(mutex_);
    grouped_[TrackingIdPartition(tid)].push_back(tid);
    if (common::NowMillis() - window_start_ms_ >= window_ms_) {
      FlushLocked();
    }
  }

  void Flush() {
    common::MutexLock lock(mutex_);
    FlushLocked();
  }

 private:
  void FlushLocked() REQUIRES(mutex_) {
    for (auto& [partition, tids] : grouped_) {
      if (!tids.empty()) bus_->Publish(conn_, partition, tids);
    }
    grouped_.clear();
    window_start_ms_ = common::NowMillis();
  }

  std::shared_ptr<AckBus> bus_;
  const std::string conn_;
  const int64_t window_ms_;
  // Outer to the bus: FlushLocked publishes while holding this.
  common::Mutex mutex_{common::LockRank::kAckCollector};
  std::map<int, std::vector<int64_t>> grouped_ GUARDED_BY(mutex_);
  int64_t window_start_ms_ GUARDED_BY(mutex_);
};

}  // namespace feeds
}  // namespace asterix

