#include "feeds/metrics.h"

#include "feeds/subscriber.h"

namespace asterix {
namespace feeds {

ConnectionMetrics::ConnectionMetrics(const std::string& connection_id) {
  if (connection_id.empty()) return;
  auto& registry = common::MetricsRegistry::Default();
  const common::MetricLabels labels = {{"connection", connection_id}};
  using Kind = common::MetricsRegistry::ProviderKind;
  auto counter = [&](const char* name, const std::atomic<int64_t>* field) {
    provider_handles_.push_back(registry.RegisterProvider(
        name, Kind::kCounter, labels,
        // relaxed: metrics scrape of an independent stats cell; readers
        // tolerate staleness and order nothing by it.
        [field] { return field->load(std::memory_order_relaxed); }));
  };
  counter("feed_records_collected_total", &records_collected);
  counter("feed_records_computed_total", &records_computed);
  counter("feed_records_stored_total", &records_stored);
  counter("feed_soft_failures_total", &soft_failures);
  counter("feed_records_replayed_total", &records_replayed);
  provider_handles_.push_back(registry.RegisterProvider(
      "feed_store_flush_backlog", Kind::kGauge, labels, [this] {
        // relaxed: metrics scrape of an export-only gauge.
        return store_flush_backlog.load(std::memory_order_relaxed);
      }));
  provider_handles_.push_back(registry.RegisterProvider(
      "feed_store_merge_backlog", Kind::kGauge, labels, [this] {
        // relaxed: metrics scrape of an export-only gauge.
        return store_merge_backlog.load(std::memory_order_relaxed);
      }));
  // Lock order: the registry mutex is held while this provider runs, and
  // it takes the ConnectionMetrics mutex (IntakeQueues) then each queue's
  // mutex (pending_bytes). Pipeline code must therefore never call
  // Snapshot()/Export() while holding those locks.
  provider_handles_.push_back(registry.RegisterProvider(
      "feed_intake_pending_bytes", Kind::kGauge, labels, [this] {
        int64_t total = 0;
        for (const auto& queue : IntakeQueues()) {
          total += queue->pending_bytes();
        }
        return total;
      }));
}

}  // namespace feeds
}  // namespace asterix
