// Feed joints (§5.2, §5.4): the "network taps" that make data flowing
// through an ingestion pipeline accessible and routable along additional
// paths. A joint sits at the output of a subscribable operator instance;
// it forwards frames to the in-job downstream (its "primary") and to any
// dynamically registered subscribers (the intake operators of dependent
// pipelines). With one subscriber it short-circuits (no bucket
// bookkeeping); with several it shares Data Buckets, giving Guaranteed
// Delivery and Congestion Isolation.
//
// Data-plane layout (lock-free rewire): the routing table (primary +
// subscriber list + closed flag) is an immutable snapshot behind an
// atomic shared_ptr. The per-frame path is one atomic snapshot load —
// no mutex, no per-frame vector copy. Membership changes (subscribe,
// unsubscribe, detach, close) are rare control-path events: they
// serialize on mutex_ and publish a fresh copy-on-write snapshot.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/mpmc_queue.h"
#include "common/thread_annotations.h"
#include "feeds/subscriber.h"
#include "hyracks/frame.h"

namespace asterix {
namespace feeds {

class FeedJoint : public hyracks::IFrameWriter {
 public:
  enum class Mode { kInactive, kShortCircuit, kShared };

  explicit FeedJoint(std::string id) : id_(std::move(id)) {}

  const std::string& id() const { return id_; }

  /// The in-job downstream writer (router to the next stage). May be
  /// absent (a collect operator whose only consumers are subscribers).
  void SetPrimary(std::shared_ptr<hyracks::IFrameWriter> primary);

  /// Detaches and closes the in-job downstream — the partial dismantling
  /// of a disconnect when dependent feeds still consume this joint
  /// (§5.5 / Figure 5.10(b)).
  void DetachPrimary();

  /// Registers a new recipient; data flowing through the joint starts
  /// being routed to the returned queue. Thread-safe, any time.
  std::shared_ptr<SubscriberQueue> Subscribe(SubscriberOptions options);

  /// Unregisters; the queue stops receiving new frames.
  void Unsubscribe(const std::shared_ptr<SubscriberQueue>& queue);

  /// Current mode, determined dynamically by the subscriber count.
  Mode mode() const;
  size_t subscriber_count() const;

  /// Producer-side IFrameWriter API (the subscribable operator's output).
  [[nodiscard]] common::Status NextFrame(const hyracks::FramePtr& frame) override;
  void Fail() override;
  [[nodiscard]] common::Status Close() override;

  bool closed() const;
  int64_t frames_routed() const {
    // relaxed: monitoring read of a stats counter.
    return frames_routed_.load(std::memory_order_relaxed);
  }
  const DataBucketPool& bucket_pool() const { return *pool_; }

 private:
  /// One immutable routing snapshot. Never mutated after publication;
  /// readers hold it alive via shared_ptr while delivering.
  struct Routes {
    std::shared_ptr<hyracks::IFrameWriter> primary;
    std::vector<std::shared_ptr<SubscriberQueue>> subscribers;
    bool closed = false;
  };

  /// Copies the current snapshot for a writer to edit. Caller publishes
  /// the result with a release store to routes_.
  std::shared_ptr<Routes> CloneRoutes() const REQUIRES(mutex_);

  const std::string id_;
  // Serializes snapshot *writers* only; the frame path never takes it.
  mutable common::Mutex mutex_{common::LockRank::kFeedJoint};
  // The pool is shared: every SubscriberQueue holds a keepalive
  // reference (attached in Subscribe), because queue entries hold
  // DataBucket* into the pool and a queue can outlive the joint (e.g.
  // ConnectionMetrics keeps queues for reporting). ~SubscriberQueue
  // consumes leftover buckets, which must land in a live pool. The pool
  // is internally synchronized and is used outside mutex_ on the
  // routing path, so it is deliberately not GUARDED_BY.
  std::shared_ptr<DataBucketPool> pool_ = std::make_shared<DataBucketPool>();
  // Self-synchronized publication slot (see SnapshotPtr for why this is
  // not std::atomic<std::shared_ptr>): readers load a snapshot, writers
  // store a fresh clone under mutex_. Not GUARDED_BY — the hot path
  // never takes mutex_.
  common::SnapshotPtr<const Routes> routes_{std::make_shared<const Routes>()};
  std::atomic<int64_t> frames_routed_{0};
};

}  // namespace feeds
}  // namespace asterix
