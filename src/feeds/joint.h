// Feed joints (§5.2, §5.4): the "network taps" that make data flowing
// through an ingestion pipeline accessible and routable along additional
// paths. A joint sits at the output of a subscribable operator instance;
// it forwards frames to the in-job downstream (its "primary") and to any
// dynamically registered subscribers (the intake operators of dependent
// pipelines). With one subscriber it short-circuits (no bucket
// bookkeeping); with several it shares Data Buckets, giving Guaranteed
// Delivery and Congestion Isolation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "feeds/subscriber.h"
#include "hyracks/frame.h"

namespace asterix {
namespace feeds {

class FeedJoint : public hyracks::IFrameWriter {
 public:
  enum class Mode { kInactive, kShortCircuit, kShared };

  explicit FeedJoint(std::string id) : id_(std::move(id)) {}

  const std::string& id() const { return id_; }

  /// The in-job downstream writer (router to the next stage). May be
  /// absent (a collect operator whose only consumers are subscribers).
  void SetPrimary(std::shared_ptr<hyracks::IFrameWriter> primary);

  /// Detaches and closes the in-job downstream — the partial dismantling
  /// of a disconnect when dependent feeds still consume this joint
  /// (§5.5 / Figure 5.10(b)).
  void DetachPrimary();

  /// Registers a new recipient; data flowing through the joint starts
  /// being routed to the returned queue. Thread-safe, any time.
  std::shared_ptr<SubscriberQueue> Subscribe(SubscriberOptions options);

  /// Unregisters; the queue stops receiving new frames.
  void Unsubscribe(const std::shared_ptr<SubscriberQueue>& queue);

  /// Current mode, determined dynamically by the subscriber count.
  Mode mode() const;
  size_t subscriber_count() const;

  /// Producer-side IFrameWriter API (the subscribable operator's output).
  [[nodiscard]] common::Status NextFrame(const hyracks::FramePtr& frame) override;
  void Fail() override;
  [[nodiscard]] common::Status Close() override;

  bool closed() const;
  int64_t frames_routed() const;
  const DataBucketPool& bucket_pool() const { return pool_; }

 private:
  const std::string id_;
  mutable common::Mutex mutex_{common::LockRank::kFeedJoint};
  // pool_ must be declared before subscribers_: queue entries hold
  // DataBucket* into the pool, and ~SubscriberQueue (run when
  // subscribers_ drops the last reference) consumes them. The pool is
  // internally synchronized and is used outside mutex_ on the routing
  // path, so it is deliberately not GUARDED_BY.
  DataBucketPool pool_;
  std::shared_ptr<hyracks::IFrameWriter> primary_ GUARDED_BY(mutex_);
  std::vector<std::shared_ptr<SubscriberQueue>> subscribers_
      GUARDED_BY(mutex_);
  bool closed_ GUARDED_BY(mutex_) = false;
  int64_t frames_routed_ GUARDED_BY(mutex_) = 0;
};

}  // namespace feeds
}  // namespace asterix

