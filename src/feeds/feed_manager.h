// Per-node Feed Manager (§5.4): holds the runtime metadata of a node's
// active feed components — the available feed joints (discoverable via
// the search API used by co-located intake operators) and the saved state
// of zombie instances awaiting pipeline resurrection (§6.2.2).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "feeds/joint.h"
#include "hyracks/node.h"

namespace asterix {
namespace feeds {

class FeedManager {
 public:
  explicit FeedManager(std::string node_id) : node_id_(std::move(node_id)) {}

  /// The node-local service name under which the manager registers.
  static constexpr const char* kServiceName = "feed_manager";

  /// Finds (or installs) the FeedManager of a node.
  static std::shared_ptr<FeedManager> Of(hyracks::NodeController* node);

  const std::string& node_id() const { return node_id_; }

  // --- joint registry (the "search API") ---
  void RegisterJoint(std::shared_ptr<FeedJoint> joint);
  std::shared_ptr<FeedJoint> LookupJoint(const std::string& id) const;
  void UnregisterJoint(const std::string& id);
  std::vector<std::string> JointIds() const;

  // --- intake buffer handoff (fault-tolerance protocol, §6.2.3) ---
  /// A still-subscribed subscriber queue being handed from a terminating
  /// intake instance to its successor, which "takes ownership of the
  /// input buffer used by the alive instance from the previous
  /// execution". The joint pointer identifies which producer the queue
  /// is subscribed to: the successor adopts the queue only if that joint
  /// is still the live one.
  struct IntakeHandoff {
    std::shared_ptr<FeedJoint> joint;
    std::shared_ptr<SubscriberQueue> queue;
  };
  void SaveIntakeHandoff(const std::string& key, IntakeHandoff handoff);
  std::optional<IntakeHandoff> TakeIntakeHandoff(const std::string& key);

  // --- zombie state (fault-tolerance protocol) ---
  /// Saves the unprocessed input frames of a zombie instance under `key`
  /// ("<connection>:<operator>:<partition>").
  void SaveZombieState(const std::string& key,
                       std::vector<hyracks::FramePtr> frames);
  /// Retrieves-and-removes saved state; empty when none.
  std::vector<hyracks::FramePtr> TakeZombieState(const std::string& key);
  size_t zombie_state_count() const;

 private:
  const std::string node_id_;
  mutable common::Mutex mutex_{common::LockRank::kFeedManager};
  std::map<std::string, std::shared_ptr<FeedJoint>> joints_
      GUARDED_BY(mutex_);
  std::map<std::string, std::vector<hyracks::FramePtr>> zombie_state_
      GUARDED_BY(mutex_);
  std::map<std::string, IntakeHandoff> handoffs_ GUARDED_BY(mutex_);
};

}  // namespace feeds
}  // namespace asterix

