#include "common/thread_annotations.h"
#include "feeds/catalog.h"

#include <algorithm>

namespace asterix {
namespace feeds {

using common::Result;
using common::Status;

Status FeedCatalog::CreateFeed(FeedDef def) {
  common::MutexLock lock(mutex_);
  if (feeds_.count(def.name) > 0) {
    return Status::AlreadyExists("feed '" + def.name + "' already exists");
  }
  if (def.is_primary) {
    if (def.adaptor_alias.empty()) {
      return Status::InvalidArgument("primary feed '" + def.name +
                                     "' needs an adaptor");
    }
  } else {
    if (def.parent_feed.empty()) {
      return Status::InvalidArgument("secondary feed '" + def.name +
                                     "' needs a parent feed");
    }
    if (feeds_.count(def.parent_feed) == 0) {
      return Status::NotFound("parent feed '" + def.parent_feed +
                              "' of '" + def.name + "' not found");
    }
  }
  std::string name = def.name;  // read before the move below
  feeds_.emplace(std::move(name), std::move(def));
  return Status::OK();
}

Status FeedCatalog::DropFeed(const std::string& name) {
  common::MutexLock lock(mutex_);
  // Refuse to orphan children.
  for (const auto& [other_name, def] : feeds_) {
    if (!def.is_primary && def.parent_feed == name) {
      return Status::FailedPrecondition("feed '" + name +
                                        "' has dependent feed '" +
                                        other_name + "'");
    }
  }
  if (feeds_.erase(name) == 0) {
    return Status::NotFound("feed '" + name + "' not found");
  }
  return Status::OK();
}

Result<FeedDef> FeedCatalog::Find(const std::string& name) const {
  common::MutexLock lock(mutex_);
  auto it = feeds_.find(name);
  if (it == feeds_.end()) {
    return Status::NotFound("feed '" + name + "' not found");
  }
  return it->second;
}

Result<std::vector<FeedDef>> FeedCatalog::PathFromRoot(
    const std::string& name) const {
  common::MutexLock lock(mutex_);
  std::vector<FeedDef> path;
  std::string current = name;
  for (size_t depth = 0; depth <= feeds_.size(); ++depth) {
    auto it = feeds_.find(current);
    if (it == feeds_.end()) {
      return Status::NotFound("feed '" + current + "' not found");
    }
    path.push_back(it->second);
    if (it->second.is_primary) {
      std::reverse(path.begin(), path.end());
      return path;
    }
    current = it->second.parent_feed;
  }
  return Status::Corruption("cycle detected in feed hierarchy of '" +
                            name + "'");
}

std::vector<std::string> FeedCatalog::Names() const {
  common::MutexLock lock(mutex_);
  std::vector<std::string> names;
  for (const auto& [name, def] : feeds_) names.push_back(name);
  return names;
}

}  // namespace feeds
}  // namespace asterix
