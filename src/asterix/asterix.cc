#include "asterix/asterix.h"

#include <cstdlib>
#include <filesystem>

#include "common/clock.h"
#include "common/logging.h"
#include "storage/key.h"

namespace asterix {

using common::Result;
using common::Status;

AsterixInstance::AsterixInstance(InstanceOptions options)
    : options_(std::move(options)) {
  storage_root_ = options_.storage_root.empty()
                      ? "/tmp/asterixdb_" +
                            std::to_string(common::NowMicros())
                      : options_.storage_root;
  hyracks::ClusterOptions copts;
  copts.storage_root = storage_root_;
  copts.heartbeat_period_ms = options_.heartbeat_period_ms;
  copts.heartbeat_timeout_ms = options_.heartbeat_timeout_ms;
  copts.monitor_period_ms =
      std::max<int64_t>(5, options_.heartbeat_period_ms);
  cluster_ = std::make_unique<hyracks::ClusterController>(copts);
  Status adaptors_status = feeds::RegisterBuiltinAdaptors(&adaptors_);
  if (!adaptors_status.ok()) {
    // Only possible via an alias collision among the built-ins — a
    // programming error, not a runtime condition callers could handle.
    LOG_MSG(kError) << "built-in adaptor registration failed: "
                    << adaptors_status.message();
    std::abort();
  }
}

AsterixInstance::~AsterixInstance() {
  if (cfm_ != nullptr) cfm_->StopMonitor();
  cluster_->Stop();
}

Status AsterixInstance::Start() {
  if (started_) return Status::OK();
  started_ = true;
  if (options_.node_names.empty()) {
    for (int i = 0; i < options_.num_nodes; ++i) {
      options_.node_names.push_back(std::string(1, 'A' + (i % 26)) +
                                    (i >= 26 ? std::to_string(i) : ""));
    }
  }
  for (const std::string& name : options_.node_names) {
    cluster_->AddNode(name);
  }
  cluster_->Start();
  cfm_ = std::make_unique<feeds::CentralFeedManager>(
      cluster_.get(), &feeds_, &adaptors_, &udfs_, &policies_,
      &datasets_);
  if (options_.start_feed_monitor) cfm_->StartMonitor();
  return Status::OK();
}

Status AsterixInstance::CreateType(adm::Datatype type) {
  return types_.Register(std::move(type));
}

Status AsterixInstance::CreateDataset(storage::DatasetDef def) {
  if (!started_) return Status::FailedPrecondition("instance not started");
  std::vector<std::string> nodegroup = def.nodegroup;
  if (nodegroup.empty()) nodegroup = cluster_->AliveNodeIds();
  if (nodegroup.empty()) return Status::Unavailable("no alive nodes");
  for (size_t p = 0; p < nodegroup.size(); ++p) {
    hyracks::NodeController* node = cluster_->GetNode(nodegroup[p]);
    if (node == nullptr) {
      return Status::NotFound("nodegroup names unknown node '" +
                              nodegroup[p] + "'");
    }
    RETURN_IF_ERROR(node->storage().CreatePartition(
        def, static_cast<int>(p), &types_));
  }
  return datasets_.Register(std::move(def), std::move(nodegroup));
}

Status AsterixInstance::CreateIndex(const std::string& dataset,
                                    storage::IndexDef index_def) {
  ASSIGN_OR_RETURN(storage::DatasetCatalog::Entry entry,
                   datasets_.Find(dataset));
  for (const std::string& node_id : entry.nodegroup) {
    hyracks::NodeController* node = cluster_->GetNode(node_id);
    if (node == nullptr || !node->alive()) {
      return Status::Unavailable("node " + node_id +
                                 " unavailable for index build");
    }
    auto* partition = node->storage().GetPartition(dataset);
    if (partition == nullptr) {
      return Status::NotFound("partition of '" + dataset +
                              "' missing on " + node_id);
    }
    RETURN_IF_ERROR(partition->AddIndex(index_def));
  }
  return datasets_.AddIndex(dataset, index_def);
}

Status AsterixInstance::CreateFeed(feeds::FeedDef def) {
  if (def.is_primary) {
    RETURN_IF_ERROR(adaptors_.Find(def.adaptor_alias).status());
  }
  if (!def.udf.empty()) {
    RETURN_IF_ERROR(udfs_.Find(def.udf).status());
  }
  return feeds_.CreateFeed(std::move(def));
}

Status AsterixInstance::InstallUdf(std::shared_ptr<feeds::Udf> udf) {
  return udfs_.Register(std::move(udf));
}

Status AsterixInstance::RegisterAdaptor(
    std::shared_ptr<feeds::AdaptorFactory> factory) {
  return adaptors_.Register(std::move(factory));
}

Status AsterixInstance::CreatePolicy(
    const std::string& name, const std::string& base,
    std::map<std::string, std::string> overrides) {
  return policies_.Create(name, base, std::move(overrides));
}

Status AsterixInstance::ConnectFeed(const std::string& feed,
                                    const std::string& dataset,
                                    const std::string& policy,
                                    feeds::ConnectOptions options) {
  if (!started_) return Status::FailedPrecondition("instance not started");
  return cfm_->ConnectFeed(feed, dataset, policy, options);
}

Status AsterixInstance::DisconnectFeed(const std::string& feed,
                                       const std::string& dataset) {
  return cfm_->DisconnectFeed(feed, dataset);
}

std::shared_ptr<feeds::ConnectionMetrics> AsterixInstance::FeedMetrics(
    const std::string& feed, const std::string& dataset) const {
  return cfm_->GetMetrics(feed, dataset);
}

std::string AsterixInstance::ExportMetrics() {
  return common::MetricsRegistry::Default().Export();
}

common::MetricsSnapshot AsterixInstance::SnapshotMetrics() {
  return common::MetricsRegistry::Default().Snapshot();
}

Status AsterixInstance::InsertBatch(const std::string& dataset,
                                    std::vector<adm::Value> records) {
  ASSIGN_OR_RETURN(storage::DatasetCatalog::Entry entry,
                   datasets_.Find(dataset));
  // Compile the statement into a job: a source feeding a hash-partitioned
  // IndexInsert across the nodegroup, then schedule, run and clean up —
  // the per-statement overhead of the conventional insert path.
  hyracks::JobSpec spec;
  spec.name = "insert:" + dataset;
  int source = spec.AddOperator(
      {"source",
       {{}, 1},
       [&records](int) {
         return std::make_unique<hyracks::VectorSourceOperator>(
             std::move(records));
       },
       ""});
  const std::string pk = entry.def.primary_key_field;
  int store = spec.AddOperator(
      {"store",
       {entry.nodegroup, 0},
       [dataset](int) {
         return std::make_unique<hyracks::IndexInsertOperator>(dataset);
       },
       ""});
  spec.Connect(source, store,
               {hyracks::ConnectorKind::kMToNHash,
                [pk](const adm::Value& record) {
                  const adm::Value* key = record.GetField(pk);
                  return key != nullptr ? key->ToAdmString()
                                        : std::string();
                }});
  ASSIGN_OR_RETURN(std::shared_ptr<hyracks::JobHandle> job,
                   cluster_->StartJob(std::move(spec)));
  if (!job->Wait(60000)) {
    job->Abort();
    return Status::TimedOut("insert statement timed out");
  }
  cluster_->ForgetJob(job->id());
  for (const auto& group : job->tasks()) {
    for (const auto& task : group) {
      if (!task->final_status().ok()) return task->final_status();
    }
  }
  return Status::OK();
}

Result<int64_t> AsterixInstance::CountDataset(
    const std::string& dataset) const {
  ASSIGN_OR_RETURN(storage::DatasetCatalog::Entry entry,
                   datasets_.Find(dataset));
  int64_t total = 0;
  for (const std::string& node_id : entry.nodegroup) {
    hyracks::NodeController* node = cluster_->GetNode(node_id);
    if (node == nullptr || !node->alive()) continue;
    auto* partition = node->storage().GetPartition(dataset);
    if (partition != nullptr) total += partition->record_count();
  }
  return total;
}

Result<std::map<std::pair<int64_t, int64_t>, int64_t>>
AsterixInstance::SpatialAggregate(const std::string& dataset,
                                  const std::string& index_name,
                                  const storage::Rect& region,
                                  double lat_resolution,
                                  double long_resolution) const {
  if (lat_resolution <= 0 || long_resolution <= 0) {
    return Status::InvalidArgument("grid resolutions must be positive");
  }
  ASSIGN_OR_RETURN(storage::DatasetCatalog::Entry entry,
                   datasets_.Find(dataset));
  std::map<std::pair<int64_t, int64_t>, int64_t> cells;
  for (const std::string& node_id : entry.nodegroup) {
    hyracks::NodeController* node = cluster_->GetNode(node_id);
    if (node == nullptr || !node->alive()) continue;
    auto* partition = node->storage().GetPartition(dataset);
    if (partition == nullptr) continue;
    auto* index = dynamic_cast<storage::SpatialGridIndex*>(
        partition->FindIndex(index_name));
    if (index == nullptr) {
      return Status::NotFound("dataset '" + dataset +
                              "' has no spatial index '" + index_name +
                              "'");
    }
    for (const auto& [point, pk] : index->SearchRectEntries(region)) {
      auto cell = std::make_pair(
          static_cast<int64_t>((point.x - region.x_min) / lat_resolution),
          static_cast<int64_t>((point.y - region.y_min) /
                               long_resolution));
      ++cells[cell];
    }
  }
  return cells;
}

Result<adm::Value> AsterixInstance::GetRecord(
    const std::string& dataset, const adm::Value& key) const {
  ASSIGN_OR_RETURN(storage::DatasetCatalog::Entry entry,
                   datasets_.Find(dataset));
  for (const std::string& node_id : entry.nodegroup) {
    hyracks::NodeController* node = cluster_->GetNode(node_id);
    if (node == nullptr || !node->alive()) continue;
    auto* partition = node->storage().GetPartition(dataset);
    if (partition == nullptr) continue;
    auto record = partition->Get(key);
    if (record.ok()) return record;
  }
  return Status::NotFound("no record with key " + key.ToAdmString() +
                          " in dataset '" + dataset + "'");
}

Status AsterixInstance::ScanDataset(
    const std::string& dataset,
    const std::function<void(const adm::Value&)>& visitor) const {
  ASSIGN_OR_RETURN(storage::DatasetCatalog::Entry entry,
                   datasets_.Find(dataset));
  for (const std::string& node_id : entry.nodegroup) {
    hyracks::NodeController* node = cluster_->GetNode(node_id);
    if (node == nullptr || !node->alive()) continue;
    auto* partition = node->storage().GetPartition(dataset);
    if (partition != nullptr) partition->Scan(visitor);
  }
  return Status::OK();
}

void AsterixInstance::KillNode(const std::string& node_id) {
  cluster_->KillNode(node_id);
}

void AsterixInstance::RestartNode(const std::string& node_id) {
  cluster_->RestartNode(node_id);
}

hyracks::NodeController* AsterixInstance::AddNode(
    const std::string& node_id) {
  return cluster_->AddNode(node_id);
}

}  // namespace asterix
