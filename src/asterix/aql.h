// A miniature AQL statement layer covering the DDL the dissertation's
// listings use to drive the feed facility:
//
//   create dataset <name>(<type>) primary key <field>;
//   create index <name> on <dataset>(<field>) type [btree|rtree];
//   create feed <name> using <adaptor> (("k"="v"), ...)
//       [apply function <fn>];
//   create secondary feed <name> from feed <parent>
//       [apply function <fn>];
//   create ingestion policy <name> from policy <base> (("k"="v"), ...);
//   connect feed <feed> to dataset <dataset> [using policy <policy>];
//   disconnect feed <feed> from dataset <dataset>;
//   drop feed <name>;
//
// Statements are ';'-terminated; several may be submitted in one string.
// This is a statement-level front end for the feed DDL, not a query
// compiler — AQL's FLWOR query surface is out of scope here (the facade
// exposes programmatic scans/aggregates instead).
#pragma once

#include <string>

#include "asterix/asterix.h"
#include "common/status.h"

namespace asterix {
namespace aql {

/// Parses and executes every ';'-terminated statement in `script`
/// against `db`, stopping at the first error. Keywords are
/// case-insensitive; identifiers are case-sensitive; `--` starts a
/// comment running to end of line.
[[nodiscard]] common::Status Execute(AsterixInstance* db, const std::string& script);

}  // namespace aql
}  // namespace asterix

