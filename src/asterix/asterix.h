// AsterixInstance: the public facade of the library — a single-process
// AsterixDB-style BDMS with a simulated shared-nothing cluster, LSM
// storage, and native data feeds. Methods mirror the AQL DDL/DML the
// dissertation uses: create type/dataset/feed, connect/disconnect feed,
// insert, and simple queries.
//
// Quickstart:
//   asterix::AsterixInstance db(asterix::InstanceOptions{.num_nodes = 3});
//   db.Start();
//   db.CreateType(adm::TypeBuilder("Tweet").Field("id", kString).Build());
//   db.CreateDataset({.name = "Tweets", .datatype = "Tweet",
//                     .primary_key_field = "id"});
//   db.CreateFeed({.name = "TweetFeed", .is_primary = true,
//                  .adaptor_alias = "synthetic_tweets",
//                  .adaptor_config = {{"rate", "500"}}});
//   db.ConnectFeed("TweetFeed", "Tweets", "Basic");
//   ... db.CountDataset("Tweets") grows ...
//   db.DisconnectFeed("TweetFeed", "Tweets");
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "adm/datatype.h"
#include "adm/parser.h"
#include "adm/value.h"
#include "feeds/central.h"
#include "hyracks/cluster.h"
#include "hyracks/operators.h"

namespace asterix {

struct InstanceOptions {
  int num_nodes = 3;
  /// Node names; defaults to "A", "B", ... when empty.
  std::vector<std::string> node_names;
  /// Root directory for WALs and spill files (default: unique /tmp dir).
  std::string storage_root;
  int64_t heartbeat_period_ms = 20;
  int64_t heartbeat_timeout_ms = 200;
  /// Start the congestion monitor (needed by the Elastic policy).
  bool start_feed_monitor = true;
};

class AsterixInstance {
 public:
  explicit AsterixInstance(InstanceOptions options = {});
  ~AsterixInstance();

  AsterixInstance(const AsterixInstance&) = delete;
  AsterixInstance& operator=(const AsterixInstance&) = delete;

  /// Brings the cluster up (node controllers, heartbeats, feed manager).
  [[nodiscard]] common::Status Start();

  // --- DDL ------------------------------------------------------------
  [[nodiscard]] common::Status CreateType(adm::Datatype type);
  /// Creates the dataset and its partitions across the nodegroup
  /// (default nodegroup = all nodes, as in AsterixDB).
  [[nodiscard]] common::Status CreateDataset(storage::DatasetDef def);
  /// `create index <name> on <dataset>(<field>) type <kind>`: adds a
  /// secondary index to every partition, backfilling from existing data.
  [[nodiscard]] common::Status CreateIndex(const std::string& dataset,
                             storage::IndexDef index_def);
  [[nodiscard]] common::Status CreateFeed(feeds::FeedDef def);
  [[nodiscard]] common::Status InstallUdf(std::shared_ptr<feeds::Udf> udf);
  [[nodiscard]] common::Status RegisterAdaptor(
      std::shared_ptr<feeds::AdaptorFactory> factory);
  /// `create ingestion policy <name> from policy <base> (...)`.
  [[nodiscard]] common::Status CreatePolicy(
      const std::string& name, const std::string& base,
      std::map<std::string, std::string> overrides);

  // --- feed lifecycle ---------------------------------------------------
  [[nodiscard]] common::Status ConnectFeed(const std::string& feed,
                             const std::string& dataset,
                             const std::string& policy = "Basic",
                             feeds::ConnectOptions options = {});
  [[nodiscard]] common::Status DisconnectFeed(const std::string& feed,
                                const std::string& dataset);
  std::shared_ptr<feeds::ConnectionMetrics> FeedMetrics(
      const std::string& feed, const std::string& dataset) const;

  // --- observability ----------------------------------------------------
  /// Prometheus-style text exposition of every metric in the process-wide
  /// registry (feed counters, storage backlog gauges, latency histograms).
  static std::string ExportMetrics();
  /// Point-in-time snapshot of the same registry, for programmatic reads.
  static common::MetricsSnapshot SnapshotMetrics();

  // --- DML / queries ----------------------------------------------------
  /// The conventional insert statement: compiles and schedules one
  /// Hyracks job for the given batch — incurring the per-statement
  /// overhead the feed mechanism amortizes away (§5.7.1).
  [[nodiscard]] common::Status InsertBatch(const std::string& dataset,
                             std::vector<adm::Value> records);

  [[nodiscard]] common::Result<int64_t> CountDataset(const std::string& dataset) const;

  /// The spatial aggregation of Listing 3.3 (and the Chapter 8 Twitter
  /// heat-map use case): counts records per grid cell inside `region`,
  /// served from the dataset's spatial secondary index. Cell keys are
  /// (column, row) offsets from the region's bottom-left corner at the
  /// given resolutions. Keys of empty cells are absent.
  common::Result<std::map<std::pair<int64_t, int64_t>, int64_t>>
  SpatialAggregate(const std::string& dataset,
                   const std::string& index_name,
                   const storage::Rect& region, double lat_resolution,
                   double long_resolution) const;
  [[nodiscard]] common::Result<adm::Value> GetRecord(const std::string& dataset,
                                       const adm::Value& key) const;
  /// Visits every record of every partition (no cross-partition order).
  [[nodiscard]] common::Status ScanDataset(
      const std::string& dataset,
      const std::function<void(const adm::Value&)>& visitor) const;

  // --- cluster management (failure injection, elasticity) --------------
  void KillNode(const std::string& node_id);
  void RestartNode(const std::string& node_id);
  hyracks::NodeController* AddNode(const std::string& node_id);

  hyracks::ClusterController& cluster() { return *cluster_; }
  feeds::CentralFeedManager& feed_manager() { return *cfm_; }
  adm::TypeRegistry& types() { return types_; }
  storage::DatasetCatalog& datasets() { return datasets_; }
  const InstanceOptions& options() const { return options_; }
  const std::string& storage_root() const { return storage_root_; }

 private:
  InstanceOptions options_;
  std::string storage_root_;
  std::unique_ptr<hyracks::ClusterController> cluster_;
  adm::TypeRegistry types_;
  storage::DatasetCatalog datasets_;
  feeds::FeedCatalog feeds_;
  feeds::AdaptorRegistry adaptors_;
  feeds::UdfRegistry udfs_;
  feeds::PolicyRegistry policies_;
  std::unique_ptr<feeds::CentralFeedManager> cfm_;
  bool started_ = false;
};

}  // namespace asterix

