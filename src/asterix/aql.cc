#include "asterix/aql.h"

#include <cctype>

#include "common/strings.h"
#include <vector>

namespace asterix {
namespace aql {

using common::Result;
using common::Status;

namespace {

/// Token stream over one statement. Kinds: identifiers/keywords, quoted
/// strings, and single-character punctuation ( ) , = # .
class Tokens {
 public:
  static Result<Tokens> Lex(const std::string& text) {
    Tokens tokens;
    size_t i = 0;
    while (i < text.size()) {
      char c = text[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '-' && i + 1 < text.size() && text[i + 1] == '-') {
        while (i < text.size() && text[i] != '\n') ++i;
        continue;
      }
      if (c == '"') {
        size_t end = text.find('"', i + 1);
        if (end == std::string::npos) {
          return Status::InvalidArgument("unterminated string literal");
        }
        tokens.items_.push_back(
            {Kind::kString, text.substr(i + 1, end - i - 1)});
        i = end + 1;
        continue;
      }
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.') {
        size_t start = i;
        while (i < text.size() &&
               (std::isalnum(static_cast<unsigned char>(text[i])) ||
                text[i] == '_' || text[i] == '.' || text[i] == '#')) {
          ++i;
        }
        tokens.items_.push_back({Kind::kWord, text.substr(start, i - start)});
        continue;
      }
      if (c == '(' || c == ')' || c == ',' || c == '=') {
        tokens.items_.push_back({Kind::kPunct, std::string(1, c)});
        ++i;
        continue;
      }
      return Status::InvalidArgument(std::string("unexpected character '") +
                                     c + "' in statement");
    }
    return tokens;
  }

  bool Eof() const { return pos_ >= items_.size(); }

  /// Consumes the next token if it equals `keyword` (case-insensitive).
  bool ConsumeKeyword(const std::string& keyword) {
    if (Eof() || items_[pos_].kind != Kind::kWord) return false;
    if (!EqualsIgnoreCase(items_[pos_].text, keyword)) return false;
    ++pos_;
    return true;
  }

  Result<std::string> ExpectWord(const std::string& what) {
    if (Eof() || items_[pos_].kind != Kind::kWord) {
      return Status::InvalidArgument("expected " + what);
    }
    return items_[pos_++].text;
  }

  Result<std::string> ExpectKeyword(const std::string& keyword) {
    if (!ConsumeKeyword(keyword)) {
      return Status::InvalidArgument("expected keyword '" + keyword + "'");
    }
    return keyword;
  }

  bool ConsumePunct(char c) {
    if (Eof() || items_[pos_].kind != Kind::kPunct ||
        items_[pos_].text[0] != c) {
      return false;
    }
    ++pos_;
    return true;
  }

  Result<std::string> ExpectString() {
    if (Eof() || items_[pos_].kind != Kind::kString) {
      return Status::InvalidArgument("expected a quoted string");
    }
    return items_[pos_++].text;
  }

  /// Parses the configuration form (("k"="v"), ("k"="v")) or ("k"="v").
  Result<std::map<std::string, std::string>> ParseConfig() {
    std::map<std::string, std::string> config;
    if (!ConsumePunct('(')) {
      return Status::InvalidArgument("expected '(' to open parameters");
    }
    while (true) {
      bool wrapped = ConsumePunct('(');
      ASSIGN_OR_RETURN(std::string key, ExpectString());
      if (!ConsumePunct('=')) {
        return Status::InvalidArgument("expected '=' after parameter key");
      }
      ASSIGN_OR_RETURN(std::string value, ExpectString());
      config[key] = value;
      if (wrapped && !ConsumePunct(')')) {
        return Status::InvalidArgument("expected ')' after parameter");
      }
      if (ConsumePunct(',')) continue;
      if (ConsumePunct(')')) return config;
      return Status::InvalidArgument("expected ',' or ')' in parameters");
    }
  }

  Status ExpectEof() const {
    if (!Eof()) {
      return Status::InvalidArgument("trailing tokens after statement");
    }
    return Status::OK();
  }

 private:
  enum class Kind { kWord, kString, kPunct };
  struct Token {
    Kind kind;
    std::string text;
  };

  static bool EqualsIgnoreCase(const std::string& a,
                               const std::string& b) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(a[i])) !=
          std::tolower(static_cast<unsigned char>(b[i]))) {
        return false;
      }
    }
    return true;
  }

  std::vector<Token> items_;
  size_t pos_ = 0;
};

Status ExecCreateDataset(AsterixInstance* db, Tokens* tokens) {
  ASSIGN_OR_RETURN(std::string name, tokens->ExpectWord("dataset name"));
  storage::DatasetDef def;
  def.name = name;
  def.datatype = "any";
  if (tokens->ConsumePunct('(')) {
    ASSIGN_OR_RETURN(def.datatype, tokens->ExpectWord("datatype name"));
    if (!tokens->ConsumePunct(')')) {
      return Status::InvalidArgument("expected ')' after datatype");
    }
  }
  RETURN_IF_ERROR(tokens->ExpectKeyword("primary").status());
  RETURN_IF_ERROR(tokens->ExpectKeyword("key").status());
  ASSIGN_OR_RETURN(def.primary_key_field,
                   tokens->ExpectWord("primary key field"));
  RETURN_IF_ERROR(tokens->ExpectEof());
  return db->CreateDataset(std::move(def));
}

Status ExecCreateIndex(AsterixInstance* db, Tokens* tokens) {
  ASSIGN_OR_RETURN(std::string name, tokens->ExpectWord("index name"));
  RETURN_IF_ERROR(tokens->ExpectKeyword("on").status());
  ASSIGN_OR_RETURN(std::string dataset,
                   tokens->ExpectWord("dataset name"));
  if (!tokens->ConsumePunct('(')) {
    return Status::InvalidArgument("expected '(' before indexed field");
  }
  ASSIGN_OR_RETURN(std::string field, tokens->ExpectWord("field name"));
  if (!tokens->ConsumePunct(')')) {
    return Status::InvalidArgument("expected ')' after indexed field");
  }
  storage::IndexKind kind = storage::IndexKind::kBTree;
  if (tokens->ConsumeKeyword("type")) {
    ASSIGN_OR_RETURN(std::string kind_name,
                     tokens->ExpectWord("index type"));
    if (kind_name == "rtree") {
      kind = storage::IndexKind::kRTree;
    } else if (kind_name != "btree") {
      return Status::InvalidArgument("unknown index type '" + kind_name +
                                     "'");
    }
  }
  RETURN_IF_ERROR(tokens->ExpectEof());
  return db->CreateIndex(dataset, {name, field, kind});
}

Status ExecCreateFeed(AsterixInstance* db, Tokens* tokens,
                      bool secondary) {
  ASSIGN_OR_RETURN(std::string name, tokens->ExpectWord("feed name"));
  feeds::FeedDef def;
  def.name = name;
  def.is_primary = !secondary;
  if (secondary) {
    RETURN_IF_ERROR(tokens->ExpectKeyword("from").status());
    RETURN_IF_ERROR(tokens->ExpectKeyword("feed").status());
    ASSIGN_OR_RETURN(def.parent_feed,
                     tokens->ExpectWord("parent feed name"));
  } else {
    RETURN_IF_ERROR(tokens->ExpectKeyword("using").status());
    ASSIGN_OR_RETURN(def.adaptor_alias,
                     tokens->ExpectWord("adaptor alias"));
    ASSIGN_OR_RETURN(def.adaptor_config, tokens->ParseConfig());
  }
  if (tokens->ConsumeKeyword("apply")) {
    RETURN_IF_ERROR(tokens->ExpectKeyword("function").status());
    ASSIGN_OR_RETURN(def.udf, tokens->ExpectWord("function name"));
  }
  RETURN_IF_ERROR(tokens->ExpectEof());
  return db->CreateFeed(std::move(def));
}

Status ExecCreatePolicy(AsterixInstance* db, Tokens* tokens) {
  ASSIGN_OR_RETURN(std::string name, tokens->ExpectWord("policy name"));
  RETURN_IF_ERROR(tokens->ExpectKeyword("from").status());
  RETURN_IF_ERROR(tokens->ExpectKeyword("policy").status());
  ASSIGN_OR_RETURN(std::string base, tokens->ExpectWord("base policy"));
  ASSIGN_OR_RETURN(auto overrides, tokens->ParseConfig());
  RETURN_IF_ERROR(tokens->ExpectEof());
  return db->CreatePolicy(name, base, std::move(overrides));
}

Status ExecConnect(AsterixInstance* db, Tokens* tokens) {
  RETURN_IF_ERROR(tokens->ExpectKeyword("feed").status());
  ASSIGN_OR_RETURN(std::string feed, tokens->ExpectWord("feed name"));
  RETURN_IF_ERROR(tokens->ExpectKeyword("to").status());
  RETURN_IF_ERROR(tokens->ExpectKeyword("dataset").status());
  ASSIGN_OR_RETURN(std::string dataset,
                   tokens->ExpectWord("dataset name"));
  std::string policy = "Basic";
  if (tokens->ConsumeKeyword("using")) {
    RETURN_IF_ERROR(tokens->ExpectKeyword("policy").status());
    ASSIGN_OR_RETURN(policy, tokens->ExpectWord("policy name"));
  }
  RETURN_IF_ERROR(tokens->ExpectEof());
  return db->ConnectFeed(feed, dataset, policy);
}

Status ExecDisconnect(AsterixInstance* db, Tokens* tokens) {
  RETURN_IF_ERROR(tokens->ExpectKeyword("feed").status());
  ASSIGN_OR_RETURN(std::string feed, tokens->ExpectWord("feed name"));
  RETURN_IF_ERROR(tokens->ExpectKeyword("from").status());
  RETURN_IF_ERROR(tokens->ExpectKeyword("dataset").status());
  ASSIGN_OR_RETURN(std::string dataset,
                   tokens->ExpectWord("dataset name"));
  RETURN_IF_ERROR(tokens->ExpectEof());
  return db->DisconnectFeed(feed, dataset);
}

Status ExecuteStatement(AsterixInstance* db, const std::string& text) {
  ASSIGN_OR_RETURN(Tokens tokens, Tokens::Lex(text));
  if (tokens.Eof()) return Status::OK();  // empty statement
  if (tokens.ConsumeKeyword("use")) {
    // `use dataverse feeds;` — single-dataverse build: a no-op.
    return Status::OK();
  }
  if (tokens.ConsumeKeyword("create")) {
    if (tokens.ConsumeKeyword("dataset")) {
      return ExecCreateDataset(db, &tokens);
    }
    if (tokens.ConsumeKeyword("index")) {
      return ExecCreateIndex(db, &tokens);
    }
    if (tokens.ConsumeKeyword("secondary")) {
      RETURN_IF_ERROR(tokens.ExpectKeyword("feed").status());
      return ExecCreateFeed(db, &tokens, /*secondary=*/true);
    }
    if (tokens.ConsumeKeyword("feed")) {
      return ExecCreateFeed(db, &tokens, /*secondary=*/false);
    }
    if (tokens.ConsumeKeyword("ingestion")) {
      RETURN_IF_ERROR(tokens.ExpectKeyword("policy").status());
      return ExecCreatePolicy(db, &tokens);
    }
    return Status::InvalidArgument("unsupported create statement");
  }
  if (tokens.ConsumeKeyword("connect")) return ExecConnect(db, &tokens);
  if (tokens.ConsumeKeyword("disconnect")) {
    return ExecDisconnect(db, &tokens);
  }
  return Status::InvalidArgument("unrecognized statement: " + text);
}

}  // namespace

Status Execute(AsterixInstance* db, const std::string& script) {
  size_t start = 0;
  while (start < script.size()) {
    size_t end = script.find(';', start);
    std::string statement = script.substr(
        start, end == std::string::npos ? std::string::npos
                                        : end - start);
    Status status = ExecuteStatement(db, statement);
    if (!status.ok()) {
      return Status(status.code(),
                    status.message() + " [in statement: " +
                        std::string(common::Trim(statement)) + "]");
    }
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return Status::OK();
}

}  // namespace aql
}  // namespace asterix
