// The 'glued' assembly of Chapter 7: spouts and bolts wiring a Storm
// topology to an external source on one end and a MongoDB collection on
// the other — the open-source community's conventional substitute for
// native feed support.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "adm/parser.h"
#include "baseline/mongo.h"
#include "baseline/storm.h"
#include "common/clock.h"
#include "common/thread_annotations.h"
#include "feeds/udf.h"
#include "gen/tweetgen.h"

namespace asterix {
namespace baseline {

/// Reliable spout pulling serialized tweets from an in-process channel
/// (the Kafka/Kestrel-spout role). Keeps a pending ledger and replays on
/// Fail — Storm's at-least-once contract.
class ChannelSpout : public storm::Spout {
 public:
  explicit ChannelSpout(gen::Channel* channel) : channel_(channel) {}

  std::optional<adm::Value> NextTuple(int64_t tuple_id) override {
    {
      common::MutexLock lock(mutex_);
      if (!replay_.empty()) {
        adm::Value tuple = std::move(replay_.begin()->second);
        replay_.erase(replay_.begin());
        pending_[tuple_id] = tuple;
        return tuple;
      }
    }
    auto payload = channel_->Receive(/*timeout_ms=*/2);
    if (!payload.has_value()) return std::nullopt;
    adm::Value tuple = adm::Value::String(std::move(*payload));
    common::MutexLock lock(mutex_);
    pending_[tuple_id] = tuple;
    return tuple;
  }
  void Ack(int64_t tuple_id) override {
    common::MutexLock lock(mutex_);
    pending_.erase(tuple_id);
  }
  void Fail(int64_t tuple_id) override {
    common::MutexLock lock(mutex_);
    auto it = pending_.find(tuple_id);
    if (it == pending_.end()) return;
    replay_[tuple_id] = std::move(it->second);
    pending_.erase(it);
  }
  bool Exhausted() const override {
    common::MutexLock lock(mutex_);
    return channel_->closed() && channel_->pending() == 0 &&
           replay_.empty();
  }

 private:
  gen::Channel* channel_;
  mutable common::Mutex mutex_{common::LockRank::kStormSpoutTracker};
  std::map<int64_t, adm::Value> pending_ GUARDED_BY(mutex_);
  std::map<int64_t, adm::Value> replay_ GUARDED_BY(mutex_);
};

/// Parses raw JSON payload strings into ADM records; malformed tuples
/// fail their tree (and are replayed until a skip limit — here dropped,
/// matching a typical user-written bolt).
class ParseBolt : public storm::Bolt {
 public:
  [[nodiscard]] common::Status Execute(const adm::Value& tuple,
                         storm::Emitter* emitter) override {
    if (tuple.tag() != adm::TypeTag::kString) {
      return common::Status::OK();  // drop
    }
    auto parsed = adm::ParseAdm(tuple.AsString());
    if (!parsed.ok()) return common::Status::OK();  // drop malformed
    emitter->Emit(std::move(*parsed));
    return common::Status::OK();
  }
};

/// Applies a UDF per tuple (the pre-processing step of the comparison).
class UdfBolt : public storm::Bolt {
 public:
  explicit UdfBolt(std::shared_ptr<feeds::Udf> udf)
      : udf_(std::move(udf)) {}

  [[nodiscard]] common::Status Execute(const adm::Value& tuple,
                         storm::Emitter* emitter) override {
    try {
      auto out = udf_->Apply(tuple);
      if (out.has_value()) emitter->Emit(std::move(*out));
      return common::Status::OK();
    } catch (const std::exception& e) {
      return common::Status::Internal(e.what());
    }
  }

 private:
  std::shared_ptr<feeds::Udf> udf_;
};

/// Writes each tuple into a MongoDB collection through its driver API —
/// the "persistence glue". With kDurable write concern this is the
/// bottleneck the paper's Figure 7.11 exhibits.
class MongoInsertBolt : public storm::Bolt {
 public:
  MongoInsertBolt(MongoCollection* collection,
                  std::function<void(int64_t)> on_insert = nullptr)
      : collection_(collection), on_insert_(std::move(on_insert)) {}

  [[nodiscard]] common::Status Execute(const adm::Value& tuple,
                         storm::Emitter* emitter) override {
    (void)emitter;
    common::Status status = collection_->Insert(tuple);
    if (status.ok() && on_insert_) {
      on_insert_(common::NowMillis());
    }
    return status;
  }

 private:
  MongoCollection* collection_;
  std::function<void(int64_t)> on_insert_;
};

}  // namespace baseline
}  // namespace asterix

