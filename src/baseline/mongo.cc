#include "baseline/mongo.h"
#include "common/thread_annotations.h"

#include <filesystem>
#include <iterator>

#include "common/clock.h"
#include "common/logging.h"

namespace asterix {
namespace baseline {

using common::Status;

MongoCollection::MongoCollection(std::string name, std::string dir,
                                 WriteConcern concern,
                                 int64_t journal_commit_us)
    : name_(std::move(name)),
      concern_(concern),
      journal_commit_us_(journal_commit_us),
      journal_(dir + "/" + name_ + ".journal",
               /*durable=*/concern == WriteConcern::kDurable) {}

MongoCollection::~MongoCollection() {
  running_.store(false);
  if (journal_thread_.joinable()) journal_thread_.join();
}

Status MongoCollection::Open() {
  RETURN_IF_ERROR(journal_.Open());
  if (concern_ == WriteConcern::kNonDurable) {
    running_.store(true);
    journal_thread_ = std::thread([this] { JournalLoop(); });
  }
  return Status::OK();
}

Status MongoCollection::Insert(const adm::Value& document) {
  if (!document.is_record()) {
    return Status::InvalidArgument("mongo documents must be records");
  }
  const adm::Value* id = document.GetField("_id");
  if (id == nullptr) id = document.GetField("id");
  if (id == nullptr) {
    return Status::InvalidArgument("document lacks an _id/id field");
  }
  std::string key = id->ToAdmString();
  std::string serialized = document.ToAdmString();

  if (concern_ == WriteConcern::kDurable) {
    // Writers serialize on the coarse write lock; a journaled (j:true)
    // acknowledgment waits out the journal commit before returning.
    common::MutexLock write_lock(write_lock_);
    RETURN_IF_ERROR(journal_.Append(serialized));
    common::SleepMicros(journal_commit_us_);
    journaled_.fetch_add(1);
    common::MutexLock lock(mutex_);
    documents_[key] = document;
    return Status::OK();
  }
  // Non-durable: acknowledge from memory, journal in the background.
  common::MutexLock write_lock(write_lock_);
  common::MutexLock lock(mutex_);
  documents_[key] = document;
  unjournaled_.push_back(std::move(serialized));
  return Status::OK();
}

int64_t MongoCollection::Count() const {
  common::MutexLock lock(mutex_);
  return static_cast<int64_t>(documents_.size());
}

int64_t MongoCollection::JournaledCount() const {
  return journaled_.load();
}

int64_t MongoCollection::Crash() {
  common::MutexLock lock(mutex_);
  int64_t lost = static_cast<int64_t>(unjournaled_.size());
  unjournaled_.clear();
  // Documents not journaled are gone after the crash.
  // (We approximate by counting; rebuilding the exact map from the
  // journal is what a restart would do.)
  return lost;
}

void MongoCollection::JournalLoop() {
  while (running_.load()) {
    std::vector<std::string> batch;
    {
      common::MutexLock lock(mutex_);
      batch.swap(unjournaled_);
    }
    size_t appended = 0;
    Status journal_status = Status::OK();
    for (const std::string& entry : batch) {
      journal_status = journal_.Append(entry);
      if (!journal_status.ok()) break;
      ++appended;
    }
    if (journal_status.ok()) journal_status = journal_.Sync();
    if (journal_status.ok()) {
      journaled_.fetch_add(static_cast<int64_t>(appended));
    } else {
      // A failed append/sync means nothing in this batch is known
      // durable: requeue it all (idempotent upserts) and retry next tick
      // rather than advancing the durability counter past the journal.
      LOG_MSG(kWarn) << "mongo journal write failed, requeueing "
                     << batch.size() << " entries: "
                     << journal_status.message();
      common::MutexLock lock(mutex_);
      unjournaled_.insert(unjournaled_.begin(),
                          std::make_move_iterator(batch.begin()),
                          std::make_move_iterator(batch.end()));
    }
    common::SleepMillis(100);  // mongod's journal commit interval
  }
}

MongoServer::MongoServer(std::string dir) : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
}

Status MongoServer::CreateCollection(const std::string& name,
                                     WriteConcern concern) {
  common::MutexLock lock(mutex_);
  if (collections_.count(name) > 0) {
    return Status::AlreadyExists("collection '" + name + "' exists");
  }
  auto collection =
      std::make_unique<MongoCollection>(name, dir_, concern);
  RETURN_IF_ERROR(collection->Open());
  collections_.emplace(name, std::move(collection));
  return Status::OK();
}

MongoCollection* MongoServer::GetCollection(const std::string& name) const {
  common::MutexLock lock(mutex_);
  auto it = collections_.find(name);
  return it == collections_.end() ? nullptr : it->second.get();
}

}  // namespace baseline
}  // namespace asterix
