// A miniature MongoDB stand-in: a single-node document store holding
// collections of ADM documents keyed by "_id", with the write-concern
// knob the Chapter 7 comparison varies — DURABLE journals every insert to
// disk before acknowledging; NON_DURABLE acknowledges immediately and
// journals in the background (fast but with a data-loss window, which
// Crash() makes observable).
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "adm/value.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/wal.h"

namespace asterix {
namespace baseline {

enum class WriteConcern {
  kDurable,     // journaled before acknowledge
  kNonDurable,  // acknowledged from memory; journal lags behind
};

class MongoCollection {
 public:
  /// `journal_commit_us` models the latency of a journaled (j:true)
  /// write acknowledgment — the group-commit/fsync wait of a 2014-era
  /// mongod. Writes additionally serialize on a per-collection write
  /// lock, as MongoDB 2.x's per-database write lock did.
  MongoCollection(std::string name, std::string dir, WriteConcern concern,
                  int64_t journal_commit_us = 800);
  ~MongoCollection();

  [[nodiscard]] common::Status Open();

  /// Upserts one document (must be a record with an "_id" or "id" field).
  /// Under kDurable the call returns only after the journal write; under
  /// kNonDurable it returns after the in-memory apply.
  [[nodiscard]] common::Status Insert(const adm::Value& document);

  int64_t Count() const;
  /// Documents guaranteed on disk (journaled). Equals Count() under
  /// kDurable; lags under kNonDurable.
  int64_t JournaledCount() const;

  /// Simulates a mongod crash: in-memory state beyond the journal is
  /// lost. Returns how many acknowledged documents vanished.
  int64_t Crash();

  const std::string& name() const { return name_; }
  WriteConcern concern() const { return concern_; }

 private:
  void JournalLoop();

  const std::string name_;
  const WriteConcern concern_;
  const int64_t journal_commit_us_;
  // MongoDB 2.x-style coarse write lock; outer to mutex_ and the journal.
  common::Mutex write_lock_{common::LockRank::kMongoWriteLock};
  storage::Wal journal_;

  mutable common::Mutex mutex_ ACQUIRED_AFTER(write_lock_){
      common::LockRank::kMongoCollection};
  std::map<std::string, adm::Value> documents_ GUARDED_BY(mutex_);
  std::vector<std::string> unjournaled_ GUARDED_BY(mutex_);  // pending
                                                  // background journal
  std::atomic<int64_t> journaled_{0};

  std::atomic<bool> running_{false};
  std::thread journal_thread_;
};

/// A mongod: a named set of collections.
class MongoServer {
 public:
  explicit MongoServer(std::string dir);

  [[nodiscard]] common::Status CreateCollection(const std::string& name,
                                  WriteConcern concern);
  MongoCollection* GetCollection(const std::string& name) const;

 private:
  const std::string dir_;
  mutable common::Mutex mutex_{common::LockRank::kMongoDb};
  std::map<std::string, std::unique_ptr<MongoCollection>> collections_
      GUARDED_BY(mutex_);
};

}  // namespace baseline
}  // namespace asterix

