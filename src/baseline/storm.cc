#include "baseline/storm.h"
#include "common/thread_annotations.h"

#include "common/clock.h"
#include "common/logging.h"
#include "common/strings.h"

namespace asterix {
namespace baseline {
namespace storm {

using common::Status;

struct LocalCluster::SpoutTask {
  int task_id = 0;
  std::unique_ptr<Spout> spout;
  std::atomic<int64_t> pending{0};
  std::atomic<bool> exhausted{false};
};

struct LocalCluster::BoltTask {
  int task_id = 0;
  std::unique_ptr<Bolt> bolt;
  common::BlockingQueue<Envelope> queue;

  BoltTask(size_t capacity)
      : queue(capacity, common::LockRank::kStormQueue) {}
};

void LocalCluster::Acker::Register(int64_t root_id, int64_t timeout_at_ms,
                                   int spout_task) {
  common::MutexLock lock(mutex_);
  trees_[root_id] = Tree{1, timeout_at_ms, spout_task};
}

void LocalCluster::Acker::Delta(int64_t root_id, int64_t delta,
                                std::vector<Completion>* completed) {
  common::MutexLock lock(mutex_);
  auto it = trees_.find(root_id);
  if (it == trees_.end()) return;  // already failed/timed out
  it->second.count += delta;
  if (it->second.count <= 0) {
    completed->emplace_back(root_id, it->second.spout_task);
    trees_.erase(it);
  }
}

std::vector<LocalCluster::Acker::Completion>
LocalCluster::Acker::TakeExpired(int64_t now_ms) {
  common::MutexLock lock(mutex_);
  std::vector<Completion> expired;
  for (auto it = trees_.begin(); it != trees_.end();) {
    if (it->second.timeout_at_ms <= now_ms) {
      expired.emplace_back(it->first, it->second.spout_task);
      it = trees_.erase(it);
    } else {
      ++it;
    }
  }
  return expired;
}

int64_t LocalCluster::Acker::pending() const {
  common::MutexLock lock(mutex_);
  return static_cast<int64_t>(trees_.size());
}

LocalCluster::LocalCluster() = default;

LocalCluster::~LocalCluster() { Shutdown(); }

Status LocalCluster::Submit(TopologyDef topology) {
  if (running_.exchange(true)) {
    return Status::FailedPrecondition("a topology is already running");
  }
  topology_ = std::move(topology);
  if (!topology_.spout) {
    return Status::InvalidArgument("topology needs a spout");
  }

  for (int t = 0; t < topology_.spout_parallelism; ++t) {
    auto task = std::make_unique<SpoutTask>();
    task->task_id = t;
    task->spout = topology_.spout(t);
    spout_tasks_.push_back(std::move(task));
  }
  bolt_tasks_.resize(topology_.bolts.size());
  for (size_t b = 0; b < topology_.bolts.size(); ++b) {
    for (int t = 0; t < topology_.bolts[b].parallelism; ++t) {
      auto task =
          std::make_unique<BoltTask>(topology_.task_queue_capacity);
      task->task_id = t;
      task->bolt = topology_.bolts[b].factory(t);
      RETURN_IF_ERROR(task->bolt->Prepare());
      bolt_tasks_[b].push_back(std::move(task));
    }
  }

  for (auto& task : spout_tasks_) {
    threads_.emplace_back([this, t = task.get()] { SpoutLoop(t); });
  }
  for (size_t b = 0; b < bolt_tasks_.size(); ++b) {
    for (auto& task : bolt_tasks_[b]) {
      threads_.emplace_back(
          [this, t = task.get(), b] { BoltLoop(t, b); });
    }
  }
  threads_.emplace_back([this] { TimeoutLoop(); });
  return Status::OK();
}

void LocalCluster::Shutdown() {
  if (!running_.exchange(false)) return;
  for (auto& group : bolt_tasks_) {
    for (auto& task : group) task->queue.Close();
  }
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
}

bool LocalCluster::WaitUntilDrained(int64_t timeout_ms) {
  common::Stopwatch watch;
  while (watch.ElapsedMillis() < timeout_ms) {
    bool exhausted = true;
    for (const auto& task : spout_tasks_) {
      if (!task->exhausted.load()) exhausted = false;
    }
    if (exhausted && acker_.pending() == 0) return true;
    common::SleepMillis(5);
  }
  return false;
}

int64_t LocalCluster::pending_trees() const { return acker_.pending(); }

void LocalCluster::Route(size_t bolt_index, Envelope envelope) {
  auto& group = bolt_tasks_[bolt_index];
  const BoltDef& def = topology_.bolts[bolt_index];
  size_t target;
  if (def.grouping == Grouping::kFields && def.key_extractor) {
    target = common::Fnv1a(def.key_extractor(envelope.tuple)) %
             group.size();
  } else {
    target = shuffle_counter_.fetch_add(1) % group.size();
  }
  group[target]->queue.Push(std::move(envelope));
}

void LocalCluster::SpoutLoop(SpoutTask* task) {
  while (running_.load()) {
    if (task->pending.load() >= topology_.max_spout_pending) {
      common::SleepMillis(1);
      continue;
    }
    int64_t id = next_tuple_id_.fetch_add(1);
    auto tuple = task->spout->NextTuple(id);
    if (!tuple.has_value()) {
      if (task->spout->Exhausted() && task->pending.load() == 0) {
        task->exhausted.store(true);
      }
      common::SleepMillis(1);
      continue;
    }
    task->exhausted.store(false);
    acker_.Register(id,
                    common::NowMillis() + topology_.message_timeout_ms,
                    task->task_id);
    task->pending.fetch_add(1);
    stats_.emitted.fetch_add(1);
    if (bolt_tasks_.empty()) {
      // Degenerate topology: ack immediately.
      std::vector<Acker::Completion> done;
      acker_.Delta(id, -1, &done);
      for (const auto& [root, owner] : done) {
        task->spout->Ack(root);
        task->pending.fetch_sub(1);
        stats_.acked.fetch_add(1);
      }
    } else {
      Route(0, Envelope{std::move(*tuple), id});
    }
  }
}

void LocalCluster::BoltLoop(BoltTask* task, size_t bolt_index) {
  const bool is_last = bolt_index + 1 >= bolt_tasks_.size();

  class BoltEmitter : public Emitter {
   public:
    BoltEmitter(LocalCluster* cluster, size_t next_index, int64_t root,
                bool terminal)
        : cluster_(cluster), next_index_(next_index), root_(root),
          terminal_(terminal) {}
    void Emit(adm::Value tuple) override {
      if (terminal_) return;  // emissions past the last bolt are dropped
      std::vector<Acker::Completion> done;
      cluster_->acker_.Delta(root_, +1, &done);
      cluster_->Route(next_index_, Envelope{std::move(tuple), root_});
    }

   private:
    LocalCluster* cluster_;
    size_t next_index_;
    int64_t root_;
    bool terminal_;
  };

  while (true) {
    auto envelope = task->queue.Pop();
    if (!envelope.has_value()) return;  // closed + drained
    stats_.executed.fetch_add(1);
    BoltEmitter emitter(this, bolt_index + 1, envelope->root_id,
                        is_last);
    Status status = task->bolt->Execute(envelope->tuple, &emitter);
    std::vector<Acker::Completion> done;
    if (status.ok()) {
      acker_.Delta(envelope->root_id, -1, &done);
      for (const auto& [root, owner] : done) {
        spout_tasks_[owner]->spout->Ack(root);
        spout_tasks_[owner]->pending.fetch_sub(1);
        stats_.acked.fetch_add(1);
      }
    } else {
      // Failed execution fails the whole tree: remove and Fail at the
      // spout, which replays (at-least-once).
      acker_.Delta(envelope->root_id, -(1LL << 40), &done);
      for (const auto& [root, owner] : done) {
        spout_tasks_[owner]->spout->Fail(root);
        spout_tasks_[owner]->pending.fetch_sub(1);
        stats_.failed.fetch_add(1);
      }
    }
  }
}

void LocalCluster::TimeoutLoop() {
  while (running_.load()) {
    for (const auto& [root, owner] :
         acker_.TakeExpired(common::NowMillis())) {
      spout_tasks_[owner]->spout->Fail(root);
      spout_tasks_[owner]->pending.fetch_sub(1);
      stats_.failed.fetch_add(1);
    }
    common::SleepMillis(20);
  }
}

}  // namespace storm
}  // namespace baseline
}  // namespace asterix
