// A miniature Storm stand-in: spout/bolt topologies run by a local
// cluster with shuffle/fields groupings, an acker tracking each spout
// tuple's derivation tree, max-spout-pending flow control, and
// timeout-driven replay — the at-least-once machinery a Storm user pairs
// with an external store. Used to reproduce the Chapter 7 comparison of
// AsterixDB against a 'glued' Storm+MongoDB assembly.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "adm/value.h"
#include "common/blocking_queue.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace asterix {
namespace baseline {
namespace storm {

/// Receives tuples a bolt emits while executing an input tuple; emitted
/// tuples are anchored to the input's spout tuple for ack tracking.
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void Emit(adm::Value tuple) = 0;
};

class Spout {
 public:
  virtual ~Spout() = default;
  /// Next tuple, or nullopt when nothing is pending right now.
  /// `tuple_id` is the message id the cluster will track the tuple tree
  /// under; a reliable spout records (tuple_id -> tuple) so Fail() can
  /// replay (Storm's emit-with-message-id).
  virtual std::optional<adm::Value> NextTuple(int64_t tuple_id) = 0;
  /// The tuple tree rooted at `tuple_id` completed fully.
  virtual void Ack(int64_t tuple_id) { (void)tuple_id; }
  /// The tree timed out or failed; a reliable spout replays.
  virtual void Fail(int64_t tuple_id) { (void)tuple_id; }
  /// True when the source is permanently exhausted.
  virtual bool Exhausted() const { return false; }
};

class Bolt {
 public:
  virtual ~Bolt() = default;
  [[nodiscard]] virtual common::Status Prepare() { return common::Status::OK(); }
  /// Processes one tuple, emitting any derived tuples via `emitter`.
  [[nodiscard]] virtual common::Status Execute(const adm::Value& tuple,
                                 Emitter* emitter) = 0;
};

using BoltFactory = std::function<std::unique_ptr<Bolt>(int task)>;
using SpoutFactory = std::function<std::unique_ptr<Spout>(int task)>;

enum class Grouping { kShuffle, kFields };

struct BoltDef {
  std::string name;
  BoltFactory factory;
  int parallelism = 1;
  Grouping grouping = Grouping::kShuffle;
  /// For kFields: extracts the grouping key.
  std::function<std::string(const adm::Value&)> key_extractor;
};

/// A linear topology: spout -> bolt -> bolt -> ...
struct TopologyDef {
  std::string name;
  SpoutFactory spout;
  int spout_parallelism = 1;
  std::vector<BoltDef> bolts;
  /// Flow control: max unacked spout tuples per spout task.
  int max_spout_pending = 1024;
  /// Tuple-tree timeout before Fail/replay.
  int64_t message_timeout_ms = 3000;
  size_t task_queue_capacity = 256;
};

struct TopologyStats {
  std::atomic<int64_t> emitted{0};
  std::atomic<int64_t> acked{0};
  std::atomic<int64_t> failed{0};
  std::atomic<int64_t> executed{0};
};

/// Runs one topology on local threads (Storm's LocalCluster).
class LocalCluster {
 public:
  LocalCluster();
  ~LocalCluster();

  [[nodiscard]] common::Status Submit(TopologyDef topology);
  /// Stops all executors (processes in-flight tuples best-effort).
  void Shutdown();
  /// Waits until every spout is exhausted and all trees completed, or
  /// timeout. Returns true when fully drained.
  bool WaitUntilDrained(int64_t timeout_ms);

  const TopologyStats& stats() const { return stats_; }
  int64_t pending_trees() const;

 private:
  struct Envelope {
    adm::Value tuple;
    int64_t root_id;  // spout tuple id this derives from
  };
  struct BoltTask;
  struct SpoutTask;

  class Acker {
   public:
    /// (root id, owning spout task) pair.
    using Completion = std::pair<int64_t, int>;

    void Register(int64_t root_id, int64_t timeout_at_ms, int spout_task);
    void Delta(int64_t root_id, int64_t delta,
               std::vector<Completion>* completed);
    std::vector<Completion> TakeExpired(int64_t now_ms);
    int64_t pending() const;

   private:
    mutable common::Mutex mutex_{common::LockRank::kStormAcker};
    struct Tree {
      int64_t count = 0;
      int64_t timeout_at_ms = 0;
      int spout_task = 0;
    };
    std::map<int64_t, Tree> trees_ GUARDED_BY(mutex_);
  };

  void SpoutLoop(SpoutTask* task);
  void BoltLoop(BoltTask* task, size_t bolt_index);
  void TimeoutLoop();
  void Route(size_t bolt_index, Envelope envelope);

  TopologyDef topology_;
  TopologyStats stats_;
  Acker acker_;
  std::atomic<bool> running_{false};
  std::atomic<int64_t> next_tuple_id_{1};

  std::vector<std::unique_ptr<SpoutTask>> spout_tasks_;
  /// bolt_tasks_[bolt_index][task]
  std::vector<std::vector<std::unique_ptr<BoltTask>>> bolt_tasks_;
  std::vector<std::thread> threads_;
  std::atomic<size_t> shuffle_counter_{0};
};

}  // namespace storm
}  // namespace baseline
}  // namespace asterix

