// Secondary indexes, updated in the same insert path as the primary index
// (AsterixDB co-locates secondary index partitions with the primary).
// Two kinds reproduce the paper's usage: a B-tree-style value index and a
// spatial grid index standing in for the R-tree used on tweet locations.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adm/value.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace asterix {
namespace storage {

enum class IndexKind { kBTree, kRTree };

/// Rectangle query region (bottom-left / top-right corners).
struct Rect {
  double x_min = 0, y_min = 0, x_max = 0, y_max = 0;
  bool Contains(const adm::Point& p) const {
    return p.x >= x_min && p.x <= x_max && p.y >= y_min && p.y <= y_max;
  }
};

/// Base class: maps a record's indexed field to its primary key.
class SecondaryIndex {
 public:
  SecondaryIndex(std::string name, std::string field)
      : name_(std::move(name)), field_(std::move(field)) {}
  virtual ~SecondaryIndex() = default;

  /// Indexes `record` (which must contain `field()`), associating it with
  /// `primary_key`. Records lacking the field (or with null) are skipped —
  /// optional fields are legal in ADM.
  [[nodiscard]] virtual common::Status Insert(const adm::Value& record,
                                const std::string& primary_key) = 0;

  virtual int64_t entry_count() const = 0;

  const std::string& name() const { return name_; }
  const std::string& field() const { return field_; }

 private:
  std::string name_;
  std::string field_;
};

/// Value index: encoded secondary key -> primary keys.
class BTreeSecondaryIndex : public SecondaryIndex {
 public:
  using SecondaryIndex::SecondaryIndex;

  [[nodiscard]] common::Status Insert(const adm::Value& record,
                        const std::string& primary_key) override;
  int64_t entry_count() const override;

  /// Primary keys whose indexed field equals `v`.
  std::vector<std::string> SearchExact(const adm::Value& v) const;

  /// Primary keys whose indexed field lies in [lo, hi].
  std::vector<std::string> SearchRange(const adm::Value& lo,
                                       const adm::Value& hi) const;

 private:
  mutable common::Mutex mutex_{common::LockRank::kSecondaryIndex};
  std::multimap<std::string, std::string> entries_ GUARDED_BY(mutex_);
};

/// Spatial grid index (R-tree stand-in): points are bucketed into fixed
/// resolution cells; rectangle queries visit overlapping cells and filter.
class SpatialGridIndex : public SecondaryIndex {
 public:
  SpatialGridIndex(std::string name, std::string field,
                   double cell_size = 1.0)
      : SecondaryIndex(std::move(name), std::move(field)),
        cell_size_(cell_size) {}

  [[nodiscard]] common::Status Insert(const adm::Value& record,
                        const std::string& primary_key) override;
  int64_t entry_count() const override;

  /// Primary keys of records whose point lies inside `rect`.
  std::vector<std::string> SearchRect(const Rect& rect) const;

  /// (point, primary key) pairs inside `rect` — lets callers aggregate
  /// spatially without re-fetching records.
  std::vector<std::pair<adm::Point, std::string>> SearchRectEntries(
      const Rect& rect) const;

 private:
  std::pair<int64_t, int64_t> CellOf(const adm::Point& p) const;

  const double cell_size_;
  mutable common::Mutex mutex_{common::LockRank::kSecondaryIndex};
  std::map<std::pair<int64_t, int64_t>,
           std::vector<std::pair<adm::Point, std::string>>>
      cells_ GUARDED_BY(mutex_);
  int64_t entry_count_ GUARDED_BY(mutex_) = 0;
};

/// Creates an index of the requested kind.
std::unique_ptr<SecondaryIndex> MakeSecondaryIndex(IndexKind kind,
                                                   std::string name,
                                                   std::string field);

}  // namespace storage
}  // namespace asterix

