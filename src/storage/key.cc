#include "storage/key.h"

#include <cstring>

namespace asterix {
namespace storage {

using adm::TypeTag;
using adm::Value;
using common::Result;
using common::Status;

namespace {

// Flips the sign bit (and, for negatives, all bits of a double) so that the
// big-endian byte order of the result matches numeric order.
uint64_t OrderableBitsFromInt(int64_t i) {
  return static_cast<uint64_t>(i) ^ (1ull << 63);
}

int64_t IntFromOrderableBits(uint64_t bits) {
  return static_cast<int64_t>(bits ^ (1ull << 63));
}

uint64_t OrderableBitsFromDouble(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  if (bits & (1ull << 63)) {
    return ~bits;  // negative: flip everything
  }
  return bits | (1ull << 63);  // positive: flip sign bit
}

double DoubleFromOrderableBits(uint64_t bits) {
  if (bits & (1ull << 63)) {
    bits &= ~(1ull << 63);
  } else {
    bits = ~bits;
  }
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

void AppendBigEndian64(uint64_t v, std::string* out) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

uint64_t ReadBigEndian64(const std::string& s, size_t offset) {
  uint64_t v = 0;
  for (size_t i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<uint8_t>(s[offset + i]);
  }
  return v;
}

}  // namespace

Result<std::string> EncodeKey(const Value& v) {
  std::string out;
  out.push_back(static_cast<char>(v.tag()));
  switch (v.tag()) {
    case TypeTag::kInt64:
      AppendBigEndian64(OrderableBitsFromInt(v.AsInt64()), &out);
      return out;
    case TypeTag::kDatetime:
      AppendBigEndian64(OrderableBitsFromInt(v.AsDatetime()), &out);
      return out;
    case TypeTag::kDouble:
      AppendBigEndian64(OrderableBitsFromDouble(v.AsDouble()), &out);
      return out;
    case TypeTag::kString:
      out.append(v.AsString());
      return out;
    default:
      return Status::InvalidArgument(
          std::string("type '") + adm::TypeTagName(v.tag()) +
          "' cannot be used as an index key");
  }
}

Result<Value> DecodeKey(const std::string& key) {
  if (key.empty()) return Status::Corruption("empty key");
  TypeTag tag = static_cast<TypeTag>(key[0]);
  switch (tag) {
    case TypeTag::kInt64:
      if (key.size() != 9) return Status::Corruption("bad int64 key size");
      return Value::Int64(IntFromOrderableBits(ReadBigEndian64(key, 1)));
    case TypeTag::kDatetime:
      if (key.size() != 9) {
        return Status::Corruption("bad datetime key size");
      }
      return Value::Datetime(IntFromOrderableBits(ReadBigEndian64(key, 1)));
    case TypeTag::kDouble:
      if (key.size() != 9) return Status::Corruption("bad double key size");
      return Value::Double(DoubleFromOrderableBits(ReadBigEndian64(key, 1)));
    case TypeTag::kString:
      return Value::String(key.substr(1));
    default:
      return Status::Corruption("unknown key tag");
  }
}

}  // namespace storage
}  // namespace asterix
