#include "common/thread_annotations.h"
#include "storage/dataset.h"

#include <filesystem>

#include "common/failpoint.h"
#include "common/strings.h"
#include "storage/key.h"

namespace asterix {
namespace storage {

using common::Result;
using common::Status;

DatasetPartition::DatasetPartition(DatasetDef def, int partition_id,
                                   std::string dir,
                                   const adm::TypeRegistry* types)
    : def_(std::move(def)),
      partition_id_(partition_id),
      types_(types),
      wal_(dir + "/" + def_.name + ".p" + std::to_string(partition_id) +
               ".wal",
           def_.durable_writes),
      primary_(def_.lsm) {
  for (const IndexDef& index : def_.indexes) {
    secondaries_.push_back(
        MakeSecondaryIndex(index.kind, index.name, index.field));
  }
}

Status DatasetPartition::Open() { return wal_.Open(); }

Status DatasetPartition::Insert(const adm::Value& record) {
  if (!record.is_record()) {
    return Status::InvalidArgument("dataset '" + def_.name +
                                   "' accepts only records");
  }
  const adm::Value* pk = record.GetField(def_.primary_key_field);
  if (pk == nullptr || pk->is_null()) {
    return Status::InvalidArgument("record lacks primary key field '" +
                                   def_.primary_key_field + "'");
  }
  if (def_.validate_type && types_ != nullptr) {
    RETURN_IF_ERROR(types_->Conforms(record, def_.datatype));
  }
  auto key = EncodeKey(*pk);
  if (!key.ok()) return key.status();

  // Fires before the WAL write: the record is fully rejected, the store
  // operator reports a soft failure, and the at-least-once protocol must
  // replay it.
  ASTERIX_FAILPOINT("storage.dataset.insert");
  // Write-ahead log first: this is the persistence point that the
  // at-least-once protocol acks from.
  RETURN_IF_ERROR(wal_.Append(record.ToAdmString()));
  RETURN_IF_ERROR(primary_.Insert(key.value(), record));
  {
    common::MutexLock lock(indexes_mutex_);
    for (const auto& index : secondaries_) {
      RETURN_IF_ERROR(index->Insert(record, key.value()));
    }
  }
  // relaxed: stats counter; durability ordering lives in the WAL/index.
  inserts_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Result<adm::Value> DatasetPartition::Get(
    const adm::Value& primary_key) const {
  auto key = EncodeKey(primary_key);
  if (!key.ok()) return key.status();
  auto value = primary_.Get(key.value());
  if (!value.has_value()) {
    return Status::NotFound("no record with key " +
                            primary_key.ToAdmString());
  }
  return *value;
}

void DatasetPartition::Scan(
    const std::function<void(const adm::Value&)>& visitor) const {
  primary_.Scan(
      [&](const std::string&, const adm::Value& v) { visitor(v); });
}

SecondaryIndex* DatasetPartition::FindIndex(
    const std::string& index_name) const {
  common::MutexLock lock(indexes_mutex_);
  for (const auto& index : secondaries_) {
    if (index->name() == index_name) return index.get();
  }
  return nullptr;
}

Status DatasetPartition::AddIndex(const IndexDef& index_def) {
  if (FindIndex(index_def.name) != nullptr) {
    return Status::AlreadyExists("index '" + index_def.name +
                                 "' already exists on '" + def_.name +
                                 "'");
  }
  auto index = MakeSecondaryIndex(index_def.kind, index_def.name,
                                  index_def.field);
  // Backfill from the primary. Records inserted concurrently are added
  // by the insert path once the index is published; a record inserted
  // in the window between this scan and publication may be indexed
  // twice, which the value/grid indexes tolerate (duplicate postings
  // resolve to the same primary key).
  Status backfill = Status::OK();
  primary_.Scan([&](const std::string& key, const adm::Value& record) {
    if (!backfill.ok()) return;
    backfill = index->Insert(record, key);
  });
  RETURN_IF_ERROR(backfill);
  common::MutexLock lock(indexes_mutex_);
  secondaries_.push_back(std::move(index));
  return Status::OK();
}

StorageManager::StorageManager(std::string node_id, std::string base_dir)
    : node_id_(std::move(node_id)), base_dir_(std::move(base_dir)) {
  std::filesystem::create_directories(base_dir_);
}

Status StorageManager::CreatePartition(const DatasetDef& def,
                                       int partition_id,
                                       const adm::TypeRegistry* types) {
  common::MutexLock lock(mutex_);
  if (partitions_.count(def.name) > 0) {
    return Status::AlreadyExists("node " + node_id_ +
                                 " already hosts a partition of '" +
                                 def.name + "'");
  }
  auto partition = std::make_unique<DatasetPartition>(def, partition_id,
                                                      base_dir_, types);
  RETURN_IF_ERROR(partition->Open());
  partitions_.emplace(def.name, std::move(partition));
  return Status::OK();
}

DatasetPartition* StorageManager::GetPartition(
    const std::string& dataset) const {
  common::MutexLock lock(mutex_);
  auto it = partitions_.find(dataset);
  return it == partitions_.end() ? nullptr : it->second.get();
}

Status StorageManager::DropPartition(const std::string& dataset) {
  common::MutexLock lock(mutex_);
  if (partitions_.erase(dataset) == 0) {
    return Status::NotFound("node " + node_id_ +
                            " hosts no partition of '" + dataset + "'");
  }
  return Status::OK();
}

std::vector<std::string> StorageManager::DatasetNames() const {
  common::MutexLock lock(mutex_);
  std::vector<std::string> names;
  for (const auto& [name, p] : partitions_) names.push_back(name);
  return names;
}

Status DatasetCatalog::Register(DatasetDef def,
                                std::vector<std::string> nodegroup) {
  common::MutexLock lock(mutex_);
  std::string name = def.name;  // read before the move below
  auto [it, inserted] = entries_.emplace(
      std::move(name), Entry{std::move(def), std::move(nodegroup)});
  if (!inserted) {
    return Status::AlreadyExists("dataset '" + it->first +
                                 "' already exists");
  }
  return Status::OK();
}

common::Result<DatasetCatalog::Entry> DatasetCatalog::Find(
    const std::string& name) const {
  common::MutexLock lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("dataset '" + name + "' not found");
  }
  return it->second;
}

Status DatasetCatalog::AddIndex(const std::string& dataset,
                                const IndexDef& index_def) {
  common::MutexLock lock(mutex_);
  auto it = entries_.find(dataset);
  if (it == entries_.end()) {
    return Status::NotFound("dataset '" + dataset + "' not found");
  }
  it->second.def.indexes.push_back(index_def);
  return Status::OK();
}

std::vector<std::string> DatasetCatalog::Names() const {
  common::MutexLock lock(mutex_);
  std::vector<std::string> names;
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

int PartitionOfKey(const std::string& encoded_key, int num_partitions) {
  if (num_partitions <= 1) return 0;
  return static_cast<int>(common::Fnv1a(encoded_key) %
                          static_cast<uint64_t>(num_partitions));
}

}  // namespace storage
}  // namespace asterix
