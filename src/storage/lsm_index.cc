#include "storage/lsm_index.h"

#include <algorithm>

namespace asterix {
namespace storage {

using common::Status;

const adm::Value* SortedRun::Get(const std::string& key) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, const std::string& k) { return e.first < k; });
  if (it != entries_.end() && it->first == key) return &it->second;
  return nullptr;
}

Status LsmIndex::Insert(const std::string& key, adm::Value value) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t bytes = key.size() + value.ApproxSizeBytes();
  bool existed = memtable_.count(key) > 0;
  if (!existed) {
    for (auto it = runs_.rbegin(); it != runs_.rend(); ++it) {
      if ((*it)->Get(key) != nullptr) {
        existed = true;
        break;
      }
    }
  }
  memtable_[key] = std::move(value);
  memtable_bytes_ += bytes;
  ++stats_.inserts;
  if (!existed) ++stats_.live_keys;
  if (memtable_bytes_ >= options_.memtable_bytes_limit) {
    FlushLocked();
    if (runs_.size() >= options_.max_runs) MergeLocked();
  }
  return Status::OK();
}

std::optional<adm::Value> LsmIndex::Get(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = memtable_.find(key);
  if (it != memtable_.end()) return it->second;
  for (auto rit = runs_.rbegin(); rit != runs_.rend(); ++rit) {
    const adm::Value* v = (*rit)->Get(key);
    if (v != nullptr) return *v;
  }
  return std::nullopt;
}

void LsmIndex::Scan(const std::function<void(const std::string&,
                                             const adm::Value&)>& visitor)
    const {
  // Snapshot components under the lock, then merge outside it.
  std::map<std::string, adm::Value> memtable_copy;
  std::vector<std::shared_ptr<SortedRun>> runs_copy;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    memtable_copy = memtable_;
    runs_copy = runs_;
  }
  // Oldest-to-newest apply into one map: newest value wins naturally.
  std::map<std::string, adm::Value> merged;
  for (const auto& run : runs_copy) {
    for (const auto& [k, v] : run->entries()) merged[k] = v;
  }
  for (const auto& [k, v] : memtable_copy) merged[k] = v;
  for (const auto& [k, v] : merged) visitor(k, v);
}

int64_t LsmIndex::Size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_.live_keys;
}

void LsmIndex::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  FlushLocked();
}

LsmStats LsmIndex::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

size_t LsmIndex::run_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return runs_.size();
}

void LsmIndex::FlushLocked() {
  if (memtable_.empty()) return;
  std::vector<SortedRun::Entry> entries;
  entries.reserve(memtable_.size());
  for (auto& [k, v] : memtable_) entries.emplace_back(k, std::move(v));
  runs_.push_back(std::make_shared<SortedRun>(std::move(entries)));
  memtable_.clear();
  memtable_bytes_ = 0;
  ++stats_.flushes;
}

void LsmIndex::MergeLocked() {
  if (runs_.size() < 2) return;
  std::map<std::string, adm::Value> merged;
  for (const auto& run : runs_) {
    for (const auto& [k, v] : run->entries()) merged[k] = v;
  }
  std::vector<SortedRun::Entry> entries;
  entries.reserve(merged.size());
  for (auto& [k, v] : merged) entries.emplace_back(k, std::move(v));
  runs_.clear();
  runs_.push_back(std::make_shared<SortedRun>(std::move(entries)));
  ++stats_.merges;
}

}  // namespace storage
}  // namespace asterix
